package gslb

import (
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/simclock"
)

// stubTelemetry is a scriptable telemetry source: tests flip per-region
// health by adjusting ActiveVMs against a fixed baseline.
type stubTelemetry struct {
	active  []int
	served  []uint64
	dropped []uint64
}

func newStub(n int) *stubTelemetry {
	s := &stubTelemetry{active: make([]int, n), served: make([]uint64, n), dropped: make([]uint64, n)}
	for i := range s.active {
		s.active[i] = 4
	}
	return s
}

func (s *stubTelemetry) sample(i int) cloudsim.Telemetry {
	return cloudsim.Telemetry{
		Region:         regionNames(len(s.active))[i],
		ActiveVMs:      s.active[i],
		BaselineActive: 4,
		Capacity:       float64(s.active[i]) * 10,
		Served:         s.served[i],
		Dropped:        s.dropped[i],
	}
}

func regionNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = "region" + string(rune('1'+i))
	}
	return names
}

func newTestDirector(t *testing.T, cfg Config, stub *stubTelemetry) *Director {
	t.Helper()
	d, err := NewDirector(cfg, regionNames(len(stub.active)), nil, stub.sample)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGSLBParsePolicy(t *testing.T) {
	for _, k := range PolicyKinds() {
		got, err := ParsePolicy(string(k))
		if err != nil || got != k {
			t.Fatalf("ParsePolicy(%q) = %v, %v", k, got, err)
		}
	}
	if _, err := ParsePolicy("geo"); err == nil {
		t.Fatal("ParsePolicy accepted an unknown policy")
	}
}

func TestGSLBNewDirectorValidation(t *testing.T) {
	stub := newStub(2)
	cases := []Config{
		{},                // no policy
		{Policy: "bogus"}, // unknown policy
		{Policy: PolicyStatic, Weights: []float64{1}},                        // weight count mismatch
		{Policy: PolicyFailover, Preference: []string{"regionX"}},            // unknown region
		{Policy: PolicyFailover, Preference: []string{"region1", "region1"}}, // duplicate
	}
	for i, cfg := range cases {
		if _, err := NewDirector(cfg, regionNames(2), nil, stub.sample); err == nil {
			t.Fatalf("case %d: NewDirector accepted invalid config %+v", i, cfg)
		}
	}
}

// TestFailoverStateMachine drives one region through the full drain/failback
// cycle and checks the debounce streaks and the transition log.
func TestGSLBFailoverStateMachine(t *testing.T) {
	stub := newStub(2)
	d := newTestDirector(t, Config{Policy: PolicyFailover, UnhealthyAfter: 2, HealthyAfter: 3}, stub)

	rng := simclock.NewRNG(1)
	var rr uint64
	if got := d.Table().Route(rng, &rr); got != 0 {
		t.Fatalf("initial route = region %d, want 0 (preferred)", got)
	}

	// One bad probe: degraded but still serving (preferred).
	stub.active[0] = 0
	d.Tick(15)
	if d.State(0) != Degraded {
		t.Fatalf("after 1 bad probe: %v, want degraded", d.State(0))
	}
	if got := d.Table().Route(rng, &rr); got != 0 {
		t.Fatalf("degraded region should still serve, routed to %d", got)
	}

	// Second bad probe: drained; traffic fails over to region2.
	d.Tick(30)
	if d.State(0) != Drained {
		t.Fatalf("after 2 bad probes: %v, want drained", d.State(0))
	}
	if got := d.Table().Route(rng, &rr); got != 1 {
		t.Fatalf("drained region still routed: got %d, want 1", got)
	}

	// Recovery needs three consecutive good probes; the first two keep the
	// region excluded (recovering), the third fails traffic back.
	stub.active[0] = 4
	d.Tick(45)
	if d.State(0) != Recovering {
		t.Fatalf("after 1 good probe: %v, want recovering", d.State(0))
	}
	if got := d.Table().Route(rng, &rr); got != 1 {
		t.Fatalf("recovering region already serving: got %d", got)
	}
	d.Tick(60)
	d.Tick(75)
	if d.State(0) != Healthy {
		t.Fatalf("after 3 good probes: %v, want healthy", d.State(0))
	}
	if got := d.Table().Route(rng, &rr); got != 0 {
		t.Fatalf("failback did not happen: routed to %d", got)
	}

	want := []Transition{
		{At: 15, Region: "region1", From: Healthy, To: Degraded},
		{At: 30, Region: "region1", From: Degraded, To: Drained},
		{At: 45, Region: "region1", From: Drained, To: Recovering},
		{At: 75, Region: "region1", From: Recovering, To: Healthy},
	}
	got := d.Transitions()
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestErrorSignalDrains checks the second drain trigger: a region whose
// interval drop ratio crosses ErrorThreshold drains even with full capacity.
func TestGSLBErrorSignalDrains(t *testing.T) {
	stub := newStub(2)
	d := newTestDirector(t, Config{Policy: PolicyFailover, UnhealthyAfter: 1}, stub)
	stub.served[0], stub.dropped[0] = 100, 0
	d.Tick(15)
	if d.State(0) != Healthy {
		t.Fatalf("healthy traffic drained the region: %v", d.State(0))
	}
	// Next interval: 10 served, 90 dropped -> 0.9 error rate > 0.5 default.
	stub.served[0], stub.dropped[0] = 110, 90
	d.Tick(30)
	if d.State(0) != Drained {
		t.Fatalf("error burst did not drain: %v", d.State(0))
	}
}

func TestGSLBRoundRobinRotation(t *testing.T) {
	stub := newStub(3)
	d := newTestDirector(t, Config{Policy: PolicyRoundRobin}, stub)
	rng := simclock.NewRNG(1)
	var rr uint64
	got := []int{}
	for i := 0; i < 6; i++ {
		got = append(got, d.Table().Route(rng, &rr))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation = %v, want %v", got, want)
		}
	}
	// Draining the middle region shrinks the rotation to the survivors.
	stub.active[1] = 0
	d.Tick(15)
	d.Tick(30)
	seen := map[int]bool{}
	for i := 0; i < 10; i++ {
		seen[d.Table().Route(rng, &rr)] = true
	}
	if seen[1] || !seen[0] || !seen[2] {
		t.Fatalf("post-drain rotation hit %v, want only regions 0 and 2", seen)
	}
}

func TestGSLBStaticWeightsFollowConfig(t *testing.T) {
	stub := newStub(2)
	d := newTestDirector(t, Config{Policy: PolicyStatic, Weights: []float64{3, 1}}, stub)
	rng := simclock.NewRNG(7)
	var rr uint64
	counts := [2]int{}
	for i := 0; i < 4000; i++ {
		counts[d.Table().Route(rng, &rr)]++
	}
	frac := float64(counts[0]) / 4000
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("static 3:1 weights routed %.3f to region1, want ~0.75", frac)
	}
}

func TestGSLBLeastLoadFollowsCapacity(t *testing.T) {
	stub := newStub(2)
	d := newTestDirector(t, Config{Policy: PolicyLeastLoad}, stub)
	stub.active[0], stub.active[1] = 4, 2 // capacities 40 vs 20 after probe
	d.Tick(15)
	rng := simclock.NewRNG(7)
	var rr uint64
	counts := [2]int{}
	for i := 0; i < 3000; i++ {
		counts[d.Table().Route(rng, &rr)]++
	}
	frac := float64(counts[0]) / 3000
	if frac < 0.60 || frac > 0.73 {
		t.Fatalf("least-load routed %.3f to the 2x-capacity region, want ~2/3", frac)
	}
}

// TestAllDrainedFallsBack: with every region drained the table routes to the
// full preference order rather than nowhere.
func TestGSLBAllDrainedFallsBack(t *testing.T) {
	stub := newStub(2)
	d := newTestDirector(t, Config{Policy: PolicyFailover, UnhealthyAfter: 1}, stub)
	stub.active[0], stub.active[1] = 0, 0
	d.Tick(15)
	rng := simclock.NewRNG(1)
	var rr uint64
	if got := d.Table().Route(rng, &rr); got != 0 {
		t.Fatalf("all-drained fallback routed to %d, want preferred 0", got)
	}
}

// stubRegion is a minimal serving region for the conservation property: it
// completes every submitted request after a service delay unless "down", in
// which case it drops them — either way the request finishes exactly once.
type stubRegion struct {
	name string
	down bool
}

func (r *stubRegion) submit(eng *simclock.Engine, id uint64, done func(dropped bool)) {
	if r.down {
		done(true)
		return
	}
	eng.ScheduleFunc(simclock.Duration(0.05), func(*simclock.Engine) { done(false) })
}

// TestFailoverConservationProperty is the no-drop/no-duplicate property of
// the ISSUE: across randomized outage/recovery flapping, every request the
// director routes is delivered to exactly one region and completes exactly
// once.  The schedule, the arrivals and the health signals all derive from a
// seeded RNG, so a failure reproduces byte-for-byte.
func TestGSLBFailoverConservationProperty(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		rng := simclock.NewRNG(seed)
		eng := simclock.NewEngine(seed)

		const n = 3
		regions := make([]*stubRegion, n)
		active := make([]int, n)
		for i := range regions {
			regions[i] = &stubRegion{name: regionNames(n)[i]}
			active[i] = 4
		}
		sample := func(i int) cloudsim.Telemetry {
			return cloudsim.Telemetry{ActiveVMs: active[i], BaselineActive: 4, Capacity: float64(active[i])}
		}
		d, err := NewDirector(Config{Policy: PolicyFailover, UnhealthyAfter: 1, HealthyAfter: 2}, regionNames(n), nil, sample)
		if err != nil {
			t.Fatal(err)
		}

		// Random flapping: every second some region may go down or come back.
		stopFlap := eng.Ticker(1, func(*simclock.Engine) {
			i := rng.Intn(n)
			up := rng.Bool(0.5)
			regions[i].down = !up
			if up {
				active[i] = 4
			} else {
				active[i] = 0
			}
		})
		// Probe every 2 seconds.
		stopProbe := eng.Ticker(2, func(e *simclock.Engine) { d.Tick(e.Now()) })

		// Arrivals every 20 ms; count completions per request.
		completions := map[uint64]int{}
		routed := uint64(0)
		routeRNG := simclock.NewRNG(seed ^ 0xabcdef)
		var rr uint64
		var nextID uint64
		stopArrivals := eng.Ticker(0.02, func(e *simclock.Engine) {
			id := nextID
			nextID++
			ri := d.Table().Route(routeRNG, &rr)
			routed++
			regions[ri].submit(e, id, func(bool) { completions[id]++ })
		})

		if err := eng.Run(60); err != nil && err != simclock.ErrHorizonReached {
			t.Fatal(err)
		}
		stopFlap()
		stopProbe()
		stopArrivals()
		eng.RunUntilEmpty()

		if routed != nextID {
			t.Fatalf("seed %d: issued %d requests but routed %d", seed, nextID, routed)
		}
		for id := uint64(0); id < nextID; id++ {
			if completions[id] != 1 {
				t.Fatalf("seed %d: request %d completed %d times, want exactly 1", seed, id, completions[id])
			}
		}
	}
}
