package experiment

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/simclock"
)

// The cohort-compression suite: the megaclients scenarios must behave like
// deployments (smoke), agree with individually simulated populations on the
// aggregate metrics (equivalence), stay byte-identical across worker counts
// (determinism — including the tracer-fed response-time series hashed into
// the fingerprint), and be pinned by goldens of their own.

// cohortScenarioNames lists the registered cohort-compressed scenarios.
func cohortScenarioNames() []string {
	return []string{"megaclients", "global-megaclients"}
}

// TestCohortScenarioSmoke: cheap always-on canary — both million-client
// scenarios build, run a few minutes, serve batched traffic, and the latency
// series is tracer-fed (samples are a tiny fraction of the weighted
// completions).
func TestCohortScenarioSmoke(t *testing.T) {
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range cohortScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := BuildScenario(name, 42)
			if err != nil {
				t.Fatal(err)
			}
			sc.Horizon = 5 * simclock.Minute
			b, err := NewBackend(sc, np)
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Run(sc.Horizon); err != nil {
				t.Fatal(err)
			}
			res := summarize(sc, np, b)
			met := b.Metrics()
			if res.Eras == 0 {
				t.Fatal("no control eras completed")
			}
			if res.SuccessRatio < 0.5 {
				t.Fatalf("success ratio %.3f, want >= 0.5", res.SuccessRatio)
			}
			// Weighted throughput must be in the million-client regime:
			// 10^6 clients at 60 s think is ~16.7k interactions/s.
			rate := float64(met.Issued("")) / sc.Horizon.Seconds()
			wantRate := float64(sc.EffectiveClients()) / sc.ThinkTime.Seconds()
			if rate < 0.5*wantRate {
				t.Fatalf("issued rate %.0f/s, want >= half of the closed-loop rate %.0f/s", rate, wantRate)
			}
			// The response-time series comes from tracers, not batches.
			samples := met.ResponseSamples("")
			if samples == 0 {
				t.Fatal("tracers recorded no latency samples")
			}
			if samples >= met.Completed("")/10 {
				t.Fatalf("latency series looks batch-fed: %d samples of %d weighted completions",
					samples, met.Completed(""))
			}
			if res.MeanResponseTime <= 0 {
				t.Fatalf("mean response time %v, want > 0", res.MeanResponseTime)
			}
		})
	}
}

// TestCohortIndividualEquivalence is the accuracy contract of the
// compression: the figure3 deployment with both populations cohort-compressed
// must agree with the individually simulated original on the aggregate
// metrics — measured arrival rate, success ratio and mean response time —
// within statistical tolerance at matched seeds.  Latency distributions are
// compared through the tracers, which are ordinary browsers.
func TestCohortIndividualEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two 30-minute simulations")
	}
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatal(err)
	}
	run := func(compress bool) (lambdaTail, meanRT, success float64) {
		sc, err := BuildScenario("figure3", 42)
		if err != nil {
			t.Fatal(err)
		}
		sc.Horizon = goldenHorizon
		if compress {
			for i := range sc.Regions {
				sc.Regions[i].CohortClients = sc.Regions[i].Clients
				sc.Regions[i].Clients = 0
			}
			sc.TracerFraction = 0.05
			sc.CohortMaxBatch = 8
		}
		res, err := Run(sc, np)
		if err != nil {
			t.Fatal(err)
		}
		return res.Recorder.Series("lambda", "global").TailMean(0.4),
			res.MeanResponseTime, res.SuccessRatio
	}
	il, im, is := run(false)
	cl, cm, cs := run(true)

	// Throughput: both closed loops run the same client count at the same
	// think time, so the steady-state arrival rates must agree closely.
	if math.Abs(cl-il)/il > 0.15 {
		t.Fatalf("tail lambda diverged: cohort %.1f/s vs individual %.1f/s", cl, il)
	}
	if cs < 0.9*is {
		t.Fatalf("success ratio degraded under compression: %.4f vs %.4f", cs, is)
	}
	// Response time: batches change queueing granularity, so the tolerance is
	// a band, not bytes — the cohort mean (tracer-fed) must stay in the same
	// regime as the individual mean.
	if ratio := cm / im; ratio < 0.5 || ratio > 2.0 {
		if math.Abs(cm-im) > 0.15 {
			t.Fatalf("mean response time diverged: cohort %.3fs vs individual %.3fs", cm, im)
		}
	}
}

// TestCohortWorkersEquivalence pins the cohort determinism contract on the
// richest cross-shard deployment: figure4-eventloop with a cohort population
// riding alongside every region's browsers must produce byte-identical
// output — summary plus the SHA-256 of every raw series, which includes the
// tracer-fed response-time series — at EventWorkers 1, 4 and GOMAXPROCS.
func TestCohortWorkersEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the cohort figure4 event-loop simulation once per worker count")
	}
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []byte {
		sc, err := BuildScenario("figure4-eventloop", 42)
		if err != nil {
			t.Fatal(err)
		}
		sc.Horizon = 10 * simclock.Minute
		sc.EventWorkers = workers
		// Double each region's population with cohort-compressed clients and
		// stretch the think time so the deployment stays inside capacity.
		for i := range sc.Regions {
			sc.Regions[i].CohortClients = 128
		}
		sc.ThinkTime = 14 * simclock.Second
		sc.CohortMaxBatch = 16
		res, err := Run(sc, np)
		if err != nil {
			t.Fatal(err)
		}
		return eventLoopFingerprint(t, res)
	}
	ref := run(1)
	for _, workers := range eventLoopWorkerCounts()[1:] {
		if got := run(workers); !bytes.Equal(got, ref) {
			t.Fatalf("EventWorkers=%d diverged from EventWorkers=1\n--- got ---\n%s\n--- want ---\n%s", workers, got, ref)
		}
	}
}

// TestMegaclientsWorkersEquivalence replays both million-client scenarios at
// EventWorkers 1 vs GOMAXPROCS on a shortened horizon: the binomial splits,
// the batch submissions and the director-routed global cohorts must all be
// worker-count-invariant at full scale, not just in the small deployments.
func TestMegaclientsWorkersEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the megaclients deployments once per worker count")
	}
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range cohortScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			run := func(workers int) []byte {
				sc, err := BuildScenario(name, 42)
				if err != nil {
					t.Fatal(err)
				}
				sc.Horizon = 5 * simclock.Minute
				sc.EventWorkers = workers
				res, err := Run(sc, np)
				if err != nil {
					t.Fatal(err)
				}
				return eventLoopFingerprint(t, res)
			}
			ref := run(1)
			if got := run(runtime.GOMAXPROCS(0)); !bytes.Equal(got, ref) {
				t.Fatalf("%s EventWorkers=GOMAXPROCS diverged from EventWorkers=1", name)
			}
		})
	}
}

// TestGoldenCohortScenarios byte-pins both million-client scenarios under
// policy2 — summary, routed counts (global-megaclients) and the SHA-256 of
// every raw series.  Regenerate with:
//
//	go test ./internal/experiment -run TestGoldenCohort -update
func TestGoldenCohortScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two 30-minute million-client simulations")
	}
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range cohortScenarioNames() {
		name := name
		t.Run(name+"/policy2", func(t *testing.T) {
			sc, err := BuildScenario(name, 42)
			if err != nil {
				t.Fatal(err)
			}
			sc.Horizon = goldenHorizon
			res, err := Run(sc, np)
			if err != nil {
				t.Fatal(err)
			}
			got := eventLoopFingerprint(t, res)
			path := filepath.Join("testdata", "golden", fmt.Sprintf("%s-policy2.json", name))
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to record): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("summary drifted from golden %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}

// TestCohortScenarioJSONRoundTrip: the cohort fields are plain data and must
// survive the config-file round trip (cmd/acmsim -dump-config / -config),
// per-region and global alike.
func TestCohortScenarioJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, name := range cohortScenarioNames() {
		sc, err := BuildScenario(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name+".json")
		if err := SaveScenarioFile(path, sc); err != nil {
			t.Fatal(err)
		}
		back, err := LoadScenarioFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if back.CohortClients != sc.CohortClients || back.TracerFraction != sc.TracerFraction ||
			back.ThinkTime != sc.ThinkTime || back.CohortTick != sc.CohortTick ||
			back.CohortMaxBatch != sc.CohortMaxBatch {
			t.Fatalf("%s: round trip lost cohort fields: %+v", name, back)
		}
		for i := range sc.Regions {
			if back.Regions[i].CohortClients != sc.Regions[i].CohortClients {
				t.Fatalf("%s: region %d CohortClients lost in round trip", name, i)
			}
		}
		if back.EffectiveClients() != sc.EffectiveClients() {
			t.Fatalf("%s: EffectiveClients %d != %d after round trip",
				name, back.EffectiveClients(), sc.EffectiveClients())
		}
	}
}
