package cli

import (
	"flag"
	"strings"
	"testing"
)

func TestRegisterSweepFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	sw := RegisterSweepFlags(fs, 7, "workers usage")
	if err := fs.Parse([]string{"-scenarios", "figure3,figure4", "-betas", "0.25,0.75", "-reps", "3"}); err != nil {
		t.Fatal(err)
	}
	if !sw.Active() {
		t.Fatal("sweep not active with -scenarios set")
	}
	if *sw.Workers != 7 {
		t.Fatalf("workers default %d, want the caller's 7", *sw.Workers)
	}
	m, err := sw.Matrix(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Scenarios) != 2 || m.Replications != 3 || m.BaseSeed != 42 {
		t.Fatalf("matrix %+v", m)
	}
	if len(m.Betas) != 2 || m.Betas[0] != 0.25 {
		t.Fatalf("betas %v", m.Betas)
	}
	if got := sw.Options().Workers; got != 7 {
		t.Fatalf("options workers %d", got)
	}
}

func TestMatrixRejectsBadBetas(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	sw := RegisterSweepFlags(fs, 0, "u")
	if err := fs.Parse([]string{"-scenarios", "figure3", "-betas", "0.25,nope"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Matrix(1); err == nil {
		t.Fatal("expected an error for a non-numeric beta")
	}
}

func TestSweepOnlyFlagNames(t *testing.T) {
	with := SweepOnlyFlagNames(true)
	without := SweepOnlyFlagNames(false)
	has := func(names []string, want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	if !has(with, "workers") || has(without, "workers") {
		t.Fatalf("workers handling wrong: with=%v without=%v", with, without)
	}
	for _, n := range []string{"sweep-csv", "sweep-json", "journal", "betas", "reps", "policies"} {
		if !has(with, n) || !has(without, n) {
			t.Fatalf("missing shared sweep-only flag %q", n)
		}
	}
}

func TestParseRTT(t *testing.T) {
	rtt, err := ParseRTT("global=60,120; americas = 80,140", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rtt) != 2 || rtt["global"][1] != 120 || rtt["americas"][0] != 80 {
		t.Fatalf("rtt %v", rtt)
	}

	// Errors keep the named-flag form so CLI output stays actionable.
	cases := []struct {
		spec    string
		regions int
		want    string
	}{
		{"globalnoequals", 2, "-rtt: row \"globalnoequals\" is not stream=ms1,ms2,..."},
		{"g=1,2;g=3,4", 2, `-rtt: stream "g" listed twice`},
		{"g=1,2,3", 2, `-rtt: stream "g" has 3 entries, want one per deployed region (2)`},
		{"g=1,x", 2, `-rtt: stream "g" entry 1:`},
		{" ; ", 2, `-rtt: no rows in`},
	}
	for _, c := range cases {
		_, err := ParseRTT(c.spec, c.regions)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("ParseRTT(%q) error %v, want substring %q", c.spec, err, c.want)
		}
	}
}

// TestParseRTTSeparatorTolerance: shell-quoted specs routinely pick up a
// trailing semicolon or blank interior rows; both must parse as if absent
// rather than turning into phantom streams.
func TestParseRTTSeparatorTolerance(t *testing.T) {
	for _, spec := range []string{
		"g=1,2;",
		";g=1,2",
		"g=1,2 ; ; ",
	} {
		rtt, err := ParseRTT(spec, 2)
		if err != nil {
			t.Fatalf("ParseRTT(%q): %v", spec, err)
		}
		if len(rtt) != 1 || rtt["g"][0] != 1 || rtt["g"][1] != 2 {
			t.Fatalf("ParseRTT(%q) = %v, want one g row", spec, rtt)
		}
	}
}

// TestParseRTTEdgeCases: malformed labels and cells each name the -rtt flag
// and the offending stream, so the CLI error is actionable without reading
// the parser.
func TestParseRTTEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		regions int
		want    string
	}{
		{"empty label", " =1,2", 2, "is not stream=ms1,ms2,..."},
		{"empty value list", "g=", 2, `-rtt: stream "g" has 1 entries, want one per deployed region (2)`},
		{"lone row short", "g=1", 2, `-rtt: stream "g" has 1 entries, want one per deployed region (2)`},
		{"blank cell", "g=1,,3", 3, `-rtt: stream "g" entry 1:`},
		{"whitespace cell", "g=1, ,3", 3, `-rtt: stream "g" entry 1:`},
		{"non-numeric tail", "g=1,2;h=3,4ms", 2, `-rtt: stream "h" entry 1:`},
		{"duplicate after trim", " g =1,2; g=3,4", 2, `-rtt: stream "g" listed twice`},
		{"duplicate with trailing sep", "g=1,2;g=3,4;", 2, `-rtt: stream "g" listed twice`},
		{"only separators", ";;;", 2, "-rtt: no rows in"},
		{"empty spec", "", 2, "-rtt: no rows in"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseRTT(c.spec, c.regions)
			if err == nil {
				t.Fatalf("ParseRTT(%q) succeeded, want error with %q", c.spec, c.want)
			}
			if !strings.HasPrefix(err.Error(), "-rtt: ") {
				t.Fatalf("ParseRTT(%q) error %q does not name the -rtt flag", c.spec, err)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("ParseRTT(%q) error %q, want substring %q", c.spec, err, c.want)
			}
		})
	}
}
