package ml

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// REPTree is a regression tree grown with variance reduction and pruned by
// reduced-error pruning on a held-out portion of the training data — the
// model the paper's evaluation selects for RTTF prediction (per the authors'
// prior F2PM results).
type REPTree struct {
	// MaxDepth bounds the depth of the grown tree (<=0 means the default 12).
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf (<=0 means 5).
	MinLeaf int
	// PruneFraction is the fraction of training data held out for
	// reduced-error pruning (defaults to 0.25; 0 disables pruning).
	PruneFraction float64

	root *treeNode
}

// treeNode is one node of a regression tree.  Leaves have left==right==nil.
type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	value     float64 // prediction when used as a leaf
	samples   int
}

func (n *treeNode) isLeaf() bool { return n.left == nil && n.right == nil }

// NewREPTree returns a REP-Tree with default hyper-parameters.
func NewREPTree() *REPTree {
	return &REPTree{MaxDepth: 12, MinLeaf: 5, PruneFraction: 0.25}
}

// Name implements Regressor.
func (t *REPTree) Name() string { return "REPTree" }

// Fit implements Regressor.
func (t *REPTree) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 {
		return ErrEmptyDataset
	}
	if len(x) != len(y) {
		return ErrDimensionMismatch
	}
	maxDepth := t.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 12
	}
	minLeaf := t.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 5
	}
	pruneFrac := t.PruneFraction
	if pruneFrac < 0 || pruneFrac >= 0.9 {
		pruneFrac = 0.25
	}

	// Deterministic grow/prune split: every 1/pruneFrac-th sample goes to the
	// pruning set.  This interleaving keeps both sets representative of the
	// whole degradation trajectory without requiring a random source.
	var growX, pruneX [][]float64
	var growY, pruneY []float64
	if pruneFrac > 0 && len(x) >= 4*minLeaf {
		stride := int(math.Round(1 / pruneFrac))
		if stride < 2 {
			stride = 2
		}
		for i := range x {
			if i%stride == stride-1 {
				pruneX = append(pruneX, x[i])
				pruneY = append(pruneY, y[i])
			} else {
				growX = append(growX, x[i])
				growY = append(growY, y[i])
			}
		}
	} else {
		growX, growY = x, y
	}

	idx := make([]int, len(growX))
	for i := range idx {
		idx[i] = i
	}
	t.root = growTree(growX, growY, idx, maxDepth, minLeaf)
	if len(pruneX) > 0 {
		pruneTree(t.root, pruneX, pruneY)
	}
	return nil
}

// growTree recursively builds a variance-reduction regression tree over the
// sample subset identified by idx.
func growTree(x [][]float64, y []float64, idx []int, depth, minLeaf int) *treeNode {
	node := &treeNode{value: meanAt(y, idx), samples: len(idx)}
	if depth <= 0 || len(idx) < 2*minLeaf {
		return node
	}
	feature, threshold, gain := bestSplit(x, y, idx, minLeaf)
	if gain <= 1e-12 {
		return node
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if x[i][feature] <= threshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) < minLeaf || len(rightIdx) < minLeaf {
		return node
	}
	node.feature = feature
	node.threshold = threshold
	node.left = growTree(x, y, leftIdx, depth-1, minLeaf)
	node.right = growTree(x, y, rightIdx, depth-1, minLeaf)
	return node
}

// bestSplit finds the (feature, threshold) pair maximising variance reduction.
func bestSplit(x [][]float64, y []float64, idx []int, minLeaf int) (feature int, threshold, gain float64) {
	feature = -1
	parentVar := varianceAt(y, idx) * float64(len(idx))
	if parentVar <= 0 {
		return -1, 0, 0
	}
	p := len(x[idx[0]])
	sorted := make([]int, len(idx))
	for f := 0; f < p; f++ {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, b int) bool { return x[sorted[a]][f] < x[sorted[b]][f] })

		// Prefix sums for O(n) split evaluation per feature.
		n := len(sorted)
		prefixSum := make([]float64, n+1)
		prefixSq := make([]float64, n+1)
		for i, id := range sorted {
			prefixSum[i+1] = prefixSum[i] + y[id]
			prefixSq[i+1] = prefixSq[i] + y[id]*y[id]
		}
		total := prefixSum[n]
		totalSq := prefixSq[n]
		for i := minLeaf; i <= n-minLeaf; i++ {
			// Skip splits between equal feature values.
			if x[sorted[i-1]][f] == x[sorted[i]][f] {
				continue
			}
			nl := float64(i)
			nr := float64(n - i)
			sl := prefixSum[i]
			sr := total - sl
			sql := prefixSq[i]
			sqr := totalSq - sql
			ssl := sql - sl*sl/nl
			ssr := sqr - sr*sr/nr
			g := parentVar - (ssl + ssr)
			if g > gain {
				gain = g
				feature = f
				threshold = (x[sorted[i-1]][f] + x[sorted[i]][f]) / 2
			}
		}
	}
	return feature, threshold, gain
}

// pruneTree applies reduced-error pruning: an internal node is collapsed to a
// leaf whenever the leaf's error on the pruning set is no worse than the
// subtree's.
func pruneTree(node *treeNode, px [][]float64, py []float64) float64 {
	if node == nil || len(px) == 0 {
		return 0
	}
	if node.isLeaf() {
		return sqErrAgainst(node.value, py)
	}
	var lx, rx [][]float64
	var ly, ry []float64
	for i, row := range px {
		if row[node.feature] <= node.threshold {
			lx = append(lx, row)
			ly = append(ly, py[i])
		} else {
			rx = append(rx, row)
			ry = append(ry, py[i])
		}
	}
	subtreeErr := pruneTree(node.left, lx, ly) + pruneTree(node.right, rx, ry)
	leafErr := sqErrAgainst(node.value, py)
	if leafErr <= subtreeErr {
		node.left = nil
		node.right = nil
		return leafErr
	}
	return subtreeErr
}

func sqErrAgainst(pred float64, ys []float64) float64 {
	s := 0.0
	for _, y := range ys {
		d := y - pred
		s += d * d
	}
	return s
}

func meanAt(y []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	s := 0.0
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func varianceAt(y []float64, idx []int) float64 {
	if len(idx) < 2 {
		return 0
	}
	m := meanAt(y, idx)
	s := 0.0
	for _, i := range idx {
		d := y[i] - m
		s += d * d
	}
	return s / float64(len(idx))
}

// Predict implements Regressor.
func (t *REPTree) Predict(row []float64) float64 {
	node := t.root
	if node == nil {
		return 0
	}
	for !node.isLeaf() {
		if node.feature < len(row) && row[node.feature] <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.value
}

// Depth returns the depth of the fitted tree (0 for a single leaf, -1 when
// unfitted).
func (t *REPTree) Depth() int {
	if t.root == nil {
		return -1
	}
	return nodeDepth(t.root)
}

func nodeDepth(n *treeNode) int {
	if n.isLeaf() {
		return 0
	}
	l, r := nodeDepth(n.left), nodeDepth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Leaves returns the number of leaves in the fitted tree.
func (t *REPTree) Leaves() int {
	if t.root == nil {
		return 0
	}
	return countLeaves(t.root)
}

func countLeaves(n *treeNode) int {
	if n.isLeaf() {
		return 1
	}
	return countLeaves(n.left) + countLeaves(n.right)
}

// String renders the tree structure for debugging.
func (t *REPTree) String() string {
	if t.root == nil {
		return "REPTree(unfitted)"
	}
	var b strings.Builder
	dumpNode(&b, t.root, 0)
	return b.String()
}

func dumpNode(b *strings.Builder, n *treeNode, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.isLeaf() {
		fmt.Fprintf(b, "%sleaf value=%.3f n=%d\n", indent, n.value, n.samples)
		return
	}
	fmt.Fprintf(b, "%sx[%d] <= %.3f (n=%d)\n", indent, n.feature, n.threshold, n.samples)
	dumpNode(b, n.left, depth+1)
	dumpNode(b, n.right, depth+1)
}

// M5P is a model tree: the structure is grown like a regression tree but each
// leaf holds a linear model fitted on the samples reaching it, with the leaf
// mean as a fallback when the local regression is degenerate.  This follows
// Wang & Witten's M5' construction in simplified form.
type M5P struct {
	// MaxDepth bounds the tree depth (<=0 means 6).
	MaxDepth int
	// MinLeaf is the minimum number of samples per leaf (<=0 means 12, larger
	// than REPTree because each leaf must support a regression).
	MinLeaf int

	root *m5Node
}

type m5Node struct {
	feature   int
	threshold float64
	left      *m5Node
	right     *m5Node
	model     *RidgeRegression
	mean      float64
	minLabel  float64
	maxLabel  float64
	samples   int
}

func (n *m5Node) isLeaf() bool { return n.left == nil && n.right == nil }

// NewM5P returns an M5P model tree with default hyper-parameters.
func NewM5P() *M5P { return &M5P{MaxDepth: 6, MinLeaf: 12} }

// Name implements Regressor.
func (t *M5P) Name() string { return "M5P" }

// Fit implements Regressor.
func (t *M5P) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 {
		return ErrEmptyDataset
	}
	if len(x) != len(y) {
		return ErrDimensionMismatch
	}
	maxDepth := t.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 6
	}
	minLeaf := t.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 12
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t.root = growM5(x, y, idx, maxDepth, minLeaf)
	return nil
}

func growM5(x [][]float64, y []float64, idx []int, depth, minLeaf int) *m5Node {
	node := &m5Node{mean: meanAt(y, idx), samples: len(idx)}
	node.minLabel, node.maxLabel = labelRangeAt(y, idx)
	fitLeafModel(node, x, y, idx)
	if depth <= 0 || len(idx) < 2*minLeaf {
		return node
	}
	feature, threshold, gain := bestSplit(x, y, idx, minLeaf)
	if gain <= 1e-12 {
		return node
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if x[i][feature] <= threshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) < minLeaf || len(rightIdx) < minLeaf {
		return node
	}
	node.feature = feature
	node.threshold = threshold
	node.left = growM5(x, y, leftIdx, depth-1, minLeaf)
	node.right = growM5(x, y, rightIdx, depth-1, minLeaf)
	return node
}

// labelRangeAt returns the min and max label among the indexed samples.
func labelRangeAt(y []float64, idx []int) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, i := range idx {
		if y[i] < lo {
			lo = y[i]
		}
		if y[i] > hi {
			hi = y[i]
		}
	}
	return lo, hi
}

// fitLeafModel attaches a linear model to the node when the local sample
// supports one; otherwise the node falls back to the mean.  The model is a
// lightly regularised ridge regression rather than plain OLS: leaves hold few
// samples relative to the feature count, and an unregularised local fit
// extrapolates wildly on held-out data (the original M5 algorithm prunes
// attributes per leaf for the same reason).
func fitLeafModel(node *m5Node, x [][]float64, y []float64, idx []int) {
	if len(idx) == 0 {
		return
	}
	p := len(x[idx[0]])
	if len(idx) < p+2 {
		return // not enough samples for a stable regression
	}
	lx := make([][]float64, len(idx))
	ly := make([]float64, len(idx))
	for i, id := range idx {
		lx[i] = x[id]
		ly[i] = y[id]
	}
	lm := NewRidgeRegression(1.0)
	if err := lm.Fit(lx, ly); err == nil {
		node.model = lm
	}
}

// Predict implements Regressor.  Leaf-model predictions are clamped to the
// label range observed at the leaf, which keeps the model tree from
// extrapolating far outside the data it was grown on.
func (t *M5P) Predict(row []float64) float64 {
	node := t.root
	if node == nil {
		return 0
	}
	for !node.isLeaf() {
		if node.feature < len(row) && row[node.feature] <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	pred := node.mean
	if node.model != nil {
		pred = node.model.Predict(row)
	}
	if math.IsNaN(pred) || math.IsInf(pred, 0) {
		return node.mean
	}
	if pred < node.minLabel {
		pred = node.minLabel
	}
	if pred > node.maxLabel {
		pred = node.maxLabel
	}
	return pred
}

// Leaves returns the number of leaves in the fitted model tree.
func (t *M5P) Leaves() int {
	if t.root == nil {
		return 0
	}
	var count func(*m5Node) int
	count = func(n *m5Node) int {
		if n.isLeaf() {
			return 1
		}
		return count(n.left) + count(n.right)
	}
	return count(t.root)
}
