# Build, verify and benchmark the ACM reproduction.
#
#   make check       # everything CI runs: fmt, vet, lint, build, race tests, bench gate
#   make test        # plain test suite
#   make race        # full suite under the race detector
#   make bench       # the complete evaluation as benchmarks
#   make bench-smoke # one cheap iteration of the Figure 3 benchmarks
#   make bench-json  # record BENCH_ci.json and gate it against BENCH_baseline.json
#   make lint        # golangci-lint (falls back to go vet when not installed)
#   make docs        # regenerate docs/SCENARIOS.md + docs/METRICS.md + docs/TRACING.md from the registries
#   make docs-check  # fail when generated docs are stale or links are dead
#   make metrics-lint # enforce Prometheus naming conventions on every family

GO ?= go

# The benchmark set the regression gate records and compares.  bench-json,
# bench-baseline and the CI bench-regression job (which runs `make
# bench-json`) all share this one definition, so the gate, the baseline and
# CI can never record different benchmark sets.
BENCH_GATE = $(GO) test -bench='RegionSharded|Figure3|GlobalDirector|GlobalLatency|CohortPopulation|Megaclients' -benchtime=1x -benchmem -run='^$$' .

.PHONY: check fmt vet lint build test test-repeat race bench bench-smoke bench-json bench-baseline docs docs-check metrics-lint

check: fmt vet lint build race test-repeat bench-json metrics-lint docs-check

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# The CI lint job runs golangci-lint (govet, staticcheck, errcheck,
# ineffassign, stylecheck/ST1000 — see .golangci.yml), pinned to v1.64.8 in
# .github/workflows/ci.yml; install the same release locally so `make lint`
# and CI agree.  We degrade to go vet when the binary is absent so `make
# check` works in a bare container.
lint:
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run ./...; \
	else \
		echo "golangci-lint not installed; running go vet only"; \
		$(GO) vet ./...; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-repeat:
	$(GO) test -short -count=2 ./internal/cloudsim/... ./internal/experiment/...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

bench-smoke:
	$(GO) test -bench=Figure3 -benchtime=1x -run='^$$' .

# Record the CI benchmark set as JSON and fail when any benchmark regressed
# beyond tolerance against the committed baseline: ns/op by more than 20%,
# B/op or allocs/op by more than 25%.  The compare step annotates
# BENCH_ci.json with a delta_pct section so the uploaded artifact shows every
# metric's movement without re-running.  Refresh the baseline deliberately
# with `make bench-baseline` when hardware changes or a PR intentionally
# trades speed for capability (procedure in the README).  BENCH_raw.txt is
# scratch output (gitignored).
bench-json:
	$(BENCH_GATE) > BENCH_raw.txt || (cat BENCH_raw.txt; exit 1)
	cat BENCH_raw.txt
	$(GO) run ./cmd/benchjson parse -in BENCH_raw.txt -out BENCH_ci.json
	$(GO) run ./cmd/benchjson compare -baseline BENCH_baseline.json -current BENCH_ci.json -max-regression 0.20 -max-mem-regression 0.25 -annotate

bench-baseline:
	$(BENCH_GATE) > BENCH_raw.txt || (cat BENCH_raw.txt; exit 1)
	cat BENCH_raw.txt
	$(GO) run ./cmd/benchjson parse -in BENCH_raw.txt -out BENCH_baseline.json

# docs/SCENARIOS.md, docs/METRICS.md and docs/TRACING.md are generated from
# the scenario registry, the instrument registry and the span catalogue; the
# committed copies are kept honest by TestScenariosDocCurrent,
# TestMetricsDocCurrent and TestTracingDocCurrent (and the CI docs job),
# which fail with "run make docs" whenever a registry and its document
# diverge.
docs:
	$(GO) run ./cmd/acmsim -list-scenarios -markdown > docs/SCENARIOS.md
	$(GO) run ./cmd/acmsim -list-metrics > docs/METRICS.md
	$(GO) run ./cmd/acmsim -list-tracing > docs/TRACING.md

# docs-check is what the CI docs job runs: the staleness tests for generated
# docs plus the relative-link checker over every tracked markdown document.
docs-check:
	$(GO) test ./internal/experiment/ -run 'TestScenariosDoc|TestScenariosMarkdown|TestMetricsDoc|TestMetricsMarkdown|TestTracingDoc|TestTracingMarkdown'
	$(GO) run ./cmd/mdcheck README.md ROADMAP.md CHANGES.md PAPER.md docs/*.md

# metrics-lint walks every instrument family a deployment can register and
# enforces the Prometheus naming conventions (valid names, counters ending in
# _total, HELP and source attribution present).
metrics-lint:
	$(GO) test ./internal/experiment/ -run TestMetricNamesLint
