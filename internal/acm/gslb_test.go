package acm

import (
	"strings"
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/gslb"
	"repro/internal/pcam"
	"repro/internal/simclock"
	"repro/internal/workload"
)

func twoRegionSetups(clients int) []RegionSetup {
	return []RegionSetup{
		{Region: cloudsim.PaperRegionConfig(cloudsim.PaperRegion1), Clients: clients},
		{Region: cloudsim.PaperRegionConfig(cloudsim.PaperRegion3), Clients: clients},
	}
}

// latencyGSLB is a minimal latency-aware GSLB config for the two paper
// regions of twoRegionSetups.
func latencyGSLB() gslb.Config {
	return gslb.Config{
		Policy: gslb.PolicyLatency,
		RTT:    map[string][]float64{"global": {50, 120}},
	}
}

// TestGSLBConfigValidation: the Manager rejects global wiring it cannot
// realise, with errors naming the offending field.
func TestGSLBConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"global clients without gslb", func(c *Config) { c.GlobalClients = 10 }, "no GSLB policy"},
		{"global arrival without gslb", func(c *Config) {
			c.Arrivals = []ArrivalSetup{{Name: "s", Rate: workload.RateSpec{Kind: workload.RateConstant, Rate: 1}}}
		}, "no GSLB policy"},
		{"unnamed arrival", func(c *Config) {
			c.Arrivals = []ArrivalSetup{{Rate: workload.RateSpec{Kind: workload.RateConstant, Rate: 1}, Region: "region1"}}
		}, "has no name"},
		{"duplicate arrival", func(c *Config) {
			c.Arrivals = []ArrivalSetup{
				{Name: "s", Rate: workload.RateSpec{Kind: workload.RateConstant, Rate: 1}, Region: "region1"},
				{Name: "s", Rate: workload.RateSpec{Kind: workload.RateConstant, Rate: 1}, Region: "region3"},
			}
		}, "listed twice"},
		{"bad rate spec", func(c *Config) {
			c.Arrivals = []ArrivalSetup{{Name: "s", Region: "region1"}}
		}, "unknown rate kind"},
		{"arrival to unknown region", func(c *Config) {
			c.Arrivals = []ArrivalSetup{{Name: "s", Rate: workload.RateSpec{Kind: workload.RateConstant, Rate: 1}, Region: "nowhere"}}
		}, "unknown region"},
		{"fault on unknown region", func(c *Config) {
			c.Faults = []RegionFault{{Region: "nowhere", At: simclock.Minute}}
		}, "unknown region"},
		{"bad gslb policy", func(c *Config) { c.GSLB = gslb.Config{Policy: "geo"} }, "unknown policy"},
		{"overlapping faults", func(c *Config) {
			c.Faults = []RegionFault{
				{Region: "region1", At: 10 * simclock.Minute, Duration: 10 * simclock.Minute},
				{Region: "region1", At: 15 * simclock.Minute, Duration: 10 * simclock.Minute},
			}
		}, "overlap"},
		{"fault after permanent fault", func(c *Config) {
			c.Faults = []RegionFault{
				{Region: "region1", At: 10 * simclock.Minute},
				{Region: "region1", At: 30 * simclock.Minute, Duration: simclock.Minute},
			}
		}, "overlap"},
		{"link fault without latency-aware gslb", func(c *Config) {
			c.GSLB = gslb.Config{Policy: gslb.PolicyRoundRobin}
			c.GlobalClients = 8
			c.LinkFaults = []LinkFault{{Stream: "global", Region: "region1", At: simclock.Minute, Factor: 2}}
		}, "latency-aware"},
		{"link fault on unknown stream", func(c *Config) {
			c.GSLB = latencyGSLB()
			c.GlobalClients = 8
			c.LinkFaults = []LinkFault{{Stream: "atlantis", Region: "region1", At: simclock.Minute, Factor: 2}}
		}, "unknown population stream"},
		{"link fault on unknown region", func(c *Config) {
			c.GSLB = latencyGSLB()
			c.GlobalClients = 8
			c.LinkFaults = []LinkFault{{Stream: "global", Region: "nowhere", At: simclock.Minute, Factor: 2}}
		}, "unknown region"},
		{"link fault on stream without RTT row", func(c *Config) {
			c.GSLB = latencyGSLB()
			c.GlobalClients = 8
			c.Arrivals = []ArrivalSetup{{Name: "s", Rate: workload.RateSpec{Kind: workload.RateConstant, Rate: 1}}}
			c.LinkFaults = []LinkFault{{Stream: "s", Region: "region1", At: simclock.Minute, Factor: 2}}
		}, "no GSLB.RTT row"},
		{"link fault with negative At", func(c *Config) {
			c.GSLB = latencyGSLB()
			c.GlobalClients = 8
			c.LinkFaults = []LinkFault{{Stream: "global", Region: "region1", At: -simclock.Minute, Factor: 2}}
		}, "negative At/Duration"},
		{"link fault with zero factor", func(c *Config) {
			c.GSLB = latencyGSLB()
			c.GlobalClients = 8
			c.LinkFaults = []LinkFault{{Stream: "global", Region: "region1", At: simclock.Minute}}
		}, "Factor"},
		{"overlapping link faults", func(c *Config) {
			c.GSLB = latencyGSLB()
			c.GlobalClients = 8
			c.LinkFaults = []LinkFault{
				{Stream: "global", Region: "region1", At: simclock.Minute, Factor: 2},
				{Stream: "global", Region: "region1", At: 2 * simclock.Minute, Duration: simclock.Minute, Factor: 3},
			}
		}, "overlap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Seed: 1, Regions: twoRegionSetups(8)}
			tc.mut(&cfg)
			_, err := NewManager(cfg)
			if err == nil {
				t.Fatalf("NewManager accepted invalid config")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestGSLBForcesEventLoop: enabling the director promotes EventWorkers 0 to
// the inline epochal engine.
func TestGSLBForcesEventLoop(t *testing.T) {
	cfg := Config{
		Seed:          1,
		Regions:       twoRegionSetups(8),
		GSLB:          gslb.Config{Policy: gslb.PolicyRoundRobin},
		GlobalClients: 16,
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.el == nil {
		t.Fatal("GSLB deployment did not select the sharded event loop")
	}
	if m.Director() == nil {
		t.Fatal("no director built")
	}
	if err := m.Run(5 * simclock.Minute); err != nil {
		t.Fatal(err)
	}
	routed := uint64(0)
	for _, n := range m.GSLBRouted() {
		routed += n
	}
	if routed == 0 {
		t.Fatal("director routed nothing")
	}
}

// TestSerialPinnedArrivals: region-pinned time-varying streams work on the
// serial engine (no GSLB involved) and are deterministic.
func TestSerialPinnedArrivals(t *testing.T) {
	run := func() (uint64, float64) {
		cfg := Config{
			Seed:    7,
			Regions: twoRegionSetups(8),
			Arrivals: []ArrivalSetup{
				{Name: "stream", Region: "region1", Rate: workload.RateSpec{
					Kind: workload.RateSinusoid, Base: 4, Amplitude: 2, Period: 10 * simclock.Minute,
				}},
			},
		}
		m, err := NewManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if m.el != nil {
			t.Fatal("pinned arrivals alone must not select the event loop")
		}
		if err := m.Run(10 * simclock.Minute); err != nil {
			t.Fatal(err)
		}
		met := m.Metrics()
		return met.Issued("stream"), met.MeanResponseTime("stream")
	}
	issued, mean := run()
	if issued == 0 {
		t.Fatal("pinned stream issued nothing")
	}
	// ~4/s over 10 minutes ≈ 2400.
	if issued < 1500 || issued > 3500 {
		t.Fatalf("pinned stream issued %d requests, want ~2400", issued)
	}
	issued2, mean2 := run()
	if issued != issued2 || mean != mean2 {
		t.Fatalf("serial arrival runs diverged: %d/%v vs %d/%v", issued, mean, issued2, mean2)
	}
}

// TestRegionFaultOutageAndRecovery: the scripted outage actually collapses
// the active pool and the controller repromotes it after the restore.
// Elasticity is deliberately ON: while the target is forced the ADDVMS
// branch must stay suspended — the blackout's slow drained completions
// would otherwise trip the response-time threshold and re-activate the
// capacity the fault took away.
func TestRegionFaultOutageAndRecovery(t *testing.T) {
	cfg := Config{
		Seed:    3,
		Regions: twoRegionSetups(8),
		VMC:     pcam.Config{ElasticityEnabled: true, ResponseTimeThreshold: 1.0},
		Faults: []RegionFault{
			{Region: "region1", At: 2 * simclock.Minute, Duration: 3 * simclock.Minute, KeepActive: 0},
		},
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	eng := m.Engine()
	var duringOutage, afterRecovery int
	// Sample late in the outage window, after several control ticks have
	// had the chance to (wrongly) promote standbys or trip ADDVMS.
	eng.ScheduleFunc(4*simclock.Minute+50*simclock.Second, func(*simclock.Engine) {
		duringOutage = m.VMC("region1").ActiveVMs()
	})
	eng.ScheduleFunc(9*simclock.Minute, func(*simclock.Engine) {
		afterRecovery = m.VMC("region1").ActiveVMs()
	})
	if err := eng.Run(10 * simclock.Minute); err != nil && err != simclock.ErrHorizonReached {
		t.Fatal(err)
	}
	m.Stop()
	if duringOutage != 0 {
		t.Fatalf("outage left %d ACTIVE VMs, want 0", duringOutage)
	}
	if afterRecovery == 0 {
		t.Fatal("region never repromoted after the outage")
	}
}
