package cloudsim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/features"
	"repro/internal/simclock"
)

func testVMConfig(id string) VMConfig {
	return VMConfig{
		ID:           id,
		Type:         M3Medium,
		Anomalies:    DefaultAnomalyProfile(),
		Failure:      DefaultFailurePoint(),
		Rejuvenation: DefaultRejuvenationModel(),
	}
}

func newTestVM(t *testing.T, id string) (*simclock.Engine, *VM) {
	t.Helper()
	eng := simclock.NewEngine(42)
	vm := NewVM(testVMConfig(id), eng.RNG().Fork())
	return eng, vm
}

func TestInstanceTypeRelativeSpeed(t *testing.T) {
	if got := M3Medium.RelativeSpeed(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("m3.medium relative speed = %v, want 1.0", got)
	}
	if M3Small.RelativeSpeed() >= M3Medium.RelativeSpeed() {
		t.Fatalf("m3.small should be slower than m3.medium")
	}
	if PrivateVM.RelativeSpeed() <= M3Medium.RelativeSpeed() {
		t.Fatalf("2-core private VM should have more aggregate compute than 1-core m3.medium")
	}
}

func TestDefaultProfilesMatchPaper(t *testing.T) {
	p := DefaultAnomalyProfile()
	if p.LeakProbability != 0.10 {
		t.Errorf("leak probability = %v, want 0.10 (paper §VI-A)", p.LeakProbability)
	}
	if p.ThreadProbability != 0.05 {
		t.Errorf("thread probability = %v, want 0.05 (paper §VI-A)", p.ThreadProbability)
	}
	fp := DefaultFailurePoint()
	if fp.ResponseTimeSLAMs != 1000 {
		t.Errorf("response-time SLA = %v ms, want 1000 (paper's 1 s threshold)", fp.ResponseTimeSLAMs)
	}
}

func TestVMStateStrings(t *testing.T) {
	cases := map[VMState]string{
		StateStandby:      "STANDBY",
		StateActive:       "ACTIVE",
		StateRejuvenating: "REJUVENATING",
		StateFailed:       "FAILED",
		VMState(99):       "VMState(99)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("VMState(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestVMStartsStandbyAndActivates(t *testing.T) {
	eng, vm := newTestVM(t, "vm1")
	if vm.State() != StateStandby {
		t.Fatalf("new VM state = %v, want STANDBY", vm.State())
	}
	if !vm.Activate(eng) {
		t.Fatalf("Activate on standby VM should succeed")
	}
	if vm.State() != StateActive {
		t.Fatalf("state after Activate = %v, want ACTIVE", vm.State())
	}
	if vm.Activate(eng) {
		t.Fatalf("Activate on an already-active VM should be rejected")
	}
}

func TestVMDeactivate(t *testing.T) {
	eng, vm := newTestVM(t, "vm1")
	if vm.Deactivate() {
		t.Fatalf("Deactivate on standby VM should fail")
	}
	vm.Activate(eng)
	if !vm.Deactivate() {
		t.Fatalf("Deactivate on active VM should succeed")
	}
	if vm.State() != StateStandby {
		t.Fatalf("state after Deactivate = %v, want STANDBY", vm.State())
	}
}

func TestDispatchToInactiveVMDrops(t *testing.T) {
	eng, vm := newTestVM(t, "vm1")
	var out Outcome
	req := &Request{ID: 1, ServiceFactor: 1, Arrival: eng.Now(), OnDone: func(o Outcome) { out = o }}
	if vm.Dispatch(eng, req) {
		t.Fatalf("Dispatch to a STANDBY VM should be rejected")
	}
	if !out.Dropped {
		t.Fatalf("request dispatched to a STANDBY VM should be reported dropped")
	}
	if vm.DroppedRequests() != 1 {
		t.Fatalf("dropped counter = %d, want 1", vm.DroppedRequests())
	}
}

func TestVMServesRequestsAndRecordsResponseTimes(t *testing.T) {
	eng, vm := newTestVM(t, "vm1")
	vm.Activate(eng)

	const n = 200
	done := 0
	var totalResp float64
	for i := 0; i < n; i++ {
		delay := simclock.Duration(float64(i) * 0.05)
		eng.ScheduleFunc(delay, func(e *simclock.Engine) {
			req := &Request{ID: uint64(i), Class: "home", ServiceFactor: 1, Arrival: e.Now(),
				OnDone: func(o Outcome) {
					if !o.Dropped {
						done++
						totalResp += o.ResponseTime().Seconds()
					}
				}}
			vm.Dispatch(e, req)
		})
	}
	eng.RunUntilEmpty()

	if done == 0 {
		t.Fatalf("no requests completed")
	}
	if vm.Served() != uint64(done) {
		t.Fatalf("Served() = %d, want %d", vm.Served(), done)
	}
	mean := totalResp / float64(done)
	if mean <= 0 || mean > 2 {
		t.Fatalf("mean response time = %v s, want a small positive value", mean)
	}
	if vm.MeanResponseTime() <= 0 {
		t.Fatalf("MeanResponseTime should be positive after serving requests")
	}
}

func TestAnomalyAccumulationAndDegradation(t *testing.T) {
	eng, vm := newTestVM(t, "vm1")
	vm.Activate(eng)
	if vm.DegradationFactor() != 1 {
		t.Fatalf("fresh VM degradation = %v, want 1", vm.DegradationFactor())
	}

	// Serve enough requests that leaks must accumulate (10% of requests leak).
	for i := 0; i < 2000; i++ {
		delay := simclock.Duration(float64(i) * 0.1)
		eng.ScheduleFunc(delay, func(e *simclock.Engine) {
			vm.Dispatch(e, &Request{ID: uint64(i), ServiceFactor: 1, Arrival: e.Now()})
		})
	}
	eng.RunUntilEmpty()

	if vm.LeakedMB() <= 0 {
		t.Fatalf("after 2000 requests the VM should have leaked memory")
	}
	if vm.ZombieThreads() <= 0 {
		t.Fatalf("after 2000 requests the VM should have unterminated threads")
	}
	if vm.DegradationFactor() <= 1 {
		t.Fatalf("degradation factor should exceed 1 once anomalies accumulated, got %v", vm.DegradationFactor())
	}
	if h := vm.HealthFraction(); h <= 0 || h >= 1 {
		t.Fatalf("health fraction should be strictly between 0 and 1 mid-life, got %v", h)
	}
}

func TestVMReachesFailurePointUnderSustainedLoad(t *testing.T) {
	eng := simclock.NewEngine(7)
	cfg := testVMConfig("vm1")
	// Use the small private VM so the memory budget is exhausted quickly.
	cfg.Type = PrivateVM
	vm := NewVM(cfg, eng.RNG().Fork())
	vm.Activate(eng)

	var failedAt simclock.Time
	failures := 0
	vm.OnFailure = func(_ *VM, at simclock.Time) { failures++; failedAt = at }

	// Drive a sustained 10 req/s stream for up to 3 simulated hours.
	var inject func(e *simclock.Engine)
	id := uint64(0)
	inject = func(e *simclock.Engine) {
		if vm.State() != StateActive {
			return
		}
		id++
		vm.Dispatch(e, &Request{ID: id, ServiceFactor: 1, Arrival: e.Now()})
		e.ScheduleFunc(0.1, inject)
	}
	eng.ScheduleFunc(0, inject)
	if err := eng.Run(3 * simclock.Hour); err != nil && err != simclock.ErrHorizonReached {
		t.Fatalf("run: %v", err)
	}

	if failures != 1 {
		t.Fatalf("expected exactly one failure, got %d", failures)
	}
	if vm.State() != StateFailed {
		t.Fatalf("state after failure = %v, want FAILED", vm.State())
	}
	if failedAt <= 0 {
		t.Fatalf("failure timestamp not recorded")
	}
	if vm.TrueRTTF(10) != 0 {
		t.Fatalf("TrueRTTF of a failed VM should be 0")
	}
}

func TestRejuvenationClearsAnomalies(t *testing.T) {
	eng, vm := newTestVM(t, "vm1")
	vm.Activate(eng)
	// Manually accumulate anomalies.
	vm.leakedMB = 500
	vm.zombieThreads = 20

	rejuvenated := false
	vm.OnRejuvenated = func(_ *VM, _ simclock.Time) { rejuvenated = true }

	if !vm.Rejuvenate(eng) {
		t.Fatalf("Rejuvenate should start")
	}
	if vm.State() != StateRejuvenating {
		t.Fatalf("state during rejuvenation = %v", vm.State())
	}
	if vm.Rejuvenate(eng) {
		t.Fatalf("a second Rejuvenate while rejuvenating should be rejected")
	}
	eng.RunUntilEmpty()

	if !rejuvenated {
		t.Fatalf("OnRejuvenated not invoked")
	}
	if vm.State() != StateStandby {
		t.Fatalf("state after rejuvenation = %v, want STANDBY", vm.State())
	}
	if vm.LeakedMB() != 0 || vm.ZombieThreads() != 0 {
		t.Fatalf("anomaly state should be cleared, got leaked=%v zombies=%d", vm.LeakedMB(), vm.ZombieThreads())
	}
	if vm.Rejuvenations() != 1 {
		t.Fatalf("rejuvenation counter = %d, want 1", vm.Rejuvenations())
	}
}

func TestRejuvenationDropsQueuedRequests(t *testing.T) {
	eng, vm := newTestVM(t, "vm1")
	vm.Activate(eng)
	dropped := 0
	for i := 0; i < 5; i++ {
		vm.Dispatch(eng, &Request{ID: uint64(i), ServiceFactor: 1, Arrival: eng.Now(),
			OnDone: func(o Outcome) {
				if o.Dropped {
					dropped++
				}
			}})
	}
	vm.Rejuvenate(eng)
	eng.RunUntilEmpty()
	// The in-flight request (1 vCPU => 1 in service) is also dropped when the
	// VM is rejuvenating at completion time, so all 5 end up dropped.
	if dropped == 0 {
		t.Fatalf("queued requests should be dropped when rejuvenation starts")
	}
}

func TestRecoverFromFailure(t *testing.T) {
	eng, vm := newTestVM(t, "vm1")
	vm.Activate(eng)
	vm.fail(eng)
	if vm.State() != StateFailed {
		t.Fatalf("state = %v, want FAILED", vm.State())
	}
	if !vm.RecoverFromFailure(eng) {
		t.Fatalf("RecoverFromFailure should start a rejuvenation")
	}
	eng.RunUntilEmpty()
	if vm.State() != StateStandby {
		t.Fatalf("state after recovery = %v, want STANDBY", vm.State())
	}
	if vm.RecoverFromFailure(eng) {
		t.Fatalf("RecoverFromFailure on a healthy VM should be rejected")
	}
}

func TestTrueRTTFDecreasesWithAccumulation(t *testing.T) {
	_, vm := newTestVM(t, "vm1")
	fresh := vm.TrueRTTF(5)
	if math.IsInf(fresh, 1) || fresh <= 0 {
		t.Fatalf("fresh RTTF at 5 req/s should be finite and positive, got %v", fresh)
	}
	if !math.IsInf(vm.TrueRTTF(0), 1) {
		t.Fatalf("RTTF at zero rate should be +Inf")
	}
	vm.leakedMB = 0.5 * vm.memoryBudgetMB()
	worn := vm.TrueRTTF(5)
	if worn >= fresh {
		t.Fatalf("RTTF should decrease as anomalies accumulate: fresh=%v worn=%v", fresh, worn)
	}
	// Higher request rate -> faster consumption -> lower RTTF.
	if vm.TrueRTTF(10) >= worn {
		t.Fatalf("RTTF should decrease with higher request rate")
	}
}

func TestSampleProducesFullFeatureVector(t *testing.T) {
	eng, vm := newTestVM(t, "vm1")
	vm.Activate(eng)
	for i := 0; i < 50; i++ {
		delay := simclock.Duration(float64(i) * 0.2)
		eng.ScheduleFunc(delay, func(e *simclock.Engine) {
			vm.Dispatch(e, &Request{ID: uint64(i), ServiceFactor: 1, Arrival: e.Now()})
		})
	}
	eng.RunUntilEmpty()

	v := vm.Sample(eng.Now())
	if v.VM != "vm1" {
		t.Fatalf("sample VM = %q", v.VM)
	}
	for _, name := range features.AllNames() {
		if _, ok := v.Values[name]; !ok {
			t.Errorf("feature %s missing from sample", name)
		}
	}
	if v.Get(features.RequestRate) <= 0 {
		t.Errorf("request rate feature should be positive after serving requests")
	}
	if v.Get(features.ResponseTimeMs) <= 0 {
		t.Errorf("response time feature should be positive after serving requests")
	}
	if v.Get(features.MemUsedMB) <= 0 {
		t.Errorf("memory used should be positive")
	}

	// A second sample immediately after reset sees an empty interval.
	v2 := vm.Sample(eng.Now())
	if v2.Get(features.RequestRate) != 0 {
		t.Errorf("request rate should reset between samples, got %v", v2.Get(features.RequestRate))
	}
}

func TestRegionInitialPools(t *testing.T) {
	rng := simclock.NewRNG(1)
	r := NewRegion(PaperRegionConfig(PaperRegion1), rng)
	if got := len(r.ActiveVMs()); got != 6 {
		t.Fatalf("region1 active VMs = %d, want 6 (paper §VI-A)", got)
	}
	if got := len(r.StandbyVMs()); got != 3 {
		t.Fatalf("region1 standby VMs = %d, want 3", got)
	}
	r2 := NewRegion(PaperRegionConfig(PaperRegion2), rng)
	if got := len(r2.ActiveVMs()); got != 12 {
		t.Fatalf("region2 active VMs = %d, want 12", got)
	}
	r3 := NewRegion(PaperRegionConfig(PaperRegion3), rng)
	if got := len(r3.ActiveVMs()); got != 4 {
		t.Fatalf("region3 active VMs = %d, want 4", got)
	}
	if r3.Config().Type.VCPUs != 2 || r3.Config().Type.MemoryMB != 1024 {
		t.Fatalf("region3 VM spec should be 2 vCPU / 1 GB, got %+v", r3.Config().Type)
	}
}

func TestRegionVMNamesAndLookup(t *testing.T) {
	r := NewRegion(PaperRegionConfig(PaperRegion3), simclock.NewRNG(1))
	vm := r.VMs()[0]
	if r.VM(vm.ID()) != vm {
		t.Fatalf("VM lookup by ID failed")
	}
	if r.VM("nonexistent") != nil {
		t.Fatalf("lookup of unknown VM should return nil")
	}
}

func TestRegionProvisionRespectsCap(t *testing.T) {
	cfg := PaperRegionConfig(PaperRegion3) // 4+2 VMs, cap 12
	r := NewRegion(cfg, simclock.NewRNG(1))
	if !r.CanProvision() {
		t.Fatalf("region should be able to provision below the cap")
	}
	added := r.Provision(100)
	if len(r.VMs()) != 12 {
		t.Fatalf("pool size after provisioning = %d, want cap 12", len(r.VMs()))
	}
	if len(added) != 6 {
		t.Fatalf("provisioned %d VMs, want 6", len(added))
	}
	for _, vm := range added {
		if vm.State() != StateStandby {
			t.Fatalf("provisioned VM should start STANDBY, got %v", vm.State())
		}
	}
	if r.CanProvision() {
		t.Fatalf("region at the cap should not provision more")
	}
	if more := r.Provision(1); len(more) != 0 {
		t.Fatalf("provisioning past the cap should return no VMs")
	}
}

func TestRegionComputeCapacityOrdering(t *testing.T) {
	r1 := NewRegion(PaperRegionConfig(PaperRegion1), simclock.NewRNG(1))
	r2 := NewRegion(PaperRegionConfig(PaperRegion2), simclock.NewRNG(2))
	r3 := NewRegion(PaperRegionConfig(PaperRegion3), simclock.NewRNG(3))
	c1, c2, c3 := r1.ComputeCapacity(), r2.ComputeCapacity(), r3.ComputeCapacity()
	if c1 <= 0 || c2 <= 0 || c3 <= 0 {
		t.Fatalf("capacities should be positive: %v %v %v", c1, c2, c3)
	}
	// Region 2 has 12 VMs (albeit small ones) and should out-muscle region 3's
	// 4 private VMs; region 3 is the smallest pool.
	if !(c3 < c1 && c3 < c2) {
		t.Fatalf("region 3 should have the least capacity: c1=%v c2=%v c3=%v", c1, c2, c3)
	}
}

func TestRegionTrueRMTTFHeterogeneity(t *testing.T) {
	r1 := NewRegion(PaperRegionConfig(PaperRegion1), simclock.NewRNG(1))
	r3 := NewRegion(PaperRegionConfig(PaperRegion3), simclock.NewRNG(3))
	// Under the same region-level request rate, the larger region (more VMs,
	// more memory headroom per VM) must show a higher mean time to failure.
	rate := 20.0
	if r1.TrueRMTTF(rate) <= r3.TrueRMTTF(rate) {
		t.Fatalf("region1 RMTTF should exceed region3 RMTTF at equal rate: r1=%v r3=%v",
			r1.TrueRMTTF(rate), r3.TrueRMTTF(rate))
	}
	if r1.TrueRMTTF(0) == 0 {
		t.Fatalf("RMTTF at zero rate should not be zero")
	}
	empty := NewRegion(RegionConfig{Name: "empty", Type: M3Medium}, simclock.NewRNG(9))
	if empty.TrueRMTTF(rate) != 0 {
		t.Fatalf("RMTTF of a region with no active VMs should be 0")
	}
}

func TestRegionStatsAndCost(t *testing.T) {
	eng := simclock.NewEngine(11)
	r := NewRegion(PaperRegionConfig(PaperRegion1), eng.RNG().Fork())
	vm := r.ActiveVMs()[0]
	vm.Dispatch(eng, &Request{ID: 1, ServiceFactor: 1, Arrival: eng.Now()})
	eng.RunUntilEmpty()

	s := r.Stats()
	if s.Region != "region1" || s.VMs != 9 || s.Active != 6 || s.Standby != 3 {
		t.Fatalf("unexpected stats: %+v", s)
	}
	if s.Served != 1 {
		t.Fatalf("served = %d, want 1", s.Served)
	}
	if s.String() == "" {
		t.Fatalf("stats string should not be empty")
	}
	if cost := r.HourlyCost(); math.Abs(cost-9*M3Medium.CostPerHour) > 1e-9 {
		t.Fatalf("hourly cost = %v, want %v", cost, 9*M3Medium.CostPerHour)
	}
	r3 := NewRegion(PaperRegionConfig(PaperRegion3), simclock.NewRNG(1))
	if r3.HourlyCost() != 0 {
		t.Fatalf("private region should have zero on-demand cost")
	}
}

func TestPaperTestbedConstruction(t *testing.T) {
	regions := PaperTestbed(99, PaperRegion3, PaperRegion1, PaperRegion2)
	if len(regions) != 3 {
		t.Fatalf("testbed regions = %d, want 3", len(regions))
	}
	// Regions come back sorted by paper index regardless of argument order.
	if regions[0].Name() != "region1" || regions[1].Name() != "region2" || regions[2].Name() != "region3" {
		t.Fatalf("unexpected region order: %s %s %s", regions[0].Name(), regions[1].Name(), regions[2].Name())
	}
}

func TestPaperRegionConfigPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for unknown paper region")
		}
	}()
	PaperRegionConfig(PaperRegion(42))
}

// Property: the health fraction is always within [0,1] and the degradation
// factor is always >= 1, no matter how much anomaly state is loaded onto the
// VM.
func TestHealthAndDegradationBoundsProperty(t *testing.T) {
	f := func(leak uint16, zombies uint8) bool {
		vm := NewVM(testVMConfig("p"), simclock.NewRNG(3))
		vm.leakedMB = float64(leak)
		vm.zombieThreads = int(zombies)
		h := vm.HealthFraction()
		d := vm.DegradationFactor()
		return h >= 0 && h <= 1 && d >= 1 && !math.IsNaN(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: TrueRTTF is non-negative and monotonically non-increasing in the
// request rate.
func TestTrueRTTFMonotoneProperty(t *testing.T) {
	f := func(leak uint16, rate1, rate2 uint8) bool {
		vm := NewVM(testVMConfig("p"), simclock.NewRNG(3))
		vm.leakedMB = float64(leak) / 20
		lo := float64(rate1%50) + 1
		hi := lo + float64(rate2%50) + 1
		a, b := vm.TrueRTTF(lo), vm.TrueRTTF(hi)
		return a >= 0 && b >= 0 && b <= a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkVMServeRequest(b *testing.B) {
	eng := simclock.NewEngine(1)
	vm := NewVM(testVMConfig("bench"), eng.RNG().Fork())
	vm.Activate(eng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm.Dispatch(eng, &Request{ID: uint64(i), ServiceFactor: 1, Arrival: eng.Now()})
		eng.Step()
		eng.Step()
	}
}
