package stats

import (
	"math"
	"testing"
)

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 10} {
		h.Observe(v)
	}
	// Bins are "first bound >= v": 1 lands in the le=1 bin, 10 overflows.
	want := []uint64{2, 1, 1, 1}
	got := h.Counts()
	if len(got) != len(want) {
		t.Fatalf("got %d bins, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bin %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-16) > 1e-12 {
		t.Fatalf("sum %v, want 16", h.Sum())
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 2})
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(9)

	a.Merge(b)
	if a.Count() != 3 || a.Counts()[0] != 1 || a.Counts()[1] != 1 || a.Counts()[2] != 1 {
		t.Fatalf("merge wrong: counts=%v count=%d", a.Counts(), a.Count())
	}
	if math.Abs(a.Sum()-11) > 1e-12 {
		t.Fatalf("merged sum %v, want 11", a.Sum())
	}

	// Merge order cannot matter: integer bin counts commute exactly.
	x := NewHistogram([]float64{1, 2})
	y := NewHistogram([]float64{1, 2})
	x.Observe(0.5)
	y.Observe(1.5)
	xy := NewHistogram([]float64{1, 2})
	xy.Merge(x)
	xy.Merge(y)
	yx := NewHistogram([]float64{1, 2})
	yx.Merge(y)
	yx.Merge(x)
	for i := range xy.Counts() {
		if xy.Counts()[i] != yx.Counts()[i] {
			t.Fatal("merge is not commutative")
		}
	}

	// Layout mismatches and nil sources are ignored, not corrupted.
	a.Merge(nil)
	a.Merge(NewHistogram([]float64{1, 2, 3}))
	if a.Count() != 3 {
		t.Fatalf("mismatched merge changed the histogram: count %d", a.Count())
	}
}

func TestHistogramCountsIsACopy(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(0.5)
	c := h.Counts()
	c[0] = 99
	if h.Counts()[0] != 1 {
		t.Fatal("Counts leaked internal state")
	}
}
