// Three-region experiment: the Figure 4 scenario of the paper.
//
// All three regions of the paper's hybrid testbed are deployed — 6 m3.medium
// VMs in Ireland, 12 m3.small VMs in Frankfurt and 4 private VMs in Munich —
// making the environment highly heterogeneous.  The example runs the three
// policies and prints the per-region RMTTF and workload-fraction series plus
// the summary comparison; the expected shape is the paper's: Policy 1 keeps
// oscillating, Policies 2 and 3 converge, Policy 2 converges fastest.
//
// Run with:
//
//	go run ./examples/threeregion
package main

import (
	"fmt"
	"log"

	"repro/internal/experiment"
	"repro/internal/simclock"
)

func main() {
	scenario := experiment.Figure4Scenario(42)
	scenario.Horizon = 90 * simclock.Minute

	results := map[string]*experiment.Result{}
	for _, np := range experiment.Policies() {
		fmt.Printf("running the three-region scenario under %s ...\n", np.Label)
		res, err := experiment.Run(scenario, np)
		if err != nil {
			log.Fatal(err)
		}
		results[np.Key] = res
		fmt.Print(experiment.FigureReport(res))
		fmt.Println()
	}

	fmt.Println("=== policy comparison (Figure 4) ===")
	fmt.Print(experiment.SummaryTable(results))
	fmt.Println("qualitative claims of Section VI-B:")
	fmt.Print(experiment.EvaluateClaims(results))

	// The redirection overhead the paper attributes to Policy 1's
	// oscillations shows up as cross-region forwarding.
	fmt.Println("cross-region forwarding (redirection overhead):")
	for _, np := range experiment.Policies() {
		fmt.Printf("  %-32s %.1f%% of requests forwarded between regions\n",
			np.Label, 100*results[np.Key].ForwardedFraction)
	}
}
