package gslb

import (
	"encoding/json"
	"testing"

	"repro/internal/simclock"
)

// routeCounts draws n routes from the table for the given stream and counts
// the per-region hits.
func routeCounts(t *Table, stream, regions, n int, seed uint64) []int {
	rng := simclock.NewRNG(seed)
	var rr uint64
	counts := make([]int, regions)
	for i := 0; i < n; i++ {
		counts[t.RouteStream(stream, rng, &rr)]++
	}
	return counts
}

// TestGSLBLatencyPrefersNearRegion: with asymmetric seeded RTTs and equal
// capacities, each stream's traffic concentrates on its nearest region.
func TestGSLBLatencyPrefersNearRegion(t *testing.T) {
	stub := newStub(3)
	d, err := NewDirector(Config{
		Policy:          PolicyLatency,
		LatencyExponent: 2,
		RTT: map[string][]float64{
			"west": {40, 160, 240},
			"east": {240, 160, 40},
		},
	}, regionNames(3), []string{"west", "east"}, stub.sample)
	if err != nil {
		t.Fatal(err)
	}
	if !d.LatencyAware() {
		t.Fatal("latency policy director is not latency-aware")
	}
	tab := d.Table()
	west := routeCounts(tab, 0, 3, 3000, 11)
	east := routeCounts(tab, 1, 3, 3000, 11)
	if west[0] <= west[2] || float64(west[0])/3000 < 0.8 {
		t.Fatalf("west stream routed %v, want concentrated on region 0", west)
	}
	if east[2] <= east[0] || float64(east[2])/3000 < 0.8 {
		t.Fatalf("east stream routed %v, want concentrated on region 2", east)
	}
}

// TestGSLBLatencyLearnsFromObservations: observations of a doubled RTT fold
// into the EWMA at the tick and shift the routing weights away from the
// slowed lane — the cable-cut mechanism in unit form.
func TestGSLBLatencyLearnsFromObservations(t *testing.T) {
	stub := newStub(2)
	d, err := NewDirector(Config{
		Policy:          PolicyLatency,
		LatencyExponent: 2,
		LatencyAlpha:    0.5,
		RTT:             map[string][]float64{"west": {40, 60}},
	}, regionNames(2), []string{"west"}, stub.sample)
	if err != nil {
		t.Fatal(err)
	}
	before := routeCounts(d.Table(), 0, 2, 4000, 5)
	if before[0] <= before[1] {
		t.Fatalf("seeded estimates routed %v, want majority to region 0", before)
	}

	// The cable to region 0 is cut: completions now observe 400 ms.  Several
	// probe intervals of observations walk the EWMA up.
	for tick := 1; tick <= 6; tick++ {
		for i := 0; i < 10; i++ {
			d.Observe(0, 0, 400, 1)
			d.Observe(0, 1, 60, 1)
		}
		d.Tick(simclock.Time(tick) * 15)
	}
	if est := d.LatencyEstimateMs(0, 0); est < 350 {
		t.Fatalf("EWMA after six intervals of 400 ms observations = %v ms, want > 350", est)
	}
	if est := d.LatencyEstimateMs(0, 1); est < 59 || est > 61 {
		t.Fatalf("untouched lane drifted: %v ms, want ~60", est)
	}
	after := routeCounts(d.Table(), 0, 2, 4000, 5)
	if after[0] >= after[1] {
		t.Fatalf("learned estimates still route %v to the slow region, want majority to region 1", after)
	}
	if p95 := d.LatencyP95Ms(0, 0); p95 < 350 {
		t.Fatalf("P² p95 = %v ms, want near 400", p95)
	}
	if n := d.LatencyObservations(0, 0); n != 60 {
		t.Fatalf("observation count = %d, want 60", n)
	}
}

// TestGSLBObserveBatchWeight: a cohort batch weighs the EWMA by its
// interaction count, not once per completion.
func TestGSLBObserveBatchWeight(t *testing.T) {
	stub := newStub(1)
	d, err := NewDirector(Config{
		Policy:       PolicyLatency,
		LatencyAlpha: 1,
		RTT:          map[string][]float64{"west": {100}},
	}, regionNames(1), []string{"west"}, stub.sample)
	if err != nil {
		t.Fatal(err)
	}
	d.Observe(0, 0, 10, 9) // a 9-interaction batch at 10 ms
	d.Observe(0, 0, 100, 1)
	d.Tick(15)
	// Weighted mean = (9*10 + 100) / 10 = 19; alpha 1 adopts it outright.
	if est := d.LatencyEstimateMs(0, 0); est != 19 {
		t.Fatalf("batch-weighted EWMA = %v, want 19", est)
	}
}

// TestGSLBStaleLaneKeepsEstimate: lanes without observations keep their
// estimate across ticks instead of decaying.
func TestGSLBStaleLaneKeepsEstimate(t *testing.T) {
	stub := newStub(2)
	d, err := NewDirector(Config{
		Policy: PolicyLatency,
		RTT:    map[string][]float64{"west": {40, 200}},
	}, regionNames(2), []string{"west"}, stub.sample)
	if err != nil {
		t.Fatal(err)
	}
	d.Tick(15)
	d.Tick(30)
	if est := d.LatencyEstimateMs(0, 1); est != 200 {
		t.Fatalf("unobserved lane moved to %v ms, want the 200 ms seed", est)
	}
}

// TestGSLBZeroWeightRowFallsBackToUniform is the bugfix regression: a static
// table whose only positively weighted region drained used to hand
// rng.Choice an all-zero distribution.  The row now degrades to uniform over
// the serving set.
func TestGSLBZeroWeightRowFallsBackToUniform(t *testing.T) {
	stub := newStub(3)
	d := newTestDirector(t, Config{
		Policy:         PolicyStatic,
		Weights:        []float64{1, 0, 0},
		UnhealthyAfter: 1,
		HealthyAfter:   2,
	}, stub)
	stub.active[0] = 0 // drain the only weighted region
	d.Tick(15)
	counts := routeCounts(d.Table(), 0, 3, 2000, 3)
	if counts[0] != 0 {
		t.Fatalf("drained region still routed: %v", counts)
	}
	if counts[1] == 0 || counts[2] == 0 {
		t.Fatalf("zero-weight fallback is not uniform over survivors: %v", counts)
	}
}

// TestGSLBLeastLoadZeroCapacityFallsBack: every survivor probing at capacity
// 0 (least-load's zero row) also degrades to uniform.
func TestGSLBLeastLoadZeroCapacityFallsBack(t *testing.T) {
	stub := newStub(2)
	d := newTestDirector(t, Config{Policy: PolicyLeastLoad, CapacityThreshold: DisabledThreshold}, stub)
	// Zero active VMs -> capacity 0, but the disabled capacity threshold
	// keeps both regions serving: the weight row is all zero.
	stub.active[0], stub.active[1] = 0, 0
	d.Tick(15)
	counts := routeCounts(d.Table(), 0, 2, 2000, 3)
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("zero-capacity least-load row is not uniform: %v", counts)
	}
}

// TestGSLBWeightsValidation is the bugfix's config-time half: negative or
// all-zero static weights are rejected with named-field errors.
func TestGSLBWeightsValidation(t *testing.T) {
	stub := newStub(2)
	for _, w := range [][]float64{{-1, 2}, {0, 0}} {
		if _, err := NewDirector(Config{Policy: PolicyStatic, Weights: w}, regionNames(2), nil, stub.sample); err == nil {
			t.Fatalf("NewDirector accepted Weights = %v", w)
		}
	}
	if _, err := NewDirector(Config{Policy: PolicyStatic, Weights: []float64{0, 3}}, regionNames(2), nil, stub.sample); err != nil {
		t.Fatalf("NewDirector rejected valid weights: %v", err)
	}
}

// TestGSLBCounterRegressionClamps is the underflow bugfix regression: a
// served counter that moves backwards must not underflow into a huge delta
// that trips the error threshold.
func TestGSLBCounterRegressionClamps(t *testing.T) {
	stub := newStub(2)
	d := newTestDirector(t, Config{Policy: PolicyFailover, UnhealthyAfter: 1}, stub)
	stub.served[0], stub.dropped[0] = 1000, 10
	d.Tick(15)
	if d.State(0) != Healthy {
		t.Fatalf("low drop ratio drained the region: %v", d.State(0))
	}
	// The region restarts: its counters regress to near zero.  With the
	// unsigned subtraction this produced dServed ~ 2^64 and dDropped ~ 2^64
	// (error rate garbage); the clamp resyncs instead.
	stub.served[0], stub.dropped[0] = 5, 8
	d.Tick(30)
	if d.State(0) != Healthy {
		t.Fatalf("counter regression drained the region: %v", d.State(0))
	}
	// And the probe after the regression measures deltas from the regressed
	// base, so real drops show up again.
	stub.served[0], stub.dropped[0] = 6, 100
	d.Tick(45)
	if d.State(0) != Drained {
		t.Fatalf("post-regression error burst missed: %v", d.State(0))
	}
}

// TestGSLBThresholdSentinels pins the -1 semantics: CapacityThreshold -1
// never drains on capacity, ErrorThreshold -1 counts any drop as a bad
// probe, and 0 still means "unset" (the defaults apply) so existing
// configurations keep their bytes.
func TestGSLBThresholdSentinels(t *testing.T) {
	// -1 capacity threshold: a zero-capacity region stays healthy.
	stub := newStub(2)
	d := newTestDirector(t, Config{Policy: PolicyFailover, CapacityThreshold: DisabledThreshold, UnhealthyAfter: 1}, stub)
	stub.active[0] = 0
	d.Tick(15)
	if d.State(0) != Healthy {
		t.Fatalf("disabled capacity threshold still drained: %v", d.State(0))
	}

	// -1 error threshold: a single drop in an interval is a bad probe.
	stub2 := newStub(2)
	d2 := newTestDirector(t, Config{Policy: PolicyFailover, ErrorThreshold: DisabledThreshold, UnhealthyAfter: 1}, stub2)
	stub2.served[0], stub2.dropped[0] = 10000, 1
	d2.Tick(15)
	if d2.State(0) != Drained {
		t.Fatalf("zero error tolerance missed a drop: %v", d2.State(0))
	}

	// 0 still selects the defaults.
	cfg := newTestDirector(t, Config{Policy: PolicyFailover}, newStub(1)).Config()
	if cfg.CapacityThreshold != 0.5 || cfg.ErrorThreshold != 0.5 {
		t.Fatalf("unset thresholds defaulted to %v/%v, want 0.5/0.5", cfg.CapacityThreshold, cfg.ErrorThreshold)
	}

	// Invalid negatives are named-field errors.
	for _, bad := range []Config{
		{Policy: PolicyFailover, CapacityThreshold: -0.5},
		{Policy: PolicyFailover, ErrorThreshold: -2},
	} {
		if _, err := NewDirector(bad, regionNames(1), nil, newStub(1).sample); err == nil {
			t.Fatalf("NewDirector accepted config %+v", bad)
		}
	}
}

// TestGSLBConfigJSONRoundTrip: the sentinel thresholds and the RTT matrix
// survive a JSON round trip unchanged.
func TestGSLBConfigJSONRoundTrip(t *testing.T) {
	in := Config{
		Policy:            PolicyLatency,
		CapacityThreshold: DisabledThreshold,
		ErrorThreshold:    DisabledThreshold,
		LatencyExponent:   2,
		LatencyAlpha:      0.25,
		RTT:               map[string][]float64{"west": {40, 160}, "east": {160, 40}},
	}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Config
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if out.CapacityThreshold != DisabledThreshold || out.ErrorThreshold != DisabledThreshold {
		t.Fatalf("thresholds round-tripped to %v/%v", out.CapacityThreshold, out.ErrorThreshold)
	}
	if out.LatencyExponent != 2 || out.LatencyAlpha != 0.25 {
		t.Fatalf("latency knobs round-tripped to %v/%v", out.LatencyExponent, out.LatencyAlpha)
	}
	if len(out.RTT) != 2 || out.RTT["west"][1] != 160 || out.RTT["east"][0] != 160 {
		t.Fatalf("RTT matrix round-tripped to %v", out.RTT)
	}
}

// TestGSLBRTTValidation: RTT rows must name known streams, match the region
// count and contain finite non-negative entries.
func TestGSLBRTTValidation(t *testing.T) {
	stub := newStub(2)
	streams := []string{"west"}
	cases := []map[string][]float64{
		{"unknown": {1, 2}}, // no such stream
		{"west": {1}},       // row length mismatch
		{"west": {-5, 2}},   // negative entry
	}
	for i, rtt := range cases {
		cfg := Config{Policy: PolicyLatency, RTT: rtt}
		if _, err := NewDirector(cfg, regionNames(2), streams, stub.sample); err == nil {
			t.Fatalf("case %d: NewDirector accepted RTT %v", i, rtt)
		}
	}
}

// TestGSLBFallbackTableEveryPolicy: with every region drained, each policy's
// fallback table still routes into the full preference order.
func TestGSLBFallbackTableEveryPolicy(t *testing.T) {
	for _, kind := range PolicyKinds() {
		stub := newStub(3)
		cfg := Config{Policy: kind, UnhealthyAfter: 1}
		if kind == PolicyStatic {
			cfg.Weights = []float64{0, 0, 1} // only region 2 weighted, and it drains too
		}
		if kind == PolicyLatency {
			cfg.RTT = map[string][]float64{"west": {40, 80, 120}}
		}
		d, err := NewDirector(cfg, regionNames(3), []string{"west"}, stub.sample)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for i := range stub.active {
			stub.active[i] = 0
		}
		d.Tick(15)
		d.Tick(30)
		for i, s := range d.States() {
			if s.Serving() {
				t.Fatalf("%s: region %d still serving", kind, i)
			}
		}
		tab := d.Table()
		if got := len(tab.Eligible()); got != 3 {
			t.Fatalf("%s: fallback table has %d eligible regions, want 3", kind, got)
		}
		counts := routeCounts(tab, 0, 3, 300, 9)
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != 300 {
			t.Fatalf("%s: fallback table dropped routes: %v", kind, counts)
		}
		if kind == PolicyRoundRobin && (counts[0] != 100 || counts[1] != 100 || counts[2] != 100) {
			t.Fatalf("rr fallback rotation uneven: %v", counts)
		}
		if kind == PolicyFailover && counts[0] != 300 {
			t.Fatalf("failover fallback must pin the preferred region: %v", counts)
		}
	}
}
