// Package f2pm reproduces the F2PM framework ("A Machine Learning-based
// Framework for Building Application Failure Prediction Models", DPDNS 2015)
// that ACM builds on.  F2PM is application-agnostic: during a profiling phase
// a thin monitoring client measures a large set of system features on each
// virtual machine and ships them to a feature monitor agent, which builds a
// labelled database; an automatic ML toolchain then selects the relevant
// features via Lasso regularisation, trains several candidate models (Linear
// Regression, M5P, REP-Tree, Lasso, SVM, LS-SVM), validates them, and reports
// the metrics that let the user pick the model used at runtime to predict the
// Remaining Time To Failure (RTTF).
package f2pm

import (
	"fmt"
	"strings"

	"repro/internal/features"
	"repro/internal/ml"
)

// Config tunes the F2PM training toolchain.
type Config struct {
	// TrainFraction is the fraction of each VM's (time-ordered) samples used
	// for training; the rest is the held-out test split.  Defaults to 0.7.
	TrainFraction float64
	// LassoLambda is the regularisation strength used for feature selection.
	// Defaults to 0.1.
	LassoLambda float64
	// MinFeatures is the minimum number of features the selection must keep.
	// Defaults to 4.
	MinFeatures int
	// CVFolds is the number of cross-validation folds computed for the chosen
	// model (informational).  Defaults to 5; set to 1 to skip.
	CVFolds int
	// PreferredModel forces the runtime model by name ("REPTree", "M5P", ...).
	// When empty the model with the smallest held-out RMSE is chosen.  The
	// paper selects REP-Tree based on the results in the F2PM paper.
	PreferredModel string
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.TrainFraction <= 0 || c.TrainFraction >= 1 {
		c.TrainFraction = 0.7
	}
	if c.LassoLambda <= 0 {
		c.LassoLambda = 0.1
	}
	if c.MinFeatures <= 0 {
		c.MinFeatures = 4
	}
	if c.CVFolds == 0 {
		c.CVFolds = 5
	}
	return c
}

// DefaultConfig returns the configuration used by the paper's evaluation:
// REP-Tree as the runtime predictor (selected per the authors' previous F2PM
// results), 70/30 time-ordered split and Lasso-based feature selection.
func DefaultConfig() Config {
	return Config{PreferredModel: "REPTree"}.withDefaults()
}

// SelectedFeature reports one feature retained by Lasso selection.
type SelectedFeature struct {
	// Name is the feature name.
	Name features.Name
	// Importance is the absolute standardised Lasso coefficient.
	Importance float64
}

// Report summarises a toolchain run: what was selected, how each candidate
// model scored, and which model became the runtime predictor.
type Report struct {
	// TrainSamples and TestSamples are the split sizes.
	TrainSamples int
	TestSamples  int
	// Selected lists the retained features, most important first.
	Selected []SelectedFeature
	// LassoLambda is the penalty that produced the selection.
	LassoLambda float64
	// Scores holds the held-out metrics of every candidate, best (smallest
	// RMSE) first.
	Scores []ml.ModelScore
	// Chosen is the name of the model installed as the runtime predictor.
	Chosen string
	// ChosenMetrics are the held-out metrics of the chosen model.
	ChosenMetrics ml.Metrics
	// CrossValidation holds the k-fold CV metrics of the chosen model (zero
	// value when CV was skipped).
	CrossValidation ml.Metrics
}

// FeatureNames returns just the names of the selected features.
func (r Report) FeatureNames() []features.Name {
	out := make([]features.Name, len(r.Selected))
	for i, s := range r.Selected {
		out[i] = s.Name
	}
	return out
}

// Table renders the model-comparison table (the E4 experiment of the
// reproduction): one row per candidate model with its held-out metrics.
func (r Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %12s %12s %10s %10s\n", "model", "MAE", "RMSE", "R2", "relErr")
	for _, s := range r.Scores {
		marker := " "
		if s.Name == r.Chosen {
			marker = "*"
		}
		fmt.Fprintf(&b, "%s%-17s %12.2f %12.2f %10.4f %10.4f\n",
			marker, s.Name, s.Metrics.MAE, s.Metrics.RMSE, s.Metrics.R2, s.Metrics.MeanRelativeError)
	}
	fmt.Fprintf(&b, "selected features (lambda=%.4g):", r.LassoLambda)
	for _, s := range r.Selected {
		fmt.Fprintf(&b, " %s(%.3f)", s.Name, s.Importance)
	}
	b.WriteByte('\n')
	return b.String()
}

// Model is the runtime RTTF predictor produced by the toolchain: the chosen
// regressor plus the feature subset it was trained on.
type Model struct {
	// Name is the model family name ("REPTree", ...).
	Name string
	// Features is the ordered feature subset the regressor expects.
	Features []features.Name
	// Regressor is the trained model.
	Regressor ml.Regressor
}

// PredictRTTF predicts the remaining time to failure, in seconds, from a raw
// feature vector.  Predictions are clamped at zero (a negative remaining time
// is meaningless to the controller).
func (m *Model) PredictRTTF(v features.Vector) float64 {
	row := v.Flatten(m.Features)
	p := m.Regressor.Predict(row)
	if p < 0 {
		return 0
	}
	return p
}

// Train runs the full F2PM toolchain on a labelled dataset and returns the
// runtime model together with the report.
func Train(ds *features.Dataset, cfg Config) (*Model, *Report, error) {
	cfg = cfg.withDefaults()
	if ds == nil || ds.Len() == 0 {
		return nil, nil, fmt.Errorf("f2pm: empty dataset")
	}

	train, test := ds.Split(cfg.TrainFraction)
	if train.Len() == 0 || test.Len() == 0 {
		return nil, nil, fmt.Errorf("f2pm: split produced an empty partition (train=%d test=%d)", train.Len(), test.Len())
	}

	trainX, trainY := train.Matrix()
	testX, testY := test.Matrix()

	// 1. Lasso feature selection on the training split.
	sel, err := ml.SelectFeaturesLasso(trainX, trainY, cfg.LassoLambda, cfg.MinFeatures)
	if err != nil {
		return nil, nil, fmt.Errorf("f2pm: feature selection: %w", err)
	}
	selNames := make([]features.Name, 0, len(sel.Selected))
	selected := make([]SelectedFeature, 0, len(sel.Selected))
	for _, idx := range sel.Selected {
		name := ds.Features[idx]
		selNames = append(selNames, name)
		selected = append(selected, SelectedFeature{Name: name, Importance: sel.Importance[idx]})
	}
	projTrainX := ml.ProjectColumns(trainX, sel.Selected)
	projTestX := ml.ProjectColumns(testX, sel.Selected)

	// 2. Train and rank all candidate models on the selected features.
	candidates := ml.DefaultCandidates(cfg.LassoLambda / 10)
	scores, err := ml.RankModels(candidates, projTrainX, trainY, projTestX, testY)
	if err != nil {
		return nil, nil, fmt.Errorf("f2pm: model ranking: %w", err)
	}

	// 3. Choose the runtime model.
	chosen := cfg.PreferredModel
	if chosen == "" {
		chosen = scores[0].Name
	}
	factory, ok := candidates[chosen]
	if !ok {
		return nil, nil, fmt.Errorf("f2pm: preferred model %q is not a known candidate", chosen)
	}
	var chosenMetrics ml.Metrics
	found := false
	for _, s := range scores {
		if s.Name == chosen {
			chosenMetrics = s.Metrics
			found = true
			break
		}
	}
	if !found {
		return nil, nil, fmt.Errorf("f2pm: chosen model %q missing from ranking", chosen)
	}

	// 4. Refit the chosen model on the full dataset (train+test) so the
	// runtime predictor uses every labelled sample, and compute k-fold CV for
	// the report.
	fullX, fullY := ds.Matrix()
	projFullX := ml.ProjectColumns(fullX, sel.Selected)
	runtimeModel := factory()
	if err := runtimeModel.Fit(projFullX, fullY); err != nil {
		return nil, nil, fmt.Errorf("f2pm: final fit of %s: %w", chosen, err)
	}
	var cv ml.Metrics
	if cfg.CVFolds > 1 {
		cv, err = ml.CrossValidate(factory, projFullX, fullY, cfg.CVFolds)
		if err != nil {
			return nil, nil, fmt.Errorf("f2pm: cross-validation: %w", err)
		}
	}

	model := &Model{Name: chosen, Features: selNames, Regressor: runtimeModel}
	report := &Report{
		TrainSamples:    train.Len(),
		TestSamples:     test.Len(),
		Selected:        selected,
		LassoLambda:     sel.Lambda,
		Scores:          scores,
		Chosen:          chosen,
		ChosenMetrics:   chosenMetrics,
		CrossValidation: cv,
	}
	return model, report, nil
}
