// Package gslb is the global traffic director of the deployment: the
// component that sits between client populations and cloud regions and
// decides, per request, which region serves it — the simulated counterpart
// of a DNS-level global server load balancer (GSLB).
//
// A Director owns one routing policy (static weights, round-robin,
// telemetry-driven least-load, health-driven failover, or latency-aware
// proximity routing) and a per-region health state machine fed by a periodic
// probe of region telemetry (active capacity and error signals).  The probe
// runs on the simulation's control timeline, so health transitions — and the
// routing-table snapshots derived from them — happen at deterministic
// timestamps while every region shard is idle.  Request-path routing only
// ever reads an immutable *Table snapshot with caller-owned RNG/rotation
// state, which is what keeps a deployment's output byte-identical for any
// event-loop worker count.
//
// The latency policy learns passively, the way OpenGSLB's advanced
// passive-latency-learning demo does: a per-(stream, region) RTT matrix
// seeds the estimates, every observed request completion is buffered by its
// issuing lane, and the buffers are folded into a per-lane EWMA (plus a P²
// streaming quantile for reports) at the next probe tick — on the control
// timeline, in lane-index order — so the estimates move at deterministic
// timestamps and the request path never writes shared state.
//
// The health model follows the shape of production GSLBs (OpenGSLB's
// health-checked geo/failover/weighted policies): a region serves while
// Healthy or Degraded, is excluded while Drained or Recovering, and both
// transitions are debounced by consecutive-probe streaks so a single noisy
// sample neither drains a region nor fails traffic back prematurely.
package gslb

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/cloudsim"
	"repro/internal/simclock"
	"repro/internal/stats"
	"repro/internal/validate"
)

// PolicyKind names a routing policy.
type PolicyKind string

const (
	// PolicyStatic splits traffic across serving regions by fixed weights.
	PolicyStatic PolicyKind = "static"
	// PolicyRoundRobin rotates across serving regions.  Each request stream
	// keeps its own rotation cursor, so the policy is deterministic for any
	// worker count.
	PolicyRoundRobin PolicyKind = "rr"
	// PolicyLeastLoad weights serving regions by the healthy-state service
	// capacity reported by the most recent probe, so traffic follows
	// capacity as regions degrade, rejuvenate and recover.
	PolicyLeastLoad PolicyKind = "leastload"
	// PolicyFailover sends all traffic to the most-preferred serving region
	// and fails over to the next preference when it drains, failing back
	// once the preferred region is healthy again.
	PolicyFailover PolicyKind = "failover"
	// PolicyLatency weights serving regions by healthy capacity divided by
	// the per-stream latency estimate raised to Config.LatencyExponent, so
	// each population stream prefers nearby regions without abandoning
	// capacity awareness.  Estimates are seeded from Config.RTT and learned
	// passively from observed completions (see Observe).
	PolicyLatency PolicyKind = "latency"
)

// PolicyKinds returns every routing policy in presentation order.
func PolicyKinds() []PolicyKind {
	return []PolicyKind{PolicyStatic, PolicyRoundRobin, PolicyLeastLoad, PolicyFailover, PolicyLatency}
}

// ParsePolicy validates a policy name from a CLI flag or config file,
// returning an error that lists the valid choices.
func ParsePolicy(s string) (PolicyKind, error) {
	for _, k := range PolicyKinds() {
		if string(k) == s {
			return k, nil
		}
	}
	names := make([]string, 0, len(PolicyKinds()))
	for _, k := range PolicyKinds() {
		names = append(names, string(k))
	}
	return "", fmt.Errorf("gslb: unknown policy %q (valid: %s)", s, strings.Join(names, ", "))
}

// DisabledThreshold is the sentinel that sets a health threshold to an
// effective zero.  The zero value of CapacityThreshold/ErrorThreshold means
// "unset" (the default applies), so an explicit zero — "never drain on
// capacity" for CapacityThreshold, "zero error tolerance" for ErrorThreshold
// — is expressed with -1 instead.
const DisabledThreshold = -1

// Config tunes the director.  The zero value means "no director"; setting
// Policy enables it.  All fields are plain data so scenarios embedding a
// Config round-trip through JSON.
type Config struct {
	// Policy selects the routing policy; empty disables the director.
	Policy PolicyKind
	// Weights are the static-weight policy's per-region weights, in
	// deployment order (uniform when empty).  Each weight must be
	// non-negative and at least one must be positive.  Ignored by other
	// policies.
	Weights []float64
	// Preference orders region names most-preferred first for the failover
	// policy (deployment order when empty).  Ignored by other policies.
	Preference []string
	// ProbeInterval is the health-probe period on the control timeline
	// (15 s when zero).
	ProbeInterval simclock.Duration
	// CapacityThreshold drains a region whose ACTIVE-VM fraction (relative
	// to its initial active pool) falls below this value.  0 means unset
	// (0.5 applies); DisabledThreshold (-1) means an effective zero, i.e.
	// never drain on capacity.
	CapacityThreshold float64
	// ErrorThreshold drains a region whose per-probe-interval drop ratio
	// (dropped / (served + dropped)) exceeds this value.  0 means unset
	// (0.5 applies); DisabledThreshold (-1) means an effective zero, i.e.
	// any drop in a probe interval counts as a bad probe.
	ErrorThreshold float64
	// UnhealthyAfter is the number of consecutive bad probes before a
	// serving region is drained (2 when zero).
	UnhealthyAfter int
	// HealthyAfter is the number of consecutive good probes before a
	// drained region serves again (4 when zero).
	HealthyAfter int
	// RTT seeds the latency estimates: milliseconds from a population
	// stream (key) to each region, columns in deployment order.  Streams
	// without a row start from a uniform 50 ms prior.  Any non-empty matrix
	// makes the deployment latency-aware (completions are observed and the
	// network round trips are simulated) even under a non-latency policy,
	// so policies can be compared on the same network.
	RTT map[string][]float64
	// LatencyExponent is the proximity exponent k of the latency policy's
	// weights (capacity / RTT^k).  0 means unset (1 applies).
	LatencyExponent float64
	// LatencyAlpha is the EWMA smoothing factor folding each probe
	// interval's observed mean RTT into a lane's estimate.  0 means unset
	// (0.3 applies); must lie in [0, 1].
	LatencyAlpha float64
}

// Enabled reports whether the configuration selects a director.
func (c Config) Enabled() bool { return c.Policy != "" }

// LatencyAware reports whether the configuration observes per-lane latency:
// either the latency policy is selected or an RTT matrix is present.
func (c Config) LatencyAware() bool {
	return c.Policy == PolicyLatency || len(c.RTT) > 0
}

// WithDefaults returns the configuration with every unset field replaced by
// its documented default.  Health-plane consumers outside this package (the
// gossip replicas) apply it once and then drive the probe state machine with
// the resolved values.
func (c Config) WithDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 15 * simclock.Second
	}
	// 0 is "unset" for the thresholds; the explicit-zero semantics ("never
	// drain on capacity", "zero error tolerance") are spelled
	// DisabledThreshold and map to an effective 0 here.
	switch c.CapacityThreshold {
	case DisabledThreshold:
		c.CapacityThreshold = 0
	case 0:
		c.CapacityThreshold = 0.5
	}
	switch c.ErrorThreshold {
	case DisabledThreshold:
		c.ErrorThreshold = 0
	case 0:
		c.ErrorThreshold = 0.5
	}
	if c.UnhealthyAfter <= 0 {
		c.UnhealthyAfter = 2
	}
	if c.HealthyAfter <= 0 {
		c.HealthyAfter = 4
	}
	if c.LatencyExponent == 0 {
		c.LatencyExponent = 1
	}
	if c.LatencyAlpha == 0 {
		c.LatencyAlpha = 0.3
	}
	return c
}

// HealthState is one region's position in the failover state machine.
type HealthState int

const (
	// Healthy: serving, no recent bad probes.
	Healthy HealthState = iota
	// Degraded: serving, but accumulating bad probes towards a drain.
	Degraded
	// Drained: excluded from routing until probes recover.
	Drained
	// Recovering: still excluded, accumulating good probes towards failback.
	Recovering
)

// String renders the state name.
func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Drained:
		return "drained"
	case Recovering:
		return "recovering"
	default:
		return fmt.Sprintf("HealthState(%d)", int(s))
	}
}

// Serving reports whether a region in this state receives traffic.
func (s HealthState) Serving() bool { return s == Healthy || s == Degraded }

// Transition records one health-state change, for reports and byte-pinned
// goldens.
type Transition struct {
	// At is the control-timeline timestamp of the probe that moved the
	// region.
	At simclock.Time
	// Region names the region.
	Region string
	// From and To are the states before and after.
	From, To HealthState
}

// String renders the transition on one line ("t=630s region1 degraded->drained").
func (t Transition) String() string {
	return fmt.Sprintf("t=%.0fs %s %s->%s", t.At.Seconds(), t.Region, t.From, t.To)
}

// Health is the per-region probe state: the debounced state machine one
// prober (the central Director, or the owning gossip replica) advances with
// each telemetry sample.  The zero value is a Healthy region with zero
// capacity; NewHealth starts the capacity at 1 (uniform until the first
// probe), which is what both the Director and the gossip plane use.
type Health struct {
	// State is the region's position in the failover state machine.
	State HealthState
	// Capacity is the last probed service capacity (the least-load weight).
	Capacity float64
	// Streak counters and counter-delta baselines; only the prober that owns
	// this Health mutates them, via Probe.
	badStreak   int
	goodStreak  int
	prevServed  uint64
	prevDropped uint64
}

// NewHealth returns the pre-first-probe state: Healthy with capacity 1.
func NewHealth() Health { return Health{Capacity: 1} }

// Probe advances the state machine with one telemetry sample and returns the
// states before and after (equal when nothing changed).  cfg must have
// defaults applied (WithDefaults).  The capacity fraction is measured against
// the region's initial active pool, served/dropped are cumulative counters
// diffed against the previous probe, and negative deltas (a counter
// regression through a fault path) clamp to zero rather than underflowing.
func (h *Health) Probe(cfg Config, tel cloudsim.Telemetry) (from, to HealthState) {
	from = h.State
	h.Capacity = tel.Capacity

	baseline := tel.BaselineActive
	if baseline <= 0 {
		baseline = 1
	}
	capFrac := float64(tel.ActiveVMs) / float64(baseline)
	var dServed, dDropped uint64
	if tel.Served >= h.prevServed {
		dServed = tel.Served - h.prevServed
	}
	if tel.Dropped >= h.prevDropped {
		dDropped = tel.Dropped - h.prevDropped
	}
	h.prevServed, h.prevDropped = tel.Served, tel.Dropped
	errRate := 0.0
	if total := dServed + dDropped; total > 0 {
		errRate = float64(dDropped) / float64(total)
	}
	bad := capFrac < cfg.CapacityThreshold || errRate > cfg.ErrorThreshold

	if bad {
		h.goodStreak = 0
		h.badStreak++
	} else {
		h.badStreak = 0
		h.goodStreak++
	}
	next := h.State
	if h.State.Serving() {
		switch {
		case h.badStreak >= cfg.UnhealthyAfter:
			next = Drained
		case h.badStreak > 0:
			next = Degraded
		default:
			next = Healthy
		}
	} else {
		switch {
		case h.goodStreak >= cfg.HealthyAfter:
			next = Healthy
		case h.goodStreak > 0:
			next = Recovering
		default:
			next = Drained
		}
	}
	h.State = next
	return from, next
}

// laneEstimate is the passive latency state of one (stream, region) lane:
// the EWMA estimate routing weighs, a P² p95 for reports, and the current
// probe interval's observation accumulator (folded and reset at each tick).
type laneEstimate struct {
	estMs    float64 // EWMA round-trip estimate, milliseconds
	quant    *stats.P2Quantile
	obsSum   float64 // interaction-weighted RTT sum since the last tick, ms
	obsCount uint64  // interaction-weighted observation count since the last tick
}

// defaultSeedMs is the uniform prior for streams without a Config.RTT row.
const defaultSeedMs = 50

// latFloorMs clamps the latency-policy denominator so a learned
// near-zero estimate cannot blow a weight up to infinity.
const latFloorMs = 1

// Director is the global traffic director.  Tick (probe + table rebuild) is
// control-timeline-only; the request path reads immutable Table snapshots.
type Director struct {
	cfg     Config
	regions []string
	streams []string
	sample  func(i int) cloudsim.Telemetry
	health  []Health
	lanes   [][]laneEstimate // [stream][region], nil unless latency-aware
	pref    []int            // preference order as region indices
	table   *Table
	trans   []Transition
	probes  uint64
}

// NewDirector builds a director over the named regions (deployment order).
// streams names the population streams whose requests the director routes
// (deployment order; a single "default" stream when empty) — the latency
// policy keeps one estimate lane per (stream, region).  sample returns the
// current telemetry of region i; it is only called from Tick.  The initial
// routing table treats every region as Healthy with its probe-time capacity
// unknown (uniform least-load weights) — the first probe replaces it.
func NewDirector(cfg Config, regions, streams []string, sample func(i int) cloudsim.Telemetry) (*Director, error) {
	if !cfg.Enabled() {
		return nil, fmt.Errorf("gslb: config has no policy")
	}
	if _, err := ParsePolicy(string(cfg.Policy)); err != nil {
		return nil, err
	}
	if len(regions) == 0 {
		return nil, fmt.Errorf("gslb: no regions")
	}
	if sample == nil {
		return nil, fmt.Errorf("gslb: nil telemetry sampler")
	}
	if err := validateConfig(cfg, regions, streams); err != nil {
		return nil, err
	}
	cfg = cfg.WithDefaults()
	if len(streams) == 0 {
		streams = []string{"default"}
	}
	pref, err := PreferenceOrder(cfg.Preference, regions)
	if err != nil {
		return nil, err
	}
	d := &Director{
		cfg:     cfg,
		regions: append([]string(nil), regions...),
		streams: append([]string(nil), streams...),
		sample:  sample,
		health:  make([]Health, len(regions)),
		pref:    pref,
	}
	for i := range d.health {
		d.health[i] = NewHealth()
	}
	if cfg.LatencyAware() {
		d.lanes = make([][]laneEstimate, len(streams))
		for s, name := range d.streams {
			d.lanes[s] = make([]laneEstimate, len(regions))
			row := cfg.RTT[name]
			for r := range d.lanes[s] {
				seed := float64(defaultSeedMs)
				if len(row) == len(regions) {
					seed = row[r]
				}
				d.lanes[s][r].estMs = seed
				d.lanes[s][r].quant = stats.NewP2Quantile(0.95)
			}
		}
	}
	d.table = d.buildTable()
	return d, nil
}

// PreferenceOrder resolves a Config.Preference list into region indices:
// named regions first, then every unlisted region as a last-resort backup in
// deployment order.  An empty preference yields plain deployment order.
// Unknown and duplicated names are rejected.
func PreferenceOrder(preference, regions []string) ([]int, error) {
	index := make(map[string]int, len(regions))
	for i, r := range regions {
		index[r] = i
	}
	pref := make([]int, 0, len(regions))
	if len(preference) > 0 {
		seen := map[int]bool{}
		for _, name := range preference {
			i, ok := index[name]
			if !ok {
				return nil, fmt.Errorf("gslb: preference names unknown region %q", name)
			}
			if seen[i] {
				return nil, fmt.Errorf("gslb: region %q listed twice in preference", name)
			}
			seen[i] = true
			pref = append(pref, i)
		}
		// Unlisted regions become last-resort backups in deployment order.
		for i := range regions {
			if !seen[i] {
				pref = append(pref, i)
			}
		}
	} else {
		for i := range regions {
			pref = append(pref, i)
		}
	}
	return pref, nil
}

// Validate rejects configurations a director (central or replicated) cannot
// honour, with errors that name the offending field.  It runs on the raw
// config, before defaults are applied, so the threshold sentinels are still
// distinguishable.
func (c Config) Validate(regions, streams []string) error {
	return validateConfig(c, regions, streams)
}

func validateConfig(cfg Config, regions, streams []string) error {
	if len(cfg.Weights) > 0 {
		if len(cfg.Weights) != len(regions) {
			return validate.Fieldf("gslb", "Weights", "has %d static weights for %d regions", len(cfg.Weights), len(regions))
		}
		positive := false
		for i, w := range cfg.Weights {
			if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
				return validate.Fieldf("gslb", fmt.Sprintf("Weights[%d]", i), "= %v; weights must be finite and non-negative", w)
			}
			if w > 0 {
				positive = true
			}
		}
		if !positive {
			return validate.Fieldf("gslb", "Weights", "must contain at least one positive entry")
		}
	}
	if t := cfg.CapacityThreshold; t != DisabledThreshold && (math.IsNaN(t) || t < 0) {
		return validate.Fieldf("gslb", "CapacityThreshold", "= %v; must be >= 0 or DisabledThreshold (-1)", t)
	}
	if t := cfg.ErrorThreshold; t != DisabledThreshold && (math.IsNaN(t) || t < 0) {
		return validate.Fieldf("gslb", "ErrorThreshold", "= %v; must be >= 0 or DisabledThreshold (-1)", t)
	}
	if k := cfg.LatencyExponent; math.IsNaN(k) || math.IsInf(k, 0) || k < 0 {
		return validate.Fieldf("gslb", "LatencyExponent", "= %v; must be finite and >= 0", k)
	}
	if a := cfg.LatencyAlpha; math.IsNaN(a) || a < 0 || a > 1 {
		return validate.Fieldf("gslb", "LatencyAlpha", "= %v; must lie in [0, 1]", a)
	}
	if len(cfg.RTT) > 0 {
		known := make(map[string]bool, len(streams))
		for _, s := range streams {
			known[s] = true
		}
		for name, row := range cfg.RTT {
			if !known[name] {
				return validate.Fieldf("gslb", fmt.Sprintf("RTT[%q]", name), "names no population stream (streams: %s)", strings.Join(streams, ", "))
			}
			if len(row) != len(regions) {
				return validate.Fieldf("gslb", fmt.Sprintf("RTT[%q]", name), "has %d entries for %d regions", len(row), len(regions))
			}
			for r, ms := range row {
				if math.IsNaN(ms) || math.IsInf(ms, 0) || ms < 0 {
					return validate.Fieldf("gslb", fmt.Sprintf("RTT[%q][%d]", name, r), "= %v; must be finite and >= 0", ms)
				}
			}
		}
	}
	seen := make(map[string]bool, len(streams))
	for _, s := range streams {
		if seen[s] {
			return validate.Fieldf("gslb", "streams", "%q listed twice", s)
		}
		seen[s] = true
	}
	return nil
}

// Config returns the director configuration with defaults applied.
func (d *Director) Config() Config { return d.cfg }

// Regions returns the region names in deployment order.
func (d *Director) Regions() []string { return append([]string(nil), d.regions...) }

// Streams returns the population stream names in deployment order.
func (d *Director) Streams() []string { return append([]string(nil), d.streams...) }

// LatencyAware reports whether the director keeps per-lane latency estimates
// (and therefore expects Observe calls).
func (d *Director) LatencyAware() bool { return d.lanes != nil }

// Table returns the current routing-table snapshot.
func (d *Director) Table() *Table { return d.table }

// States returns the current health state of every region, in deployment
// order.
func (d *Director) States() []HealthState {
	out := make([]HealthState, len(d.health))
	for i := range d.health {
		out[i] = d.health[i].State
	}
	return out
}

// State returns the health state of region i.
func (d *Director) State(i int) HealthState { return d.health[i].State }

// Transitions returns every health-state change so far, in probe order.
func (d *Director) Transitions() []Transition { return append([]Transition(nil), d.trans...) }

// Probes returns the number of completed probe ticks.
func (d *Director) Probes() uint64 { return d.probes }

// Observe feeds one completed request's observed round trip (milliseconds)
// into the (stream, region) lane, weighted by the number of client
// interactions the request stood for (1 for a plain request, the batch size
// for a cohort batch).  Like Tick it must run on the control timeline:
// callers buffer observations per issuing lane and flush the buffers in
// lane-index order right before the probe tick, which keeps the
// floating-point fold — and therefore every estimate — byte-reproducible for
// any worker count.  No-op unless the director is latency-aware.
func (d *Director) Observe(stream, region int, rttMs float64, weight uint64) {
	if d.lanes == nil || stream < 0 || stream >= len(d.lanes) || region < 0 || region >= len(d.regions) {
		return
	}
	if weight == 0 {
		weight = 1
	}
	lane := &d.lanes[stream][region]
	lane.obsSum += rttMs * float64(weight)
	lane.obsCount += weight
	lane.quant.Add(rttMs)
}

// LatencyEstimateMs returns the current EWMA round-trip estimate of the
// (stream, region) lane in milliseconds (0 when the director is not
// latency-aware).
func (d *Director) LatencyEstimateMs(stream, region int) float64 {
	if d.lanes == nil {
		return 0
	}
	return d.lanes[stream][region].estMs
}

// LatencyP95Ms returns the lane's P² p95 round-trip estimate in milliseconds
// (0 before any observation, or when the director is not latency-aware).
func (d *Director) LatencyP95Ms(stream, region int) float64 {
	if d.lanes == nil {
		return 0
	}
	return d.lanes[stream][region].quant.Value()
}

// LatencyObservations returns how many interaction-weighted observations the
// lane's quantile sketch has folded in.
func (d *Director) LatencyObservations(stream, region int) uint64 {
	if d.lanes == nil {
		return 0
	}
	return d.lanes[stream][region].quant.Count()
}

// Tick runs one health probe: it samples every region's telemetry, folds the
// buffered latency observations into the per-lane estimates, advances the
// per-region state machines and rebuilds the routing table.  It must run on
// the control timeline (exclusive access to the regions); the returned
// snapshot is what callers republish to their request-path readers.
func (d *Director) Tick(now simclock.Time) *Table {
	d.probes++
	for i := range d.health {
		from, to := d.health[i].Probe(d.cfg, d.sample(i))
		if from != to {
			d.trans = append(d.trans, Transition{At: now, Region: d.regions[i], From: from, To: to})
		}
	}
	d.foldLatency()
	d.table = d.buildTable()
	return d.table
}

// foldLatency folds each lane's buffered observation interval into its EWMA
// estimate and resets the accumulators.  Lanes without observations keep
// their previous estimate — a drained region's lane goes stale rather than
// decaying, exactly what a passive learner sees.
func (d *Director) foldLatency() {
	for s := range d.lanes {
		for r := range d.lanes[s] {
			lane := &d.lanes[s][r]
			if lane.obsCount == 0 {
				continue
			}
			mean := lane.obsSum / float64(lane.obsCount)
			lane.estMs += d.cfg.LatencyAlpha * (mean - lane.estMs)
			lane.obsSum, lane.obsCount = 0, 0
		}
	}
}

// servingList returns the serving region indices in preference order.  When
// every region is drained, routing somewhere beats routing nowhere, so it
// falls back to the full preference order (the requests surface as
// drops/errors at the regions, which is the honest outcome).
func servingList(pref []int, health []Health) []int {
	serving := make([]int, 0, len(pref))
	for _, i := range pref {
		if health[i].State.Serving() {
			serving = append(serving, i)
		}
	}
	if len(serving) == 0 {
		serving = append(serving, pref...)
	}
	return serving
}

// BuildTable derives an immutable routing snapshot from a preference order
// (PreferenceOrder) and per-region health, for the static, round-robin,
// least-load and failover policies.  cfg must have defaults applied.  The
// latency policy additionally needs per-lane estimates and is built by the
// Director only; BuildTable panics on it so a replicated caller cannot
// silently route without estimates.
func BuildTable(cfg Config, pref []int, health []Health) *Table {
	if cfg.Policy == PolicyLatency {
		panic("gslb: BuildTable cannot build the latency policy (Director-only)")
	}
	serving := servingList(pref, health)
	t := &Table{mode: cfg.Policy, eligible: serving}
	switch cfg.Policy {
	case PolicyStatic:
		t.weights = make([]float64, len(serving))
		for j, i := range serving {
			if len(cfg.Weights) == len(health) {
				t.weights[j] = cfg.Weights[i]
			} else {
				t.weights[j] = 1
			}
		}
		normalizeWeights(t.weights)
	case PolicyLeastLoad:
		t.weights = make([]float64, len(serving))
		for j, i := range serving {
			t.weights[j] = health[i].Capacity
		}
		normalizeWeights(t.weights)
	}
	return t
}

// buildTable derives the immutable routing snapshot from the current health
// states, probe capacities and latency estimates.
func (d *Director) buildTable() *Table {
	if d.cfg.Policy != PolicyLatency {
		return BuildTable(d.cfg, d.pref, d.health)
	}
	serving := servingList(d.pref, d.health)
	t := &Table{mode: d.cfg.Policy, eligible: serving}
	t.rows = make([][]float64, len(d.lanes))
	for s := range d.lanes {
		row := make([]float64, len(serving))
		for j, i := range serving {
			est := d.lanes[s][i].estMs
			if est < latFloorMs {
				est = latFloorMs
			}
			row[j] = d.health[i].Capacity / math.Pow(est, d.cfg.LatencyExponent)
		}
		normalizeWeights(row)
		t.rows[s] = row
	}
	return t
}

// normalizeWeights repairs a degenerate weight row in place: when every
// entry is zero (the only statically weighted region drained, every
// survivor probed at capacity 0) or any entry is non-finite, the row
// degrades to uniform so rng.Choice always sees a well-defined distribution.
func normalizeWeights(w []float64) {
	total := 0.0
	for _, x := range w {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			total = 0
			break
		}
		total += x
	}
	if total > 0 {
		return
	}
	for i := range w {
		w[i] = 1
	}
}

// Table is an immutable routing snapshot.  It is safe for any number of
// concurrent readers; all mutable routing state (the RNG for weighted picks,
// the rotation cursor for round-robin) is owned by the caller, so two
// request streams never contend and every stream's routing sequence is a
// deterministic function of its own request sequence.
type Table struct {
	mode     PolicyKind
	eligible []int       // serving region indices, preference-ordered
	weights  []float64   // aligned with eligible (static / least-load)
	rows     [][]float64 // latency policy: per-stream weights over eligible
}

// Mode returns the policy kind of the snapshot.
func (t *Table) Mode() PolicyKind { return t.mode }

// Eligible returns the serving region indices, preference-ordered.
func (t *Table) Eligible() []int { return append([]int(nil), t.eligible...) }

// Route picks the destination region index for one request of the first
// population stream.  rng supplies the weighted draw of the static,
// least-load and latency policies; rr is the caller's round-robin cursor
// (advanced only by the round-robin policy).
func (t *Table) Route(rng *simclock.RNG, rr *uint64) int {
	return t.RouteStream(0, rng, rr)
}

// RouteStream picks the destination region index for one request of the
// given population stream.  Only the latency policy differentiates streams
// (each has its own weight row); every other policy ignores the index.
func (t *Table) RouteStream(stream int, rng *simclock.RNG, rr *uint64) int {
	switch t.mode {
	case PolicyRoundRobin:
		i := t.eligible[int(*rr%uint64(len(t.eligible)))]
		*rr++
		return i
	case PolicyFailover:
		return t.eligible[0]
	case PolicyLatency:
		if stream < 0 || stream >= len(t.rows) {
			stream = 0
		}
		return t.eligible[rng.Choice(t.rows[stream])]
	default: // static, leastload
		return t.eligible[rng.Choice(t.weights)]
	}
}
