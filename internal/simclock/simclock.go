// Package simclock provides the discrete-event simulation kernel used by the
// ACM Framework reproduction: a simulated clock, a priority event queue, and a
// deterministic pseudo-random number generator.
//
// The paper's evaluation runs on a real testbed (Amazon EC2 + a private
// server); this package is the substrate that replaces wall-clock time so the
// whole system can be exercised deterministically on a laptop.  All components
// of the simulated world (virtual machines, clients, controllers, the overlay
// network) schedule work as events against a single Engine.
package simclock

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Time is a simulated timestamp expressed in seconds since the start of the
// simulation.  A float64 keeps the arithmetic simple and is precise enough for
// the multi-hour horizons used by the experiments (sub-microsecond resolution
// over days).
type Time float64

// Duration is a simulated time span in seconds.
type Duration float64

// Common duration helpers, mirroring the time package so call sites read
// naturally (e.g. 5*simclock.Second).
const (
	Millisecond Duration = 1e-3
	Second      Duration = 1
	Minute      Duration = 60
	Hour        Duration = 3600
)

// Add returns the time shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the timestamp as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) }

// Std converts a simulated duration to a time.Duration for reporting.
func (d Duration) Std() time.Duration { return time.Duration(float64(d) * float64(time.Second)) }

// Seconds returns the duration as a float64 number of seconds.
func (d Duration) Seconds() float64 { return float64(d) }

// String renders the time as "[s=123.456]".
func (t Time) String() string { return fmt.Sprintf("[s=%.3f]", float64(t)) }

// Event is a unit of scheduled work.  Fire is invoked with the engine so the
// handler can schedule follow-up events.
type Event interface {
	// Fire executes the event at its scheduled time.
	Fire(eng *Engine)
}

// EventFunc adapts a plain function to the Event interface.
type EventFunc func(eng *Engine)

// Fire implements Event.
func (f EventFunc) Fire(eng *Engine) { f(eng) }

// scheduled is an internal heap entry.
type scheduled struct {
	at    Time
	seq   uint64 // tie-breaker to keep FIFO order for same-time events
	ev    Event
	index int
	dead  bool
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	entry *scheduled
}

// Cancel prevents the event from firing.  Cancelling an already-fired or
// already-cancelled event is a no-op.
func (h Handle) Cancel() {
	if h.entry != nil {
		h.entry.dead = true
	}
}

// Cancelled reports whether the handle has been cancelled or already fired.
func (h Handle) Cancelled() bool { return h.entry == nil || h.entry.dead }

type eventHeap []*scheduled

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*scheduled)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// ErrHorizonReached is returned by Run when the configured horizon is hit
// before the event queue drains.
var ErrHorizonReached = errors.New("simclock: horizon reached")

// Engine is the discrete-event simulation engine.  It is not safe for
// concurrent use: the simulated world is single-threaded by design so that
// runs are reproducible.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	rng     *RNG
	fired   uint64
	horizon Time
	stopped bool

	// lastFiredAt is the timestamp of the most recently fired event — the
	// flight recorder reads it at each epoch barrier to split the epoch into
	// a busy prefix and an idle tail (sharded.go, flight.go).
	lastFiredAt Time

	// inParallelPhase is set while ParallelPhase (barrier.go) fans shard-local
	// work out to goroutines; scheduling is rejected during that window so a
	// handler that violates the shard-local contract fails loudly instead of
	// corrupting the event queue.
	inParallelPhase bool

	// cluster and shardIndex are set when the engine is a sub-engine (or the
	// control timeline) of a ShardedEngine (sharded.go).  executing is true
	// while the engine's own loop is running events; together with the
	// cluster's inShardPhase flag it lets ScheduleAt reject cross-shard
	// scheduling during a parallel epoch.
	cluster    *ShardedEngine
	shardIndex int
	executing  atomic.Bool
}

// NewEngine returns an engine starting at time zero with the given RNG seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed), horizon: Time(math.Inf(1)), shardIndex: -1}
}

// ShardIndex returns the engine's index within its owning ShardedEngine: the
// shard number for a sub-engine, NumShards() for the control timeline, and
// -1 for a standalone engine.
func (e *Engine) ShardIndex() int { return e.shardIndex }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random number generator.
func (e *Engine) RNG() *RNG { return e.rng }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// LastEventAt returns the timestamp of the most recently fired event (zero
// before any event has fired).
func (e *Engine) LastEventAt() Time { return e.lastFiredAt }

// Pending returns the number of events currently scheduled (including
// cancelled entries not yet drained).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues ev to fire after delay d (relative to Now).  Negative
// delays are clamped to zero.
func (e *Engine) Schedule(d Duration, ev Event) Handle {
	if d < 0 {
		d = 0
	}
	return e.ScheduleAt(e.now.Add(d), ev)
}

// ScheduleFunc is a convenience wrapper around Schedule for plain functions.
func (e *Engine) ScheduleFunc(d Duration, fn func(*Engine)) Handle {
	return e.Schedule(d, EventFunc(fn))
}

// ScheduleAt enqueues ev to fire at the absolute simulated time at.  Times in
// the past are clamped to Now so causality is preserved.
func (e *Engine) ScheduleAt(at Time, ev Event) Handle {
	if e.inParallelPhase {
		panic("simclock: Schedule during a parallel phase (parallel-phase work must be shard-local; schedule from the merge phase instead)")
	}
	if e.cluster != nil && e.cluster.inShardPhase.Load() && !e.executing.Load() {
		// A goroutine of the parallel epoch is scheduling onto an engine
		// whose own loop is idle — i.e. onto a foreign shard (or the control
		// timeline).  Cross-shard effects must go through the mailbox.
		panic("simclock: Schedule on a foreign sub-engine during a parallel epoch (post to its mailbox instead)")
	}
	if at < e.now {
		at = e.now
	}
	s := &scheduled{at: at, seq: e.seq, ev: ev}
	e.seq++
	heap.Push(&e.queue, s)
	return Handle{entry: s}
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue is empty, the
// horizon is exceeded, or Stop is called.  It returns ErrHorizonReached when
// the horizon cut the run short, and nil otherwise.
func (e *Engine) Run(horizon Duration) error {
	e.horizon = Time(horizon)
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > e.horizon {
			e.now = e.horizon
			return ErrHorizonReached
		}
		heap.Pop(&e.queue)
		if next.dead {
			continue
		}
		e.now = next.at
		next.dead = true
		next.ev.Fire(e)
		e.fired++
	}
	if !e.stopped && e.now < e.horizon && !math.IsInf(float64(e.horizon), 1) {
		// Advance to the horizon even if the queue drained early so metrics
		// sampled "at the end of the run" observe the full window.
		e.now = e.horizon
	}
	return nil
}

// runEpoch executes every live event with a timestamp <= end in (time, seq)
// order and advances the clock to end.  It is the per-shard slice of one
// lockstep epoch (sharded.go): exactly the serial engine's loop, bounded by
// the epoch barrier instead of a horizon, with the executing flag raised so
// the cross-shard scheduling guard can tell this engine's own loop apart
// from a foreign goroutine.
func (e *Engine) runEpoch(end Time) {
	e.executing.Store(true)
	defer e.executing.Store(false)
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.at > end {
			break
		}
		heap.Pop(&e.queue)
		if next.dead {
			continue
		}
		e.now = next.at
		e.lastFiredAt = next.at
		next.dead = true
		next.ev.Fire(e)
		e.fired++
	}
	if e.now < end {
		e.now = end
	}
}

// NextEventTime returns the timestamp of the earliest live pending event and
// whether one exists, discarding cancelled entries at the heap root on the
// way.
func (e *Engine) NextEventTime() (Time, bool) {
	for len(e.queue) > 0 {
		if e.queue[0].dead {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0].at, true
	}
	return 0, false
}

// hasLiveEvents reports whether any non-cancelled event is pending.
func (e *Engine) hasLiveEvents() bool {
	_, ok := e.NextEventTime()
	return ok
}

// RunUntilEmpty executes all scheduled events with no horizon.
func (e *Engine) RunUntilEmpty() {
	e.horizon = Time(math.Inf(1))
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := heap.Pop(&e.queue).(*scheduled)
		if next.dead {
			continue
		}
		e.now = next.at
		next.dead = true
		next.ev.Fire(e)
		e.fired++
	}
}

// Step executes the single next pending event, if any, and reports whether an
// event fired.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		next := heap.Pop(&e.queue).(*scheduled)
		if next.dead {
			continue
		}
		e.now = next.at
		next.dead = true
		next.ev.Fire(e)
		e.fired++
		return true
	}
	return false
}

// PendingTimes returns the timestamps of all live pending events in ascending
// order.  Intended for tests and debugging.
func (e *Engine) PendingTimes() []Time {
	var out []Time
	for _, s := range e.queue {
		if !s.dead {
			out = append(out, s.at)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Ticker schedules fn every period until the returned stop function is called
// or the engine drains.  The first invocation happens after one period.
func (e *Engine) Ticker(period Duration, fn func(*Engine)) (stop func()) {
	if period <= 0 {
		panic("simclock: ticker period must be positive")
	}
	stopped := false
	var tick func(*Engine)
	tick = func(eng *Engine) {
		if stopped {
			return
		}
		fn(eng)
		if !stopped {
			eng.ScheduleFunc(period, tick)
		}
	}
	e.ScheduleFunc(period, tick)
	return func() { stopped = true }
}
