package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Checkpoint/resume for long sweeps: RunMatrixWithJournal appends one JSON
// line per completed job to a journal file, and on a later invocation with
// the same matrix skips every job the journal already holds.  Per-job seeds
// are derived from (BaseSeed, replication) at expansion time, so a resumed
// run is bit-identical to an uninterrupted one — the journal only decides
// *which* jobs still need running, never what they compute.

// journalEntry is one completed job on disk.  The identity fields are
// checked against the expanded matrix on resume, so a journal written for a
// different matrix (or a stale one) fails loudly instead of silently
// skipping the wrong jobs.
type journalEntry struct {
	Index    int    `json:"index"`
	Scenario string `json:"scenario"`
	Policy   string `json:"policy"`
	Seed     uint64 `json:"seed"`
	// HorizonS is the job's simulated horizon in seconds.  Name, policy and
	// seed alone would accept rows from the same matrix run at a different
	// -hours/-horizon, which simulates a different experiment.
	HorizonS float64  `json:"horizonS"`
	Row      SweepRow `json:"row"`
}

// loadJournal reads the journal, tolerating a torn tail (the crash artifact
// the journal exists for).  Entries whose identity does not match the job at
// their index are an error.  The second return value is the byte length of
// the newline-terminated valid prefix: the torn tail must be truncated away
// before the journal is appended to again, otherwise the next entry would
// concatenate onto the torn bytes and corrupt the line that records it.  A
// final line that parses but lacks its newline is counted as torn too — its
// job simply re-runs (bit-identical, per-job derived seeds), which is
// cheaper than distinguishing "lost the newline" from "lost half the line".
func loadJournal(path string, jobs []Job) (map[int]SweepRow, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[int]SweepRow{}, 0, nil
		}
		return nil, 0, err
	}

	done := map[int]SweepRow{}
	line := 0
	off := 0
	var validBytes int64
	for off < len(data) {
		line++
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// Newline-less tail: torn, regardless of whether the JSON
			// happens to parse.  Everything before it stays valid.
			break
		}
		raw := data[off : off+nl]
		off += nl + 1
		if len(raw) > 0 {
			var e journalEntry
			if err := json.Unmarshal(raw, &e); err != nil {
				// A complete (newline-terminated) line that does not parse
				// is not a crash artifact — the file is not a journal we
				// wrote.
				return nil, 0, fmt.Errorf("experiment: journal %s line %d is corrupt: %w", path, line, err)
			}
			if e.Index < 0 || e.Index >= len(jobs) {
				return nil, 0, fmt.Errorf("experiment: journal %s entry %d indexes job %d of %d — journal belongs to a different matrix",
					path, line, e.Index, len(jobs))
			}
			job := jobs[e.Index]
			if e.Scenario != job.Scenario.Name || e.Policy != job.Policy.Key || e.Seed != job.Scenario.Seed ||
				e.HorizonS != job.Scenario.Horizon.Seconds() {
				return nil, 0, fmt.Errorf("experiment: journal %s entry %d (%s/%s seed %d horizon %gs) does not match job %d (%s/%s seed %d horizon %gs) — journal belongs to a different matrix",
					path, line, e.Scenario, e.Policy, e.Seed, e.HorizonS,
					e.Index, job.Scenario.Name, job.Policy.Key, job.Scenario.Seed, job.Scenario.Horizon.Seconds())
			}
			done[e.Index] = e.Row
		}
		validBytes = int64(off)
	}
	return done, validBytes, nil
}

// RunMatrixWithJournal expands the matrix, skips every job already recorded
// in the journal at path, runs the remainder on the parallel pool (each
// completion is appended to the journal as it lands, so a kill at any point
// loses at most the in-flight jobs) and returns the full set of sweep rows
// in job order.  A cancelled context returns the rows completed so far along
// with the context error; re-invoking with the same matrix and journal
// resumes from the missing jobs only.
func RunMatrixWithJournal(ctx context.Context, m Matrix, opt Options, path string) ([]SweepRow, error) {
	jobs, err := m.Expand()
	if err != nil {
		return nil, err
	}
	done, validBytes, err := loadJournal(path, jobs)
	if err != nil {
		return nil, err
	}
	// Chop a torn tail off before appending: O_APPEND after a crashed
	// half-line would otherwise concatenate the next entry onto the torn
	// bytes, losing that entry on every future load.
	if st, err := os.Stat(path); err == nil && st.Size() > validBytes {
		if err := os.Truncate(path, validBytes); err != nil {
			return nil, err
		}
	}

	pending := make([]Job, 0, len(jobs)-len(done))
	for _, job := range jobs {
		if _, ok := done[job.Index]; !ok {
			pending = append(pending, job)
		}
	}

	rows := make([]SweepRow, len(jobs))
	completed := make([]bool, len(jobs))
	for idx, row := range done {
		rows[idx] = row
		completed[idx] = true
	}

	if len(pending) > 0 {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var mu sync.Mutex
		enc := json.NewEncoder(f)

		runErr := ForEach(ctx, len(pending), opt.Workers, func(i int) error {
			job := pending[i]
			res, jobErr := Run(job.Scenario, job.Policy)
			row := RowFromJobResult(JobResult{Job: job, Result: res, Err: jobErr})

			mu.Lock()
			defer mu.Unlock()
			rows[job.Index] = row
			completed[job.Index] = true
			// One JSON object per line, flushed per job: a kill mid-sweep
			// loses at most the jobs still in flight.
			return enc.Encode(journalEntry{
				Index:    job.Index,
				Scenario: job.Scenario.Name,
				Policy:   job.Policy.Key,
				Seed:     job.Scenario.Seed,
				HorizonS: job.Scenario.Horizon.Seconds(),
				Row:      row,
			})
		})
		if runErr != nil {
			// Return what completed; the journal already holds it, so the
			// next invocation resumes from the rest.
			partial := make([]SweepRow, 0, len(jobs))
			for idx, row := range rows {
				if completed[idx] {
					partial = append(partial, row)
				}
			}
			return partial, runErr
		}
	}
	return rows, nil
}
