package experiment

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/simclock"
)

func init() {
	// A reduced figure-3-shaped scenario so parallel sweeps stay fast in unit
	// tests; registered once for every test in the package.
	registerTestScenario("quick-test", "reduced two-region scenario for unit tests", func(seed uint64) Scenario {
		sc := quickScenario(seed)
		sc.Horizon = 12 * simclock.Minute
		return sc
	})
}

// fingerprint serialises everything observable about a job result so runs can
// be compared byte-for-byte: the summary row plus every recorded raw series.
func fingerprint(t *testing.T, jr JobResult) []byte {
	t.Helper()
	if jr.Err != nil {
		t.Fatalf("job %d (%s/%s): %v", jr.Job.Index, jr.Job.Scenario.Name, jr.Job.Policy.Key, jr.Err)
	}
	r := jr.Result
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s/%s eras=%d conv=%v spread=%v convTime=%v osc=%v dirs=%v meanRT=%v tailRT=%v sla=%v success=%v fwd=%v rejuv=%d crashes=%d fractions=%v\n",
		r.Scenario.Name, r.PolicyKey, r.Eras,
		r.RMTTFConvergence.Converged, r.RMTTFConvergence.RelativeSpread, r.RMTTFConvergence.ConvergenceTime,
		r.FractionOscillation, r.FractionDirectionChanges,
		r.MeanResponseTime, r.TailResponseTime, r.SLAViolationRatio, r.SuccessRatio,
		r.ForwardedFraction, r.ProactiveRejuvenations, r.Crashes, r.FinalFractions)
	if err := r.Recorder.WriteAllCSV(&b); err != nil {
		t.Fatalf("serialising recorder: %v", err)
	}
	return b.Bytes()
}

func sweepFingerprint(t *testing.T, results []JobResult) []byte {
	t.Helper()
	var b bytes.Buffer
	for _, jr := range results {
		b.Write(fingerprint(t, jr))
	}
	return b.Bytes()
}

// TestRunParallelDeterministicAcrossWorkerCounts is the core determinism
// guarantee of the runner: the same matrix (figure-shaped scenarios under all
// three policies plus a beta sweep) produces byte-identical results for 1
// worker, 4 workers and GOMAXPROCS workers, because every job's seed is fixed
// at expansion time and jobs share no state.
func TestRunParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep matrix three times")
	}
	m := Matrix{
		Scenarios: []string{"quick-test"},
		Policies:  []string{"policy1", "policy2", "policy3"},
		BaseSeed:  42,
	}
	jobs, err := m.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	beta := Matrix{
		Scenarios: []string{"quick-test"},
		Policies:  []string{"policy2"},
		Betas:     []float64{0.25, 0.75},
		BaseSeed:  42,
	}
	betaJobs, err := beta.Expand()
	if err != nil {
		t.Fatalf("Expand(beta): %v", err)
	}
	for _, j := range betaJobs {
		j.Index = len(jobs)
		jobs = append(jobs, j)
	}

	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	var want []byte
	for _, workers := range workerCounts {
		results, err := RunParallel(context.Background(), jobs, Options{Workers: workers})
		if err != nil {
			t.Fatalf("RunParallel(workers=%d): %v", workers, err)
		}
		if len(results) != len(jobs) {
			t.Fatalf("RunParallel(workers=%d): %d results for %d jobs", workers, len(results), len(jobs))
		}
		got := sweepFingerprint(t, results)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("workers=%d produced different bytes than workers=%d (%d vs %d bytes)",
				workers, workerCounts[0], len(got), len(want))
		}
	}
}

// TestRunParallelMatchesSequentialRun pins the parallel runner to the plain
// sequential Run: same scenario, same seed, same bytes.
func TestRunParallelMatchesSequentialRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two simulations")
	}
	sc, err := BuildScenario("quick-test", 7)
	if err != nil {
		t.Fatal(err)
	}
	np, err := PolicyByKey("policy3") // stateful policy: exercises ClonePolicy
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Run(sc, np)
	if err != nil {
		t.Fatalf("sequential Run: %v", err)
	}
	results, err := RunParallel(context.Background(), []Job{{Index: 0, Scenario: sc, Policy: np}}, Options{Workers: 4})
	if err != nil {
		t.Fatalf("RunParallel: %v", err)
	}
	seqBytes := fingerprint(t, JobResult{Job: results[0].Job, Result: seq})
	parBytes := fingerprint(t, results[0])
	if !bytes.Equal(seqBytes, parBytes) {
		t.Fatalf("parallel result differs from sequential result")
	}
}

func TestRunParallelReportsPerJobErrors(t *testing.T) {
	broken := quickScenario(1)
	broken.Regions = nil
	ok := quickScenario(2)
	ok.Horizon = 3 * simclock.Minute
	jobs := []Job{
		{Index: 0, Scenario: broken, Policy: NamedPolicy{Key: "p", Label: "p", Policy: core.Uniform{}}},
		{Index: 1, Scenario: ok, Policy: NamedPolicy{Key: "q", Label: "q", Policy: core.Uniform{}}},
	}
	results, err := RunParallel(context.Background(), jobs, Options{Workers: 2})
	if err != nil {
		t.Fatalf("RunParallel should not fail overall on a per-job error: %v", err)
	}
	if results[0].Err == nil {
		t.Fatalf("broken job should carry its error")
	}
	if results[1].Err != nil || results[1].Result == nil {
		t.Fatalf("healthy job should succeed: %+v", results[1].Err)
	}
	if FirstError(results) == nil {
		t.Fatalf("FirstError should surface the broken job")
	}
}

func TestRunParallelContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc := quickScenario(1)
	sc.Horizon = 3 * simclock.Minute
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Index: i, Scenario: sc, Policy: NamedPolicy{Key: "u", Label: "u", Policy: core.Uniform{}}}
	}
	results, err := RunParallel(ctx, jobs, Options{Workers: 2})
	if err == nil {
		t.Fatalf("cancelled context should surface an error")
	}
	undispatched := 0
	for _, jr := range results {
		if jr.Result == nil {
			if jr.Err == nil {
				t.Fatalf("undispatched job %d has no error", jr.Job.Index)
			}
			undispatched++
		}
	}
	if undispatched == 0 {
		t.Fatalf("a pre-cancelled context should leave jobs undispatched")
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const n, workers = 32, 3
	var mu sync.Mutex
	running, peak := 0, 0
	err := ForEach(context.Background(), n, workers, func(int) error {
		mu.Lock()
		running++
		if running > peak {
			peak = running
		}
		mu.Unlock()
		runtime.Gosched()
		mu.Lock()
		running--
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	if peak > workers {
		t.Fatalf("concurrency exceeded the bound: peak=%d workers=%d", peak, workers)
	}
}

func TestForEachJoinsErrors(t *testing.T) {
	err := ForEach(context.Background(), 5, 2, func(i int) error {
		if i%2 == 1 {
			return fmt.Errorf("job %d failed", i)
		}
		return nil
	})
	if err == nil {
		t.Fatalf("ForEach should join the per-call errors")
	}
}

func TestRunPoliciesMatchesRunAllPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six simulations")
	}
	sc, err := BuildScenario("quick-test", 9)
	if err != nil {
		t.Fatal(err)
	}
	all, err := RunAllPolicies(sc)
	if err != nil {
		t.Fatalf("RunAllPolicies: %v", err)
	}
	again, err := RunPolicies(context.Background(), sc, Policies(), Options{Workers: 1})
	if err != nil {
		t.Fatalf("RunPolicies: %v", err)
	}
	for _, key := range []string{"policy1", "policy2", "policy3"} {
		a, b := all[key], again[key]
		if a == nil || b == nil {
			t.Fatalf("missing result for %s", key)
		}
		aBytes := fingerprint(t, JobResult{Result: a})
		bBytes := fingerprint(t, JobResult{Result: b})
		if !bytes.Equal(aBytes, bBytes) {
			t.Fatalf("%s differs between worker counts", key)
		}
	}
}

// TestManagersShareNoState builds two managers from the same scenario and
// steps them concurrently; under -race this proves manager construction from
// a scenario introduces no shared mutable globals.
func TestManagersShareNoState(t *testing.T) {
	sc := quickScenario(5)
	sc.Horizon = 5 * simclock.Minute
	np, err := PolicyByKey("policy3")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	outs := make([]*Result, 4)
	errs := make([]error, 4)
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = Run(sc, np)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent run %d: %v", i, err)
		}
	}
	first := fingerprint(t, JobResult{Result: outs[0]})
	for i := 1; i < len(outs); i++ {
		if !bytes.Equal(first, fingerprint(t, JobResult{Result: outs[i]})) {
			t.Fatalf("concurrent run %d diverged from run 0", i)
		}
	}
}
