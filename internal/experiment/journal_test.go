package experiment

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/simclock"
)

// journalMatrix is a small but real sweep: 2 scenarios x 2 policies x 2
// replications = 8 jobs, each a short simulation.
func journalMatrix() Matrix {
	return Matrix{
		Scenarios:    []string{"figure3", "homogeneous"},
		Policies:     []string{"policy1", "policy2"},
		Replications: 2,
		BaseSeed:     42,
		Horizon:      2 * simclock.Minute,
	}
}

func journalLines(t *testing.T, path string) []journalEntry {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []journalEntry
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e journalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("corrupt journal line: %v", err)
		}
		out = append(out, e)
	}
	return out
}

// TestJournalKillMidSweep cancels a sweep partway through, then resumes it
// with the same journal: the resumed run must execute only the missing jobs
// and the merged rows must be identical to an uninterrupted run — the
// per-job derived seeds make resumption consistent by construction.
func TestJournalKillMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 8-job sweep three times")
	}
	m := journalMatrix()
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.journal")

	// Kill after the second completion: the journal's encoder runs under the
	// mutex, so cancelling from there guarantees at least two entries are on
	// disk and the remaining dispatches see a dead context.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	completionsSeen := 0
	// Wrap the cancellation into a context watched by ForEach: we cancel as
	// soon as the journal holds 2 entries by polling it from a goroutine
	// fed by the file's growth — simplest deterministic-enough trigger is
	// cancelling from inside the first run via a tiny worker count and a
	// side effect.  Run with Workers=1 so completions are strictly ordered.
	rows, err := runJournalCancelling(ctx, cancel, m, path, 2, &completionsSeen)
	if err == nil {
		t.Fatal("cancelled sweep returned no error")
	}
	if len(rows) >= m.Size() {
		t.Fatalf("cancelled sweep returned %d rows, want < %d", len(rows), m.Size())
	}
	persisted := journalLines(t, path)
	if len(persisted) == 0 || len(persisted) >= m.Size() {
		t.Fatalf("journal holds %d entries after the kill, want in (0, %d)", len(persisted), m.Size())
	}

	// Resume: only the missing jobs run.
	resumed, err := RunMatrixWithJournal(context.Background(), m, Options{Workers: 2}, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != m.Size() {
		t.Fatalf("resumed sweep returned %d rows, want %d", len(resumed), m.Size())
	}
	after := journalLines(t, path)
	if len(after) != m.Size() {
		t.Fatalf("journal holds %d entries after resume, want %d", len(after), m.Size())
	}
	ranOnResume := len(after) - len(persisted)
	if ranOnResume != m.Size()-len(persisted) {
		t.Fatalf("resume ran %d jobs, want exactly the %d missing ones", ranOnResume, m.Size()-len(persisted))
	}

	// The merged rows must equal an uninterrupted run's, byte for byte.
	clean, err := RunMatrixWithJournal(context.Background(), m, Options{Workers: 2}, filepath.Join(dir, "clean.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, clean) {
		t.Fatalf("resumed rows differ from a clean run\nresumed: %+v\nclean:   %+v", resumed, clean)
	}
}

// runJournalCancelling runs the matrix with Workers=1 and cancels the
// context after killAfter completions by watching the journal file between
// jobs (Workers=1 serialises completions, so the cancellation lands at a
// deterministic point).
func runJournalCancelling(ctx context.Context, cancel context.CancelFunc, m Matrix, path string, killAfter int, seen *int) ([]SweepRow, error) {
	// Run the sweep in a goroutine and watch the journal grow; every
	// completed line is already durable when we pull the plug.
	type result struct {
		rows []SweepRow
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		rows, err := RunMatrixWithJournal(ctx, m, Options{Workers: 1}, path)
		ch <- result{rows, err}
	}()
	for {
		select {
		case res := <-ch:
			return res.rows, res.err
		default:
		}
		if data, err := os.ReadFile(path); err == nil {
			if n := bytes.Count(data, []byte("\n")); n >= killAfter {
				*seen = n
				cancel()
				res := <-ch
				return res.rows, res.err
			}
		}
	}
}

// TestJournalRejectsForeignMatrix: a journal recorded for one matrix must
// not silently poison a different one.
func TestJournalRejectsForeignMatrix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.journal")
	m := Matrix{Scenarios: []string{"figure3"}, Policies: []string{"policy1"}, BaseSeed: 1, Horizon: simclock.Minute}
	if _, err := RunMatrixWithJournal(context.Background(), m, Options{Workers: 1}, path); err != nil {
		t.Fatal(err)
	}
	other := m
	other.BaseSeed = 2 // different derived seeds
	if _, err := RunMatrixWithJournal(context.Background(), other, Options{Workers: 1}, path); err == nil {
		t.Fatal("journal for a different matrix was accepted")
	}
	// Same matrix at a different horizon simulates a different experiment:
	// name/policy/seed all match, only the horizon identity can catch it.
	longer := m
	longer.Horizon = 2 * simclock.Minute
	if _, err := RunMatrixWithJournal(context.Background(), longer, Options{Workers: 1}, path); err == nil {
		t.Fatal("journal recorded at a different horizon was accepted")
	}
}

// TestJournalToleratesTornTail: a crash can leave a half-written final
// line; loading must use the intact prefix.
func TestJournalToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.journal")
	m := Matrix{Scenarios: []string{"figure3"}, Policies: []string{"policy1", "policy2"}, BaseSeed: 1, Horizon: simclock.Minute}
	if _, err := RunMatrixWithJournal(context.Background(), m, Options{Workers: 1}, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// First tear: drop only the trailing newline, leaving the final JSON
	// intact — the crash-between-bytes-and-newline case.  The loader must
	// treat it as torn (counting it would leave validBytes past the file
	// end and skip the truncation that keeps appends safe).
	trimmed := bytes.TrimRight(data, "\n")
	if err := os.WriteFile(path, trimmed, 0o644); err != nil {
		t.Fatal(err)
	}
	jobsNL, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	doneNL, validNL, err := loadJournal(path, jobsNL)
	if err != nil {
		t.Fatalf("newline-less tail rejected: %v", err)
	}
	if len(doneNL) != len(jobsNL)-1 || validNL >= int64(len(trimmed)) {
		t.Fatalf("newline-less tail: loaded %d entries, validBytes %d (file %d)", len(doneNL), validNL, len(trimmed))
	}

	// Second tear: also lose half the line's bytes.
	cut := trimmed[:len(trimmed)-10]
	if err := os.WriteFile(path, cut, 0o644); err != nil {
		t.Fatal(err)
	}
	jobs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	done, validBytes, err := loadJournal(path, jobs)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if len(done) != len(jobs)-1 {
		t.Fatalf("loaded %d entries from torn journal, want %d", len(done), len(jobs)-1)
	}
	if validBytes >= int64(len(cut)) {
		t.Fatalf("validBytes %d does not exclude the torn tail (file is %d bytes)", validBytes, len(cut))
	}

	// Resuming must chop the torn tail, re-run exactly the lost job and
	// leave a journal that loads clean — repeatedly.  (Without the truncate,
	// the re-run entry concatenates onto the torn bytes, the job is re-run
	// on every resume and the journal eventually hard-errors.)
	for i := 0; i < 2; i++ {
		rows, err := RunMatrixWithJournal(context.Background(), m, Options{Workers: 1}, path)
		if err != nil {
			t.Fatalf("resume %d over torn journal: %v", i, err)
		}
		if len(rows) != len(jobs) {
			t.Fatalf("resume %d returned %d rows, want %d", i, len(rows), len(jobs))
		}
		if entries := journalLines(t, path); len(entries) != len(jobs) {
			t.Fatalf("resume %d left %d journal entries, want %d", i, len(entries), len(jobs))
		}
	}
}

// TestSweepRowsAndWriters covers the flattening and the CSV/JSON emitters.
func TestSweepRowsAndWriters(t *testing.T) {
	m := Matrix{Scenarios: []string{"figure3"}, Policies: []string{"policy2"}, Betas: []float64{0.25, 0.75}, BaseSeed: 7, Horizon: 2 * simclock.Minute}
	results, err := RunMatrix(context.Background(), m, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows := RowsFromJobResults(results)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if rows[0].Beta != 0.25 || rows[1].Beta != 0.75 {
		t.Fatalf("betas = %v / %v, want 0.25 / 0.75", rows[0].Beta, rows[1].Beta)
	}
	if rows[0].Eras == 0 || rows[0].Err != "" {
		t.Fatalf("row 0 looks unrun: %+v", rows[0])
	}

	var csvBuf bytes.Buffer
	if err := WriteSweepCSV(&csvBuf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "index,scenario,policy,seed,beta,rep") {
		t.Fatalf("unexpected CSV header %q", lines[0])
	}

	var jsonBuf bytes.Buffer
	if err := WriteSweepJSON(&jsonBuf, rows); err != nil {
		t.Fatal(err)
	}
	var back []SweepRow
	if err := json.Unmarshal(jsonBuf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rows) {
		t.Fatal("JSON round trip changed the rows")
	}
}

func TestParseLists(t *testing.T) {
	if got := ParseList(" figure3, figure4 ,,"); !reflect.DeepEqual(got, []string{"figure3", "figure4"}) {
		t.Fatalf("ParseList = %v", got)
	}
	got, err := ParseFloatList("0.25, 0.75")
	if err != nil || !reflect.DeepEqual(got, []float64{0.25, 0.75}) {
		t.Fatalf("ParseFloatList = %v, %v", got, err)
	}
	if _, err := ParseFloatList("0.25,x"); err == nil {
		t.Fatal("ParseFloatList accepted garbage")
	}
}
