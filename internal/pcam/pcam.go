// Package pcam reproduces the PCAM framework ("Machine Learning for Achieving
// Self-* Properties and Seamless Execution of Applications in the Cloud",
// NCCA 2015) that manages a single cloud region inside ACM.  Its central
// component is the Virtual Machine Controller (VMC): it keeps some VMs
// hosting server replicas ACTIVE and others STANDBY, maps an ML model to each
// VM to predict its Remaining Time To Failure at runtime, and whenever the
// predicted RTTF of an ACTIVE VM drops below a threshold it sends an ACTIVATE
// command to a STANDBY VM and a REJUVENATE command to the about-to-fail VM.
// The VMC also hosts the region's load balancer, which spreads the incoming
// client requests over the ACTIVE VMs, and implements the ADDVMS elasticity
// action used by the closed control loop when the predicted response time
// exceeds its threshold.
package pcam

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cloudsim"
	"repro/internal/features"
	"repro/internal/simclock"
	"repro/internal/stats"
)

// RTTFPredictor estimates the remaining time to failure of a VM from its most
// recent feature sample.  The production implementation wraps an f2pm model;
// the oracle implementation uses the simulator's ground truth and exists to
// quantify how much prediction error costs (an ablation the reproduction
// adds).
//
// When the VMC runs its control tick with Config.TickWorkers > 1, PredictRTTF
// is called concurrently from the per-shard goroutines and must therefore be
// safe for concurrent use.  The bundled predictors qualify: OraclePredictor
// is stateless and ModelPredictor only reads the trained model.
type RTTFPredictor interface {
	// PredictRTTF returns the estimated remaining time to failure in seconds.
	PredictRTTF(vm *cloudsim.VM, sample features.Vector) float64
}

// PredictorFunc adapts a function to the RTTFPredictor interface.
type PredictorFunc func(vm *cloudsim.VM, sample features.Vector) float64

// PredictRTTF implements RTTFPredictor.
func (f PredictorFunc) PredictRTTF(vm *cloudsim.VM, sample features.Vector) float64 {
	return f(vm, sample)
}

// ModelPredictor adapts any feature-vector predictor (such as *f2pm.Model) to
// the RTTFPredictor interface.
type ModelPredictor struct {
	// Model maps a feature vector to an RTTF estimate in seconds.
	Model interface {
		PredictRTTF(v features.Vector) float64
	}
}

// PredictRTTF implements RTTFPredictor by delegating to the wrapped model.
func (p ModelPredictor) PredictRTTF(_ *cloudsim.VM, sample features.Vector) float64 {
	return p.Model.PredictRTTF(sample)
}

// OraclePredictor returns the simulator's ground-truth RTTF given the VM's
// currently observed request rate.  It represents a perfect ML model.
//
// Like a trained F2PM model — whose predictions are bounded by the label
// range it saw during profiling — the oracle clamps its output: the request
// rate is floored (an active VM behind a load balancer always receives at
// least a trickle of traffic) and the predicted RTTF is capped.  Without the
// clamps an almost-idle VM would report an effectively infinite MTTF, which
// no real predictor would produce and which destabilises the resource
// estimation of Policy 2.
type OraclePredictor struct{}

// Prediction clamps applied by OraclePredictor (exported so experiments can
// reason about the predictor's range).
const (
	// OracleMinRate is the floor applied to the observed per-VM request rate
	// before computing the ground-truth RTTF.
	OracleMinRate = 0.5
	// OracleMaxRTTF is the cap applied to the predicted RTTF, mirroring the
	// bounded label range of a trained model: the F2PM profiling runs observe
	// failure episodes of at most about an hour, so no trained model would
	// ever predict a remaining lifetime beyond that (seconds).
	OracleMaxRTTF = 3600.0
)

// PredictRTTF implements RTTFPredictor.
func (OraclePredictor) PredictRTTF(vm *cloudsim.VM, sample features.Vector) float64 {
	rate := sample.Get(features.RequestRate)
	if rate < OracleMinRate {
		rate = OracleMinRate
	}
	rttf := vm.TrueRTTF(rate)
	if math.IsInf(rttf, 1) || rttf > OracleMaxRTTF {
		return OracleMaxRTTF
	}
	return rttf
}

// Config tunes a VMC.
type Config struct {
	// RTTFThreshold is the predicted-RTTF threshold (seconds) below which the
	// VMC proactively rejuvenates an ACTIVE VM and activates a STANDBY one.
	RTTFThreshold float64
	// ControlInterval is the period of the VMC's local monitor/analyze step.
	ControlInterval simclock.Duration
	// ResponseTimeThreshold is the predicted response-time threshold (seconds)
	// above which the VMC adds VMs to the active pool (the ADDVMS action of
	// Algorithm 3).  The paper uses a 1-second SLA.
	ResponseTimeThreshold float64
	// MinActive is the minimum number of ACTIVE VMs the elasticity controller
	// keeps.
	MinActive int
	// TargetActive is the number of ACTIVE VMs the controller maintains: when
	// failures or rejuvenations shrink the active pool below the target and
	// healthy standby VMs are available, the control tick promotes standbys
	// until the target is reached again.  Zero means "the number of VMs that
	// were active when the controller started".
	TargetActive int
	// ScaleDownRMTTF: when the region's RMTTF exceeds this threshold
	// (seconds) and more than MinActive VMs are active, one VM is deactivated
	// (the "deactivate some active VMs" branch of Section V).  Zero disables
	// scale-down.
	ScaleDownRMTTF float64
	// ElasticityEnabled turns the ADDVMS / scale-down logic on.
	ElasticityEnabled bool
	// RMTTFBeta is the smoothing factor applied to the locally computed
	// region RMTTF before it is reported to the leader (the paper smooths at
	// the leader with equation 1; smoothing locally as well keeps the local
	// elasticity decisions from reacting to single-sample noise).
	RMTTFBeta float64
	// TickWorkers is the number of goroutines the control tick fans the
	// per-shard monitor/analyze phase out to (feature sampling, RTTF
	// prediction, rejuvenation candidate selection).  The phase is followed by
	// a barrier and a serial merge that consumes per-shard results in
	// shard-index order, so the output is byte-identical for every worker
	// count.  Values <= 1 keep the fully sequential tick (the default); the
	// effective fan-out is additionally capped at the region's shard count.
	TickWorkers int
}

// DefaultConfig returns the VMC configuration used by the reproduction's
// experiments: proactive rejuvenation when the predicted RTTF drops below 10
// minutes, a 30-second control interval and the 1-second response-time SLA.
func DefaultConfig() Config {
	return Config{
		RTTFThreshold:         600,
		ControlInterval:       30 * simclock.Second,
		ResponseTimeThreshold: 1.0,
		MinActive:             2,
		ElasticityEnabled:     true,
		RMTTFBeta:             0.5,
	}
}

func (c Config) withDefaults() Config {
	if c.RTTFThreshold <= 0 {
		c.RTTFThreshold = 600
	}
	if c.ControlInterval <= 0 {
		c.ControlInterval = 30 * simclock.Second
	}
	if c.ResponseTimeThreshold <= 0 {
		c.ResponseTimeThreshold = 1.0
	}
	if c.MinActive <= 0 {
		c.MinActive = 1
	}
	if c.RMTTFBeta <= 0 || c.RMTTFBeta > 1 {
		c.RMTTFBeta = 0.5
	}
	return c
}

// Stats aggregates the VMC's lifetime counters.
type Stats struct {
	// ProactiveRejuvenations counts rejuvenations triggered by the RTTF
	// threshold (the intended path).
	ProactiveRejuvenations uint64
	// ReactiveRecoveries counts recoveries of VMs that failed before the
	// predictor caught them.
	ReactiveRecoveries uint64
	// Activations counts STANDBY->ACTIVE transitions commanded by the VMC.
	Activations uint64
	// Deactivations counts ACTIVE->STANDBY transitions commanded by the
	// scale-down logic.
	Deactivations uint64
	// ProvisionedVMs counts VMs added through the ADDVMS action.
	ProvisionedVMs uint64
	// ControlTicks counts executed control iterations.
	ControlTicks uint64
}

// VMC is the Virtual Machine Controller of one cloud region.
type VMC struct {
	region    *cloudsim.Region
	predictor RTTFPredictor
	cfg       Config

	rr           int // round-robin cursor of the local load balancer
	shardRR      int // rotation cursor over the region's shards
	rmttf        *stats.EWMA
	lastRMTTF    float64 // last raw (un-smoothed) RMTTF computed from predictions
	predicted    map[string]float64
	targetActive int
	targetForced bool // a scripted outage holds the target; elasticity is suspended

	// Reusable scratch buffers that keep the per-tick and per-request hot
	// paths allocation-free: one shardScratch per region shard for the
	// control tick's parallel phase, one ACTIVE-VM buffer for Submit's
	// dispatch scan and one for the elasticity controller's region-wide scan.
	scratch      []shardScratch
	submitActive []*cloudsim.VM
	elastActive  []*cloudsim.VM

	// Sharded-event-loop state (eventloop.go): the owning ShardedEngine, the
	// sub-engine of each region shard, and the per-shard load-balancer
	// slices.  All nil/empty when the controller runs on the serial engine.
	se           *simclock.ShardedEngine
	shardEngines []*simclock.Engine
	lbs          []shardLB

	// flight, when set, receives the control tick's phase timings (sim-time
	// instants with deterministic item counts) for the engine flight recorder.
	flight *simclock.FlightRecorder

	stats   Stats
	started bool
	stop    func()
}

// NewVMC builds the controller for a region.  The predictor must not be nil.
func NewVMC(region *cloudsim.Region, predictor RTTFPredictor, cfg Config) (*VMC, error) {
	if region == nil {
		return nil, fmt.Errorf("pcam: nil region")
	}
	if predictor == nil {
		return nil, fmt.Errorf("pcam: nil predictor")
	}
	cfg = cfg.withDefaults()
	target := cfg.TargetActive
	if target <= 0 {
		target = region.ActiveCount()
	}
	if target < cfg.MinActive {
		target = cfg.MinActive
	}
	return &VMC{
		region:       region,
		predictor:    predictor,
		cfg:          cfg,
		rmttf:        stats.NewEWMA(cfg.RMTTFBeta),
		predicted:    map[string]float64{},
		targetActive: target,
	}, nil
}

// TargetActive returns the number of ACTIVE VMs the controller maintains.
func (v *VMC) TargetActive() int { return v.targetActive }

// ForceTargetActive overrides the controller's active-pool target and
// immediately deactivates ACTIVE VMs (newest first, letting in-flight
// requests drain) until at most n remain, returning the previous target.
// It is the region-outage lever of the fault-injection machinery: forcing
// n=0 blacks the region out — the control tick cannot promote standbys
// while the target is zero, and the elasticity controller is suspended so
// an SLA spike during the blackout cannot re-activate capacity behind the
// fault's back.  Restore with RestoreTargetActive.  On a sharded event loop
// both must be called from the control timeline (exclusive access to every
// shard).
func (v *VMC) ForceTargetActive(n int) int {
	prev := v.targetActive
	if n < 0 {
		n = 0
	}
	v.targetActive = n
	v.targetForced = true
	if excess := v.region.ActiveCount() - n; excess > 0 {
		v.elastActive = v.region.AppendByState(v.elastActive[:0], cloudsim.StateActive)
		active := v.elastActive
		for i := len(active) - 1; i >= 0 && excess > 0; i-- {
			if active[i].Deactivate() {
				v.stats.Deactivations++
				excess--
			}
		}
	}
	return prev
}

// RestoreTargetActive ends a forced outage: the target returns to n (as
// returned by ForceTargetActive) and the next control tick repromotes
// standbys; the elasticity controller resumes from that target.
func (v *VMC) RestoreTargetActive(n int) {
	if n < 0 {
		n = 0
	}
	v.targetActive = n
	v.targetForced = false
}

// SetFlightRecorder attaches the engine flight recorder: every control tick
// then records its monitor and rejuvenation phases as sim-time instants with
// deterministic item counts (never wall-clock measurements, which would break
// byte-identical output across worker counts).
func (v *VMC) SetFlightRecorder(fr *simclock.FlightRecorder) { v.flight = fr }

// Region returns the managed region.
func (v *VMC) Region() *cloudsim.Region { return v.region }

// Config returns the controller configuration (with defaults applied).
func (v *VMC) Config() Config { return v.cfg }

// Stats returns a copy of the lifetime counters.
func (v *VMC) Stats() Stats { return v.stats }

// Start installs the failure hooks and the periodic control tick.
func (v *VMC) Start(eng *simclock.Engine) {
	if v.started {
		return
	}
	v.started = true
	for _, vm := range v.region.VMs() {
		v.hookVM(eng, vm)
	}
	v.stop = eng.Ticker(v.cfg.ControlInterval, func(e *simclock.Engine) { v.ControlTick(e) })
}

// Stop halts the periodic control tick.
func (v *VMC) Stop() {
	if v.stop != nil {
		v.stop()
		v.stop = nil
	}
	v.started = false
}

// hookVM chains the reactive-recovery handler onto the VM's failure hook.
// On a sharded event loop the reaction crosses shards, so it is posted to
// the control timeline instead of running inline (see hookVMSharded).
func (v *VMC) hookVM(eng *simclock.Engine, vm *cloudsim.VM) {
	if v.se != nil {
		v.hookVMSharded(vm)
		return
	}
	prev := vm.OnFailure
	vm.OnFailure = func(failed *cloudsim.VM, at simclock.Time) {
		if prev != nil {
			prev(failed, at)
		}
		v.stats.ReactiveRecoveries++
		// Promote a standby replacement immediately, then restart the failed
		// VM through the rejuvenation path.
		v.activateStandby(eng)
		failed.RecoverFromFailure(eng)
	}
}

// Submit implements the region's load balancer: a shard is selected by
// rotating over the region's shards (which spreads arrivals evenly and keeps
// the scan at O(pool/shards)), and within the shard the request is dispatched
// to the ACTIVE VM with the shortest queue (ties broken round-robin), which
// both spreads load and avoids pushing work onto a VM that is already
// struggling.  Shards with no ACTIVE VM (e.g. mid-rejuvenation) are skipped;
// when no shard has one the request is dropped.  With one shard this is
// exactly the classic whole-pool shortest-queue balancer.
func (v *VMC) Submit(eng *simclock.Engine, req *cloudsim.Request) {
	active := v.submitActive[:0]
	for tries, n := 0, v.region.NumShards(); tries < n; tries++ {
		v.shardRR++
		if active = v.region.AppendByStateInShard(active[:0], v.shardRR%n, cloudsim.StateActive); len(active) > 0 {
			break
		}
	}
	v.submitActive = active // keep the grown buffer for the next request
	if len(active) == 0 {
		req.Finish(eng, cloudsim.Outcome{Request: req, Region: v.region.Name(), Start: eng.Now(), End: eng.Now(), Dropped: true})
		return
	}
	v.rr++
	best := active[v.rr%len(active)]
	for i, vm := range active {
		if vm.QueueLength() < best.QueueLength() {
			best = active[i]
		}
	}
	best.Dispatch(eng, req)
}

// vmPrediction couples one ACTIVE VM with its freshly predicted RTTF and the
// response time observed over the last interval.
type vmPrediction struct {
	vm   *cloudsim.VM
	rttf float64
	resp float64
}

// shardScratch is one shard's slice of the control tick: the reusable buffers
// the shard's monitor/analyze phase fills and the partial aggregates the
// serial merge phase consumes.  One instance exists per region shard and is
// touched by exactly one goroutine during the parallel phase, so the tick
// needs no locking and the buffers keep the hot path allocation-free.
type shardScratch struct {
	active []*cloudsim.VM // reusable ACTIVE-VM scan buffer
	preds  []vmPrediction // this tick's predictions, sorted worst-first

	// Partial aggregates, merged region-wide in shard-index order.
	sum         float64 // reported-RTTF partial sum
	reportable  int     // VMs contributing to the RMTTF
	respSum     float64 // response-time partial sum (seconds)
	respSamples int
	sampled     int // ACTIVE VMs sampled in this shard
}

// ControlTick runs one local monitor/analyze/execute iteration in three
// phases:
//
//  1. Serial pre-phase: refill the active pool to its target size (state
//     transitions schedule engine events, so this cannot run concurrently).
//  2. Per-shard phase: every shard samples its own ACTIVE VMs, predicts
//     their RTTF and sorts its rejuvenation candidates worst-first, writing
//     only to its shardScratch.  With Config.TickWorkers > 1 the shards run
//     on a bounded goroutine fan-out (simclock.Engine.ParallelPhase);
//     otherwise they run inline in shard-index order — the same code path,
//     so the sequential configuration is a true fast path, not a fork.
//  3. Barrier + serial merge: the per-shard partials are folded in
//     shard-index order into the region RMTTF, the about-to-fail VMs are
//     rejuvenated (worst first within each shard) and the elasticity actions
//     apply region-wide.
//
// Because each VM owns a forked RNG stream and VMs never migrate between
// shards, the per-shard phase consumes randomness deterministically no matter
// how the goroutines interleave; together with the ordered merge this makes
// the tick byte-identical for every TickWorkers value and any GOMAXPROCS.
// With one shard the iteration is exactly the classic whole-pool scan; with N
// shards each scan and each worst-first sort touches only pool/N VMs.
func (v *VMC) ControlTick(eng *simclock.Engine) {
	v.stats.ControlTicks++
	// Keep the active pool at its target size: failures and rejuvenations
	// shrink it, and rejuvenated VMs come back as STANDBY.
	for v.region.ActiveCount() < v.targetActive {
		if !v.activateStandby(eng) {
			break
		}
	}

	// Monitor + analyze: the per-shard phase, fanned out when configured.
	numShards := v.region.NumShards()
	if len(v.scratch) < numShards {
		v.scratch = append(v.scratch, make([]shardScratch, numShards-len(v.scratch))...)
	}
	now := eng.Now()
	if workers := v.cfg.TickWorkers; workers > 1 && numShards > 1 {
		eng.ParallelPhase(numShards, workers, func(s int) { v.shardTick(now, s) })
	} else {
		for s := 0; s < numShards; s++ {
			v.shardTick(now, s)
		}
	}

	// Merge: fold the partials in shard-index order (floating-point addition
	// is order-sensitive, so the fold order is part of the determinism
	// contract) and publish the per-VM predictions.
	rejBefore := v.stats.ProactiveRejuvenations
	sum := 0.0
	reportable := 0
	respSum := 0.0
	respSamples := 0
	sampled := 0
	for s := 0; s < numShards; s++ {
		sc := &v.scratch[s]
		sampled += sc.sampled
		sum += sc.sum
		reportable += sc.reportable
		respSum += sc.respSum
		respSamples += sc.respSamples
		for _, p := range sc.preds {
			v.predicted[p.vm.ID()] = p.rttf
		}
	}
	if v.flight != nil && sampled > 0 {
		v.flight.RecordPhase(now, v.region.Name()+"/vmc.monitor", uint64(sampled))
	}
	if sampled == 0 {
		return
	}
	if reportable > 0 {
		v.lastRMTTF = sum / float64(reportable)
		v.rmttf.Update(v.lastRMTTF)
	}
	meanResp := 0.0
	if respSamples > 0 {
		meanResp = respSum / float64(respSamples)
	}

	// Execute: proactive rejuvenation of about-to-fail VMs (worst first
	// within each shard, and never below MinActive active VMs region-wide
	// unless a standby can take over).
	for s := 0; s < numShards; s++ {
		for _, p := range v.scratch[s].preds {
			if p.rttf >= v.cfg.RTTFThreshold {
				break
			}
			replaced := v.activateStandby(eng)
			if !replaced && v.region.ActiveCount() <= v.cfg.MinActive {
				// No spare capacity: keep the VM alive rather than dropping
				// below the minimum; the next tick will retry.
				continue
			}
			if p.vm.Rejuvenate(v.engineForVM(eng, p.vm)) {
				v.stats.ProactiveRejuvenations++
			}
		}
	}

	if v.flight != nil {
		if rej := v.stats.ProactiveRejuvenations - rejBefore; rej > 0 {
			v.flight.RecordPhase(now, v.region.Name()+"/vmc.rejuvenate", rej)
		}
	}

	if v.cfg.ElasticityEnabled {
		v.applyElasticity(eng, meanResp)
	}
}

// shardTick is the per-shard monitor/analyze phase of one control tick: it
// samples every ACTIVE VM of shard s, predicts its RTTF, accumulates the
// shard's partial aggregates and sorts the shard's rejuvenation candidates
// worst-first.  It writes only to v.scratch[s] and the shard's own VMs, reads
// no engine state beyond the prefetched timestamp, and schedules nothing —
// the contract that makes it safe to run concurrently with the other shards'
// phases.
func (v *VMC) shardTick(now simclock.Time, s int) {
	sc := &v.scratch[s]
	sc.sum, sc.reportable, sc.respSum, sc.respSamples, sc.sampled = 0, 0, 0, 0, 0
	sc.preds = sc.preds[:0]
	sc.active = v.region.AppendByStateInShard(sc.active[:0], s, cloudsim.StateActive)
	if len(sc.active) == 0 {
		return
	}
	sc.sampled = len(sc.active)
	for _, vm := range sc.active {
		sample := vm.Sample(now)
		rttf := v.predictor.PredictRTTF(vm, sample)
		resp := sample.Get(features.ResponseTimeMs) / 1000
		sc.preds = append(sc.preds, vmPrediction{vm: vm, rttf: rttf, resp: resp})
		if sample.Get(features.RequestRate) <= 0 {
			// A VM that served nothing in the interval (typically one that
			// was activated moments ago) carries no information about the
			// region's health; folding its "no data" prediction into the
			// RMTTF would inflate the estimate exactly when the region is
			// churning.
			continue
		}
		// The failure point of F2PM is not only a crash: a sustained SLA
		// violation counts as a failure too.  A VM whose observed response
		// time already exceeds the SLA is therefore on its way to the
		// failure point no matter how much anomaly budget is left, so the
		// RMTTF reported to the leader reflects that (the policies then
		// move load away from the overloaded region).  The per-VM
		// rejuvenation decision in the merge phase keeps using the
		// anomaly-based prediction: rejuvenating a fresh-but-overloaded VM
		// would not help.
		reported := rttf
		if v.cfg.ResponseTimeThreshold > 0 && resp > v.cfg.ResponseTimeThreshold {
			if slaRTTF := v.cfg.RTTFThreshold * v.cfg.ResponseTimeThreshold / resp; slaRTTF < reported {
				reported = slaRTTF
			}
		}
		sc.sum += reported
		sc.reportable++
		sc.respSum += resp
		sc.respSamples++
	}
	sort.Slice(sc.preds, func(i, j int) bool { return sc.preds[i].rttf < sc.preds[j].rttf })
}

// applyElasticity implements the ADDVMS action and the scale-down branch.
// It is suspended while a scripted outage holds the target (targetForced):
// the blackout's drained-but-slow completions would otherwise trip the
// response-time threshold and re-activate the very capacity the fault took
// away.
func (v *VMC) applyElasticity(eng *simclock.Engine, meanResp float64) {
	if v.targetForced {
		return
	}
	if meanResp > v.cfg.ResponseTimeThreshold {
		v.targetActive++
		if !v.activateStandby(eng) && v.region.CanProvision() {
			added := v.region.Provision(1)
			for _, vm := range added {
				v.hookVM(eng, vm)
				if vm.Activate(v.engineForVM(eng, vm)) {
					v.stats.Activations++
				}
				v.stats.ProvisionedVMs++
			}
		}
		return
	}
	if v.cfg.ScaleDownRMTTF > 0 && v.rmttf.Value() > v.cfg.ScaleDownRMTTF {
		v.elastActive = v.region.AppendByState(v.elastActive[:0], cloudsim.StateActive)
		active := v.elastActive
		if len(active) > v.cfg.MinActive {
			// Deactivate the healthiest VM: it has the most anomaly budget
			// left, so parking it wastes the least remaining lifetime.
			best := active[0]
			for _, vm := range active[1:] {
				if vm.HealthFraction() > best.HealthFraction() {
					best = vm
				}
			}
			if best.Deactivate() {
				v.stats.Deactivations++
				if v.targetActive > v.cfg.MinActive {
					v.targetActive--
				}
			}
		}
	}
}

// activateStandby promotes one STANDBY VM to ACTIVE, returning whether a VM
// was promoted.  The standby is taken from the shard with the fewest ACTIVE
// VMs (ties broken by shard index): Submit's rotation keeps sending every
// shard ~1/N of the region's traffic, so replenishing the most depleted shard
// first stops a rejuvenation wave from concentrating load on that shard's
// survivors.  With one shard this is exactly the whole-pool promotion in
// provisioning order.
func (v *VMC) activateStandby(eng *simclock.Engine) bool {
	var best *cloudsim.VM
	bestActive := 0
	for s, n := 0, v.region.NumShards(); s < n; s++ {
		cand, active := v.region.StandbyPromotionCandidate(s)
		if cand == nil {
			continue
		}
		if best == nil || active < bestActive {
			best, bestActive = cand, active
		}
	}
	if best == nil {
		return false
	}
	if best.Activate(v.engineForVM(eng, best)) {
		v.stats.Activations++
		return true
	}
	return false
}

// RMTTF returns the smoothed Region Mean Time To Failure computed from the
// most recent predictions — the lastRMTTF_i value the VMC periodically sends
// to the leader VMC.
func (v *VMC) RMTTF() float64 { return v.rmttf.Value() }

// LastRawRMTTF returns the most recent un-smoothed RMTTF (useful for tests
// and reporting).
func (v *VMC) LastRawRMTTF() float64 { return v.lastRMTTF }

// PredictedRTTF returns the last predicted RTTF for the given VM (0 when the
// VM has not been evaluated yet).
func (v *VMC) PredictedRTTF(vmID string) float64 { return v.predicted[vmID] }

// ActiveVMs returns the number of currently ACTIVE VMs in the region.
func (v *VMC) ActiveVMs() int { return v.region.ActiveCount() }
