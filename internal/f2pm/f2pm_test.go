package f2pm

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/features"
	"repro/internal/simclock"
)

// syntheticDataset builds a small, clearly learnable dataset: the RTTF is a
// noisy linear function of memory used and zombie threads, with the other
// features carrying little information.
func syntheticDataset(n int, seed uint64) *features.Dataset {
	rng := simclock.NewRNG(seed)
	ds := features.NewDataset(nil)
	for i := 0; i < n; i++ {
		vmID := "vmA"
		if i%2 == 1 {
			vmID = "vmB"
		}
		t := float64(i) * 10
		v := features.NewVector(vmID, t)
		mem := rng.Uniform(100, 2500)
		zombies := rng.Uniform(0, 120)
		rate := rng.Uniform(1, 12)
		for _, name := range features.AllNames() {
			v.Set(name, rng.Uniform(0, 10)) // background noise for unused features
		}
		v.Set(features.MemUsedMB, mem)
		v.Set(features.ZombieThreads, zombies)
		v.Set(features.RequestRate, rate)
		rttf := 4000 - 1.2*mem - 8*zombies + rng.Normal(0, 40)
		if rttf < 0 {
			rttf = 0
		}
		ds.Add(features.Sample{Vector: v, RTTFSeconds: rttf})
	}
	return ds
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.TrainFraction != 0.7 || cfg.LassoLambda != 0.1 || cfg.MinFeatures != 4 || cfg.CVFolds != 5 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	d := DefaultConfig()
	if d.PreferredModel != "REPTree" {
		t.Fatalf("the paper's configuration selects REP-Tree, got %q", d.PreferredModel)
	}
}

func TestTrainRejectsEmptyDataset(t *testing.T) {
	if _, _, err := Train(nil, Config{}); err == nil {
		t.Fatalf("nil dataset should be rejected")
	}
	if _, _, err := Train(features.NewDataset(nil), Config{}); err == nil {
		t.Fatalf("empty dataset should be rejected")
	}
}

func TestTrainRejectsUnknownPreferredModel(t *testing.T) {
	ds := syntheticDataset(200, 1)
	if _, _, err := Train(ds, Config{PreferredModel: "DeepNet9000"}); err == nil {
		t.Fatalf("unknown preferred model should be rejected")
	}
}

func TestTrainProducesUsableModelAndReport(t *testing.T) {
	ds := syntheticDataset(600, 2)
	model, report, err := Train(ds, DefaultConfig())
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if model.Name != "REPTree" {
		t.Fatalf("chosen model = %q, want REPTree", model.Name)
	}
	if len(model.Features) < 2 {
		t.Fatalf("selected features = %v, want at least the informative ones", model.Features)
	}
	// The informative features must survive Lasso selection.
	names := map[features.Name]bool{}
	for _, f := range model.Features {
		names[f] = true
	}
	if !names[features.MemUsedMB] || !names[features.ZombieThreads] {
		t.Fatalf("Lasso should keep mem_used_mb and zombie_threads, kept %v", model.Features)
	}

	if report.TrainSamples == 0 || report.TestSamples == 0 {
		t.Fatalf("report split sizes missing: %+v", report)
	}
	if len(report.Scores) != 6 {
		t.Fatalf("report should rank the 6 F2PM model families, got %d", len(report.Scores))
	}
	if report.Chosen != "REPTree" {
		t.Fatalf("report chosen = %q", report.Chosen)
	}
	// The chosen tree should predict far better than random guessing on this
	// easily learnable relation.
	if report.ChosenMetrics.R2 < 0.8 {
		t.Fatalf("REPTree R2 = %v, want > 0.8 on a linear synthetic target", report.ChosenMetrics.R2)
	}
	if report.CrossValidation.N == 0 {
		t.Fatalf("cross-validation metrics missing")
	}

	// Predictions follow the generating trend: more accumulated anomalies =>
	// smaller predicted RTTF, and never negative.
	healthy := features.NewVector("x", 0)
	worn := features.NewVector("x", 0)
	for _, n := range features.AllNames() {
		healthy.Set(n, 5)
		worn.Set(n, 5)
	}
	healthy.Set(features.MemUsedMB, 200)
	healthy.Set(features.ZombieThreads, 2)
	worn.Set(features.MemUsedMB, 2400)
	worn.Set(features.ZombieThreads, 110)
	ph, pw := model.PredictRTTF(healthy), model.PredictRTTF(worn)
	if ph <= pw {
		t.Fatalf("healthy VM should have larger predicted RTTF: healthy=%v worn=%v", ph, pw)
	}
	if pw < 0 {
		t.Fatalf("predictions must be clamped at zero")
	}
}

func TestTrainAutoSelectsBestModelWhenUnspecified(t *testing.T) {
	ds := syntheticDataset(400, 3)
	cfg := Config{CVFolds: 1}
	model, report, err := Train(ds, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if model.Name != report.Scores[0].Name {
		t.Fatalf("auto-selection should pick the best-ranked model: got %q, best is %q",
			model.Name, report.Scores[0].Name)
	}
	if report.CrossValidation.N != 0 {
		t.Fatalf("CV should be skipped when CVFolds <= 1")
	}
}

func TestReportTableAndFeatureNames(t *testing.T) {
	ds := syntheticDataset(300, 4)
	_, report, err := Train(ds, DefaultConfig())
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	tbl := report.Table()
	if !strings.Contains(tbl, "REPTree") || !strings.Contains(tbl, "RMSE") {
		t.Fatalf("table should mention models and metrics:\n%s", tbl)
	}
	if !strings.Contains(tbl, "*") {
		t.Fatalf("table should mark the chosen model")
	}
	if len(report.FeatureNames()) != len(report.Selected) {
		t.Fatalf("FeatureNames length mismatch")
	}
}

func TestCollectorSamplesAndLabels(t *testing.T) {
	eng := simclock.NewEngine(5)
	vm := cloudsim.NewVM(cloudsim.VMConfig{
		ID:           "vm1",
		Type:         cloudsim.PrivateVM,
		Anomalies:    cloudsim.DefaultAnomalyProfile(),
		Failure:      cloudsim.DefaultFailurePoint(),
		Rejuvenation: cloudsim.DefaultRejuvenationModel(),
	}, eng.RNG().Fork())
	vm.Activate(eng)

	col := NewCollector(10 * simclock.Second)
	col.Attach(vm)
	col.Start(eng)
	col.Start(eng) // double start is a no-op

	// Sustained load so the VM eventually fails.
	var id uint64
	var inject func(e *simclock.Engine)
	inject = func(e *simclock.Engine) {
		if vm.State() != cloudsim.StateActive {
			return
		}
		id++
		vm.Dispatch(e, &cloudsim.Request{ID: id, ServiceFactor: 1, Arrival: e.Now()})
		e.ScheduleFunc(0.12, inject)
	}
	eng.ScheduleFunc(0, inject)
	if err := eng.Run(4 * simclock.Hour); err != nil && err != simclock.ErrHorizonReached {
		t.Fatalf("run: %v", err)
	}
	col.Stop()

	if col.Samples() == 0 {
		t.Fatalf("collector recorded no samples")
	}
	if col.Failures() != 1 {
		t.Fatalf("collector recorded %d failures, want 1", col.Failures())
	}
	ds := col.BuildDataset()
	if ds.Len() == 0 {
		t.Fatalf("labelled dataset is empty")
	}
	// Labels must be consistent: every sample earlier in time has a larger or
	// equal RTTF than a later one from the same (single-failure) episode.
	for i := 1; i < ds.Len(); i++ {
		prev, cur := ds.Samples[i-1], ds.Samples[i]
		if cur.Vector.TimeS > prev.Vector.TimeS && cur.RTTFSeconds > prev.RTTFSeconds+1e-9 {
			t.Fatalf("RTTF labels should decrease toward the failure: %v then %v", prev.RTTFSeconds, cur.RTTFSeconds)
		}
	}
}

func TestCollectSyntheticDatasetAndTrainFromProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling run is comparatively slow")
	}
	pcfg := ProfileConfig{
		Seed:           11,
		Instance:       cloudsim.PrivateVM,
		VMs:            3,
		RatePerVM:      8,
		SampleInterval: 20 * simclock.Second,
		TargetFailures: 6,
		MaxHorizon:     12 * simclock.Hour,
	}
	ds, err := CollectSyntheticDataset(pcfg)
	if err != nil {
		t.Fatalf("CollectSyntheticDataset: %v", err)
	}
	if ds.Len() < 50 {
		t.Fatalf("profiling dataset too small: %d samples", ds.Len())
	}
	if got := len(ds.VMs()); got == 0 {
		t.Fatalf("dataset should cover at least one VM")
	}

	model, report, err := TrainFromProfile(pcfg, DefaultConfig())
	if err != nil {
		t.Fatalf("TrainFromProfile: %v", err)
	}
	if model == nil || report == nil {
		t.Fatalf("nil model or report")
	}
	// The model must capture the monotone degradation signal: a fresh VM
	// sample should map to a larger RTTF than a nearly exhausted one.  Build
	// the two probes from actual dataset extremes to stay in-distribution.
	var freshest, mostWorn features.Sample
	for i, s := range ds.Samples {
		if i == 0 || s.RTTFSeconds > freshest.RTTFSeconds {
			freshest = s
		}
		if i == 0 || s.RTTFSeconds < mostWorn.RTTFSeconds {
			mostWorn = s
		}
	}
	pf := model.PredictRTTF(freshest.Vector)
	pw := model.PredictRTTF(mostWorn.Vector)
	if pf <= pw {
		t.Fatalf("model should rank a fresh VM above a worn one: fresh=%v worn=%v", pf, pw)
	}
	if math.IsNaN(pf) || math.IsNaN(pw) {
		t.Fatalf("predictions must not be NaN")
	}
}

func TestProfileConfigDefaults(t *testing.T) {
	cfg := ProfileConfig{}.withDefaults()
	if cfg.Instance.Name != cloudsim.M3Medium.Name {
		t.Fatalf("default instance should be m3.medium")
	}
	if cfg.VMs != 4 || cfg.TargetFailures != 12 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	if cfg.MaxHorizon != 24*simclock.Hour {
		t.Fatalf("default horizon = %v", cfg.MaxHorizon)
	}
}

func BenchmarkTrainToolchain(b *testing.B) {
	ds := syntheticDataset(400, 9)
	cfg := DefaultConfig()
	cfg.CVFolds = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Train(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
