package core

import (
	"fmt"
	"math"
)

// PolicyInput is the information available to a policy when it recomputes the
// workload fractions at the leader VMC: the smoothed RMTTF of every region
// (equation 1), the fractions decided at the previous control era, and the
// global incoming request rate λ.
type PolicyInput struct {
	// Regions names the regions, in the same order as the other slices.
	Regions []string
	// RMTTF is the current (smoothed) Region Mean Time To Failure of each
	// region, in seconds.
	RMTTF []float64
	// PrevFractions are the fractions f_i decided at era t-1.  They sum to 1.
	PrevFractions []float64
	// Lambda is the global incoming request rate in requests per second.
	Lambda float64
}

// validate checks the slices are consistent.
func (in PolicyInput) validate() error {
	n := len(in.Regions)
	if n == 0 {
		return fmt.Errorf("core: policy input with no regions")
	}
	if len(in.RMTTF) != n || len(in.PrevFractions) != n {
		return fmt.Errorf("core: policy input slice lengths mismatch (regions=%d rmttf=%d prev=%d)",
			n, len(in.RMTTF), len(in.PrevFractions))
	}
	return nil
}

// Policy decides the fraction f_i of global incoming requests to forward to
// each cloud region.
type Policy interface {
	// Name returns the policy's display name.
	Name() string
	// Fractions returns the new workload fractions.  Implementations must
	// return a vector of the same length as the input regions, with
	// non-negative entries summing to 1.
	Fractions(in PolicyInput) ([]float64, error)
}

// Normalize clamps negative entries to zero and rescales the vector to sum to
// 1.  A vector that sums to zero (or contains only non-finite values) becomes
// the uniform distribution — the safest fallback for a load balancer.
func Normalize(f []float64) []float64 {
	out := make([]float64, len(f))
	sum := 0.0
	for i, v := range f {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		out[i] = v
		sum += v
	}
	if sum <= 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// SensibleRouting is Policy 1 of the paper, based on Wang and Gelenbe's
// sensible routing: the fraction of requests forwarded to a region is
// proportional to the weight of its current RMTTF over the sum of the RMTTFs
// of all regions (equation 2).
type SensibleRouting struct{}

// Name implements Policy.
func (SensibleRouting) Name() string { return "policy1-sensible-routing" }

// Fractions implements Policy (equation 2).
func (SensibleRouting) Fractions(in PolicyInput) ([]float64, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	return Normalize(append([]float64(nil), in.RMTTF...)), nil
}

// AvailableResources is Policy 2 of the paper: a single numeric parameter
// Q_i = RMTTF_i * f_i * λ abstracts the amount of available resources in a
// region (equation 3), under the assumption that resources are linearly
// consumed by the incoming requests; the new fraction of a region is
// proportional to its estimated resources (equation 4).
type AvailableResources struct {
	// MinFraction optionally floors every region's fraction so that a region
	// that momentarily receives no traffic keeps producing fresh RMTTF
	// observations.  Zero (the paper's formulation) applies no floor.
	MinFraction float64
}

// Name implements Policy.
func (AvailableResources) Name() string { return "policy2-available-resources" }

// Fractions implements Policy (equations 3 and 4).
func (p AvailableResources) Fractions(in PolicyInput) ([]float64, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	lambda := in.Lambda
	if lambda <= 0 {
		// λ only scales every Q_i by the same constant, so the fractions are
		// unaffected; use 1 to keep the estimate well defined.
		lambda = 1
	}
	q := make([]float64, len(in.Regions))
	for i := range q {
		q[i] = in.RMTTF[i] * in.PrevFractions[i] * lambda
	}
	out := Normalize(q)
	if p.MinFraction > 0 {
		for i := range out {
			if out[i] < p.MinFraction {
				out[i] = p.MinFraction
			}
		}
		out = Normalize(out)
	}
	return out, nil
}

// Exploration is Policy 3 of the paper, a hill-climbing-inspired exploration
// strategy (equations 5–9): regions whose RMTTF is below the average RMTTF
// (ARMTTF) are treated as overloaded and have their fraction scaled down by
// RMTTF_i/ARMTTF · k; the flow taken away from them (Δf) is redistributed to
// the underloaded regions (RMTTF above the average) proportionally to their
// RMTTF, and the result is renormalised so the fractions keep summing to 1 as
// the paper requires.
//
// Note on fidelity: the prose of Section IV-C and equations (6)–(9) are not
// mutually consistent in the paper (the prose says high-RMTTF regions are
// decreased, the equations scale down the low-RMTTF ones).  We follow the
// equations and the obvious control-theoretic intent — regions that are
// failing sooner (low RMTTF, i.e. overloaded) must receive less traffic —
// which is also the only reading under which the policy can converge.
type Exploration struct {
	// K is the constant scaling factor k of equations (6) and (8).  Zero means
	// 1 (pure proportional step).
	K float64
	// Jitter adds a small multiplicative random perturbation (±Jitter) to each
	// step, modelling the "intrinsic randomness" of exploration approaches the
	// paper mentions.  Zero disables it; the perturbation uses a deterministic
	// internal sequence so experiments stay reproducible.
	Jitter float64

	jitterState uint64
}

// Name implements Policy.
func (*Exploration) Name() string { return "policy3-exploration" }

// nextJitter returns a deterministic pseudo-random value in [-1, 1).
func (p *Exploration) nextJitter() float64 {
	p.jitterState = p.jitterState*6364136223846793005 + 1442695040888963407
	return float64(p.jitterState>>11)/(1<<52) - 1
}

// Fractions implements Policy (equations 5–9).
func (p *Exploration) Fractions(in PolicyInput) ([]float64, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	n := len(in.Regions)
	k := p.K
	if k <= 0 {
		k = 1
	}

	// Equation (5): average RMTTF over all regions.
	armttf := 0.0
	for _, v := range in.RMTTF {
		armttf += v
	}
	armttf /= float64(n)
	if armttf <= 0 {
		return Normalize(append([]float64(nil), in.PrevFractions...)), nil
	}

	sumRMTTF := armttf * float64(n)
	next := make([]float64, n)

	// Equation (6): overloaded regions (RMTTF below average) are scaled down.
	deltaOverloaded := 0.0 // Δf_< of equation (7): total flow removed (negative sum)
	for i := range next {
		if in.RMTTF[i] < armttf {
			next[i] = in.RMTTF[i] / armttf * in.PrevFractions[i] * k
			deltaOverloaded += next[i] - in.PrevFractions[i]
		}
	}
	freed := -deltaOverloaded
	if freed < 0 {
		freed = 0
	}

	// Equation (8): the freed flow is redistributed to the underloaded
	// regions (RMTTF above average), proportionally to their RMTTF share.
	for i := range next {
		if in.RMTTF[i] >= armttf {
			share := in.RMTTF[i] / sumRMTTF
			next[i] = in.PrevFractions[i] + freed*share*k
		}
	}

	if p.Jitter > 0 {
		for i := range next {
			next[i] *= 1 + p.Jitter*p.nextJitter()
		}
	}
	// The paper requires Σ f_i = 1 to hold after every update.
	return Normalize(next), nil
}

// Uniform is the static baseline that splits the workload evenly across the
// regions, ignoring their health and capacity.  The reproduction uses it to
// quantify what the MTTF-driven policies buy.
type Uniform struct{}

// Name implements Policy.
func (Uniform) Name() string { return "baseline-uniform" }

// Fractions implements Policy.
func (Uniform) Fractions(in PolicyInput) ([]float64, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	out := make([]float64, len(in.Regions))
	for i := range out {
		out[i] = 1 / float64(len(out))
	}
	return out, nil
}

// Static always returns a fixed, pre-computed fraction vector (for example
// proportional to the nominal capacity of each region).  It models a manually
// tuned deployment that never adapts at runtime.
type Static struct {
	// Weights are the fixed per-region weights (normalised on use).
	Weights []float64
}

// Name implements Policy.
func (Static) Name() string { return "baseline-static" }

// Fractions implements Policy.
func (s Static) Fractions(in PolicyInput) ([]float64, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if len(s.Weights) != len(in.Regions) {
		return nil, fmt.Errorf("core: static policy has %d weights for %d regions", len(s.Weights), len(in.Regions))
	}
	return Normalize(append([]float64(nil), s.Weights...)), nil
}

// PolicyCloner is implemented by policies that carry internal mutable state:
// ClonePolicy returns an equivalent policy sharing none of that state.  Any
// new stateful policy must implement it, or concurrent runs would share its
// state; stateless value policies need not.
type PolicyCloner interface {
	// ClonePolicy returns a state-free copy with the same parameters.
	ClonePolicy() Policy
}

// ClonePolicy returns a policy equivalent to p that shares no mutable state
// with it: stateful policies (those implementing PolicyCloner) are deep
// copied, stateless value policies are returned as-is.  Parallel experiment
// runners clone the policy per simulation so that concurrent runs never share
// generator state.
func ClonePolicy(p Policy) Policy {
	if c, ok := p.(PolicyCloner); ok {
		return c.ClonePolicy()
	}
	return p
}

// ClonePolicy implements PolicyCloner: the clone starts a fresh jitter
// sequence with the same K and Jitter parameters.
func (p *Exploration) ClonePolicy() Policy { return &Exploration{K: p.K, Jitter: p.Jitter} }

// ByName constructs one of the named policies:
// "policy1" / "sensible" → Policy 1, "policy2" / "resources" → Policy 2,
// "policy3" / "exploration" → Policy 3, "uniform" → uniform baseline.
func ByName(name string) (Policy, error) {
	switch name {
	case "policy1", "sensible", "sensible-routing", "policy1-sensible-routing":
		return SensibleRouting{}, nil
	case "policy2", "resources", "available-resources", "policy2-available-resources":
		return AvailableResources{}, nil
	case "policy3", "exploration", "policy3-exploration":
		return &Exploration{K: 1}, nil
	case "uniform", "baseline-uniform":
		return Uniform{}, nil
	default:
		return nil, fmt.Errorf("core: unknown policy %q (valid: policy1, policy2, policy3, uniform)", name)
	}
}
