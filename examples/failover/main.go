// Failover: dependability mechanics of the ACM framework.
//
// The example exercises the parts of the framework that keep the application
// available when things break (experiment E6 of the reproduction):
//
//   - proactive rejuvenation: VMs are rejuvenated before reaching their
//     failure point and standby VMs take over transparently;
//   - overlay rerouting: a failed controller-to-controller link is routed
//     around via the transit node, so RMTTF reports keep flowing;
//   - leader re-election: when the leader VMC's region controller fails, the
//     remaining controllers elect a new leader and the control loop keeps
//     running; the original leader resumes after recovery.
//
// Run with:
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"repro/internal/acm"
	"repro/internal/backend"
	"repro/internal/cloudsim"
	"repro/internal/core"
	"repro/internal/simclock"
)

func main() {
	cfg := acm.Config{
		Seed: 99,
		Regions: []acm.RegionSetup{
			{Region: cloudsim.PaperRegionConfig(cloudsim.PaperRegion1), Clients: 256},
			{Region: cloudsim.PaperRegionConfig(cloudsim.PaperRegion2), Clients: 128},
			{Region: cloudsim.PaperRegionConfig(cloudsim.PaperRegion3), Clients: 96},
		},
		Policy:          core.AvailableResources{},
		ControlInterval: 60 * simclock.Second,
	}
	// Fault injection and engine scheduling are simulator-specific surfaces,
	// so this example constructs through the backend seam and unwraps: a live
	// backend would have no counterpart for InjectLinkFailure.
	b, err := backend.NewSimulated(cfg)
	if err != nil {
		log.Fatal(err)
	}
	mgr := b.Manager()

	initialLeader, _ := mgr.Cluster().GlobalLeader()
	fmt.Println("initial leader VMC:", initialLeader)

	// Inject the fault schedule before starting the run.
	fmt.Println("fault schedule:")
	fmt.Println("  t=15min  overlay link region1-region3 fails (reroute via transit/Frankfurt)")
	fmt.Println("  t=20min  leader controller fails (re-election expected)")
	fmt.Println("  t=35min  leader controller recovers")
	fmt.Println("  t=40min  overlay link region1-region3 recovers")
	mgr.InjectLinkFailure(15*simclock.Minute, "region1", "region3")
	mgr.InjectControllerFailure(20*simclock.Minute, initialLeader)
	mgr.InjectControllerRecovery(35*simclock.Minute, initialLeader)
	mgr.InjectLinkRecovery(40*simclock.Minute, "region1", "region3")

	// Observe the overlay route before/after the link failure by probing at
	// specific times.
	mgr.Engine().ScheduleFunc(16*simclock.Minute, func(*simclock.Engine) {
		route, err := mgr.Overlay().ShortestRoute("region1", "region3")
		if err != nil {
			fmt.Println("  [t=16min] region1 -> region3 unreachable:", err)
			return
		}
		fmt.Println("  [t=16min] region1 -> region3 rerouted:", route)
	})
	mgr.Engine().ScheduleFunc(21*simclock.Minute, func(*simclock.Engine) {
		leader, ok := mgr.Cluster().GlobalLeader()
		fmt.Printf("  [t=21min] leader after controller failure: %s (unique=%v)\n", leader, ok)
	})
	mgr.Engine().ScheduleFunc(36*simclock.Minute, func(*simclock.Engine) {
		leader, _ := mgr.Cluster().GlobalLeader()
		fmt.Printf("  [t=36min] leader after recovery: %s\n", leader)
	})

	if err := b.Run(1 * simclock.Hour); err != nil {
		log.Fatal(err)
	}

	final := b.Results()
	fmt.Println()
	fmt.Println("run completed despite the injected failures:")
	fmt.Println("  client metrics:        ", b.Metrics())
	fmt.Println("  control eras executed: ", final.Eras)
	fmt.Println("  elections run:         ", final.Elections)
	fmt.Println("  final leader:          ", final.Leader)
	for name, s := range final.VMCStats {
		fmt.Printf("  %s: proactive rejuvenations=%d reactive recoveries=%d activations=%d\n",
			name, s.ProactiveRejuvenations, s.ReactiveRecoveries, s.Activations)
	}
	fmt.Printf("  mean response time: %.0f ms (SLA: 1000 ms)\n", 1000*b.Metrics().MeanResponseTime(""))
}
