package experiment

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Sweep output: a matrix run produces one flat summary row per job, written
// as CSV (for spreadsheets and plotting scripts) or JSON (for downstream
// tooling).  Rows carry only the summary metrics, not the raw series — a
// sweep of hundreds of jobs must stay cheap to persist, which is also what
// makes the checkpoint journal (journal.go) practical.

// SweepRow is the flat summary of one sweep job.
type SweepRow struct {
	// Index is the job's position in the expanded matrix.
	Index int `json:"index"`
	// Scenario is the expanded scenario name (beta/rep suffixes included).
	Scenario string `json:"scenario"`
	// Policy is the policy key.
	Policy string `json:"policy"`
	// Seed is the job's derived seed.
	Seed uint64 `json:"seed"`
	// Beta is the smoothing factor the job ran with.
	Beta float64 `json:"beta"`
	// Rep is the replication index.
	Rep int `json:"rep"`

	Converged bool `json:"converged"`
	// RelativeSpread is the steady-state RMTTF spread.
	RelativeSpread float64 `json:"relativeSpread"`
	// ConvergenceTime is in seconds; -1 when the run never converged (JSON
	// cannot carry +Inf).
	ConvergenceTime     float64 `json:"convergenceTime"`
	FractionOscillation float64 `json:"fractionOscillation"`
	MeanResponseTime    float64 `json:"meanResponseTime"`
	SLAViolationRatio   float64 `json:"slaViolationRatio"`
	SuccessRatio        float64 `json:"successRatio"`
	ForwardedFraction   float64 `json:"forwardedFraction"`
	Eras                uint64  `json:"eras"`
	// Err is the job's failure message, empty on success.
	Err string `json:"err,omitempty"`
}

// RowFromJobResult flattens one job result into its sweep row.
func RowFromJobResult(jr JobResult) SweepRow {
	row := SweepRow{
		Index:    jr.Job.Index,
		Scenario: jr.Job.Scenario.Name,
		Policy:   jr.Job.Policy.Key,
		Seed:     jr.Job.Scenario.Seed,
		Beta:     jr.Job.Scenario.Beta,
		Rep:      jr.Job.Rep,
	}
	if jr.Err != nil {
		row.Err = jr.Err.Error()
		return row
	}
	r := jr.Result
	row.Converged = r.RMTTFConvergence.Converged
	row.RelativeSpread = r.RMTTFConvergence.RelativeSpread
	row.ConvergenceTime = -1
	if r.RMTTFConvergence.Converged && !math.IsInf(r.RMTTFConvergence.ConvergenceTime, 0) {
		row.ConvergenceTime = r.RMTTFConvergence.ConvergenceTime
	}
	row.FractionOscillation = r.FractionOscillation
	row.MeanResponseTime = r.MeanResponseTime
	row.SLAViolationRatio = r.SLAViolationRatio
	row.SuccessRatio = r.SuccessRatio
	row.ForwardedFraction = r.ForwardedFraction
	row.Eras = r.Eras
	return row
}

// RowsFromJobResults flattens a full result set, in job order.
func RowsFromJobResults(results []JobResult) []SweepRow {
	rows := make([]SweepRow, len(results))
	for i, jr := range results {
		rows[i] = RowFromJobResult(jr)
	}
	return rows
}

// sweepHeader is the CSV column order.
var sweepHeader = []string{
	"index", "scenario", "policy", "seed", "beta", "rep",
	"converged", "relative_spread", "convergence_time_s", "fraction_oscillation",
	"mean_rt_s", "sla_violation_ratio", "success_ratio", "forwarded_fraction",
	"eras", "err",
}

// WriteSweepCSV writes the rows as CSV with a header line.
func WriteSweepCSV(w io.Writer, rows []SweepRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(sweepHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, r := range rows {
		rec := []string{
			strconv.Itoa(r.Index), r.Scenario, r.Policy, strconv.FormatUint(r.Seed, 10),
			f(r.Beta), strconv.Itoa(r.Rep),
			strconv.FormatBool(r.Converged), f(r.RelativeSpread), f(r.ConvergenceTime),
			f(r.FractionOscillation), f(r.MeanResponseTime), f(r.SLAViolationRatio),
			f(r.SuccessRatio), f(r.ForwardedFraction),
			strconv.FormatUint(r.Eras, 10), r.Err,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSweepJSON writes the rows as an indented JSON array.
func WriteSweepJSON(w io.Writer, rows []SweepRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// SweepTable renders the rows as an aligned text table for terminal output.
func SweepTable(rows []SweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-10s %6s %4s %9s %9s %10s %10s %8s\n",
		"scenario", "policy", "beta", "rep", "converged", "spread", "meanRT(s)", "slaViol", "eras")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-28s %-10s %6.2f %4d  ERROR: %s\n", r.Scenario, r.Policy, r.Beta, r.Rep, r.Err)
			continue
		}
		conv := "no"
		if r.Converged {
			conv = "yes"
		}
		fmt.Fprintf(&b, "%-28s %-10s %6.2f %4d %9s %9.3f %10.3f %10.4f %8d\n",
			r.Scenario, r.Policy, r.Beta, r.Rep, conv, r.RelativeSpread, r.MeanResponseTime, r.SLAViolationRatio, r.Eras)
	}
	return b.String()
}

// RunSweep is the one sweep pipeline both CLIs drive: expand and execute
// the matrix — through the checkpoint journal when journalPath is non-empty
// — and return the summary rows in job order.
func RunSweep(ctx context.Context, m Matrix, opt Options, journalPath string) ([]SweepRow, error) {
	if journalPath != "" {
		return RunMatrixWithJournal(ctx, m, opt, journalPath)
	}
	results, err := RunMatrix(ctx, m, opt)
	if err != nil {
		return nil, err
	}
	return RowsFromJobResults(results), nil
}

// WriteSweepFile writes the rows to path with the given emitter
// (WriteSweepCSV or WriteSweepJSON); an empty path is a no-op.
func WriteSweepFile(path string, rows []SweepRow, emit func(io.Writer, []SweepRow) error) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f, rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RunSweepAndEmit is the whole sweep-CLI tail shared by cmd/figures and
// cmd/acmsim: execute the matrix (checkpointed through journalPath when
// non-empty), print the summary table to out, and write the rows as CSV
// and/or JSON with a "wrote ..." notice per file.  The CLIs keep only their
// flag handling.
func RunSweepAndEmit(ctx context.Context, m Matrix, opt Options, journalPath, csvPath, jsonPath string, out io.Writer) error {
	rows, err := RunSweep(ctx, m, opt, journalPath)
	if err != nil {
		return err
	}
	fmt.Fprint(out, SweepTable(rows))
	for _, dst := range []struct {
		path string
		emit func(io.Writer, []SweepRow) error
	}{{csvPath, WriteSweepCSV}, {jsonPath, WriteSweepJSON}} {
		if dst.path == "" {
			continue
		}
		if err := WriteSweepFile(dst.path, rows, dst.emit); err != nil {
			return err
		}
		fmt.Fprintln(out, "wrote", dst.path)
	}
	return nil
}

// ParseList splits a comma-separated flag value into trimmed non-empty
// items ("figure3, figure4" -> ["figure3" "figure4"]).
func ParseList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// ParseFloatList parses a comma-separated list of floats ("0.25,0.75").
func ParseFloatList(s string) ([]float64, error) {
	var out []float64
	for _, part := range ParseList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("experiment: invalid number %q in list %q", part, s)
		}
		out = append(out, v)
	}
	return out, nil
}
