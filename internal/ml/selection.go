package ml

import (
	"fmt"
	"math"
	"sort"
)

// FeatureSelectionResult describes the outcome of Lasso-based feature
// selection: which feature indices were kept and the magnitude of each
// coefficient (in standardised space), sorted by importance.
type FeatureSelectionResult struct {
	// Selected holds the retained feature indices, most important first.
	Selected []int
	// Importance maps feature index to |standardised coefficient|.
	Importance map[int]float64
	// Lambda is the penalty used for the selection.
	Lambda float64
}

// SelectFeaturesLasso fits a Lasso model on (x, y) and returns the features
// with non-zero coefficients, mirroring how F2PM uses Lasso regularisation to
// reduce the amount of information managed at runtime.  If the requested
// penalty eliminates everything, the penalty is halved until at least
// minFeatures survive (or the penalty becomes negligible).
func SelectFeaturesLasso(x [][]float64, y []float64, lambda float64, minFeatures int) (FeatureSelectionResult, error) {
	if len(x) == 0 {
		return FeatureSelectionResult{}, ErrEmptyDataset
	}
	if len(x) != len(y) {
		return FeatureSelectionResult{}, ErrDimensionMismatch
	}
	if lambda <= 0 {
		lambda = 0.1
	}
	if minFeatures <= 0 {
		minFeatures = 1
	}
	if minFeatures > len(x[0]) {
		minFeatures = len(x[0])
	}

	cur := lambda
	for {
		lasso := NewLasso(cur)
		if err := lasso.Fit(x, y); err != nil {
			return FeatureSelectionResult{}, fmt.Errorf("ml: feature selection: %w", err)
		}
		selected := lasso.SelectedFeatures(1e-9)
		if len(selected) >= minFeatures || cur < 1e-8 {
			imp := map[int]float64{}
			for _, j := range selected {
				imp[j] = math.Abs(lasso.Coefficients[j])
			}
			sort.Slice(selected, func(a, b int) bool { return imp[selected[a]] > imp[selected[b]] })
			return FeatureSelectionResult{Selected: selected, Importance: imp, Lambda: cur}, nil
		}
		cur /= 2
	}
}

// ProjectColumns returns a copy of x restricted to the given column indices,
// in the given order.
func ProjectColumns(x [][]float64, cols []int) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		r := make([]float64, len(cols))
		for k, c := range cols {
			if c >= 0 && c < len(row) {
				r[k] = row[c]
			}
		}
		out[i] = r
	}
	return out
}

// DefaultCandidates returns factories for the six model families supported by
// F2PM, keyed by display name.  lassoLambda tunes the Lasso predictor.
func DefaultCandidates(lassoLambda float64) map[string]func() Regressor {
	if lassoLambda <= 0 {
		lassoLambda = 0.01
	}
	return map[string]func() Regressor{
		"LinearRegression": func() Regressor { return NewLinearRegression() },
		"M5P":              func() Regressor { return NewM5P() },
		"REPTree":          func() Regressor { return NewREPTree() },
		"Lasso":            func() Regressor { return NewLasso(lassoLambda) },
		"SVR":              func() Regressor { return NewSVR() },
		"LS-SVM":           func() Regressor { return NewLSSVM() },
	}
}

// NewByName constructs one of the default models by its display name, or
// returns an error listing the valid names.
func NewByName(name string) (Regressor, error) {
	candidates := DefaultCandidates(0.01)
	if f, ok := candidates[name]; ok {
		return f(), nil
	}
	names := make([]string, 0, len(candidates))
	for n := range candidates {
		names = append(names, n)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("ml: unknown model %q (valid: %v)", name, names)
}
