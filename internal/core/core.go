// Package core implements the paper's primary contribution: the proactive
// load-balancing policies that distribute client requests across
// heterogeneous cloud regions so that the Region Mean Time To Failure (RMTTF)
// of every region converges to the same value, together with the supporting
// machinery — the weighted RMTTF aggregation of equation (1), the global
// forward plan that realises the chosen fractions, and the Monitor → Analyze
// → Plan → Execute closed control loop of Section V.
//
// The three policies of Section IV are provided (Sensible Routing, Available
// Resources Estimation, Exploration), plus the uniform and static baselines
// the reproduction uses as reference points.
package core
