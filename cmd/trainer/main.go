// Command trainer runs the F2PM machine-learning toolchain end to end: it
// profiles a pool of simulated VMs until enough failure episodes have been
// observed, labels the collected feature vectors with the Remaining Time To
// Failure, selects the relevant features via Lasso regularisation, trains the
// six candidate model families (Linear Regression, M5P, REP-Tree, Lasso, SVR,
// LS-SVM), and prints the comparison table F2PM presents to the user — the E4
// experiment of the reproduction.
//
// Examples:
//
//	trainer                               # profile m3.medium VMs, compare all models
//	trainer -instance private -failures 20
//	trainer -instance all                 # train every paper instance type in parallel
//	trainer -model M5P -dataset out.csv   # force the runtime model, save the dataset
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/cloudsim"
	"repro/internal/experiment"
	"repro/internal/f2pm"
	"repro/internal/features"
	"repro/internal/simclock"
)

func main() {
	var (
		instance = flag.String("instance", "m3.medium", "instance type to profile: m3.medium, m3.small, private or all")
		vms      = flag.Int("vms", 4, "number of VMs profiled in parallel")
		rate     = flag.Float64("rate", 6, "open-loop request rate per VM (req/s)")
		failures = flag.Int("failures", 12, "failure episodes to observe before training")
		sample   = flag.Float64("sample", 30, "feature sampling interval in seconds")
		model    = flag.String("model", "REPTree", "runtime model to install (empty = best by RMSE)")
		seed     = flag.Uint64("seed", 7, "deterministic seed")
		dataset  = flag.String("dataset", "", "optional path to save the labelled dataset as CSV")
	)
	flag.Parse()

	if err := run(*instance, *vms, *rate, *failures, *sample, *model, *seed, *dataset); err != nil {
		fmt.Fprintln(os.Stderr, "trainer:", err)
		os.Exit(1)
	}
}

func run(instance string, vms int, rate float64, failures int, sampleS float64, model string, seed uint64, datasetPath string) error {
	if instance == "all" {
		return runAll(vms, rate, failures, sampleS, model, seed, datasetPath)
	}
	var itype cloudsim.InstanceType
	switch instance {
	case "m3.medium":
		itype = cloudsim.M3Medium
	case "m3.small":
		itype = cloudsim.M3Small
	case "private":
		itype = cloudsim.PrivateVM
	default:
		return fmt.Errorf("unknown instance type %q (use m3.medium, m3.small, private or all)", instance)
	}

	pcfg := f2pm.ProfileConfig{
		Seed:           seed,
		Instance:       itype,
		VMs:            vms,
		RatePerVM:      rate,
		SampleInterval: simclock.Duration(sampleS),
		TargetFailures: failures,
	}
	fmt.Printf("profiling %d %s VMs at %.1f req/s each until %d failure episodes...\n",
		vms, itype.Name, rate, failures)
	ds, err := f2pm.CollectSyntheticDataset(pcfg)
	if err != nil {
		return err
	}
	fmt.Printf("collected %d labelled samples from %d VMs\n", ds.Len(), len(ds.VMs()))

	if datasetPath != "" {
		if err := writeDatasetCSV(datasetPath, ds); err != nil {
			return err
		}
		fmt.Println("wrote dataset to", datasetPath)
	}

	tcfg := f2pm.DefaultConfig()
	tcfg.PreferredModel = model
	runtimeModel, report, err := f2pm.Train(ds, tcfg)
	if err != nil {
		return err
	}

	fmt.Println()
	fmt.Println("model comparison (held-out split, best RMSE first; * marks the installed runtime model):")
	fmt.Print(report.Table())
	fmt.Printf("\ninstalled runtime model: %s over %d features\n", runtimeModel.Name, len(runtimeModel.Features))
	fmt.Printf("held-out metrics: %s\n", report.ChosenMetrics)
	if report.CrossValidation.N > 0 {
		fmt.Printf("%d-fold cross-validation: %s\n", tcfg.CVFolds, report.CrossValidation)
	}
	return nil
}

// runAll profiles and trains every paper instance type concurrently on the
// experiment worker pool — the same bounded pool the parallel scenario runner
// uses — and prints the comparison tables in a fixed order.  Each instance
// type profiles on its own deterministic seed stream derived from (seed,
// index), so the output is identical for any worker count.  When datasetPath
// is set, each type's labelled dataset is written to "<base>-<type><ext>".
func runAll(vms int, rate float64, failures int, sampleS float64, model string, seed uint64, datasetPath string) error {
	types := []cloudsim.InstanceType{cloudsim.M3Medium, cloudsim.M3Small, cloudsim.PrivateVM}
	reports := make([]string, len(types))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(types) {
		workers = len(types)
	}
	fmt.Printf("profiling %d instance types in parallel (%d workers)...\n", len(types), workers)
	err := experiment.ForEach(context.Background(), len(types), workers, func(i int) error {
		pcfg := f2pm.ProfileConfig{
			Seed:           simclock.DeriveSeed(seed, uint64(i)),
			Instance:       types[i],
			VMs:            vms,
			RatePerVM:      rate,
			SampleInterval: simclock.Duration(sampleS),
			TargetFailures: failures,
		}
		ds, err := f2pm.CollectSyntheticDataset(pcfg)
		if err != nil {
			return fmt.Errorf("%s: %w", types[i].Name, err)
		}
		var savedTo string
		if datasetPath != "" {
			savedTo = perTypePath(datasetPath, types[i].Name)
			if err := writeDatasetCSV(savedTo, ds); err != nil {
				return fmt.Errorf("%s: %w", types[i].Name, err)
			}
		}
		tcfg := f2pm.DefaultConfig()
		tcfg.PreferredModel = model
		runtimeModel, report, err := f2pm.Train(ds, tcfg)
		if err != nil {
			return fmt.Errorf("%s: %w", types[i].Name, err)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "=== %s ===\n", types[i].Name)
		b.WriteString(report.Table())
		fmt.Fprintf(&b, "installed runtime model: %s over %d features, held-out %s\n",
			runtimeModel.Name, len(runtimeModel.Features), report.ChosenMetrics)
		if savedTo != "" {
			fmt.Fprintf(&b, "wrote dataset to %s\n", savedTo)
		}
		reports[i] = b.String() // distinct index per call: no shared writes
		return nil
	})
	if err != nil {
		return err
	}
	for _, r := range reports {
		fmt.Println(r)
	}
	return nil
}

// perTypePath inserts the instance type name before the path's extension:
// "out.csv" + "m3.medium" -> "out-m3.medium.csv".
func perTypePath(path, typeName string) string {
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "-" + typeName + ext
}

// writeDatasetCSV saves one labelled dataset.
func writeDatasetCSV(path string, ds *features.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ds.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
