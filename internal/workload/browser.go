package workload

import (
	"fmt"
	"sort"

	"repro/internal/cloudsim"
	"repro/internal/simclock"
	"repro/internal/stats"
	"repro/internal/tracing"
)

// Dispatcher is the entry point requests are submitted to: in the full system
// it is the load balancer of the cloud region the client is connected to
// (which may forward the request to another region according to the global
// forward plan).  Tests can plug in a single VM or a stub.
type Dispatcher interface {
	// Submit hands the request to the region's load balancer.  Implementations
	// must eventually invoke the request's OnDone callback (directly or through
	// the VM that serves it).
	Submit(eng *simclock.Engine, req *cloudsim.Request)
}

// DispatcherFunc adapts a function to the Dispatcher interface.
type DispatcherFunc func(eng *simclock.Engine, req *cloudsim.Request)

// Submit implements Dispatcher.
func (f DispatcherFunc) Submit(eng *simclock.Engine, req *cloudsim.Request) { f(eng, req) }

// BrowserConfig holds the knobs of one emulated browser.
type BrowserConfig struct {
	// ID identifies the browser ("region1-eb007").
	ID string
	// Region is the cloud region the browser is connected to; it becomes the
	// EntryRegion of every request it issues.
	Region string
	// Mix is the interaction mix the browser draws from.
	Mix Mix
	// ThinkTimeMean is the mean of the exponentially distributed think time
	// between receiving a response and issuing the next interaction.  TPC-W
	// prescribes a mean of 7 seconds for emulated browsers.
	ThinkTimeMean simclock.Duration
	// SessionLength is the mean number of interactions per user session; after
	// a session ends the browser immediately starts a new one (new user).  It
	// only affects bookkeeping, not load.  Zero means 50.
	SessionLength int
	// Timeout aborts an interaction that has not completed after this long and
	// counts it as an error (the emulated user gives up).  Zero disables the
	// timeout.
	Timeout simclock.Duration
	// Tracer, when non-nil, samples this browser's requests into the
	// deployment's span layer.  The stream identity is the browser ID, so the
	// sampled set is a pure function of (tracer seed, browser ID, request
	// counter) — independent of event interleavings.
	Tracer *tracing.Tracer
}

// withDefaults fills zero fields with the TPC-W defaults.
func (c BrowserConfig) withDefaults() BrowserConfig {
	if c.ThinkTimeMean <= 0 {
		c.ThinkTimeMean = 7 * simclock.Second
	}
	if c.SessionLength <= 0 {
		c.SessionLength = 50
	}
	return c
}

// Browser is one emulated web browser running a closed-loop TPC-W session.
type Browser struct {
	cfg     BrowserConfig
	rng     *simclock.RNG
	target  Dispatcher
	metrics *Metrics

	running   bool
	nextReqID uint64
	sessions  uint64
	inSession int
}

// NewBrowser builds an emulated browser that submits requests to target and
// records outcomes into metrics (which may be shared across browsers).
func NewBrowser(cfg BrowserConfig, rng *simclock.RNG, target Dispatcher, metrics *Metrics) *Browser {
	if metrics == nil {
		metrics = NewMetrics()
	}
	return &Browser{cfg: cfg.withDefaults(), rng: rng, target: target, metrics: metrics}
}

// ID returns the browser identifier.
func (b *Browser) ID() string { return b.cfg.ID }

// Sessions returns the number of completed user sessions.
func (b *Browser) Sessions() uint64 { return b.sessions }

// Start begins the closed loop: the first interaction is issued after a
// random fraction of the think time so that browsers do not fire in lockstep.
func (b *Browser) Start(eng *simclock.Engine) {
	if b.running {
		return
	}
	b.running = true
	initial := simclock.Duration(b.rng.Uniform(0, b.cfg.ThinkTimeMean.Seconds()))
	eng.ScheduleFunc(initial, b.issue)
}

// Stop ends the closed loop after the in-flight interaction (if any)
// completes.
func (b *Browser) Stop() { b.running = false }

// Running reports whether the browser loop is active.
func (b *Browser) Running() bool { return b.running }

// issue sends the next interaction.
func (b *Browser) issue(eng *simclock.Engine) {
	if !b.running {
		return
	}
	it := b.cfg.Mix.Pick(b.rng)
	b.nextReqID++
	b.inSession++
	if b.inSession >= b.cfg.SessionLength {
		b.inSession = 0
		b.sessions++
	}
	req := &cloudsim.Request{
		ID:            b.nextReqID,
		Class:         it.Name,
		ServiceFactor: it.ServiceFactor,
		EntryRegion:   b.cfg.Region,
		Arrival:       eng.Now(),
		Trace:         b.cfg.Tracer.Start(b.cfg.ID, b.nextReqID, 1, eng.Now()),
	}

	completed := false
	var timeoutHandle simclock.Handle
	req.OnDone = func(o cloudsim.Outcome) {
		if completed {
			return
		}
		completed = true
		timeoutHandle.Cancel()
		sealTrace(req.Trace, o)
		b.metrics.record(b.cfg.Region, o)
		b.scheduleNext(eng)
	}
	if b.cfg.Timeout > 0 {
		timeoutHandle = eng.ScheduleFunc(b.cfg.Timeout, func(e *simclock.Engine) {
			if completed {
				return
			}
			completed = true
			req.Trace.Seal(tracing.OutcomeTimeout, e.Now(), e.Now(), "", "")
			b.metrics.recordTimeout(b.cfg.Region)
			b.scheduleNext(e)
		})
	}
	b.metrics.issued(b.cfg.Region)
	b.target.Submit(eng, req)
}

// sealTrace closes a sampled request's trace from its outcome.  Safe on a nil
// trace.
func sealTrace(rt *tracing.RequestTrace, o cloudsim.Outcome) {
	if rt == nil {
		return
	}
	outcome := tracing.OutcomeOK
	if o.Dropped {
		outcome = tracing.OutcomeDropped
	}
	rt.Seal(outcome, o.Start, o.End, o.VM, o.Region)
}

// scheduleNext waits the exponential think time and issues the next
// interaction.
func (b *Browser) scheduleNext(eng *simclock.Engine) {
	if !b.running {
		return
	}
	think := simclock.Duration(b.rng.Exp(b.cfg.ThinkTimeMean.Seconds()))
	eng.ScheduleFunc(think, b.issue)
}

// PopulationConfig describes the client population connected to one region.
type PopulationConfig struct {
	// Region is the region the clients connect to.
	Region string
	// Clients is the number of concurrently emulated browsers.
	Clients int
	// Mix is the interaction mix (BrowsingMix when zero-valued).
	Mix Mix
	// ThinkTimeMean overrides the browsers' mean think time (7 s when zero).
	ThinkTimeMean simclock.Duration
	// Timeout is the per-interaction timeout passed to every browser.
	Timeout simclock.Duration
	// RampUp spreads the browser start times over this window instead of
	// starting all at once.
	RampUp simclock.Duration
	// IDPrefix overrides the prefix of the browser identifiers (the region
	// name when empty).  Deployments that split one region's clients across
	// several engine shards use it to keep browser IDs unique per shard.
	IDPrefix string
	// Tracer is passed to every browser (see BrowserConfig.Tracer).
	Tracer *tracing.Tracer
}

// Population is a set of emulated browsers attached to one region.
type Population struct {
	cfg      PopulationConfig
	browsers []*Browser
}

// NewPopulation builds the browsers of one region.  All browsers share the
// provided metrics sink.
func NewPopulation(cfg PopulationConfig, rng *simclock.RNG, target Dispatcher, metrics *Metrics) *Population {
	if cfg.Mix.Name == "" {
		cfg.Mix = BrowsingMix()
	}
	p := &Population{cfg: cfg}
	prefix := cfg.IDPrefix
	if prefix == "" {
		prefix = cfg.Region
	}
	for i := 0; i < cfg.Clients; i++ {
		bc := BrowserConfig{
			ID:            fmt.Sprintf("%s-eb%03d", prefix, i+1),
			Region:        cfg.Region,
			Mix:           cfg.Mix,
			ThinkTimeMean: cfg.ThinkTimeMean,
			Timeout:       cfg.Timeout,
			Tracer:        cfg.Tracer,
		}
		p.browsers = append(p.browsers, NewBrowser(bc, rng.Fork(), target, metrics))
	}
	return p
}

// Region returns the region the population connects to.
func (p *Population) Region() string { return p.cfg.Region }

// Size returns the number of browsers.
func (p *Population) Size() int { return len(p.browsers) }

// Browsers returns the individual browsers.  The returned slice is a copy:
// mutating it cannot perturb the population's internal start/stop ordering.
func (p *Population) Browsers() []*Browser {
	return append([]*Browser(nil), p.browsers...)
}

// Start launches every browser, spreading starts over the ramp-up window.
func (p *Population) Start(eng *simclock.Engine) {
	for i, b := range p.browsers {
		b := b
		if p.cfg.RampUp > 0 && len(p.browsers) > 1 {
			delay := simclock.Duration(float64(p.cfg.RampUp) * float64(i) / float64(len(p.browsers)))
			eng.ScheduleFunc(delay, func(e *simclock.Engine) { b.Start(e) })
		} else {
			b.Start(eng)
		}
	}
}

// Stop halts every browser.
func (p *Population) Stop() {
	for _, b := range p.browsers {
		b.Stop()
	}
}

// ExpectedRate returns the steady-state request rate (requests per second) a
// closed-loop population of this size generates when the mean response time
// is small compared to the think time: clients / thinkTime.
func (p *Population) ExpectedRate() float64 {
	think := p.cfg.ThinkTimeMean
	if think <= 0 {
		think = 7 * simclock.Second
	}
	return float64(p.cfg.Clients) / think.Seconds()
}

// OpenLoopConfig describes a Poisson open-loop request source, used by unit
// tests and by the ablation experiments that need a precisely controlled
// request rate λ (the global incoming request rate of equation 3).
type OpenLoopConfig struct {
	// Region is the entry region of the generated requests.
	Region string
	// RatePerSec is the Poisson arrival rate.
	RatePerSec float64
	// Mix is the interaction mix (BrowsingMix when zero-valued).
	Mix Mix
	// Tracer, when non-nil, samples the stream's requests into the span
	// layer under the "<region>-open" stream identity.
	Tracer *tracing.Tracer
}

// OpenLoop is a Poisson request generator.
type OpenLoop struct {
	cfg     OpenLoopConfig
	rng     *simclock.RNG
	target  Dispatcher
	metrics *Metrics
	running bool
	nextID  uint64
}

// NewOpenLoop builds an open-loop generator.
func NewOpenLoop(cfg OpenLoopConfig, rng *simclock.RNG, target Dispatcher, metrics *Metrics) *OpenLoop {
	if cfg.Mix.Name == "" {
		cfg.Mix = BrowsingMix()
	}
	if metrics == nil {
		metrics = NewMetrics()
	}
	return &OpenLoop{cfg: cfg, rng: rng, target: target, metrics: metrics}
}

// Start begins generating arrivals.
func (o *OpenLoop) Start(eng *simclock.Engine) {
	if o.running || o.cfg.RatePerSec <= 0 {
		return
	}
	o.running = true
	o.scheduleNext(eng)
}

// Stop halts the generator.
func (o *OpenLoop) Stop() { o.running = false }

func (o *OpenLoop) scheduleNext(eng *simclock.Engine) {
	if !o.running {
		return
	}
	gap := simclock.Duration(o.rng.Exp(1 / o.cfg.RatePerSec))
	eng.ScheduleFunc(gap, func(e *simclock.Engine) {
		if !o.running {
			return
		}
		it := o.cfg.Mix.Pick(o.rng)
		o.nextID++
		req := &cloudsim.Request{
			ID:            o.nextID,
			Class:         it.Name,
			ServiceFactor: it.ServiceFactor,
			EntryRegion:   o.cfg.Region,
			Arrival:       e.Now(),
			Trace:         o.cfg.Tracer.Start(o.cfg.Region+"-open", o.nextID, 1, e.Now()),
		}
		req.OnDone = func(out cloudsim.Outcome) {
			sealTrace(req.Trace, out)
			o.metrics.record(o.cfg.Region, out)
		}
		o.metrics.issued(o.cfg.Region)
		o.target.Submit(e, req)
		o.scheduleNext(e)
	})
}

// Metrics aggregates client-side observations: per-region issued/completed/
// dropped counts and response-time distributions.  The paper's figures plot
// "the average response time measured by all clients", which is exactly what
// GlobalResponseTime reports.
type Metrics struct {
	perRegion map[string]*regionMetrics
	global    regionMetrics
	respHist  *stats.Histogram
	// exemplars holds one sampled-trace exemplar per response-time bucket
	// (ResponseTimeBuckets bounds plus the overflow bucket), linking the
	// exported histogram to the span layer.
	exemplars []Exemplar
}

// Exemplar links one response-time observation to the trace that produced it.
// The deterministic pick rule — latest completion wins, ties broken by the
// larger trace ID — is a commutative, associative maximum, so merging
// per-shard sinks in any order yields the same exemplar set.
type Exemplar struct {
	// Value is the observed response time in seconds.
	Value float64
	// TraceID is the 64-bit trace identifier (render with %016x).
	TraceID uint64
	// At is the completion time of the observation.
	At simclock.Time
	// Valid reports whether the bucket has seen any sampled observation.
	Valid bool
}

// ResponseTimeBuckets is the bucket layout of the response-time histogram,
// in seconds.  The SLA threshold (1s) is a bucket bound, so the SLA
// violation ratio is readable straight off the cumulative bucket counts.
var ResponseTimeBuckets = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

type regionMetrics struct {
	issued    uint64
	completed uint64
	dropped   uint64
	timeouts  uint64
	slaMiss   uint64
	resp      stats.Welford
}

// NewMetrics returns an empty metrics sink.
func NewMetrics() *Metrics {
	return &Metrics{
		perRegion: map[string]*regionMetrics{},
		respHist:  stats.NewHistogram(ResponseTimeBuckets),
		exemplars: make([]Exemplar, len(ResponseTimeBuckets)+1),
	}
}

// SLAThresholdSeconds is the response-time SLA the paper uses when reporting
// client-side behaviour: 1 second.
const SLAThresholdSeconds = 1.0

func (m *Metrics) region(name string) *regionMetrics {
	rm, ok := m.perRegion[name]
	if !ok {
		rm = &regionMetrics{}
		m.perRegion[name] = rm
	}
	return rm
}

func (m *Metrics) issued(region string) {
	m.region(region).issued++
	m.global.issued++
}

// issuedN counts n interactions issued at once (a cohort batch).
func (m *Metrics) issuedN(region string, n uint64) {
	m.region(region).issued += n
	m.global.issued += n
}

func (m *Metrics) record(region string, o cloudsim.Outcome) {
	rm := m.region(region)
	if o.Dropped {
		rm.dropped++
		m.global.dropped++
		return
	}
	rt := o.ResponseTime().Seconds()
	rm.completed++
	rm.resp.Add(rt)
	m.global.completed++
	m.global.resp.Add(rt)
	m.respHist.Observe(rt)
	if o.Request != nil && o.Request.Trace != nil {
		m.observeExemplar(rt, o.Request.Trace.TraceID, o.End)
	}
	if rt > SLAThresholdSeconds {
		rm.slaMiss++
		m.global.slaMiss++
	}
}

// observeExemplar folds one sampled observation into the per-bucket exemplar
// set under the deterministic pick rule.
func (m *Metrics) observeExemplar(rt float64, traceID uint64, at simclock.Time) {
	i := 0
	for ; i < len(ResponseTimeBuckets); i++ {
		if rt <= ResponseTimeBuckets[i] {
			break
		}
	}
	ex := &m.exemplars[i]
	if ex.Valid && (ex.At > at || (ex.At == at && ex.TraceID >= traceID)) {
		return
	}
	*ex = Exemplar{Value: rt, TraceID: traceID, At: at, Valid: true}
}

// recordBatch folds the outcome of a cohort batch of n interactions into the
// counters.  Batches carry aggregate counts only: they move the completed and
// dropped counters by their weight but add no response-time sample — the
// latency distribution (and with it slaMiss) is fed exclusively by
// individually simulated clients, i.e. browsers and cohort tracers.
func (m *Metrics) recordBatch(region string, o cloudsim.Outcome, n uint64) {
	rm := m.region(region)
	if o.Dropped {
		rm.dropped += n
		m.global.dropped += n
		return
	}
	rm.completed += n
	m.global.completed += n
}

func (m *Metrics) recordTimeout(region string) {
	m.region(region).timeouts++
	m.global.timeouts++
}

// Merge folds another metrics sink into m: counters add, response-time
// moments combine exactly via Welford's parallel update.  Deployments that
// keep one sink per engine shard (so recording stays shard-local and
// lock-free) fold the shards in shard-index order at read time — the fixed
// fold order is what keeps the merged floating-point moments
// bit-reproducible for any goroutine interleaving.
func (m *Metrics) Merge(src *Metrics) {
	if src == nil {
		return
	}
	for name, rm := range src.perRegion {
		dst := m.region(name)
		dst.issued += rm.issued
		dst.completed += rm.completed
		dst.dropped += rm.dropped
		dst.timeouts += rm.timeouts
		dst.slaMiss += rm.slaMiss
		dst.resp.Merge(rm.resp)
	}
	m.global.issued += src.global.issued
	m.global.completed += src.global.completed
	m.global.dropped += src.global.dropped
	m.global.timeouts += src.global.timeouts
	m.global.slaMiss += src.global.slaMiss
	m.global.resp.Merge(src.global.resp)
	m.respHist.Merge(src.respHist)
	for i := range src.exemplars {
		ex := src.exemplars[i]
		if !ex.Valid {
			continue
		}
		dst := &m.exemplars[i]
		if dst.Valid && (dst.At > ex.At || (dst.At == ex.At && dst.TraceID >= ex.TraceID)) {
			continue
		}
		*dst = ex
	}
}

// ResponseExemplars returns a copy of the per-bucket exemplars: one slot per
// ResponseTimeBuckets bound plus the overflow bucket, each valid only once a
// sampled trace landed in it.
func (m *Metrics) ResponseExemplars() []Exemplar {
	return append([]Exemplar(nil), m.exemplars...)
}

// ResponseHistogram returns the bucketed response-time distribution over all
// individually simulated clients (ResponseTimeBuckets bounds, seconds).  The
// caller must treat it as read-only.
func (m *Metrics) ResponseHistogram() *stats.Histogram { return m.respHist }

// Issued returns the number of requests issued by clients of the region ("" =
// global).
func (m *Metrics) Issued(region string) uint64 {
	if region == "" {
		return m.global.issued
	}
	return m.region(region).issued
}

// Completed returns the number of successfully completed requests.
func (m *Metrics) Completed(region string) uint64 {
	if region == "" {
		return m.global.completed
	}
	return m.region(region).completed
}

// Dropped returns the number of dropped requests.
func (m *Metrics) Dropped(region string) uint64 {
	if region == "" {
		return m.global.dropped
	}
	return m.region(region).dropped
}

// Timeouts returns the number of requests abandoned by the emulated users.
func (m *Metrics) Timeouts(region string) uint64 {
	if region == "" {
		return m.global.timeouts
	}
	return m.region(region).timeouts
}

// SLAViolations returns the number of completed requests whose response time
// exceeded the 1-second SLA.
func (m *Metrics) SLAViolations(region string) uint64 {
	if region == "" {
		return m.global.slaMiss
	}
	return m.region(region).slaMiss
}

// ResponseSamples returns the number of response-time samples recorded for
// the region ("" = global).  Without cohorts this equals Completed; with
// cohort-compressed populations only the tracer sub-population feeds the
// latency series, so ratios over the response-time distribution (mean RT, SLA
// violations) must divide by this count, not by the batch-weighted Completed.
func (m *Metrics) ResponseSamples(region string) uint64 {
	if region == "" {
		return uint64(m.global.resp.Count())
	}
	return uint64(m.region(region).resp.Count())
}

// MeanResponseTime returns the mean response time in seconds observed by the
// clients of the region ("" = all clients).
func (m *Metrics) MeanResponseTime(region string) float64 {
	if region == "" {
		return m.global.resp.Mean()
	}
	return m.region(region).resp.Mean()
}

// ResponseTimeStdDev returns the response-time standard deviation in seconds.
func (m *Metrics) ResponseTimeStdDev(region string) float64 {
	if region == "" {
		return m.global.resp.StdDev()
	}
	return m.region(region).resp.StdDev()
}

// Regions returns the region names observed so far, sorted.
func (m *Metrics) Regions() []string {
	out := make([]string, 0, len(m.perRegion))
	for r := range m.perRegion {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// SuccessRatio returns completed / issued for the region ("" = global), or 0
// when nothing was issued.
func (m *Metrics) SuccessRatio(region string) float64 {
	iss := m.Issued(region)
	if iss == 0 {
		return 0
	}
	return float64(m.Completed(region)) / float64(iss)
}

// String summarises the global metrics.
func (m *Metrics) String() string {
	return fmt.Sprintf("issued=%d completed=%d dropped=%d timeouts=%d meanRT=%.3fs slaMiss=%d",
		m.global.issued, m.global.completed, m.global.dropped, m.global.timeouts,
		m.global.resp.Mean(), m.global.slaMiss)
}
