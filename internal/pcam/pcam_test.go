package pcam

import (
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/features"
	"repro/internal/simclock"
	"repro/internal/workload"
)

func testRegion(seed uint64) *cloudsim.Region {
	cfg := cloudsim.RegionConfig{
		Name:           "region3",
		Provider:       "private",
		Location:       "Munich",
		Type:           cloudsim.PrivateVM,
		InitialActive:  4,
		InitialStandby: 2,
	}
	return cloudsim.NewRegion(cfg, simclock.NewRNG(seed))
}

func newTestVMC(t *testing.T, region *cloudsim.Region, pred RTTFPredictor, cfg Config) *VMC {
	t.Helper()
	vmc, err := NewVMC(region, pred, cfg)
	if err != nil {
		t.Fatalf("NewVMC: %v", err)
	}
	return vmc
}

func TestNewVMCValidation(t *testing.T) {
	if _, err := NewVMC(nil, OraclePredictor{}, Config{}); err == nil {
		t.Errorf("nil region should be rejected")
	}
	if _, err := NewVMC(testRegion(1), nil, Config{}); err == nil {
		t.Errorf("nil predictor should be rejected")
	}
	vmc, err := NewVMC(testRegion(1), OraclePredictor{}, Config{})
	if err != nil {
		t.Fatalf("NewVMC: %v", err)
	}
	cfg := vmc.Config()
	if cfg.RTTFThreshold != 600 || cfg.MinActive != 1 || cfg.RMTTFBeta != 0.5 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestDefaultConfigMatchesPaperSLA(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.ResponseTimeThreshold != 1.0 {
		t.Fatalf("response time threshold = %v, want the paper's 1 s SLA", cfg.ResponseTimeThreshold)
	}
	if !cfg.ElasticityEnabled {
		t.Fatalf("elasticity should be enabled by default")
	}
}

func TestPredictorAdapters(t *testing.T) {
	vm := cloudsim.NewVM(cloudsim.VMConfig{ID: "x", Type: cloudsim.M3Medium,
		Anomalies: cloudsim.DefaultAnomalyProfile(), Failure: cloudsim.DefaultFailurePoint()}, simclock.NewRNG(1))
	sample := features.NewVector("x", 0)
	sample.Set(features.RequestRate, 5)

	fn := PredictorFunc(func(*cloudsim.VM, features.Vector) float64 { return 42 })
	if got := fn.PredictRTTF(vm, sample); got != 42 {
		t.Fatalf("PredictorFunc = %v", got)
	}

	oracle := OraclePredictor{}
	if got := oracle.PredictRTTF(vm, sample); got <= 0 {
		t.Fatalf("oracle prediction should be positive for a healthy VM, got %v", got)
	}
	idle := features.NewVector("x", 0) // zero request rate => infinite true RTTF
	if got := oracle.PredictRTTF(vm, idle); got != OracleMaxRTTF {
		t.Fatalf("oracle should cap the idle-VM horizon at OracleMaxRTTF, got %v", got)
	}

	mp := ModelPredictor{Model: constModel{value: 99}}
	if got := mp.PredictRTTF(vm, sample); got != 99 {
		t.Fatalf("ModelPredictor = %v", got)
	}
}

type constModel struct{ value float64 }

func (c constModel) PredictRTTF(features.Vector) float64 { return c.value }

func TestSubmitBalancesAcrossActiveVMs(t *testing.T) {
	eng := simclock.NewEngine(3)
	region := testRegion(3)
	vmc := newTestVMC(t, region, OraclePredictor{}, Config{})

	const n = 400
	for i := 0; i < n; i++ {
		delay := simclock.Duration(float64(i) * 0.02)
		eng.ScheduleFunc(delay, func(e *simclock.Engine) {
			vmc.Submit(e, &cloudsim.Request{ID: uint64(i), ServiceFactor: 1, Arrival: e.Now()})
		})
	}
	eng.RunUntilEmpty()

	// Every active VM should have served a meaningful share.
	for _, vm := range region.ActiveVMs() {
		if vm.Served() < uint64(n/len(region.ActiveVMs())/4) {
			t.Fatalf("VM %s served only %d of %d requests: balancing is broken", vm.ID(), vm.Served(), n)
		}
	}
}

func TestSubmitWithNoActiveVMsDrops(t *testing.T) {
	eng := simclock.NewEngine(4)
	region := cloudsim.NewRegion(cloudsim.RegionConfig{
		Name: "empty", Type: cloudsim.M3Medium, InitialActive: 0, InitialStandby: 1,
	}, simclock.NewRNG(4))
	vmc := newTestVMC(t, region, OraclePredictor{}, Config{})

	dropped := false
	vmc.Submit(eng, &cloudsim.Request{ID: 1, ServiceFactor: 1, Arrival: eng.Now(),
		OnDone: func(o cloudsim.Outcome) { dropped = o.Dropped }})
	if !dropped {
		t.Fatalf("request to a region with no active VMs should be dropped")
	}
}

func TestProactiveRejuvenationTriggersBeforeFailure(t *testing.T) {
	eng := simclock.NewEngine(5)
	region := testRegion(5)
	cfg := DefaultConfig()
	cfg.RTTFThreshold = 900
	cfg.ControlInterval = 30 * simclock.Second
	cfg.ElasticityEnabled = false
	vmc := newTestVMC(t, region, OraclePredictor{}, cfg)
	vmc.Start(eng)
	vmc.Start(eng) // idempotent

	// Drive sustained traffic through the VMC's load balancer.
	metrics := workload.NewMetrics()
	gen := workload.NewOpenLoop(workload.OpenLoopConfig{Region: "region3", RatePerSec: 18},
		simclock.NewRNG(55), DispatcherAdapter(vmc), metrics)
	gen.Start(eng)
	if err := eng.Run(4 * simclock.Hour); err != nil && err != simclock.ErrHorizonReached {
		t.Fatalf("run: %v", err)
	}
	gen.Stop()
	vmc.Stop()

	st := vmc.Stats()
	if st.ControlTicks == 0 {
		t.Fatalf("control loop never ran")
	}
	if st.ProactiveRejuvenations == 0 {
		t.Fatalf("with a perfect predictor and heavy load, proactive rejuvenation should trigger; stats=%+v", st)
	}
	// The whole point of the proactive approach: (almost) no reactive
	// recoveries because VMs are rejuvenated before their failure point.
	if st.ReactiveRecoveries > st.ProactiveRejuvenations {
		t.Fatalf("reactive recoveries (%d) should not dominate proactive rejuvenations (%d)",
			st.ReactiveRecoveries, st.ProactiveRejuvenations)
	}
	if vmc.RMTTF() <= 0 {
		t.Fatalf("RMTTF should be positive after control ticks")
	}
	if vmc.LastRawRMTTF() <= 0 {
		t.Fatalf("raw RMTTF should be positive")
	}
	if metrics.Completed("") == 0 {
		t.Fatalf("clients should have completed requests")
	}
}

func TestReactiveRecoveryWhenPredictorIsBlind(t *testing.T) {
	eng := simclock.NewEngine(6)
	region := testRegion(6)
	// A predictor that always reports a huge RTTF: proactive rejuvenation
	// never triggers, so VMs crash and the reactive path must take over.
	blind := PredictorFunc(func(*cloudsim.VM, features.Vector) float64 { return 1e9 })
	cfg := DefaultConfig()
	cfg.ElasticityEnabled = false
	vmc := newTestVMC(t, region, blind, cfg)
	vmc.Start(eng)

	gen := workload.NewOpenLoop(workload.OpenLoopConfig{Region: "region3", RatePerSec: 18},
		simclock.NewRNG(66), DispatcherAdapter(vmc), workload.NewMetrics())
	gen.Start(eng)
	if err := eng.Run(5 * simclock.Hour); err != nil && err != simclock.ErrHorizonReached {
		t.Fatalf("run: %v", err)
	}
	gen.Stop()
	vmc.Stop()

	st := vmc.Stats()
	if st.ProactiveRejuvenations != 0 {
		t.Fatalf("blind predictor should never trigger proactive rejuvenation")
	}
	if st.ReactiveRecoveries == 0 {
		t.Fatalf("VMs should have crashed and been recovered reactively")
	}
	if st.Activations == 0 {
		t.Fatalf("standby VMs should have been activated to replace crashed ones")
	}
}

func TestElasticityAddsVMsUnderOverload(t *testing.T) {
	eng := simclock.NewEngine(7)
	// A tiny region with one active VM and plenty of provisioning headroom.
	// Anomalies and the SLA failure clause are effectively disabled so the
	// test isolates the ADDVMS elasticity path from the rejuvenation path.
	region := cloudsim.NewRegion(cloudsim.RegionConfig{
		Name: "tiny", Type: cloudsim.PrivateVM, InitialActive: 1, InitialStandby: 1, MaxVMs: 8,
		Anomalies: cloudsim.AnomalyProfile{LeakProbability: 0, LeakSizeMB: 0.001, ThreadProbability: 0, ThreadStackMB: 0.001},
		Failure:   cloudsim.FailurePoint{MemoryFraction: 0.7, ThreadFraction: 0.8, ResponseTimeSLAMs: 0},
	}, simclock.NewRNG(7))
	cfg := DefaultConfig()
	cfg.ResponseTimeThreshold = 0.5
	vmc := newTestVMC(t, region, OraclePredictor{}, cfg)
	vmc.Start(eng)

	// Overload: 80 req/s against a single VM that can serve ~28 req/s; even
	// two VMs cannot keep up, so the controller must provision a third.
	gen := workload.NewOpenLoop(workload.OpenLoopConfig{Region: "tiny", RatePerSec: 80},
		simclock.NewRNG(77), DispatcherAdapter(vmc), workload.NewMetrics())
	gen.Start(eng)
	if err := eng.Run(30 * simclock.Minute); err != nil && err != simclock.ErrHorizonReached {
		t.Fatalf("run: %v", err)
	}
	gen.Stop()
	vmc.Stop()

	st := vmc.Stats()
	if st.Activations == 0 {
		t.Fatalf("overload should have activated the standby VM")
	}
	if vmc.ActiveVMs() <= 1 {
		t.Fatalf("active pool should have grown beyond 1, got %d", vmc.ActiveVMs())
	}
	if st.ProvisionedVMs == 0 {
		t.Fatalf("once standbys ran out, ADDVMS should have provisioned new VMs")
	}
	if len(region.VMs()) <= 2 {
		t.Fatalf("region pool should have grown beyond the initial 2 VMs")
	}
}

func TestScaleDownWhenRMTTFHigh(t *testing.T) {
	eng := simclock.NewEngine(8)
	region := testRegion(8)
	cfg := DefaultConfig()
	cfg.ScaleDownRMTTF = 1 // any healthy region exceeds this immediately
	cfg.MinActive = 2
	vmc := newTestVMC(t, region, OraclePredictor{}, cfg)
	vmc.Start(eng)

	// Light traffic: RMTTF stays enormous, so the controller should shed VMs
	// down to MinActive.
	gen := workload.NewOpenLoop(workload.OpenLoopConfig{Region: "region3", RatePerSec: 1},
		simclock.NewRNG(88), DispatcherAdapter(vmc), workload.NewMetrics())
	gen.Start(eng)
	if err := eng.Run(30 * simclock.Minute); err != nil && err != simclock.ErrHorizonReached {
		t.Fatalf("run: %v", err)
	}
	gen.Stop()
	vmc.Stop()

	if vmc.ActiveVMs() != cfg.MinActive {
		t.Fatalf("active VMs = %d, want MinActive = %d", vmc.ActiveVMs(), cfg.MinActive)
	}
	if vmc.Stats().Deactivations == 0 {
		t.Fatalf("scale-down should have deactivated VMs")
	}
}

func TestPredictedRTTFExposed(t *testing.T) {
	eng := simclock.NewEngine(9)
	region := testRegion(9)
	vmc := newTestVMC(t, region, PredictorFunc(func(vm *cloudsim.VM, _ features.Vector) float64 { return 1234 }), Config{ElasticityEnabled: false})
	vmc.ControlTick(eng)
	for _, vm := range region.ActiveVMs() {
		if got := vmc.PredictedRTTF(vm.ID()); got != 1234 {
			t.Fatalf("PredictedRTTF(%s) = %v, want 1234", vm.ID(), got)
		}
	}
	if got := vmc.PredictedRTTF("unknown"); got != 0 {
		t.Fatalf("unknown VM should report 0, got %v", got)
	}
	if vmc.Region() != region {
		t.Fatalf("Region() accessor broken")
	}
}

func TestControlTickWithNoActiveVMsPromotesStandby(t *testing.T) {
	eng := simclock.NewEngine(10)
	region := cloudsim.NewRegion(cloudsim.RegionConfig{
		Name: "r", Type: cloudsim.M3Medium, InitialActive: 0, InitialStandby: 2,
	}, simclock.NewRNG(10))
	vmc := newTestVMC(t, region, OraclePredictor{}, Config{})
	vmc.ControlTick(eng)
	if len(region.ActiveVMs()) != 1 {
		t.Fatalf("a control tick on a region with no active VMs should promote a standby")
	}
}

// DispatcherAdapter adapts a *VMC to the workload.Dispatcher interface used
// by the emulated browsers (kept as a helper so tests and higher layers share
// the same glue).
func DispatcherAdapter(v *VMC) workload.Dispatcher {
	return workload.DispatcherFunc(func(eng *simclock.Engine, req *cloudsim.Request) { v.Submit(eng, req) })
}

func BenchmarkControlTick(b *testing.B) {
	eng := simclock.NewEngine(1)
	region := testRegion(1)
	vmc, err := NewVMC(region, OraclePredictor{}, Config{ElasticityEnabled: false})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vmc.ControlTick(eng)
	}
}
