package cloudsim

import (
	"fmt"

	"repro/internal/simclock"
	"repro/internal/tracing"
)

// Request is one client interaction to be served by a VM hosting the server
// replica.  The workload package generates requests according to the TPC-W
// interaction mix; cloudsim only cares about the relative service demand of
// each interaction class.
type Request struct {
	// ID is a unique identifier assigned by the workload generator.
	ID uint64
	// Class names the TPC-W interaction (e.g. "home", "search_request"),
	// carried for tracing purposes.
	Class string
	// ServiceFactor scales the instance's base service demand: a value of 2
	// means the interaction costs twice the base demand (e.g. a best-seller
	// query hitting the database harder than serving the home page).
	ServiceFactor float64
	// EntryRegion is the region whose load balancer first received the
	// request (before any cross-region forwarding decided by the plan).
	EntryRegion string
	// Arrival is the simulated time the request entered the system.
	Arrival simclock.Time
	// Forwarded reports whether the request was forwarded to a region other
	// than its entry region by the global forward plan.
	Forwarded bool
	// Batch is the number of client interactions this request stands for.
	// Cohort-compressed populations submit one request per counted batch of
	// statistically identical interactions; a VM serves the batch back to
	// back (Erlang service time) and weights its throughput and drop
	// counters by the batch size.  Zero or one means an ordinary individual
	// request.
	Batch int
	// Trace is the request's span log when the deployment's tracer sampled
	// it, nil otherwise.  All RequestTrace methods are nil-receiver safe, so
	// instrumentation points annotate unconditionally; the sampling decision
	// is a pure derived-seed function of (stream, ID), so whether Trace is
	// set never depends on engine RNG state or worker interleavings.
	Trace *tracing.RequestTrace
	// OnDone, if non-nil, is invoked exactly once when the request completes
	// (successfully or not).
	OnDone func(Outcome)
	// OnDoneCtx, if non-nil, takes precedence over OnDone and additionally
	// receives the engine on which the completion fired.  The sharded event
	// loop uses it to learn which shard sub-engine served the request so the
	// completion can be posted back to the issuing shard's mailbox instead of
	// touching the issuer's state from a foreign goroutine.
	OnDoneCtx func(eng *simclock.Engine, o Outcome)
}

// Weight returns the number of client interactions the request stands for:
// Batch for a cohort batch, 1 for an ordinary request.
func (r *Request) Weight() uint64 {
	if r.Batch > 1 {
		return uint64(r.Batch)
	}
	return 1
}

// Outcome describes how a request terminated.
type Outcome struct {
	// Request echoes the originating request.
	Request *Request
	// VM is the identifier of the VM that served (or dropped) the request;
	// empty if no VM could be found.
	VM string
	// Region is the region that processed the request.
	Region string
	// Start is the time service began (queue exit).
	Start simclock.Time
	// End is the completion (or drop) time.
	End simclock.Time
	// Dropped is true when the request was not served: the VM crashed while
	// the request was queued or in service, or no ACTIVE VM was available.
	Dropped bool
}

// ResponseTime returns the end-to-end latency observed by the client: time
// from arrival at the load balancer to completion.
func (o Outcome) ResponseTime() simclock.Duration {
	if o.Request == nil {
		return 0
	}
	return o.End.Sub(o.Request.Arrival)
}

// ServiceTime returns the time the request actually spent in service.
func (o Outcome) ServiceTime() simclock.Duration { return o.End.Sub(o.Start) }

// finish invokes the completion callback exactly once, with the engine the
// completion fired on.
func (r *Request) finish(eng *simclock.Engine, o Outcome) {
	if r.OnDoneCtx != nil {
		cb := r.OnDoneCtx
		r.OnDoneCtx = nil
		r.OnDone = nil
		cb(eng, o)
		return
	}
	if r.OnDone != nil {
		cb := r.OnDone
		r.OnDone = nil
		cb(o)
	}
}

// Finish completes the request exactly once through whichever completion
// callback is installed.  It is the exported entry point for load balancers
// and dispatchers that terminate a request themselves (e.g. dropping it when
// no ACTIVE VM exists) rather than handing it to a VM.
func (r *Request) Finish(eng *simclock.Engine, o Outcome) { r.finish(eng, o) }

// RehomeOnDone prepares the request to complete on a foreign shard of a
// sharded event loop: the current OnDone is replaced by an OnDoneCtx that
// runs it directly when the completion fires on the home lane, and otherwise
// posts it to the home shard's mailbox — so the issuer's state is never
// touched from a foreign goroutine.  transform, if non-nil, adjusts the
// outcome first (e.g. adding the return leg of an overlay latency).  Both
// the region load balancer's empty-shard hop and the deployment's
// cross-region dispatcher route completions through this one helper.
func (r *Request) RehomeOnDone(se *simclock.ShardedEngine, home int, transform func(*Outcome)) {
	orig := r.OnDone
	r.OnDone = nil
	r.OnDoneCtx = func(ceng *simclock.Engine, o Outcome) {
		if transform != nil {
			transform(&o)
		}
		if orig == nil {
			return
		}
		if se.LaneOf(ceng) == home {
			orig(o)
			return
		}
		if r.Trace != nil {
			// Guarded so the detail string is only built for sampled
			// requests — the rehome path runs for every forwarded request.
			r.Trace.Event(tracing.EventRehome, ceng.Now(),
				fmt.Sprintf("lane=%d home=%d", se.LaneOf(ceng), home))
		}
		se.Post(ceng, home, func(*simclock.Engine) { orig(o) })
	}
}
