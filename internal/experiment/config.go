package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Scenario (de)serialisation: scenarios are plain data, so they round-trip
// through JSON.  This lets cmd/acmsim run deployments described in a file and
// lets users keep the exact configuration of an experiment next to its
// results.

// SaveScenario writes the scenario as indented JSON.
func SaveScenario(w io.Writer, sc Scenario) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sc); err != nil {
		return fmt.Errorf("experiment: encoding scenario %q: %w", sc.Name, err)
	}
	return nil
}

// LoadScenario reads a scenario from JSON and applies the experiment
// defaults to any field left unset.
func LoadScenario(r io.Reader) (Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("experiment: decoding scenario: %w", err)
	}
	if len(sc.Regions) == 0 {
		return Scenario{}, fmt.Errorf("experiment: scenario %q has no regions", sc.Name)
	}
	for i, rs := range sc.Regions {
		if rs.Region.Name == "" {
			return Scenario{}, fmt.Errorf("experiment: scenario %q region %d has no name", sc.Name, i)
		}
		if rs.Region.Type.Name == "" {
			return Scenario{}, fmt.Errorf("experiment: scenario %q region %q has no instance type", sc.Name, rs.Region.Name)
		}
	}
	return sc.withDefaults(), nil
}

// SaveScenarioFile writes the scenario to a JSON file.
func SaveScenarioFile(path string, sc Scenario) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return SaveScenario(f, sc)
}

// LoadScenarioFile reads a scenario from a JSON file.
func LoadScenarioFile(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, err
	}
	defer f.Close()
	return LoadScenario(f)
}
