package ml

import (
	"fmt"
	"math"
	"sort"
)

// Regressor is the common interface of all RTTF prediction models.  Fit
// trains the model on a design matrix (one row per sample) and a label
// vector; Predict estimates the label of one sample.
type Regressor interface {
	// Fit trains the model.  It returns an error when the dataset is empty or
	// dimensionally inconsistent.
	Fit(x [][]float64, y []float64) error
	// Predict returns the model's estimate for one feature row.
	Predict(row []float64) float64
	// Name returns a short human-readable model name.
	Name() string
}

// PredictAll applies the model to every row of x.
func PredictAll(m Regressor, x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = m.Predict(row)
	}
	return out
}

// Metrics are the model-evaluation measures F2PM reports to the user so they
// can choose the most effective model for RTTF prediction.
type Metrics struct {
	// MAE is the mean absolute error.
	MAE float64
	// RMSE is the root mean squared error.
	RMSE float64
	// R2 is the coefficient of determination (1 is perfect, 0 is the mean
	// predictor, negative is worse than the mean predictor).
	R2 float64
	// MeanRelativeError is mean(|err| / max(|y|, 1)).
	MeanRelativeError float64
	// MaxAbsError is the largest absolute error.
	MaxAbsError float64
	// N is the number of evaluated samples.
	N int
}

// String renders the metrics in a compact, aligned form.
func (m Metrics) String() string {
	return fmt.Sprintf("MAE=%.3f RMSE=%.3f R2=%.4f relErr=%.4f maxErr=%.3f n=%d",
		m.MAE, m.RMSE, m.R2, m.MeanRelativeError, m.MaxAbsError, m.N)
}

// Evaluate compares predictions against ground truth and returns the metrics.
func Evaluate(predicted, actual []float64) Metrics {
	n := len(actual)
	if n == 0 || len(predicted) != n {
		return Metrics{}
	}
	var sumAbs, sumSq, sumRel, maxAbs float64
	for i := range actual {
		err := predicted[i] - actual[i]
		a := math.Abs(err)
		sumAbs += a
		sumSq += err * err
		den := math.Abs(actual[i])
		if den < 1 {
			den = 1
		}
		sumRel += a / den
		if a > maxAbs {
			maxAbs = a
		}
	}
	meanY := meanOf(actual)
	var ssTot float64
	for _, y := range actual {
		d := y - meanY
		ssTot += d * d
	}
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - sumSq/ssTot
	} else if sumSq == 0 {
		r2 = 1
	}
	return Metrics{
		MAE:               sumAbs / float64(n),
		RMSE:              math.Sqrt(sumSq / float64(n)),
		R2:                r2,
		MeanRelativeError: sumRel / float64(n),
		MaxAbsError:       maxAbs,
		N:                 n,
	}
}

// EvaluateModel fits nothing: it just scores an already-trained model on a
// held-out set.
func EvaluateModel(m Regressor, x [][]float64, y []float64) Metrics {
	return Evaluate(PredictAll(m, x), y)
}

// CrossValidate performs k-fold cross validation of the model produced by
// factory on (x, y) and returns the metrics averaged over folds.  Folds are
// contiguous blocks (the data is time-ordered, so block folds avoid leaking
// future information into the past in an obviously wrong way while staying
// deterministic).
func CrossValidate(factory func() Regressor, x [][]float64, y []float64, k int) (Metrics, error) {
	n := len(x)
	if n == 0 {
		return Metrics{}, ErrEmptyDataset
	}
	if len(y) != n {
		return Metrics{}, ErrDimensionMismatch
	}
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	var agg Metrics
	folds := 0
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		if hi <= lo {
			continue
		}
		var trX [][]float64
		var trY []float64
		for i := 0; i < n; i++ {
			if i >= lo && i < hi {
				continue
			}
			trX = append(trX, x[i])
			trY = append(trY, y[i])
		}
		teX := x[lo:hi]
		teY := y[lo:hi]
		if len(trX) == 0 {
			continue
		}
		m := factory()
		if err := m.Fit(trX, trY); err != nil {
			return Metrics{}, fmt.Errorf("ml: cross-validation fold %d: %w", f, err)
		}
		met := EvaluateModel(m, teX, teY)
		agg.MAE += met.MAE
		agg.RMSE += met.RMSE
		agg.R2 += met.R2
		agg.MeanRelativeError += met.MeanRelativeError
		if met.MaxAbsError > agg.MaxAbsError {
			agg.MaxAbsError = met.MaxAbsError
		}
		agg.N += met.N
		folds++
	}
	if folds == 0 {
		return Metrics{}, ErrEmptyDataset
	}
	agg.MAE /= float64(folds)
	agg.RMSE /= float64(folds)
	agg.R2 /= float64(folds)
	agg.MeanRelativeError /= float64(folds)
	return agg, nil
}

// ModelScore couples a model name with its held-out metrics, used to build
// the comparison table F2PM presents to the user.
type ModelScore struct {
	Name    string
	Metrics Metrics
}

// RankModels evaluates each candidate (trained by its factory on the training
// split and scored on the test split) and returns scores sorted by ascending
// RMSE — the ordering used to pick the runtime model.
func RankModels(candidates map[string]func() Regressor, trainX [][]float64, trainY []float64, testX [][]float64, testY []float64) ([]ModelScore, error) {
	if len(trainX) == 0 || len(testX) == 0 {
		return nil, ErrEmptyDataset
	}
	names := make([]string, 0, len(candidates))
	for name := range candidates {
		names = append(names, name)
	}
	sort.Strings(names)
	var scores []ModelScore
	for _, name := range names {
		m := candidates[name]()
		if err := m.Fit(trainX, trainY); err != nil {
			return nil, fmt.Errorf("ml: training %s: %w", name, err)
		}
		scores = append(scores, ModelScore{Name: name, Metrics: EvaluateModel(m, testX, testY)})
	}
	sort.SliceStable(scores, func(i, j int) bool { return scores[i].Metrics.RMSE < scores[j].Metrics.RMSE })
	return scores, nil
}
