// Command benchjson turns `go test -bench` text output into a small JSON
// document (benchmark name -> ns/op, B/op, allocs/op and any custom metrics)
// and gates CI on it: the compare mode fails when any benchmark's ns/op
// regressed beyond a tolerance against a committed baseline.
//
// Usage:
//
//	go test -bench='RegionSharded|Figure3' -benchtime=1x -benchmem -run='^$' . | benchjson parse -out BENCH_ci.json
//	benchjson compare -baseline BENCH_baseline.json -current BENCH_ci.json -max-regression 0.20
//
// GOMAXPROCS suffixes ("-4") are stripped from benchmark names so a baseline
// recorded on one core count compares against runs on another.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's recorded values, keyed by benchmark unit
// ("ns/op", "B/op", "allocs/op", "req/s", ...).
type Metrics map[string]float64

// File is the JSON document benchjson reads and writes.
type File struct {
	// Benchmarks maps the benchmark name (GOMAXPROCS suffix stripped) to its
	// metrics.
	Benchmarks map[string]Metrics `json:"benchmarks"`
	// DeltaPct, when present, maps each benchmark to its percentage movement
	// against the baseline it was compared to ((current-baseline)/baseline *
	// 100, per gated metric).  The compare subcommand annotates the current
	// file with it, so a downloaded BENCH_ci.json artifact shows the
	// regression picture without re-running anything.
	DeltaPct map[string]Metrics `json:"delta_pct,omitempty"`
}

// NsPerOp returns the benchmark's ns/op (0 when absent).
func (m Metrics) NsPerOp() float64 { return m["ns/op"] }

// gatedMetrics are the units the compare gate checks, each with its own
// tolerance class: ns/op regressions use -max-regression, the memory metrics
// (B/op, allocs/op) use -max-mem-regression.
var gatedMetrics = []struct {
	Unit string
	Mem  bool
}{
	{Unit: "ns/op"},
	{Unit: "B/op", Mem: true},
	{Unit: "allocs/op", Mem: true},
}

// benchLine matches one result line of `go test -bench` output:
// name, iteration count, then value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// gomaxprocsSuffix matches the "-N" tail testing appends to benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads `go test -bench` text output and collects the per-benchmark
// metrics.  Lines that are not benchmark results (the "goos:" header, PASS,
// custom test logging) are ignored.  A benchmark appearing twice (e.g. from
// -count) keeps the last occurrence.
func Parse(r io.Reader) (*File, error) {
	out := &File{Benchmarks: map[string]Metrics{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("benchjson: odd value/unit pairs in %q", sc.Text())
		}
		metrics := Metrics{}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q: %w", fields[i], sc.Text(), err)
			}
			metrics[fields[i+1]] = v
		}
		if _, ok := metrics["ns/op"]; !ok {
			return nil, fmt.Errorf("benchjson: benchmark %s has no ns/op in %q", name, sc.Text())
		}
		out.Benchmarks[name] = metrics
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark results found in input")
	}
	return out, nil
}

// Load reads a benchjson JSON file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchjson: parsing %s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: %s holds no benchmarks", path)
	}
	return &f, nil
}

// Write serialises the file as deterministic indented JSON (map keys sort).
func (f *File) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Regression is one benchmark metric that moved beyond its tolerance.
type Regression struct {
	Name     string
	Metric   string  // "ns/op", "B/op" or "allocs/op"
	Baseline float64 // baseline value
	Current  float64 // current value
	Delta    float64 // (current-baseline)/baseline
}

// Compare reports the benchmarks of current whose gated metrics regressed
// beyond their tolerance relative to baseline — ns/op against maxRegression
// (0.20 = 20% slower), B/op and allocs/op against maxMemRegression — plus
// the baseline benchmarks missing from current (gate erosion: a deleted
// benchmark must be deleted from the baseline deliberately, not silently
// skipped).  A memory metric absent on either side is skipped: baselines
// recorded before -benchmem carry no B/op, and that must not fail the gate.
// It also annotates current.DeltaPct with the percentage movement of every
// gated metric present on both sides.
func Compare(baseline, current *File, maxRegression, maxMemRegression float64) (regressions []Regression, missing []string) {
	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	current.DeltaPct = map[string]Metrics{}
	for _, name := range names {
		base := baseline.Benchmarks[name]
		cur, ok := current.Benchmarks[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		for _, gm := range gatedMetrics {
			bv, bok := base[gm.Unit]
			cv, cok := cur[gm.Unit]
			if !bok || !cok || bv <= 0 {
				continue
			}
			delta := (cv - bv) / bv
			dp := current.DeltaPct[name]
			if dp == nil {
				dp = Metrics{}
				current.DeltaPct[name] = dp
			}
			dp[gm.Unit] = 100 * delta
			tolerance := maxRegression
			if gm.Mem {
				tolerance = maxMemRegression
			}
			if delta > tolerance {
				regressions = append(regressions, Regression{Name: name, Metric: gm.Unit, Baseline: bv, Current: cv, Delta: delta})
			}
		}
	}
	return regressions, missing
}

// comparisonTable renders every shared benchmark's movement across the gated
// metrics, so the CI log shows the whole perf trajectory, not only the
// failures.
func comparisonTable(w io.Writer, baseline, current *File) {
	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		if _, ok := current.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-40s %15s %15s %8s %9s %9s\n", "benchmark", "baseline ns/op", "current ns/op", "Δns/op", "ΔB/op", "Δallocs")
	deltaCol := func(base, cur Metrics, unit string) string {
		bv, bok := base[unit]
		cv, cok := cur[unit]
		if !bok || !cok || bv <= 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", 100*(cv-bv)/bv)
	}
	for _, name := range names {
		base, cur := baseline.Benchmarks[name], current.Benchmarks[name]
		fmt.Fprintf(w, "%-40s %15.0f %15.0f %8s %9s %9s\n", name, base.NsPerOp(), cur.NsPerOp(),
			deltaCol(base, cur, "ns/op"), deltaCol(base, cur, "B/op"), deltaCol(base, cur, "allocs/op"))
	}
}

func runParse(args []string) error {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	in := fs.String("in", "", "read `go test -bench` output from this file (default: stdin)")
	out := fs.String("out", "", "write the JSON document to this file (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	file, err := Parse(r)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return file.Write(w)
}

func runCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	basePath := fs.String("baseline", "BENCH_baseline.json", "committed baseline JSON")
	curPath := fs.String("current", "BENCH_ci.json", "freshly recorded JSON")
	maxReg := fs.Float64("max-regression", 0.20, "maximum tolerated ns/op regression (0.20 = 20% slower)")
	maxMemReg := fs.Float64("max-mem-regression", 0.25, "maximum tolerated B/op and allocs/op regression (0.25 = 25% more)")
	annotate := fs.Bool("annotate", false, "rewrite the -current file with a delta_pct section recording every gated metric's movement vs the baseline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	baseline, err := Load(*basePath)
	if os.IsNotExist(err) {
		// A missing baseline is the one setup error every new checkout hits;
		// point straight at the recording procedure instead of a bare ENOENT.
		return fmt.Errorf("baseline %s missing — run `make bench-baseline` to record it, then commit the file (procedure in the README)", *basePath)
	}
	if err != nil {
		return err
	}
	current, err := Load(*curPath)
	if err != nil {
		return err
	}
	comparisonTable(os.Stdout, baseline, current)
	regressions, missing := Compare(baseline, current, *maxReg, *maxMemReg)
	if *annotate {
		f, err := os.Create(*curPath)
		if err != nil {
			return err
		}
		werr := current.Write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}
	for _, name := range missing {
		fmt.Fprintf(os.Stderr, "benchjson: baseline benchmark %s missing from current run\n", name)
	}
	for _, r := range regressions {
		tol := *maxReg
		if r.Metric != "ns/op" {
			tol = *maxMemReg
		}
		fmt.Fprintf(os.Stderr, "benchjson: %s regressed %.1f%% (%.0f -> %.0f %s, tolerance %.0f%%)\n",
			r.Name, 100*r.Delta, r.Baseline, r.Current, r.Metric, 100*tol)
	}
	if len(regressions) > 0 || len(missing) > 0 {
		return fmt.Errorf("%d regression(s), %d missing benchmark(s)", len(regressions), len(missing))
	}
	fmt.Printf("benchjson: %d benchmarks within tolerance (ns/op %.0f%%, mem %.0f%%)\n", len(baseline.Benchmarks), 100**maxReg, 100**maxMemReg)
	return nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson parse [-in bench.txt] [-out bench.json] | benchjson compare [-baseline a.json] [-current b.json] [-max-regression 0.20]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "parse":
		err = runParse(os.Args[2:])
	case "compare":
		err = runCompare(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q (use parse or compare)", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
