package simclock

import (
	"testing"
	"testing/quick"
)

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(42, 0)
	b := DeriveSeed(42, 0)
	if a != b {
		t.Fatalf("DeriveSeed is not a pure function: %d vs %d", a, b)
	}
	if DeriveSeed(42, 1) == a {
		t.Fatalf("distinct indices should yield distinct seeds")
	}
	if DeriveSeed(43, 0) == a {
		t.Fatalf("distinct bases should yield distinct seeds")
	}
	if DeriveSeed(42) == DeriveSeed(42, 0) {
		t.Fatalf("adding an index must change the derived seed")
	}
	if DeriveSeed(1, 2, 3) == DeriveSeed(1, 3, 2) {
		t.Fatalf("index order must matter")
	}
}

func TestDeriveSeedStreamsAreIndependent(t *testing.T) {
	// Sibling streams derived from neighbouring indices must not produce
	// correlated output; a crude check is that their first outputs differ and
	// no short prefix collides.
	const n = 64
	seen := map[uint64]int{}
	for i := uint64(0); i < n; i++ {
		r := NewStreamRNG(7, i)
		v := r.Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("streams %d and %d start with the same output", prev, i)
		}
		seen[v] = int(i)
	}
}

func TestNewStreamRNGMatchesDeriveSeed(t *testing.T) {
	a := NewStreamRNG(99, 3, 1)
	b := NewRNG(DeriveSeed(99, 3, 1))
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("NewStreamRNG must equal NewRNG(DeriveSeed(...)) at step %d", i)
		}
	}
}

// TestDeriveSeedStreamsShareNoOutputsInWindow is the disjointness property
// the sharded region engine rests on: sibling streams derived from the same
// base must not emit a common 64-bit value anywhere in a 10^4-draw window —
// not merely distinct first outputs.  A collision would mean two shards (or
// two sweep replications) partially replay each other's randomness.
func TestDeriveSeedStreamsShareNoOutputsInWindow(t *testing.T) {
	const (
		streams = 8
		window  = 10000
	)
	type origin struct {
		stream uint64
		pos    int
	}
	seen := make(map[uint64]origin, streams*window)
	for i := uint64(0); i < streams; i++ {
		r := NewStreamRNG(12345, i)
		for k := 0; k < window; k++ {
			v := r.Uint64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("streams %d (draw %d) and %d (draw %d) share output %#x",
					prev.stream, prev.pos, i, k, v)
			}
			seen[v] = origin{stream: i, pos: k}
		}
	}
}

// TestDeriveSeedOrderIndependent checks that the derivation is a pure
// function of (base, indices): the value of DeriveSeed(base, i) does not
// depend on which other derivations happened before it, and drawing from one
// derived stream never perturbs a sibling — the property that makes parallel
// sweeps and sharded regions schedule-independent.
func TestDeriveSeedOrderIndependent(t *testing.T) {
	// Derivation order: interleave derivations in different orders and
	// compare.
	first := DeriveSeed(7, 4)
	_ = DeriveSeed(7, 9)
	_ = DeriveSeed(1000003, 4)
	if again := DeriveSeed(7, 4); again != first {
		t.Fatalf("DeriveSeed(7, 4) changed across calls: %#x vs %#x", first, again)
	}

	// Consumption order: interleaved draws from two sibling streams must
	// match the draws of fresh streams consumed in isolation.
	const n = 256
	ri, rj := NewStreamRNG(5, 1), NewStreamRNG(5, 2)
	var gotI, gotJ [n]uint64
	for k := 0; k < n; k++ { // alternate, j first, to stress any shared state
		gotJ[k] = rj.Uint64()
		gotI[k] = ri.Uint64()
	}
	fi, fj := NewStreamRNG(5, 1), NewStreamRNG(5, 2)
	for k := 0; k < n; k++ {
		if want := fi.Uint64(); gotI[k] != want {
			t.Fatalf("stream (5,1) draw %d depends on interleaving: %#x vs %#x", k, gotI[k], want)
		}
		if want := fj.Uint64(); gotJ[k] != want {
			t.Fatalf("stream (5,2) draw %d depends on interleaving: %#x vs %#x", k, gotJ[k], want)
		}
	}
}

// TestDeriveSeedDistinctProperty: random (base, i, j) with i != j never
// collide, and the derivation is insensitive to everything but its inputs.
func TestDeriveSeedDistinctProperty(t *testing.T) {
	f := func(base, i, j uint64) bool {
		if i == j {
			return DeriveSeed(base, i) == DeriveSeed(base, j)
		}
		return DeriveSeed(base, i) != DeriveSeed(base, j)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
