package ml

import (
	"fmt"
	"math"
)

// SVR is a linear support-vector regression model trained with stochastic
// sub-gradient descent on the epsilon-insensitive loss with L2
// regularisation.  It stands in for the "SVM" entry in F2PM's model list.
type SVR struct {
	// C is the inverse regularisation strength (larger C fits the data more
	// tightly).  Defaults to 1.
	C float64
	// Epsilon is the insensitivity tube half-width, expressed in label units
	// after standardisation.  Defaults to 0.1.
	Epsilon float64
	// Epochs is the number of passes over the training data.  Defaults to 200.
	Epochs int

	weights   []float64
	bias      float64
	scaler    *Standardizer
	yMean     float64
	yScale    float64
	fitted    bool
	seedState uint64
}

// NewSVR returns a linear SVR with default hyper-parameters.
func NewSVR() *SVR { return &SVR{C: 1, Epsilon: 0.1, Epochs: 200, seedState: 0x9e3779b97f4a7c15} }

// Name implements Regressor.
func (m *SVR) Name() string { return "SVR" }

// nextRand is a tiny deterministic xorshift used only to permute sample order
// between epochs; keeping it internal avoids importing math/rand and keeps
// training byte-for-byte reproducible.
func (m *SVR) nextRand() uint64 {
	x := m.seedState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	m.seedState = x
	return x
}

// Fit implements Regressor.
func (m *SVR) Fit(x [][]float64, y []float64) error {
	n := len(x)
	if n == 0 {
		return ErrEmptyDataset
	}
	if len(y) != n {
		return ErrDimensionMismatch
	}
	p := len(x[0])
	c := m.C
	if c <= 0 {
		c = 1
	}
	eps := m.Epsilon
	if eps < 0 {
		eps = 0.1
	}
	epochs := m.Epochs
	if epochs <= 0 {
		epochs = 200
	}

	m.scaler = FitStandardizer(x)
	xs := m.scaler.Transform(x)

	// Standardise the target too so the learning rate and epsilon are scale
	// free; predictions transform back.
	m.yMean = meanOf(y)
	sd := math.Sqrt(varianceOf(y))
	if sd < 1e-12 {
		sd = 1
	}
	m.yScale = sd
	ys := make([]float64, n)
	for i := range y {
		ys[i] = (y[i] - m.yMean) / m.yScale
	}

	w := make([]float64, p)
	b := 0.0
	lambda := 1 / (c * float64(n))

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}

	step := 0
	for epoch := 0; epoch < epochs; epoch++ {
		// Fisher–Yates shuffle with the deterministic generator.
		for i := n - 1; i > 0; i-- {
			j := int(m.nextRand() % uint64(i+1))
			order[i], order[j] = order[j], order[i]
		}
		for _, i := range order {
			step++
			eta := 1 / (lambda * float64(step+1000))
			pred := Dot(w, xs[i]) + b
			err := pred - ys[i]
			// Sub-gradient of the epsilon-insensitive loss.
			var g float64
			switch {
			case err > eps:
				g = 1
			case err < -eps:
				g = -1
			default:
				g = 0
			}
			for j := 0; j < p; j++ {
				w[j] -= eta * (lambda*w[j] + g*xs[i][j])
			}
			b -= eta * g
		}
	}

	m.weights = w
	m.bias = b
	m.fitted = true
	return nil
}

// Predict implements Regressor.
func (m *SVR) Predict(row []float64) float64 {
	if !m.fitted {
		return 0
	}
	r := m.scaler.TransformRow(row)
	if len(r) > len(m.weights) {
		r = r[:len(m.weights)]
	}
	pred := m.bias
	for j := 0; j < len(r); j++ {
		pred += m.weights[j] * r[j]
	}
	return pred*m.yScale + m.yMean
}

// LSSVM is a least-squares support-vector machine for regression with an RBF
// kernel.  Training solves the dual linear system
//
//	[ K + I/gamma ] alpha = y - b·1
//
// following Suykens & Vandewalle.  To keep the O(n³) solve tractable on large
// feature databases the training set is subsampled down to MaxSamples support
// vectors (evenly spaced, preserving the degradation trajectory).
type LSSVM struct {
	// Gamma is the regularisation parameter (larger fits more tightly).
	Gamma float64
	// Sigma is the RBF kernel bandwidth in standardised feature space.  Zero
	// (the default) selects sqrt(#features), the classic heuristic that keeps
	// typical pairwise distances inside the kernel's sensitive range
	// regardless of the dimensionality.
	Sigma float64
	// MaxSamples caps the number of support vectors (defaults to 400).
	MaxSamples int

	support  [][]float64
	alpha    []float64
	bias     float64
	scaler   *Standardizer
	sigmaFit float64 // bandwidth resolved at fit time
	fitted   bool
}

// NewLSSVM returns an LS-SVM with default hyper-parameters.
func NewLSSVM() *LSSVM { return &LSSVM{Gamma: 50, MaxSamples: 400} }

// Name implements Regressor.
func (m *LSSVM) Name() string { return "LS-SVM" }

// Fit implements Regressor.
func (m *LSSVM) Fit(x [][]float64, y []float64) error {
	n := len(x)
	if n == 0 {
		return ErrEmptyDataset
	}
	if len(y) != n {
		return ErrDimensionMismatch
	}
	gamma := m.Gamma
	if gamma <= 0 {
		gamma = 50
	}
	sigma := m.Sigma
	if sigma <= 0 {
		sigma = math.Sqrt(float64(len(x[0])))
		if sigma <= 0 {
			sigma = 1
		}
	}
	m.sigmaFit = sigma
	maxSamples := m.MaxSamples
	if maxSamples <= 0 {
		maxSamples = 400
	}

	m.scaler = FitStandardizer(x)
	xs := m.scaler.Transform(x)

	// Evenly subsample to keep the kernel solve tractable.
	var sx [][]float64
	var sy []float64
	if n > maxSamples {
		stride := float64(n) / float64(maxSamples)
		for k := 0; k < maxSamples; k++ {
			i := int(float64(k) * stride)
			sx = append(sx, xs[i])
			sy = append(sy, y[i])
		}
	} else {
		sx, sy = xs, y
	}
	ns := len(sx)

	// Build the LS-SVM system including the bias via the standard bordered
	// formulation:
	//   [ 0      1ᵀ        ] [b]     [0]
	//   [ 1   K + I/gamma  ] [alpha] [y]
	dim := ns + 1
	a := make([][]float64, dim)
	for i := range a {
		a[i] = make([]float64, dim)
	}
	b := make([]float64, dim)
	for i := 0; i < ns; i++ {
		a[0][i+1] = 1
		a[i+1][0] = 1
		b[i+1] = sy[i]
		for j := 0; j < ns; j++ {
			a[i+1][j+1] = rbfKernel(sx[i], sx[j], sigma)
		}
		a[i+1][i+1] += 1 / gamma
	}
	sol, err := SolveLinearSystem(a, b)
	if err != nil {
		return fmt.Errorf("ml: LS-SVM solve: %w", err)
	}
	m.bias = sol[0]
	m.alpha = sol[1:]
	m.support = sx
	m.fitted = true
	return nil
}

// rbfKernel computes exp(-||a-b||² / (2 sigma²)).
func rbfKernel(a, b []float64, sigma float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Exp(-s / (2 * sigma * sigma))
}

// Predict implements Regressor.
func (m *LSSVM) Predict(row []float64) float64 {
	if !m.fitted {
		return 0
	}
	r := m.scaler.TransformRow(row)
	pred := m.bias
	for i, sv := range m.support {
		pred += m.alpha[i] * rbfKernel(sv, r, m.sigmaFit)
	}
	return pred
}

// SupportVectors returns the number of support vectors retained after
// subsampling.
func (m *LSSVM) SupportVectors() int { return len(m.support) }
