// Command acmsim runs one ACM deployment described by command-line flags:
// which paper regions to use, how many clients connect to each, which
// load-balancing policy the leader runs, and for how long.  It prints the
// per-region state over time, the client-side metrics and the dependability
// counters, and can dump the raw series as CSV for external plotting.
//
// Examples:
//
//	acmsim -regions 1,3 -clients 320,128 -policy policy2 -hours 2
//	acmsim -regions 1,2,3 -clients 288,96,256 -policy policy1 -predictor ml
//	acmsim -regions 1,3 -clients 200,200 -policy uniform -csv run.csv
//	acmsim -scenario figure4 -policy policy2       # run a registered scenario
//	acmsim -scenario global-failover -gslb-policy leastload   # swap the GSLB policy
//	acmsim -scenario global-gossip -metrics-addr :9090   # live /metrics endpoint
//	acmsim -list-scenarios                         # list the registry
//	acmsim -list-scenarios -markdown               # emit docs/SCENARIOS.md
//	acmsim -list-metrics                           # emit docs/METRICS.md
//	acmsim -list-tracing                           # emit docs/TRACING.md
//	acmsim -scenario global-traced -trace-out run.json   # Perfetto-loadable trace
//	acmsim -dump-config scenario.json      # write the assembled scenario
//	acmsim -config scenario.json           # run a scenario from a JSON file
//	acmsim -scenarios figure3,figure4 -betas 0.25,0.75 -reps 10 \
//	       -sweep-csv sweep.csv -journal sweep.journal    # matrix sweep
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/acm"
	"repro/internal/backend"
	"repro/internal/cli"
	"repro/internal/cloudsim"
	"repro/internal/experiment"
	"repro/internal/gslb"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/tracing"
	"repro/internal/workload"
)

func main() {
	var (
		regions     = flag.String("regions", "1,3", "comma-separated paper regions to deploy (1, 2, 3)")
		clients     = flag.String("clients", "320,128", "comma-separated client counts, one per region")
		cohorts     = flag.String("cohort-clients", "", "comma-separated cohort-compressed client counts, one per region (10^6-scale populations batched per tick; empty = none)")
		tracerFr    = flag.Float64("tracer-fraction", -1, "fraction of every cohort simulated as individual browsers feeding the latency series, in [0, 1] (-1 keeps each scenario's own setting; default 1%)")
		policy      = flag.String("policy", "policy2", "load-balancing policy: policy1, policy2, policy3, uniform")
		predictor   = flag.String("predictor", "oracle", "RTTF predictor: oracle or ml")
		hours       = flag.Float64("hours", 2, "simulated hours")
		seed        = flag.Uint64("seed", 1, "deterministic simulation seed")
		beta        = flag.Float64("beta", 0.5, "RMTTF smoothing factor of equation (1)")
		interval    = flag.Float64("interval", 60, "control loop interval in seconds")
		shards      = flag.Int("shards", 0, "split every region's VM pool across this many engine shards (0 keeps each scenario's own setting)")
		tickWork    = flag.Int("tick-workers", 0, "fan the per-shard control-tick phase out to this many goroutines, capped at the shard count (1 = sequential, 0 keeps each scenario's own setting)")
		eventWork   = flag.Int("event-workers", -1, "run the sharded event loop with this many shard-loop goroutines (0 forces the serial engine, >= 1 selects the parallel event loop; byte-identical across all values >= 1; -1 keeps each scenario's own setting)")
		gslbPol     = flag.String("gslb-policy", "", "global-traffic-director routing policy: static, rr, leastload, failover or latency (overrides the scenario's own setting; GSLB deployments always run on the event loop)")
		rttSpec     = flag.String("rtt", "", "per-stream round-trip matrix for latency-aware routing, milliseconds per deployed region: \"global=60,120;americas=80,140\" (overrides the scenario's own RTT rows)")
		mix         = flag.String("mix", "browsing", "TPC-W mix: browsing, shopping or ordering")
		csvPath     = flag.String("csv", "", "write all recorded series to this CSV file")
		traceOut    = flag.String("trace-out", "", "write the sampled request traces and the engine flight recorder as Chrome trace-event JSON to this file (load in ui.perfetto.dev or chrome://tracing; requires tracing enabled)")
		traceSample = flag.Float64("trace-sample", -1, "sample this fraction of requests into the span layer, in [0, 1] (-1 keeps each scenario's own setting; the sample is a pure function of the seed, so results are byte-identical with tracing on or off)")
		metricsAddr = flag.String("metrics-addr", "", "serve the live instrument registry in Prometheus text format at /metrics on this address (e.g. :9090) while the run executes")
		config      = flag.String("config", "", "run the scenario described by this JSON file instead of the region/client flags")
		scenario    = flag.String("scenario", "", "run a registered scenario by name instead of the region/client flags (see -list-scenarios)")
		list        = flag.Bool("list-scenarios", false, "list the registered scenarios and exit")
		markdown    = flag.Bool("markdown", false, "with -list-scenarios: print the full scenario catalogue as markdown (the source of docs/SCENARIOS.md; see `make docs`)")
		listMetrics = flag.Bool("list-metrics", false, "print the instrument catalogue as markdown (the source of docs/METRICS.md; see `make docs`) and exit")
		listTracing = flag.Bool("list-tracing", false, "print the tracing guide as markdown (the source of docs/TRACING.md; see `make docs`) and exit")
		dumpPath    = flag.String("dump-config", "", "write the assembled scenario as JSON to this file and exit")
	)
	// Matrix-sweep mode (experiment.Matrix): mutually exclusive with the
	// single-run flags above.  The flag set is shared with cmd/figures.
	sweep := cli.RegisterSweepFlags(flag.CommandLine, 0, "parallel sweep workers (GOMAXPROCS when 0)")
	flag.Parse()

	if *list {
		if *markdown {
			md, err := experiment.ScenariosMarkdown()
			if err != nil {
				fmt.Fprintln(os.Stderr, "acmsim:", err)
				os.Exit(1)
			}
			fmt.Print(md)
			return
		}
		names := experiment.ScenarioNames()
		width := 0
		for _, name := range names {
			if len(name) > width {
				width = len(name)
			}
		}
		for _, name := range names {
			fmt.Printf("%-*s  %s\n", width, name, experiment.ScenarioDescription(name))
		}
		return
	}
	if *listMetrics {
		md, err := experiment.MetricsMarkdown()
		if err != nil {
			fmt.Fprintln(os.Stderr, "acmsim:", err)
			os.Exit(1)
		}
		fmt.Print(md)
		return
	}
	if *listTracing {
		fmt.Print(experiment.TracingMarkdown())
		return
	}

	// Track which flags the user actually set, so a registered scenario keeps
	// its own horizon/beta/interval/predictor unless explicitly overridden.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if *markdown {
		fmt.Fprintln(os.Stderr, "acmsim: -markdown only applies with -list-scenarios")
		os.Exit(1)
	}

	if sweep.Active() {
		// The sweep defines its own deployments and output; a single-run
		// flag alongside -scenarios would be silently ignored, so reject it.
		for _, f := range []string{"scenario", "config", "dump-config", "regions", "clients", "mix",
			"cohort-clients", "tracer-fraction",
			"policy", "predictor", "beta", "interval", "shards", "tick-workers", "event-workers",
			"gslb-policy", "rtt", "csv", "metrics-addr", "trace-out", "trace-sample"} {
			if explicit[f] {
				fmt.Fprintf(os.Stderr, "acmsim: -%s does not apply to sweeps (-scenarios); see -policies/-betas/-sweep-csv\n", f)
				os.Exit(1)
			}
		}
		if err := runMatrix(sweep, *seed, *hours, explicit); err != nil {
			fmt.Fprintln(os.Stderr, "acmsim:", err)
			os.Exit(1)
		}
		return
	}
	for _, f := range cli.SweepOnlyFlagNames(true) {
		if explicit[f] {
			fmt.Fprintf(os.Stderr, "acmsim: -%s only applies to sweeps; pass -scenarios to run one\n", f)
			os.Exit(1)
		}
	}

	if err := run(*regions, *clients, *cohorts, *tracerFr, *policy, *predictor, *mix, *hours, *seed, *beta, *interval, *shards, *tickWork, *eventWork, *gslbPol, *rttSpec, *csvPath, *metricsAddr, *traceOut, *traceSample, *config, *scenario, *dumpPath, explicit); err != nil {
		fmt.Fprintln(os.Stderr, "acmsim:", err)
		os.Exit(1)
	}
}

// runMatrix expands and executes a sweep on the shared pipeline
// (experiment.RunSweep), printing the summary table and optionally writing
// CSV/JSON rows, with journal-based checkpoint/resume.
func runMatrix(sweep *cli.SweepFlags, seed uint64, hours float64, explicit map[string]bool) error {
	m, err := sweep.Matrix(seed)
	if err != nil {
		return err
	}
	if explicit["hours"] {
		m.Horizon = simclock.Duration(hours) * simclock.Hour
	}
	fmt.Printf("sweep: %d jobs (%d scenarios x policies x betas x %d reps)\n", m.Size(), len(m.Scenarios), max(*sweep.Reps, 1))
	return experiment.RunSweepAndEmit(context.Background(), m, sweep.Options(), *sweep.Journal, *sweep.CSV, *sweep.JSON, os.Stdout)
}

func run(regionSpec, clientSpec, cohortSpec string, tracerFraction float64, policyKey, predictor, mixName string, hours float64, seed uint64, beta, intervalS float64, shards, tickWorkers, eventWorkers int, gslbPolicy, rttSpec, csvPath, metricsAddr, traceOut string, traceSample float64, configPath, scenarioName, dumpPath string, explicit map[string]bool) error {
	np, err := experiment.PolicyByKey(policyKey)
	if err != nil {
		return err
	}

	var mode acm.PredictorMode
	switch predictor {
	case "oracle":
		mode = acm.PredictorOracle
	case "ml":
		mode = acm.PredictorML
	default:
		return fmt.Errorf("unknown predictor %q (use oracle or ml)", predictor)
	}

	if configPath != "" && scenarioName != "" {
		return fmt.Errorf("-config and -scenario are mutually exclusive")
	}

	// Tuning flags the user explicitly set override a loaded or registered
	// scenario; unset flags keep the scenario's own values (e.g. the
	// elasticity scenario's 90-minute horizon).
	applyTuningFlags := func(sc *experiment.Scenario) error {
		if explicit["seed"] {
			sc.Seed = seed
		}
		if explicit["hours"] {
			sc.Horizon = simclock.Duration(hours) * simclock.Hour
		}
		if explicit["interval"] {
			sc.ControlInterval = simclock.Duration(intervalS)
		}
		if explicit["beta"] {
			if err := experiment.ValidateBeta(beta); err != nil {
				return err
			}
			sc.Beta = beta
		}
		if explicit["predictor"] {
			sc.Predictor = mode
		}
		return nil
	}
	// Deployment-shape flags conflict with a complete scenario; reject them
	// instead of silently simulating a different deployment.
	rejectShapeFlags := func(source string) error {
		for _, conflicting := range []string{"regions", "clients", "cohort-clients", "mix"} {
			if explicit[conflicting] {
				return fmt.Errorf("-%s conflicts with %s (the scenario defines the deployment)", conflicting, source)
			}
		}
		return nil
	}

	var scenario experiment.Scenario
	switch {
	case configPath != "":
		if err := rejectShapeFlags("-config " + configPath); err != nil {
			return err
		}
		scenario, err = experiment.LoadScenarioFile(configPath)
		if err != nil {
			return err
		}
		if err := applyTuningFlags(&scenario); err != nil {
			return err
		}
	case scenarioName != "":
		if err := rejectShapeFlags("-scenario " + scenarioName); err != nil {
			return err
		}
		scenario, err = experiment.BuildScenario(scenarioName, seed)
		if err != nil {
			return err
		}
		if err := applyTuningFlags(&scenario); err != nil {
			return err
		}
	default:
		if err := experiment.ValidateBeta(beta); err != nil {
			return err
		}
		setups, err := parseRegions(regionSpec, clientSpec, cohortSpec, mixName)
		if err != nil {
			return err
		}
		scenario = experiment.Scenario{
			Name:            "acmsim",
			Seed:            seed,
			Regions:         setups,
			Horizon:         simclock.Duration(hours) * simclock.Hour,
			ControlInterval: simclock.Duration(intervalS),
			Beta:            beta,
			Predictor:       mode,
		}
	}
	// -trace-sample overrides the span layer's sampling fraction the same way
	// -tracer-fraction overrides cohort tracers: -1 (the default) keeps the
	// scenario's own setting, anything outside [0, 1] is rejected by name.
	if explicit["trace-sample"] {
		if traceSample < 0 || traceSample > 1 {
			return fmt.Errorf("-trace-sample must be in [0, 1], got %v", traceSample)
		}
		scenario.TraceSampleFraction = traceSample
	}
	if traceOut != "" && scenario.TraceSampleFraction <= 0 {
		return fmt.Errorf("-trace-out: tracing is disabled for scenario %q (set -trace-sample or run a traced scenario such as global-traced)", scenario.Name)
	}
	// -tracer-fraction overrides how much of every cohort population is
	// simulated individually; it is a tuning knob like -beta, so it applies
	// to loaded and registered scenarios too.  -1 (the default) keeps the
	// scenario's own setting; anything outside [0, 1] is rejected by name.
	if explicit["tracer-fraction"] {
		if tracerFraction < 0 || tracerFraction > 1 {
			return fmt.Errorf("-tracer-fraction must be in [0, 1], got %v", tracerFraction)
		}
		scenario.TracerFraction = tracerFraction
	}
	// -shards overrides every region's engine-shard count regardless of how
	// the scenario was assembled (flags, registry or JSON file); 0 keeps each
	// scenario's own setting, matching the flag's documented default.
	if explicit["shards"] {
		if shards < 0 {
			return fmt.Errorf("-shards must be >= 0, got %d", shards)
		}
		if shards > 0 {
			for i := range scenario.Regions {
				scenario.Regions[i].Region.Shards = shards
			}
		}
	}
	// -tick-workers picks the control tick's goroutine fan-out the same way:
	// 0 keeps the scenario's own setting, anything >= 1 overrides it (1 forces
	// the sequential tick).  The output is byte-identical either way; the flag
	// only trades wall-clock time for cores.
	if explicit["tick-workers"] {
		if tickWorkers < 0 {
			return fmt.Errorf("-tick-workers must be >= 0, got %d", tickWorkers)
		}
		if tickWorkers > 0 {
			scenario.VMC.TickWorkers = tickWorkers
		}
	}
	// -event-workers switches the engine: 0 forces the serial single-queue
	// engine, >= 1 the sharded event loop (one sub-engine per region shard,
	// cross-shard mailboxes) with that many shard-loop goroutines.  Results
	// are byte-identical across every value >= 1; the serial engine's bytes
	// differ because the event loop epoch-quantises cross-shard effects.
	if explicit["event-workers"] && eventWorkers >= 0 {
		scenario.EventWorkers = eventWorkers
	}
	// -gslb-policy overrides the global traffic director's routing policy.
	// The name is validated up front so a typo produces the list of valid
	// choices, and the scenario must actually carry global traffic —
	// enabling a director on a purely regional scenario would silently move
	// it onto the epochal engine and change its pinned bytes for nothing.
	if gslbPolicy != "" {
		kind, err := gslb.ParsePolicy(gslbPolicy)
		if err != nil {
			return err
		}
		global := scenario.GlobalClients > 0
		for _, a := range scenario.Arrivals {
			global = global || a.Region == ""
		}
		if !scenario.GSLB.Enabled() && !global {
			return fmt.Errorf("-gslb-policy: scenario %q has no global traffic (no GSLB config, global clients or global arrival streams)", scenario.Name)
		}
		scenario.GSLB.Policy = kind
	}
	// -rtt overrides the per-stream round-trip matrix.  Any non-empty matrix
	// makes the deployment latency-aware (RTT simulation + passive learning)
	// regardless of routing policy, so the policies can be compared on the
	// same network.
	if rttSpec != "" {
		rtt, err := cli.ParseRTT(rttSpec, len(scenario.Regions))
		if err != nil {
			return err
		}
		if !scenario.GSLB.Enabled() {
			return fmt.Errorf("-rtt: scenario %q has no GSLB config to attach a round-trip matrix to", scenario.Name)
		}
		scenario.GSLB.RTT = rtt
	}
	if dumpPath != "" {
		if err := experiment.SaveScenarioFile(dumpPath, scenario); err != nil {
			return err
		}
		fmt.Println("wrote scenario to", dumpPath)
		return nil
	}

	b, err := experiment.NewBackend(scenario, np)
	if err != nil {
		return err
	}

	// -metrics-addr: serve the live registry for the duration of the run.
	// The registry is updated at every control-era barrier, so a scrape
	// mid-run sees the last completed era's merged state.  Serve runs in its
	// own goroutine; its exit value lands in metricsErr so a listener that
	// dies mid-run fails the command instead of silently dropping scrapes,
	// and shutdown drains in-flight scrapes rather than slamming the socket.
	var (
		metricsSrv *http.Server
		metricsErr chan error
	)
	if metricsAddr != "" {
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return fmt.Errorf("-metrics-addr: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler(b.Registry()))
		metricsSrv = &http.Server{Handler: mux}
		metricsErr = make(chan error, 1)
		go func() { metricsErr <- metricsSrv.Serve(ln) }()
		fmt.Printf("serving Prometheus metrics on http://%s/metrics\n", ln.Addr())
	}

	if eff := scenario.EffectiveClients(); eff != scenario.TotalClients() {
		fmt.Printf("deploying %d regions, %d effective clients (%d browsers + cohort-compressed), policy %s, predictor %s, %.1f simulated hours\n",
			len(scenario.Regions), eff, scenario.TotalClients(), np.Label, scenario.Predictor, scenario.Horizon.Seconds()/3600)
	} else {
		fmt.Printf("deploying %d regions, %d clients, policy %s, predictor %s, %.1f simulated hours\n",
			len(scenario.Regions), scenario.TotalClients(), np.Label, scenario.Predictor, scenario.Horizon.Seconds()/3600)
	}
	if err := b.Run(scenario.Horizon); err != nil {
		return err
	}
	if metricsSrv != nil {
		// Graceful shutdown first, then collect Serve's exit value — a
		// listener that failed mid-run left its error in the channel, and
		// Shutdown on an already-dead server returns nil, so both paths
		// surface the real cause.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := metricsSrv.Shutdown(ctx)
		cancel()
		if err != nil {
			return fmt.Errorf("-metrics-addr: shutting down: %w", err)
		}
		if err := <-metricsErr; err != nil && err != http.ErrServerClosed {
			return fmt.Errorf("-metrics-addr: %w", err)
		}
	}

	printReport(b)
	if tr, fr := experiment.TraceArtifacts(b); tr != nil {
		fmt.Printf("request tracing: %d sampled traces (fraction %g)\n", tr.Len(), tr.SampleFraction())
		fmt.Println("critical-path breakdown over sampled traces:")
		fmt.Print(tracing.BreakdownTable(tr.Traces()))
		if fr != nil {
			fmt.Println("engine flight recorder (per-lane epoch utilization, sim-time):")
			fmt.Print(fr.Table())
		}
		fmt.Println()
		if traceOut != "" {
			f, err := os.Create(traceOut)
			if err != nil {
				return err
			}
			werr := tracing.WriteChrome(f, tr.Traces(), fr)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return fmt.Errorf("-trace-out: %w", werr)
			}
			fmt.Println("wrote Chrome trace to", traceOut, "(load in ui.perfetto.dev or chrome://tracing)")
		}
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := b.Recorder().WriteAllCSV(f); err != nil {
			return err
		}
		fmt.Println("wrote series to", csvPath)
	}
	return nil
}

// parseRegions turns "1,3" + "320,128" (and an optional "-cohort-clients"
// list) into the region setups.
func parseRegions(regionSpec, clientSpec, cohortSpec, mixName string) ([]acm.RegionSetup, error) {
	regionIDs := strings.Split(regionSpec, ",")
	clientCounts := strings.Split(clientSpec, ",")
	if len(regionIDs) != len(clientCounts) {
		return nil, fmt.Errorf("got %d regions but %d client counts", len(regionIDs), len(clientCounts))
	}
	var cohortCounts []string
	if cohortSpec != "" {
		cohortCounts = strings.Split(cohortSpec, ",")
		if len(cohortCounts) != len(regionIDs) {
			return nil, fmt.Errorf("-cohort-clients: got %d regions but %d cohort counts", len(regionIDs), len(cohortCounts))
		}
	}
	var mix workload.Mix
	switch mixName {
	case "browsing":
		mix = workload.BrowsingMix()
	case "shopping":
		mix = workload.ShoppingMix()
	case "ordering":
		mix = workload.OrderingMix()
	default:
		return nil, fmt.Errorf("unknown mix %q", mixName)
	}
	var out []acm.RegionSetup
	for i, idStr := range regionIDs {
		id, err := strconv.Atoi(strings.TrimSpace(idStr))
		if err != nil || id < 1 || id > 3 {
			return nil, fmt.Errorf("invalid paper region %q (use 1, 2 or 3)", idStr)
		}
		n, err := strconv.Atoi(strings.TrimSpace(clientCounts[i]))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("invalid client count %q", clientCounts[i])
		}
		cohort := 0
		if cohortCounts != nil {
			cohort, err = strconv.Atoi(strings.TrimSpace(cohortCounts[i]))
			if err != nil || cohort < 0 {
				return nil, fmt.Errorf("-cohort-clients: count %q must be an integer >= 0", cohortCounts[i])
			}
		}
		out = append(out, acm.RegionSetup{
			Region:        cloudsim.PaperRegionConfig(cloudsim.PaperRegion(id)),
			Clients:       n,
			CohortClients: cohort,
			Mix:           mix,
		})
	}
	return out, nil
}

// printReport prints the end-of-run state: figures, metrics and counters.
// Everything it reads comes through the backend seam — the recorder, the
// client metrics and the Results snapshot — so a future live backend gets
// the same report for free.
func printReport(b backend.Backend) {
	rec := b.Recorder()
	final := b.Results()
	fmt.Println()
	fmt.Print(trace.ASCIIPlot(rec.Set("rmttf"), trace.PlotOptions{Title: "RMTTF per region (s)", Height: 12}))
	fmt.Print(trace.ASCIIPlot(rec.Set("fraction"), trace.PlotOptions{Title: "workload fraction f_i", Height: 12}))
	fmt.Print(trace.ASCIIPlot(rec.Set("response_time"), trace.PlotOptions{Title: "client response time (s)", Height: 10}))
	fmt.Println()
	fmt.Println("steady-state summary (last 40% of the run):")
	fmt.Print(trace.SummaryTable(rec.Set("rmttf"), 0.4))
	fmt.Print(trace.SummaryTable(rec.Set("fraction"), 0.4))
	fmt.Println()

	fmt.Println("client metrics:", b.Metrics())
	fmt.Printf("control eras: %d, controller messages: %d, forwarded requests: %d (%.1f%% of total)\n",
		final.Eras, final.ControlMessages, final.ForwardedRequests,
		100*float64(final.ForwardedRequests)/float64(final.ForwardedRequests+final.LocalRequests+1))
	fmt.Printf("leader VMC: %s (elections run: %d)\n", final.Leader, final.Elections)
	fmt.Println()
	fmt.Println("per-region state:")
	for _, s := range final.RegionStats {
		fmt.Println("  ", s)
	}
	fmt.Println("per-region controller counters:")
	for name, s := range final.VMCStats {
		fmt.Printf("   %s: proactive=%d reactive=%d activations=%d provisioned=%d\n",
			name, s.ProactiveRejuvenations, s.ReactiveRecoveries, s.Activations, s.ProvisionedVMs)
	}
	if len(final.ShardStats) > 0 {
		fmt.Println("per-shard state (sharded regions):")
		for _, name := range final.RegionNames {
			for _, s := range final.ShardStats[name] {
				fmt.Println("  ", s)
			}
		}
	}
	g := final.GSLB
	if g == nil {
		return
	}
	if !g.Replicated {
		fmt.Printf("global traffic director: policy=%s probes=%d\n", g.Policy, g.Probes)
		for i, name := range final.RegionNames {
			fmt.Printf("   %s: routed=%d health=%s\n", name, g.Routed[name], g.States[i])
		}
		if len(g.Transitions) > 0 {
			fmt.Println("   health transitions:")
			for _, t := range g.Transitions {
				fmt.Println("    ", t)
			}
		}
		if g.LatencyEWMA != nil {
			fmt.Println("   learned round trips (ms, EWMA / p95):")
			for _, sname := range g.Streams {
				for _, rname := range final.RegionNames {
					key := sname + ":" + rname
					fmt.Printf("    %s: %.1f / %.1f\n", key, g.LatencyEWMA[key], g.LatencyP95[key])
				}
			}
		}
		return
	}
	st := final.Gossip
	fmt.Printf("gossip health plane: %d replicas, policy=%s, %d rounds (sent=%d delivered=%d dropped=%d)\n",
		st.Replicas, g.Policy, st.Rounds, st.Sent, st.Delivered, st.Dropped)
	fmt.Printf("   convergence: %d updates settled, mean lag %.1fs, final divergence %d, pending %d\n",
		st.Converged, st.MeanLagSeconds, st.MaxDivergence, st.Pending)
	for i, name := range final.RegionNames {
		fmt.Printf("   %s: routed=%d owner-health=%s\n", name, g.Routed[name], g.States[i])
	}
	if len(g.Transitions) > 0 {
		fmt.Println("   health transitions (owner views):")
		for _, t := range g.Transitions {
			fmt.Println("    ", t)
		}
	}
}
