package election

import (
	"testing"
	"testing/quick"

	"repro/internal/overlay"
)

func paperCluster(t *testing.T) (*overlay.Network, *Cluster) {
	t.Helper()
	net := overlay.PaperOverlay()
	c, err := NewCluster(net, []Member{
		{Name: "region1", Priority: 6},  // 6 m3.medium VMs
		{Name: "region2", Priority: 12}, // 12 m3.small VMs
		{Name: "region3", Priority: 4},  // 4 private VMs
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return net, c
}

func TestNewClusterValidation(t *testing.T) {
	net := overlay.New()
	if _, err := NewCluster(nil, []Member{{Name: "a"}}); err == nil {
		t.Errorf("nil network should be rejected")
	}
	if _, err := NewCluster(net, nil); err == nil {
		t.Errorf("empty membership should be rejected")
	}
	if _, err := NewCluster(net, []Member{{Name: ""}}); err == nil {
		t.Errorf("empty member name should be rejected")
	}
	if _, err := NewCluster(net, []Member{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Errorf("duplicate member should be rejected")
	}
	// Members not present in the overlay are added automatically.
	c, err := NewCluster(net, []Member{{Name: "solo", Priority: 1}})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	if !net.HasNode("solo") {
		t.Fatalf("member should have been added to the overlay")
	}
	if !c.IsLeader("solo") {
		t.Fatalf("a single member should lead itself")
	}
}

func TestInitialElectionPicksHighestPriority(t *testing.T) {
	_, c := paperCluster(t)
	leader, ok := c.GlobalLeader()
	if !ok {
		t.Fatalf("a fully connected cluster should have a unique global leader")
	}
	if leader != "region2" {
		t.Fatalf("leader = %q, want region2 (highest priority)", leader)
	}
	for _, m := range []string{"region1", "region2", "region3"} {
		if got := c.Leader(m); got != "region2" {
			t.Fatalf("Leader(%s) = %q, want region2", m, got)
		}
	}
	if !c.IsLeader("region2") || c.IsLeader("region1") {
		t.Fatalf("IsLeader flags wrong")
	}
	if c.Term() == 0 || c.Elections() == 0 {
		t.Fatalf("constructor should have run one election")
	}
	if len(c.Members()) != 3 {
		t.Fatalf("members = %v", c.Members())
	}
}

func TestTieBreakBySmallestName(t *testing.T) {
	net := overlay.New()
	_ = net.AddLink("b", "a", 1)
	_ = net.AddLink("b", "c", 1)
	c, err := NewCluster(net, []Member{{Name: "c", Priority: 5}, {Name: "a", Priority: 5}, {Name: "b", Priority: 1}})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	if leader, _ := c.GlobalLeader(); leader != "a" {
		t.Fatalf("tie should break to the smallest name, got %q", leader)
	}
}

func TestLeaderFailureTriggersReElection(t *testing.T) {
	_, c := paperCluster(t)
	prevTerm := c.Term()
	results := c.ReportNodeFailure("region2")
	if c.Term() <= prevTerm {
		t.Fatalf("term should increase on re-election")
	}
	if len(results) != 1 {
		t.Fatalf("expected a single partition result, got %d", len(results))
	}
	leader, ok := c.GlobalLeader()
	if !ok || leader != "region1" {
		t.Fatalf("new leader = %q, want region1 (next highest priority)", leader)
	}
	if got := c.Leader("region2"); got != "" {
		t.Fatalf("a failed node should observe no leader, got %q", got)
	}
	// Recovery brings the original leader back.
	c.ReportNodeRecovery("region2")
	if leader, _ := c.GlobalLeader(); leader != "region2" {
		t.Fatalf("after recovery leader = %q, want region2", leader)
	}
}

func TestPartitionElectsPerPartitionLeaders(t *testing.T) {
	net := overlay.New()
	// Two halves joined by a single bridge link.
	_ = net.AddLink("a", "b", 1)
	_ = net.AddLink("c", "d", 1)
	_ = net.AddLink("b", "c", 1) // bridge
	c, err := NewCluster(net, []Member{
		{Name: "a", Priority: 10}, {Name: "b", Priority: 1},
		{Name: "c", Priority: 2}, {Name: "d", Priority: 8},
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	if leader, _ := c.GlobalLeader(); leader != "a" {
		t.Fatalf("initial leader = %q, want a", leader)
	}

	results := c.ReportLinkFailure("b", "c")
	if len(results) != 2 {
		t.Fatalf("after the partition there should be two results, got %d", len(results))
	}
	if c.Leader("a") != "a" || c.Leader("b") != "a" {
		t.Fatalf("left partition should elect a")
	}
	if c.Leader("c") != "d" || c.Leader("d") != "d" {
		t.Fatalf("right partition should elect d")
	}
	if _, unique := c.GlobalLeader(); !unique {
		// Partitions have equal size (2 and 2): no unique majority leader.
		// That is the expected answer here.
	} else {
		t.Fatalf("equal-size partitions should not produce a unique global leader")
	}

	// Healing the link merges the partitions back under the highest priority.
	c.ReportLinkRecovery("b", "c")
	if leader, ok := c.GlobalLeader(); !ok || leader != "a" {
		t.Fatalf("after healing leader = %q, want a", leader)
	}
}

func TestMultipleFailuresStillYieldLeaders(t *testing.T) {
	net, c := paperCluster(t)
	// Break every direct inter-region link: traffic must go via the transit
	// node, and the cluster must still elect a single leader.
	c.ReportLinkFailure("region1", "region2")
	c.ReportLinkFailure("region2", "region3")
	results := c.ReportLinkFailure("region1", "region3")
	if len(results) != 1 {
		t.Fatalf("cluster should remain a single partition via the transit node, got %d partitions", len(results))
	}
	if leader, ok := c.GlobalLeader(); !ok || leader != "region2" {
		t.Fatalf("leader = %q, want region2", leader)
	}
	// Now take the transit node down as well: three singleton partitions.
	net.FailNode("transit-ams")
	results = c.Elect()
	if len(results) != 3 {
		t.Fatalf("with all links gone each region leads itself, got %d partitions", len(results))
	}
	for _, r := range results {
		if len(r.Members) != 1 || r.Leader != r.Members[0] {
			t.Fatalf("singleton partition should self-lead: %+v", r)
		}
	}
}

func TestLastResultAndMessages(t *testing.T) {
	_, c := paperCluster(t)
	res, ok := c.LastResult("region1")
	if !ok {
		t.Fatalf("region1 should have observed the election")
	}
	if res.Leader != "region2" || len(res.Members) != 3 {
		t.Fatalf("unexpected result %+v", res)
	}
	if res.Messages != 2*3*2 {
		t.Fatalf("flooding message count = %d, want 12", res.Messages)
	}
	if _, ok := c.LastResult("unknown"); ok {
		t.Fatalf("unknown member should have no result")
	}
}

// Property: after an arbitrary sequence of node failures, every alive member
// observes exactly one leader, that leader is alive, reachable from the
// member, and is a configured member.
func TestSingleLeaderPerPartitionProperty(t *testing.T) {
	f := func(failures []uint8) bool {
		net := overlay.PaperOverlay()
		members := []Member{
			{Name: "region1", Priority: 6},
			{Name: "region2", Priority: 12},
			{Name: "region3", Priority: 4},
		}
		c, err := NewCluster(net, members)
		if err != nil {
			return false
		}
		names := []string{"region1", "region2", "region3", "transit-ams"}
		for _, fidx := range failures {
			name := names[int(fidx)%len(names)]
			if int(fidx)%2 == 0 {
				c.ReportNodeFailure(name)
			} else {
				c.ReportNodeRecovery(name)
			}
		}
		memberSet := map[string]bool{"region1": true, "region2": true, "region3": true}
		for _, m := range []string{"region1", "region2", "region3"} {
			if !net.NodeAlive(m) {
				if c.Leader(m) != "" {
					return false
				}
				continue
			}
			leader := c.Leader(m)
			if leader == "" || !memberSet[leader] {
				return false
			}
			if !net.NodeAlive(leader) || !net.Reachable(m, leader) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkElection(b *testing.B) {
	net := overlay.PaperOverlay()
	c, err := NewCluster(net, []Member{
		{Name: "region1", Priority: 6},
		{Name: "region2", Priority: 12},
		{Name: "region3", Priority: 4},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Elect()
	}
}
