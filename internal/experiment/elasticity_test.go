package experiment

import (
	"testing"

	"repro/internal/stats"
)

// TestElasticityScenarioAddsVMsAfterSurge exercises the ADDVMS action of
// Section V end to end: a workload surge triples the client population of the
// under-provisioned region halfway through the run, and the region's
// controller must grow its active pool in response while keeping the mean
// response time under the SLA.
func TestElasticityScenarioAddsVMsAfterSurge(t *testing.T) {
	if testing.Short() {
		t.Skip("elasticity scenario runs a 90-minute simulation")
	}
	sc := ElasticityScenario(11)
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatalf("PolicyByKey: %v", err)
	}
	res, err := Run(sc, np)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	active := res.Recorder.Series("active_vms", "region1")
	if active.Len() == 0 {
		t.Fatalf("active-VM series missing")
	}
	surgeT := sc.Regions[0].SurgeAt.Seconds()
	before := activeAround(active, surgeT-300)
	after := stats.Max(active.Tail(0.25))
	if before < 2 || before > 4 {
		t.Fatalf("before the surge the region should run close to its initial 3 active VMs, got %v", before)
	}
	if after <= before {
		t.Fatalf("ADDVMS should have grown the active pool after the surge: before=%v after=%v", before, after)
	}
	// The controller must keep (or restore) an acceptable client experience:
	// the steady-state response time after the surge stays under the SLA.
	if res.TailResponseTime >= 1.0 {
		t.Fatalf("tail response time %v should stay below the 1 s SLA", res.TailResponseTime)
	}
	// The surge deliberately overwhelms an under-provisioned region, so some
	// requests are lost during the transition; the run as a whole must still
	// complete the large majority of them.
	if res.SuccessRatio < 0.8 {
		t.Fatalf("success ratio collapsed: %v", res.SuccessRatio)
	}
}

// activeAround returns the series value at the given time (step interpolation).
func activeAround(s *stats.Series, t float64) float64 { return s.At(t) }

func TestElasticityScenarioShape(t *testing.T) {
	sc := ElasticityScenario(3)
	if len(sc.Regions) != 2 {
		t.Fatalf("elasticity scenario should have two regions")
	}
	if sc.Regions[0].SurgeClients == 0 || sc.Regions[0].SurgeAt == 0 {
		t.Fatalf("the first region must carry the surge")
	}
	if !sc.VMC.ElasticityEnabled {
		t.Fatalf("elasticity must be enabled in the VMC config")
	}
	if sc.Regions[0].Region.InitialActive >= 6 {
		t.Fatalf("the surged region should start under-provisioned")
	}
}
