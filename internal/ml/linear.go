package ml

import (
	"fmt"
	"math"
)

// LinearRegression is ordinary least-squares regression solved through the
// normal equations, the first of the six models supported by F2PM.
type LinearRegression struct {
	// Weights holds the intercept in Weights[0] followed by one coefficient
	// per feature.
	Weights []float64
}

// NewLinearRegression returns an untrained OLS model.
func NewLinearRegression() *LinearRegression { return &LinearRegression{} }

// Name implements Regressor.
func (m *LinearRegression) Name() string { return "LinearRegression" }

// Fit implements Regressor.
func (m *LinearRegression) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 {
		return ErrEmptyDataset
	}
	if len(x) != len(y) {
		return ErrDimensionMismatch
	}
	xi := addIntercept(x)
	w, err := NormalEquations(xi, y, 0, 0)
	if err != nil {
		return fmt.Errorf("ml: linear regression: %w", err)
	}
	m.Weights = w
	return nil
}

// Predict implements Regressor.
func (m *LinearRegression) Predict(row []float64) float64 {
	if len(m.Weights) == 0 {
		return 0
	}
	pred := m.Weights[0]
	n := len(m.Weights) - 1
	for j := 0; j < n && j < len(row); j++ {
		pred += m.Weights[j+1] * row[j]
	}
	return pred
}

// RidgeRegression is L2-regularised least squares.  It is not one of the
// paper's six headline models but is used internally (a linear LS-SVM in
// primal form is ridge regression) and as a robust fallback for collinear
// feature sets.
type RidgeRegression struct {
	// Lambda is the L2 penalty applied to all coefficients except the
	// intercept.
	Lambda  float64
	Weights []float64
	scaler  *Standardizer
}

// NewRidgeRegression returns an untrained ridge model with the given penalty.
func NewRidgeRegression(lambda float64) *RidgeRegression {
	if lambda < 0 {
		lambda = 0
	}
	return &RidgeRegression{Lambda: lambda}
}

// Name implements Regressor.
func (m *RidgeRegression) Name() string { return fmt.Sprintf("Ridge(lambda=%g)", m.Lambda) }

// Fit implements Regressor.
func (m *RidgeRegression) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 {
		return ErrEmptyDataset
	}
	if len(x) != len(y) {
		return ErrDimensionMismatch
	}
	m.scaler = FitStandardizer(x)
	xs := m.scaler.Transform(x)
	xi := addIntercept(xs)
	w, err := NormalEquations(xi, y, m.Lambda, 0)
	if err != nil {
		return fmt.Errorf("ml: ridge regression: %w", err)
	}
	m.Weights = w
	return nil
}

// Predict implements Regressor.
func (m *RidgeRegression) Predict(row []float64) float64 {
	if len(m.Weights) == 0 {
		return 0
	}
	r := row
	if m.scaler != nil {
		r = m.scaler.TransformRow(row)
	}
	pred := m.Weights[0]
	n := len(m.Weights) - 1
	for j := 0; j < n && j < len(r); j++ {
		pred += m.Weights[j+1] * r[j]
	}
	return pred
}

// Lasso is L1-regularised linear regression solved by cyclic coordinate
// descent.  In F2PM it plays two roles: a predictor in its own right and the
// feature-selection mechanism (coefficients driven exactly to zero identify
// irrelevant features).
type Lasso struct {
	// Lambda is the L1 penalty.
	Lambda float64
	// MaxIter bounds the number of full coordinate-descent sweeps.
	MaxIter int
	// Tol is the convergence tolerance on the maximum coefficient change per
	// sweep.
	Tol float64

	// Intercept and Coefficients are the fitted parameters in the original
	// (unstandardised) feature space is not kept; predictions standardise the
	// input row first.
	Intercept    float64
	Coefficients []float64

	scaler *Standardizer
}

// NewLasso returns an untrained Lasso model with sensible defaults.
func NewLasso(lambda float64) *Lasso {
	if lambda < 0 {
		lambda = 0
	}
	return &Lasso{Lambda: lambda, MaxIter: 1000, Tol: 1e-6}
}

// Name implements Regressor.
func (m *Lasso) Name() string { return fmt.Sprintf("Lasso(lambda=%g)", m.Lambda) }

// Fit implements Regressor.
func (m *Lasso) Fit(x [][]float64, y []float64) error {
	n := len(x)
	if n == 0 {
		return ErrEmptyDataset
	}
	if len(y) != n {
		return ErrDimensionMismatch
	}
	p := len(x[0])
	m.scaler = FitStandardizer(x)
	xs := m.scaler.Transform(x)

	// Center y; the intercept absorbs the mean.
	yMean := meanOf(y)
	yc := make([]float64, n)
	for i := range y {
		yc[i] = y[i] - yMean
	}

	beta := make([]float64, p)
	// Pre-compute column norms.
	colNorm := make([]float64, p)
	for j := 0; j < p; j++ {
		for i := 0; i < n; i++ {
			colNorm[j] += xs[i][j] * xs[i][j]
		}
		if colNorm[j] == 0 {
			colNorm[j] = 1
		}
	}

	// Residuals r = yc - X*beta (beta starts at zero).
	resid := append([]float64(nil), yc...)

	maxIter := m.MaxIter
	if maxIter <= 0 {
		maxIter = 1000
	}
	tol := m.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	lam := m.Lambda * float64(n) // scale penalty with sample count like glmnet's objective

	for it := 0; it < maxIter; it++ {
		maxChange := 0.0
		for j := 0; j < p; j++ {
			// rho = X_j'(resid + X_j*beta_j)
			rho := 0.0
			for i := 0; i < n; i++ {
				rho += xs[i][j] * (resid[i] + xs[i][j]*beta[j])
			}
			newBeta := softThreshold(rho, lam) / colNorm[j]
			if newBeta != beta[j] {
				delta := newBeta - beta[j]
				for i := 0; i < n; i++ {
					resid[i] -= xs[i][j] * delta
				}
				if math.Abs(delta) > maxChange {
					maxChange = math.Abs(delta)
				}
				beta[j] = newBeta
			}
		}
		if maxChange < tol {
			break
		}
	}

	m.Coefficients = beta
	m.Intercept = yMean
	return nil
}

// softThreshold is the Lasso shrinkage operator.
func softThreshold(z, gamma float64) float64 {
	switch {
	case z > gamma:
		return z - gamma
	case z < -gamma:
		return z + gamma
	default:
		return 0
	}
}

// Predict implements Regressor.
func (m *Lasso) Predict(row []float64) float64 {
	if m.Coefficients == nil {
		return 0
	}
	r := row
	if m.scaler != nil {
		r = m.scaler.TransformRow(row)
	}
	pred := m.Intercept
	for j := 0; j < len(m.Coefficients) && j < len(r); j++ {
		pred += m.Coefficients[j] * r[j]
	}
	return pred
}

// SelectedFeatures returns the indices of features with non-zero (above eps)
// coefficients — the Lasso regularisation path output F2PM uses to reduce the
// amount of information managed at runtime.
func (m *Lasso) SelectedFeatures(eps float64) []int {
	if eps <= 0 {
		eps = 1e-9
	}
	var out []int
	for j, b := range m.Coefficients {
		if math.Abs(b) > eps {
			out = append(out, j)
		}
	}
	return out
}
