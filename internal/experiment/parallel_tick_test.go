package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/simclock"
)

// tickWorkerCounts are the control-tick fan-outs every equivalence test runs:
// the sequential fast path, a fixed multi-goroutine count, and whatever the
// host offers (deduplicated — on a 4-core host GOMAXPROCS is already 4).
// Byte-identical output across all of them — on any GOMAXPROCS — is the
// determinism contract of the parallel tick engine.
func tickWorkerCounts() []int {
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		counts = append(counts, p)
	}
	return counts
}

// TestParallelTickReproducesGoldens pins the parallel control tick to the
// golden byte-pins recorded before it existed: figure3 and figure4 under
// every policy must produce the exact golden summary (including the SHA-256
// of every raw series) for tick-workers 1, 4 and GOMAXPROCS.
//
// The figure regions are single-shard, so what this pins is the flag's
// neutrality: setting TickWorkers on a deployment with nothing to fan out
// must not move a single byte (ControlTick must treat it as the sequential
// fast path, not a different code path).  The multi-shard parallel phase
// itself is exercised against goldens-equivalent sequential runs by
// TestFigureShardedParallelEquivalence and TestShardedTickWorkersEquivalence
// below.
func TestParallelTickReproducesGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("reruns the six golden simulations per worker count")
	}
	for _, workers := range tickWorkerCounts() {
		if workers == 1 {
			// TickWorkers <= 1 is the exact code path TestGoldenFigureScenarios
			// already pins at the default configuration; rerunning it here
			// would double the suite for no extra coverage.
			continue
		}
		workers := workers
		for _, name := range []string{"figure3", "figure4"} {
			for _, np := range Policies() {
				np := np
				t.Run(fmt.Sprintf("%s/%s/workers=%d", name, np.Key, workers), func(t *testing.T) {
					sc, err := BuildScenario(name, 42)
					if err != nil {
						t.Fatal(err)
					}
					sc.Horizon = goldenHorizon
					sc.VMC.TickWorkers = workers
					res, err := Run(sc, np)
					if err != nil {
						t.Fatal(err)
					}
					g, err := goldenFromResult(res)
					if err != nil {
						t.Fatal(err)
					}
					got, err := json.MarshalIndent(g, "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					got = append(got, '\n')
					path := filepath.Join("testdata", "golden", fmt.Sprintf("%s-%s.json", name, np.Key))
					want, err := os.ReadFile(path)
					if err != nil {
						t.Fatalf("missing golden file: %v", err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("tick-workers=%d drifted from golden %s\n--- got ---\n%s\n--- want ---\n%s", workers, path, got, want)
					}
				})
			}
		}
	}
}

// TestFigureShardedParallelEquivalence drives the parallel phase through the
// richest control-tick paths the repo has: the figure4 deployment (three
// heterogeneous regions, elasticity on, staggered rejuvenation waves, the
// leader's closed control loop) with every region split across 3 shards.
// The run must be byte-identical — full summary plus the SHA-256 of every
// raw series — between tick-workers 1 and the fanned-out counts.  Unlike the
// golden replay above, the tick-workers > 1 legs here genuinely execute
// Engine.ParallelPhase: a cross-shard write, a misordered merge or a
// schedule-during-phase violation in the elasticity/standby-promotion
// interplay shows up as a byte difference (or a panic).
func TestFigureShardedParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the figure4 simulation once per worker count")
	}
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatal(err)
	}
	build := func(workers int) *Result {
		sc, err := BuildScenario("figure4", 42)
		if err != nil {
			t.Fatal(err)
		}
		sc.Horizon = goldenHorizon
		for i := range sc.Regions {
			sc.Regions[i].Region.Shards = 3
		}
		sc.VMC.TickWorkers = workers
		res, err := Run(sc, np)
		if err != nil {
			t.Fatalf("tick-workers=%d: %v", workers, err)
		}
		return res
	}
	var want []byte
	for _, workers := range tickWorkerCounts() {
		g, err := goldenFromResult(build(workers))
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(g)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("sharded figure4 at tick-workers=%d diverged from tick-workers=%d:\n%s\nvs\n%s",
				workers, tickWorkerCounts()[0], got, want)
		}
	}
}

// TestShardedTickWorkersEquivalence is the multi-shard half of the contract:
// the 16-shard megaregion produces byte-identical raw series and identical
// per-shard statistics whether the control tick runs sequentially or fanned
// out across goroutines.  Under -race with GOMAXPROCS > 1 this is also the
// mutation audit of the parallel phase: any cross-shard write would trip the
// detector.
func TestShardedTickWorkersEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 5x10^3-VM scenario once per worker count")
	}
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatal(err)
	}
	var wantCSV []byte
	var wantStats map[string][]cloudsim.Stats
	for _, workers := range tickWorkerCounts() {
		sc, err := BuildScenario("megaregion-sharded", 42)
		if err != nil {
			t.Fatal(err)
		}
		sc.Horizon = 4 * simclock.Minute
		sc.VMC.TickWorkers = workers
		mgr, err := NewManager(sc, np)
		if err != nil {
			t.Fatal(err)
		}
		if err := mgr.Run(sc.Horizon); err != nil {
			t.Fatalf("tick-workers=%d: %v", workers, err)
		}
		var csv bytes.Buffer
		if err := mgr.Recorder().WriteAllCSV(&csv); err != nil {
			t.Fatal(err)
		}
		stats := mgr.ShardStats()
		if len(stats["megaregion"]) != MegaregionShards {
			t.Fatalf("tick-workers=%d: %d shard stats, want %d", workers, len(stats["megaregion"]), MegaregionShards)
		}
		if wantCSV == nil {
			wantCSV, wantStats = csv.Bytes(), stats
			continue
		}
		if !bytes.Equal(csv.Bytes(), wantCSV) {
			t.Fatalf("tick-workers=%d produced different series bytes than tick-workers=1", workers)
		}
		if !reflect.DeepEqual(stats, wantStats) {
			t.Fatalf("tick-workers=%d produced different ShardStats than tick-workers=1:\n%+v\n%+v", workers, stats, wantStats)
		}
	}
}
