// Package validate is the one config-validation error style shared by every
// validator in the repo (acm.Config, gslb.Config, the workload rate specs).
// Each error names its package and offending field in a fixed
// "pkg: Field detail" shape, so error-message regression tests can assert on
// stable substrings and a sweep over hundreds of scenario configs reads
// uniformly no matter which layer rejected one.
package validate

import "fmt"

// Fieldf builds a named-field config error: "<pkg>: <field> <detail>", with
// detail formatted from format/args.  The field is a config field name or a
// dotted/indexed path into one ("Faults[2]", "GSLB.RTT[web]").
func Fieldf(pkg, field, format string, args ...any) error {
	return fmt.Errorf("%s: %s %s", pkg, field, fmt.Sprintf(format, args...))
}
