// Package metrics is the typed metrics plane of the reproduction: a small
// Prometheus-style registry of counter/gauge/histogram instruments with
// labels, through which every experiment series is re-expressed, plus a
// stdlib-only text-format (v0.0.4) encoder so live runs can be scraped on
// the same dashboards a real deployment would use.
//
// Determinism contract: instruments are only ever written on the control
// timeline at epoch barriers (the Manager's control era), from state that is
// already merged in the fixed fold order of the engine's determinism
// contract.  The registry is therefore a read path over deterministic state,
// never a new write path — and its text exposition is byte-identical for
// every EventWorkers value, like the series it mirrors.  The registry mutex
// exists only so a concurrent HTTP scrape observes a consistent snapshot of
// the last barrier.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is the instrument type of a metric family.
type Kind int

const (
	// KindCounter is a monotonically non-decreasing cumulative value.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a bucketed distribution with a sum and a count.
	KindHistogram
)

// String returns the Prometheus TYPE keyword of the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// TextContentType is the Content-Type of the Prometheus text exposition
// format the registry writes.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// ValidMetricName reports whether name is a valid Prometheus metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*).
func ValidMetricName(name string) bool { return metricNameRe.MatchString(name) }

// ValidLabelName reports whether name is a valid Prometheus label name
// ([a-zA-Z_][a-zA-Z0-9_]*).
func ValidLabelName(name string) bool { return labelNameRe.MatchString(name) }

// Opts names and documents one metric family at registration time.
type Opts struct {
	// Name is the Prometheus metric name ("gslb_routed_requests_total").
	Name string
	// Help is the one-line HELP text.
	Help string
	// Source is the package whose state the family mirrors
	// ("internal/gslb"); it appears in the generated docs/METRICS.md.
	Source string
	// Labels are the label names every sample of the family carries, in
	// order.  Empty means a single unlabelled sample.
	Labels []string
}

// Desc describes one registered family for documentation and linting.
type Desc struct {
	Name    string
	Help    string
	Source  string
	Kind    Kind
	Labels  []string
	Buckets []float64 // histogram upper bounds (without +Inf); nil otherwise
}

// exemplar is one trace-linked observation attached to a histogram bucket,
// rendered as an OpenMetrics-style exemplar suffix on the bucket line.
type exemplar struct {
	traceID string
	value   float64
	ts      float64
	set     bool
}

// child is one labelled sample of a family.
type child struct {
	labelValues []string
	value       float64  // counter / gauge
	counts      []uint64 // histogram: per-bin counts, last bin is +Inf
	sum         float64
	count       uint64
	exemplars   []exemplar // histogram: per-bin exemplars; nil until one is set
}

// family is one registered metric family and its labelled children.
type family struct {
	reg      *Registry
	opts     Opts
	kind     Kind
	buckets  []float64
	children map[string]*child
}

// Registry holds metric families in registration order and encodes them as
// Prometheus text exposition.  Registration panics on invalid or duplicate
// names (a program-structure error, like prometheus.MustRegister); sample
// updates and reads are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func (r *Registry) register(o Opts, kind Kind, buckets []float64) *family {
	if !ValidMetricName(o.Name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", o.Name))
	}
	for _, l := range o.Labels {
		if !ValidLabelName(l) {
			panic(fmt.Sprintf("metrics: metric %s has invalid label name %q", o.Name, l))
		}
	}
	if kind == KindHistogram {
		if len(buckets) == 0 {
			panic(fmt.Sprintf("metrics: histogram %s has no buckets", o.Name))
		}
		for i := 1; i < len(buckets); i++ {
			if !(buckets[i] > buckets[i-1]) {
				panic(fmt.Sprintf("metrics: histogram %s has non-increasing buckets", o.Name))
			}
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[o.Name]; dup {
		panic(fmt.Sprintf("metrics: metric %q registered twice", o.Name))
	}
	f := &family{
		reg:      r,
		opts:     o,
		kind:     kind,
		buckets:  append([]float64(nil), buckets...),
		children: map[string]*child{},
	}
	r.families = append(r.families, f)
	r.byName[o.Name] = f
	return f
}

// Counter registers a counter family.
func (r *Registry) Counter(o Opts) *Counter {
	return &Counter{fam: r.register(o, KindCounter, nil)}
}

// Gauge registers a gauge family.
func (r *Registry) Gauge(o Opts) *Gauge {
	return &Gauge{fam: r.register(o, KindGauge, nil)}
}

// Histogram registers a histogram family with the given upper bounds
// (strictly increasing; a +Inf overflow bin is implicit).
func (r *Registry) Histogram(o Opts, buckets []float64) *Histogram {
	return &Histogram{fam: r.register(o, KindHistogram, buckets)}
}

// Describe returns every registered family in registration order.
func (r *Registry) Describe() []Desc {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Desc, len(r.families))
	for i, f := range r.families {
		out[i] = Desc{
			Name:    f.opts.Name,
			Help:    f.opts.Help,
			Source:  f.opts.Source,
			Kind:    f.kind,
			Labels:  append([]string(nil), f.opts.Labels...),
			Buckets: append([]float64(nil), f.buckets...),
		}
	}
	return out
}

// childKey joins label values into the map key.  \xff cannot appear in the
// escaped text form, so the join is unambiguous.
func childKey(labelValues []string) string { return strings.Join(labelValues, "\xff") }

// get returns (creating if needed) the family's child for the label values.
// Callers hold the registry mutex.
func (f *family) get(labelValues []string) *child {
	if len(labelValues) != len(f.opts.Labels) {
		panic(fmt.Sprintf("metrics: metric %s wants %d label values, got %d",
			f.opts.Name, len(f.opts.Labels), len(labelValues)))
	}
	key := childKey(labelValues)
	c, ok := f.children[key]
	if !ok {
		c = &child{labelValues: append([]string(nil), labelValues...)}
		if f.kind == KindHistogram {
			c.counts = make([]uint64, len(f.buckets)+1)
		}
		f.children[key] = c
	}
	return c
}

// Counter is a monotonically non-decreasing instrument.
type Counter struct{ fam *family }

// Add increases the labelled sample by delta (negative deltas are ignored).
func (c *Counter) Add(delta float64, labelValues ...string) {
	if delta < 0 {
		return
	}
	r := c.fam.reg
	r.mu.Lock()
	c.fam.get(labelValues).value += delta
	r.mu.Unlock()
}

// Set mirrors an externally accumulated total into the counter.  The update
// is clamped monotone: a total below the current value is ignored, so a
// mirrored counter can never regress even if its source is re-read
// mid-merge.
func (c *Counter) Set(total float64, labelValues ...string) {
	r := c.fam.reg
	r.mu.Lock()
	ch := c.fam.get(labelValues)
	if total > ch.value {
		ch.value = total
	}
	r.mu.Unlock()
}

// Gauge is an instrument whose value can go up and down.
type Gauge struct{ fam *family }

// Set sets the labelled sample.
func (g *Gauge) Set(v float64, labelValues ...string) {
	r := g.fam.reg
	r.mu.Lock()
	g.fam.get(labelValues).value = v
	r.mu.Unlock()
}

// Histogram is a bucketed distribution instrument.
type Histogram struct{ fam *family }

// Observe adds one observation to the labelled sample.
func (h *Histogram) Observe(v float64, labelValues ...string) {
	r := h.fam.reg
	r.mu.Lock()
	ch := h.fam.get(labelValues)
	i := sort.SearchFloat64s(h.fam.buckets, v) // first bound >= v
	ch.counts[i]++
	ch.sum += v
	ch.count++
	r.mu.Unlock()
}

// SetCumulative mirrors an externally accumulated distribution into the
// labelled sample: counts are the per-bin counts (len(buckets)+1, the last
// bin the +Inf overflow), sum and count the running total and observation
// count.  The whole state is replaced, so the source's own merge order —
// not the mirror cadence — determines the exposed bytes.
func (h *Histogram) SetCumulative(counts []uint64, sum float64, count uint64, labelValues ...string) {
	r := h.fam.reg
	r.mu.Lock()
	ch := h.fam.get(labelValues)
	if len(counts) == len(ch.counts) {
		copy(ch.counts, counts)
		ch.sum = sum
		ch.count = count
	}
	r.mu.Unlock()
}

// SetExemplar attaches a trace-linked exemplar to one bucket of the labelled
// sample: bucket indexes the per-bin counts (len(buckets) is the +Inf bin),
// value is the observed value and ts its sim-time timestamp in seconds.  The
// exemplar is rendered as an OpenMetrics-style `# {trace_id="..."} value ts`
// suffix on that bucket's line; samples without exemplars render exactly as
// before, so enabling tracing never perturbs the exposition of untraced runs.
func (h *Histogram) SetExemplar(bucket int, traceID string, value, ts float64, labelValues ...string) {
	r := h.fam.reg
	r.mu.Lock()
	ch := h.fam.get(labelValues)
	if bucket >= 0 && bucket < len(ch.counts) {
		if ch.exemplars == nil {
			ch.exemplars = make([]exemplar, len(ch.counts))
		}
		ch.exemplars[bucket] = exemplar{traceID: traceID, value: value, ts: ts, set: true}
	}
	r.mu.Unlock()
}

// escapeLabelValue escapes a label value per the text format: backslash,
// double-quote and newline.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes HELP text per the text format: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// formatValue renders a sample value the way Prometheus clients do.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// labelPairs renders {name="value",...} for the sample, with extra appended
// last (the histogram's le pair).
func labelPairs(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabelValue(values[i]))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, escapeLabelValue(extraValue))
	}
	b.WriteByte('}')
	return b.String()
}

// WriteText encodes the registry as Prometheus text exposition v0.0.4:
// families in registration order, children in sorted label-value order (so
// the bytes are independent of update order), histogram buckets cumulative
// and monotone with the mandatory +Inf bucket, _sum and _count.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.opts.Name, escapeHelp(f.opts.Help), f.opts.Name, f.kind); err != nil {
			return err
		}
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			c := f.children[k]
			if f.kind != KindHistogram {
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.opts.Name,
					labelPairs(f.opts.Labels, c.labelValues, "", ""), formatValue(c.value)); err != nil {
					return err
				}
				continue
			}
			cum := uint64(0)
			for i, n := range c.counts {
				cum += n
				le := "+Inf"
				if i < len(f.buckets) {
					le = formatValue(f.buckets[i])
				}
				suffix := ""
				if i < len(c.exemplars) && c.exemplars[i].set {
					ex := c.exemplars[i]
					suffix = fmt.Sprintf(" # {trace_id=\"%s\"} %s %s",
						escapeLabelValue(ex.traceID), formatValue(ex.value), formatValue(ex.ts))
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.opts.Name,
					labelPairs(f.opts.Labels, c.labelValues, "le", le), cum, suffix); err != nil {
					return err
				}
			}
			pairs := labelPairs(f.opts.Labels, c.labelValues, "", "")
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
				f.opts.Name, pairs, formatValue(c.sum), f.opts.Name, pairs, c.count); err != nil {
				return err
			}
		}
	}
	return nil
}

// Text returns the registry's text exposition as a string.
func (r *Registry) Text() string {
	var b strings.Builder
	_ = r.WriteText(&b)
	return b.String()
}

// Handler returns an http.Handler serving the registry's text exposition —
// the /metrics endpoint of a live run.  A nil registry serves an empty body,
// so the endpoint can be wired unconditionally.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		if r != nil {
			_ = r.WriteText(w)
		}
	})
}
