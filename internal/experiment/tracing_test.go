package experiment

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/simclock"
	"repro/internal/tracing"
)

// The observability-plane suite: the global-traced scenario samples 2% of
// every stream's requests into the span layer and runs the engine flight
// recorder, and the exported Chrome trace must be byte-identical for
// EventWorkers {0, 1, 4, GOMAXPROCS} — the trace set is a pure function of
// (seed, stream, request ID) and the flight records are sim-time accounting
// written at epoch barriers, so neither may depend on scheduling.  The
// golden pins the SHA-256 of the export, extending the byte contract from
// summaries and series to the traces themselves.

// runTraced runs global-traced at the given worker count and returns the
// Chrome trace-event export plus the artifacts it came from.
func runTraced(t *testing.T, workers int, horizon simclock.Duration) ([]byte, *tracing.Tracer, *simclock.FlightRecorder) {
	t.Helper()
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := BuildScenario("global-traced", 42)
	if err != nil {
		t.Fatal(err)
	}
	sc.Horizon = horizon
	sc.EventWorkers = workers
	_, b, err := RunBackend(sc, np)
	if err != nil {
		t.Fatal(err)
	}
	tr, fr := TraceArtifacts(b)
	if tr == nil {
		t.Fatal("global-traced backend has no tracer")
	}
	if fr == nil {
		t.Fatal("global-traced backend has no flight recorder")
	}
	out, err := tracing.ChromeJSON(tr.Traces(), fr)
	if err != nil {
		t.Fatal(err)
	}
	return out, tr, fr
}

// TestGlobalTracedExport: always-on canary — the scenario collects sealed
// traces, the export is valid Chrome trace-event JSON, the flight recorder
// reports per-shard utilization for every lane, and the breakdown table has
// rows.  Five minutes crosses ramp-up, probe ticks and several VMC ticks.
func TestGlobalTracedExport(t *testing.T) {
	out, tr, fr := runTraced(t, 1, 5*simclock.Minute)

	if tr.Len() == 0 {
		t.Fatal("no traces collected")
	}
	traces := tr.Traces()
	sealed := 0
	for _, rt := range traces {
		if rt.Sealed {
			sealed++
		}
	}
	if sealed == 0 {
		t.Fatal("no trace was sealed by a completion")
	}

	var parsed struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			PID   int     `json:"pid"`
			TID   int     `json:"tid"`
			TS    float64 `json:"ts"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(out, &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if parsed.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", parsed.DisplayTimeUnit)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("export has no trace events")
	}
	names := map[string]bool{}
	for _, ev := range parsed.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{tracing.SpanRequest, tracing.EventGSLBRoute, tracing.SpanService, "epoch"} {
		if !names[want] {
			t.Errorf("export has no %q events", want)
		}
	}

	// Three 2-shard regions = 6 shard lanes + the control lane.
	util := fr.Utilization()
	if len(util) != 7 {
		t.Fatalf("flight recorder tracks %d lanes, want 7", len(util))
	}
	if fr.EpochCount() == 0 {
		t.Fatal("flight recorder saw no epochs")
	}
	busyLanes := 0
	for _, u := range util[:6] {
		if u.Busy > 0 {
			busyLanes++
		}
	}
	if busyLanes == 0 {
		t.Fatal("no shard lane recorded busy time")
	}
	if len(fr.Phases()) == 0 {
		t.Fatal("no control-tick phases recorded")
	}

	table := tracing.BreakdownTable(traces)
	if !strings.Contains(table, tracing.SpanRequest) || !strings.Contains(table, tracing.SpanService) {
		t.Fatalf("breakdown table is missing lifecycle rows:\n%s", table)
	}
}

// TestGlobalTracedExemplars: the sampled trace IDs surface as exemplars on
// the workload latency histogram in the instrument registry — the link from
// the metrics plane into the trace view.
func TestGlobalTracedExemplars(t *testing.T) {
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := BuildScenario("global-traced", 42)
	if err != nil {
		t.Fatal(err)
	}
	sc.Horizon = 5 * simclock.Minute
	_, b, err := RunBackend(sc, np)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.Registry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, `trace_id="`) {
		t.Fatal("workload_response_time_seconds buckets carry no trace_id exemplar")
	}
	if !strings.Contains(text, "workload_response_time_seconds_bucket") {
		t.Fatal("latency histogram missing from exposition")
	}
}

// TestGlobalTracedWorkersEquivalence is the tracing determinism contract:
// the full Chrome trace export — every span, timestamp, flight-recorder
// slice and phase instant — is byte-identical across EventWorkers 0, 1, 4
// and GOMAXPROCS, and its SHA-256 matches the pinned golden.  Regenerate
// with -update after an intentional change to the trace format or the
// request path.
func TestGlobalTracedWorkersEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs global-traced once per worker count")
	}
	counts := []int{0, 1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		counts = append(counts, p)
	}
	ref, _, _ := runTraced(t, counts[0], 10*simclock.Minute)
	for _, workers := range counts[1:] {
		got, _, _ := runTraced(t, workers, 10*simclock.Minute)
		if !bytes.Equal(got, ref) {
			t.Fatalf("EventWorkers=%d trace export diverged from EventWorkers=%d (lens %d vs %d)",
				workers, counts[0], len(got), len(ref))
		}
	}

	sum := sha256.Sum256(ref)
	got := hex.EncodeToString(sum[:]) + "\n"
	path := filepath.Join("testdata", "golden", "global-traced-trace.sha256")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing trace golden (run with -update to record): %v", err)
	}
	if got != string(want) {
		t.Fatalf("trace export drifted from golden %s\ngot  %swant %s", path, got, want)
	}
}

// TestTracingOffIsByteInvisible: the same scenario with tracing and the
// flight recorder disabled must produce exactly the bytes of its parent
// global-latency configuration path — i.e. a traced run and an untraced run
// of the same deployment agree on every summary and series.  This is the
// "goldens keep their bytes with tracing off" guarantee stated positively:
// tracing on/off only adds or removes trace output, never simulation
// behaviour.
func TestTracingOffIsByteInvisible(t *testing.T) {
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatal(err)
	}
	run := func(sample float64, flight bool) []byte {
		sc, err := BuildScenario("global-traced", 42)
		if err != nil {
			t.Fatal(err)
		}
		sc.Horizon = 5 * simclock.Minute
		sc.TraceSampleFraction = sample
		sc.FlightRecorder = flight
		res, err := Run(sc, np)
		if err != nil {
			t.Fatal(err)
		}
		return eventLoopFingerprint(t, res)
	}
	traced := run(0.02, true)
	untraced := run(0, false)
	if !bytes.Equal(traced, untraced) {
		t.Fatalf("tracing changed the simulation bytes\n--- traced ---\n%s\n--- untraced ---\n%s", traced, untraced)
	}
}
