package stats

import "sort"

// P2Quantile estimates a single quantile of a stream in O(1) space using the
// P² algorithm of Jain & Chlamtac (CACM 1985): five markers track the
// minimum, the maximum, the target quantile and the two intermediate
// quantiles, and every observation nudges the middle markers toward their
// ideal positions with a piecewise-parabolic (hence P²) height update.
//
// The estimator is deterministic: its state after n observations is a pure
// function of the observation sequence, so feeding it from a fixed fold order
// keeps byte-reproducible reports reproducible.  The zero value is not ready
// for use; construct with NewP2Quantile.
type P2Quantile struct {
	p     float64    // target quantile in (0, 1)
	n     uint64     // observations seen
	q     [5]float64 // marker heights
	pos   [5]float64 // actual marker positions (1-based)
	want  [5]float64 // desired marker positions
	dwant [5]float64 // desired-position increments per observation
	init  [5]float64 // first five observations, until primed
}

// NewP2Quantile returns an estimator for quantile p, clamped to [0.01, 0.99]
// (the algorithm's markers degenerate at the extremes; use Min/Max for those).
func NewP2Quantile(p float64) *P2Quantile {
	if p < 0.01 {
		p = 0.01
	}
	if p > 0.99 {
		p = 0.99
	}
	e := &P2Quantile{p: p}
	e.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	e.dwant = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// P returns the target quantile.
func (e *P2Quantile) P() float64 { return e.p }

// Count returns the number of observations folded in.
func (e *P2Quantile) Count() uint64 { return e.n }

// Add folds one observation into the estimate.
func (e *P2Quantile) Add(x float64) {
	if e.n < 5 {
		e.init[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.init[:])
			copy(e.q[:], e.init[:])
			e.pos = [5]float64{1, 2, 3, 4, 5}
		}
		return
	}
	e.n++

	// Locate the cell x falls into and stretch the extreme markers.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x < e.q[1]:
		k = 0
	case x < e.q[2]:
		k = 1
	case x < e.q[3]:
		k = 2
	case x <= e.q[4]:
		k = 3
	default:
		e.q[4] = x
		k = 3
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.want {
		e.want[i] += e.dwant[i]
	}

	// Nudge the three middle markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			q := e.parabolic(i, sign)
			if e.q[i-1] < q && q < e.q[i+1] {
				e.q[i] = q
			} else {
				e.q[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
}

// parabolic is the piecewise-parabolic (P²) height prediction for marker i
// moved by d (±1).
func (e *P2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback linear height prediction for marker i moved by d.
func (e *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Value returns the current quantile estimate.  Before five observations it
// falls back to the exact quantile of the samples seen so far (0 when empty).
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		xs := append([]float64(nil), e.init[:e.n]...)
		return Percentile(xs, e.p*100)
	}
	return e.q[2]
}
