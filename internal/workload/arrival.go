package workload

import (
	"fmt"
	"math"

	"repro/internal/cloudsim"
	"repro/internal/simclock"
	"repro/internal/tracing"
	"repro/internal/validate"
)

// This file adds time-varying request arrivals: an inhomogeneous Poisson
// process whose rate function λ(t) models diurnal traffic (sinusoidal cycles
// that peak at different times for different client geographies) or scripted
// load profiles (piecewise-constant steps).  Sampling uses the classic
// thinning construction (Lewis & Shedler 1979; see also "Conditional
// Densities and Simulations of Inhomogeneous Poisson Point Processes",
// arXiv:1901.10754): candidate points arrive as a homogeneous Poisson process
// at the envelope rate λ_max and each candidate at time t is accepted with
// probability λ(t)/λ_max.  Every accept/reject decision draws from the
// stream's own RNG, so the generated point process is a pure function of
// (RateSpec, seed) — deterministic under the repo's derived-RNG-stream
// scheme regardless of worker count.

// Rate-function kinds understood by RateSpec.
const (
	// RateConstant is a fixed rate: λ(t) = Rate.
	RateConstant = "constant"
	// RateSinusoid is a diurnal-style cycle:
	// λ(t) = max(0, Base + Amplitude·sin(2π(t+Phase)/Period)).
	RateSinusoid = "sinusoid"
	// RatePiecewise cycles through Steps: each step holds its Rate for its
	// Duration, then the next step begins (wrapping around at the end).
	RatePiecewise = "piecewise"
)

// RateStep is one segment of a piecewise-constant rate function.
type RateStep struct {
	// Duration is how long the step lasts.
	Duration simclock.Duration
	// Rate is the arrival rate (requests per second) during the step.
	Rate float64
}

// RateSpec is a plain-data description of a rate function λ(t), chosen so
// scenarios carrying one round-trip through JSON.  Only the fields of the
// selected Kind are consulted.
type RateSpec struct {
	// Kind selects the rate function: RateConstant, RateSinusoid or
	// RatePiecewise.
	Kind string
	// Rate is the constant rate (RateConstant).
	Rate float64
	// Base and Amplitude parameterise the sinusoid (RateSinusoid); the rate
	// is clamped at zero, so Amplitude > Base yields quiet troughs.
	Base      float64
	Amplitude float64
	// Period and Phase set the sinusoid's cycle length and offset; staggering
	// Phase across client geographies makes their peaks land at different
	// times.
	Period simclock.Duration
	Phase  simclock.Duration
	// Steps is the piecewise-constant profile (RatePiecewise), cycled.
	Steps []RateStep
}

// Validate rejects specs the generator cannot sample from.
func (s RateSpec) Validate() error {
	switch s.Kind {
	case RateConstant:
		if s.Rate <= 0 {
			return validate.Fieldf("workload", "Rate", "(constant) must be positive, got %v", s.Rate)
		}
	case RateSinusoid:
		if s.Base <= 0 {
			return validate.Fieldf("workload", "Base", "(sinusoid) must be positive, got %v", s.Base)
		}
		if s.Amplitude < 0 {
			return validate.Fieldf("workload", "Amplitude", "(sinusoid) must be non-negative, got %v", s.Amplitude)
		}
		if s.Period <= 0 {
			return validate.Fieldf("workload", "Period", "(sinusoid) must be positive, got %v", s.Period)
		}
	case RatePiecewise:
		if len(s.Steps) == 0 {
			return validate.Fieldf("workload", "Steps", "(piecewise) needs at least one step")
		}
		positive := false
		for i, st := range s.Steps {
			if st.Duration <= 0 {
				return validate.Fieldf("workload", fmt.Sprintf("Steps[%d].Duration", i), "must be positive, got %v", st.Duration)
			}
			if st.Rate < 0 {
				return validate.Fieldf("workload", fmt.Sprintf("Steps[%d].Rate", i), "must be non-negative, got %v", st.Rate)
			}
			if st.Rate > 0 {
				positive = true
			}
		}
		if !positive {
			return validate.Fieldf("workload", "Steps", "(piecewise) rate is zero everywhere")
		}
	default:
		return validate.Fieldf("workload", "Kind", "%q is an unknown rate kind (use %s, %s or %s)",
			s.Kind, RateConstant, RateSinusoid, RatePiecewise)
	}
	return nil
}

// At returns λ(t) in requests per second.
func (s RateSpec) At(t simclock.Time) float64 {
	switch s.Kind {
	case RateConstant:
		return s.Rate
	case RateSinusoid:
		phase := 2 * math.Pi * (t.Seconds() + s.Phase.Seconds()) / s.Period.Seconds()
		r := s.Base + s.Amplitude*math.Sin(phase)
		if r < 0 {
			return 0
		}
		return r
	case RatePiecewise:
		cycle := 0.0
		for _, st := range s.Steps {
			cycle += st.Duration.Seconds()
		}
		pos := math.Mod(t.Seconds(), cycle)
		for _, st := range s.Steps {
			if pos < st.Duration.Seconds() {
				return st.Rate
			}
			pos -= st.Duration.Seconds()
		}
		return s.Steps[len(s.Steps)-1].Rate
	default:
		return 0
	}
}

// Max returns the envelope rate λ_max used by the thinning sampler.
func (s RateSpec) Max() float64 {
	switch s.Kind {
	case RateConstant:
		return s.Rate
	case RateSinusoid:
		return s.Base + s.Amplitude
	case RatePiecewise:
		max := 0.0
		for _, st := range s.Steps {
			if st.Rate > max {
				max = st.Rate
			}
		}
		return max
	default:
		return 0
	}
}

// Mean returns the time-average of λ(t) over one cycle (the constant rate
// itself for RateConstant).  Reports use it to quote the expected load of a
// stream.
func (s RateSpec) Mean() float64 {
	switch s.Kind {
	case RateConstant:
		return s.Rate
	case RateSinusoid:
		// The clamp at zero makes the exact mean awkward; for the amplitudes
		// used in practice (Amplitude <= Base) the mean is exactly Base.
		if s.Amplitude <= s.Base {
			return s.Base
		}
		// Numeric fallback for clipped sinusoids.
		const n = 1024
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += s.At(simclock.Time(float64(s.Period) * float64(i) / n))
		}
		return sum / n
	case RatePiecewise:
		total, weighted := 0.0, 0.0
		for _, st := range s.Steps {
			total += st.Duration.Seconds()
			weighted += st.Duration.Seconds() * st.Rate
		}
		if total == 0 {
			return 0
		}
		return weighted / total
	default:
		return 0
	}
}

// VaryingOpenLoopConfig describes one inhomogeneous-Poisson request stream.
type VaryingOpenLoopConfig struct {
	// Region labels the stream in the metrics sink and becomes the
	// EntryRegion of its requests ("americas", "europe", ...).
	Region string
	// Rate is the time-varying arrival rate λ(t).
	Rate RateSpec
	// Mix is the interaction mix (BrowsingMix when zero-valued).
	Mix Mix
	// Tracer, when non-nil, samples the stream's requests into the span
	// layer under the "<region>-arrivals" stream identity.
	Tracer *tracing.Tracer
}

// VaryingOpenLoop is an open-loop request generator whose arrival process is
// an inhomogeneous Poisson process sampled by thinning.
type VaryingOpenLoop struct {
	cfg     VaryingOpenLoopConfig
	rng     *simclock.RNG
	target  Dispatcher
	metrics *Metrics
	running bool
	nextID  uint64
	issued  uint64
}

// NewVaryingOpenLoop builds a generator.  The rate spec is validated up
// front so a malformed scenario fails at construction, not mid-run.
func NewVaryingOpenLoop(cfg VaryingOpenLoopConfig, rng *simclock.RNG, target Dispatcher, metrics *Metrics) (*VaryingOpenLoop, error) {
	if err := cfg.Rate.Validate(); err != nil {
		return nil, err
	}
	if cfg.Mix.Name == "" {
		cfg.Mix = BrowsingMix()
	}
	if metrics == nil {
		metrics = NewMetrics()
	}
	return &VaryingOpenLoop{cfg: cfg, rng: rng, target: target, metrics: metrics}, nil
}

// Region returns the stream's label.
func (v *VaryingOpenLoop) Region() string { return v.cfg.Region }

// Issued returns how many requests the stream has emitted.
func (v *VaryingOpenLoop) Issued() uint64 { return v.issued }

// Start begins generating arrivals.
func (v *VaryingOpenLoop) Start(eng *simclock.Engine) {
	if v.running {
		return
	}
	v.running = true
	v.scheduleNext(eng)
}

// Stop halts the generator.
func (v *VaryingOpenLoop) Stop() { v.running = false }

// scheduleNext draws the next thinning candidate: an exponential gap at the
// envelope rate λ_max, accepted with probability λ(t)/λ_max when it fires.
// Rejected candidates immediately schedule the next one, so the accepted
// points form exactly the inhomogeneous process with intensity λ(t).
func (v *VaryingOpenLoop) scheduleNext(eng *simclock.Engine) {
	if !v.running {
		return
	}
	max := v.cfg.Rate.Max()
	gap := simclock.Duration(v.rng.Exp(1 / max))
	eng.ScheduleFunc(gap, func(e *simclock.Engine) {
		if !v.running {
			return
		}
		// The accept draw is consumed unconditionally — even when λ(t) ==
		// λ_max — so the stream's RNG consumption depends only on the number
		// of candidates, never on float comparisons against the envelope.
		accept := v.rng.Float64() < v.cfg.Rate.At(e.Now())/max
		if accept {
			it := v.cfg.Mix.Pick(v.rng)
			v.nextID++
			v.issued++
			req := &cloudsim.Request{
				ID:            v.nextID,
				Class:         it.Name,
				ServiceFactor: it.ServiceFactor,
				EntryRegion:   v.cfg.Region,
				Arrival:       e.Now(),
				Trace:         v.cfg.Tracer.Start(v.cfg.Region+"-arrivals", v.nextID, 1, e.Now()),
			}
			req.OnDone = func(out cloudsim.Outcome) {
				sealTrace(req.Trace, out)
				v.metrics.record(v.cfg.Region, out)
			}
			v.metrics.issued(v.cfg.Region)
			v.target.Submit(e, req)
		}
		v.scheduleNext(e)
	})
}
