package ml

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDot(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("dot product wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestMatVecTransposeMatMul(t *testing.T) {
	a := [][]float64{{1, 2}, {3, 4}}
	x := []float64{1, 1}
	v := MatVec(a, x)
	if v[0] != 3 || v[1] != 7 {
		t.Fatalf("matvec wrong: %v", v)
	}
	at := Transpose(a)
	if at[0][1] != 3 || at[1][0] != 2 {
		t.Fatalf("transpose wrong: %v", at)
	}
	if Transpose(nil) != nil {
		t.Fatal("transpose of empty should be nil")
	}
	prod, err := MatMul(a, at)
	if err != nil {
		t.Fatal(err)
	}
	// [[1,2],[3,4]] * [[1,3],[2,4]] = [[5,11],[11,25]]
	if prod[0][0] != 5 || prod[0][1] != 11 || prod[1][0] != 11 || prod[1][1] != 25 {
		t.Fatalf("matmul wrong: %v", prod)
	}
	if _, err := MatMul(a, [][]float64{{1, 2}}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
	if _, err := MatMul(nil, a); err == nil {
		t.Fatal("empty matrix should error")
	}
}

func TestSolveLinearSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{3, 5}
	x, err := SolveLinearSystem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Solution: x=0.8, y=1.4
	if !almostEqual(x[0], 0.8, 1e-9) || !almostEqual(x[1], 1.4, 1e-9) {
		t.Fatalf("solution wrong: %v", x)
	}
	// Singular matrix
	if _, err := SolveLinearSystem([][]float64{{1, 1}, {2, 2}}, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
	// Dimension mismatches
	if _, err := SolveLinearSystem(nil, nil); err == nil {
		t.Fatal("empty system should error")
	}
	if _, err := SolveLinearSystem([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched b should error")
	}
	if _, err := SolveLinearSystem([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("non-square should error")
	}
}

// Property: for random diagonally dominant systems, SolveLinearSystem returns
// x with A·x ≈ b.
func TestSolveLinearSystemProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 4
		s := uint64(seed)
		next := func() float64 {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return float64(s%2000)/1000 - 1
		}
		a := make([][]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				a[i][j] = next()
			}
			a[i][i] += 5 // diagonal dominance => non-singular
			b[i] = next()
		}
		x, err := SolveLinearSystem(a, b)
		if err != nil {
			return false
		}
		ax := MatVec(a, x)
		for i := range b {
			if !almostEqual(ax[i], b[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalEquations(t *testing.T) {
	// y = 2 + 3x fits exactly.
	x := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	y := []float64{2, 5, 8, 11}
	w, err := NormalEquations(x, y, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(w[0], 2, 1e-6) || !almostEqual(w[1], 3, 1e-6) {
		t.Fatalf("weights wrong: %v", w)
	}
	if _, err := NormalEquations(nil, nil, 0, 0); !errors.Is(err, ErrEmptyDataset) {
		t.Fatal("empty design should error")
	}
	if _, err := NormalEquations(x, []float64{1}, 0, 0); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatal("length mismatch should error")
	}
	// Collinear design with lambda=0 should auto-regularise instead of failing.
	xc := [][]float64{{1, 1, 2}, {1, 2, 4}, {1, 3, 6}, {1, 4, 8}}
	yc := []float64{1, 2, 3, 4}
	if _, err := NormalEquations(xc, yc, 0, 0); err != nil {
		t.Fatalf("collinear design should fall back to ridge: %v", err)
	}
}

func TestStandardizer(t *testing.T) {
	x := [][]float64{{1, 10, 5}, {2, 20, 5}, {3, 30, 5}}
	s := FitStandardizer(x)
	xt := s.Transform(x)
	// Column 0: mean 2 -> standardised mean 0
	sum := xt[0][0] + xt[1][0] + xt[2][0]
	if !almostEqual(sum, 0, 1e-9) {
		t.Fatalf("standardised column mean should be 0, got %f", sum/3)
	}
	// Constant column 2 must not blow up.
	if xt[0][2] != 0 || s.Scale[2] != 1 {
		t.Fatalf("constant column should transform to 0 with scale 1, got %v", xt[0][2])
	}
	// Row longer than fitted columns keeps the extra values.
	row := s.TransformRow([]float64{1, 10, 5, 99})
	if row[3] != 99 {
		t.Fatal("extra column should pass through")
	}
	empty := FitStandardizer(nil)
	if len(empty.Mean) != 0 {
		t.Fatal("empty standardizer should have no stats")
	}
}

func TestAddInterceptAndCopyMatrix(t *testing.T) {
	x := [][]float64{{2, 3}}
	xi := addIntercept(x)
	if xi[0][0] != 1 || xi[0][1] != 2 || xi[0][2] != 3 {
		t.Fatalf("intercept column wrong: %v", xi)
	}
	cp := copyMatrix(x)
	cp[0][0] = 99
	if x[0][0] != 2 {
		t.Fatal("copyMatrix must deep copy")
	}
}

func TestMeanVarianceHelpers(t *testing.T) {
	if meanOf(nil) != 0 || varianceOf(nil) != 0 || varianceOf([]float64{1}) != 0 {
		t.Fatal("degenerate helpers should return 0")
	}
	if meanOf([]float64{2, 4}) != 3 {
		t.Fatal("meanOf wrong")
	}
	if varianceOf([]float64{2, 4}) != 1 {
		t.Fatal("varianceOf wrong")
	}
}
