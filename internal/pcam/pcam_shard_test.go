package pcam

import (
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/simclock"
)

func shardedRegion(seed uint64, shards, active, standby int) *cloudsim.Region {
	cfg := cloudsim.RegionConfig{
		Name:           "shardy",
		Provider:       "aws",
		Location:       "test",
		Type:           cloudsim.M3Medium,
		InitialActive:  active,
		InitialStandby: standby,
		Shards:         shards,
	}
	return cloudsim.NewRegion(cfg, simclock.NewRNG(seed))
}

// TestSubmitShardedSpreadsLoad drives the load balancer of a 4-shard region
// and checks that every shard serves a share of the traffic and nothing is
// dropped: the shard rotation must not starve or over-concentrate.
func TestSubmitShardedSpreadsLoad(t *testing.T) {
	eng := simclock.NewEngine(21)
	region := shardedRegion(21, 4, 8, 4)
	vmc := newTestVMC(t, region, OraclePredictor{}, Config{ElasticityEnabled: false})

	const n = 200
	dropped := 0
	for i := 0; i < n; i++ {
		delay := simclock.Duration(float64(i) * 0.05)
		eng.ScheduleFunc(delay, func(e *simclock.Engine) {
			vmc.Submit(e, &cloudsim.Request{ID: uint64(i), ServiceFactor: 1, Arrival: e.Now(),
				OnDone: func(o cloudsim.Outcome) {
					if o.Dropped {
						dropped++
					}
				}})
		})
	}
	eng.RunUntilEmpty()

	if dropped != 0 {
		t.Fatalf("%d of %d requests dropped in a healthy sharded region", dropped, n)
	}
	perShard := make([]uint64, region.NumShards())
	var total uint64
	for s := 0; s < region.NumShards(); s++ {
		for _, vm := range region.ShardVMs(s) {
			perShard[s] += vm.Served()
			total += vm.Served()
		}
	}
	if total != n {
		t.Fatalf("served %d requests, want %d", total, n)
	}
	for s, served := range perShard {
		if served == 0 {
			t.Fatalf("shard %d served nothing: %v", s, perShard)
		}
	}
}

// TestSubmitShardedSkipsInactiveShards deactivates every ACTIVE VM of one
// shard and checks the rotation routes around it without dropping requests.
func TestSubmitShardedSkipsInactiveShards(t *testing.T) {
	eng := simclock.NewEngine(5)
	region := shardedRegion(5, 4, 8, 4)
	vmc := newTestVMC(t, region, OraclePredictor{}, Config{ElasticityEnabled: false})

	const deadShard = 2
	for _, vm := range region.ActiveVMsInShard(deadShard) {
		if !vm.Deactivate() {
			t.Fatalf("could not deactivate %s", vm.ID())
		}
	}

	const n = 100
	dropped := 0
	for i := 0; i < n; i++ {
		delay := simclock.Duration(float64(i) * 0.05)
		eng.ScheduleFunc(delay, func(e *simclock.Engine) {
			vmc.Submit(e, &cloudsim.Request{ID: uint64(i), ServiceFactor: 1, Arrival: e.Now(),
				OnDone: func(o cloudsim.Outcome) {
					if o.Dropped {
						dropped++
					}
				}})
		})
	}
	eng.RunUntilEmpty()

	if dropped != 0 {
		t.Fatalf("%d requests dropped even though three shards stayed active", dropped)
	}
	for _, vm := range region.ShardVMs(deadShard) {
		if vm.Served() != 0 {
			t.Fatalf("deactivated shard %d still served requests via %s", deadShard, vm.ID())
		}
	}
}

// TestSubmitShardedDropsWithoutActives: when no shard has an ACTIVE VM the
// request is dropped with the region attributed, exactly like the unsharded
// balancer.
func TestSubmitShardedDropsWithoutActives(t *testing.T) {
	eng := simclock.NewEngine(9)
	region := shardedRegion(9, 4, 0, 8)
	vmc := newTestVMC(t, region, OraclePredictor{}, Config{ElasticityEnabled: false})

	var out cloudsim.Outcome
	vmc.Submit(eng, &cloudsim.Request{ID: 1, ServiceFactor: 1, Arrival: eng.Now(),
		OnDone: func(o cloudsim.Outcome) { out = o }})
	if !out.Dropped || out.Region != "shardy" {
		t.Fatalf("expected a dropped outcome attributed to the region, got %+v", out)
	}
}

// TestActivateStandbyPrefersDepletedShard: when a rejuvenation wave empties
// one shard's active set, the replenishment promotions must go to that shard
// first — Submit's rotation keeps sending it ~1/N of the traffic, so a
// shard-agnostic promotion (the old whole-pool StandbyVMs()[0]) would leave
// the depleted shard's survivors carrying a multiple of the per-VM load.
func TestActivateStandbyPrefersDepletedShard(t *testing.T) {
	eng := simclock.NewEngine(17)
	region := shardedRegion(17, 4, 8, 4) // 2 ACTIVE + 1 STANDBY per shard
	vmc := newTestVMC(t, region, OraclePredictor{}, Config{ElasticityEnabled: false})

	const depleted = 2
	for _, vm := range region.ActiveVMsInShard(depleted) {
		if !vm.Rejuvenate(eng) {
			t.Fatalf("could not rejuvenate %s", vm.ID())
		}
	}
	if region.ActiveCountInShard(depleted) != 0 {
		t.Fatalf("shard %d still has active VMs after the rejuvenation wave", depleted)
	}

	vmc.ControlTick(eng)

	// The depleted shard holds one standby, so the first of the two
	// replenishment promotions must land there (the second falls back to the
	// least-active shard that still has a spare).
	if got := region.ActiveCountInShard(depleted); got != 1 {
		t.Fatalf("depleted shard has %d active VMs after replenishment, want 1", got)
	}
	if got := vmc.Stats().Activations; got != 2 {
		t.Fatalf("activations = %d, want 2 (back to the target pool size)", got)
	}
}

// TestControlTickShardedRejuvenation checks the per-shard worst-first scan
// still finds and rejuvenates an about-to-fail VM in a sharded region.
func TestControlTickShardedRejuvenation(t *testing.T) {
	eng := simclock.NewEngine(13)
	region := shardedRegion(13, 4, 8, 4)
	vmc := newTestVMC(t, region, OraclePredictor{}, Config{ElasticityEnabled: false})

	worn := region.ActiveVMsInShard(3)[0]
	worn.PreAge(0.95)

	vmc.ControlTick(eng)
	if got := vmc.Stats().ProactiveRejuvenations; got != 1 {
		t.Fatalf("proactive rejuvenations = %d, want 1 (the pre-aged VM)", got)
	}
	if worn.State() != cloudsim.StateRejuvenating {
		t.Fatalf("pre-aged VM state = %v, want REJUVENATING", worn.State())
	}
	if got := vmc.Stats().Activations; got != 1 {
		t.Fatalf("activations = %d, want 1 standby takeover", got)
	}
}
