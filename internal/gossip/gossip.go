// Package gossip replicates the gslb health plane: instead of one central
// Director probing every region, N director replicas each own a private copy
// of the per-region health state machine and exchange versioned health
// summaries over a simulated SWIM-style push-pull protocol, so every replica
// routes on its own eventually-consistent view of the world.  Request lanes
// are assigned to a home replica (lane g reads replica g mod N's table), which
// is what lets two lanes route on conflicting views of the same region — the
// split-brain, partition and stale-view failure modes the central model
// cannot express.
//
// Region ownership is static: region i is probed by replica i mod N, and the
// owner bumps the region's version with every probe.  A gossip round delivers
// the messages that have arrived (adopting any summary with a newer version),
// then every replica pushes its full view to Fanout peers drawn from a
// derived RNG stream; a delivered push is answered with a pull reply carrying
// the receiver's view, so state flows both ways.  Messages carry a delivery
// timestamp (send time + Delay) and an optional Bernoulli loss draw, and sit
// in per-(src, dst) mailbox lanes that are drained in (dst, src, send order)
// — the same deterministic drain discipline as the sharded engine's
// cross-shard mailboxes.
//
// Everything here runs on the simulation's control timeline (ProbeTick and
// GossipTick fire from control-timeline tickers, while every region shard is
// idle), so the plane is byte-deterministic for any event-loop worker count
// by construction; the request path only ever reads the immutable per-replica
// *gslb.Table snapshots.
//
// Partitions are scripted, not emergent: Isolate splits the replica set in
// two and cross-side messages are dropped at delivery time until Heal
// reconnects everyone.  The plane also measures its own convergence — every
// version bump is tracked until all replicas have seen it (mean lag), and
// MaxDivergence reports how many probe generations the most stale replica is
// behind, which feeds the gossip_convergence series.
package gossip

import (
	"fmt"
	"math"

	"repro/internal/cloudsim"
	"repro/internal/gslb"
	"repro/internal/simclock"
)

// Config tunes the replicated health plane.  The zero value of every field
// except Replicas means "default applies"; Replicas must be at least 1.
type Config struct {
	// Replicas is the number of director replicas (at least 1; a typical
	// deployment runs 3).
	Replicas int
	// Interval is the gossip round period on the control timeline (10 s when
	// zero).  Each round first delivers due messages, then sends new pushes.
	Interval simclock.Duration
	// Fanout is how many peers each replica pushes to per round (1 when
	// zero; capped at Replicas-1).
	Fanout int
	// Delay is the per-message link delay.  A message sent in one round is
	// delivered at the first round whose start time is >= send time + Delay,
	// so even Delay 0 costs one round of latency.
	Delay simclock.Duration
	// Loss is the per-message Bernoulli loss probability in [0, 1).
	Loss float64
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 10 * simclock.Second
	}
	if c.Fanout <= 0 {
		c.Fanout = 1
	}
	if c.Replicas > 1 && c.Fanout > c.Replicas-1 {
		c.Fanout = c.Replicas - 1
	}
	return c
}

// Summary is one region's versioned health digest as carried by gossip
// messages: enough to rebuild a routing table, nothing more.
type Summary struct {
	// Version counts the owner's probes of this region; higher wins.
	Version uint64
	// State and Capacity mirror the owner's gslb.Health at that version.
	State    gslb.HealthState
	Capacity float64
}

// message is one in-flight push or pull reply: a full view snapshot stamped
// with its delivery time.
type message struct {
	reply     bool // pull reply (does not trigger another reply)
	deliverAt simclock.Time
	view      []Summary
}

// replica is one director replica: its private health state machines (live
// for owned regions, mirrored from gossip for the rest), its versioned view,
// and the routing table built from that view.
type replica struct {
	health []gslb.Health
	view   []Summary
	table  *gslb.Table
}

// update tracks one owner version bump until every replica has seen it.
type update struct {
	region  int
	version uint64
	at      simclock.Time
}

// Stats summarises the plane's protocol and convergence counters for reports
// and byte-pinned goldens.
type Stats struct {
	// Replicas and Rounds are the replica count and completed gossip rounds.
	Replicas int
	Rounds   uint64
	// Sent / Delivered / Dropped count gossip messages; Dropped folds both
	// Bernoulli link loss and partition drops.
	Sent, Delivered, Dropped uint64
	// Converged counts owner version bumps every replica has seen;
	// Pending counts bumps still propagating at the end of the run.
	Converged, Pending int
	// MeanLagSeconds is the mean time from a version bump to full
	// convergence, over the Converged updates (0 when none converged).
	MeanLagSeconds float64
	// MaxDivergence is the current maximum, over regions, of how many probe
	// generations the most stale replica's view is behind the owner.
	MaxDivergence uint64
}

// Plane is the replicated health plane.  ProbeTick and GossipTick are
// control-timeline-only; the request path reads the immutable per-replica
// Table snapshots.
type Plane struct {
	cfg     Config
	gcfg    gslb.Config // defaults applied
	regions []string
	pref    []int
	sample  func(i int) cloudsim.Telemetry
	reps    []*replica
	rng     *simclock.RNG
	// lanes[src][dst] is the in-flight message queue from replica src to
	// replica dst, in send order (delivery times are non-decreasing within a
	// lane, so draining a due prefix preserves order).
	lanes [][][]message
	// group[i] is replica i's partition side; all zero when connected.
	group    []int
	split    bool
	splits   int
	trans    []gslb.Transition
	probes   uint64
	rounds   uint64
	sent     uint64
	deliv    uint64
	dropped  uint64
	pending  []update
	lagSum   float64
	lagCount int
}

// New builds a replicated health plane over the named regions (deployment
// order).  gcfg is the shared director policy configuration every replica
// builds its table from; the latency policy is rejected (its per-lane
// passive estimators are inherently central — see gslb.Director).  seed
// derives the plane's private RNG stream (peer selection and loss draws).
// sample returns the current telemetry of region i; it is only called from
// ProbeTick, by the owning replica.
func New(cfg Config, gcfg gslb.Config, regions []string, seed uint64, sample func(i int) cloudsim.Telemetry) (*Plane, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("gossip: Replicas = %d; need at least 1", cfg.Replicas)
	}
	if l := cfg.Loss; math.IsNaN(l) || l < 0 || l >= 1 {
		return nil, fmt.Errorf("gossip: Loss = %v; must lie in [0, 1)", l)
	}
	if cfg.Interval < 0 || cfg.Delay < 0 {
		return nil, fmt.Errorf("gossip: negative Interval or Delay")
	}
	if cfg.Fanout < 0 {
		return nil, fmt.Errorf("gossip: Fanout = %d; must be >= 0", cfg.Fanout)
	}
	if !gcfg.Enabled() {
		return nil, fmt.Errorf("gossip: gslb config has no policy")
	}
	if _, err := gslb.ParsePolicy(string(gcfg.Policy)); err != nil {
		return nil, err
	}
	if gcfg.LatencyAware() {
		return nil, fmt.Errorf("gossip: the latency policy (and RTT matrices) need central passive estimators; use the central director")
	}
	if len(regions) == 0 {
		return nil, fmt.Errorf("gossip: no regions")
	}
	if sample == nil {
		return nil, fmt.Errorf("gossip: nil telemetry sampler")
	}
	if err := gcfg.Validate(regions, nil); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	gcfg = gcfg.WithDefaults()
	pref, err := gslb.PreferenceOrder(gcfg.Preference, regions)
	if err != nil {
		return nil, err
	}
	p := &Plane{
		cfg:     cfg,
		gcfg:    gcfg,
		regions: append([]string(nil), regions...),
		pref:    pref,
		sample:  sample,
		reps:    make([]*replica, cfg.Replicas),
		rng:     simclock.NewRNG(seed),
		group:   make([]int, cfg.Replicas),
		lanes:   make([][][]message, cfg.Replicas),
	}
	for i := range p.lanes {
		p.lanes[i] = make([][]message, cfg.Replicas)
	}
	for i := range p.reps {
		r := &replica{
			health: make([]gslb.Health, len(regions)),
			view:   make([]Summary, len(regions)),
		}
		for j := range r.health {
			r.health[j] = gslb.NewHealth()
			r.view[j] = Summary{State: gslb.Healthy, Capacity: 1}
		}
		r.table = gslb.BuildTable(gcfg, pref, r.health)
		p.reps[i] = r
	}
	return p, nil
}

// owner returns the replica that probes region r.
func (p *Plane) owner(r int) int { return r % len(p.reps) }

// NumReplicas returns the replica count.
func (p *Plane) NumReplicas() int { return len(p.reps) }

// Regions returns the region names in deployment order.
func (p *Plane) Regions() []string { return append([]string(nil), p.regions...) }

// GSLBConfig returns the shared director configuration with defaults applied.
func (p *Plane) GSLBConfig() gslb.Config { return p.gcfg }

// Interval returns the gossip round period with defaults applied.
func (p *Plane) Interval() simclock.Duration { return p.cfg.Interval }

// Home returns the replica a request lane is assigned to: lane g routes on
// replica (g mod N)'s table, so lanes homed to different replicas can act on
// conflicting views.
func (p *Plane) Home(lane int) int {
	if lane < 0 {
		lane = -lane
	}
	return lane % len(p.reps)
}

// Table returns replica i's current routing-table snapshot.
func (p *Plane) Table(i int) *gslb.Table { return p.reps[i].table }

// OwnerStates returns each region's health state as seen by its owning
// replica — the authoritative view, in deployment order.
func (p *Plane) OwnerStates() []gslb.HealthState {
	out := make([]gslb.HealthState, len(p.regions))
	for r := range p.regions {
		out[r] = p.reps[p.owner(r)].view[r].State
	}
	return out
}

// ReplicaStates returns replica i's (possibly stale) view of every region's
// health state, in deployment order.
func (p *Plane) ReplicaStates(i int) []gslb.HealthState {
	out := make([]gslb.HealthState, len(p.regions))
	for r := range p.regions {
		out[r] = p.reps[i].view[r].State
	}
	return out
}

// Transitions returns every authoritative health-state change (as seen by
// region owners) so far, in probe order.
func (p *Plane) Transitions() []gslb.Transition {
	return append([]gslb.Transition(nil), p.trans...)
}

// Probes returns the number of completed probe ticks.
func (p *Plane) Probes() uint64 { return p.probes }

// Partitioned reports whether the replica set is currently split.
func (p *Plane) Partitioned() bool { return p.split }

// Isolate splits the replica set in two: the listed replicas form one side,
// everyone else the other.  Cross-side messages are dropped at delivery time
// (a message sent before the split but due during it is lost; one sent
// during the split but due after Heal gets through), so each side keeps
// converging internally while the views across the cut drift apart.
func (p *Plane) Isolate(replicas []int) {
	for i := range p.group {
		p.group[i] = 0
	}
	for _, i := range replicas {
		if i >= 0 && i < len(p.group) {
			p.group[i] = 1
		}
	}
	p.split = true
	p.splits++
}

// Heal reconnects all replicas; in-flight messages resume delivery and the
// next rounds reconcile the sides.
func (p *Plane) Heal() {
	for i := range p.group {
		p.group[i] = 0
	}
	p.split = false
}

// ProbeTick advances the owned health state machines: each region's owner
// samples its telemetry, steps the debounced gslb state machine, bumps the
// region's version and rebuilds its table.  Must run on the control timeline.
func (p *Plane) ProbeTick(now simclock.Time) {
	p.probes++
	for r := range p.regions {
		rep := p.reps[p.owner(r)]
		from, to := rep.health[r].Probe(p.gcfg, p.sample(r))
		v := rep.view[r].Version + 1
		rep.view[r] = Summary{Version: v, State: to, Capacity: rep.health[r].Capacity}
		if from != to {
			p.trans = append(p.trans, gslb.Transition{At: now, Region: p.regions[r], From: from, To: to})
		}
		p.pending = append(p.pending, update{region: r, version: v, at: now})
	}
	for _, rep := range p.reps {
		rep.table = gslb.BuildTable(p.gcfg, p.pref, rep.health)
	}
	p.settleUpdates(now)
}

// GossipTick runs one gossip round: deliver every message that is due, then
// have each replica push its view to Fanout peers.  Must run on the control
// timeline.
func (p *Plane) GossipTick(now simclock.Time) {
	p.rounds++
	p.deliver(now)
	if len(p.reps) > 1 {
		for i := range p.reps {
			for _, peer := range p.pickPeers(i) {
				p.send(now, i, peer, false)
			}
		}
	}
	for _, rep := range p.reps {
		rep.table = gslb.BuildTable(p.gcfg, p.pref, rep.health)
	}
	p.settleUpdates(now)
}

// deliver drains every due message in (dst, src, send order) — the mailbox
// drain discipline — adopting newer summaries and answering pushes with pull
// replies.
func (p *Plane) deliver(now simclock.Time) {
	for dst := range p.reps {
		for src := range p.reps {
			lane := p.lanes[src][dst]
			n := 0
			for n < len(lane) && lane[n].deliverAt <= now {
				n++
			}
			if n == 0 {
				continue
			}
			due := lane[:n]
			p.lanes[src][dst] = lane[n:]
			for _, msg := range due {
				if p.group[src] != p.group[dst] {
					p.dropped++
					continue
				}
				p.deliv++
				p.adopt(dst, msg.view)
				if !msg.reply {
					p.send(now, dst, src, true)
				}
			}
		}
	}
}

// adopt merges an incoming view into replica dst: any region whose incoming
// version is newer replaces the local summary and health mirror.  Owned
// regions are naturally immune — only the owner bumps their version, so an
// incoming version can never exceed the owner's own.
func (p *Plane) adopt(dst int, view []Summary) {
	rep := p.reps[dst]
	for r := range view {
		if r >= len(rep.view) || view[r].Version <= rep.view[r].Version {
			continue
		}
		rep.view[r] = view[r]
		rep.health[r].State = view[r].State
		rep.health[r].Capacity = view[r].Capacity
	}
}

// send enqueues a snapshot of src's view for dst, subject to the Bernoulli
// loss draw.  Delivery happens at the first round start >= now + Delay.
func (p *Plane) send(now simclock.Time, src, dst int, reply bool) {
	p.sent++
	if p.cfg.Loss > 0 && p.rng.Float64() < p.cfg.Loss {
		p.dropped++
		return
	}
	view := make([]Summary, len(p.reps[src].view))
	copy(view, p.reps[src].view)
	p.lanes[src][dst] = append(p.lanes[src][dst], message{
		reply:     reply,
		deliverAt: now.Add(p.cfg.Delay),
		view:      view,
	})
}

// pickPeers draws Fanout distinct peers (excluding self) from the plane's
// RNG stream.
func (p *Plane) pickPeers(self int) []int {
	n := len(p.reps) - 1
	k := p.cfg.Fanout
	if k > n {
		k = n
	}
	// Partial Fisher–Yates over the peer set.
	pool := make([]int, 0, n)
	for i := range p.reps {
		if i != self {
			pool = append(pool, i)
		}
	}
	for j := 0; j < k; j++ {
		swap := j + p.rng.Intn(n-j)
		pool[j], pool[swap] = pool[swap], pool[j]
	}
	return pool[:k]
}

// minVersion returns the lowest view version any replica holds for region r.
func (p *Plane) minVersion(r int) uint64 {
	min := p.reps[0].view[r].Version
	for _, rep := range p.reps[1:] {
		if v := rep.view[r].Version; v < min {
			min = v
		}
	}
	return min
}

// settleUpdates retires every pending version bump that all replicas have
// now seen, folding its propagation lag into the convergence stats.
func (p *Plane) settleUpdates(now simclock.Time) {
	kept := p.pending[:0]
	for _, u := range p.pending {
		if p.minVersion(u.region) >= u.version {
			p.lagSum += now.Sub(u.at).Seconds()
			p.lagCount++
			continue
		}
		kept = append(kept, u)
	}
	p.pending = kept
}

// MaxDivergence returns the current maximum, over regions, of the version
// distance between the owner's view and the most stale replica's view — 0
// when every replica agrees, growing by one per probe for a region whose
// owner is cut off from some replica.
func (p *Plane) MaxDivergence() uint64 {
	var max uint64
	for r := range p.regions {
		d := p.reps[p.owner(r)].view[r].Version - p.minVersion(r)
		if d > max {
			max = d
		}
	}
	return max
}

// Stats returns the plane's protocol and convergence counters.
func (p *Plane) Stats() Stats {
	s := Stats{
		Replicas:      len(p.reps),
		Rounds:        p.rounds,
		Sent:          p.sent,
		Delivered:     p.deliv,
		Dropped:       p.dropped,
		Converged:     p.lagCount,
		Pending:       len(p.pending),
		MaxDivergence: p.MaxDivergence(),
	}
	if p.lagCount > 0 {
		s.MeanLagSeconds = p.lagSum / float64(p.lagCount)
	}
	return s
}
