package gossip

import (
	"reflect"
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/gslb"
	"repro/internal/simclock"
)

// telSource is a scriptable telemetry sampler: healthy full-capacity regions
// unless a region is marked down.
type telSource struct {
	regions []string
	down    map[int]bool
}

func (ts *telSource) sample(i int) cloudsim.Telemetry {
	tel := cloudsim.Telemetry{
		Region:         ts.regions[i],
		ActiveVMs:      4,
		BaselineActive: 4,
		Capacity:       100,
	}
	if ts.down[i] {
		tel.ActiveVMs = 0
		tel.Capacity = 0
	}
	return tel
}

func newTestPlane(t *testing.T, cfg Config, gcfg gslb.Config, ts *telSource) *Plane {
	t.Helper()
	p, err := New(cfg, gcfg, ts.regions, 42, ts.sample)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

func threeRegions() *telSource {
	return &telSource{regions: []string{"region1", "region2", "region3"}, down: map[int]bool{}}
}

// run advances the plane through n probe+gossip rounds, one per simulated
// interval (probe first, then gossip, matching the acm wiring's two tickers
// firing at the same cadence for the test).
func run(p *Plane, start simclock.Time, n int, step simclock.Duration) simclock.Time {
	now := start
	for i := 0; i < n; i++ {
		now = now.Add(step)
		p.ProbeTick(now)
		p.GossipTick(now)
	}
	return now
}

func TestGossipConvergesWithoutFaults(t *testing.T) {
	ts := threeRegions()
	p := newTestPlane(t, Config{Replicas: 3}, gslb.Config{Policy: gslb.PolicyLeastLoad}, ts)
	run(p, 0, 12, 10*simclock.Second)
	// With fanout 1 and no loss, a dozen rounds are plenty for every bump to
	// settle within a round or two; divergence must be bounded by the rounds
	// still in flight, and most updates must have converged.
	st := p.Stats()
	if st.Converged == 0 {
		t.Fatalf("no updates converged: %+v", st)
	}
	if st.MaxDivergence > 3 {
		t.Fatalf("divergence %d too high for a connected plane: %+v", st.MaxDivergence, st)
	}
	if st.MeanLagSeconds <= 0 {
		t.Fatalf("expected positive mean lag, got %v", st.MeanLagSeconds)
	}
	if st.Sent == 0 || st.Delivered == 0 || st.Dropped != 0 {
		t.Fatalf("unexpected message counters: %+v", st)
	}
}

func TestGossipDeterministicReplay(t *testing.T) {
	type trace struct {
		stats Stats
		views [][]gslb.HealthState
	}
	collect := func() trace {
		ts := threeRegions()
		p := newTestPlane(t, Config{Replicas: 3, Loss: 0.2, Delay: 3 * simclock.Second, Fanout: 2},
			gslb.Config{Policy: gslb.PolicyLeastLoad}, ts)
		now := simclock.Time(0)
		for i := 0; i < 20; i++ {
			now = now.Add(10 * simclock.Second)
			if i == 5 {
				ts.down[0] = true
			}
			if i == 12 {
				ts.down[0] = false
			}
			p.ProbeTick(now)
			p.GossipTick(now)
		}
		tr := trace{stats: p.Stats()}
		for i := 0; i < p.NumReplicas(); i++ {
			tr.views = append(tr.views, p.ReplicaStates(i))
		}
		return tr
	}
	a, b := collect(), collect()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay diverged:\n%+v\nvs\n%+v", a, b)
	}
}

func TestGossipAdoptsOnlyNewerVersions(t *testing.T) {
	ts := threeRegions()
	p := newTestPlane(t, Config{Replicas: 3}, gslb.Config{Policy: gslb.PolicyLeastLoad}, ts)
	// Owner of region0 is replica 0.  Probe twice so versions move.
	run(p, 0, 2, 10*simclock.Second)
	own := p.reps[0].view[0]
	// A stale (version 1) summary claiming region0 drained must not override
	// the owner's newer view, on the owner or on a replica that has already
	// adopted the newer version.
	stale := []Summary{{Version: 1, State: gslb.Drained, Capacity: 0}, {}, {}}
	p.adopt(0, stale)
	if got := p.reps[0].view[0]; got != own {
		t.Fatalf("owner adopted stale summary: %+v -> %+v", own, got)
	}
	p.adopt(1, stale)
	if got := p.reps[1].view[0]; got.Version < 2 || got.State == gslb.Drained {
		t.Fatalf("replica 1 regressed to stale summary: %+v", got)
	}
	// A genuinely newer summary is adopted by a non-owner.
	newer := []Summary{{Version: own.Version + 5, State: gslb.Drained, Capacity: 0}, {}, {}}
	p.adopt(1, newer)
	if got := p.reps[1].view[0]; got.Version != own.Version+5 || got.State != gslb.Drained {
		t.Fatalf("replica 1 refused newer summary: %+v", got)
	}
}

func TestGossipPartitionSplitBrainAndHeal(t *testing.T) {
	ts := threeRegions()
	p := newTestPlane(t, Config{Replicas: 3}, gslb.Config{
		Policy:     gslb.PolicyFailover,
		Preference: []string{"region1", "region2", "region3"},
	}, ts)
	step := 10 * simclock.Second
	now := run(p, 0, 3, step) // everyone converged, all healthy

	// Cut replica 2 off, then black out region1 (owned by replica 0).
	p.Isolate([]int{2})
	if !p.Partitioned() {
		t.Fatalf("Isolate did not mark the plane partitioned")
	}
	ts.down[0] = true
	now = run(p, now, 6, step)

	// The majority side drained region1 and fails over; the isolated
	// replica still routes lane traffic to the blacked-out region1.
	if s := p.ReplicaStates(0)[0]; s != gslb.Drained {
		t.Fatalf("owner view of region1 = %v, want drained", s)
	}
	if s := p.ReplicaStates(2)[0]; s != gslb.Healthy {
		t.Fatalf("isolated replica view of region1 = %v, want stale healthy", s)
	}
	rng := simclock.NewRNG(1)
	var rr uint64
	if got := p.Table(2).Route(rng, &rr); got != 0 {
		t.Fatalf("isolated replica routes to region %d, want stale region 0", got)
	}
	if got := p.Table(0).Route(rng, &rr); got != 1 {
		t.Fatalf("majority replica routes to region %d, want failover region 1", got)
	}
	if d := p.MaxDivergence(); d < 4 {
		t.Fatalf("divergence %d during partition, want >= 4", d)
	}
	dropped := p.Stats().Dropped
	if dropped == 0 {
		t.Fatalf("no messages dropped across the cut")
	}

	// Heal: the isolated replica catches up and fails over too.
	p.Heal()
	now = run(p, now, 3, step)
	if s := p.ReplicaStates(2)[0]; s != gslb.Drained {
		t.Fatalf("after heal, replica 2 view of region1 = %v, want drained", s)
	}
	if got := p.Table(2).Route(rng, &rr); got != 1 {
		t.Fatalf("after heal, replica 2 routes to region %d, want 1", got)
	}
	if d := p.MaxDivergence(); d > 2 {
		t.Fatalf("divergence %d after heal, want near 0", d)
	}
	_ = now
}

func TestGossipLossDropsMessages(t *testing.T) {
	ts := threeRegions()
	p := newTestPlane(t, Config{Replicas: 3, Loss: 0.5}, gslb.Config{Policy: gslb.PolicyLeastLoad}, ts)
	run(p, 0, 10, 10*simclock.Second)
	st := p.Stats()
	if st.Dropped == 0 || st.Delivered == 0 {
		t.Fatalf("want both drops and deliveries under 50%% loss: %+v", st)
	}
	if st.Sent != st.Delivered+st.Dropped+inFlight(p) {
		t.Fatalf("message conservation violated: %+v (in flight %d)", st, inFlight(p))
	}
}

func inFlight(p *Plane) uint64 {
	var n uint64
	for src := range p.lanes {
		for dst := range p.lanes[src] {
			n += uint64(len(p.lanes[src][dst]))
		}
	}
	return n
}

func TestGossipSingleReplicaActsAsCentral(t *testing.T) {
	ts := threeRegions()
	p := newTestPlane(t, Config{Replicas: 1}, gslb.Config{Policy: gslb.PolicyLeastLoad}, ts)
	run(p, 0, 5, 10*simclock.Second)
	st := p.Stats()
	if st.Sent != 0 {
		t.Fatalf("single replica should not gossip: %+v", st)
	}
	if st.MaxDivergence != 0 || st.Pending != 0 {
		t.Fatalf("single replica should converge instantly: %+v", st)
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	ts := threeRegions()
	ok := gslb.Config{Policy: gslb.PolicyLeastLoad}
	cases := []struct {
		name string
		cfg  Config
		gcfg gslb.Config
	}{
		{"zero replicas", Config{}, ok},
		{"loss out of range", Config{Replicas: 3, Loss: 1}, ok},
		{"negative fanout", Config{Replicas: 3, Fanout: -1}, ok},
		{"no policy", Config{Replicas: 3}, gslb.Config{}},
		{"latency policy", Config{Replicas: 3}, gslb.Config{Policy: gslb.PolicyLatency}},
		{"rtt matrix", Config{Replicas: 3}, gslb.Config{Policy: gslb.PolicyLeastLoad, RTT: map[string][]float64{"global": {1, 2, 3}}}},
		{"bad weights", Config{Replicas: 3}, gslb.Config{Policy: gslb.PolicyStatic, Weights: []float64{1}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg, tc.gcfg, ts.regions, 1, ts.sample); err == nil {
			t.Errorf("%s: New accepted an invalid config", tc.name)
		}
	}
}

func TestGossipDelayPostponesDelivery(t *testing.T) {
	ts := threeRegions()
	// Delay of 1.5 intervals: a push sent at round k is not due at round k+1
	// (10 s later) and arrives at round k+2.
	p := newTestPlane(t, Config{Replicas: 2, Delay: 15 * simclock.Second}, gslb.Config{Policy: gslb.PolicyLeastLoad}, ts)
	step := 10 * simclock.Second
	now := simclock.Time(0).Add(step)
	p.ProbeTick(now)
	p.GossipTick(now) // sends, nothing due yet
	if got := p.Stats().Delivered; got != 0 {
		t.Fatalf("delivered %d before the delay elapsed", got)
	}
	now = now.Add(step)
	p.GossipTick(now) // due at now >= sentAt+15s? 20 >= 25 is false
	if got := p.Stats().Delivered; got != 0 {
		t.Fatalf("delivered %d one round early", got)
	}
	now = now.Add(step)
	p.GossipTick(now) // 30 >= 25: delivered
	if got := p.Stats().Delivered; got == 0 {
		t.Fatalf("nothing delivered after the delay elapsed")
	}
}
