package experiment

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/simclock"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracing"
	"repro/internal/workload"
)

// Result is the outcome of running one scenario under one policy: the raw
// time series (for regenerating the figures) plus the summary metrics used to
// assess the qualitative claims of Section VI-B.
type Result struct {
	// Scenario echoes the scenario that was run.
	Scenario Scenario
	// PolicyKey and PolicyLabel identify the policy under test.
	PolicyKey   string
	PolicyLabel string

	// Recorder holds the raw series: "rmttf", "fraction", "response_time",
	// "active_vms", "lambda", "cross_region".
	Recorder *trace.Recorder

	// RMTTFConvergence judges whether the per-region RMTTFs converged to a
	// common value (the paper's primary question).
	RMTTFConvergence stats.ConvergenceReport
	// FractionOscillation is the mean oscillation index of the f_i series
	// over the steady-state tail (stability of the workload fractions).
	FractionOscillation float64
	// FractionDirectionChanges is the mean number of direction changes of the
	// f_i series in the tail — the "many redirections of the request flow"
	// overhead the paper attributes to Policy 1 with three regions.
	FractionDirectionChanges float64

	// MeanResponseTime is the lifetime mean client response time (seconds).
	MeanResponseTime float64
	// TailResponseTime is the mean of the response-time series over the
	// steady-state tail (seconds).
	TailResponseTime float64
	// SLAViolationRatio is the fraction of completed requests slower than the
	// 1-second SLA.
	SLAViolationRatio float64
	// SuccessRatio is completed / issued requests.
	SuccessRatio float64

	// ForwardedFraction is the fraction of requests forwarded across regions.
	ForwardedFraction float64
	// GSLBRouted counts the requests the global traffic director routed to
	// each region, keyed by region name (nil when the scenario has no GSLB).
	GSLBRouted map[string]uint64
	// GSLBTransitions is the director's health-transition log, one line per
	// state change in probe order — the drain/failover/failback record.
	GSLBTransitions []string
	// Gossip is the replicated health plane's protocol and convergence
	// counters (nil unless the scenario sets GossipReplicas).
	Gossip *gossip.Stats
	// Eras is the number of completed control eras.
	Eras uint64
	// ProactiveRejuvenations, ReactiveRecoveries and Crashes aggregate the
	// dependability counters over all regions.
	ProactiveRejuvenations uint64
	ReactiveRecoveries     uint64
	Crashes                uint64
	// FinalFractions are the fractions installed at the end of the run.
	FinalFractions []float64
}

// Run executes the scenario under the given policy — through the backend
// seam — and collects the result.
func Run(sc Scenario, np NamedPolicy) (*Result, error) {
	res, _, err := RunBackend(sc, np)
	return res, err
}

// RunBackend is Run for callers that also need the finished backend: the
// post-run surfaces the summary does not carry (the span tracer and the
// flight recorder for trace export, the registry for a final scrape) stay
// reachable through it.
func RunBackend(sc Scenario, np NamedPolicy) (*Result, backend.Backend, error) {
	sc = sc.withDefaults()
	b, err := NewBackend(sc, np)
	if err != nil {
		return nil, nil, err
	}
	if err := b.Run(sc.Horizon); err != nil {
		return nil, nil, fmt.Errorf("experiment: running %s/%s: %w", sc.Name, np.Key, err)
	}
	return summarize(sc, np, b), b, nil
}

// TraceArtifacts returns the span tracer and the flight recorder of a
// finished backend, for Chrome-trace export and utilization reports.  Both
// are nil unless the backend is the simulator with the corresponding plane
// enabled (TraceSampleFraction > 0, FlightRecorder true).
func TraceArtifacts(b backend.Backend) (*tracing.Tracer, *simclock.FlightRecorder) {
	sim, ok := b.(*backend.Simulated)
	if !ok {
		return nil, nil
	}
	return sim.Manager().Tracer(), sim.Manager().FlightRecorder()
}

// RunAllPolicies runs the scenario under the paper's three policies — one
// worker per available CPU — and returns the results keyed by policy key.
func RunAllPolicies(sc Scenario) (map[string]*Result, error) {
	return RunPolicies(context.Background(), sc, Policies(), Options{})
}

// RunPolicies runs the scenario under each of the given policies on the
// parallel runner and returns the results keyed by policy key.  The first
// per-job error aborts the whole comparison, matching the sequential
// behaviour callers relied on.
func RunPolicies(ctx context.Context, sc Scenario, policies []NamedPolicy, opt Options) (map[string]*Result, error) {
	jobs := make([]Job, len(policies))
	for i, np := range policies {
		jobs[i] = Job{Index: i, Scenario: sc, Policy: np}
	}
	results, err := RunParallel(ctx, jobs, opt)
	if err != nil {
		return nil, err
	}
	out := map[string]*Result{}
	for _, jr := range results {
		if jr.Err != nil {
			return nil, jr.Err
		}
		out[jr.Job.Policy.Key] = jr.Result
	}
	return out, nil
}

// summarize extracts the summary metrics from a finished run, reading only
// the Backend interface — the recorder series, the merged workload metrics
// and the plain-data Results snapshot.
func summarize(sc Scenario, np NamedPolicy, b backend.Backend) *Result {
	rec := b.Recorder()
	met := b.Metrics()
	final := b.Results()

	res := &Result{
		Scenario:       sc,
		PolicyKey:      np.Key,
		PolicyLabel:    np.Label,
		Recorder:       rec,
		Eras:           final.Eras,
		FinalFractions: final.FinalFractions,
	}

	rmttfSet := rec.Set("rmttf")
	res.RMTTFConvergence = rmttfSet.Analyze(sc.TailFraction, sc.ConvergenceTolerance)

	fractionSet := rec.Set("fraction")
	osc, dirs := 0.0, 0.0
	if n := len(fractionSet.Series); n > 0 {
		for _, s := range fractionSet.Series {
			osc += s.OscillationIndex(sc.TailFraction)
			dirs += float64(s.DirectionChanges(sc.TailFraction))
		}
		osc /= float64(n)
		dirs /= float64(n)
	}
	res.FractionOscillation = osc
	res.FractionDirectionChanges = dirs

	res.MeanResponseTime = met.MeanResponseTime("")
	res.TailResponseTime = rec.Series("response_time", "all_clients").TailMean(sc.TailFraction)
	// SLA violations are counted on latency samples, which cohort batches do
	// not produce — so the ratio divides by the sample count, not the weighted
	// completion count (identical whenever no cohorts run).
	if samples := met.ResponseSamples(""); samples > 0 {
		res.SLAViolationRatio = float64(met.SLAViolations("")) / float64(samples)
	}
	res.SuccessRatio = met.SuccessRatio("")

	if total := final.ForwardedRequests + final.LocalRequests; total > 0 {
		res.ForwardedFraction = float64(final.ForwardedRequests) / float64(total)
	}
	if final.GSLB != nil {
		res.GSLBRouted = final.GSLB.Routed
		res.GSLBTransitions = final.GSLB.Transitions
	}
	res.Gossip = final.Gossip
	for _, s := range final.VMCStats {
		res.ProactiveRejuvenations += s.ProactiveRejuvenations
		res.ReactiveRecoveries += s.ReactiveRecoveries
	}
	for _, s := range final.RegionStats {
		res.Crashes += s.Crashes
	}
	return res
}

// Claims captures the qualitative claims of Section VI-B as booleans so that
// tests (and EXPERIMENTS.md) can state unambiguously whether the reproduction
// shows the same shape as the paper.  The formulations follow the paper's
// conclusions: Policy 2 "has been proven to show the fastest convergence and
// the highest stability", Policy 1 does not make the RMTTFs of heterogeneous
// regions converge, Policy 3 converges but can suffer from its intrinsic
// randomness, and the response time stays below the 1-second threshold.
type Claims struct {
	// Policy1DoesNotConverge: with Policy 1 the RMTTFs of heterogeneous
	// regions stabilise at different values (Figure 3) or keep oscillating
	// (Figure 4).
	Policy1DoesNotConverge bool
	// Policy2Converges: with Policy 2 the RMTTFs converge.
	Policy2Converges bool
	// Policy3Converges: with Policy 3 the RMTTFs converge.
	Policy3Converges bool
	// Policy2TightestConvergence: Policy 2 ends with the smallest
	// steady-state RMTTF spread of the three policies ("the most stable
	// results").
	Policy2TightestConvergence bool
	// Policy2AtLeastAsFastAsPolicy3: Policy 2's convergence time is no worse
	// than Policy 3's (within a 25% sampling slack — the convergence-time
	// estimate is quantised by the control-era granularity).
	Policy2AtLeastAsFastAsPolicy3 bool
	// AllPoliciesMeetSLA: the mean client response time stays below the
	// 1-second threshold under every policy.
	AllPoliciesMeetSLA bool
}

// AllHold reports whether every claim reproduced.
func (c Claims) AllHold() bool {
	return c.Policy1DoesNotConverge && c.Policy2Converges && c.Policy3Converges &&
		c.Policy2TightestConvergence && c.Policy2AtLeastAsFastAsPolicy3 && c.AllPoliciesMeetSLA
}

// String renders the claims as a checklist.
func (c Claims) String() string {
	row := func(label string, ok bool) string {
		mark := "FAIL"
		if ok {
			mark = "ok"
		}
		return fmt.Sprintf("  [%-4s] %s\n", mark, label)
	}
	var b strings.Builder
	b.WriteString(row("Policy 1 does not converge (heterogeneous regions)", c.Policy1DoesNotConverge))
	b.WriteString(row("Policy 2 converges", c.Policy2Converges))
	b.WriteString(row("Policy 3 converges", c.Policy3Converges))
	b.WriteString(row("Policy 2 shows the tightest RMTTF convergence", c.Policy2TightestConvergence))
	b.WriteString(row("Policy 2 converges at least as fast as Policy 3", c.Policy2AtLeastAsFastAsPolicy3))
	b.WriteString(row("mean response time below the 1 s SLA for all policies", c.AllPoliciesMeetSLA))
	return b.String()
}

// EvaluateClaims derives the Section VI-B claims from the per-policy results
// of one scenario.
func EvaluateClaims(results map[string]*Result) Claims {
	var c Claims
	p1, ok1 := results["policy1"]
	p2, ok2 := results["policy2"]
	p3, ok3 := results["policy3"]
	if !ok1 || !ok2 || !ok3 {
		return c
	}
	c.Policy1DoesNotConverge = !p1.RMTTFConvergence.Converged
	c.Policy2Converges = p2.RMTTFConvergence.Converged
	c.Policy3Converges = p3.RMTTFConvergence.Converged
	c.Policy2TightestConvergence = p2.RMTTFConvergence.RelativeSpread <= p1.RMTTFConvergence.RelativeSpread &&
		p2.RMTTFConvergence.RelativeSpread <= p3.RMTTFConvergence.RelativeSpread
	c.Policy2AtLeastAsFastAsPolicy3 = p2.RMTTFConvergence.Converged &&
		p2.RMTTFConvergence.ConvergenceTime <= 1.25*p3.RMTTFConvergence.ConvergenceTime
	c.AllPoliciesMeetSLA = p1.MeanResponseTime < workload.SLAThresholdSeconds &&
		p2.MeanResponseTime < workload.SLAThresholdSeconds &&
		p3.MeanResponseTime < workload.SLAThresholdSeconds
	return c
}

// SummaryTable renders a per-policy comparison table for one scenario.
func SummaryTable(results map[string]*Result) string {
	keys := make([]string, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %9s %9s %11s %12s %10s %10s %8s %8s\n",
		"policy", "converged", "spread", "convTime", "fOscillation", "meanRT(s)", "slaViol", "rejuv", "crashes")
	for _, k := range keys {
		r := results[k]
		conv := "no"
		if r.RMTTFConvergence.Converged {
			conv = "yes"
		}
		convTime := "never"
		if r.RMTTFConvergence.Converged {
			if math.IsInf(r.RMTTFConvergence.ConvergenceTime, 1) {
				convTime = "n/a"
			} else {
				convTime = fmt.Sprintf("%.0fs", r.RMTTFConvergence.ConvergenceTime)
			}
		}
		fmt.Fprintf(&b, "%-10s %9s %9.3f %11s %12.4f %10.3f %10.4f %8d %8d\n",
			k, conv, r.RMTTFConvergence.RelativeSpread, convTime,
			r.FractionOscillation, r.MeanResponseTime, r.SLAViolationRatio,
			r.ProactiveRejuvenations, r.Crashes)
	}
	return b.String()
}

// FigureReport renders, for one result, the ASCII versions of the three rows
// of the paper's figures: RMTTF per region, workload fraction per region, and
// the client response time.
func FigureReport(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n", r.Scenario.Name, r.PolicyLabel)
	b.WriteString(trace.ASCIIPlot(r.Recorder.Set("rmttf"), trace.PlotOptions{
		Title: "RMTTF per region (s)", Height: 12, Width: 72, YLabel: "seconds"}))
	b.WriteString(trace.ASCIIPlot(r.Recorder.Set("fraction"), trace.PlotOptions{
		Title: "workload fraction f_i per region", Height: 12, Width: 72, YLabel: "fraction"}))
	b.WriteString(trace.ASCIIPlot(r.Recorder.Set("response_time"), trace.PlotOptions{
		Title: "client response time (s)", Height: 10, Width: 72, YLabel: "seconds"}))
	fmt.Fprintf(&b, "summary: converged=%v spread=%.3f fractionOsc=%.4f meanRT=%.3fs slaViol=%.4f successRatio=%.4f\n",
		r.RMTTFConvergence.Converged, r.RMTTFConvergence.RelativeSpread,
		r.FractionOscillation, r.MeanResponseTime, r.SLAViolationRatio, r.SuccessRatio)
	return b.String()
}

// Interface assertion helpers for the core policies used in reports.
var _ core.Policy = core.SensibleRouting{}
