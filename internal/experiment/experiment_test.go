package experiment

import (
	"math"
	"strings"
	"testing"

	"repro/internal/acm"
	"repro/internal/cloudsim"
	"repro/internal/core"
	"repro/internal/simclock"
	"repro/internal/stats"
	"repro/internal/workload"
)

// quickScenario is a reduced two-region scenario for fast unit tests: fewer
// clients and a short horizon, but the same structure as Figure 3.
func quickScenario(seed uint64) Scenario {
	return Scenario{
		Name: "quick",
		Seed: seed,
		Regions: []acm.RegionSetup{
			{Region: cloudsim.PaperRegionConfig(cloudsim.PaperRegion1), Clients: 150, Mix: workload.BrowsingMix()},
			{Region: cloudsim.PaperRegionConfig(cloudsim.PaperRegion3), Clients: 64, Mix: workload.BrowsingMix()},
		},
		Horizon:         40 * simclock.Minute,
		ControlInterval: 60 * simclock.Second,
	}.withDefaults()
}

func TestScenarioDefaults(t *testing.T) {
	sc := Scenario{Name: "x", Regions: Figure3Scenario(1).Regions}.withDefaults()
	if sc.Horizon != 2*simclock.Hour || sc.ControlInterval != 60*simclock.Second {
		t.Fatalf("unexpected defaults: %+v", sc)
	}
	if sc.Beta != 0.5 || sc.TailFraction != 0.4 || sc.ConvergenceTolerance != 0.3 {
		t.Fatalf("unexpected defaults: %+v", sc)
	}
	if sc.Predictor != acm.PredictorOracle {
		t.Fatalf("default predictor should be the oracle")
	}
}

func TestPaperScenarios(t *testing.T) {
	f3 := Figure3Scenario(42)
	if len(f3.Regions) != 2 {
		t.Fatalf("figure 3 uses two regions, got %d", len(f3.Regions))
	}
	if got := f3.RegionNames(); got[0] != "region1" || got[1] != "region3" {
		t.Fatalf("figure 3 regions = %v, want region1 and region3 (Ireland + Munich)", got)
	}
	f4 := Figure4Scenario(42)
	if len(f4.Regions) != 3 {
		t.Fatalf("figure 4 uses three regions, got %d", len(f4.Regions))
	}
	// Client populations must differ significantly between regions and stay
	// within the paper's [16, 512] range.
	for _, sc := range []Scenario{f3, f4} {
		counts := map[int]bool{}
		for _, r := range sc.Regions {
			if r.Clients < 16 || r.Clients > 512 {
				t.Errorf("%s: %d clients outside the paper's [16,512] range", sc.Name, r.Clients)
			}
			counts[r.Clients] = true
		}
		if len(counts) < 2 {
			t.Errorf("%s: client populations should differ between regions", sc.Name)
		}
		if sc.TotalClients() <= 0 {
			t.Errorf("%s: total clients must be positive", sc.Name)
		}
	}
	hom := HomogeneousScenario(42)
	if len(hom.Regions) != 3 {
		t.Fatalf("homogeneous scenario should have three regions")
	}
	first := hom.Regions[0]
	for _, r := range hom.Regions[1:] {
		if r.Region.Type.Name != first.Region.Type.Name || r.Clients != first.Clients {
			t.Fatalf("homogeneous scenario regions should be identical")
		}
	}
}

func TestPoliciesAndPolicyByKey(t *testing.T) {
	ps := Policies()
	if len(ps) != 3 {
		t.Fatalf("the paper evaluates three policies, got %d", len(ps))
	}
	if ps[0].Key != "policy1" || ps[1].Key != "policy2" || ps[2].Key != "policy3" {
		t.Fatalf("policy order wrong: %+v", ps)
	}
	for _, key := range []string{"policy1", "policy2", "policy3", "uniform"} {
		np, err := PolicyByKey(key)
		if err != nil {
			t.Errorf("PolicyByKey(%q): %v", key, err)
			continue
		}
		if np.Policy == nil {
			t.Errorf("PolicyByKey(%q) returned nil policy", key)
		}
	}
	if _, err := PolicyByKey("nope"); err == nil {
		t.Fatalf("unknown key should fail")
	}
}

func TestRunProducesCompleteResult(t *testing.T) {
	res, err := Run(quickScenario(3), NamedPolicy{Key: "policy2", Label: "Policy 2", Policy: core.AvailableResources{}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.PolicyKey != "policy2" || res.Recorder == nil {
		t.Fatalf("result incomplete: %+v", res)
	}
	if res.Eras < 30 {
		t.Fatalf("eras = %d, want ~40", res.Eras)
	}
	if res.MeanResponseTime <= 0 || res.MeanResponseTime > 1 {
		t.Fatalf("mean response time = %v, want positive and under the SLA", res.MeanResponseTime)
	}
	if res.SuccessRatio < 0.95 {
		t.Fatalf("success ratio = %v", res.SuccessRatio)
	}
	if len(res.FinalFractions) != 2 {
		t.Fatalf("final fractions = %v", res.FinalFractions)
	}
	if s := res.FinalFractions[0] + res.FinalFractions[1]; math.Abs(s-1) > 1e-9 {
		t.Fatalf("final fractions sum to %v", s)
	}
	if res.Recorder.Series("rmttf", "region1").Len() == 0 {
		t.Fatalf("rmttf series missing")
	}
	if res.TailResponseTime <= 0 {
		t.Fatalf("tail response time missing")
	}
	// Rendering helpers work on a real result.
	if rep := FigureReport(res); !strings.Contains(rep, "RMTTF per region") || !strings.Contains(rep, "workload fraction") {
		t.Fatalf("figure report incomplete:\n%s", rep)
	}
}

func TestRunRejectsBrokenScenario(t *testing.T) {
	sc := quickScenario(1)
	sc.Regions = nil
	if _, err := Run(sc, NamedPolicy{Key: "p", Label: "p", Policy: core.Uniform{}}); err == nil {
		t.Fatalf("a scenario with no regions should fail")
	}
}

func TestEvaluateClaimsLogic(t *testing.T) {
	mk := func(converged bool, convTime, spread, rt float64) *Result {
		return &Result{
			RMTTFConvergence: stats.ConvergenceReport{
				Converged:       converged,
				ConvergenceTime: convTime,
				RelativeSpread:  spread,
			},
			MeanResponseTime: rt,
		}
	}
	// The expected paper shape.
	good := map[string]*Result{
		"policy1": mk(false, math.Inf(1), 0.8, 0.3),
		"policy2": mk(true, 1200, 0.01, 0.25),
		"policy3": mk(true, 2400, 0.06, 0.28),
	}
	c := EvaluateClaims(good)
	if !c.AllHold() {
		t.Fatalf("claims should all hold for the expected shape:\n%s", c)
	}
	if !strings.Contains(c.String(), "ok") {
		t.Fatalf("claims string should mark passing rows")
	}

	// Policy 2 much slower than policy 3: the speed claim fails.
	slow := map[string]*Result{
		"policy1": mk(false, math.Inf(1), 0.8, 0.3),
		"policy2": mk(true, 4000, 0.01, 0.25),
		"policy3": mk(true, 1000, 0.06, 0.28),
	}
	if EvaluateClaims(slow).Policy2AtLeastAsFastAsPolicy3 {
		t.Fatalf("speed claim should fail when policy 3 converges much earlier")
	}
	// Policy 2 with a looser steady-state spread than policy 3: the tightest-
	// convergence claim fails.
	loose := map[string]*Result{
		"policy1": mk(false, math.Inf(1), 0.8, 0.3),
		"policy2": mk(true, 1200, 0.2, 0.25),
		"policy3": mk(true, 2400, 0.05, 0.28),
	}
	if EvaluateClaims(loose).Policy2TightestConvergence {
		t.Fatalf("tightest-convergence claim should fail when policy 3 ends tighter")
	}
	// SLA violated by one policy.
	hot := map[string]*Result{
		"policy1": mk(false, math.Inf(1), 0.8, 1.8),
		"policy2": mk(true, 1200, 0.01, 0.25),
		"policy3": mk(true, 2400, 0.06, 0.28),
	}
	if EvaluateClaims(hot).AllPoliciesMeetSLA {
		t.Fatalf("SLA claim should fail when a policy exceeds 1 s")
	}
	// Missing policy results yield all-false claims.
	if EvaluateClaims(map[string]*Result{"policy1": mk(false, 0, 0, 0)}).AllHold() {
		t.Fatalf("incomplete result sets cannot satisfy the claims")
	}
}

func TestSummaryAndAblationTables(t *testing.T) {
	res := map[string]*Result{
		"policy1": {PolicyKey: "policy1", RMTTFConvergence: stats.ConvergenceReport{Converged: false, RelativeSpread: 0.7, ConvergenceTime: math.Inf(1)}, FractionOscillation: 0.06, MeanResponseTime: 0.3},
		"policy2": {PolicyKey: "policy2", RMTTFConvergence: stats.ConvergenceReport{Converged: true, RelativeSpread: 0.05, ConvergenceTime: 1300}, FractionOscillation: 0.03, MeanResponseTime: 0.2},
	}
	tbl := SummaryTable(res)
	if !strings.Contains(tbl, "policy1") || !strings.Contains(tbl, "never") || !strings.Contains(tbl, "1300s") {
		t.Fatalf("summary table incomplete:\n%s", tbl)
	}
	pts := []AblationPoint{
		{Parameter: "beta", Value: 0.2, Label: "β=0.20", Converged: true, ConvergenceTime: 900, Spread: 0.1},
		{Parameter: "beta", Value: 0.8, Converged: false, ConvergenceTime: math.Inf(1), Spread: 0.5},
	}
	atbl := AblationTable(pts)
	if !strings.Contains(atbl, "β=0.20") || !strings.Contains(atbl, "beta=0.80") || !strings.Contains(atbl, "never") {
		t.Fatalf("ablation table incomplete:\n%s", atbl)
	}
}

func TestBetaSweepAndKSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps run multiple simulations")
	}
	sc := quickScenario(5)
	sc.Horizon = 25 * simclock.Minute
	pts, err := BetaSweep(sc, NamedPolicy{Key: "policy2", Label: "Policy 2", Policy: core.AvailableResources{}}, []float64{0.2, 0.8})
	if err != nil {
		t.Fatalf("BetaSweep: %v", err)
	}
	if len(pts) != 2 || pts[0].Value != 0.2 || pts[1].Value != 0.8 {
		t.Fatalf("unexpected sweep points: %+v", pts)
	}
	for _, p := range pts {
		if p.MeanResponseTime <= 0 {
			t.Fatalf("sweep point missing metrics: %+v", p)
		}
	}
	kpts, err := ExplorationKSweep(sc, []float64{1.0})
	if err != nil {
		t.Fatalf("ExplorationKSweep: %v", err)
	}
	if len(kpts) != 1 || kpts[0].Parameter != "k" {
		t.Fatalf("unexpected k sweep points: %+v", kpts)
	}
}

func TestBaselineComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline comparison runs multiple simulations")
	}
	sc := quickScenario(9)
	sc.Horizon = 25 * simclock.Minute
	res, err := BaselineComparison(sc)
	if err != nil {
		t.Fatalf("BaselineComparison: %v", err)
	}
	for _, key := range []string{"policy2", "uniform", "static"} {
		if _, ok := res[key]; !ok {
			t.Fatalf("baseline comparison missing %q", key)
		}
	}
	// The uniform baseline ignores heterogeneity, so the small region ends up
	// with a worse (lower) RMTTF spread than under policy 2.
	if res["uniform"].RMTTFConvergence.RelativeSpread <= res["policy2"].RMTTFConvergence.RelativeSpread {
		t.Fatalf("uniform baseline should show a larger RMTTF spread than policy 2: uniform=%v policy2=%v",
			res["uniform"].RMTTFConvergence.RelativeSpread, res["policy2"].RMTTFConvergence.RelativeSpread)
	}
}

// TestFigure3QualitativeClaims and TestFigure4QualitativeClaims are the E3
// experiment of the reproduction: they assert that the shape reported in
// Section VI-B of the paper emerges from the simulated deployment.
func TestFigure3QualitativeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure-3 scenario is slow")
	}
	sc := Figure3Scenario(42)
	sc.Horizon = 90 * simclock.Minute
	results, err := RunAllPolicies(sc)
	if err != nil {
		t.Fatalf("RunAllPolicies: %v", err)
	}
	claims := EvaluateClaims(results)
	if !claims.Policy1DoesNotConverge {
		t.Errorf("policy 1 should not converge on heterogeneous regions:\n%s", SummaryTable(results))
	}
	if !claims.Policy2Converges {
		t.Errorf("policy 2 should converge:\n%s", SummaryTable(results))
	}
	if !claims.AllPoliciesMeetSLA {
		t.Errorf("mean response time should stay below the 1 s SLA:\n%s", SummaryTable(results))
	}
	if results["policy2"].RMTTFConvergence.RelativeSpread >= results["policy1"].RMTTFConvergence.RelativeSpread {
		t.Errorf("policy 2 should end with a much smaller RMTTF spread than policy 1")
	}
}

func TestFigure4QualitativeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure-4 scenario is slow")
	}
	sc := Figure4Scenario(42)
	sc.Horizon = 90 * simclock.Minute
	results, err := RunAllPolicies(sc)
	if err != nil {
		t.Fatalf("RunAllPolicies: %v", err)
	}
	claims := EvaluateClaims(results)
	if !claims.Policy1DoesNotConverge || !claims.Policy2Converges {
		t.Errorf("three-region claims failed:\n%s\n%s", SummaryTable(results), claims)
	}
	if !claims.AllPoliciesMeetSLA {
		t.Errorf("mean response time should stay below the 1 s SLA:\n%s", SummaryTable(results))
	}
}

func BenchmarkQuickScenarioPolicy2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := quickScenario(uint64(i) + 1)
		sc.Horizon = 20 * simclock.Minute
		if _, err := Run(sc, NamedPolicy{Key: "policy2", Label: "Policy 2", Policy: core.AvailableResources{}}); err != nil {
			b.Fatal(err)
		}
	}
}
