package features

import (
	"bytes"
	"strings"
	"testing"
)

func sampleVector(vm string, t, mem float64) Vector {
	v := NewVector(vm, t)
	v.Set(MemUsedMB, mem)
	v.Set(ThreadCount, 100)
	v.Set(ResponseTimeMs, 50)
	return v
}

func TestVectorGetSetFlatten(t *testing.T) {
	v := NewVector("vm1", 10)
	v.Set(MemUsedMB, 512)
	v.Set(SwapUsedMB, 32)
	if v.Get(MemUsedMB) != 512 {
		t.Fatal("Get should return the stored value")
	}
	if v.Get(HeapMB) != 0 {
		t.Fatal("missing feature should read as 0")
	}
	flat := v.Flatten([]Name{MemUsedMB, SwapUsedMB, HeapMB})
	if flat[0] != 512 || flat[1] != 32 || flat[2] != 0 {
		t.Fatalf("flatten wrong: %v", flat)
	}
}

func TestAllNamesStableAndUnique(t *testing.T) {
	names := AllNames()
	if len(names) < 15 {
		t.Fatalf("expected a wide feature set, got %d", len(names))
	}
	seen := map[Name]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate feature name %s", n)
		}
		seen[n] = true
	}
	// Calling twice must give the same order.
	again := AllNames()
	for i := range names {
		if names[i] != again[i] {
			t.Fatal("AllNames order must be stable")
		}
	}
}

func TestDatasetMatrix(t *testing.T) {
	d := NewDataset([]Name{MemUsedMB, ThreadCount})
	d.Add(Sample{Vector: sampleVector("vm1", 0, 100), RTTFSeconds: 300})
	d.Add(Sample{Vector: sampleVector("vm1", 10, 200), RTTFSeconds: 290})
	x, y := d.Matrix()
	if len(x) != 2 || len(y) != 2 {
		t.Fatalf("matrix size wrong: %d %d", len(x), len(y))
	}
	if x[1][0] != 200 || x[1][1] != 100 {
		t.Fatalf("matrix row wrong: %v", x[1])
	}
	if y[0] != 300 {
		t.Fatalf("label wrong: %f", y[0])
	}
}

func TestDatasetProject(t *testing.T) {
	d := NewDataset(nil)
	d.Add(Sample{Vector: sampleVector("vm1", 0, 100), RTTFSeconds: 10})
	p := d.Project([]Name{MemUsedMB})
	if len(p.Features) != 1 || p.Features[0] != MemUsedMB {
		t.Fatalf("projection features wrong: %v", p.Features)
	}
	x, _ := p.Matrix()
	if len(x[0]) != 1 || x[0][0] != 100 {
		t.Fatalf("projected matrix wrong: %v", x)
	}
}

func TestDatasetSplitByTimePerVM(t *testing.T) {
	d := NewDataset([]Name{MemUsedMB})
	for i := 0; i < 10; i++ {
		d.Add(Sample{Vector: sampleVector("vm1", float64(i), float64(i)), RTTFSeconds: 1})
		d.Add(Sample{Vector: sampleVector("vm2", float64(i), float64(i)), RTTFSeconds: 1})
	}
	train, test := d.Split(0.7)
	if train.Len() != 14 || test.Len() != 6 {
		t.Fatalf("split sizes wrong: %d/%d", train.Len(), test.Len())
	}
	// All training samples for a VM must precede its test samples in time.
	maxTrain := map[string]float64{}
	for _, s := range train.Samples {
		if s.Vector.TimeS > maxTrain[s.Vector.VM] {
			maxTrain[s.Vector.VM] = s.Vector.TimeS
		}
	}
	for _, s := range test.Samples {
		if s.Vector.TimeS <= maxTrain[s.Vector.VM] {
			t.Fatalf("test sample at t=%f precedes training cut %f for %s",
				s.Vector.TimeS, maxTrain[s.Vector.VM], s.Vector.VM)
		}
	}
	// Degenerate fractions are clamped.
	tr, te := d.Split(0)
	if tr.Len() == 0 || te.Len() == 0 {
		t.Fatal("clamped split should produce non-empty parts")
	}
	tr, te = d.Split(1.5)
	if tr.Len() == 0 {
		t.Fatal("clamped split should produce non-empty training set")
	}
	_ = te
}

func TestDatasetVMs(t *testing.T) {
	d := NewDataset(nil)
	d.Add(Sample{Vector: sampleVector("b", 0, 1)})
	d.Add(Sample{Vector: sampleVector("a", 0, 1)})
	d.Add(Sample{Vector: sampleVector("a", 1, 2)})
	vms := d.VMs()
	if len(vms) != 2 || vms[0] != "a" || vms[1] != "b" {
		t.Fatalf("VMs wrong: %v", vms)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := NewDataset([]Name{MemUsedMB, ThreadCount, ResponseTimeMs})
	d.Add(Sample{Vector: sampleVector("vm1", 0, 100), RTTFSeconds: 300})
	d.Add(Sample{Vector: sampleVector("vm2", 5, 150), RTTFSeconds: 250})

	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || len(got.Features) != 3 {
		t.Fatalf("round trip lost data: %d samples, %d features", got.Len(), len(got.Features))
	}
	if got.Samples[1].Vector.VM != "vm2" || got.Samples[1].RTTFSeconds != 250 {
		t.Fatalf("round trip corrupted sample: %+v", got.Samples[1])
	}
	if got.Samples[0].Vector.Get(MemUsedMB) != 100 {
		t.Fatal("feature value lost in round trip")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b,c\n1,2,3\n")); err == nil {
		t.Fatal("bad header should error")
	}
	bad := "time_s,vm,mem_used_mb,rttf_s\nnot_a_number,vm1,1,2\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Fatal("non-numeric time should error")
	}
	bad = "time_s,vm,mem_used_mb,rttf_s\n1,vm1,xx,2\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Fatal("non-numeric feature should error")
	}
	bad = "time_s,vm,mem_used_mb,rttf_s\n1,vm1,1,yy\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Fatal("non-numeric label should error")
	}
}

func TestLabelRTTF(t *testing.T) {
	vectors := []Vector{
		sampleVector("vm1", 10, 1),
		sampleVector("vm1", 50, 2),
		sampleVector("vm1", 150, 3), // after the only failure: dropped
		sampleVector("vm2", 10, 4),
	}
	failures := map[string][]float64{
		"vm1": {100},
		"vm2": {40, 20}, // unsorted on purpose
	}
	samples := LabelRTTF(vectors, failures)
	if len(samples) != 3 {
		t.Fatalf("expected 3 labelled samples, got %d", len(samples))
	}
	if samples[0].RTTFSeconds != 90 {
		t.Fatalf("vm1@10 RTTF should be 90, got %f", samples[0].RTTFSeconds)
	}
	if samples[1].RTTFSeconds != 50 {
		t.Fatalf("vm1@50 RTTF should be 50, got %f", samples[1].RTTFSeconds)
	}
	// vm2@10 should use the earliest later failure (20), not 40.
	if samples[2].RTTFSeconds != 10 {
		t.Fatalf("vm2@10 RTTF should be 10, got %f", samples[2].RTTFSeconds)
	}
}

func TestLabelRTTFNoFailures(t *testing.T) {
	samples := LabelRTTF([]Vector{sampleVector("vm1", 0, 1)}, map[string][]float64{})
	if len(samples) != 0 {
		t.Fatal("samples with no later failure must be dropped")
	}
}
