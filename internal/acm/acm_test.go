package acm

import (
	"math"
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/core"
	"repro/internal/f2pm"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// smallConfig returns a reduced two-region deployment (paper regions 1 and 3)
// that runs quickly enough for unit tests while still exercising every
// subsystem.
func smallConfig(seed uint64, policy core.Policy) Config {
	return Config{
		Seed: seed,
		Regions: []RegionSetup{
			{Region: cloudsim.PaperRegionConfig(cloudsim.PaperRegion1), Clients: 180},
			{Region: cloudsim.PaperRegionConfig(cloudsim.PaperRegion3), Clients: 80},
		},
		Policy:          policy,
		Beta:            0.5,
		ControlInterval: 60 * simclock.Second,
		Predictor:       PredictorOracle,
	}
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(Config{}); err == nil {
		t.Fatalf("a configuration with no regions should be rejected")
	}
	m, err := NewManager(smallConfig(1, core.AvailableResources{}))
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	if len(m.RegionNames()) != 2 || m.RegionNames()[0] != "region1" {
		t.Fatalf("region names = %v", m.RegionNames())
	}
	if m.VMC("region1") == nil || m.VMC("nope") != nil {
		t.Fatalf("VMC lookup broken")
	}
	if m.Loop() == nil || m.Plan() == nil || m.Overlay() == nil || m.Cluster() == nil {
		t.Fatalf("accessors should be non-nil after construction")
	}
	if m.Engine() == nil || m.Recorder() == nil || m.Metrics() == nil {
		t.Fatalf("engine/recorder/metrics accessors should be non-nil")
	}
	if len(m.Regions()) != 2 {
		t.Fatalf("Regions() = %d", len(m.Regions()))
	}
}

func TestManagerRunsClosedLoopEndToEnd(t *testing.T) {
	m, err := NewManager(smallConfig(7, core.AvailableResources{}))
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	if err := m.Run(45 * simclock.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}

	if m.Eras() < 40 {
		t.Fatalf("expected ~45 control eras, got %d", m.Eras())
	}
	if m.Metrics().Completed("") == 0 {
		t.Fatalf("clients completed no requests")
	}
	if m.Metrics().SuccessRatio("") < 0.95 {
		t.Fatalf("success ratio = %v, want near 1 (drops should be rare with proactive rejuvenation)",
			m.Metrics().SuccessRatio(""))
	}

	// Fractions installed by the loop are a valid distribution.
	fr := m.Loop().Fractions()
	sum := 0.0
	for _, f := range fr {
		if f < 0 {
			t.Fatalf("negative fraction %v", fr)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", sum)
	}
	// Under policy 2, the big region (region1: 6 m3.medium) must carry more
	// load than the small private region (region3: 4 small VMs).
	if fr[0] <= fr[1] {
		t.Fatalf("region1 should carry the larger fraction under policy 2, got %v", fr)
	}

	// The recorder captured the series the figures need.
	rec := m.Recorder()
	for _, set := range []string{"rmttf", "fraction", "response_time"} {
		found := false
		for _, name := range rec.SetNames() {
			if name == set {
				found = true
			}
		}
		if !found {
			t.Fatalf("recorder is missing the %q series set (have %v)", set, rec.SetNames())
		}
	}
	if rec.Series("rmttf", "region1").Len() == 0 || rec.Series("fraction", "region3").Len() == 0 {
		t.Fatalf("per-region series are empty")
	}
	if rec.Series("response_time", "all_clients").Len() == 0 {
		t.Fatalf("response-time series is empty")
	}

	// The VMCs performed proactive rejuvenations and the regions stayed
	// healthy.
	stats := m.VMCStats()
	totalProactive := uint64(0)
	for _, s := range stats {
		totalProactive += s.ProactiveRejuvenations
	}
	if totalProactive == 0 {
		t.Fatalf("no proactive rejuvenation happened in 45 minutes of heavy load; stats=%+v", stats)
	}
	regionStats := m.RegionStats()
	if len(regionStats) != 2 || regionStats[0].Served == 0 {
		t.Fatalf("region stats look wrong: %+v", regionStats)
	}
	if m.ControlMessages() == 0 {
		t.Fatalf("the control loop should have exchanged messages between controllers")
	}
}

func TestManagerForwardsRequestsAcrossRegions(t *testing.T) {
	// Entry shares (clients) are deliberately skewed toward the small region,
	// so the policy must forward part of its traffic to the big region.
	cfg := Config{
		Seed: 11,
		Regions: []RegionSetup{
			{Region: cloudsim.PaperRegionConfig(cloudsim.PaperRegion1), Clients: 60},
			{Region: cloudsim.PaperRegionConfig(cloudsim.PaperRegion3), Clients: 200},
		},
		Policy:          core.AvailableResources{},
		Beta:            0.5,
		ControlInterval: 60 * simclock.Second,
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	if err := m.Run(30 * simclock.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.ForwardedRequests() == 0 {
		t.Fatalf("with skewed entry shares the plan must forward requests across regions")
	}
	if m.LocalRequests() == 0 {
		t.Fatalf("some requests should still be processed locally")
	}
	// Forwarding shows up in the plan as a positive cross-region fraction.
	if m.Plan().CrossRegionFraction() <= 0 {
		t.Fatalf("cross-region fraction should be positive, plan:\n%s", m.Plan())
	}
}

func TestManagerLeaderElectionAndFailover(t *testing.T) {
	m, err := NewManager(smallConfig(13, core.SensibleRouting{}))
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	initialLeader, ok := m.Cluster().GlobalLeader()
	if !ok {
		t.Fatalf("no initial leader elected")
	}
	if initialLeader != "region1" {
		// region1 has 9 VMs vs region3's 6: it should lead.
		t.Fatalf("initial leader = %q, want region1", initialLeader)
	}

	// Fail the leader controller mid-run and recover it later.
	m.InjectControllerFailure(10*simclock.Minute, initialLeader)
	m.InjectControllerRecovery(20*simclock.Minute, initialLeader)
	// Also fail one overlay link; the overlay must reroute without killing
	// the run.
	m.InjectLinkFailure(12*simclock.Minute, "region1", "region3")
	m.InjectLinkRecovery(18*simclock.Minute, "region1", "region3")

	if err := m.Run(30 * simclock.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Cluster().Elections() < 5 {
		t.Fatalf("failures should have triggered re-elections, got %d", m.Cluster().Elections())
	}
	leader, ok := m.Cluster().GlobalLeader()
	if !ok || leader != initialLeader {
		t.Fatalf("after recovery the original leader should lead again, got %q", leader)
	}
	if m.Eras() == 0 {
		t.Fatalf("the control loop should have kept running through the failures")
	}
}

func TestManagerDeterministicForSameSeed(t *testing.T) {
	run := func() (uint64, []float64, uint64) {
		m, err := NewManager(smallConfig(99, core.AvailableResources{}))
		if err != nil {
			t.Fatalf("NewManager: %v", err)
		}
		if err := m.Run(20 * simclock.Minute); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return m.Eras(), m.Loop().Fractions(), m.Metrics().Completed("")
	}
	e1, f1, c1 := run()
	e2, f2, c2 := run()
	if e1 != e2 || c1 != c2 {
		t.Fatalf("same seed should reproduce the run exactly: eras %d vs %d, completed %d vs %d", e1, e2, c1, c2)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("fractions differ between identical runs: %v vs %v", f1, f2)
		}
	}
}

func TestManagerWithMLPredictor(t *testing.T) {
	if testing.Short() {
		t.Skip("ML profiling + training is comparatively slow")
	}
	cfg := smallConfig(21, core.AvailableResources{})
	cfg.Predictor = PredictorML
	cfg.MLProfile = f2pm.ProfileConfig{
		VMs:            2,
		RatePerVM:      8,
		TargetFailures: 4,
		SampleInterval: 30 * simclock.Second,
		MaxHorizon:     8 * simclock.Hour,
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatalf("NewManager(ML): %v", err)
	}
	if err := m.Run(30 * simclock.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Eras() == 0 || m.Metrics().Completed("") == 0 {
		t.Fatalf("ML-driven deployment did not make progress")
	}
	// Even with an imperfect learned predictor, most rejuvenations should be
	// proactive rather than reactive crash recoveries.
	stats := m.VMCStats()
	var proactive, reactive uint64
	for _, s := range stats {
		proactive += s.ProactiveRejuvenations
		reactive += s.ReactiveRecoveries
	}
	if proactive == 0 {
		t.Fatalf("the learned model never triggered proactive rejuvenation; stats=%+v", stats)
	}
	_ = reactive // reactive recoveries are tolerated, just not required to be zero
}

func TestDefaultOverlayForNonPaperRegions(t *testing.T) {
	cfg := Config{
		Seed: 3,
		Regions: []RegionSetup{
			{Region: cloudsim.RegionConfig{Name: "east", Type: cloudsim.M3Medium, InitialActive: 2, InitialStandby: 1}, Clients: 20},
			{Region: cloudsim.RegionConfig{Name: "west", Type: cloudsim.M3Small, InitialActive: 2, InitialStandby: 1}, Clients: 20},
		},
		Policy: core.Uniform{},
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	if !m.Overlay().Reachable("east", "west") {
		t.Fatalf("custom regions should be connected by the default mesh overlay")
	}
	if err := m.Run(10 * simclock.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Metrics().Completed("") == 0 {
		t.Fatalf("no requests completed")
	}
}

func TestManagerUnknownPredictorMode(t *testing.T) {
	cfg := smallConfig(1, core.Uniform{})
	cfg.Predictor = PredictorMode("quantum")
	if _, err := NewManager(cfg); err == nil {
		t.Fatalf("unknown predictor mode should be rejected")
	}
}

func TestEntryDispatcherFallsBackWhenUnreachable(t *testing.T) {
	m, err := NewManager(smallConfig(5, core.AvailableResources{}))
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	// Cut region3 off completely before starting; its entry traffic must then
	// be served locally rather than lost.
	m.Overlay().FailNode("region3")
	m.Overlay().FailNode("transit-ams")
	if err := m.Run(10 * simclock.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Metrics().Completed("region3") == 0 {
		t.Fatalf("region3 clients should still be served locally when the overlay is down")
	}
}

func TestWorkloadDispatcherIntegration(t *testing.T) {
	// The manager's entry dispatcher must satisfy the workload.Dispatcher
	// contract: every submitted request eventually completes (or is dropped)
	// exactly once.  Run a tiny deployment and compare issued vs. terminated.
	m, err := NewManager(smallConfig(17, core.Uniform{}))
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	if err := m.Run(10 * simclock.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	met := m.Metrics()
	terminated := met.Completed("") + met.Dropped("") + met.Timeouts("")
	issued := met.Issued("")
	// The last few requests may still be in flight when the horizon cuts the
	// run; allow a small in-flight difference.
	if issued-terminated > uint64(len(m.RegionNames()))*20 {
		t.Fatalf("too many requests unaccounted for: issued=%d terminated=%d", issued, terminated)
	}
	_ = workload.SLAThresholdSeconds // keep the import meaningful: SLA accounting is exercised above
}

func BenchmarkManagerControlEra(b *testing.B) {
	m, err := NewManager(smallConfig(1, core.AvailableResources{}))
	if err != nil {
		b.Fatal(err)
	}
	m.Start()
	// Warm the deployment so RMTTFs are primed.
	_ = m.Engine().Run(5 * simclock.Minute)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.controlEra(m.Engine())
	}
	b.StopTimer()
	m.Stop()
}

func TestWorkloadSurgeStartsLater(t *testing.T) {
	cfg := smallConfig(31, core.AvailableResources{})
	cfg.Regions[0].SurgeClients = 200
	cfg.Regions[0].SurgeAt = 10 * simclock.Minute
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	m.Start()

	// Before the surge: throughput corresponds to the base populations only.
	if err := m.Engine().Run(9 * simclock.Minute); err != nil && err != simclock.ErrHorizonReached {
		t.Fatalf("run: %v", err)
	}
	preSurge := m.Metrics().Issued("region1")

	// Run well past the surge and compare per-minute arrival rates.
	if err := m.Engine().Run(25 * simclock.Minute); err != nil && err != simclock.ErrHorizonReached {
		t.Fatalf("run: %v", err)
	}
	m.Stop()
	postSurge := m.Metrics().Issued("region1") - preSurge

	ratePre := float64(preSurge) / 9
	ratePost := float64(postSurge) / 16
	if ratePost < ratePre*1.5 {
		t.Fatalf("the surge should roughly double region1's arrival rate: pre=%.1f/min post=%.1f/min", ratePre, ratePost)
	}
}

func TestSurgeRequiresBothFields(t *testing.T) {
	cfg := smallConfig(32, core.Uniform{})
	cfg.Regions[0].SurgeClients = 100 // SurgeAt left at zero: no surge population
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	if len(m.surges) != 0 {
		t.Fatalf("a surge without a start time should not create a population")
	}
}
