// Package backend is the seam between experiment orchestration and whatever
// actually runs a deployment.  A Backend is constructed from an assembled
// acm.Config, steps the deployment to a horizon, and exposes the three read
// surfaces every caller consumes: the recorder (figure series), the workload
// metrics (client-side counters), and the typed instrument registry (the
// /metrics scrape surface), plus a plain-data Results snapshot for reports.
//
// The simulator (acm.Manager over the simclock engines) is the first
// implementation; a live implementation — the same scenarios, policies and
// Director driving a real deployment's controllers — plugs in by registering
// another factory kind, without touching experiment, scenarios, or the CLIs.
package backend

import (
	"fmt"
	"sort"

	"repro/internal/acm"
	"repro/internal/cloudsim"
	"repro/internal/gossip"
	"repro/internal/metrics"
	"repro/internal/pcam"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Backend is one runnable deployment.
type Backend interface {
	// Run drives the deployment for the given horizon.  It can be called
	// once per Backend.
	Run(horizon simclock.Duration) error
	// Recorder returns the experiment time-series recorder.
	Recorder() *trace.Recorder
	// Metrics returns the client-side workload metrics (merged across
	// whatever internal parallelism the backend runs).
	Metrics() *workload.Metrics
	// Registry returns the typed instrument registry, live during Run —
	// the surface an HTTP /metrics handler scrapes.
	Registry() *metrics.Registry
	// Results returns the end-of-run summary snapshot.
	Results() Results
}

// Results is the plain-data end-of-run state of a deployment: everything the
// experiment summaries and CLI reports read, with no reference back into the
// backend's machinery.
type Results struct {
	// RegionNames in deployment order.
	RegionNames []string
	// Control-loop counters.
	Eras              uint64
	ControlMessages   uint64
	ForwardedRequests uint64
	LocalRequests     uint64
	// FinalFractions is the last workload split the control loop installed,
	// in deployment order.
	FinalFractions []float64
	// Leader is the final control-loop leader; Elections counts leader
	// elections run.
	Leader    string
	Elections uint64
	// Region / controller telemetry.
	RegionStats []cloudsim.Stats
	ShardStats  map[string][]cloudsim.Stats
	VMCStats    map[string]pcam.Stats
	// Gossip carries the replicated health plane's protocol counters (nil
	// for central or GSLB-less deployments).
	Gossip *gossip.Stats
	// GSLB carries the global traffic plane's view (nil when disabled).
	GSLB *GSLBReport
}

// GSLBReport is the global traffic plane's end-of-run view: the central
// director's, or — when Replicated — the gossip plane's owner views.
type GSLBReport struct {
	// Policy is the routing policy kind.
	Policy string
	// Replicated marks a gossip-plane deployment (States are owner views,
	// Probes is zero).
	Replicated bool
	// Probes counts health probes run (central director only).
	Probes uint64
	// Routed counts requests routed to each region, keyed by region name.
	Routed map[string]uint64
	// States holds the final health-state names in deployment order.
	States []string
	// Transitions is the health transition log, one entry per line.
	Transitions []string
	// Streams lists the population streams of a latency-aware director, in
	// deployment order; LatencyEWMA/LatencyP95 are its learned round trips
	// in milliseconds, keyed "stream:region".  All nil otherwise.
	Streams     []string
	LatencyEWMA map[string]float64
	LatencyP95  map[string]float64
}

// Factory constructs a Backend of one kind from an assembled deployment
// configuration.
type Factory func(cfg acm.Config) (Backend, error)

// KindSimulated is the simulator backend (acm.Manager over simclock).
const KindSimulated = "sim"

var factories = map[string]Factory{}

// Register installs a backend factory under a kind name.  Later
// registrations of the same kind win, mirroring the scenario registry.
func Register(kind string, f Factory) { factories[kind] = f }

// Kinds returns the registered backend kinds, sorted.
func Kinds() []string {
	out := make([]string, 0, len(factories))
	for k := range factories {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// New constructs a Backend of the given kind ("" selects the simulator).
func New(kind string, cfg acm.Config) (Backend, error) {
	if kind == "" {
		kind = KindSimulated
	}
	f, ok := factories[kind]
	if !ok {
		return nil, fmt.Errorf("backend: unknown kind %q (registered: %v)", kind, Kinds())
	}
	return f(cfg)
}
