// Command benchjson turns `go test -bench` text output into a small JSON
// document (benchmark name -> ns/op, B/op, allocs/op and any custom metrics)
// and gates CI on it: the compare mode fails when any benchmark's ns/op
// regressed beyond a tolerance against a committed baseline.
//
// Usage:
//
//	go test -bench='RegionSharded|Figure3' -benchtime=1x -benchmem -run='^$' . | benchjson parse -out BENCH_ci.json
//	benchjson compare -baseline BENCH_baseline.json -current BENCH_ci.json -max-regression 0.20
//
// GOMAXPROCS suffixes ("-4") are stripped from benchmark names so a baseline
// recorded on one core count compares against runs on another.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's recorded values, keyed by benchmark unit
// ("ns/op", "B/op", "allocs/op", "req/s", ...).
type Metrics map[string]float64

// File is the JSON document benchjson reads and writes.
type File struct {
	// Benchmarks maps the benchmark name (GOMAXPROCS suffix stripped) to its
	// metrics.
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

// NsPerOp returns the benchmark's ns/op (0 when absent).
func (m Metrics) NsPerOp() float64 { return m["ns/op"] }

// benchLine matches one result line of `go test -bench` output:
// name, iteration count, then value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// gomaxprocsSuffix matches the "-N" tail testing appends to benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads `go test -bench` text output and collects the per-benchmark
// metrics.  Lines that are not benchmark results (the "goos:" header, PASS,
// custom test logging) are ignored.  A benchmark appearing twice (e.g. from
// -count) keeps the last occurrence.
func Parse(r io.Reader) (*File, error) {
	out := &File{Benchmarks: map[string]Metrics{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("benchjson: odd value/unit pairs in %q", sc.Text())
		}
		metrics := Metrics{}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q: %w", fields[i], sc.Text(), err)
			}
			metrics[fields[i+1]] = v
		}
		if _, ok := metrics["ns/op"]; !ok {
			return nil, fmt.Errorf("benchjson: benchmark %s has no ns/op in %q", name, sc.Text())
		}
		out.Benchmarks[name] = metrics
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark results found in input")
	}
	return out, nil
}

// Load reads a benchjson JSON file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchjson: parsing %s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: %s holds no benchmarks", path)
	}
	return &f, nil
}

// Write serialises the file as deterministic indented JSON (map keys sort).
func (f *File) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Regression is one benchmark whose ns/op moved beyond the tolerance.
type Regression struct {
	Name     string
	Baseline float64 // baseline ns/op
	Current  float64 // current ns/op
	Delta    float64 // (current-baseline)/baseline
}

// Compare reports the benchmarks of current whose ns/op regressed more than
// maxRegression (0.20 = 20% slower) relative to baseline, plus the baseline
// benchmarks missing from current (gate erosion: a deleted benchmark must be
// deleted from the baseline deliberately, not silently skipped).
func Compare(baseline, current *File, maxRegression float64) (regressions []Regression, missing []string) {
	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline.Benchmarks[name]
		cur, ok := current.Benchmarks[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		if base.NsPerOp() <= 0 {
			continue
		}
		delta := (cur.NsPerOp() - base.NsPerOp()) / base.NsPerOp()
		if delta > maxRegression {
			regressions = append(regressions, Regression{Name: name, Baseline: base.NsPerOp(), Current: cur.NsPerOp(), Delta: delta})
		}
	}
	return regressions, missing
}

// comparisonTable renders every shared benchmark's ns/op movement, so the CI
// log shows the whole perf trajectory, not only the failures.
func comparisonTable(w io.Writer, baseline, current *File) {
	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		if _, ok := current.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-40s %15s %15s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	for _, name := range names {
		base, cur := baseline.Benchmarks[name].NsPerOp(), current.Benchmarks[name].NsPerOp()
		delta := "n/a"
		if base > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(cur-base)/base)
		}
		fmt.Fprintf(w, "%-40s %15.0f %15.0f %8s\n", name, base, cur, delta)
	}
}

func runParse(args []string) error {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	in := fs.String("in", "", "read `go test -bench` output from this file (default: stdin)")
	out := fs.String("out", "", "write the JSON document to this file (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	file, err := Parse(r)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return file.Write(w)
}

func runCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	basePath := fs.String("baseline", "BENCH_baseline.json", "committed baseline JSON")
	curPath := fs.String("current", "BENCH_ci.json", "freshly recorded JSON")
	maxReg := fs.Float64("max-regression", 0.20, "maximum tolerated ns/op regression (0.20 = 20% slower)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	baseline, err := Load(*basePath)
	if err != nil {
		return err
	}
	current, err := Load(*curPath)
	if err != nil {
		return err
	}
	comparisonTable(os.Stdout, baseline, current)
	regressions, missing := Compare(baseline, current, *maxReg)
	for _, name := range missing {
		fmt.Fprintf(os.Stderr, "benchjson: baseline benchmark %s missing from current run\n", name)
	}
	for _, r := range regressions {
		fmt.Fprintf(os.Stderr, "benchjson: %s regressed %.1f%% (%.0f -> %.0f ns/op, tolerance %.0f%%)\n",
			r.Name, 100*r.Delta, r.Baseline, r.Current, 100**maxReg)
	}
	if len(regressions) > 0 || len(missing) > 0 {
		return fmt.Errorf("%d regression(s), %d missing benchmark(s)", len(regressions), len(missing))
	}
	fmt.Printf("benchjson: %d benchmarks within %.0f%% of baseline\n", len(baseline.Benchmarks), 100**maxReg)
	return nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson parse [-in bench.txt] [-out bench.json] | benchjson compare [-baseline a.json] [-current b.json] [-max-regression 0.20]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "parse":
		err = runParse(os.Args[2:])
	case "compare":
		err = runCompare(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q (use parse or compare)", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
