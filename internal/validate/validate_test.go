package validate

import "testing"

func TestFieldf(t *testing.T) {
	err := Fieldf("acm", "Regions[2].CohortClients", "must be >= 0, got %d", -1)
	want := "acm: Regions[2].CohortClients must be >= 0, got -1"
	if err.Error() != want {
		t.Fatalf("got %q, want %q", err, want)
	}
}
