package experiment

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/gslb"
	"repro/internal/simclock"
)

// The global-traffic-director suite: the global-* scenarios route traffic
// between regions through a gslb.Director, and their output must be
// byte-identical for EventWorkers {0, 1, 4, GOMAXPROCS} — 0 is promoted to
// the inline epochal run by acm.Config, so the whole range shares one
// engine and one byte stream.  The goldens additionally pin the per-region
// routed counts and the health-transition log, which is where the
// drain/failover/failback story is directly assertable.

// globalScenarioNames lists every registered global-* scenario.
func globalScenarioNames() []string {
	return []string{"global-failover", "global-leastload", "global-diurnal", "global-latency", "global-cablecut"}
}

// TestGlobalScenarioSmoke: cheap always-on canary — every global scenario
// builds, runs a few minutes, serves traffic and completes control eras.
func TestGlobalScenarioSmoke(t *testing.T) {
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range globalScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := BuildScenario(name, 42)
			if err != nil {
				t.Fatal(err)
			}
			sc.Horizon = 5 * simclock.Minute
			res, err := Run(sc, np)
			if err != nil {
				t.Fatal(err)
			}
			if res.Eras == 0 {
				t.Fatal("no control eras completed")
			}
			if res.GSLBRouted == nil {
				t.Fatal("no GSLB routed counts recorded")
			}
			total := uint64(0)
			for _, n := range res.GSLBRouted {
				total += n
			}
			if total == 0 {
				t.Fatal("director routed no requests")
			}
			if res.SuccessRatio < 0.5 {
				t.Fatalf("success ratio %.3f, want >= 0.5", res.SuccessRatio)
			}
		})
	}
}

// TestGlobalGSLBWorkersEquivalence is the GSLB determinism contract:
// byte-identical output (summary, routed counts, transition log and the
// SHA-256 of every raw series) across EventWorkers 0, 1, 4 and GOMAXPROCS,
// for every global scenario.  The CI multicore-determinism job replays it
// with GOMAXPROCS=4 under -race, where the shard loops genuinely run on
// distinct cores.
func TestGlobalGSLBWorkersEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every global scenario once per worker count")
	}
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatal(err)
	}
	counts := []int{0, 1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		counts = append(counts, p)
	}
	for _, name := range globalScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			run := func(workers int) []byte {
				sc, err := BuildScenario(name, 42)
				if err != nil {
					t.Fatal(err)
				}
				sc.Horizon = goldenHorizon
				sc.EventWorkers = workers
				res, err := Run(sc, np)
				if err != nil {
					t.Fatal(err)
				}
				return eventLoopFingerprint(t, res)
			}
			ref := run(counts[0])
			for _, workers := range counts[1:] {
				if got := run(workers); !bytes.Equal(got, ref) {
					t.Fatalf("EventWorkers=%d diverged from EventWorkers=%d\n--- got ---\n%s\n--- want ---\n%s",
						workers, counts[0], got, ref)
				}
			}
		})
	}
}

// TestGlobalGSLBPolicyEquivalence re-runs one scenario with each routing
// policy swapped in, at EventWorkers 1 vs GOMAXPROCS: the equivalence must
// hold for every policy, not just the ones the scenarios ship with (the
// round-robin cursor and the weighted RNG draws are the lane-local state the
// contract depends on).
func TestGlobalGSLBPolicyEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs one scenario per routing policy per worker count")
	}
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range gslb.PolicyKinds() {
		pol := pol
		t.Run(string(pol), func(t *testing.T) {
			run := func(workers int) []byte {
				sc, err := BuildScenario("global-leastload", 7)
				if err != nil {
					t.Fatal(err)
				}
				sc.Horizon = 10 * simclock.Minute
				sc.EventWorkers = workers
				sc.GSLB.Policy = pol
				res, err := Run(sc, np)
				if err != nil {
					t.Fatal(err)
				}
				return eventLoopFingerprint(t, res)
			}
			ref := run(1)
			if got := run(runtime.GOMAXPROCS(0)); !bytes.Equal(got, ref) {
				t.Fatalf("policy %s diverged between EventWorkers 1 and GOMAXPROCS", pol)
			}
		})
	}
}

// TestGlobalFailoverDrainAndFailback asserts the failover story end to end
// on the real deployment: the faulted region drains after the outage,
// traffic fails over to the next preference, the region recovers and
// traffic fails back — visible in both the transition log and the
// per-region routed counts.
func TestGlobalFailoverDrainAndFailback(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 30-minute failover simulation")
	}
	sc, err := BuildScenario("global-failover", 42)
	if err != nil {
		t.Fatal(err)
	}
	sc.Horizon = goldenHorizon
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, np)
	if err != nil {
		t.Fatal(err)
	}

	// The transition log must show the full drain -> failback cycle for the
	// faulted region, in order.
	wantOrder := []string{"healthy->degraded", "degraded->drained", "drained->recovering", "recovering->healthy"}
	var r1 []string
	for _, tr := range res.GSLBTransitions {
		if strings.Contains(tr, "region1 ") {
			r1 = append(r1, tr)
		}
	}
	if len(r1) != len(wantOrder) {
		t.Fatalf("region1 transitions = %v, want the 4-step drain/failback cycle", r1)
	}
	for i, want := range wantOrder {
		if !strings.Contains(r1[i], want) {
			t.Fatalf("region1 transition %d = %q, want %q", i, r1[i], want)
		}
	}

	// Routed counts: region1 (preferred) carries the bulk, region2 carries
	// the failover window, region3 (last preference) never serves.
	if res.GSLBRouted["region2"] == 0 {
		t.Fatal("backup region2 received no failover traffic")
	}
	if res.GSLBRouted["region3"] != 0 {
		t.Fatalf("region3 received %d requests; failover should stop at region2", res.GSLBRouted["region3"])
	}
	if res.GSLBRouted["region1"] <= res.GSLBRouted["region2"] {
		t.Fatalf("preferred region1 (%d) should out-serve the backup (%d) over the full run",
			res.GSLBRouted["region1"], res.GSLBRouted["region2"])
	}

	// Even across a full regional blackout the deployment keeps serving:
	// the drops are confined to the window before the drain debounce fires.
	// (The exact request conservation — every routed request completes
	// exactly once — is the gslb package's property test.)
	if res.SuccessRatio < 0.8 {
		t.Fatalf("success ratio %.3f after failover, want >= 0.8", res.SuccessRatio)
	}
}

// TestGlobalCableCutShift asserts the passive-learning story end to end: the
// cable cut at minute 12 doubles the americas-to-region1 RTT without telling
// the director, so the learned americas:region1 estimate must climb toward
// the new ground truth and region1 must receive strictly fewer routed
// requests in a window after the fault than in an equal window before it.
func TestGlobalCableCutShift(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 30-minute cable-cut simulation")
	}
	sc, err := BuildScenario("global-cablecut", 42)
	if err != nil {
		t.Fatal(err)
	}
	sc.Horizon = goldenHorizon
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, np)
	if err != nil {
		t.Fatal(err)
	}

	// The learned estimate tracks the doubled ground truth (80 -> 160 ms):
	// by the end of the run the EWMA must have crossed well past the seeded
	// value, and the pre-fault estimate must still sit near the seed.
	rtt := res.Recorder.Series("gslb_rtt", "americas:region1")
	if rtt.Len() == 0 {
		t.Fatal("no gslb_rtt series recorded for americas:region1")
	}
	fault := (12 * simclock.Minute).Seconds()
	if pre := rtt.At(fault); pre > 100 {
		t.Fatalf("pre-fault americas:region1 estimate = %.1f ms, want near the 80 ms seed", pre)
	}
	if end := rtt.Last(); end < 130 {
		t.Fatalf("final americas:region1 estimate = %.1f ms, want > 130 (learning the 160 ms truth)", end)
	}

	// Routed-count shift: equal 6-minute windows, leaving 6 minutes after
	// the cut for the estimator to converge.  gslb_routed is cumulative, so
	// window increments are differences on the control-era grid.
	routed := res.Recorder.Series("gslb_routed", "region1")
	if routed.Len() == 0 {
		t.Fatal("no gslb_routed series recorded for region1")
	}
	win := (6 * simclock.Minute).Seconds()
	before := routed.At(fault) - routed.At(fault-win)
	after := routed.Last() - routed.At(rtt.Times()[rtt.Len()-1]-win)
	if after >= before {
		t.Fatalf("region1 routed increment after the cut (%.0f) should be strictly below the pre-cut window (%.0f)", after, before)
	}
}

// TestGoldenGlobalScenarios byte-pins every global scenario under policy2 —
// summary, routed counts, transition log and the SHA-256 of the raw series
// (which include the gslb_health / gslb_routed sets).  Regenerate with:
//
//	go test ./internal/experiment -run TestGoldenGlobal -update
func TestGoldenGlobalScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three 30-minute global simulations")
	}
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range globalScenarioNames() {
		name := name
		t.Run(name+"/policy2", func(t *testing.T) {
			sc, err := BuildScenario(name, 42)
			if err != nil {
				t.Fatal(err)
			}
			sc.Horizon = goldenHorizon
			res, err := Run(sc, np)
			if err != nil {
				t.Fatal(err)
			}
			got := eventLoopFingerprint(t, res)
			path := filepath.Join("testdata", "golden", fmt.Sprintf("%s-policy2.json", name))
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to record): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("summary drifted from golden %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}

// TestGSLBScenarioJSONRoundTrip: the global scenarios are plain data and
// must survive the config-file round trip (cmd/acmsim -dump-config /
// -config), including the nested gslb.Config, rate specs and fault
// schedule.
func TestGSLBScenarioJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, name := range globalScenarioNames() {
		sc, err := BuildScenario(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name+".json")
		if err := SaveScenarioFile(path, sc); err != nil {
			t.Fatal(err)
		}
		back, err := LoadScenarioFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if back.GSLB.Policy != sc.GSLB.Policy || back.GlobalClients != sc.GlobalClients ||
			len(back.Arrivals) != len(sc.Arrivals) || len(back.Faults) != len(sc.Faults) ||
			len(back.LinkFaults) != len(sc.LinkFaults) || len(back.GSLB.RTT) != len(sc.GSLB.RTT) {
			t.Fatalf("%s: round trip lost GSLB fields: %+v", name, back)
		}
		for stream, row := range sc.GSLB.RTT {
			got := back.GSLB.RTT[stream]
			if len(got) != len(row) {
				t.Fatalf("%s: round trip lost RTT row %q: %v", name, stream, got)
			}
			for i := range row {
				if got[i] != row[i] {
					t.Fatalf("%s: RTT row %q changed: %v -> %v", name, stream, row, got)
				}
			}
		}
	}
}
