package backend

import (
	"repro/internal/acm"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Simulated is the simulator backend: an acm.Manager over the simclock
// engines (serial or sharded event loop, per the config).
type Simulated struct {
	mgr *acm.Manager
}

func init() {
	Register(KindSimulated, func(cfg acm.Config) (Backend, error) {
		return NewSimulated(cfg)
	})
}

// NewSimulated assembles the simulated deployment.
func NewSimulated(cfg acm.Config) (*Simulated, error) {
	mgr, err := acm.NewManager(cfg)
	if err != nil {
		return nil, err
	}
	return &Simulated{mgr: mgr}, nil
}

// Manager exposes the underlying simulator for callers that need
// sim-specific surfaces (tests scheduling fault injection through the
// engine, the equivalence suites).  Live backends have no counterpart.
func (s *Simulated) Manager() *acm.Manager { return s.mgr }

// Run drives the simulation for the given horizon.
func (s *Simulated) Run(horizon simclock.Duration) error { return s.mgr.Run(horizon) }

// Recorder returns the experiment time-series recorder.
func (s *Simulated) Recorder() *trace.Recorder { return s.mgr.Recorder() }

// Metrics returns the client-side workload metrics, merged in the engine's
// fixed shard order.
func (s *Simulated) Metrics() *workload.Metrics { return s.mgr.Metrics() }

// Registry returns the simulator's instrument registry, updated at every
// control-era barrier.
func (s *Simulated) Registry() *metrics.Registry { return s.mgr.MetricsRegistry() }

// Results snapshots the end-of-run state.
func (s *Simulated) Results() Results {
	m := s.mgr
	leader, _ := m.Cluster().GlobalLeader()
	res := Results{
		RegionNames:       m.RegionNames(),
		Eras:              m.Eras(),
		ControlMessages:   m.ControlMessages(),
		ForwardedRequests: m.ForwardedRequests(),
		LocalRequests:     m.LocalRequests(),
		FinalFractions:    m.Loop().Fractions(),
		Leader:            leader,
		Elections:         m.Cluster().Elections(),
		RegionStats:       m.RegionStats(),
		ShardStats:        m.ShardStats(),
		VMCStats:          m.VMCStats(),
		Gossip:            m.GossipStats(),
	}

	d, p := m.Director(), m.GossipPlane()
	if d == nil && p == nil {
		return res
	}
	g := &GSLBReport{
		Routed:      m.GSLBRouted(),
		Transitions: m.GSLBTransitions(),
	}
	if p != nil {
		g.Replicated = true
		g.Policy = string(p.GSLBConfig().Policy)
		for _, st := range p.OwnerStates() {
			g.States = append(g.States, st.String())
		}
	} else {
		g.Policy = string(d.Config().Policy)
		g.Probes = d.Probes()
		for _, st := range d.States() {
			g.States = append(g.States, st.String())
		}
		if d.LatencyAware() {
			g.Streams = d.Streams()
			g.LatencyEWMA, g.LatencyP95 = m.GSLBLatencyEstimates()
		}
	}
	res.GSLB = g
	return res
}
