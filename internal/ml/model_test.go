package ml

import (
	"errors"
	"strings"
	"testing"
)

func TestEvaluateMetrics(t *testing.T) {
	pred := []float64{1, 2, 3}
	actual := []float64{1, 2, 3}
	m := Evaluate(pred, actual)
	if m.MAE != 0 || m.RMSE != 0 || m.R2 != 1 || m.N != 3 {
		t.Fatalf("perfect prediction metrics wrong: %+v", m)
	}
	m = Evaluate([]float64{2, 3, 4}, actual)
	if !almostEqual(m.MAE, 1, 1e-9) || !almostEqual(m.RMSE, 1, 1e-9) {
		t.Fatalf("off-by-one metrics wrong: %+v", m)
	}
	if m.MaxAbsError != 1 {
		t.Fatalf("max abs error wrong: %+v", m)
	}
	if m.String() == "" {
		t.Fatal("string empty")
	}
	// Degenerate inputs.
	if Evaluate(nil, nil).N != 0 {
		t.Fatal("empty evaluation should be zero")
	}
	if Evaluate([]float64{1}, []float64{1, 2}).N != 0 {
		t.Fatal("mismatched evaluation should be zero")
	}
	// Constant target, perfect prediction → R2 = 1.
	if Evaluate([]float64{5, 5}, []float64{5, 5}).R2 != 1 {
		t.Fatal("constant target perfect prediction should give R2=1")
	}
	// Constant target, imperfect prediction → R2 = 0.
	if Evaluate([]float64{6, 6}, []float64{5, 5}).R2 != 0 {
		t.Fatal("constant target bad prediction should give R2=0")
	}
}

func TestEvaluateRelativeErrorFloor(t *testing.T) {
	// Tiny actual values would explode a naive relative error; the metric
	// floors the denominator at 1.
	m := Evaluate([]float64{0.5}, []float64{0.1})
	if m.MeanRelativeError > 0.5 {
		t.Fatalf("relative error should be floored: %+v", m)
	}
}

func TestPredictAll(t *testing.T) {
	lr := NewLinearRegression()
	x, y := synthRegression(100, 0)
	if err := lr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	preds := PredictAll(lr, x)
	if len(preds) != len(x) {
		t.Fatal("PredictAll length wrong")
	}
}

func TestCrossValidate(t *testing.T) {
	x, y := synthRegression(300, 0.3)
	met, err := CrossValidate(func() Regressor { return NewLinearRegression() }, x, y, 5)
	if err != nil {
		t.Fatal(err)
	}
	if met.R2 < 0.9 {
		t.Fatalf("cross-validated linear regression should do well, R2=%f", met.R2)
	}
	if met.N != len(x) {
		t.Fatalf("CV should evaluate all samples, N=%d", met.N)
	}
	// k gets clamped.
	if _, err := CrossValidate(func() Regressor { return NewLinearRegression() }, x, y, 1); err != nil {
		t.Fatal("k<2 should be clamped, not fail")
	}
	if _, err := CrossValidate(func() Regressor { return NewLinearRegression() }, x[:3], y[:3], 10); err != nil {
		t.Fatal("k>n should be clamped, not fail")
	}
	// Errors.
	if _, err := CrossValidate(func() Regressor { return NewLinearRegression() }, nil, nil, 5); !errors.Is(err, ErrEmptyDataset) {
		t.Fatal("empty CV should error")
	}
	if _, err := CrossValidate(func() Regressor { return NewLinearRegression() }, x, y[:10], 5); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatal("mismatched CV should error")
	}
}

func TestRankModels(t *testing.T) {
	x, y := synthDegradation(600)
	cut := 450
	candidates := map[string]func() Regressor{
		"LinearRegression": func() Regressor { return NewLinearRegression() },
		"REPTree":          func() Regressor { return NewREPTree() },
		"Mean":             func() Regressor { return &meanModel{} },
	}
	scores, err := RankModels(candidates, x[:cut], y[:cut], x[cut:], y[cut:])
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 {
		t.Fatalf("expected 3 scores, got %d", len(scores))
	}
	// Sorted by RMSE ascending.
	for i := 1; i < len(scores); i++ {
		if scores[i].Metrics.RMSE < scores[i-1].Metrics.RMSE {
			t.Fatalf("scores not sorted: %+v", scores)
		}
	}
	// The dumb mean model should rank last on a strongly trending target.
	if scores[len(scores)-1].Name != "Mean" {
		t.Fatalf("mean predictor should rank last: %+v", scores)
	}
	if _, err := RankModels(candidates, nil, nil, x, y); !errors.Is(err, ErrEmptyDataset) {
		t.Fatal("empty training set should error")
	}
}

// meanModel is a trivial baseline used by the ranking test.
type meanModel struct{ mean float64 }

func (m *meanModel) Fit(x [][]float64, y []float64) error {
	if len(y) == 0 {
		return ErrEmptyDataset
	}
	m.mean = meanOf(y)
	return nil
}
func (m *meanModel) Predict([]float64) float64 { return m.mean }
func (m *meanModel) Name() string              { return "Mean" }

func TestSelectFeaturesLasso(t *testing.T) {
	x, y := synthRegression(500, 0.2)
	res, err := SelectFeaturesLasso(x, y, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) < 2 {
		t.Fatalf("should keep the informative features, got %v", res.Selected)
	}
	// Most important feature first.
	if len(res.Selected) >= 2 && res.Importance[res.Selected[0]] < res.Importance[res.Selected[1]] {
		t.Fatalf("selection not sorted by importance: %+v", res)
	}
	// Errors.
	if _, err := SelectFeaturesLasso(nil, nil, 0.1, 1); !errors.Is(err, ErrEmptyDataset) {
		t.Fatal("empty selection should error")
	}
	if _, err := SelectFeaturesLasso(x, y[:2], 0.1, 1); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatal("mismatched selection should error")
	}
}

func TestSelectFeaturesLassoRelaxesPenalty(t *testing.T) {
	x, y := synthRegression(300, 0.2)
	// Huge penalty initially kills everything; the selector must relax it
	// until minFeatures survive.
	res, err := SelectFeaturesLasso(x, y, 1e6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) < 2 {
		t.Fatalf("selector should relax the penalty to keep 2 features, got %v", res.Selected)
	}
	if res.Lambda >= 1e6 {
		t.Fatal("lambda should have been reduced")
	}
	// minFeatures above the dimensionality is clamped.
	res, err = SelectFeaturesLasso(x, y, 0.1, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) > len(x[0]) {
		t.Fatal("cannot select more features than exist")
	}
}

func TestProjectColumns(t *testing.T) {
	x := [][]float64{{1, 2, 3}, {4, 5, 6}}
	p := ProjectColumns(x, []int{2, 0})
	if p[0][0] != 3 || p[0][1] != 1 || p[1][0] != 6 {
		t.Fatalf("projection wrong: %v", p)
	}
	// Out-of-range columns read as zero.
	p = ProjectColumns(x, []int{5})
	if p[0][0] != 0 {
		t.Fatal("out-of-range column should be 0")
	}
}

func TestDefaultCandidatesAndNewByName(t *testing.T) {
	c := DefaultCandidates(0)
	want := []string{"LinearRegression", "M5P", "REPTree", "Lasso", "SVR", "LS-SVM"}
	for _, name := range want {
		f, ok := c[name]
		if !ok {
			t.Fatalf("missing candidate %s", name)
		}
		if f() == nil {
			t.Fatalf("factory for %s returned nil", name)
		}
	}
	m, err := NewByName("REPTree")
	if err != nil || m.Name() != "REPTree" {
		t.Fatalf("NewByName failed: %v", err)
	}
	if _, err := NewByName("nonsense"); err == nil || !strings.Contains(err.Error(), "valid") {
		t.Fatal("unknown name should error with the valid list")
	}
}

// Integration-style check: all six default models train on a realistic
// degradation dataset and achieve reasonable accuracy on held-out data.
func TestAllDefaultModelsTrainOnDegradationData(t *testing.T) {
	x, y := synthDegradation(800)
	cut := 600
	scores, err := RankModels(DefaultCandidates(0.01), x[:cut], y[:cut], x[cut:], y[cut:])
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 6 {
		t.Fatalf("expected 6 model scores, got %d", len(scores))
	}
	for _, s := range scores {
		if s.Metrics.N == 0 {
			t.Fatalf("model %s evaluated no samples", s.Name)
		}
		// The degradation signal spans ~3600s; any sane model should get the
		// RTTF within a few hundred seconds on average.
		if s.Metrics.MAE > 1200 {
			t.Fatalf("model %s is wildly inaccurate: %v", s.Name, s.Metrics)
		}
	}
}
