package workload

import (
	"math"
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/simclock"
)

func TestRateSpecValidate(t *testing.T) {
	bad := []RateSpec{
		{},
		{Kind: "bogus"},
		{Kind: RateConstant, Rate: 0},
		{Kind: RateSinusoid, Base: 0, Amplitude: 1, Period: simclock.Hour},
		{Kind: RateSinusoid, Base: 1, Amplitude: -1, Period: simclock.Hour},
		{Kind: RateSinusoid, Base: 1, Amplitude: 1},
		{Kind: RatePiecewise},
		{Kind: RatePiecewise, Steps: []RateStep{{Duration: 0, Rate: 1}}},
		{Kind: RatePiecewise, Steps: []RateStep{{Duration: 1, Rate: 0}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: Validate accepted %+v", i, s)
		}
	}
	good := []RateSpec{
		{Kind: RateConstant, Rate: 5},
		{Kind: RateSinusoid, Base: 6, Amplitude: 4, Period: simclock.Hour, Phase: 10 * simclock.Minute},
		{Kind: RatePiecewise, Steps: []RateStep{{Duration: 60, Rate: 2}, {Duration: 30, Rate: 0}}},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Fatalf("case %d: Validate rejected %+v: %v", i, s, err)
		}
	}
}

func TestRateSpecShapes(t *testing.T) {
	sin := RateSpec{Kind: RateSinusoid, Base: 6, Amplitude: 4, Period: simclock.Hour}
	if got := sin.At(0); math.Abs(got-6) > 1e-9 {
		t.Fatalf("sinusoid at t=0: %v, want 6", got)
	}
	if got := sin.At(simclock.Time(900)); math.Abs(got-10) > 1e-9 { // quarter period: peak
		t.Fatalf("sinusoid at peak: %v, want 10", got)
	}
	if got := sin.Max(); got != 10 {
		t.Fatalf("sinusoid max: %v, want 10", got)
	}
	if got := sin.Mean(); got != 6 {
		t.Fatalf("sinusoid mean: %v, want 6", got)
	}

	clip := RateSpec{Kind: RateSinusoid, Base: 2, Amplitude: 6, Period: simclock.Hour}
	if got := clip.At(simclock.Time(2700)); got != 0 { // trough clamps at zero
		t.Fatalf("clipped sinusoid trough: %v, want 0", got)
	}

	pw := RateSpec{Kind: RatePiecewise, Steps: []RateStep{{Duration: 60, Rate: 2}, {Duration: 60, Rate: 8}}}
	if got := pw.At(30); got != 2 {
		t.Fatalf("piecewise step 0: %v, want 2", got)
	}
	if got := pw.At(90); got != 8 {
		t.Fatalf("piecewise step 1: %v, want 8", got)
	}
	if got := pw.At(150); got != 2 { // wraps around
		t.Fatalf("piecewise wrap: %v, want 2", got)
	}
	if got := pw.Max(); got != 8 {
		t.Fatalf("piecewise max: %v, want 8", got)
	}
	if got := pw.Mean(); got != 5 {
		t.Fatalf("piecewise mean: %v, want 5", got)
	}
}

// countingDispatcher completes every request immediately and bins arrivals
// by time.
type countingDispatcher struct {
	times []simclock.Time
}

func (c *countingDispatcher) Submit(eng *simclock.Engine, req *cloudsim.Request) {
	c.times = append(c.times, eng.Now())
	req.Finish(eng, cloudsim.Outcome{Request: req, Region: "stub", Start: eng.Now(), End: eng.Now()})
}

// TestVaryingOpenLoopThinningRate checks the thinning sampler empirically:
// the arrival counts in the peak and trough halves of a sinusoidal cycle
// must straddle the base rate the way λ(t) prescribes.
func TestVaryingOpenLoopThinningRate(t *testing.T) {
	spec := RateSpec{Kind: RateSinusoid, Base: 10, Amplitude: 8, Period: 2 * simclock.Hour}
	sink := &countingDispatcher{}
	gen, err := NewVaryingOpenLoop(VaryingOpenLoopConfig{Region: "stream", Rate: spec}, simclock.NewRNG(42), sink, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := simclock.NewEngine(1)
	gen.Start(eng)
	if err := eng.Run(2 * simclock.Hour); err != nil && err != simclock.ErrHorizonReached {
		t.Fatal(err)
	}
	gen.Stop()

	firstHalf, secondHalf := 0, 0
	for _, at := range sink.times {
		if at < simclock.Time(simclock.Hour) {
			firstHalf++
		} else {
			secondHalf++
		}
	}
	// Expected: first half (rising + peak) integrates to ~10h + 8·(2/π)·h/2
	// ≈ 54000 arrivals/3600... work in rates: mean rate of first half is
	// 10 + 8·2/π ≈ 15.1/s, second half 10 − 8·2/π ≈ 4.9/s.
	fr := float64(firstHalf) / 3600
	sr := float64(secondHalf) / 3600
	if fr < 13.5 || fr > 16.5 {
		t.Fatalf("peak-half rate %.2f/s, want ~15.1", fr)
	}
	if sr < 4.0 || sr > 6.0 {
		t.Fatalf("trough-half rate %.2f/s, want ~4.9", sr)
	}
	if gen.Issued() != uint64(len(sink.times)) {
		t.Fatalf("issued counter %d != dispatched %d", gen.Issued(), len(sink.times))
	}
}

// TestVaryingOpenLoopDeterministic: same seed, same arrival point process,
// down to the timestamp.
func TestVaryingOpenLoopDeterministic(t *testing.T) {
	run := func() []simclock.Time {
		spec := RateSpec{Kind: RatePiecewise, Steps: []RateStep{{Duration: 60, Rate: 5}, {Duration: 60, Rate: 1}}}
		sink := &countingDispatcher{}
		gen, err := NewVaryingOpenLoop(VaryingOpenLoopConfig{Region: "s", Rate: spec}, simclock.NewRNG(7), sink, nil)
		if err != nil {
			t.Fatal(err)
		}
		eng := simclock.NewEngine(1)
		gen.Start(eng)
		if err := eng.Run(10 * simclock.Minute); err != nil && err != simclock.ErrHorizonReached {
			t.Fatal(err)
		}
		return sink.times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs issued %d vs %d arrivals", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d at %v vs %v", i, a[i], b[i])
		}
	}
}
