package core

import (
	"fmt"
	"math"
	"strings"
)

// ForwardPlan is the global forward plan of Section V: given that users
// arbitrarily connect to whichever cloud region (the entry shares), the plan
// establishes, for the load balancer of each region, which fraction of the
// requests it receives must be processed locally and which fractions must be
// forwarded to the load balancers of the other regions, so that overall each
// region i ends up processing the fraction f_i decided by the policy.
type ForwardPlan struct {
	// Regions names the regions, indexing the matrix.
	Regions []string
	// EntryShares[i] is the fraction of the global incoming requests that
	// arrive at region i's load balancer (decided by the users, not by ACM).
	EntryShares []float64
	// TargetFractions[j] is the fraction of the global workload region j must
	// process (decided by the policy).
	TargetFractions []float64
	// Forward[i][j] is the fraction of the requests arriving at region i's
	// load balancer that must be forwarded to region j (j == i means "process
	// locally").  Every row sums to 1.
	Forward [][]float64
}

// BuildForwardPlan computes the forwarding matrix.  It keeps as much traffic
// local as possible: each region first retains min(entry_i, f_i) of the
// global load, and only the surplus of over-subscribed entry points is
// forwarded, split across the regions that still have processing headroom in
// proportion to their remaining deficit.  Entry shares and target fractions
// are normalised defensively before use.
func BuildForwardPlan(regions []string, entryShares, targetFractions []float64) (*ForwardPlan, error) {
	n := len(regions)
	if n == 0 {
		return nil, fmt.Errorf("core: forward plan with no regions")
	}
	if len(entryShares) != n || len(targetFractions) != n {
		return nil, fmt.Errorf("core: forward plan slice lengths mismatch (regions=%d entry=%d target=%d)",
			n, len(entryShares), len(targetFractions))
	}
	entry := Normalize(entryShares)
	target := Normalize(targetFractions)

	forward := make([][]float64, n)
	for i := range forward {
		forward[i] = make([]float64, n)
	}

	// Local retention and per-region surplus/deficit (in units of global
	// load fraction).
	surplus := make([]float64, n) // entry load that cannot be processed locally
	deficit := make([]float64, n) // processing capacity not covered by local entry
	for i := 0; i < n; i++ {
		local := math.Min(entry[i], target[i])
		surplus[i] = entry[i] - local
		deficit[i] = target[i] - local
		if entry[i] > 0 {
			forward[i][i] = local / entry[i]
		} else {
			forward[i][i] = 1 // no traffic enters here; the row is irrelevant but must sum to 1
		}
	}
	totalDeficit := 0.0
	for _, d := range deficit {
		totalDeficit += d
	}

	if totalDeficit > 1e-12 {
		for i := 0; i < n; i++ {
			if surplus[i] <= 1e-15 || entry[i] <= 0 {
				continue
			}
			for j := 0; j < n; j++ {
				if i == j || deficit[j] <= 0 {
					continue
				}
				// Share of region i's surplus routed to region j.
				forward[i][j] = surplus[i] * (deficit[j] / totalDeficit) / entry[i]
			}
		}
	}

	// Defensive renormalisation of each row (floating point dust).
	for i := range forward {
		forward[i] = Normalize(forward[i])
	}
	return &ForwardPlan{
		Regions:         append([]string(nil), regions...),
		EntryShares:     entry,
		TargetFractions: target,
		Forward:         forward,
	}, nil
}

// indexOf returns the index of the region, or -1.
func (p *ForwardPlan) indexOf(region string) int {
	for i, r := range p.Regions {
		if r == region {
			return i
		}
	}
	return -1
}

// Row returns the forwarding distribution of the region's load balancer: the
// probability of forwarding an incoming request to each region (including
// keeping it local).  It returns nil for an unknown region.
func (p *ForwardPlan) Row(region string) []float64 {
	i := p.indexOf(region)
	if i < 0 {
		return nil
	}
	return append([]float64(nil), p.Forward[i]...)
}

// Destination picks the target region for one request entering at the given
// region, using u — a uniform random value in [0,1) supplied by the caller —
// to sample the row's distribution.  It returns the entry region itself when
// the region is unknown.
func (p *ForwardPlan) Destination(entryRegion string, u float64) string {
	i := p.indexOf(entryRegion)
	if i < 0 {
		return entryRegion
	}
	acc := 0.0
	for j, frac := range p.Forward[i] {
		acc += frac
		if u < acc {
			return p.Regions[j]
		}
	}
	return p.Regions[len(p.Regions)-1]
}

// EffectiveFractions returns the fraction of the global load each region
// processes under this plan (entry shares pushed through the forwarding
// matrix).  If the plan is consistent it equals TargetFractions up to
// rounding.
func (p *ForwardPlan) EffectiveFractions() []float64 {
	n := len(p.Regions)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out[j] += p.EntryShares[i] * p.Forward[i][j]
		}
	}
	return out
}

// CrossRegionFraction returns the fraction of the global load that the plan
// forwards to a region different from its entry region — the redirection
// overhead the paper associates with oscillating policies.
func (p *ForwardPlan) CrossRegionFraction() float64 {
	total := 0.0
	for i := range p.Regions {
		for j := range p.Regions {
			if i != j {
				total += p.EntryShares[i] * p.Forward[i][j]
			}
		}
	}
	return total
}

// String renders the plan as a small matrix table.
func (p *ForwardPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "entry\\to")
	for _, r := range p.Regions {
		fmt.Fprintf(&b, " %10s", r)
	}
	b.WriteByte('\n')
	for i, r := range p.Regions {
		fmt.Fprintf(&b, "%-10s", r)
		for j := range p.Regions {
			fmt.Fprintf(&b, " %10.3f", p.Forward[i][j])
		}
		fmt.Fprintf(&b, "   (entry %.3f -> target %.3f)\n", p.EntryShares[i], p.TargetFractions[i])
	}
	return b.String()
}
