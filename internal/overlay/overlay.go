// Package overlay models the interconnection network among the Virtual
// Machine Controllers of the different cloud regions.  Following Section III
// of the paper, "the interconnection among the various controllers is
// actuated via an overlay network, which selects the path with the smallest
// latency among two given controllers, and is able to reroute connections in
// case of a network link failure".
//
// The overlay is a weighted undirected graph: vertices are controller nodes
// (one per cloud region, plus optional relay nodes), edges carry latencies.
// Routing uses Dijkstra's shortest-path algorithm over the live part of the
// graph, so failing a link or a node transparently reroutes traffic over the
// remaining paths.
package overlay

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// ErrUnknownNode is returned when a route endpoint does not exist.
var ErrUnknownNode = errors.New("overlay: unknown node")

// ErrUnreachable is returned when no live path connects two nodes.
var ErrUnreachable = errors.New("overlay: destination unreachable")

// link is one undirected edge of the overlay.
type link struct {
	a, b      string
	latencyMs float64
	failed    bool
}

func linkKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// Network is the overlay graph.  It is not safe for concurrent use; the
// simulation drives it from a single goroutine.
type Network struct {
	nodes map[string]bool // value: node alive?
	links map[string]*link
}

// New returns an empty overlay network.
func New() *Network {
	return &Network{nodes: map[string]bool{}, links: map[string]*link{}}
}

// AddNode registers a controller node.  Adding an existing node is a no-op
// (and revives it if it was failed).
func (n *Network) AddNode(name string) {
	n.nodes[name] = true
}

// HasNode reports whether the node exists (failed or not).
func (n *Network) HasNode(name string) bool {
	_, ok := n.nodes[name]
	return ok
}

// NodeAlive reports whether the node exists and is alive.
func (n *Network) NodeAlive(name string) bool { return n.nodes[name] }

// Nodes returns all node names, sorted.
func (n *Network) Nodes() []string {
	out := make([]string, 0, len(n.nodes))
	for name := range n.nodes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AliveNodes returns the names of nodes currently alive, sorted.
func (n *Network) AliveNodes() []string {
	var out []string
	for name, alive := range n.nodes {
		if alive {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// AddLink creates (or updates) the undirected link between a and b with the
// given latency in milliseconds.  Both endpoints are created if missing.
func (n *Network) AddLink(a, b string, latencyMs float64) error {
	if a == b {
		return fmt.Errorf("overlay: self link on %q", a)
	}
	if latencyMs <= 0 {
		return fmt.Errorf("overlay: non-positive latency %v between %q and %q", latencyMs, a, b)
	}
	if !n.HasNode(a) {
		n.AddNode(a)
	}
	if !n.HasNode(b) {
		n.AddNode(b)
	}
	key := linkKey(a, b)
	if l, ok := n.links[key]; ok {
		l.latencyMs = latencyMs
		return nil
	}
	n.links[key] = &link{a: a, b: b, latencyMs: latencyMs}
	return nil
}

// FailLink marks the link between a and b as failed; routes are recomputed
// around it.  It reports whether such a link exists.
func (n *Network) FailLink(a, b string) bool {
	l, ok := n.links[linkKey(a, b)]
	if !ok {
		return false
	}
	l.failed = true
	return true
}

// RestoreLink brings a previously failed link back.  It reports whether such
// a link exists.
func (n *Network) RestoreLink(a, b string) bool {
	l, ok := n.links[linkKey(a, b)]
	if !ok {
		return false
	}
	l.failed = false
	return true
}

// LinkFailed reports whether the link between a and b is currently failed
// (false if the link does not exist).
func (n *Network) LinkFailed(a, b string) bool {
	l, ok := n.links[linkKey(a, b)]
	return ok && l.failed
}

// FailNode marks a node as failed: all its links become unusable until the
// node is restored.  It reports whether the node exists.
func (n *Network) FailNode(name string) bool {
	if !n.HasNode(name) {
		return false
	}
	n.nodes[name] = false
	return true
}

// RestoreNode revives a failed node.  It reports whether the node exists.
func (n *Network) RestoreNode(name string) bool {
	if !n.HasNode(name) {
		return false
	}
	n.nodes[name] = true
	return true
}

// neighbors returns the live neighbours of a node and the latency to each.
func (n *Network) neighbors(name string) map[string]float64 {
	out := map[string]float64{}
	for _, l := range n.links {
		if l.failed {
			continue
		}
		var other string
		switch name {
		case l.a:
			other = l.b
		case l.b:
			other = l.a
		default:
			continue
		}
		if !n.nodes[other] {
			continue
		}
		if cur, ok := out[other]; !ok || l.latencyMs < cur {
			out[other] = l.latencyMs
		}
	}
	return out
}

// Route is a path through the overlay with its end-to-end latency.
type Route struct {
	// Path is the ordered list of nodes from source to destination
	// (inclusive).
	Path []string
	// LatencyMs is the sum of link latencies along the path.
	LatencyMs float64
}

// Hops returns the number of links traversed.
func (r Route) Hops() int {
	if len(r.Path) == 0 {
		return 0
	}
	return len(r.Path) - 1
}

// String renders the route as "a -> b -> c (12.3 ms)".
func (r Route) String() string {
	return fmt.Sprintf("%s (%.1f ms)", strings.Join(r.Path, " -> "), r.LatencyMs)
}

// ShortestRoute computes the minimum-latency live path between two nodes
// using Dijkstra's algorithm.  Failed links and failed nodes are excluded, so
// the returned route is the one the overlay would actually use after
// rerouting around failures.
func (n *Network) ShortestRoute(from, to string) (Route, error) {
	if !n.HasNode(from) || !n.HasNode(to) {
		return Route{}, fmt.Errorf("%w: %q or %q", ErrUnknownNode, from, to)
	}
	if !n.nodes[from] || !n.nodes[to] {
		return Route{}, fmt.Errorf("%w: %q -> %q (endpoint down)", ErrUnreachable, from, to)
	}
	if from == to {
		return Route{Path: []string{from}}, nil
	}

	dist := map[string]float64{from: 0}
	prev := map[string]string{}
	visited := map[string]bool{}

	for {
		// Select the unvisited node with the smallest tentative distance.
		cur := ""
		best := math.Inf(1)
		for node, d := range dist {
			if !visited[node] && d < best {
				best = d
				cur = node
			}
		}
		if cur == "" {
			break
		}
		if cur == to {
			break
		}
		visited[cur] = true
		for nb, lat := range n.neighbors(cur) {
			if nd := dist[cur] + lat; func() bool {
				d, ok := dist[nb]
				return !ok || nd < d
			}() {
				dist[nb] = nd
				prev[nb] = cur
			}
		}
	}

	if _, ok := dist[to]; !ok {
		return Route{}, fmt.Errorf("%w: %q -> %q", ErrUnreachable, from, to)
	}
	// Rebuild the path.
	var path []string
	for at := to; ; {
		path = append([]string{at}, path...)
		if at == from {
			break
		}
		at = prev[at]
	}
	return Route{Path: path, LatencyMs: dist[to]}, nil
}

// Latency returns the end-to-end latency of the best live route between two
// nodes, or +Inf when unreachable.
func (n *Network) Latency(from, to string) float64 {
	r, err := n.ShortestRoute(from, to)
	if err != nil {
		return math.Inf(1)
	}
	return r.LatencyMs
}

// Reachable reports whether a live path exists between the two nodes.
func (n *Network) Reachable(from, to string) bool {
	_, err := n.ShortestRoute(from, to)
	return err == nil
}

// Partition returns the set of alive nodes reachable from the given node
// (including itself), sorted.  Leader election uses it to scope the vote to
// one side of a network partition.
func (n *Network) Partition(from string) []string {
	if !n.nodes[from] {
		return nil
	}
	seen := map[string]bool{from: true}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for nb := range n.neighbors(cur) {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// LatencyMatrix returns the pairwise latency matrix over the given nodes (in
// the given order), with +Inf marking unreachable pairs.
func (n *Network) LatencyMatrix(nodes []string) [][]float64 {
	m := make([][]float64, len(nodes))
	for i, a := range nodes {
		m[i] = make([]float64, len(nodes))
		for j, b := range nodes {
			if i == j {
				continue
			}
			m[i][j] = n.Latency(a, b)
		}
	}
	return m
}

// Links returns a description of every link ("a-b: 12.3ms [failed]"), sorted,
// for reports and debugging.
func (n *Network) Links() []string {
	var out []string
	for _, l := range n.links {
		s := fmt.Sprintf("%s-%s: %.1fms", l.a, l.b, l.latencyMs)
		if l.failed {
			s += " [failed]"
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// PaperOverlay builds the overlay connecting the three controllers of the
// paper's testbed — Ireland (region1), Frankfurt (region2) and Munich
// (region3) — with inter-region latencies representative of the public
// internet between those sites, plus a transit node (Amsterdam) that provides
// the alternative paths the overlay needs to reroute around a failed direct
// link.
func PaperOverlay() *Network {
	n := New()
	// Direct controller-to-controller links.
	_ = n.AddLink("region1", "region2", 25) // Ireland  <-> Frankfurt
	_ = n.AddLink("region2", "region3", 8)  // Frankfurt <-> Munich
	_ = n.AddLink("region1", "region3", 33) // Ireland  <-> Munich
	// Transit node providing redundancy.
	_ = n.AddLink("region1", "transit-ams", 15)
	_ = n.AddLink("region2", "transit-ams", 12)
	_ = n.AddLink("region3", "transit-ams", 16)
	return n
}
