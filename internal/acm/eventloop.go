// The sharded event loop of a deployment: with Config.EventWorkers >= 1 the
// Manager promotes every region shard to its own simclock sub-engine and
// runs the whole request-service path — client think timers, arrivals,
// dispatch, service, completion, rejuvenation timers — on N shard loops in
// lockstep epochs (simclock.ShardedEngine).  The serial engine only ever
// fired one event at a time; here a 16-shard megaregion services sixteen
// arrival/completion streams concurrently.
//
// Partitioning: each region's client population is split across its shards,
// and a client's requests are dispatched inside its own shard (the serial
// engine's per-request shard rotation becomes a static client→shard
// binding, which spreads load identically in expectation and keeps the
// arrival→dispatch→service→completion loop entirely shard-local).  Each
// shard also owns a private workload.Metrics sink; reads merge the sinks in
// shard-index order, so the merged floating-point moments are
// bit-reproducible for every worker count.
//
// What crosses shards — and therefore travels through mailboxes drained at
// epoch barriers — is exactly: requests forwarded to another region by the
// global forward plan (plus their completions travelling back), requests
// hopping off a shard that momentarily has no ACTIVE VM, and the reactive
// recovery of a failed VM.  The periodic controllers (VMC ticks, the
// leader's control era) run on the control timeline at their exact
// timestamps with exclusive access to every shard.
package acm

import (
	"fmt"

	"repro/internal/cloudsim"
	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/gslb"
	"repro/internal/simclock"
	"repro/internal/tracing"
	"repro/internal/workload"
)

// eventLoop holds the sharded-event-loop state of a Manager.
type eventLoop struct {
	mgr *Manager
	se  *simclock.ShardedEngine

	// engines[r][s] is the sub-engine of region r's shard s; base[r] is the
	// global lane index of region r's shard 0.
	engines [][]*simclock.Engine
	base    []int
	total   int

	// Per-(region, shard) client populations and their surge counterparts.
	pops  [][]*workload.Population
	surge [][]*workload.Population

	// Per-(region, shard) cohort-compressed populations: region r's
	// CohortClients split across its shards like the browser population, so
	// the batch submissions and the tracer browsers stay shard-local.
	cohorts [][]*workload.CohortPopulation
	// Per-lane cohort populations attached to the director (the
	// cohort-compressed analogue of globalPops).
	globalCohorts []*workload.CohortPopulation

	// Per-global-shard state, merged in shard-index order at read time.
	metrics   []*workload.Metrics
	local     []uint64
	forwarded []uint64

	// plans[g] is shard g's snapshot of the installed forward plan.  It is
	// republished at the control era (an epoch barrier, while every shard
	// loop is idle), so shard goroutines read their own slot without
	// synchronisation.
	plans []*core.ForwardPlan

	// Global-traffic-director state (nil/empty when GSLB is disabled).
	// gslbTables[g] is lane g's snapshot of the director's routing table,
	// republished at probe ticks (control timeline, epoch barriers) exactly
	// like the forward-plan snapshots; gslbRouted[g][r] counts the requests
	// lane g's dispatcher routed to region r; gslbDisp[g] is lane g's
	// director-facing dispatcher, shared by the lane's global browsers and
	// arrival streams so their routing draws interleave on one lane-local
	// RNG stream.
	gslbTables []*gslb.Table
	gslbRouted [][]uint64
	gslbDisp   []workload.Dispatcher
	globalPops []*workload.Population

	// Latency-aware GSLB state (zero-valued unless the director keeps
	// latency estimates).  streamIdx maps a request's EntryRegion label to
	// its population-stream index; laneRTT[g] is lane g's snapshot of the
	// immutable ground-truth RTT matrix (milliseconds, [stream][region]),
	// republished whenever a scripted link fault rewrites the matrix on the
	// control timeline; gslbObs[g] buffers lane g's completion observations
	// — appended in lane event order, drained into the director in
	// lane-index order right before each probe tick, which keeps the
	// estimator folds byte-reproducible for every worker count.
	latAware  bool
	streamIdx map[string]int
	laneRTT   [][][]float64
	gslbObs   [][]gslbObs

	// Open-loop arrival streams (global or region-pinned) and the lane
	// engine each one runs on.
	varying     []*workload.VaryingOpenLoop
	varyingLane []int
}

// newEventLoop assembles the sharded event loop for a fully built Manager
// (regions, VMCs, overlay, control loop and the initial plan all exist).
func newEventLoop(m *Manager) *eventLoop {
	el := &eventLoop{mgr: m}
	el.base = make([]int, len(m.regions))
	for i, r := range m.regions {
		el.base[i] = el.total
		el.total += r.NumShards()
	}
	el.se = simclock.NewShardedEngine(el.total, m.cfg.Seed, m.cfg.EventEpoch, m.cfg.EventWorkers)

	el.engines = make([][]*simclock.Engine, len(m.regions))
	el.metrics = make([]*workload.Metrics, el.total)
	el.local = make([]uint64, el.total)
	el.forwarded = make([]uint64, el.total)
	el.plans = make([]*core.ForwardPlan, el.total)
	for g := range el.metrics {
		el.metrics[g] = workload.NewMetrics()
		el.plans[g] = m.plan
	}
	el.pops = make([][]*workload.Population, len(m.regions))
	el.surge = make([][]*workload.Population, len(m.regions))
	el.cohorts = make([][]*workload.CohortPopulation, len(m.regions))

	for r, region := range m.regions {
		n := region.NumShards()
		el.engines[r] = make([]*simclock.Engine, n)
		for s := 0; s < n; s++ {
			el.engines[r][s] = el.se.Shard(el.base[r] + s)
		}
		rs := m.cfg.Regions[r]
		el.pops[r] = el.buildPopulations(r, rs, rs.Clients, m.cfg.Seed+uint64(r)*7919+101)
		if rs.SurgeClients > 0 && rs.SurgeAt > 0 {
			el.surge[r] = el.buildPopulations(r, rs, rs.SurgeClients, m.cfg.Seed+uint64(r)*7919+271)
		}
		if rs.CohortClients > 0 {
			el.cohorts[r] = el.buildCohorts(r, rs)
		}
	}
	el.buildGlobalTraffic()
	return el
}

// buildGlobalTraffic assembles the director-facing lanes: per-lane routing
// snapshots and dispatchers, the global client population split across every
// lane, and the open-loop arrival streams (global ones route through the
// lane dispatcher, region-pinned ones through that region's plan
// dispatcher).
func (el *eventLoop) buildGlobalTraffic() {
	m := el.mgr
	if m.director != nil || m.plane != nil {
		el.gslbTables = make([]*gslb.Table, el.total)
		el.gslbRouted = make([][]uint64, el.total)
		el.gslbDisp = make([]workload.Dispatcher, el.total)
		if m.director != nil && m.director.LatencyAware() {
			el.latAware = true
			streams := m.director.Streams()
			el.streamIdx = make(map[string]int, len(streams))
			matrix := make([][]float64, len(streams))
			for s, name := range streams {
				el.streamIdx[name] = s
				row := make([]float64, len(m.regions))
				copy(row, m.cfg.GSLB.RTT[name]) // streams without a row keep 0 ms
				matrix[s] = row
			}
			el.laneRTT = make([][][]float64, el.total)
			el.gslbObs = make([][]gslbObs, el.total)
			for g := range el.laneRTT {
				el.laneRTT[g] = matrix
			}
		}
		for g := 0; g < el.total; g++ {
			if m.plane != nil {
				// Each request lane is homed to one gossip replica and routes
				// on that replica's eventually-consistent table — two lanes
				// can disagree about the same region, which is the point.
				el.gslbTables[g] = m.plane.Table(m.plane.Home(g))
			} else {
				el.gslbTables[g] = m.director.Table()
			}
			el.gslbRouted[g] = make([]uint64, len(m.regions))
			el.gslbDisp[g] = el.gslbDispatcher(g)
		}
		if m.cfg.GlobalClients > 0 {
			el.globalPops = make([]*workload.Population, el.total)
			seedBase := m.cfg.Seed ^ hashString("gslb-clients")
			for g := 0; g < el.total; g++ {
				el.globalPops[g] = workload.NewPopulation(workload.PopulationConfig{
					Region:        "global",
					IDPrefix:      fmt.Sprintf("global/s%02d", g),
					Clients:       splitClients(m.cfg.GlobalClients, el.total, g),
					Mix:           m.cfg.GlobalMix,
					ThinkTimeMean: m.cfg.ThinkTime,
					Timeout:       m.cfg.RequestTimeout,
					RampUp:        m.cfg.ControlInterval / 2,
					Tracer:        m.tracer,
				}, simclock.NewStreamRNG(seedBase, uint64(g)), el.gslbDisp[g], el.metrics[g])
			}
		}
		if m.cfg.CohortClients > 0 {
			el.globalCohorts = make([]*workload.CohortPopulation, el.total)
			seedBase := m.cfg.Seed ^ hashString("gslb-cohorts")
			for g := 0; g < el.total; g++ {
				el.globalCohorts[g] = workload.NewCohortPopulation(workload.CohortConfig{
					Region:         "global",
					IDPrefix:       fmt.Sprintf("global/s%02d-tracer", g),
					Clients:        splitClients(m.cfg.CohortClients, el.total, g),
					Mix:            m.cfg.GlobalMix,
					ThinkTimeMean:  m.cfg.ThinkTime,
					Tick:           m.cfg.CohortTick,
					MaxBatch:       m.cfg.CohortMaxBatch,
					TracerFraction: m.cfg.TracerFraction,
					Timeout:        m.cfg.RequestTimeout,
					RampUp:         m.cfg.ControlInterval / 2,
					Seed:           simclock.DeriveSeed(seedBase, uint64(g)),
					Tracer:         m.tracer,
				}, el.gslbDisp[g], el.metrics[g])
			}
		}
	}
	for i, a := range m.cfg.Arrivals {
		var lane int
		var target workload.Dispatcher
		if a.Region == "" {
			// Global stream: spread streams across lanes round-robin and
			// route through the lane's director dispatcher.
			lane = i % el.total
			target = el.gslbDisp[lane]
		} else {
			// Region-pinned stream: one of the region's own lanes, entering
			// through its plan dispatcher like the region's browsers.
			r := m.regionIndex[a.Region]
			s := i % len(el.engines[r])
			lane = el.base[r] + s
			target = el.dispatcher(r, s)
		}
		gen, err := workload.NewVaryingOpenLoop(workload.VaryingOpenLoopConfig{
			Region: a.Name,
			Rate:   a.Rate,
			Mix:    a.Mix,
			Tracer: m.tracer,
		}, simclock.NewStreamRNG(m.cfg.Seed^hashString("arrivals"), uint64(i)), target, el.metrics[lane])
		if err != nil {
			// The rate spec was validated in NewManager; reaching this means
			// a programming error, not a configuration one.
			panic(err)
		}
		el.varying = append(el.varying, gen)
		el.varyingLane = append(el.varyingLane, lane)
	}
}

// gslbObs is one buffered completion observation: the request's population
// stream, the region that served it, the ground-truth round trip it
// experienced (captured at dispatch, so in-flight requests report the
// pre-fault value after a link fault — exactly what a passive learner sees)
// and the number of client interactions it stood for.
type gslbObs struct {
	stream, region int
	rttMs          float64
	weight         uint64
}

// gslbDispatcher returns lane g's director-facing entry point: the routing
// table snapshot picks the destination region, a lane-local RNG stream picks
// the destination shard, and cross-lane submissions ride the mailbox with
// the completion re-homed to this lane — exactly the discipline the
// plan-forwarding dispatcher follows, so byte-identical output for every
// worker count is preserved.  On a latency-aware deployment the dispatcher
// also simulates the stream→region round trip (half outbound, half on the
// client-visible completion) and taps every completion into this lane's
// observation buffer for the director's passive latency learning.
func (el *eventLoop) gslbDispatcher(g int) workload.Dispatcher {
	m := el.mgr
	rng := simclock.NewStreamRNG(m.cfg.Seed^hashString("gslb-route"), uint64(g))
	rr := uint64(g) // stagger each lane's round-robin start
	return workload.DispatcherFunc(func(eng *simclock.Engine, req *cloudsim.Request) {
		stream := 0
		if el.latAware {
			stream = el.streamIdx[req.EntryRegion] // unknown labels fold into stream 0
		}
		ri := el.gslbTables[g].RouteStream(stream, rng, &rr)
		el.gslbRouted[g][ri]++
		if req.Trace != nil {
			// Guarded so the detail string is only built for sampled requests.
			req.Trace.Event(tracing.EventGSLBRoute, eng.Now(),
				fmt.Sprintf("region=%s lane=%d", m.regionNames[ri], g))
		}
		dvmc := m.vmcs[m.regionNames[ri]]
		ds := 0
		if n := len(el.engines[ri]); n > 1 {
			ds = rng.Intn(n)
		}
		dg := el.base[ri] + ds

		if !el.latAware {
			if dg == g {
				dvmc.SubmitShard(eng, ds, req)
				return
			}
			req.RehomeOnDone(el.se, g, nil)
			if req.Trace != nil {
				// Guarded so the detail string is only built for sampled requests.
				req.Trace.Event(tracing.EventMailbox, eng.Now(),
					fmt.Sprintf("lane=%d->%d", g, dg))
			}
			el.se.Post(eng, dg, func(dst *simclock.Engine) { dvmc.SubmitShard(dst, ds, req) })
			return
		}

		// The tap wraps OnDone before any re-homing, so it always runs on
		// this lane: the buffer append needs no synchronisation and the
		// return leg shifts the client-visible completion exactly like the
		// plan-forwarding dispatcher's transform does.
		rttMs := el.laneRTT[g][stream][ri]
		oneWay := simclock.Duration(rttMs / 2000)
		if req.Trace != nil {
			// Guarded so the detail string is only built for sampled requests.
			req.Trace.Span(tracing.SpanRTTSend, eng.Now(), oneWay,
				fmt.Sprintf("region=%s rtt=%gms", m.regionNames[ri], rttMs))
		}
		weight := req.Weight()
		prev := req.OnDone
		req.OnDone = func(o cloudsim.Outcome) {
			// The return-leg span starts at the server-side completion; the
			// shifted End below is what the client sees.  The wrap runs before
			// the client's seal, so the span still lands inside the trace.
			if req.Trace != nil {
				req.Trace.Span(tracing.SpanRTTReturn, o.End, oneWay, "")
			}
			o.End = o.End.Add(oneWay)
			el.gslbObs[g] = append(el.gslbObs[g], gslbObs{stream: stream, region: ri, rttMs: rttMs, weight: weight})
			if prev != nil {
				prev(o)
			}
		}
		if dg == g {
			if oneWay > 0 {
				eng.ScheduleFunc(oneWay, func(e *simclock.Engine) { dvmc.SubmitShard(e, ds, req) })
			} else {
				dvmc.SubmitShard(eng, ds, req)
			}
			return
		}
		req.RehomeOnDone(el.se, g, nil)
		if req.Trace != nil {
			// Guarded so the detail string is only built for sampled requests.
			req.Trace.Event(tracing.EventMailbox, eng.Now(),
				fmt.Sprintf("lane=%d->%d", g, dg))
		}
		sendAt := eng.Now().Add(oneWay)
		el.se.Post(eng, dg, func(dst *simclock.Engine) {
			if remaining := sendAt.Sub(dst.Now()); remaining > 0 {
				dst.ScheduleFunc(remaining, func(e2 *simclock.Engine) { dvmc.SubmitShard(e2, ds, req) })
			} else {
				dvmc.SubmitShard(dst, ds, req)
			}
		})
	})
}

// flushGSLBObs drains every lane's observation buffer into the director in
// lane-index order — the fixed fold order that keeps the estimator's
// floating-point state byte-reproducible for every worker count.  Called on
// the control timeline right before each probe tick, while the shard loops
// are idle.
func (el *eventLoop) flushGSLBObs(d *gslb.Director) {
	if !el.latAware {
		return
	}
	for g := range el.gslbObs {
		for _, o := range el.gslbObs[g] {
			d.Observe(o.stream, o.region, o.rttMs, o.weight)
		}
		el.gslbObs[g] = el.gslbObs[g][:0]
	}
}

// scaleLinkRTT multiplies the ground-truth round trip of one
// (stream, region) path by factor and republishes the rewritten matrix to
// every lane snapshot, returning the previous value so a bounded fault can
// restore it.  Control timeline only (epoch barrier).
func (el *eventLoop) scaleLinkRTT(stream, region int, factor float64) float64 {
	prev := el.laneRTT[0][stream][region]
	el.setLinkRTT(stream, region, prev*factor)
	return prev
}

// setLinkRTT rewrites one entry of the ground-truth RTT matrix.  The matrix
// is immutable once published: the rewrite builds a fresh copy and swaps
// every lane's snapshot pointer, so in-flight dispatches keep reading the
// matrix they started with.
func (el *eventLoop) setLinkRTT(stream, region int, ms float64) {
	cur := el.laneRTT[0]
	next := make([][]float64, len(cur))
	for s := range cur {
		next[s] = append([]float64(nil), cur[s]...)
	}
	next[stream][region] = ms
	for g := range el.laneRTT {
		el.laneRTT[g] = next
	}
}

// installGSLBTable republishes a fresh routing-table snapshot to every
// lane's slot.  Called from the director's probe tick on the control
// timeline, i.e. at an epoch barrier while every shard loop is idle.
func (el *eventLoop) installGSLBTable(t *gslb.Table) {
	for g := range el.gslbTables {
		el.gslbTables[g] = t
	}
}

// installGossipTables republishes every gossip replica's routing-table
// snapshot to its homed lanes (lane g reads replica g mod N).  Called from
// the plane's probe and gossip ticks on the control timeline, i.e. at an
// epoch barrier while every shard loop is idle.
func (el *eventLoop) installGossipTables(p *gossip.Plane) {
	for g := range el.gslbTables {
		el.gslbTables[g] = p.Table(p.Home(g))
	}
}

// mergedGSLBRouted folds the per-lane routed counters in lane order,
// returning per-region totals in deployment order.
func (el *eventLoop) mergedGSLBRouted() []uint64 {
	out := make([]uint64, len(el.mgr.regions))
	for g := range el.gslbRouted {
		for r, n := range el.gslbRouted[g] {
			out[r] += n
		}
	}
	return out
}

// splitClients spreads count clients across n shards: shard s receives
// count/n plus one of the count%n remainders.
func splitClients(count, n, s int) int {
	per := count / n
	if s < count%n {
		per++
	}
	return per
}

// buildPopulations creates one population per shard of region r, each bound
// to its shard's dispatcher, metrics sink and a derived RNG stream.
func (el *eventLoop) buildPopulations(r int, rs RegionSetup, clients int, seedBase uint64) []*workload.Population {
	m := el.mgr
	n := len(el.engines[r])
	out := make([]*workload.Population, n)
	for s := 0; s < n; s++ {
		out[s] = workload.NewPopulation(workload.PopulationConfig{
			Region:        rs.Region.Name,
			IDPrefix:      shardPrefix(rs.Region.Name, s),
			Clients:       splitClients(clients, n, s),
			Mix:           rs.Mix,
			ThinkTimeMean: m.cfg.ThinkTime,
			Timeout:       m.cfg.RequestTimeout,
			RampUp:        m.cfg.ControlInterval / 2,
			Tracer:        m.tracer,
		}, simclock.NewStreamRNG(seedBase, uint64(s)), el.dispatcher(r, s), el.metrics[el.base[r]+s])
	}
	return out
}

// buildCohorts creates one cohort-compressed population per shard of region
// r, splitting the region's CohortClients like the browser population so the
// batch submissions and the tracer browsers stay shard-local.
func (el *eventLoop) buildCohorts(r int, rs RegionSetup) []*workload.CohortPopulation {
	m := el.mgr
	n := len(el.engines[r])
	out := make([]*workload.CohortPopulation, n)
	seedBase := m.cfg.Seed ^ hashString("cohort")
	for s := 0; s < n; s++ {
		out[s] = workload.NewCohortPopulation(workload.CohortConfig{
			Region:         rs.Region.Name,
			IDPrefix:       shardPrefix(rs.Region.Name, s) + "-tracer",
			Clients:        splitClients(rs.CohortClients, n, s),
			Mix:            rs.Mix,
			ThinkTimeMean:  m.cfg.ThinkTime,
			Tick:           m.cfg.CohortTick,
			MaxBatch:       m.cfg.CohortMaxBatch,
			TracerFraction: m.cfg.TracerFraction,
			Timeout:        m.cfg.RequestTimeout,
			RampUp:         m.cfg.ControlInterval / 2,
			Seed:           simclock.DeriveSeed(seedBase, uint64(r), uint64(s)),
			Tracer:         m.tracer,
		}, el.dispatcher(r, s), el.metrics[el.base[r]+s])
	}
	return out
}

// shardPrefix labels one shard's browsers ("region1/s03").
func shardPrefix(region string, s int) string {
	return fmt.Sprintf("%s/s%02d", region, s)
}

// dispatcher returns the entry load balancer of region r's shard s.  Local
// requests dispatch inside the shard; the forward plan can route a request
// to another region, which crosses shards and therefore goes through the
// destination shard's mailbox, with the completion posted back to this
// shard.
func (el *eventLoop) dispatcher(r, s int) workload.Dispatcher {
	m := el.mgr
	g := el.base[r] + s
	regionName := m.regionNames[r]
	vmc := m.vmcs[regionName]
	rng := simclock.NewStreamRNG(m.cfg.Seed^hashString(regionName), uint64(s))
	return workload.DispatcherFunc(func(eng *simclock.Engine, req *cloudsim.Request) {
		dest := el.plans[g].Destination(regionName, rng.Float64())
		if dest == regionName {
			el.local[g]++
			vmc.SubmitShard(eng, s, req)
			return
		}
		el.forwarded[g]++
		req.Forwarded = true
		latMs := m.net.Latency(regionName, dest)
		if latMs != latMs || latMs > 1e6 { // NaN or unreachable: process locally
			vmc.SubmitShard(eng, s, req)
			return
		}
		oneWay := simclock.Duration(latMs / 1000)
		dr := m.regionIndex[dest]
		dstShards := len(el.engines[dr])
		ds := 0
		if dstShards > 1 {
			ds = rng.Intn(dstShards)
		}
		dg := el.base[dr] + ds
		dvmc := m.vmcs[dest]
		if req.Trace != nil {
			// Guarded so the detail strings are only built for sampled requests.
			req.Trace.Span(tracing.SpanForward, eng.Now(), oneWay,
				fmt.Sprintf("%s->%s", regionName, dest))
			req.Trace.Event(tracing.EventMailbox, eng.Now(),
				fmt.Sprintf("lane=%d->%d", g, dg))
		}

		// The request will complete on a foreign shard: re-home the
		// completion as a mailbox post back to this shard (where the
		// browser's think timer and this shard's metrics live) and shift the
		// client-visible completion by the return latency, exactly like the
		// serial dispatcher does.
		req.RehomeOnDone(el.se, g, func(o *cloudsim.Outcome) { o.End = o.End.Add(oneWay) })

		// One-way overlay latency: the post is delivered at the next epoch
		// barrier; any latency still outstanding is scheduled on the
		// destination shard's own timeline.
		sendAt := eng.Now().Add(oneWay)
		el.se.Post(eng, dg, func(dst *simclock.Engine) {
			if remaining := sendAt.Sub(dst.Now()); remaining > 0 {
				dst.ScheduleFunc(remaining, func(e2 *simclock.Engine) { dvmc.SubmitShard(e2, ds, req) })
			} else {
				dvmc.SubmitShard(dst, ds, req)
			}
		})
	})
}

// start launches the controllers, the per-shard populations and the surge
// timers on the sharded engine.
func (el *eventLoop) start() {
	m := el.mgr
	for r, name := range m.regionNames {
		m.vmcs[name].StartSharded(el.se, el.engines[r])
		for s, pop := range el.pops[r] {
			pop.Start(el.engines[r][s])
		}
		for s, pop := range el.surge[r] {
			pop, eng := pop, el.engines[r][s]
			eng.ScheduleFunc(m.cfg.Regions[r].SurgeAt, func(e *simclock.Engine) { pop.Start(e) })
		}
		for s, c := range el.cohorts[r] {
			c.Start(el.engines[r][s])
		}
	}
	for g, pop := range el.globalPops {
		pop.Start(el.se.Shard(g))
	}
	for g, c := range el.globalCohorts {
		c.Start(el.se.Shard(g))
	}
	for i, gen := range el.varying {
		gen.Start(el.se.Shard(el.varyingLane[i]))
	}
}

// stop halts every population and controller.
func (el *eventLoop) stop() {
	m := el.mgr
	for r, name := range m.regionNames {
		for _, pop := range el.pops[r] {
			pop.Stop()
		}
		for _, pop := range el.surge[r] {
			pop.Stop()
		}
		for _, c := range el.cohorts[r] {
			c.Stop()
		}
		m.vmcs[name].Stop()
	}
	for _, pop := range el.globalPops {
		pop.Stop()
	}
	for _, c := range el.globalCohorts {
		c.Stop()
	}
	for _, gen := range el.varying {
		gen.Stop()
	}
}

// mergedMetrics folds the per-shard sinks in shard-index order — the fixed
// fold order that makes the merged moments bit-reproducible.
func (el *eventLoop) mergedMetrics() *workload.Metrics {
	out := workload.NewMetrics()
	for _, shardMetrics := range el.metrics {
		out.Merge(shardMetrics)
	}
	return out
}

// counters returns the merged local/forwarded request counts.
func (el *eventLoop) counters() (local, forwarded uint64) {
	for g := range el.local {
		local += el.local[g]
		forwarded += el.forwarded[g]
	}
	return local, forwarded
}

// installPlan republishes the freshly installed forward plan to every
// shard's snapshot slot.  Called from the control era, i.e. at an epoch
// barrier while every shard loop is idle.
func (el *eventLoop) installPlan(p *core.ForwardPlan) {
	for g := range el.plans {
		el.plans[g] = p
	}
}
