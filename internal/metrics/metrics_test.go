package metrics

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// The conformance suite for the text encoder: the output must be valid
// Prometheus text exposition format v0.0.4 — HELP/TYPE preambles, escaped
// label values, cumulative monotone histogram buckets with a mandatory +Inf —
// and byte-deterministic for a given registry state.

func TestCounterText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(Opts{Name: "requests_total", Help: "Total requests.", Labels: []string{"region"}})
	c.Add(3, "eu")
	c.Add(2, "us")
	c.Add(1, "eu")

	want := strings.Join([]string{
		"# HELP requests_total Total requests.",
		"# TYPE requests_total counter",
		`requests_total{region="eu"} 4`,
		`requests_total{region="us"} 2`,
		"",
	}, "\n")
	if got := r.Text(); got != want {
		t.Fatalf("counter text:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestGaugeUnlabelled(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge(Opts{Name: "temperature", Help: "Current temperature."})
	g.Set(-3.25)

	want := "# HELP temperature Current temperature.\n# TYPE temperature gauge\ntemperature -3.25\n"
	if got := r.Text(); got != want {
		t.Fatalf("gauge text:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestCounterSetIsMonotone(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(Opts{Name: "events_total", Help: "h"})
	c.Set(10)
	c.Set(7) // a mirrored total can never regress; the clamp keeps 10
	if got := r.Text(); !strings.Contains(got, "events_total 10") {
		t.Fatalf("Set regressed the counter:\n%s", got)
	}
	c.Set(12)
	if got := r.Text(); !strings.Contains(got, "events_total 12") {
		t.Fatalf("Set did not advance the counter:\n%s", got)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(Opts{Name: "odd_total", Help: "h", Labels: []string{"name"}})
	c.Add(1, "a\\b\"c\nd")

	if got := r.Text(); !strings.Contains(got, `odd_total{name="a\\b\"c\nd"} 1`) {
		t.Fatalf("label value not escaped per the exposition format:\n%s", got)
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge(Opts{Name: "g", Help: "line one\nline two \\ backslash"})
	if got := r.Text(); !strings.Contains(got, `# HELP g line one\nline two \\ backslash`) {
		t.Fatalf("HELP text not escaped:\n%s", got)
	}
}

func TestHistogramText(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Opts{Name: "latency_seconds", Help: "h", Labels: []string{"stream"}}, []float64{0.1, 1})
	h.Observe(0.05, "web")
	h.Observe(0.5, "web")
	h.Observe(5, "web")

	got := r.Text()
	for _, line := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{stream="web",le="0.1"} 1`,
		`latency_seconds_bucket{stream="web",le="1"} 2`,
		`latency_seconds_bucket{stream="web",le="+Inf"} 3`,
		`latency_seconds_sum{stream="web"} 5.55`,
		`latency_seconds_count{stream="web"} 3`,
	} {
		if !strings.Contains(got, line) {
			t.Fatalf("histogram text missing %q:\n%s", line, got)
		}
	}
	// Buckets must be cumulative and monotone non-decreasing ending at +Inf.
	var prev uint64
	var sawInf bool
	for _, line := range strings.Split(got, "\n") {
		if !strings.HasPrefix(line, "latency_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseUint(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = v
		sawInf = strings.Contains(line, `le="+Inf"`)
	}
	if !sawInf {
		t.Fatal("histogram has no +Inf bucket, or +Inf is not last")
	}
}

func TestHistogramSetCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Opts{Name: "rt_seconds", Help: "h"}, []float64{1, 2})
	h.SetCumulative([]uint64{3, 1, 2}, 9.5, 6)

	got := r.Text()
	for _, line := range []string{
		`rt_seconds_bucket{le="1"} 3`,
		`rt_seconds_bucket{le="2"} 4`,
		`rt_seconds_bucket{le="+Inf"} 6`,
		"rt_seconds_sum 9.5",
		"rt_seconds_count 6",
	} {
		if !strings.Contains(got, line) {
			t.Fatalf("SetCumulative text missing %q:\n%s", line, got)
		}
	}
}

func TestChildrenSortedDeterministically(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge(Opts{Name: "v", Help: "h", Labels: []string{"a", "b"}})
	// Insertion order differs from sort order on purpose.
	g.Set(1, "z", "1")
	g.Set(2, "a", "2")
	g.Set(3, "m", "0")

	first := r.Text()
	for i := 0; i < 50; i++ {
		if r.Text() != first {
			t.Fatal("encoding is not deterministic across calls")
		}
	}
	za := strings.Index(first, `a="a"`)
	zm := strings.Index(first, `a="m"`)
	zz := strings.Index(first, `a="z"`)
	if !(za < zm && zm < zz) {
		t.Fatalf("children not sorted by label values:\n%s", first)
	}
}

func TestNameValidation(t *testing.T) {
	for name, ok := range map[string]bool{
		"requests_total":  true,
		"acm:eras":        true,
		"_hidden":         true,
		"9lives":          false,
		"has-dash":        false,
		"":                false,
		"ünïcode":         false,
		"a.b":             false,
		"valid_name_2":    true,
		"UPPER_ok":        true,
		"trailing_space ": false,
	} {
		if got := ValidMetricName(name); got != ok {
			t.Errorf("ValidMetricName(%q) = %v, want %v", name, got, ok)
		}
	}
	if ValidLabelName("le:x") {
		t.Error("label names must not contain colons")
	}
	if !ValidLabelName("region") {
		t.Error("plain label name rejected")
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter(Opts{Name: "dup", Help: "h"})
	mustPanic("duplicate name", func() { r.Gauge(Opts{Name: "dup", Help: "h"}) })
	mustPanic("invalid name", func() { r.Counter(Opts{Name: "bad-name", Help: "h"}) })
	mustPanic("invalid label", func() { r.Counter(Opts{Name: "c", Help: "h", Labels: []string{"bad-label"}}) })
	mustPanic("no buckets", func() { r.Histogram(Opts{Name: "h1", Help: "h"}, nil) })
	mustPanic("non-increasing buckets", func() { r.Histogram(Opts{Name: "h2", Help: "h"}, []float64{1, 1}) })
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Gauge(Opts{Name: "up", Help: "h"}).Set(1)

	req := httptest.NewRequest("GET", "/metrics", nil)
	w := httptest.NewRecorder()
	Handler(r).ServeHTTP(w, req)

	if ct := w.Header().Get("Content-Type"); ct != TextContentType {
		t.Fatalf("content type %q, want %q", ct, TextContentType)
	}
	if body := w.Body.String(); !strings.Contains(body, "up 1") {
		t.Fatalf("handler body:\n%s", body)
	}

	// A nil registry serves an empty exposition rather than panicking.
	w = httptest.NewRecorder()
	Handler(nil).ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("nil-registry handler status %d", w.Code)
	}
}

func TestDescribe(t *testing.T) {
	r := NewRegistry()
	r.Counter(Opts{Name: "b_total", Help: "b", Source: "pkg/b"})
	r.Histogram(Opts{Name: "a_seconds", Help: "a", Source: "pkg/a", Labels: []string{"x"}}, []float64{1, 2})

	descs := r.Describe()
	if len(descs) != 2 {
		t.Fatalf("got %d descs", len(descs))
	}
	// Registration order, not name order.
	if descs[0].Name != "b_total" || descs[1].Name != "a_seconds" {
		t.Fatalf("descs out of registration order: %+v", descs)
	}
	if descs[1].Kind != KindHistogram || len(descs[1].Buckets) != 2 || descs[1].Labels[0] != "x" {
		t.Fatalf("histogram desc wrong: %+v", descs[1])
	}
}
