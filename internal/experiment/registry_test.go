package experiment

import (
	"strings"
	"testing"

	"repro/internal/simclock"
)

func TestRegistryContainsPaperScenarios(t *testing.T) {
	names := ScenarioNames()
	for _, want := range []string{"figure3", "figure4", "homogeneous", "elasticity"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("registry missing %q (have %v)", want, names)
		}
	}
	if ScenarioDescription("figure3") == "" {
		t.Errorf("figure3 should have a description")
	}
	sc, err := BuildScenario("figure3", 42)
	if err != nil {
		t.Fatalf("BuildScenario: %v", err)
	}
	if sc.Seed != 42 || len(sc.Regions) != 2 {
		t.Fatalf("built scenario wrong: %+v", sc)
	}
	if _, err := BuildScenario("no-such-scenario", 1); err == nil {
		t.Fatalf("unknown scenario should fail")
	}
}

func TestRegisterScenarioRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate registration should panic")
		}
	}()
	RegisterScenario("figure3", "dup", Figure3Scenario)
}

func TestMatrixExpand(t *testing.T) {
	m := Matrix{
		Scenarios:    []string{"figure3", "figure4"},
		Policies:     []string{"policy1", "policy2"},
		Betas:        []float64{0.25, 0.75},
		Replications: 2,
		BaseSeed:     7,
		Horizon:      30 * simclock.Minute,
	}
	jobs, err := m.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(jobs) != m.Size() || len(jobs) != 2*2*2*2 {
		t.Fatalf("expected %d jobs, got %d", m.Size(), len(jobs))
	}
	for i, j := range jobs {
		if j.Index != i {
			t.Errorf("job %d has index %d", i, j.Index)
		}
		if j.Scenario.Horizon != 30*simclock.Minute {
			t.Errorf("job %d horizon not overridden: %v", i, j.Scenario.Horizon)
		}
		if !strings.Contains(j.Scenario.Name, "-beta") || !strings.Contains(j.Scenario.Name, "-rep") {
			t.Errorf("job %d name should encode beta and replication: %q", i, j.Scenario.Name)
		}
	}
	// Replications use independent derived seed streams; the same replication
	// shares its seed across cells for paired comparisons.
	if jobs[0].Scenario.Seed == jobs[1].Scenario.Seed {
		t.Errorf("replications should use distinct seeds")
	}
	if jobs[0].Scenario.Seed != jobs[2].Scenario.Seed {
		t.Errorf("the same replication should share its seed across policies: %d vs %d",
			jobs[0].Scenario.Seed, jobs[2].Scenario.Seed)
	}
	if jobs[0].Scenario.Seed != simclock.DeriveSeed(7, 0) {
		t.Errorf("seed derivation must be DeriveSeed(base, rep)")
	}

	// Expansion is pure: a second expansion yields the identical job list.
	again, err := m.Expand()
	if err != nil {
		t.Fatalf("second Expand: %v", err)
	}
	for i := range jobs {
		if jobs[i].Scenario.Name != again[i].Scenario.Name ||
			jobs[i].Scenario.Seed != again[i].Scenario.Seed ||
			jobs[i].Policy.Key != again[i].Policy.Key {
			t.Fatalf("expansion not reproducible at job %d", i)
		}
	}
}

func TestMatrixExpandDefaultsAndErrors(t *testing.T) {
	jobs, err := Matrix{Scenarios: []string{"figure3"}, BaseSeed: 1}.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(jobs) != 3 {
		t.Fatalf("empty policy list should select the paper's three policies, got %d jobs", len(jobs))
	}
	for _, j := range jobs {
		if strings.Contains(j.Scenario.Name, "-beta") || strings.Contains(j.Scenario.Name, "-rep") {
			t.Errorf("no beta/rep suffix expected without overrides: %q", j.Scenario.Name)
		}
		if j.Scenario.Beta != 0.5 {
			t.Errorf("scenario default beta should be kept, got %v", j.Scenario.Beta)
		}
	}
	if _, err := (Matrix{}).Expand(); err == nil {
		t.Fatalf("matrix without scenarios should fail")
	}
	if _, err := (Matrix{Scenarios: []string{"nope"}}).Expand(); err == nil {
		t.Fatalf("unknown scenario should fail")
	}
	if _, err := (Matrix{Scenarios: []string{"figure3"}, Policies: []string{"bogus"}}).Expand(); err == nil {
		t.Fatalf("unknown policy should fail")
	}
	if _, err := (Matrix{Scenarios: []string{"figure3"}, Betas: []float64{1.5}}).Expand(); err == nil {
		t.Fatalf("out-of-range beta should fail instead of being silently reset")
	}
}
