package simclock

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the engine's concurrency seam: a bounded fan-out primitive
// (ForEach) and the control-tick parallel-phase hook (Engine.ParallelPhase)
// that lets an event handler farm shard-local work out to goroutines while
// the simulated clock stands still.
//
// The engine itself stays single-threaded by design — events fire one at a
// time and the queue is never touched concurrently.  What ParallelPhase adds
// is a strictly bounded window *inside* one event during which goroutines may
// run, under a hard contract: they operate on disjoint state (one shard
// each), they may read the engine's clock, and they must not schedule events,
// consume the engine's RNG, or touch any other shard's state.  The engine
// enforces the scheduling half of that contract at runtime: Schedule /
// ScheduleAt / Ticker panic when called during a parallel phase, so a
// cross-shard mutation that reaches the event queue is caught immediately
// instead of surfacing as a nondeterministic run.

// ForEach runs fn(0), ..., fn(n-1) on up to workers goroutines and blocks
// until every call has returned (the barrier).  With workers <= 1 — or n <= 1
// — the calls run inline on the caller's goroutine in index order, making the
// sequential configuration a true fast path: no goroutines, no channels, no
// synchronisation.
//
// Indices are handed out through an atomic counter (work stealing), so
// workers that finish cheap indices immediately pick up the next one and an
// uneven cost distribution across indices does not serialise the phase.  fn
// must be safe to call concurrently for distinct indices.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ParallelPhase runs fn(0), ..., fn(n-1) on up to workers goroutines from
// inside an event handler and returns only when every call has completed —
// the barrier at the control-tick boundary.  The simulated clock does not
// advance and no other event fires while the phase runs, so fn may read
// e.Now() freely; scheduling events from inside the phase panics (see the
// contract above).  Results must be written to per-index state and merged by
// the caller after ParallelPhase returns, in index order, so the merged
// output is independent of goroutine scheduling.
func (e *Engine) ParallelPhase(n, workers int, fn func(i int)) {
	if e.inParallelPhase {
		panic("simclock: nested ParallelPhase")
	}
	e.inParallelPhase = true
	defer func() { e.inParallelPhase = false }()
	ForEach(n, workers, fn)
}

// InParallelPhase reports whether the engine is currently inside a
// ParallelPhase fan-out (true only on the goroutines of that phase and on the
// event handler driving it).
func (e *Engine) InParallelPhase() bool { return e.inParallelPhase }
