package tracing

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/simclock"
)

// Chrome trace-event export: the collected request traces and the engine
// flight recorder rendered as the JSON object format of the Trace Event
// specification, loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
// Requests live in pid 1 (one thread per trace, canonical order); the engine
// flight recorder lives in pid 2 (one thread per shard lane plus the control
// timeline).  Timestamps are sim-time microseconds.
//
// Byte determinism: traces are exported in canonical trace-ID order, events
// within a trace in causal append order, flight-recorder slices in (epoch,
// lane) order, and args maps marshal with sorted keys (encoding/json) — so
// the bytes depend only on the simulated history, never on worker
// interleavings.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const (
	pidRequests = 1
	pidEngine   = 2
)

// us converts a sim timestamp to trace-event microseconds.
func us(t simclock.Time) float64 { return t.Seconds() * 1e6 }

// usd converts a sim duration to trace-event microseconds.
func usd(d simclock.Duration) float64 { return d.Seconds() * 1e6 }

// requestEvents renders one trace as trace events on its own thread.
func requestEvents(rt *RequestTrace, tid int) []chromeEvent {
	end := rt.End
	if !rt.Sealed {
		end = rt.Issued
		for _, ev := range rt.Events {
			if at := ev.At.Add(ev.Dur); at > end {
				end = at
			}
		}
	}
	outcome := rt.Outcome
	if !rt.Sealed {
		outcome = "unsealed"
	}
	out := []chromeEvent{
		{Name: "thread_name", Ph: "M", Pid: pidRequests, Tid: tid,
			Args: map[string]any{"name": fmt.Sprintf("%s #%d", rt.Stream, rt.RequestID)}},
		{Name: SpanRequest, Cat: "request", Ph: "X", Ts: us(rt.Issued), Dur: usd(end.Sub(rt.Issued)),
			Pid: pidRequests, Tid: tid,
			Args: map[string]any{
				"trace_id": rt.IDString(), "stream": rt.Stream, "request_id": rt.RequestID,
				"weight": rt.Weight, "outcome": outcome, "vm": rt.VM, "region": rt.Region,
			}},
	}
	for _, ev := range rt.Events {
		ce := chromeEvent{Name: ev.Name, Cat: "request", Ts: us(ev.At), Pid: pidRequests, Tid: tid}
		if ev.Detail != "" {
			ce.Args = map[string]any{"detail": ev.Detail}
		}
		if ev.Dur > 0 {
			ce.Ph, ce.Dur = "X", usd(ev.Dur)
		} else {
			ce.Ph, ce.S = "i", "t"
		}
		out = append(out, ce)
	}
	if rt.Sealed && rt.Outcome == OutcomeOK {
		if enq, ok := rt.enqueueAt(); ok && rt.Start >= enq {
			out = append(out, chromeEvent{Name: SpanQueue, Cat: "request", Ph: "X",
				Ts: us(enq), Dur: usd(rt.Start.Sub(enq)), Pid: pidRequests, Tid: tid})
		}
		out = append(out, chromeEvent{Name: SpanService, Cat: "request", Ph: "X",
			Ts: us(rt.Start), Dur: usd(rt.End.Sub(rt.Start)), Pid: pidRequests, Tid: tid,
			Args: map[string]any{"vm": rt.VM}})
	}
	return out
}

// flightEvents renders the flight recorder as per-lane busy slices, barrier
// drains and control-phase instants.
func flightEvents(fr *simclock.FlightRecorder) []chromeEvent {
	if fr == nil {
		return nil
	}
	util := fr.Utilization()
	lanes := len(util)
	laneName := func(lane int) string {
		if lane == lanes-1 {
			return "control"
		}
		return fmt.Sprintf("shard%d", lane)
	}
	var out []chromeEvent
	for lane := 0; lane < lanes; lane++ {
		out = append(out, chromeEvent{Name: "thread_name", Ph: "M", Pid: pidEngine, Tid: lane + 1,
			Args: map[string]any{"name": laneName(lane)}})
	}
	for _, rec := range fr.Epochs() {
		if rec.Fired > 0 {
			out = append(out, chromeEvent{Name: "epoch", Cat: "engine", Ph: "X",
				Ts: us(rec.Start), Dur: usd(rec.Busy()), Pid: pidEngine, Tid: rec.Shard + 1,
				Args: map[string]any{"fired": rec.Fired}})
		}
		if rec.Drained > 0 {
			out = append(out, chromeEvent{Name: "mailbox.drain", Cat: "engine", Ph: "i", S: "t",
				Ts: us(rec.End), Pid: pidEngine, Tid: rec.Shard + 1,
				Args: map[string]any{"posts": rec.Drained}})
		}
	}
	for _, ph := range fr.Phases() {
		out = append(out, chromeEvent{Name: ph.Name, Cat: "engine", Ph: "i", S: "t",
			Ts: us(ph.At), Pid: pidEngine, Tid: lanes,
			Args: map[string]any{"items": ph.Items}})
	}
	return out
}

// WriteChrome writes the collected traces (canonical order) and the flight
// recorder (nil allowed) as Chrome trace-event JSON.
func WriteChrome(w io.Writer, traces []*RequestTrace, fr *simclock.FlightRecorder) error {
	events := []chromeEvent{
		{Name: "process_name", Ph: "M", Pid: pidRequests, Tid: 0, Args: map[string]any{"name": "requests"}},
	}
	for i, rt := range traces {
		events = append(events, requestEvents(rt, i+1)...)
	}
	if fr != nil {
		events = append(events, chromeEvent{Name: "process_name", Ph: "M", Pid: pidEngine, Tid: 0,
			Args: map[string]any{"name": "engine"}})
		events = append(events, flightEvents(fr)...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ChromeJSON renders WriteChrome to a byte slice.
func ChromeJSON(traces []*RequestTrace, fr *simclock.FlightRecorder) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, traces, fr); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
