// Command mdcheck validates the relative links in markdown documents: every
// `[text](target)` whose target is not an absolute URL must point at an
// existing file or directory (relative to the document), and a `#fragment` on
// a markdown target must match a heading in the linked document (or the same
// document for bare `#fragment` links).  Anchors are matched with the
// GitHub-style slug rules (lowercase, punctuation stripped, spaces to
// hyphens, duplicate slugs numbered).
//
// It exists so the repo's documentation system can promise that committed
// docs never point at files or sections that a refactor moved away; the CI
// docs job runs it over README.md, ROADMAP.md, CHANGES.md, PAPER.md and
// docs/ via `make docs-check`.
//
// Usage:
//
//	mdcheck README.md docs/*.md
//
// Exit status is non-zero when any link is dead, with one line per failure.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mdcheck <file.md> [file.md ...]")
		os.Exit(2)
	}
	broken := 0
	for _, path := range os.Args[1:] {
		problems, err := checkFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdcheck: %v\n", err)
			os.Exit(2)
		}
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "mdcheck: %d dead link(s)\n", broken)
		os.Exit(1)
	}
	fmt.Printf("mdcheck: %d file(s) clean\n", len(os.Args)-1)
}

// linkRE matches inline markdown links [text](target).  Images ![alt](target)
// are matched too (the leading ! is simply not captured); reference-style
// links are not used in this repo.
var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkFile returns one message per dead link in the document.
func checkFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var problems []string
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range linkRE.FindAllStringSubmatch(stripCode(line), -1) {
			target := m[1]
			if reason := checkTarget(path, target); reason != "" {
				problems = append(problems, fmt.Sprintf("%s:%d: dead link %q: %s", path, i+1, target, reason))
			}
		}
	}
	return problems, nil
}

// stripCode removes inline code spans so example links inside backticks are
// not validated.
func stripCode(line string) string {
	var b strings.Builder
	inCode := false
	for _, r := range line {
		if r == '`' {
			inCode = !inCode
			continue
		}
		if !inCode {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// checkTarget validates one link target relative to the document holding it,
// returning an empty string when the target resolves.
func checkTarget(doc, target string) string {
	switch {
	case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"):
		// External URLs are out of scope: checking them needs the network,
		// which CI docs runs must not depend on.
		return ""
	case strings.HasPrefix(target, "#"):
		return checkAnchor(doc, target[1:])
	}
	file, fragment, _ := strings.Cut(target, "#")
	resolved := filepath.Join(filepath.Dir(doc), file)
	info, err := os.Stat(resolved)
	if err != nil {
		return "no such file"
	}
	if fragment == "" {
		return ""
	}
	if info.IsDir() || !strings.HasSuffix(resolved, ".md") {
		return "fragment on a non-markdown target"
	}
	return checkAnchor(resolved, fragment)
}

// checkAnchor verifies that the markdown file contains a heading whose
// GitHub-style slug equals the fragment.
func checkAnchor(mdPath, fragment string) string {
	data, err := os.ReadFile(mdPath)
	if err != nil {
		return "no such file"
	}
	for _, slug := range headingSlugs(string(data)) {
		if slug == fragment {
			return ""
		}
	}
	return fmt.Sprintf("no heading with anchor #%s in %s", fragment, mdPath)
}

// headingSlugs extracts every ATX heading and slugifies it the way GitHub
// anchors do, numbering duplicates (#foo, #foo-1, ...).
func headingSlugs(doc string) []string {
	seen := map[string]int{}
	var slugs []string
	inFence := false
	for _, line := range strings.Split(doc, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(trimmed, "#") {
			continue
		}
		text := strings.TrimLeft(trimmed, "#")
		if text == trimmed || (text != "" && text[0] != ' ' && text[0] != '\t') {
			continue // not a heading: no space after the # run
		}
		slug := slugify(strings.TrimSpace(text))
		if n, dup := seen[slug]; dup {
			seen[slug] = n + 1
			slug = fmt.Sprintf("%s-%d", slug, n)
		} else {
			seen[slug] = 1
		}
		slugs = append(slugs, slug)
	}
	return slugs
}

// slugify lowercases, drops punctuation (keeping letters, digits, spaces and
// hyphens) and turns spaces into hyphens — the GitHub anchor algorithm.
func slugify(heading string) string {
	// Inline code and emphasis markers vanish from anchors.
	heading = strings.NewReplacer("`", "", "*", "").Replace(heading)
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_',
			'a' <= r && r <= 'z',
			'0' <= r && r <= '9',
			r > 127: // non-ASCII letters survive in GitHub slugs
			b.WriteRune(r)
		}
	}
	return b.String()
}
