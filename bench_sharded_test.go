// Sharded region engine benchmarks: one 5x10^3-VM region driven through its
// load balancer and controller at 1, 4 and 16 engine shards.  The per-request
// dispatch scan is O(pool/shards), so on any machine — single-core included —
// the 16-shard configuration sustains a multiple of the single-shard
// throughput; the ns/op ratio of BenchmarkRegionSharded_1 to
// BenchmarkRegionSharded_16 quantifies the win.
package repro

import (
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/pcam"
	"repro/internal/simclock"
)

const (
	benchShardedActive  = 4000
	benchShardedStandby = 1000
	// benchShardedRequests arrive uniformly over one simulated minute —
	// roughly the rate a 2.5x10^4-client population would generate.
	benchShardedRequests = 20000
)

// runShardedRegionBench simulates one minute of heavy traffic against a
// 5x10^3-VM region split across the given number of shards, with the control
// tick's per-shard phase fanned out to tickWorkers goroutines (1 =
// sequential).
func runShardedRegionBench(b *testing.B, shards, tickWorkers int) {
	b.Helper()
	cfg := cloudsim.RegionConfig{
		Name:           "megaregion",
		Provider:       "aws",
		Location:       "bench",
		Type:           cloudsim.M3Medium,
		InitialActive:  benchShardedActive,
		InitialStandby: benchShardedStandby,
		MaxVMs:         benchShardedActive + benchShardedStandby,
		Shards:         shards,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng := simclock.NewEngine(42)
		region := cloudsim.NewRegion(cfg, simclock.NewRNG(42))
		vmc, err := pcam.NewVMC(region, pcam.OraclePredictor{}, pcam.Config{ElasticityEnabled: false, TickWorkers: tickWorkers})
		if err != nil {
			b.Fatal(err)
		}
		vmc.Start(eng)
		served := 0
		for j := 0; j < benchShardedRequests; j++ {
			at := simclock.Duration(float64(j) * 60.0 / benchShardedRequests)
			id := uint64(j)
			eng.ScheduleFunc(at, func(e *simclock.Engine) {
				vmc.Submit(e, &cloudsim.Request{ID: id, ServiceFactor: 1, Arrival: e.Now(),
					OnDone: func(o cloudsim.Outcome) {
						if !o.Dropped {
							served++
						}
					}})
			})
		}
		b.StartTimer()
		if err := eng.Run(5 * simclock.Minute); err != nil && err != simclock.ErrHorizonReached {
			b.Fatal(err)
		}
		b.StopTimer()
		vmc.Stop()
		if served < benchShardedRequests*9/10 {
			b.Fatalf("only %d of %d requests served", served, benchShardedRequests)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(shards), "shards")
	b.ReportMetric(float64(benchShardedRequests)*float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

func BenchmarkRegionSharded_1(b *testing.B)  { runShardedRegionBench(b, 1, 1) }
func BenchmarkRegionSharded_4(b *testing.B)  { runShardedRegionBench(b, 4, 1) }
func BenchmarkRegionSharded_16(b *testing.B) { runShardedRegionBench(b, 16, 1) }

// The _Parallel variants run the 16-shard configuration with the control
// tick's per-shard phase fanned out to 1, 4 and 16 goroutines.  The output is
// byte-identical across the three (the equivalence suite pins that); the
// ns/op ratio quantifies the wall-clock win on multi-core hosts.  On a
// single-core host the expectation is neutrality: the fan-out must cost no
// more than a few percent over the sequential tick.
func BenchmarkRegionSharded_Parallel_1(b *testing.B)  { runShardedRegionBench(b, 16, 1) }
func BenchmarkRegionSharded_Parallel_4(b *testing.B)  { runShardedRegionBench(b, 16, 4) }
func BenchmarkRegionSharded_Parallel_16(b *testing.B) { runShardedRegionBench(b, 16, 16) }

// runEventLoopRegionBench is the same heavy-traffic minute against the
// 16-shard region, but on the parallel event loop: every shard is its own
// sub-engine servicing its arrivals, service completions and rejuvenation
// timers, with the shard loops fanned out to eventWorkers goroutines in
// lockstep epochs (simclock.ShardedEngine).  Arrivals are generated
// shard-locally (request j enters shard j mod 16), so the serviced path —
// the bulk of the run — executes fully in parallel, unlike the _Parallel
// variants above which only parallelise the control tick.  The ns/op ratio
// of BenchmarkRegionSharded_16 (serial event loop, same shard count) to
// BenchmarkRegionSharded_EventLoop_16 is the request-service speedup on a
// multi-core host; on a single core the expectation is rough neutrality
// (epoch barriers must cost no more than a few percent).
func runEventLoopRegionBench(b *testing.B, shards, eventWorkers int) {
	b.Helper()
	cfg := cloudsim.RegionConfig{
		Name:           "megaregion",
		Provider:       "aws",
		Location:       "bench",
		Type:           cloudsim.M3Medium,
		InitialActive:  benchShardedActive,
		InitialStandby: benchShardedStandby,
		MaxVMs:         benchShardedActive + benchShardedStandby,
		Shards:         shards,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		se := simclock.NewShardedEngine(shards, 42, simclock.DefaultEpoch, eventWorkers)
		region := cloudsim.NewRegion(cfg, simclock.NewRNG(42))
		vmc, err := pcam.NewVMC(region, pcam.OraclePredictor{}, pcam.Config{ElasticityEnabled: false, TickWorkers: eventWorkers})
		if err != nil {
			b.Fatal(err)
		}
		engines := make([]*simclock.Engine, shards)
		for s := range engines {
			engines[s] = se.Shard(s)
		}
		vmc.StartSharded(se, engines)
		served := make([]int, shards) // per-shard counters: completions stay shard-local
		for j := 0; j < benchShardedRequests; j++ {
			at := simclock.Duration(float64(j) * 60.0 / benchShardedRequests)
			id := uint64(j)
			shard := j % shards
			engines[shard].ScheduleFunc(at, func(e *simclock.Engine) {
				vmc.SubmitShard(e, shard, &cloudsim.Request{ID: id, ServiceFactor: 1, Arrival: e.Now(),
					OnDone: func(o cloudsim.Outcome) {
						if !o.Dropped {
							served[shard]++
						}
					}})
			})
		}
		b.StartTimer()
		if err := se.Run(5 * simclock.Minute); err != nil && err != simclock.ErrHorizonReached {
			b.Fatal(err)
		}
		b.StopTimer()
		vmc.Stop()
		total := 0
		for _, n := range served {
			total += n
		}
		if total < benchShardedRequests*9/10 {
			b.Fatalf("only %d of %d requests served", total, benchShardedRequests)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(shards), "shards")
	b.ReportMetric(float64(benchShardedRequests)*float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// The _EventLoop variants run the 16-shard configuration with the event loop
// fanned out to 1, 4 and 16 shard-loop goroutines.  Output is byte-identical
// across the three (the event-loop equivalence suite pins that); the ns/op
// ratio against BenchmarkRegionSharded_16 quantifies the request-service
// speedup on multi-core hosts — the number the nightly GOMAXPROCS=4 CI job
// records.
func BenchmarkRegionSharded_EventLoop_1(b *testing.B)  { runEventLoopRegionBench(b, 16, 1) }
func BenchmarkRegionSharded_EventLoop_4(b *testing.B)  { runEventLoopRegionBench(b, 16, 4) }
func BenchmarkRegionSharded_EventLoop_16(b *testing.B) { runEventLoopRegionBench(b, 16, 16) }
