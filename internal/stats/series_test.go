package stats

import (
	"math"
	"testing"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("rmttf")
	if s.Len() != 0 || s.Last() != 0 {
		t.Fatal("empty series should have no points and Last()==0")
	}
	s.Add(0, 10)
	s.Add(10, 20)
	s.Add(20, 30)
	if s.Len() != 3 || s.Last() != 30 {
		t.Fatalf("len=%d last=%f", s.Len(), s.Last())
	}
	if got := s.Values(); len(got) != 3 || got[1] != 20 {
		t.Fatalf("values wrong: %v", got)
	}
	if got := s.Times(); len(got) != 3 || got[2] != 20 {
		t.Fatalf("times wrong: %v", got)
	}
}

func TestSeriesAt(t *testing.T) {
	s := NewSeries("x")
	s.Add(10, 1)
	s.Add(20, 2)
	if s.At(5) != 0 {
		t.Fatal("before first point should be 0")
	}
	if s.At(10) != 1 || s.At(15) != 1 {
		t.Fatal("step interpolation wrong in [10,20)")
	}
	if s.At(20) != 2 || s.At(100) != 2 {
		t.Fatal("step interpolation wrong after last point")
	}
}

func TestSeriesTail(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i <= 100; i++ {
		s.Add(float64(i), float64(i))
	}
	tail := s.Tail(0.3)
	if len(tail) != 31 {
		t.Fatalf("expected 31 tail points, got %d", len(tail))
	}
	if tail[0] != 70 {
		t.Fatalf("tail should start at 70, got %f", tail[0])
	}
	if got := s.Tail(0); got != nil {
		t.Fatal("frac=0 should return nil")
	}
	if got := s.Tail(1.5); len(got) != 101 {
		t.Fatal("frac>=1 should return everything")
	}
	if NewSeries("e").Tail(0.5) != nil {
		t.Fatal("empty series tail should be nil")
	}
	if !almostEqual(s.TailMean(0.3), 85, 1e-9) {
		t.Fatalf("tail mean = %f", s.TailMean(0.3))
	}
	if s.TailStdDev(0.3) <= 0 {
		t.Fatal("tail stddev should be positive")
	}
}

func TestSeriesResample(t *testing.T) {
	s := NewSeries("x")
	s.Add(0, 1)
	s.Add(10, 2)
	s.Add(20, 3)
	r := s.Resample(5)
	if len(r) != 5 || r[0] != 1 || r[4] != 3 {
		t.Fatalf("resample wrong: %v", r)
	}
	if s.Resample(0) != nil || NewSeries("e").Resample(3) != nil {
		t.Fatal("degenerate resample should be nil")
	}
	if one := s.Resample(1); len(one) != 1 || one[0] != 3 {
		t.Fatalf("single-sample resample should return last value, got %v", one)
	}
}

func TestOscillationIndex(t *testing.T) {
	flat := NewSeries("flat")
	osc := NewSeries("osc")
	for i := 0; i < 100; i++ {
		flat.Add(float64(i), 10)
		if i%2 == 0 {
			osc.Add(float64(i), 5)
		} else {
			osc.Add(float64(i), 15)
		}
	}
	if flat.OscillationIndex(0.5) != 0 {
		t.Fatal("flat series should have zero oscillation")
	}
	if osc.OscillationIndex(0.5) <= 0.5 {
		t.Fatalf("alternating series should have large oscillation, got %f", osc.OscillationIndex(0.5))
	}
	if NewSeries("e").OscillationIndex(0.5) != 0 {
		t.Fatal("empty series oscillation should be 0")
	}
}

func TestDirectionChanges(t *testing.T) {
	s := NewSeries("zigzag")
	vals := []float64{1, 2, 1, 2, 1, 2}
	for i, v := range vals {
		s.Add(float64(i), v)
	}
	if got := s.DirectionChanges(1); got != 4 {
		t.Fatalf("expected 4 direction changes, got %d", got)
	}
	mono := NewSeries("mono")
	for i := 0; i < 6; i++ {
		mono.Add(float64(i), float64(i))
	}
	if mono.DirectionChanges(1) != 0 {
		t.Fatal("monotone series should have no direction changes")
	}
}

func TestAnalyzeConvergenceConverged(t *testing.T) {
	a := NewSeries("r1")
	b := NewSeries("r2")
	for i := 0; i <= 100; i++ {
		t_ := float64(i)
		// Both series converge to 100 after t=50.
		if i < 50 {
			a.Add(t_, 50+t_)
			b.Add(t_, 150-t_)
		} else {
			a.Add(t_, 100)
			b.Add(t_, 100)
		}
	}
	rep := AnalyzeConvergence([]*Series{a, b}, 0.3, 0.05)
	if !rep.Converged {
		t.Fatalf("series should converge: %v", rep)
	}
	if math.IsInf(rep.ConvergenceTime, 1) || rep.ConvergenceTime > 60 {
		t.Fatalf("convergence time should be near 50, got %f", rep.ConvergenceTime)
	}
	if rep.String() == "" {
		t.Fatal("report string should not be empty")
	}
}

func TestAnalyzeConvergenceDiverged(t *testing.T) {
	a := NewSeries("r1")
	b := NewSeries("r2")
	for i := 0; i <= 100; i++ {
		a.Add(float64(i), 100)
		b.Add(float64(i), 200)
	}
	rep := AnalyzeConvergence([]*Series{a, b}, 0.3, 0.05)
	if rep.Converged {
		t.Fatal("series at 100 vs 200 must not be reported as converged")
	}
	if rep.RelativeSpread < 0.5 {
		t.Fatalf("spread should be large, got %f", rep.RelativeSpread)
	}
	if !math.IsInf(rep.ConvergenceTime, 1) {
		t.Fatal("non-converged series should have infinite convergence time")
	}
	if rep.String() == "" {
		t.Fatal("report string should not be empty")
	}
}

func TestAnalyzeConvergenceEmpty(t *testing.T) {
	rep := AnalyzeConvergence(nil, 0.3, 0.05)
	if rep.Converged {
		t.Fatal("empty input should not be converged")
	}
}

func TestSeriesSet(t *testing.T) {
	ss := NewSeriesSet("fig3")
	r1 := ss.Add("region1")
	r2 := ss.Add("region2")
	r1.Add(0, 1)
	r2.Add(0, 1)
	if ss.Get("region1") != r1 || ss.Get("missing") != nil {
		t.Fatal("Get lookup broken")
	}
	names := ss.Names()
	if len(names) != 2 || names[0] != "region1" {
		t.Fatalf("names wrong: %v", names)
	}
	rep := ss.Analyze(0.5, 0.05)
	if !rep.Converged {
		t.Fatal("identical constant series should be converged")
	}
	if ss.String() == "" {
		t.Fatal("String should not be empty")
	}
}
