// Cohort-compression benchmarks: the cost of representing 10^4..10^6
// effective clients as counted state buckets plus batched requests.  The
// workload-level benchmarks drive a CohortPopulation against a stub
// dispatcher so the number isolates the cohort machinery itself (binomial
// splits, multinomial class splits, batch emission and tracer browsers); the
// Megaclients benchmark runs the full registered scenario — 10^6 effective
// clients on the 16-shard megaregion — and is the headline perf claim of the
// compression: >= 100x the clients of the 10^3-client scenarios at the same
// order of s/op and B/op.  Both report clients/s (effective clients simulated
// per wall-clock second) and B/client (allocated bytes per effective client)
// as bench-JSON extras so the nightly trend records the per-client cost.
package repro

import (
	"runtime"
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/experiment"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// runCohortPopulationBench simulates one minute of a cohort-compressed
// population against a fixed-delay dispatcher stub.  The 60 s think time
// matches the megaclients scenario, so the per-tick split work — not the
// downstream VM model — dominates the measurement.  Every size simulates the
// same total of 10^6 client-minutes per iteration (the smaller populations
// loop the simulation), keeping each op tens of milliseconds — far above the
// timing jitter of the benchtime=1x regression gate — while the clients/s
// and B/client extras stay per-client comparable across the trio.
func runCohortPopulationBench(b *testing.B, clients int) {
	b.Helper()
	reps := 1_000_000 / clients
	if reps < 1 {
		reps = 1
	}
	b.ReportAllocs()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < reps; r++ {
			eng := simclock.NewEngine(42)
			met := workload.NewMetrics()
			var served uint64
			target := workload.DispatcherFunc(func(e *simclock.Engine, req *cloudsim.Request) {
				arrival := req.Arrival
				e.ScheduleFunc(50*simclock.Millisecond, func(e2 *simclock.Engine) {
					served += req.Weight()
					req.Finish(e2, cloudsim.Outcome{Request: req, Start: arrival, End: e2.Now()})
				})
			})
			c := workload.NewCohortPopulation(workload.CohortConfig{
				Region:         "bench",
				Clients:        clients,
				ThinkTimeMean:  60 * simclock.Second,
				MaxBatch:       128,
				TracerFraction: 0.01,
				Seed:           42,
			}, target, met)
			c.Start(eng)
			if err := eng.Run(60 * simclock.Second); err != nil && err != simclock.ErrHorizonReached {
				b.Fatal(err)
			}
			c.Stop()
			if served == 0 || met.ResponseSamples("bench") == 0 {
				b.Fatalf("degenerate run: served=%d samples=%d", served, met.ResponseSamples("bench"))
			}
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	total := float64(clients) * float64(reps) * float64(b.N)
	b.ReportMetric(total/b.Elapsed().Seconds(), "clients/s")
	b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/total, "B/client")
}

func BenchmarkCohortPopulation_1e4(b *testing.B) { runCohortPopulationBench(b, 10_000) }
func BenchmarkCohortPopulation_1e5(b *testing.B) { runCohortPopulationBench(b, 100_000) }
func BenchmarkCohortPopulation_1e6(b *testing.B) { runCohortPopulationBench(b, 1_000_000) }

// runMegaclientsScenarioBench runs one registered scenario per iteration and
// reports the effective-client throughput and per-client allocation extras.
// A non-nil mutate edits the built scenario before the runs (the traced
// variant switches on the span layer this way).
func runMegaclientsScenarioBench(b *testing.B, name string, mutate func(*experiment.Scenario)) {
	b.Helper()
	np, err := experiment.PolicyByKey("policy2")
	if err != nil {
		b.Fatal(err)
	}
	sc, err := experiment.BuildScenario(name, 42)
	if err != nil {
		b.Fatal(err)
	}
	if mutate != nil {
		mutate(&sc)
	}
	eff := sc.EffectiveClients()
	b.ReportAllocs()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(sc, np)
		if err != nil {
			b.Fatal(err)
		}
		if res.Eras == 0 || res.SuccessRatio < 0.5 {
			b.Fatalf("degenerate run: eras=%d success=%.3f", res.Eras, res.SuccessRatio)
		}
		b.ReportMetric(res.SuccessRatio, "success-ratio")
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	b.ReportMetric(float64(eff)*float64(b.N)/b.Elapsed().Seconds(), "clients/s")
	b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/float64(eff)/float64(b.N), "B/client")
}

// BenchmarkMegaclients runs the full megaclients scenario — 10^6 effective
// clients (1% tracers) against the 16-shard megaregion on the parallel event
// loop, 30 simulated minutes — once per iteration.  Its counterpart below
// runs the same pool, engine and horizon with the ordinary 2x10^3-browser
// population (megaregion-eventloop), so the pair recorded in
// BENCH_baseline.json is the compression claim itself: 500x the effective
// clients within 2x the ns/op and the same order of B/op.
func BenchmarkMegaclients(b *testing.B) { runMegaclientsScenarioBench(b, "megaclients", nil) }

// BenchmarkMegaclientsBaseline_2e3 is the individually simulated reference
// population on the identical deployment (see BenchmarkMegaclients).
func BenchmarkMegaclientsBaseline_2e3(b *testing.B) {
	runMegaclientsScenarioBench(b, "megaregion-eventloop", nil)
}

// BenchmarkMegaclients_Traced is BenchmarkMegaclients with the span layer
// sampling 1% of requests, so the recorded pair prices the observability
// plane at the compression's scale: the delta against the untraced run is
// the whole cost of tracing — sampling decisions on every issue, span
// appends along the sampled paths and trace collection — under the 20%/25%
// regression gate like everything else.
func BenchmarkMegaclients_Traced(b *testing.B) {
	runMegaclientsScenarioBench(b, "megaclients", func(sc *experiment.Scenario) {
		sc.TraceSampleFraction = 0.01
	})
}
