package stats

import (
	"math"
	"testing"
)

// lcg is a tiny deterministic generator so the test needs no seed plumbing.
type lcg uint64

func (l *lcg) next() float64 {
	*l = lcg(uint64(*l)*6364136223846793005 + 1442695040888963407)
	return float64(uint64(*l)>>11) / float64(1<<53)
}

func TestP2QuantileUniform(t *testing.T) {
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
		e := NewP2Quantile(p)
		g := lcg(42)
		exact := make([]float64, 0, 20000)
		for i := 0; i < 20000; i++ {
			x := g.next()
			e.Add(x)
			exact = append(exact, x)
		}
		want := Percentile(exact, p*100)
		got := e.Value()
		if math.Abs(got-want) > 0.02 {
			t.Errorf("p=%v: P² estimate %v, exact %v", p, got, want)
		}
		if e.Count() != 20000 {
			t.Errorf("count = %d", e.Count())
		}
	}
}

func TestP2QuantileExponential(t *testing.T) {
	// Heavy-ish tail: p95 of Exp(1) is -ln(0.05) ≈ 2.996.
	e := NewP2Quantile(0.95)
	g := lcg(7)
	for i := 0; i < 50000; i++ {
		e.Add(-math.Log(1 - g.next()))
	}
	want := -math.Log(0.05)
	if got := e.Value(); math.Abs(got-want)/want > 0.05 {
		t.Errorf("p95 estimate %v, want ≈ %v", e.Value(), want)
	}
}

func TestP2QuantileSmallSamples(t *testing.T) {
	e := NewP2Quantile(0.5)
	if e.Value() != 0 {
		t.Errorf("empty estimator: %v", e.Value())
	}
	e.Add(3)
	if e.Value() != 3 {
		t.Errorf("one sample: %v", e.Value())
	}
	e.Add(1)
	e.Add(2)
	if got := e.Value(); got != 2 {
		t.Errorf("median of {1,2,3} before priming: %v", got)
	}
}

func TestP2QuantileDeterministic(t *testing.T) {
	a, b := NewP2Quantile(0.95), NewP2Quantile(0.95)
	g := lcg(99)
	for i := 0; i < 1000; i++ {
		x := g.next()
		a.Add(x)
		b.Add(x)
	}
	if a.Value() != b.Value() {
		t.Errorf("same stream, different estimates: %v vs %v", a.Value(), b.Value())
	}
}

func TestP2QuantileClampsP(t *testing.T) {
	if got := NewP2Quantile(1.5).P(); got != 0.99 {
		t.Errorf("clamped p = %v, want 0.99", got)
	}
	if got := NewP2Quantile(-1).P(); got != 0.01 {
		t.Errorf("clamped p = %v, want 0.01", got)
	}
}
