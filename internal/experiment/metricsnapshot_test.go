package experiment

import (
	"strings"
	"testing"

	"repro/internal/simclock"
)

// The registry snapshot contract: instruments are written only at control-era
// barriers, from already-merged state, so the Prometheus text exposition is
// byte-identical for any worker count — the metrics plane inherits the
// engine's determinism instead of weakening it.

// registryText runs one scenario through the backend seam and returns the
// final exposition bytes.
func registryText(t *testing.T, name string, eventWorkers int) string {
	t.Helper()
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := BuildScenario(name, 42)
	if err != nil {
		t.Fatal(err)
	}
	sc.Horizon = 10 * simclock.Minute
	sc.EventWorkers = eventWorkers
	b, err := NewBackend(sc, np)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Run(sc.Horizon); err != nil {
		t.Fatal(err)
	}
	return b.Registry().Text()
}

// TestRegistrySnapshotDeterminism replays a gossip GSLB deployment at
// EventWorkers 0, 1, 4 and GOMAXPROCS and requires identical exposition
// bytes.  GSLB scenarios promote EventWorkers 0 to the event loop (they
// always run epochal), so all four configurations are the same engine — any
// divergence would mean an instrument was written off the barrier or from
// unmerged per-shard state.
func TestRegistrySnapshotDeterminism(t *testing.T) {
	ref := registryText(t, "global-gossip", 0)
	if ref == "" {
		t.Fatal("empty exposition")
	}
	workerCounts := append([]int{1}, eventLoopWorkerCounts()...)
	for _, workers := range workerCounts {
		if got := registryText(t, "global-gossip", workers); got != ref {
			t.Fatalf("EventWorkers=%d exposition diverged from EventWorkers=0\n--- got ---\n%.3000s\n--- want ---\n%.3000s", workers, got, ref)
		}
	}
}

// TestRegistryCoversAcceptanceFamilies: a gossip deployment's exposition must
// carry the family groups the metrics plane promises — region health and
// routed counts, gossip convergence, and the workload latency histogram with
// its +Inf bucket.
func TestRegistryCoversAcceptanceFamilies(t *testing.T) {
	text := registryText(t, "global-gossip", 1)
	for _, want := range []string{
		"# TYPE gslb_region_health gauge",
		"# TYPE gslb_routed_requests_total counter",
		"# TYPE gossip_convergence_max_divergence gauge",
		"# TYPE gossip_rounds_total counter",
		"# TYPE workload_response_time_seconds histogram",
		`workload_response_time_seconds_bucket{le="+Inf"}`,
		"workload_response_time_seconds_count",
		"# TYPE acm_rmttf_seconds gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q\n%.3000s", want, text)
		}
	}
}
