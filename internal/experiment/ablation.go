package experiment

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/acm"
	"repro/internal/core"
	"repro/internal/simclock"
)

// AblationPoint is one row of an ablation sweep: the value of the swept
// parameter and the summary metrics of the corresponding run.
type AblationPoint struct {
	// Parameter names the swept knob ("beta", "k", "policy", ...).
	Parameter string
	// Value is the numeric value of the knob (0 when the knob is categorical;
	// see Label).
	Value float64
	// Label is the human-readable value (used for categorical knobs).
	Label string
	// Converged, Spread and ConvergenceTime summarise RMTTF convergence.
	Converged       bool
	Spread          float64
	ConvergenceTime float64
	// FractionOscillation is the tail oscillation of the workload fractions.
	FractionOscillation float64
	// MeanResponseTime is the mean client response time in seconds.
	MeanResponseTime float64
	// CrossRegionFraction is the fraction of requests forwarded between
	// regions (redirection overhead).
	CrossRegionFraction float64
}

func pointFromResult(param string, value float64, label string, r *Result) AblationPoint {
	return AblationPoint{
		Parameter:           param,
		Value:               value,
		Label:               label,
		Converged:           r.RMTTFConvergence.Converged,
		Spread:              r.RMTTFConvergence.RelativeSpread,
		ConvergenceTime:     r.RMTTFConvergence.ConvergenceTime,
		FractionOscillation: r.FractionOscillation,
		MeanResponseTime:    r.MeanResponseTime,
		CrossRegionFraction: r.ForwardedFraction,
	}
}

// BetaSweep reruns the scenario under the given policy for each smoothing
// factor β of equation (1), one parallel job per β.  The paper fixes β
// implicitly; the sweep shows how much the convergence behaviour depends on
// it.  Every point uses the scenario's own seed, so the sweep isolates β.
// An optional Options bounds the worker pool (GOMAXPROCS otherwise).
func BetaSweep(sc Scenario, np NamedPolicy, betas []float64, opt ...Options) ([]AblationPoint, error) {
	jobs := make([]Job, len(betas))
	for i, beta := range betas {
		if err := ValidateBeta(beta); err != nil {
			return nil, err
		}
		s := sc
		s.Beta = beta
		s.Name = fmt.Sprintf("%s-beta%.2f", sc.Name, beta)
		jobs[i] = Job{Index: i, Scenario: s, Policy: np}
	}
	return ablationPoints(jobs, firstOption(opt), func(i int, r *Result) AblationPoint {
		return pointFromResult("beta", betas[i], fmt.Sprintf("β=%.2f", betas[i]), r)
	})
}

// ExplorationKSweep reruns the scenario under Policy 3 for each scaling
// factor k of equations (6) and (8), one parallel job per k.
func ExplorationKSweep(sc Scenario, ks []float64, opt ...Options) ([]AblationPoint, error) {
	jobs := make([]Job, len(ks))
	for i, k := range ks {
		s := sc
		s.Name = fmt.Sprintf("%s-k%.2f", sc.Name, k)
		jobs[i] = Job{Index: i, Scenario: s, Policy: NamedPolicy{
			Key:    fmt.Sprintf("policy3-k%.2f", k),
			Label:  fmt.Sprintf("Policy 3 (k=%.2f)", k),
			Policy: &core.Exploration{K: k},
		}}
	}
	return ablationPoints(jobs, firstOption(opt), func(i int, r *Result) AblationPoint {
		return pointFromResult("k", ks[i], fmt.Sprintf("k=%.2f", ks[i]), r)
	})
}

// firstOption unwraps the optional trailing Options of the sweep helpers.
func firstOption(opt []Options) Options {
	if len(opt) > 0 {
		return opt[0]
	}
	return Options{}
}

// ablationPoints runs the jobs on the parallel runner and converts each
// result into its sweep point, preserving job order.  The first failure
// aborts the sweep, matching the previous sequential behaviour.
func ablationPoints(jobs []Job, opt Options, point func(i int, r *Result) AblationPoint) ([]AblationPoint, error) {
	results, err := RunParallel(context.Background(), jobs, opt)
	if err != nil {
		return nil, err
	}
	out := make([]AblationPoint, len(results))
	for i, jr := range results {
		if jr.Err != nil {
			return nil, jr.Err
		}
		out[i] = point(i, jr.Result)
	}
	return out, nil
}

// GossipPoint is one row of the gossip-interval sweep: how fast the
// replicated health plane converges (and what routing quality costs) at one
// gossip round period.
type GossipPoint struct {
	// Interval is the swept gossip round period.
	Interval simclock.Duration
	// Rounds, Sent, Delivered and Dropped are the plane's protocol counters
	// over the whole run.
	Rounds    uint64
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	// MeanLagSeconds is the mean time from an owner bumping a region's health
	// version to every replica holding that (or a newer) version — the
	// plane's convergence time at this interval.
	MeanLagSeconds float64
	// MaxDivergence is the final per-region version gap between the owner and
	// the most stale replica.
	MaxDivergence uint64
	// SuccessRatio and MeanResponseTime show what stale views cost clients.
	SuccessRatio     float64
	MeanResponseTime float64
}

// GossipIntervalSweep reruns a gossip scenario once per gossip round period,
// one parallel job per interval, quantifying the convergence-lag-versus-
// message-cost trade-off: halving the interval halves the mean propagation
// lag but doubles the gossip traffic.  Every point uses the scenario's own
// seed, so the sweep isolates the interval.
func GossipIntervalSweep(sc Scenario, np NamedPolicy, intervals []simclock.Duration, opt ...Options) ([]GossipPoint, error) {
	if sc.GossipReplicas <= 0 {
		return nil, fmt.Errorf("experiment: gossip sweep needs a gossip scenario (GossipReplicas >= 1), got %q", sc.Name)
	}
	jobs := make([]Job, len(intervals))
	for i, interval := range intervals {
		if interval <= 0 {
			return nil, fmt.Errorf("experiment: gossip interval %v must be positive", interval)
		}
		s := sc
		s.GossipInterval = interval
		s.Name = fmt.Sprintf("%s-gossip%.0fs", sc.Name, interval.Seconds())
		jobs[i] = Job{Index: i, Scenario: s, Policy: np}
	}
	results, err := RunParallel(context.Background(), jobs, firstOption(opt))
	if err != nil {
		return nil, err
	}
	out := make([]GossipPoint, len(results))
	for i, jr := range results {
		if jr.Err != nil {
			return nil, jr.Err
		}
		r := jr.Result
		if r.Gossip == nil {
			return nil, fmt.Errorf("experiment: %s recorded no gossip stats", jr.Job.Scenario.Name)
		}
		out[i] = GossipPoint{
			Interval:         intervals[i],
			Rounds:           r.Gossip.Rounds,
			Sent:             r.Gossip.Sent,
			Delivered:        r.Gossip.Delivered,
			Dropped:          r.Gossip.Dropped,
			MeanLagSeconds:   r.Gossip.MeanLagSeconds,
			MaxDivergence:    r.Gossip.MaxDivergence,
			SuccessRatio:     r.SuccessRatio,
			MeanResponseTime: r.MeanResponseTime,
		}
	}
	return out, nil
}

// GossipSweepTable renders gossip-interval sweep points as an aligned text
// table: convergence lag against message cost, one row per interval.
func GossipSweepTable(points []GossipPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %7s %7s %10s %8s %11s %11s %9s %10s\n",
		"interval", "rounds", "sent", "delivered", "dropped", "meanLag(s)", "divergence", "success", "meanRT(s)")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10s %7d %7d %10d %8d %11.1f %11d %9.4f %10.3f\n",
			fmt.Sprintf("%.0fs", p.Interval.Seconds()), p.Rounds, p.Sent, p.Delivered, p.Dropped,
			p.MeanLagSeconds, p.MaxDivergence, p.SuccessRatio, p.MeanResponseTime)
	}
	return b.String()
}

// BaselineComparison runs Policy 2 against the non-adaptive baselines: the
// uniform split and a static split proportional to each region's nominal
// compute capacity.  It quantifies what MTTF-driven balancing buys over
// "reasonable" static configurations.
func BaselineComparison(sc Scenario, opt ...Options) (map[string]*Result, error) {
	sc = sc.withDefaults()
	weights := make([]float64, len(sc.Regions))
	for i, rs := range sc.Regions {
		weights[i] = float64(rs.Region.InitialActive) * rs.Region.Type.RelativeSpeed()
	}
	candidates := []NamedPolicy{
		{Key: "policy2", Label: "Policy 2 (available resources)", Policy: core.AvailableResources{}},
		{Key: "uniform", Label: "Uniform baseline", Policy: core.Uniform{}},
		{Key: "static", Label: "Static capacity-proportional baseline", Policy: core.Static{Weights: weights}},
	}
	return RunPolicies(context.Background(), sc, candidates, firstOption(opt))
}

// PredictorComparison runs the same scenario and policy with the oracle
// predictor and with the trained F2PM model, quantifying the cost of
// prediction error (an ablation the paper's companion works motivate).
func PredictorComparison(sc Scenario, np NamedPolicy, opt ...Options) (map[string]*Result, error) {
	sc = sc.withDefaults()
	modes := []struct {
		key  string
		mode acm.PredictorMode
	}{{"oracle", acm.PredictorOracle}, {"ml", acm.PredictorML}}
	jobs := make([]Job, len(modes))
	for i, mode := range modes {
		s := sc
		s.Predictor = mode.mode
		s.Name = fmt.Sprintf("%s-%s", sc.Name, mode.key)
		jobs[i] = Job{Index: i, Scenario: s, Policy: np}
	}
	results, err := RunParallel(context.Background(), jobs, firstOption(opt))
	if err != nil {
		return nil, err
	}
	out := map[string]*Result{}
	for i, jr := range results {
		if jr.Err != nil {
			return nil, jr.Err
		}
		out[modes[i].key] = jr.Result
	}
	return out, nil
}

// AblationTable renders ablation points as an aligned text table.
func AblationTable(points []AblationPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %9s %9s %11s %12s %10s %10s\n",
		"value", "converged", "spread", "convTime", "fOscillation", "meanRT(s)", "crossRegion")
	for _, p := range points {
		conv := "no"
		if p.Converged {
			conv = "yes"
		}
		convTime := "never"
		if p.Converged {
			if math.IsInf(p.ConvergenceTime, 1) {
				convTime = "n/a"
			} else {
				convTime = fmt.Sprintf("%.0fs", p.ConvergenceTime)
			}
		}
		label := p.Label
		if label == "" {
			label = fmt.Sprintf("%s=%.2f", p.Parameter, p.Value)
		}
		fmt.Fprintf(&b, "%-12s %9s %9.3f %11s %12.4f %10.3f %10.4f\n",
			label, conv, p.Spread, convTime, p.FractionOscillation, p.MeanResponseTime, p.CrossRegionFraction)
	}
	return b.String()
}
