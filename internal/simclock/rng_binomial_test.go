package simclock

import (
	"math"
	"testing"
	"testing/quick"
)

// binomialCases exercises every branch of Binomial: the inversion walk
// (small np), the failure-counting symmetry (p > 0.5), the normal
// approximation (np > 50), and the degenerate edges.
var binomialCases = []struct {
	n int
	p float64
}{
	{0, 0.5}, {10, 0}, {10, 1}, {10, -0.2}, {10, 1.3},
	{10, 0.3}, {40, 0.9}, {1000, 0.02}, {1000, 0.98},
	{200, 0.5}, {100000, 0.01}, {1000000, 0.3},
}

// TestBinomialDeterministicRunTwice pins the run-twice byte-identity the
// cohort state-splitting rests on: the same seed replays the same counts,
// and interleaving draws for different (n, p) does not perturb the stream.
func TestBinomialDeterministicRunTwice(t *testing.T) {
	draw := func() []int {
		r := NewStreamRNG(42, 7)
		var out []int
		for rep := 0; rep < 50; rep++ {
			for _, c := range binomialCases {
				out = append(out, r.Binomial(c.n, c.p))
			}
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Binomial replay diverged at draw %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestErlangDeterministicRunTwice is the same replay pin for Erlang.
func TestErlangDeterministicRunTwice(t *testing.T) {
	draw := func() []float64 {
		r := NewStreamRNG(42, 8)
		var out []float64
		for rep := 0; rep < 50; rep++ {
			for _, n := range []int{0, 1, 3, 20, 50, 51, 400} {
				out = append(out, r.Erlang(n, 0.04))
			}
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Erlang replay diverged at draw %d: %g vs %g", i, a[i], b[i])
		}
	}
}

// TestBinomialSupport: the count always lands in [0, n], every branch.
func TestBinomialSupport(t *testing.T) {
	r := NewRNG(99)
	f := func(n uint16, p float64) bool {
		p = math.Mod(math.Abs(p), 1.5) // cover out-of-range p too
		k := r.Binomial(int(n), p)
		return k >= 0 && k <= int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestBinomialChiSquared is the distributional sanity check behind the cohort
// transition draw: 2x10^4 samples of Binomial(20, 0.3) binned against the
// exact pmf must pass a chi-squared test.  The seed is fixed, so the
// statistic is a constant of the implementation, not a flaky draw; the bound
// is the 99.9th percentile of chi-squared with ~14 degrees of freedom plus
// slack.
func TestBinomialChiSquared(t *testing.T) {
	const (
		n     = 20
		p     = 0.3
		draws = 20000
	)
	r := NewStreamRNG(2026, 1)
	obs := make([]float64, n+1)
	for i := 0; i < draws; i++ {
		obs[r.Binomial(n, p)]++
	}
	// Exact pmf via the recurrence P(k+1) = P(k) * (n-k)/(k+1) * p/q.
	exp := make([]float64, n+1)
	exp[0] = math.Pow(1-p, n) * draws
	for k := 0; k < n; k++ {
		exp[k+1] = exp[k] * float64(n-k) / float64(k+1) * p / (1 - p)
	}
	// Merge the sparse tail into the last kept bin so every expected count
	// stays >= 5 (the usual chi-squared validity rule).
	chi2, tailObs, tailExp, bins := 0.0, 0.0, 0.0, 0
	for k := 0; k <= n; k++ {
		if exp[k] >= 5 {
			d := obs[k] - exp[k]
			chi2 += d * d / exp[k]
			bins++
		} else {
			tailObs += obs[k]
			tailExp += exp[k]
		}
	}
	if tailExp > 0 {
		d := tailObs - tailExp
		chi2 += d * d / tailExp
		bins++
	}
	if bins < 10 {
		t.Fatalf("degenerate binning: only %d bins", bins)
	}
	if chi2 > 40 {
		t.Fatalf("Binomial(%d, %g) failed chi-squared: statistic %.2f over %d bins", n, p, chi2, bins)
	}
}

// TestBinomialMoments checks mean and variance on the branches the
// chi-squared test does not reach (symmetry and normal approximation).
func TestBinomialMoments(t *testing.T) {
	cases := []struct {
		n     int
		p     float64
		draws int
	}{
		{40, 0.9, 20000},     // symmetry branch
		{100000, 0.01, 5000}, // normal-approximation branch
	}
	for _, c := range cases {
		r := NewStreamRNG(2026, 2, uint64(c.n))
		sum, sum2 := 0.0, 0.0
		for i := 0; i < c.draws; i++ {
			v := float64(r.Binomial(c.n, c.p))
			sum += v
			sum2 += v * v
		}
		mean := sum / float64(c.draws)
		variance := sum2/float64(c.draws) - mean*mean
		wantMean := float64(c.n) * c.p
		wantVar := wantMean * (1 - c.p)
		// 5-sigma band on the sample mean; 15% relative band on the variance.
		if tol := 5 * math.Sqrt(wantVar/float64(c.draws)); math.Abs(mean-wantMean) > tol {
			t.Errorf("Binomial(%d, %g): mean %.3f, want %.3f +/- %.3f", c.n, c.p, mean, wantMean, tol)
		}
		if math.Abs(variance-wantVar) > 0.15*wantVar {
			t.Errorf("Binomial(%d, %g): variance %.3f, want %.3f +/- 15%%", c.n, c.p, variance, wantVar)
		}
	}
}

// TestErlangMoments: Erlang(n, mean) must have mean n*mean and variance
// n*mean^2, on both the summed-exponentials and normal-approximation
// branches.
func TestErlangMoments(t *testing.T) {
	for _, n := range []int{4, 30, 120} {
		const (
			mean  = 0.04
			draws = 20000
		)
		r := NewStreamRNG(2026, 3, uint64(n))
		sum, sum2 := 0.0, 0.0
		for i := 0; i < draws; i++ {
			v := r.Erlang(n, mean)
			if v < 0 {
				t.Fatalf("Erlang(%d, %g) returned negative %g", n, mean, v)
			}
			sum += v
			sum2 += v * v
		}
		m := sum / draws
		variance := sum2/draws - m*m
		wantMean := float64(n) * mean
		wantVar := float64(n) * mean * mean
		if tol := 5 * math.Sqrt(wantVar/draws); math.Abs(m-wantMean) > tol {
			t.Errorf("Erlang(%d): mean %.4f, want %.4f +/- %.4f", n, m, wantMean, tol)
		}
		if math.Abs(variance-wantVar) > 0.15*wantVar {
			t.Errorf("Erlang(%d): variance %.6f, want %.6f +/- 15%%", n, variance, wantVar)
		}
	}
}
