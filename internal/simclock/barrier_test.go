package simclock

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 100
		var hits [n]atomic.Int32
		ForEach(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForEachSequentialRunsInOrder(t *testing.T) {
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("sequential ForEach out of order: %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("sequential ForEach visited %d indices, want 5", len(order))
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("ForEach must not call fn for n <= 0")
	}
}

// TestParallelPhaseIsABarrier verifies that every index completes before
// ParallelPhase returns and that the engine is usable again afterwards.
func TestParallelPhaseIsABarrier(t *testing.T) {
	eng := NewEngine(1)
	var done atomic.Int32
	fired := false
	eng.ScheduleFunc(1, func(e *Engine) {
		e.ParallelPhase(32, 4, func(i int) { done.Add(1) })
		if got := done.Load(); got != 32 {
			t.Errorf("barrier leaked: %d of 32 done when ParallelPhase returned", got)
		}
		// Scheduling after the phase must work again.
		e.ScheduleFunc(1, func(*Engine) { fired = true })
	})
	eng.RunUntilEmpty()
	if !fired {
		t.Fatal("follow-up event after the parallel phase never fired")
	}
}

// TestParallelPhaseRejectsScheduling pins the shard-local mutation audit: an
// event scheduled from inside the parallel phase panics instead of racing on
// the event queue.
func TestParallelPhaseRejectsScheduling(t *testing.T) {
	eng := NewEngine(1)
	panicked := false
	eng.ScheduleFunc(1, func(e *Engine) {
		// workers=1 keeps the violating call on this goroutine so the deferred
		// recover below observes the panic deterministically.
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		e.ParallelPhase(1, 1, func(int) {
			e.ScheduleFunc(1, func(*Engine) {})
		})
	})
	eng.RunUntilEmpty()
	if !panicked {
		t.Fatal("Schedule inside ParallelPhase must panic")
	}
	if eng.InParallelPhase() {
		t.Fatal("engine still marked in parallel phase after the panic unwound")
	}
}

func TestParallelPhaseRejectsNesting(t *testing.T) {
	eng := NewEngine(1)
	panicked := false
	eng.ScheduleFunc(1, func(e *Engine) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		e.ParallelPhase(1, 1, func(int) {
			e.ParallelPhase(1, 1, func(int) {})
		})
	})
	eng.RunUntilEmpty()
	if !panicked {
		t.Fatal("nested ParallelPhase must panic")
	}
}
