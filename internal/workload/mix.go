// Package workload generates the client traffic used by the paper's
// evaluation: a TPC-W-like multi-tier e-commerce workload produced by
// emulated web browsers.  Each browser runs a closed-loop session — issue an
// interaction, wait for the response, think, repeat — against the load
// balancer of the cloud region it is connected to, exactly as the TPC-W
// specification prescribes for remote browser emulators.
//
// The paper modifies the TPC-W implementation so that serving a request can
// inject software anomalies into the VM; that part lives in cloudsim (the VM
// injects anomalies when completing a request).  This package is responsible
// for the request mix, the think times, and the per-region client populations
// (the paper varies the number of clients per region in [16, 512] and makes
// sure the populations differ significantly between regions).
package workload

import (
	"fmt"

	"repro/internal/simclock"
)

// Interaction is one TPC-W web interaction class.
type Interaction struct {
	// Name is the TPC-W interaction name, e.g. "home" or "best_sellers".
	Name string
	// Weight is the relative frequency of the interaction in a mix.
	Weight float64
	// ServiceFactor scales the base service demand of a VM for this
	// interaction: database-heavy interactions (best sellers, searches,
	// admin confirm) cost several times a plain home-page hit.
	ServiceFactor float64
}

// The 14 TPC-W web interactions with service-demand factors reflecting how
// database-heavy each interaction is in the Java servlet implementation used
// by the paper.
var interactions = []Interaction{
	{Name: "home", ServiceFactor: 1.0},
	{Name: "new_products", ServiceFactor: 2.2},
	{Name: "best_sellers", ServiceFactor: 3.0},
	{Name: "product_detail", ServiceFactor: 1.2},
	{Name: "search_request", ServiceFactor: 0.8},
	{Name: "search_results", ServiceFactor: 2.5},
	{Name: "shopping_cart", ServiceFactor: 1.5},
	{Name: "customer_registration", ServiceFactor: 0.9},
	{Name: "buy_request", ServiceFactor: 1.8},
	{Name: "buy_confirm", ServiceFactor: 2.8},
	{Name: "order_inquiry", ServiceFactor: 0.7},
	{Name: "order_display", ServiceFactor: 1.6},
	{Name: "admin_request", ServiceFactor: 1.1},
	{Name: "admin_confirm", ServiceFactor: 3.2},
}

// Mix is a probability distribution over the TPC-W interactions.
type Mix struct {
	// Name labels the mix ("browsing", "shopping", "ordering").
	Name string
	// Entries holds the interactions with their weights (normalised lazily).
	Entries []Interaction
}

// mixFromWeights builds a Mix from per-interaction weights keyed by name.
// Interactions absent from the map get weight zero.
func mixFromWeights(name string, weights map[string]float64) Mix {
	m := Mix{Name: name}
	for _, it := range interactions {
		it.Weight = weights[it.Name]
		m.Entries = append(m.Entries, it)
	}
	return m
}

// BrowsingMix returns the TPC-W browsing mix (WIPSb): 95% browse / 5% order
// interactions.  This is the mix used for the kind of read-dominated
// e-commerce front end the paper's evaluation exercises.
func BrowsingMix() Mix {
	return mixFromWeights("browsing", map[string]float64{
		"home":                  29.00,
		"new_products":          11.00,
		"best_sellers":          11.00,
		"product_detail":        21.00,
		"search_request":        12.00,
		"search_results":        11.00,
		"shopping_cart":         2.00,
		"customer_registration": 0.82,
		"buy_request":           0.75,
		"buy_confirm":           0.69,
		"order_inquiry":         0.30,
		"order_display":         0.25,
		"admin_request":         0.10,
		"admin_confirm":         0.09,
	})
}

// ShoppingMix returns the TPC-W shopping mix (WIPS): 80% browse / 20% order.
func ShoppingMix() Mix {
	return mixFromWeights("shopping", map[string]float64{
		"home":                  16.00,
		"new_products":          5.00,
		"best_sellers":          5.00,
		"product_detail":        17.00,
		"search_request":        20.00,
		"search_results":        17.00,
		"shopping_cart":         11.60,
		"customer_registration": 3.00,
		"buy_request":           2.60,
		"buy_confirm":           1.20,
		"order_inquiry":         0.75,
		"order_display":         0.66,
		"admin_request":         0.10,
		"admin_confirm":         0.09,
	})
}

// OrderingMix returns the TPC-W ordering mix (WIPSo): 50% browse / 50% order.
func OrderingMix() Mix {
	return mixFromWeights("ordering", map[string]float64{
		"home":                  9.12,
		"new_products":          0.46,
		"best_sellers":          0.46,
		"product_detail":        12.35,
		"search_request":        14.53,
		"search_results":        13.08,
		"shopping_cart":         13.53,
		"customer_registration": 12.86,
		"buy_request":           12.73,
		"buy_confirm":           10.18,
		"order_inquiry":         0.25,
		"order_display":         0.22,
		"admin_request":         0.12,
		"admin_confirm":         0.11,
	})
}

// Interactions returns the canonical list of TPC-W interactions (weights
// zeroed), useful for enumerating classes in reports.
func Interactions() []Interaction {
	out := make([]Interaction, len(interactions))
	copy(out, interactions)
	return out
}

// Pick draws one interaction from the mix using the provided RNG.
func (m Mix) Pick(rng *simclock.RNG) Interaction {
	weights := make([]float64, len(m.Entries))
	for i, e := range m.Entries {
		weights[i] = e.Weight
	}
	return m.Entries[rng.Choice(weights)]
}

// MeanServiceFactor returns the weighted mean service factor of the mix, used
// to translate a request rate into an equivalent compute demand.
func (m Mix) MeanServiceFactor() float64 {
	total, weighted := 0.0, 0.0
	for _, e := range m.Entries {
		total += e.Weight
		weighted += e.Weight * e.ServiceFactor
	}
	if total == 0 {
		return 1
	}
	return weighted / total
}

// Validate checks that the mix has at least one positive weight.
func (m Mix) Validate() error {
	for _, e := range m.Entries {
		if e.Weight < 0 {
			return fmt.Errorf("workload: mix %q has negative weight for %s", m.Name, e.Name)
		}
		if e.Weight > 0 {
			return nil
		}
	}
	return fmt.Errorf("workload: mix %q has no positive weights", m.Name)
}
