package ml

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// synthRegression builds a synthetic dataset y = 5 + 2*x0 - 3*x1 + noise with
// an irrelevant third feature, resembling a degradation trajectory.
func synthRegression(n int, noise float64) (x [][]float64, y []float64) {
	s := uint64(12345)
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s%10000) / 10000
	}
	for i := 0; i < n; i++ {
		x0 := next() * 10
		x1 := next() * 5
		x2 := next() // irrelevant
		eps := (next() - 0.5) * 2 * noise
		x = append(x, []float64{x0, x1, x2})
		y = append(y, 5+2*x0-3*x1+eps)
	}
	return x, y
}

// synthDegradation mimics an RTTF dataset: memory grows roughly linearly over
// time and RTTF decreases accordingly, with noise.
func synthDegradation(n int) (x [][]float64, y []float64) {
	s := uint64(777)
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s%10000) / 10000
	}
	horizon := 3600.0
	for i := 0; i < n; i++ {
		t := horizon * float64(i) / float64(n)
		mem := 200 + 0.5*t + next()*20
		threads := 50 + 0.02*t + next()*3
		cpu := 0.3 + next()*0.2
		rttf := horizon - t + (next()-0.5)*60
		x = append(x, []float64{mem, threads, cpu})
		y = append(y, rttf)
	}
	return x, y
}

func TestLinearRegressionExactFit(t *testing.T) {
	x, y := synthRegression(200, 0)
	m := NewLinearRegression()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.Weights[0], 5, 1e-6) || !almostEqual(m.Weights[1], 2, 1e-6) || !almostEqual(m.Weights[2], -3, 1e-6) {
		t.Fatalf("weights wrong: %v", m.Weights)
	}
	if !almostEqual(m.Weights[3], 0, 1e-6) {
		t.Fatalf("irrelevant feature should get ~0 weight: %v", m.Weights)
	}
	pred := m.Predict([]float64{1, 1, 0})
	if !almostEqual(pred, 4, 1e-6) {
		t.Fatalf("prediction wrong: %f", pred)
	}
	if m.Name() != "LinearRegression" {
		t.Fatal("name wrong")
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	m := NewLinearRegression()
	if err := m.Fit(nil, nil); !errors.Is(err, ErrEmptyDataset) {
		t.Fatal("empty fit should error")
	}
	if err := m.Fit([][]float64{{1}}, []float64{1, 2}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatal("mismatch fit should error")
	}
	if m.Predict([]float64{1}) != 0 {
		t.Fatal("unfitted model should predict 0")
	}
}

func TestRidgeRegression(t *testing.T) {
	x, y := synthRegression(300, 0.5)
	m := NewRidgeRegression(1.0)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	met := EvaluateModel(m, x, y)
	if met.R2 < 0.95 {
		t.Fatalf("ridge should fit the synthetic data well, R2=%f", met.R2)
	}
	if NewRidgeRegression(-5).Lambda != 0 {
		t.Fatal("negative lambda should clamp to 0")
	}
	if m.Name() == "" {
		t.Fatal("name empty")
	}
	unfitted := NewRidgeRegression(1)
	if unfitted.Predict([]float64{1, 2, 3}) != 0 {
		t.Fatal("unfitted ridge should predict 0")
	}
	if err := unfitted.Fit(nil, nil); err == nil {
		t.Fatal("empty fit should error")
	}
	if err := unfitted.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched fit should error")
	}
}

func TestLassoShrinksIrrelevantFeature(t *testing.T) {
	x, y := synthRegression(400, 0.2)
	m := NewLasso(0.05)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	met := EvaluateModel(m, x, y)
	if met.R2 < 0.95 {
		t.Fatalf("lasso should fit well, R2=%f", met.R2)
	}
	sel := m.SelectedFeatures(1e-6)
	for _, j := range sel {
		if j == 2 {
			// The irrelevant feature may survive a tiny penalty but its weight
			// must be far smaller than the real ones.
			if math.Abs(m.Coefficients[2]) > 0.2*math.Abs(m.Coefficients[0]) {
				t.Fatalf("irrelevant feature weight too large: %v", m.Coefficients)
			}
		}
	}
	if len(sel) < 2 {
		t.Fatalf("lasso should keep the two informative features, got %v", sel)
	}
}

// Property (from DESIGN.md): Lasso with lambda=0 behaves like OLS.
func TestLassoZeroPenaltyMatchesOLS(t *testing.T) {
	x, y := synthRegression(200, 0.3)
	lasso := NewLasso(0)
	ols := NewLinearRegression()
	if err := lasso.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := ols.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		row := x[i*7%len(x)]
		if !almostEqual(lasso.Predict(row), ols.Predict(row), 0.05) {
			t.Fatalf("lasso(0) and OLS disagree: %f vs %f", lasso.Predict(row), ols.Predict(row))
		}
	}
}

func TestLassoErrors(t *testing.T) {
	m := NewLasso(0.1)
	if err := m.Fit(nil, nil); !errors.Is(err, ErrEmptyDataset) {
		t.Fatal("empty fit should error")
	}
	if err := m.Fit([][]float64{{1}}, []float64{1, 2}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatal("mismatch fit should error")
	}
	if m.Predict([]float64{1}) != 0 {
		t.Fatal("unfitted lasso should predict 0")
	}
	if NewLasso(-1).Lambda != 0 {
		t.Fatal("negative lambda should clamp")
	}
}

func TestREPTreeFitsDegradation(t *testing.T) {
	x, y := synthDegradation(1000)
	m := NewREPTree()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	met := EvaluateModel(m, x, y)
	if met.R2 < 0.9 {
		t.Fatalf("REPTree should capture the degradation trend, R2=%f", met.R2)
	}
	if m.Depth() < 1 {
		t.Fatalf("tree should have split at least once, depth=%d", m.Depth())
	}
	if m.Leaves() < 2 {
		t.Fatalf("tree should have at least 2 leaves, got %d", m.Leaves())
	}
	if m.String() == "" || m.Name() != "REPTree" {
		t.Fatal("string/name wrong")
	}
}

// Property: tree predictions always lie within the training label range.
func TestREPTreePredictionBoundedProperty(t *testing.T) {
	x, y := synthDegradation(600)
	m := NewREPTree()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range y {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	f := func(a, b, c float64) bool {
		row := []float64{math.Abs(math.Mod(a, 2500)), math.Abs(math.Mod(b, 200)), math.Abs(math.Mod(c, 1))}
		p := m.Predict(row)
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestREPTreePruningReducesLeaves(t *testing.T) {
	x, y := synthDegradation(800)
	pruned := &REPTree{MaxDepth: 14, MinLeaf: 3, PruneFraction: 0.3}
	unpruned := &REPTree{MaxDepth: 14, MinLeaf: 3, PruneFraction: 0}
	if err := pruned.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := unpruned.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if pruned.Leaves() > unpruned.Leaves() {
		t.Fatalf("pruning should not increase leaves: pruned=%d unpruned=%d", pruned.Leaves(), unpruned.Leaves())
	}
}

func TestREPTreeErrorsAndDegenerateData(t *testing.T) {
	m := NewREPTree()
	if err := m.Fit(nil, nil); !errors.Is(err, ErrEmptyDataset) {
		t.Fatal("empty fit should error")
	}
	if err := m.Fit([][]float64{{1}}, []float64{1, 2}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatal("mismatch should error")
	}
	if m.Predict([]float64{1}) != 0 || m.Depth() != -1 || m.Leaves() != 0 {
		t.Fatal("unfitted tree defaults wrong")
	}
	if m.String() != "REPTree(unfitted)" {
		t.Fatal("unfitted string wrong")
	}
	// Constant target: tree stays a single leaf predicting the constant.
	x := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {9}, {10}}
	y := []float64{7, 7, 7, 7, 7, 7, 7, 7, 7, 7}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if m.Predict([]float64{100}) != 7 {
		t.Fatal("constant-target tree should predict the constant")
	}
}

func TestM5PFitsPiecewiseLinear(t *testing.T) {
	// Piecewise linear function: below 50 slope 1, above 50 slope -2.
	var x [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		v := float64(i) / 4
		x = append(x, []float64{v, 1})
		if v <= 50 {
			y = append(y, v)
		} else {
			y = append(y, 50-2*(v-50))
		}
	}
	m := NewM5P()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	met := EvaluateModel(m, x, y)
	if met.R2 < 0.97 {
		t.Fatalf("M5P should fit a piecewise-linear function closely, R2=%f", met.R2)
	}
	if m.Leaves() < 2 {
		t.Fatalf("M5P should split, got %d leaves", m.Leaves())
	}
	if m.Name() != "M5P" {
		t.Fatal("name wrong")
	}
}

func TestM5PBeatsREPTreeOnLinearData(t *testing.T) {
	// On globally linear data the leaf regressions extrapolate better than
	// piecewise constants.
	x, y := synthRegression(500, 0.1)
	m5 := NewM5P()
	rep := NewREPTree()
	if err := m5.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := rep.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	m5Met := EvaluateModel(m5, x, y)
	repMet := EvaluateModel(rep, x, y)
	if m5Met.RMSE > repMet.RMSE*1.2 {
		t.Fatalf("M5P should be competitive on linear data: m5=%f rep=%f", m5Met.RMSE, repMet.RMSE)
	}
}

func TestM5PErrors(t *testing.T) {
	m := NewM5P()
	if err := m.Fit(nil, nil); !errors.Is(err, ErrEmptyDataset) {
		t.Fatal("empty fit should error")
	}
	if err := m.Fit([][]float64{{1}}, []float64{1, 2}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatal("mismatch should error")
	}
	if m.Predict([]float64{1}) != 0 || m.Leaves() != 0 {
		t.Fatal("unfitted M5P defaults wrong")
	}
	// Tiny dataset: falls back to mean leaf.
	if err := m.Fit([][]float64{{1, 2}, {2, 3}}, []float64{5, 7}); err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{1, 2}); p < 5 || p > 7 {
		t.Fatalf("tiny-data prediction should be within label range, got %f", p)
	}
}

func TestSVRFitsLinearTrend(t *testing.T) {
	x, y := synthRegression(500, 0.2)
	m := NewSVR()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	met := EvaluateModel(m, x, y)
	if met.R2 < 0.9 {
		t.Fatalf("SVR should fit the linear data, R2=%f", met.R2)
	}
	if m.Name() != "SVR" {
		t.Fatal("name wrong")
	}
}

func TestSVRErrorsAndDefaults(t *testing.T) {
	m := NewSVR()
	if err := m.Fit(nil, nil); !errors.Is(err, ErrEmptyDataset) {
		t.Fatal("empty fit should error")
	}
	if err := m.Fit([][]float64{{1}}, []float64{1, 2}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatal("mismatch should error")
	}
	if m.Predict([]float64{1}) != 0 {
		t.Fatal("unfitted SVR should predict 0")
	}
	// Zero/negative hyper-parameters fall back to defaults without crashing.
	m = &SVR{C: -1, Epsilon: -1, Epochs: -1, seedState: 1}
	if err := m.Fit([][]float64{{1}, {2}, {3}, {4}}, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
}

func TestSVRDeterministic(t *testing.T) {
	x, y := synthRegression(200, 0.2)
	a, b := NewSVR(), NewSVR()
	if err := a.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if a.Predict(x[i]) != b.Predict(x[i]) {
			t.Fatal("SVR training must be deterministic")
		}
	}
}

func TestLSSVMFitsNonlinearData(t *testing.T) {
	// y = sin(x) scaled — a shape linear models cannot capture.
	var x [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		v := float64(i) / 300 * 6
		x = append(x, []float64{v})
		y = append(y, 100*math.Sin(v))
	}
	m := NewLSSVM()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	met := EvaluateModel(m, x, y)
	if met.R2 < 0.95 {
		t.Fatalf("LS-SVM with RBF kernel should fit sin well, R2=%f", met.R2)
	}
	lin := NewLinearRegression()
	if err := lin.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if EvaluateModel(lin, x, y).R2 > met.R2 {
		t.Fatal("LS-SVM should beat linear regression on sin data")
	}
	if m.Name() != "LS-SVM" {
		t.Fatal("name wrong")
	}
}

func TestLSSVMSubsampling(t *testing.T) {
	x, y := synthDegradation(900)
	m := &LSSVM{Gamma: 10, Sigma: 3, MaxSamples: 100}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if m.SupportVectors() != 100 {
		t.Fatalf("expected 100 support vectors, got %d", m.SupportVectors())
	}
	met := EvaluateModel(m, x, y)
	if met.R2 < 0.8 {
		t.Fatalf("subsampled LS-SVM should still fit, R2=%f", met.R2)
	}
}

func TestLSSVMErrorsAndDefaults(t *testing.T) {
	m := NewLSSVM()
	if err := m.Fit(nil, nil); !errors.Is(err, ErrEmptyDataset) {
		t.Fatal("empty fit should error")
	}
	if err := m.Fit([][]float64{{1}}, []float64{1, 2}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatal("mismatch should error")
	}
	if m.Predict([]float64{1}) != 0 {
		t.Fatal("unfitted LS-SVM should predict 0")
	}
	m = &LSSVM{Gamma: -1, Sigma: -1, MaxSamples: -1}
	if err := m.Fit([][]float64{{1}, {2}, {3}}, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
}

// TestM5PPredictionsStayWithinLabelRange guards the model-tree robustness
// fix: leaf regressions are ridge-regularised and their predictions are
// clamped to the label range seen at the leaf, so M5P can no longer
// extrapolate wildly on held-out rows far from the training data.
func TestM5PPredictionsStayWithinLabelRange(t *testing.T) {
	next := testRandSource(7)
	n, p := 160, 12
	x := make([][]float64, n)
	y := make([]float64, n)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range x {
		row := make([]float64, p)
		for j := range row {
			row[j] = next() * 100
		}
		x[i] = row
		y[i] = 3*row[0] - 2*row[1] + 10*next()
		if y[i] < lo {
			lo = y[i]
		}
		if y[i] > hi {
			hi = y[i]
		}
	}
	m := NewM5P()
	if err := m.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	// Probe far outside the training envelope.
	probe := make([]float64, p)
	for j := range probe {
		probe[j] = 10_000
	}
	if got := m.Predict(probe); got < lo-1e-9 || got > hi+1e-9 {
		t.Fatalf("M5P prediction %v escaped the training label range [%v, %v]", got, lo, hi)
	}
	// In-sample accuracy must remain reasonable despite the clamping.
	if metrics := EvaluateModel(m, x, y); metrics.R2 < 0.7 {
		t.Fatalf("M5P in-sample R2 = %v, want > 0.7", metrics.R2)
	}
}

// TestLSSVMAutoBandwidth checks that the automatic RBF bandwidth (sqrt of the
// feature count) lets the LS-SVM fit a smooth nonlinear target that the old
// fixed bandwidth of 1 could not represent in higher dimensions.
func TestLSSVMAutoBandwidth(t *testing.T) {
	next := testRandSource(11)
	n, p := 240, 10
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, p)
		for j := range row {
			row[j] = next() * 10
		}
		x[i] = row
		y[i] = 50*math.Sin(row[0]/3) + 5*row[1] + next()
	}
	m := NewLSSVM()
	if m.Sigma != 0 {
		t.Fatalf("default Sigma should be 0 (automatic), got %v", m.Sigma)
	}
	if err := m.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if metrics := EvaluateModel(m, x, y); metrics.R2 < 0.8 {
		t.Fatalf("LS-SVM with automatic bandwidth should fit the smooth target, R2 = %v", metrics.R2)
	}
}

// testRandSource returns a tiny deterministic uniform [0,1) generator for the
// robustness tests above (xorshift, independent of math/rand).
func testRandSource(seed uint64) func() float64 {
	s := seed*2685821657736338717 + 1
	return func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s%1000000) / 1000000
	}
}
