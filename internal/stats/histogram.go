package stats

import "sort"

// Histogram is a fixed-bound bucketed distribution: counts per upper bound
// plus an implicit +Inf overflow bin, with a running sum and count.  Like
// Welford, it supports exact pairwise Merge, so per-shard histograms folded
// in shard-index order are bit-reproducible for any worker count — integer
// bin counts commute, and the sum is merged in the same fixed order as the
// Welford moments.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds, without +Inf
	counts []uint64  // len(bounds)+1; last bin is the +Inf overflow
	sum    float64
	count  uint64
}

// NewHistogram returns a histogram with the given strictly increasing upper
// bounds.  The bounds slice is shared, not copied; callers pass package-level
// bucket layouts.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe adds one sample: it lands in the first bin whose upper bound is
// >= v, or the +Inf overflow bin.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// Merge folds src into h.  Both histograms must share the same bucket
// layout; mismatched layouts are ignored rather than corrupting bins.
func (h *Histogram) Merge(src *Histogram) {
	if src == nil || len(src.counts) != len(h.counts) {
		return
	}
	for i, n := range src.counts {
		h.counts[i] += n
	}
	h.sum += src.sum
	h.count += src.count
}

// Bounds returns the upper bounds (without +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Counts returns a copy of the per-bin counts; the last entry is the +Inf
// overflow bin.
func (h *Histogram) Counts() []uint64 {
	out := make([]uint64, len(h.counts))
	copy(out, h.counts)
	return out
}

// Sum returns the running sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }
