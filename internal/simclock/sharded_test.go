package simclock

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
)

// TestShardedEngineControlEventsFireAtExactTimes pins the epoch-clamping
// rule: control events are not quantised to epoch boundaries — the epoch end
// is clamped to the next control timestamp, so a ticker on the control
// timeline fires at exactly its period even when the period is not a
// multiple of the epoch width.
func TestShardedEngineControlEventsFireAtExactTimes(t *testing.T) {
	se := NewShardedEngine(4, 7, 100*Millisecond, 1)
	var fired []Time
	se.Control().Ticker(330*Millisecond, func(e *Engine) {
		fired = append(fired, e.Now())
	})
	// The ticker keeps one event pending beyond the horizon, so the run ends
	// with ErrHorizonReached — the same contract as Engine.Run.
	if err := se.Run(1 * Second); err != ErrHorizonReached {
		t.Fatalf("Run: %v", err)
	}
	var want []Time
	for at := Time(0).Add(330 * Millisecond); at <= 1; at = at.Add(330 * Millisecond) {
		want = append(want, at)
	}
	if len(fired) != len(want) {
		t.Fatalf("control ticker fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("tick %d fired at %v, want %v", i, fired[i], want[i])
		}
	}
	if se.Now() != 1 {
		t.Fatalf("Now() = %v after the run, want 1", se.Now())
	}
}

// TestShardedEngineShardLocalEventsRun checks that shard events execute in
// local (time, seq) order on their own sub-engine and that follow-up
// scheduling from a shard handler targets the same shard legally.
func TestShardedEngineShardLocalEventsRun(t *testing.T) {
	se := NewShardedEngine(3, 1, 50*Millisecond, 2)
	order := make([][]Time, 3)
	for i := 0; i < 3; i++ {
		i := i
		se.Shard(i).ScheduleFunc(Duration(i+1)*10*Millisecond, func(e *Engine) {
			order[i] = append(order[i], e.Now())
			e.ScheduleFunc(200*Millisecond, func(e2 *Engine) {
				order[i] = append(order[i], e2.Now())
			})
		})
	}
	if err := se.Run(1 * Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < 3; i++ {
		first := Time(float64(i+1) * 0.01)
		if len(order[i]) != 2 || order[i][0] != first || order[i][1] != first.Add(200*Millisecond) {
			t.Fatalf("shard %d event times = %v", i, order[i])
		}
	}
	if se.Fired() != 6 {
		t.Fatalf("Fired() = %d, want 6", se.Fired())
	}
}

// TestShardedEngineHorizonReached mirrors Engine.Run's contract: live events
// beyond the horizon yield ErrHorizonReached, a drained system yields nil.
func TestShardedEngineHorizonReached(t *testing.T) {
	se := NewShardedEngine(2, 1, 100*Millisecond, 1)
	se.Shard(0).ScheduleFunc(2*Second, func(*Engine) {})
	if err := se.Run(1 * Second); err != ErrHorizonReached {
		t.Fatalf("Run with pending work = %v, want ErrHorizonReached", err)
	}
	se2 := NewShardedEngine(2, 1, 100*Millisecond, 1)
	se2.Shard(0).ScheduleFunc(200*Millisecond, func(*Engine) {})
	if err := se2.Run(1 * Second); err != nil {
		t.Fatalf("Run of a drained system = %v, want nil", err)
	}
}

// TestShardedEngineForeignSchedulePanics pins the runtime guard: a shard
// goroutine scheduling onto another shard's engine during the parallel epoch
// must panic instead of silently corrupting the foreign queue.  Posting to
// the mailbox is the legal channel, exercised by the property test below.
func TestShardedEngineForeignSchedulePanics(t *testing.T) {
	se := NewShardedEngine(2, 1, 100*Millisecond, 1)
	foreign := se.Shard(1)
	var recovered any
	se.Shard(0).ScheduleFunc(10*Millisecond, func(*Engine) {
		defer func() { recovered = recover() }()
		foreign.ScheduleFunc(10*Millisecond, func(*Engine) {})
	})
	if err := se.Run(50 * Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if recovered == nil {
		t.Fatal("scheduling on a foreign sub-engine during the shard phase did not panic")
	}
}

// shardedPostRecord tags one cross-shard post for the determinism property
// test.
type shardedPostRecord struct {
	Epoch int
	Src   int
	Seq   int
}

// runMailboxScenario drives the property-test workload: every shard, on
// every epoch, fires one local event that posts a tagged record to every
// other shard (and to the control lane), with scheduling jitter injected so
// goroutines interleave differently between runs.  It returns the per-lane
// delivery logs.
func runMailboxScenario(t *testing.T, shards, epochs, workers int) ([][]shardedPostRecord, []shardedPostRecord) {
	t.Helper()
	se := NewShardedEngine(shards, 99, 100*Millisecond, workers)
	received := make([][]shardedPostRecord, shards)
	var controlReceived []shardedPostRecord
	for s := 0; s < shards; s++ {
		s := s
		seq := 0
		for ep := 0; ep < epochs; ep++ {
			ep := ep
			at := Duration(float64(ep)*0.1 + 0.05)
			se.Shard(s).ScheduleFunc(at, func(e *Engine) {
				// Shake the goroutine interleaving: yield a shard-dependent
				// number of times before posting.
				for i := 0; i < (s*7)%5; i++ {
					runtime.Gosched()
				}
				for dst := 0; dst < shards; dst++ {
					if dst == s {
						continue
					}
					rec := shardedPostRecord{Epoch: ep, Src: s, Seq: seq}
					seq++
					dst := dst
					se.Post(e, dst, func(*Engine) {
						received[dst] = append(received[dst], rec)
					})
				}
				rec := shardedPostRecord{Epoch: ep, Src: s, Seq: seq}
				seq++
				se.PostControl(e, func(*Engine) {
					controlReceived = append(controlReceived, rec)
				})
			})
		}
	}
	if err := se.Run(Duration(epochs) * 100 * Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return received, controlReceived
}

// TestShardedMailboxDeterminismProperty is the mailbox determinism property
// test: the same cross-shard posts, delivered from goroutines whose
// interleaving the runtime reorders freely across 50 epochs, must always
// drain in (epoch, shard-index, sequence) order — and repeated parallel runs
// must produce byte-identical delivery logs, matching the single-worker
// reference run.
func TestShardedMailboxDeterminismProperty(t *testing.T) {
	const shards, epochs = 8, 50
	refLanes, refControl := runMailboxScenario(t, shards, epochs, 1)

	assertOrdered := func(label string, log []shardedPostRecord) {
		for i := 1; i < len(log); i++ {
			a, b := log[i-1], log[i]
			if a.Epoch > b.Epoch || (a.Epoch == b.Epoch && a.Src > b.Src) ||
				(a.Epoch == b.Epoch && a.Src == b.Src && a.Seq >= b.Seq) {
				t.Fatalf("%s: delivery %d..%d out of (epoch, shard, seq) order: %+v then %+v", label, i-1, i, a, b)
			}
		}
	}
	for d, log := range refLanes {
		if len(log) != (shards-1)*epochs {
			t.Fatalf("reference lane %d received %d posts, want %d", d, len(log), (shards-1)*epochs)
		}
		assertOrdered(fmt.Sprintf("reference lane %d", d), log)
	}
	assertOrdered("reference control lane", refControl)

	workerCounts := []int{4, runtime.GOMAXPROCS(0), shards}
	for rep := 0; rep < 3; rep++ {
		for _, workers := range workerCounts {
			lanes, control := runMailboxScenario(t, shards, epochs, workers)
			for d := range lanes {
				assertOrdered(fmt.Sprintf("workers=%d rep=%d lane %d", workers, rep, d), lanes[d])
				if !reflect.DeepEqual(lanes[d], refLanes[d]) {
					t.Fatalf("workers=%d rep=%d: lane %d delivery log diverged from the single-worker reference", workers, rep, d)
				}
			}
			if !reflect.DeepEqual(control, refControl) {
				t.Fatalf("workers=%d rep=%d: control lane delivery log diverged", workers, rep)
			}
		}
	}
}

// TestShardedEnginePostFromDrainSameBarrier documents the drain rule for
// posts made during the barrier itself: a post to a destination lane not yet
// folded at this barrier is delivered in the same pass; a post to an
// already-folded destination waits one epoch.  Both are deterministic.
func TestShardedEnginePostFromDrainSameBarrier(t *testing.T) {
	se := NewShardedEngine(3, 5, 100*Millisecond, 1)
	var log []string
	se.Shard(1).ScheduleFunc(10*Millisecond, func(e *Engine) {
		se.Post(e, 2, func(dst *Engine) {
			log = append(log, fmt.Sprintf("fwd@%v", dst.Now()))
			// Posted during the drain of lane 2: shard 0 was already folded
			// at this barrier, so this lands at the next one.
			se.Post(dst, 0, func(d0 *Engine) {
				log = append(log, fmt.Sprintf("back@%v", d0.Now()))
			})
		})
	})
	if err := se.Run(500 * Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"fwd@[s=0.100]", "back@[s=0.200]"}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("drain-time post log = %v, want %v", log, want)
	}
}
