// Package experiment defines the reproducible experiment harness: the
// scenarios matching the paper's evaluation section (Figure 3 with two
// regions, Figure 4 with three regions), the summary metrics used to judge
// the qualitative claims of Section VI-B (convergence, convergence speed,
// stability, response-time SLA), and the ablations the reproduction adds
// (β sweep, exploration-factor sweep, baseline policies, homogeneous
// regions).
package experiment

import (
	"fmt"

	"repro/internal/acm"
	"repro/internal/backend"
	"repro/internal/cloudsim"
	"repro/internal/core"
	"repro/internal/gslb"
	"repro/internal/pcam"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// Scenario is a complete experiment configuration, independent of the policy
// under test (the policy is supplied when the scenario is run so that the
// same deployment can be evaluated under Policies 1–3 and the baselines).
type Scenario struct {
	// Name labels the scenario ("figure3", "figure4", ...).
	Name string
	// Seed drives all random streams.
	Seed uint64
	// Regions lists the cloud regions and their client populations.
	Regions []acm.RegionSetup
	// Horizon is the simulated duration of one run.
	Horizon simclock.Duration
	// ControlInterval is the period of the global control loop.
	ControlInterval simclock.Duration
	// Beta is the RMTTF smoothing factor of equation (1).
	Beta float64
	// Predictor selects oracle or trained-ML RTTF prediction.
	Predictor acm.PredictorMode
	// VMC configures the per-region controllers.
	VMC pcam.Config
	// EventWorkers selects the sharded event loop: with a value >= 1 every
	// region shard runs its own sub-engine and the shard loops execute on up
	// to this many goroutines in lockstep epochs, with cross-shard effects
	// delivered through mailboxes at epoch barriers.  Zero keeps the serial
	// single-queue engine (byte-identical to the pre-event-loop behaviour);
	// results are byte-identical across all values >= 1.
	EventWorkers int
	// EventEpoch overrides the lockstep epoch width of the sharded event
	// loop (simclock.DefaultEpoch when zero).
	EventEpoch simclock.Duration
	// GSLB enables the global traffic director with the given routing
	// policy, health-probe cadence and failover thresholds.  A GSLB scenario
	// always runs on the sharded event loop (EventWorkers 0 is promoted to
	// 1), so its output is byte-identical for every EventWorkers value.
	GSLB gslb.Config
	// GlobalClients attaches this many emulated browsers to the director
	// instead of a fixed region.
	GlobalClients int
	// CohortClients attaches this many cohort-compressed clients to the
	// director (requires GSLB).  Per-region cohort populations are configured
	// on the RegionSetup's own CohortClients field instead.
	CohortClients int
	// TracerFraction is the fraction of every cohort population simulated as
	// individual browsers to feed the response-time series (acm default 1%
	// when zero).
	TracerFraction float64
	// ThinkTime overrides the mean client think time (TPC-W default 7 s when
	// zero).  Million-client cohort scenarios stretch it so the offered load
	// stays within the deployed capacity.
	ThinkTime simclock.Duration
	// CohortTick is the cohort state-split cadence (1 s when zero).
	CohortTick simclock.Duration
	// CohortMaxBatch caps the interactions one batched cohort request stands
	// for (64 when zero).
	CohortMaxBatch int
	// Arrivals lists open-loop (optionally inhomogeneous-Poisson) request
	// streams, pinned to a region or attached to the director.
	Arrivals []acm.ArrivalSetup
	// Faults is the scripted region-outage schedule driving failover
	// experiments.
	Faults []acm.RegionFault
	// LinkFaults is the scripted network-path degradation schedule driving
	// latency-routing experiments (requires a latency-aware GSLB config).
	LinkFaults []acm.LinkFault
	// GossipReplicas replaces the central director with this many replicated
	// directors exchanging health over the simulated gossip plane; each
	// request lane routes on its home replica's eventually-consistent view.
	// Requires GSLB; zero keeps the central director.
	GossipReplicas int
	// GossipInterval is the gossip round period (10 s when zero).
	GossipInterval simclock.Duration
	// GossipFanout is how many peers each replica pushes to per round
	// (1 when zero).
	GossipFanout int
	// GossipDelay is the per-message link delay of the gossip plane.
	GossipDelay simclock.Duration
	// GossipLoss is the per-message Bernoulli loss probability in [0, 1).
	GossipLoss float64
	// PartitionFaults scripts replica-set splits of the gossip plane —
	// the split-brain stimulus of the global-partition scenario.
	PartitionFaults []acm.PartitionFault
	// TraceSampleFraction enables the deterministic request-span layer: this
	// fraction of every client stream's requests is sampled into per-request
	// traces (issue, routing, mailbox hops, queueing, service, completion)
	// exportable as Chrome trace-event JSON.  Sampling is a pure function of
	// (Seed, stream, request ID), so the trace set is byte-identical for
	// every EventWorkers value and never perturbs the simulation.  Zero
	// disables tracing.
	TraceSampleFraction float64
	// FlightRecorder enables the engine flight recorder: per-epoch per-shard
	// busy/idle/mailbox-drain accounting plus control-tick phase timings.
	// Requires the sharded event loop (EventWorkers >= 1 or a GSLB config).
	FlightRecorder bool
	// TailFraction is the fraction of the run treated as steady state when
	// judging convergence and oscillation (0.4 when zero).
	TailFraction float64
	// ConvergenceTolerance is the relative RMTTF spread below which the
	// regions are considered converged (0.3 when zero).
	ConvergenceTolerance float64
	// Backend selects which backend.Backend implementation realises the
	// deployment ("" and "sim" both select the simulator).  Plain string so
	// scenarios stay JSON round-trippable.
	Backend string
}

// ValidateBeta rejects smoothing factors that withDefaults would silently
// reset to 0.5, so sweeps and CLIs never report a β they did not simulate.
func ValidateBeta(beta float64) error {
	if beta <= 0 || beta > 1 {
		return fmt.Errorf("experiment: beta %v outside (0, 1]", beta)
	}
	return nil
}

func (s Scenario) withDefaults() Scenario {
	if s.Horizon <= 0 {
		s.Horizon = 2 * simclock.Hour
	}
	if s.ControlInterval <= 0 {
		s.ControlInterval = 60 * simclock.Second
	}
	if s.Beta <= 0 || s.Beta > 1 {
		s.Beta = 0.5
	}
	if s.Predictor == "" {
		s.Predictor = acm.PredictorOracle
	}
	if s.TailFraction <= 0 {
		s.TailFraction = 0.4
	}
	if s.ConvergenceTolerance <= 0 {
		s.ConvergenceTolerance = 0.3
	}
	return s
}

// ManagerConfig translates the scenario into the acm.Config that realises it
// under the given policy.  A Scenario is plain data and every Manager built
// from one owns all of its state, so any number of managers can be constructed
// from the same scenario and run concurrently.
func (s Scenario) ManagerConfig(p core.Policy) acm.Config {
	return acm.Config{
		Seed:            s.Seed,
		Regions:         s.Regions,
		Policy:          p,
		Beta:            s.Beta,
		ControlInterval: s.ControlInterval,
		VMC:             s.VMC,
		Predictor:       s.Predictor,
		EventWorkers:    s.EventWorkers,
		EventEpoch:      s.EventEpoch,
		GSLB:            s.GSLB,
		GlobalClients:   s.GlobalClients,
		CohortClients:   s.CohortClients,
		TracerFraction:  s.TracerFraction,
		ThinkTime:       s.ThinkTime,
		CohortTick:      s.CohortTick,
		CohortMaxBatch:  s.CohortMaxBatch,
		Arrivals:        s.Arrivals,
		Faults:          s.Faults,
		LinkFaults:      s.LinkFaults,
		GossipReplicas:  s.GossipReplicas,
		GossipInterval:  s.GossipInterval,
		GossipFanout:    s.GossipFanout,
		GossipDelay:     s.GossipDelay,
		GossipLoss:      s.GossipLoss,
		PartitionFaults: s.PartitionFaults,

		TraceSampleFraction: s.TraceSampleFraction,
		FlightRecorder:      s.FlightRecorder,
	}
}

// NewBackend builds a fresh deployment from the scenario and the policy,
// through the backend seam (the scenario's Backend field picks the
// implementation; the simulator by default).  The policy is cloned first, so
// callers may reuse one NamedPolicy across concurrent runs even for stateful
// policies such as Policy 3.
func NewBackend(sc Scenario, np NamedPolicy) (backend.Backend, error) {
	sc = sc.withDefaults()
	b, err := backend.New(sc.Backend, sc.ManagerConfig(core.ClonePolicy(np.Policy)))
	if err != nil {
		return nil, fmt.Errorf("experiment: scenario %s policy %s: %w", sc.Name, np.Key, err)
	}
	return b, nil
}

// NewManager builds a fresh simulated deployment from the scenario and the
// policy.  It goes through the backend seam and unwraps the simulator, so the
// equivalence and determinism suites can keep scheduling through the engine;
// scenarios selecting a non-simulator backend must use NewBackend instead.
func NewManager(sc Scenario, np NamedPolicy) (*acm.Manager, error) {
	b, err := NewBackend(sc, np)
	if err != nil {
		return nil, err
	}
	sim, ok := b.(*backend.Simulated)
	if !ok {
		return nil, fmt.Errorf("experiment: scenario %s selects backend %q, which is not the simulator", sc.Name, sc.Backend)
	}
	return sim.Manager(), nil
}

// RegionNames returns the region names of the scenario in order.
func (s Scenario) RegionNames() []string {
	out := make([]string, len(s.Regions))
	for i, r := range s.Regions {
		out[i] = r.Region.Name
	}
	return out
}

// TotalClients returns the total number of emulated browsers.
func (s Scenario) TotalClients() int {
	n := 0
	for _, r := range s.Regions {
		n += r.Clients
	}
	return n
}

// EffectiveClients returns the total number of clients the scenario
// represents: individually simulated browsers (pinned, surge and global) plus
// every cohort-compressed client.
func (s Scenario) EffectiveClients() int {
	n := s.GlobalClients + s.CohortClients
	for _, r := range s.Regions {
		n += r.Clients + r.CohortClients
	}
	return n
}

// Figure3Scenario reproduces the first experiment of Section VI-B: a
// geographically distributed hybrid cloud composed of Region 1 (6 m3.medium
// VMs, Amazon EC2 Ireland) and Region 3 (4 private VMs, Munich), with
// client populations of significantly different sizes within the paper's
// [16, 512] range.
func Figure3Scenario(seed uint64) Scenario {
	return Scenario{
		Name: "figure3",
		Seed: seed,
		Regions: []acm.RegionSetup{
			{Region: cloudsim.PaperRegionConfig(cloudsim.PaperRegion1), Clients: 320, Mix: workload.BrowsingMix()},
			{Region: cloudsim.PaperRegionConfig(cloudsim.PaperRegion3), Clients: 128, Mix: workload.BrowsingMix()},
		},
	}.withDefaults()
}

// Figure4Scenario reproduces the second experiment of Section VI-B: all three
// regions (6 m3.medium in Ireland, 12 m3.small in Frankfurt, 4 private VMs in
// Munich) with again significantly different client populations.
func Figure4Scenario(seed uint64) Scenario {
	return Scenario{
		Name: "figure4",
		Seed: seed,
		Regions: []acm.RegionSetup{
			{Region: cloudsim.PaperRegionConfig(cloudsim.PaperRegion1), Clients: 288, Mix: workload.BrowsingMix()},
			{Region: cloudsim.PaperRegionConfig(cloudsim.PaperRegion2), Clients: 96, Mix: workload.BrowsingMix()},
			{Region: cloudsim.PaperRegionConfig(cloudsim.PaperRegion3), Clients: 256, Mix: workload.BrowsingMix()},
		},
	}.withDefaults()
}

// HomogeneousScenario is the control experiment behind the paper's closing
// remark that "Policy 1 ... is more suitable for less-heterogeneous
// environments": three identical regions with identical client populations.
func HomogeneousScenario(seed uint64) Scenario {
	mkRegion := func(name string) cloudsim.RegionConfig {
		cfg := cloudsim.PaperRegionConfig(cloudsim.PaperRegion1)
		cfg.Name = name
		return cfg
	}
	return Scenario{
		Name: "homogeneous",
		Seed: seed,
		Regions: []acm.RegionSetup{
			{Region: mkRegion("region1"), Clients: 192, Mix: workload.BrowsingMix()},
			{Region: mkRegion("region2"), Clients: 192, Mix: workload.BrowsingMix()},
			{Region: mkRegion("region3"), Clients: 192, Mix: workload.BrowsingMix()},
		},
	}.withDefaults()
}

// ElasticityScenario exercises the ADDVMS elasticity action of Section V: a
// single region starts with a deliberately small active pool, a workload
// surge connects three times as many clients halfway through the run, and the
// per-region controller is expected to activate standby VMs (and provision
// new ones) to bring the response time back under the SLA.
func ElasticityScenario(seed uint64) Scenario {
	region := cloudsim.PaperRegionConfig(cloudsim.PaperRegion1)
	region.InitialActive = 3
	region.InitialStandby = 3
	region.MaxVMs = 18
	return Scenario{
		Name: "elasticity",
		Seed: seed,
		Regions: []acm.RegionSetup{
			{
				Region:       region,
				Clients:      96,
				Mix:          workload.BrowsingMix(),
				SurgeClients: 288,
				SurgeAt:      30 * simclock.Minute,
			},
			{Region: cloudsim.PaperRegionConfig(cloudsim.PaperRegion3), Clients: 64, Mix: workload.BrowsingMix()},
		},
		Horizon: 90 * simclock.Minute,
		VMC: pcam.Config{
			ElasticityEnabled:     true,
			ResponseTimeThreshold: 1.0,
		},
	}.withDefaults()
}

// The megaregion scenarios run a single 5x10^3-VM pool: well past the
// ~10^3-VM point where whole-pool scans dominate a run.
const (
	megaregionActive  = 4000
	megaregionStandby = 1000
	// MegaregionShards is the shard count of the "megaregion-sharded"
	// scenario (exported so CLIs and benchmarks quote the same number).
	MegaregionShards = 16
)

// megaregionScenario builds one region with a 5x10^3-VM pool split across the
// given number of engine shards, with the control tick fanned out to
// tickWorkers goroutines (<= 1 keeps the sequential tick).  The client
// population is sized to keep the run affordable in tests while still pushing
// hundreds of requests per second through the load balancer — the O(pool)
// per-request scan is precisely what sharding removes.
func megaregionScenario(name string, seed uint64, shards, tickWorkers int) Scenario {
	region := cloudsim.RegionConfig{
		Name:           "megaregion",
		Provider:       "aws",
		Location:       "us-east-1 (N. Virginia)",
		Type:           cloudsim.M3Medium,
		InitialActive:  megaregionActive,
		InitialStandby: megaregionStandby,
		MaxVMs:         megaregionActive + megaregionStandby,
		Shards:         shards,
	}
	return Scenario{
		Name: name,
		Seed: seed,
		Regions: []acm.RegionSetup{
			{Region: region, Clients: 2000, Mix: workload.BrowsingMix()},
		},
		Horizon: 30 * simclock.Minute,
		VMC: pcam.Config{
			// At 5x10^3 VMs the per-VM request trickle keeps every predicted
			// RTTF far above the default 600 s threshold anyway; elasticity
			// stays off so the scenario isolates the dispatch/scan path that
			// sharding optimises.
			ElasticityEnabled: false,
			TickWorkers:       tickWorkers,
		},
	}.withDefaults()
}

// MegaregionScenario is the single-shard baseline: one region holding a
// 5x10^3-VM pool managed as one engine shard, the configuration whose
// whole-pool scans the sharded engine replaces.
func MegaregionScenario(seed uint64) Scenario {
	return megaregionScenario("megaregion", seed, 1, 1)
}

// MegaregionShardedScenario is the same 5x10^3-VM region split across
// MegaregionShards engine shards: per-request dispatch and the controller
// scans touch pool/16 VMs instead of the whole pool.  The control tick still
// walks the shards sequentially.
func MegaregionShardedScenario(seed uint64) Scenario {
	return megaregionScenario("megaregion-sharded", seed, MegaregionShards, 1)
}

// MegaregionParallelScenario is the 16-shard megaregion with the control
// tick's per-shard phase fanned out to one goroutine per shard — the
// wall-clock parallel configuration.  Its results are byte-identical to
// megaregion-sharded's at every GOMAXPROCS: the parallel phase writes only
// shard-local state and the merge phase folds the partials in shard-index
// order.
func MegaregionParallelScenario(seed uint64) Scenario {
	return megaregionScenario("megaregion-parallel", seed, MegaregionShards, MegaregionShards)
}

// MegaregionEventLoopScenario is the 16-shard megaregion with the event loop
// itself fanned out: every shard runs as its own sub-engine servicing its
// arrivals, completions and rejuvenation timers in parallel (one goroutine
// per shard), with the control tick also fanned out at the epoch barriers.
// Unlike megaregion-parallel — which only parallelised the control tick's
// monitor/analyze phase — this parallelises request service, the bulk of the
// run.  Its results are byte-identical for every EventWorkers >= 1 at any
// GOMAXPROCS (the event-loop equivalence suite pins that); they
// intentionally differ from the serial megaregion-sharded bytes, because
// cross-shard effects are epoch-quantised.
func MegaregionEventLoopScenario(seed uint64) Scenario {
	sc := megaregionScenario("megaregion-eventloop", seed, MegaregionShards, MegaregionShards)
	sc.EventWorkers = MegaregionShards
	return sc
}

// Figure4EventLoopScenario is the figure4 deployment with every region split
// across 3 engine shards and the event loop fanned out: the richest
// cross-shard traffic the repo has (three heterogeneous regions, the global
// forward plan continuously redirecting requests between them, standby
// promotions and reactive recoveries crossing shards through mailboxes).
// It is the determinism workhorse of the parallel event loop: the
// equivalence suite runs it at EventWorkers 1, 4 and GOMAXPROCS and demands
// byte-identical output.
func Figure4EventLoopScenario(seed uint64) Scenario {
	sc := Figure4Scenario(seed)
	sc.Name = "figure4-eventloop"
	for i := range sc.Regions {
		sc.Regions[i].Region.Shards = 3
	}
	sc.EventWorkers = 4
	return sc
}

// MegaclientsScenario is the cohort-compression showcase: 10^6 effective
// clients on the 16-shard megaregion, where simulating a browser state
// machine per client would be ~500x today's largest population.  The cohort
// represents the clients as counted (mix-state, think-phase) buckets split
// per tick by binomial draws and submits MaxBatch-sized batched requests, so
// event volume scales with batches per tick, not clients; a 1% tracer
// sub-population (10^4 real browsers) feeds the response-time series.  The
// think time is stretched to 60 s to keep the 10^6-client offered load
// (~16.7k interactions/s) within the 4x10^3-VM pool's capacity, mirroring
// how real mega-populations are mostly idle at any instant.
func MegaclientsScenario(seed uint64) Scenario {
	sc := megaregionScenario("megaclients", seed, MegaregionShards, MegaregionShards)
	sc.EventWorkers = MegaregionShards
	sc.Regions[0].Clients = 0
	sc.Regions[0].CohortClients = 1_000_000
	sc.ThinkTime = 60 * simclock.Second
	sc.CohortMaxBatch = 128
	return sc.withDefaults()
}

// GlobalMegaclientsScenario spreads 1.2x10^6 cohort-compressed clients over
// the global traffic director: three 10^3-VM regions, least-load routing
// re-weighted every 15 s, and a small pinned browser population per region so
// the forward-plan machinery stays exercised alongside the director.  The
// cohort batches ride the per-lane GSLB dispatchers like global browsers do,
// so routing, failover state and cross-lane mailbox traffic all see
// million-client load.
func GlobalMegaclientsScenario(seed uint64) Scenario {
	mkRegion := func(name string) cloudsim.RegionConfig {
		return cloudsim.RegionConfig{
			Name:           name,
			Provider:       "aws",
			Location:       "us-east-1 (N. Virginia)",
			Type:           cloudsim.M3Medium,
			InitialActive:  800,
			InitialStandby: 200,
			MaxVMs:         1000,
			Shards:         8,
		}
	}
	return Scenario{
		Name: "global-megaclients",
		Seed: seed,
		Regions: []acm.RegionSetup{
			{Region: mkRegion("region1"), Clients: 32, Mix: workload.BrowsingMix()},
			{Region: mkRegion("region2"), Clients: 32, Mix: workload.BrowsingMix()},
			{Region: mkRegion("region3"), Clients: 32, Mix: workload.BrowsingMix()},
		},
		CohortClients:  1_200_000,
		ThinkTime:      60 * simclock.Second,
		CohortMaxBatch: 128,
		EventWorkers:   8,
		Horizon:        30 * simclock.Minute,
		GSLB: gslb.Config{
			Policy: gslb.PolicyLeastLoad,
		},
		VMC: pcam.Config{
			ElasticityEnabled: false,
		},
	}.withDefaults()
}

// globalRegions is the shared deployment of the global-* scenarios: the
// three paper regions, each keeping a small pinned client population so the
// classic forward-plan machinery stays exercised alongside the director.
func globalRegions() []acm.RegionSetup {
	return []acm.RegionSetup{
		{Region: cloudsim.PaperRegionConfig(cloudsim.PaperRegion1), Clients: 32, Mix: workload.BrowsingMix()},
		{Region: cloudsim.PaperRegionConfig(cloudsim.PaperRegion2), Clients: 32, Mix: workload.BrowsingMix()},
		{Region: cloudsim.PaperRegionConfig(cloudsim.PaperRegion3), Clients: 32, Mix: workload.BrowsingMix()},
	}
}

// GlobalFailoverScenario exercises health-driven failover: 256 global
// clients enter through the director's failover policy (preference region1 >
// region2 > region3) while a scripted outage blacks region1 out between
// minutes 10 and 20.  The probe drains region1 within two 15-second
// samples, traffic fails over to region2, and once the controller
// repromotes region1's pool after the outage the director fails back —
// all of it pinned down to the byte by the scenario golden (per-region
// routed counts plus the health-transition log).
func GlobalFailoverScenario(seed uint64) Scenario {
	return Scenario{
		Name:          "global-failover",
		Seed:          seed,
		Regions:       globalRegions(),
		GlobalClients: 256,
		GSLB: gslb.Config{
			Policy:     gslb.PolicyFailover,
			Preference: []string{"region1", "region2", "region3"},
		},
		Faults: []acm.RegionFault{
			{Region: "region1", At: 10 * simclock.Minute, Duration: 10 * simclock.Minute, KeepActive: 0},
		},
	}.withDefaults()
}

// GlobalLeastLoadScenario routes 192 global clients by probed region
// capacity: the least-load policy re-weights every 15 seconds as
// rejuvenations, failures and recoveries move each region's healthy-state
// capacity, so traffic continuously follows where the resources are.
func GlobalLeastLoadScenario(seed uint64) Scenario {
	return Scenario{
		Name:          "global-leastload",
		Seed:          seed,
		Regions:       globalRegions(),
		GlobalClients: 192,
		GSLB: gslb.Config{
			Policy: gslb.PolicyLeastLoad,
		},
	}.withDefaults()
}

// GlobalDiurnalScenario models time-varying global traffic: three
// region-pinned inhomogeneous-Poisson streams ("americas", "europe",
// "asia") whose sinusoidal rates peak a third of a cycle apart — each
// region's entry load crests at a different time — plus a globally attached
// piecewise "mobile" stream and 96 global browsers split by the
// static-weight policy.  The rotating peaks are exactly the workload the
// forward plan and the director have to keep absorbing together.
func GlobalDiurnalScenario(seed uint64) Scenario {
	diurnal := func(phase simclock.Duration) workload.RateSpec {
		return workload.RateSpec{
			Kind:      workload.RateSinusoid,
			Base:      6,
			Amplitude: 4,
			Period:    1 * simclock.Hour,
			Phase:     phase,
		}
	}
	return Scenario{
		Name:          "global-diurnal",
		Seed:          seed,
		Regions:       globalRegions(),
		GlobalClients: 96,
		GSLB: gslb.Config{
			Policy:  gslb.PolicyStatic,
			Weights: []float64{0.45, 0.30, 0.25},
		},
		Arrivals: []acm.ArrivalSetup{
			{Name: "americas", Region: "region1", Rate: diurnal(0)},
			{Name: "europe", Region: "region2", Rate: diurnal(20 * simclock.Minute)},
			{Name: "asia", Region: "region3", Rate: diurnal(40 * simclock.Minute)},
			{Name: "mobile", Rate: workload.RateSpec{
				Kind: workload.RatePiecewise,
				Steps: []workload.RateStep{
					{Duration: 10 * simclock.Minute, Rate: 4},
					{Duration: 10 * simclock.Minute, Rate: 12},
					{Duration: 10 * simclock.Minute, Rate: 2},
				},
			}},
		},
	}.withDefaults()
}

// GlobalLatencyScenario exercises latency-aware geo routing: three globally
// attached constant arrival streams ("americas", "europe", "asia") enter
// through the director with asymmetric per-region RTT rows, plus 96 global
// browsers on a uniform 60 ms row.  The latency policy weights each region by
// healthy capacity over squared learned RTT, so every stream concentrates on
// its nearby regions while the passive estimator keeps re-confirming the
// seeded matrix from observed completions.
func GlobalLatencyScenario(seed uint64) Scenario {
	constant := func(rate float64) workload.RateSpec {
		return workload.RateSpec{Kind: workload.RateConstant, Rate: rate}
	}
	return Scenario{
		Name:          "global-latency",
		Seed:          seed,
		Regions:       globalRegions(),
		GlobalClients: 96,
		GSLB: gslb.Config{
			Policy:          gslb.PolicyLatency,
			LatencyExponent: 2,
			RTT: map[string][]float64{
				"global":   {60, 60, 60},
				"americas": {80, 140, 160},
				"europe":   {120, 30, 40},
				"asia":     {240, 180, 160},
			},
		},
		Arrivals: []acm.ArrivalSetup{
			{Name: "americas", Rate: constant(8)},
			{Name: "europe", Rate: constant(8)},
			{Name: "asia", Rate: constant(8)},
		},
	}.withDefaults()
}

// GlobalCableCutScenario is GlobalLatencyScenario plus a scripted cable cut:
// at minute 12 the americas-to-region1 path's RTT doubles for the rest of the
// run.  The director is never told — it learns purely from observed request
// completions, so over the following probe ticks the americas EWMA for
// region1 climbs toward the new 160 ms ground truth and the stream's traffic
// shifts to region2/region3.  The golden pins the routed-count shift and the
// gslb_rtt series byte-for-byte.
func GlobalCableCutScenario(seed uint64) Scenario {
	s := GlobalLatencyScenario(seed)
	s.Name = "global-cablecut"
	s.LinkFaults = []acm.LinkFault{
		{Stream: "americas", Region: "region1", At: 12 * simclock.Minute, Factor: 2},
	}
	return s.withDefaults()
}

// GlobalTracedScenario is GlobalLatencyScenario with the observability plane
// switched on: every region runs two engine shards (so routing crosses lanes
// and shard hops appear in traces), 2% of every stream's requests are sampled
// into the span layer, and the flight recorder keeps per-epoch per-shard
// utilization.  The golden pins the exported Chrome trace bytes across
// EventWorkers {0, 1, 4, GOMAXPROCS}: tracing rides the deterministic request
// path, so the traces — not just the summary — are part of the byte contract.
func GlobalTracedScenario(seed uint64) Scenario {
	s := GlobalLatencyScenario(seed)
	s.Name = "global-traced"
	for i := range s.Regions {
		s.Regions[i].Region.Shards = 2
	}
	s.TraceSampleFraction = 0.02
	s.FlightRecorder = true
	return s.withDefaults()
}

// GlobalGossipScenario exercises the replicated health plane under churn:
// 192 global clients route by least load through three director replicas
// that only share health via 10-second push-pull gossip rounds, while two
// staggered partial outages (region2 minutes 8-14, region3 minutes 18-24)
// keep the owned views changing.  Each request lane is homed to one replica,
// so routing reflects three slightly divergent views whose drift and
// re-convergence the gossip_convergence series pins byte-for-byte.
func GlobalGossipScenario(seed uint64) Scenario {
	return Scenario{
		Name:          "global-gossip",
		Seed:          seed,
		Regions:       globalRegions(),
		GlobalClients: 192,
		GSLB: gslb.Config{
			Policy: gslb.PolicyLeastLoad,
		},
		GossipReplicas: 3,
		GossipInterval: 10 * simclock.Second,
		Faults: []acm.RegionFault{
			{Region: "region2", At: 8 * simclock.Minute, Duration: 6 * simclock.Minute, KeepActive: 2},
			{Region: "region3", At: 18 * simclock.Minute, Duration: 6 * simclock.Minute, KeepActive: 1},
		},
	}.withDefaults()
}

// GlobalPartitionScenario is the split-brain experiment the central director
// cannot express: replica 2 is partitioned away from minutes 8 to 18, and
// region1 (whose health only replica 0 probes) blacks out from minutes 10 to
// 20.  The majority side drains region1 and fails over to region2 within two
// probes; the isolated replica's view stays frozen at "region1 healthy", so
// the lanes homed to it keep routing a third of the traffic into the
// blacked-out region until the partition heals and two gossip rounds pull
// the drain across.  The golden pins the divergence ramp in the
// gossip_convergence series and the routed counts that keep climbing for a
// dead region.
func GlobalPartitionScenario(seed uint64) Scenario {
	return Scenario{
		Name:          "global-partition",
		Seed:          seed,
		Regions:       globalRegions(),
		GlobalClients: 256,
		GSLB: gslb.Config{
			Policy:     gslb.PolicyFailover,
			Preference: []string{"region1", "region2", "region3"},
		},
		GossipReplicas: 3,
		GossipInterval: 10 * simclock.Second,
		PartitionFaults: []acm.PartitionFault{
			{At: 8 * simclock.Minute, Duration: 10 * simclock.Minute, Replicas: []int{2}},
		},
		Faults: []acm.RegionFault{
			{Region: "region1", At: 10 * simclock.Minute, Duration: 10 * simclock.Minute, KeepActive: 0},
		},
	}.withDefaults()
}

// GlobalStaleViewScenario overloads a recovering region with stale healthy
// views: gossip rounds are slow (40 s) and lossy (25%), so when region1
// shrinks to a single VM between minutes 6 and 14, only its owning replica
// reacts quickly — the other two keep routing their lanes' full least-load
// share at a region that can no longer take it, and after the outage the
// drain/recovery states propagate just as sluggishly.  The gap between the
// owner's view and the laggards' is exactly what the gossip_convergence
// series and the drop counts pin.
func GlobalStaleViewScenario(seed uint64) Scenario {
	return Scenario{
		Name:          "global-staleview",
		Seed:          seed,
		Regions:       globalRegions(),
		GlobalClients: 192,
		GSLB: gslb.Config{
			Policy: gslb.PolicyLeastLoad,
		},
		GossipReplicas: 3,
		GossipInterval: 40 * simclock.Second,
		GossipLoss:     0.25,
		GossipDelay:    2 * simclock.Second,
		Faults: []acm.RegionFault{
			{Region: "region1", At: 6 * simclock.Minute, Duration: 8 * simclock.Minute, KeepActive: 1},
		},
	}.withDefaults()
}

// Policies returns the three policies of the paper keyed by the short names
// used throughout the reproduction, in presentation order.
func Policies() []NamedPolicy {
	return []NamedPolicy{
		{Key: "policy1", Label: "Policy 1 (sensible routing)", Policy: core.SensibleRouting{}},
		{Key: "policy2", Label: "Policy 2 (available resources)", Policy: core.AvailableResources{}},
		{Key: "policy3", Label: "Policy 3 (exploration)", Policy: &core.Exploration{K: 1}},
	}
}

// NamedPolicy couples a policy with the identifiers used in reports.
type NamedPolicy struct {
	Key    string
	Label  string
	Policy core.Policy
}

// PolicyByKey returns the named policy for "policy1", "policy2", "policy3",
// "uniform" or "static:<w1,w2,...>"-style keys handled by core.ByName.
func PolicyByKey(key string) (NamedPolicy, error) {
	for _, np := range Policies() {
		if np.Key == key {
			return np, nil
		}
	}
	p, err := core.ByName(key)
	if err != nil {
		return NamedPolicy{}, fmt.Errorf("experiment: %w", err)
	}
	return NamedPolicy{Key: key, Label: p.Name(), Policy: p}, nil
}
