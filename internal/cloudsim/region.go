package cloudsim

import (
	"fmt"
	"sort"

	"repro/internal/simclock"
)

// RegionConfig describes one cloud region of the deployment: a set of VMs of
// a single instance type hosted by one provider in one geographic location.
// The paper's testbed (Section VI-A) uses three such regions with markedly
// different amounts of resources, which is exactly the heterogeneity the
// load-balancing policies must cope with.
type RegionConfig struct {
	// Name identifies the region (e.g. "region1").
	Name string
	// Provider is the hosting provider ("aws", "private", ...).
	Provider string
	// Location is the geographic location, used by the overlay latency model.
	Location string
	// Type is the instance type of every VM in the region.
	Type InstanceType
	// InitialActive is the number of VMs started in the ACTIVE state.
	InitialActive int
	// InitialStandby is the number of VMs started in the STANDBY state,
	// available for proactive takeover.
	InitialStandby int
	// MaxVMs caps how many VMs the hypervisor / provider account can host in
	// this region; ADDVMS requests beyond the cap are rejected.  Zero means
	// "twice the initial pool".
	MaxVMs int
	// Shards splits the region's VM pool across this many engine shards, each
	// owning a disjoint VM subset with its own derived RNG stream.  Sharding
	// keeps the per-request and per-scan cost at O(pool/Shards) so a single
	// region can grow past ~10^3 VMs.  Zero or one keeps today's single-pool
	// behaviour (byte-identical event streams).
	Shards int
	// Anomalies, Failure and Rejuvenation apply to every VM in the region.
	Anomalies    AnomalyProfile
	Failure      FailurePoint
	Rejuvenation RejuvenationModel
}

// withDefaults fills zero-valued fields with the paper's defaults.
func (c RegionConfig) withDefaults() RegionConfig {
	if c.Anomalies.IsZero() {
		c.Anomalies = DefaultAnomalyProfile()
	}
	if c.Failure.IsZero() {
		c.Failure = DefaultFailurePoint()
	}
	if c.Rejuvenation.IsZero() {
		c.Rejuvenation = DefaultRejuvenationModel()
	}
	if c.MaxVMs <= 0 {
		c.MaxVMs = 2 * (c.InitialActive + c.InitialStandby)
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	return c
}

// Region is a pool of VMs managed as a unit by one Virtual Machine
// Controller.  Internally the pool is split across one or more shards (see
// shard.go); the facade presented here merges the per-shard views so callers
// keep seeing a single logical region.
type Region struct {
	cfg    RegionConfig
	shards []*shard
	vms    []*VM          // every VM, in provisioning order (facade views)
	byID   map[string]*VM // O(1) lookup, required at 10^3+ VM pools
	next   int            // counter for provisioned VM IDs
}

// NewRegion builds the region's initial VM pool.  Active VMs are activated
// immediately (activation latency is irrelevant before the simulation
// starts).
//
// With Shards <= 1 the provided rng drives every VM fork directly, exactly as
// the unsharded engine did.  With Shards > 1 a base seed is drawn from rng
// once and each shard receives an independent stream derived via
// simclock.DeriveSeed(base, shardIndex), so shard streams do not depend on
// each other's consumption.
func NewRegion(cfg RegionConfig, rng *simclock.RNG) *Region {
	cfg = cfg.withDefaults()
	if rng == nil {
		rng = simclock.NewRNG(7)
	}
	r := &Region{cfg: cfg, byID: map[string]*VM{}}
	r.shards = make([]*shard, cfg.Shards)
	if cfg.Shards == 1 {
		r.shards[0] = &shard{index: 0, rng: rng}
	} else {
		base := rng.Uint64()
		for i := range r.shards {
			r.shards[i] = &shard{index: i, rng: simclock.NewRNG(simclock.DeriveSeed(base, uint64(i)))}
		}
	}
	for i := 0; i < cfg.InitialActive+cfg.InitialStandby; i++ {
		vm := r.newVM()
		if i < cfg.InitialActive {
			vm.state = StateActive
		}
	}
	return r
}

// newVM provisions a VM object, assigns it round-robin to a shard and appends
// it to the pool.
func (r *Region) newVM() *VM {
	sh := r.shards[r.next%len(r.shards)]
	r.next++
	id := fmt.Sprintf("%s-vm%02d", r.cfg.Name, r.next)
	vm := NewVM(VMConfig{
		ID:           id,
		Type:         r.cfg.Type,
		Anomalies:    r.cfg.Anomalies,
		Failure:      r.cfg.Failure,
		Rejuvenation: r.cfg.Rejuvenation,
	}, sh.rng.Fork())
	vm.shardIndex = sh.index
	sh.vms = append(sh.vms, vm)
	r.vms = append(r.vms, vm)
	r.byID[id] = vm
	return vm
}

// Name returns the region name.
func (r *Region) Name() string { return r.cfg.Name }

// Config returns the region configuration (with defaults applied).
func (r *Region) Config() RegionConfig { return r.cfg }

// VMs returns all VMs in the pool, in provisioning order.
func (r *Region) VMs() []*VM { return r.vms }

// VM returns the VM with the given ID, or nil.
func (r *Region) VM(id string) *VM { return r.byID[id] }

// byState returns the VMs currently in the given state.
func (r *Region) byState(s VMState) []*VM {
	return r.AppendByState(nil, s)
}

// AppendByState appends the region's VMs currently in the given state to dst,
// in provisioning order, and returns the extended slice.  It is the
// allocation-free variant of ActiveVMs / StandbyVMs for callers that scan on
// every control tick and want to reuse one buffer via dst[:0].
func (r *Region) AppendByState(dst []*VM, s VMState) []*VM {
	for _, vm := range r.vms {
		if vm.State() == s {
			dst = append(dst, vm)
		}
	}
	return dst
}

// ActiveVMs returns the VMs currently serving requests.
func (r *Region) ActiveVMs() []*VM { return r.byState(StateActive) }

// StandbyVMs returns the healthy spare VMs.
func (r *Region) StandbyVMs() []*VM { return r.byState(StateStandby) }

// FailedVMs returns the VMs that reached their failure point and have not
// been recovered yet.
func (r *Region) FailedVMs() []*VM { return r.byState(StateFailed) }

// RejuvenatingVMs returns the VMs currently being rejuvenated.
func (r *Region) RejuvenatingVMs() []*VM { return r.byState(StateRejuvenating) }

// Provision adds n new STANDBY VMs, respecting the MaxVMs cap, and returns
// the VMs actually created.  This is the hypervisor-side half of the ADDVMS
// elasticity action.
func (r *Region) Provision(n int) []*VM {
	var out []*VM
	for i := 0; i < n; i++ {
		if len(r.vms) >= r.cfg.MaxVMs {
			break
		}
		out = append(out, r.newVM())
	}
	return out
}

// CanProvision reports whether at least one more VM fits under the cap.
func (r *Region) CanProvision() bool { return len(r.vms) < r.cfg.MaxVMs }

// ComputeCapacity returns the aggregate healthy-state service capacity of the
// ACTIVE VMs, expressed in requests per second: for each active VM,
// vCPUs / base service time, discounted by its current degradation.  It is
// the quantity Policy 2 implicitly estimates through Q_i = RMTTF_i * f_i * λ.
func (r *Region) ComputeCapacity() float64 {
	total := 0.0
	for _, sh := range r.shards {
		total += sh.computeCapacity()
	}
	return total
}

// TrueRMTTF returns the ground-truth Region Mean Time To Failure: the average
// of the per-VM true RTTFs assuming the region's current request rate is
// spread evenly across its active VMs.  The ML-driven system estimates this
// quantity from features; tests use the ground truth to validate those
// estimates.
func (r *Region) TrueRMTTF(regionRatePerSec float64) float64 {
	activeTotal := 0
	for _, sh := range r.shards {
		activeTotal += sh.countState(StateActive)
	}
	if activeTotal == 0 {
		return 0
	}
	perVM := regionRatePerSec / float64(activeTotal)
	sum := 0.0
	for _, sh := range r.shards {
		s, _ := sh.trueRTTFSum(perVM)
		sum += s
	}
	return sum / float64(activeTotal)
}

// HourlyCost returns the total on-demand cost per hour of every provisioned
// VM in the region.
func (r *Region) HourlyCost() float64 {
	total := 0.0
	for _, vm := range r.vms {
		total += vm.Type().CostPerHour
	}
	return total
}

// Stats aggregates lifetime counters across the region's VMs.
type Stats struct {
	Region        string
	VMs           int
	Active        int
	Standby       int
	Failed        int
	Rejuvenating  int
	Served        uint64
	Dropped       uint64
	Crashes       uint64
	Rejuvenations uint64
	LeakedMB      float64
}

// Stats returns a snapshot of the region's aggregate counters, merged from
// the per-shard aggregates.
func (r *Region) Stats() Stats {
	s := Stats{Region: r.cfg.Name, VMs: len(r.vms)}
	for _, sh := range r.shards {
		ss := sh.stats(r.cfg.Name)
		s.Active += ss.Active
		s.Standby += ss.Standby
		s.Failed += ss.Failed
		s.Rejuvenating += ss.Rejuvenating
		s.Served += ss.Served
		s.Dropped += ss.Dropped
		s.Crashes += ss.Crashes
		s.Rejuvenations += ss.Rejuvenations
		s.LeakedMB += ss.LeakedMB
	}
	return s
}

// Telemetry is the health-probe view of a region: the signals a global
// traffic director samples when deciding whether the region should keep
// receiving traffic.  Served/Dropped are lifetime counters; probes diff them
// across samples to obtain interval error rates.
type Telemetry struct {
	// Region names the region.
	Region string
	// ActiveVMs is the number of VMs currently serving requests.
	ActiveVMs int
	// BaselineActive is the configured initial ACTIVE pool — the denominator
	// of the active-capacity fraction a probe thresholds on.
	BaselineActive int
	// Capacity is the aggregate healthy-state service capacity of the ACTIVE
	// VMs in requests per second (see ComputeCapacity).
	Capacity float64
	// Served and Dropped are the lifetime request counters of the region's
	// VMs.
	Served  uint64
	Dropped uint64
}

// Telemetry returns the probe snapshot of the region's current state.
func (r *Region) Telemetry() Telemetry {
	st := r.Stats()
	return Telemetry{
		Region:         r.cfg.Name,
		ActiveVMs:      st.Active,
		BaselineActive: r.cfg.InitialActive,
		Capacity:       r.ComputeCapacity(),
		Served:         st.Served,
		Dropped:        st.Dropped,
	}
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("%s: vms=%d active=%d standby=%d failed=%d rejuv=%d served=%d dropped=%d crashes=%d",
		s.Region, s.VMs, s.Active, s.Standby, s.Failed, s.Rejuvenating, s.Served, s.Dropped, s.Crashes)
}

// PaperRegion identifies one of the three regions of the paper's testbed.
type PaperRegion int

const (
	// PaperRegion1 is Region 1: 6 m3.medium instances in the Ireland region
	// of Amazon EC2.
	PaperRegion1 PaperRegion = iota + 1
	// PaperRegion2 is Region 2: 12 m3.small instances in the Frankfurt region
	// of Amazon EC2.
	PaperRegion2
	// PaperRegion3 is Region 3: 4 private VMs (2 vCPU, 1 GB RAM) on an HP
	// ProLiant server in Munich.
	PaperRegion3
)

// PaperRegionConfig returns the RegionConfig matching the paper's testbed for
// the given region.  Each region keeps a small standby pool so PCAM has spare
// VMs to activate, as required by the proactive-takeover mechanism.
func PaperRegionConfig(which PaperRegion) RegionConfig {
	switch which {
	case PaperRegion1:
		return RegionConfig{
			Name:           "region1",
			Provider:       "aws",
			Location:       "eu-west-1 (Ireland)",
			Type:           M3Medium,
			InitialActive:  6,
			InitialStandby: 3,
		}
	case PaperRegion2:
		return RegionConfig{
			Name:           "region2",
			Provider:       "aws",
			Location:       "eu-central-1 (Frankfurt)",
			Type:           M3Small,
			InitialActive:  12,
			InitialStandby: 6,
		}
	case PaperRegion3:
		return RegionConfig{
			Name:           "region3",
			Provider:       "private",
			Location:       "Munich",
			Type:           PrivateVM,
			InitialActive:  4,
			InitialStandby: 2,
		}
	default:
		panic(fmt.Sprintf("cloudsim: unknown paper region %d", which))
	}
}

// PaperTestbed builds the requested paper regions, seeding each region's RNG
// deterministically from the base seed.
func PaperTestbed(seed uint64, which ...PaperRegion) []*Region {
	sort.Slice(which, func(i, j int) bool { return which[i] < which[j] })
	out := make([]*Region, 0, len(which))
	for i, w := range which {
		rng := simclock.NewRNG(seed + uint64(i)*1000003 + uint64(w))
		out = append(out, NewRegion(PaperRegionConfig(w), rng))
	}
	return out
}
