package cloudsim

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/simclock"
)

func shardedConfig(shards int) RegionConfig {
	return RegionConfig{
		Name:           "shardy",
		Provider:       "aws",
		Location:       "test",
		Type:           M3Medium,
		InitialActive:  10,
		InitialStandby: 6,
		MaxVMs:         24,
		Shards:         shards,
	}
}

func TestRegionShardsDefaultToOne(t *testing.T) {
	r := NewRegion(PaperRegionConfig(PaperRegion1), simclock.NewRNG(1))
	if r.NumShards() != 1 {
		t.Fatalf("NumShards = %d, want 1 by default", r.NumShards())
	}
	if r.Config().Shards != 1 {
		t.Fatalf("withDefaults should normalise Shards to 1, got %d", r.Config().Shards)
	}
	for _, vm := range r.VMs() {
		if vm.ShardIndex() != 0 {
			t.Fatalf("VM %s in shard %d, want 0", vm.ID(), vm.ShardIndex())
		}
	}
	if got := len(r.ShardVMs(0)); got != len(r.VMs()) {
		t.Fatalf("shard 0 owns %d VMs, want the whole pool (%d)", got, len(r.VMs()))
	}
}

// TestShardedRegionPartition checks the core ownership invariant: every VM
// belongs to exactly one shard, assignment is round-robin by provisioning
// index, and the facade's provisioning-order view is unchanged by sharding.
func TestShardedRegionPartition(t *testing.T) {
	const shards = 4
	r := NewRegion(shardedConfig(shards), simclock.NewRNG(7))
	if r.NumShards() != shards {
		t.Fatalf("NumShards = %d, want %d", r.NumShards(), shards)
	}

	// VM IDs do not depend on the shard count.
	flat := NewRegion(shardedConfig(1), simclock.NewRNG(7))
	for i, vm := range r.VMs() {
		if vm.ID() != flat.VMs()[i].ID() {
			t.Fatalf("sharding changed VM naming: %s vs %s", vm.ID(), flat.VMs()[i].ID())
		}
	}

	seen := map[string]int{}
	total := 0
	for s := 0; s < shards; s++ {
		for _, vm := range r.ShardVMs(s) {
			if vm.ShardIndex() != s || r.ShardOf(vm) != s {
				t.Fatalf("VM %s owned by shard %d but reports shard %d", vm.ID(), s, vm.ShardIndex())
			}
			if prev, dup := seen[vm.ID()]; dup {
				t.Fatalf("VM %s owned by shards %d and %d", vm.ID(), prev, s)
			}
			seen[vm.ID()] = s
			total++
		}
	}
	if total != len(r.VMs()) {
		t.Fatalf("shards own %d VMs, pool has %d", total, len(r.VMs()))
	}
	for i, vm := range r.VMs() {
		if want := i % shards; seen[vm.ID()] != want {
			t.Fatalf("VM %d (%s) in shard %d, want round-robin shard %d", i, vm.ID(), seen[vm.ID()], want)
		}
	}
}

// TestShardedRegionDerivedStreams pins the per-shard RNG derivation: the same
// seed always yields the same shard streams, VM service behaviour included.
// (Disjointness of sibling streams is covered by the DeriveSeed property
// tests in simclock.)
func TestShardedRegionDerivedStreams(t *testing.T) {
	eng := simclock.NewEngine(3)
	a := NewRegion(shardedConfig(4), simclock.NewRNG(99))
	b := NewRegion(shardedConfig(4), simclock.NewRNG(99))
	// Drive the same request sequence through both regions' corresponding VMs
	// and require identical outcomes, which pins the whole derivation chain.
	for i, vm := range a.ActiveVMs() {
		vm.Dispatch(eng, &Request{ID: uint64(i), ServiceFactor: 1, Arrival: eng.Now()})
	}
	for i, vm := range b.ActiveVMs() {
		vm.Dispatch(eng, &Request{ID: uint64(i), ServiceFactor: 1, Arrival: eng.Now()})
	}
	eng.RunUntilEmpty()
	for i, vm := range a.VMs() {
		other := b.VMs()[i]
		if vm.Served() != other.Served() || vm.LeakedMB() != other.LeakedMB() || vm.ZombieThreads() != other.ZombieThreads() {
			t.Fatalf("same seed diverged on VM %s: served=%d/%d leaked=%v/%v",
				vm.ID(), vm.Served(), other.Served(), vm.LeakedMB(), other.LeakedMB())
		}
	}
}

// TestShardedRegionFacadeAggregates checks that the facade's merged views
// equal the whole-pool quantities.
func TestShardedRegionFacadeAggregates(t *testing.T) {
	const shards = 4
	r := NewRegion(shardedConfig(shards), simclock.NewRNG(11))

	// State views: the union of the per-shard views must equal the facade
	// view (same VMs, facade in provisioning order).
	fromShards := map[string]bool{}
	active := 0
	for s := 0; s < shards; s++ {
		for _, vm := range r.ActiveVMsInShard(s) {
			fromShards[vm.ID()] = true
			active++
		}
	}
	if active != len(r.ActiveVMs()) {
		t.Fatalf("per-shard actives = %d, facade actives = %d", active, len(r.ActiveVMs()))
	}
	for _, vm := range r.ActiveVMs() {
		if !fromShards[vm.ID()] {
			t.Fatalf("facade-active VM %s missing from every shard view", vm.ID())
		}
	}
	standby := 0
	for s := 0; s < shards; s++ {
		standby += len(r.StandbyVMsInShard(s))
	}
	if standby != len(r.StandbyVMs()) {
		t.Fatalf("per-shard standbys = %d, facade standbys = %d", standby, len(r.StandbyVMs()))
	}

	// Capacity: the merged per-shard sums must equal the flat whole-pool sum.
	flat := 0.0
	for _, vm := range r.ActiveVMs() {
		flat += float64(vm.Type().VCPUs) / (vm.Type().BaseServiceMs / 1000 * vm.DegradationFactor())
	}
	if got := r.ComputeCapacity(); math.Abs(got-flat) > 1e-9*flat {
		t.Fatalf("ComputeCapacity = %v, flat sum = %v", got, flat)
	}

	// RMTTF: fresh identical VMs have identical TrueRTTF, so the merged mean
	// must equal any single VM's value (up to the floating-point association
	// of the per-shard partial sums).
	rate := 20.0
	want := r.ActiveVMs()[0].TrueRTTF(rate / float64(len(r.ActiveVMs())))
	if got := r.TrueRMTTF(rate); math.Abs(got-want) > 1e-12*want {
		t.Fatalf("TrueRMTTF = %v, want %v", got, want)
	}

	// Stats: merged region aggregate vs per-shard snapshots.
	merged := r.Stats()
	perShard := r.ShardStats()
	if len(perShard) != shards {
		t.Fatalf("ShardStats returned %d entries, want %d", len(perShard), shards)
	}
	vms, act, stb := 0, 0, 0
	for s, ss := range perShard {
		if want := fmt.Sprintf("shardy/shard%d", s); ss.Region != want {
			t.Fatalf("shard stats label = %q, want %q", ss.Region, want)
		}
		vms += ss.VMs
		act += ss.Active
		stb += ss.Standby
	}
	if vms != merged.VMs || act != merged.Active || stb != merged.Standby {
		t.Fatalf("shard stats do not merge to the region aggregate: %+v vs %d/%d/%d", merged, vms, act, stb)
	}
}

// TestShardedProvisionRoundRobin checks that ADDVMS-provisioned VMs keep
// filling the shards evenly and respect the region cap.
func TestShardedProvisionRoundRobin(t *testing.T) {
	const shards = 4
	r := NewRegion(shardedConfig(shards), simclock.NewRNG(5))
	added := r.Provision(100)
	if len(r.VMs()) != 24 {
		t.Fatalf("pool after provisioning = %d, want the cap 24", len(r.VMs()))
	}
	if len(added) != 8 {
		t.Fatalf("provisioned %d VMs, want 8", len(added))
	}
	for s := 0; s < shards; s++ {
		if got := len(r.ShardVMs(s)); got != 24/shards {
			t.Fatalf("shard %d owns %d VMs after provisioning, want %d", s, got, 24/shards)
		}
	}
	// O(1) lookup still covers the new VMs.
	for _, vm := range added {
		if r.VM(vm.ID()) != vm {
			t.Fatalf("lookup of provisioned VM %s failed", vm.ID())
		}
	}
}

func TestConfigIsZeroMethods(t *testing.T) {
	if !(AnomalyProfile{}).IsZero() || !(FailurePoint{}).IsZero() || !(RejuvenationModel{}).IsZero() {
		t.Fatalf("zero values should report IsZero")
	}
	if DefaultAnomalyProfile().IsZero() || DefaultFailurePoint().IsZero() || DefaultRejuvenationModel().IsZero() {
		t.Fatalf("defaults should not report IsZero")
	}
	// A single set field is enough to count as configured: withDefaults must
	// not clobber a deliberately sparse profile.
	partial := AnomalyProfile{LeakProbability: 0.2}
	if partial.IsZero() {
		t.Fatalf("partially set profile should not report IsZero")
	}
	cfg := RegionConfig{Name: "x", Type: M3Medium, InitialActive: 1, Anomalies: partial}.withDefaults()
	if cfg.Anomalies != partial {
		t.Fatalf("withDefaults clobbered an explicit anomaly profile: %+v", cfg.Anomalies)
	}
	if cfg.Failure.IsZero() || cfg.Rejuvenation.IsZero() {
		t.Fatalf("unset failure point / rejuvenation model should gain defaults")
	}
}
