package workload

import (
	"fmt"
	"math"

	"repro/internal/cloudsim"
	"repro/internal/simclock"
	"repro/internal/tracing"
)

// This file implements cohort-compressed client populations: N statistically
// identical closed-loop clients represented as counted state buckets instead
// of N browser state machines.  The think-state bucket holds a single integer
// — how many clients are currently thinking — and on every tick the number of
// clients whose exponential think time expires is drawn by a binomial split
// (the per-tick transition probability of the memoryless think time is
// p = 1 - exp(-tick/mean)).  The transitioning clients are then split across
// the TPC-W interaction classes by sequential conditional binomials (an exact
// multinomial draw over the mix weights) and submitted as batched requests
// through the ordinary Dispatcher path, so sharded regions, forward plans and
// the GSLB director all work unchanged.  Event volume and memory scale with
// the number of batches per tick, not with the client count, which is what
// makes 10^6+ effective clients per region affordable.
//
// Aggregate accounting (issued/completed/dropped, and therefore the measured
// arrival rate lambda) comes from the batch weights.  The response-time
// series cannot: a batch observes one queueing delay, not a latency sample
// per client.  A small individually simulated "tracer" sub-population —
// ordinary Browsers carved out of the cohort — feeds the per-request latency
// distribution, keeping response-time figures and RTTF features intact.
//
// Determinism: the cohort draws every split from its own RNG stream, derived
// from the config seed via simclock.DeriveSeed, and the tracers fork from a
// sibling stream.  All state transitions happen on the engine (or shard
// sub-engine) the cohort was started on; completions arriving from foreign
// shards are rehomed by the deployment's dispatcher exactly as browser
// completions are.  The whole trajectory is therefore a pure function of
// (CohortConfig, seed), byte-identical for any worker count.

// CohortConfig describes one cohort-compressed client population.
type CohortConfig struct {
	// Region is the region the clients connect to; it becomes the
	// EntryRegion of every batch and tracer request.
	Region string
	// Clients is the number of effective clients, tracers included.
	Clients int
	// Mix is the interaction mix (BrowsingMix when zero-valued).
	Mix Mix
	// ThinkTimeMean is the mean exponential think time (TPC-W default 7 s
	// when zero).
	ThinkTimeMean simclock.Duration
	// Tick is the state-split cadence (1 s when zero).  Shorter ticks track
	// the think-time distribution more finely at proportionally more events.
	Tick simclock.Duration
	// MaxBatch caps how many interactions one batched request stands for
	// (64 when zero).  Smaller batches spread load across more VMs at more
	// events per tick.
	MaxBatch int
	// TracerFraction is the fraction of Clients simulated individually to
	// feed the response-time series.  Zero means no tracers (aggregate
	// counters only); any positive fraction keeps at least one tracer.
	TracerFraction float64
	// Timeout is the per-interaction timeout passed to the tracer browsers.
	// Cohort batches never time out: a batch's outcome is whatever the VM
	// reports.
	Timeout simclock.Duration
	// RampUp spreads the tracer browser starts over this window.  The cohort
	// itself needs no ramp: the binomial split starts at the steady-state
	// transition rate on the first tick.
	RampUp simclock.Duration
	// IDPrefix prefixes the tracer browser identifiers ("<region>-tracer"
	// when empty).  Deployments that split one region's cohort across engine
	// shards use it to keep tracer IDs unique per shard.
	IDPrefix string
	// Seed is the base seed of the cohort's derived RNG streams (split
	// stream and tracer stream).
	Seed uint64
	// Tracer, when non-nil, samples batches and tracer-browser requests into
	// the span layer.  Batches use the "<IDPrefix>-batch" stream identity
	// (unique per shard slice), tracer browsers their own browser IDs.
	Tracer *tracing.Tracer
}

// withDefaults fills zero fields.
func (c CohortConfig) withDefaults() CohortConfig {
	if c.Clients < 0 {
		c.Clients = 0
	}
	if c.Mix.Name == "" {
		c.Mix = BrowsingMix()
	}
	if c.ThinkTimeMean <= 0 {
		c.ThinkTimeMean = 7 * simclock.Second
	}
	if c.Tick <= 0 {
		c.Tick = 1 * simclock.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.TracerFraction < 0 {
		c.TracerFraction = 0
	}
	if c.TracerFraction > 1 {
		c.TracerFraction = 1
	}
	if c.IDPrefix == "" {
		c.IDPrefix = c.Region + "-tracer"
	}
	return c
}

// CohortPopulation is a cohort-compressed closed-loop client population plus
// its tracer sub-population.
type CohortPopulation struct {
	cfg     CohortConfig
	rng     *simclock.RNG // transition + class-split stream
	target  Dispatcher
	metrics *Metrics

	tracers *Population
	cohort  int // cohort-modelled clients (Clients minus tracers)

	classes []Interaction // positive-weight interactions of the mix
	weights []float64     // their weights
	counts  []int         // scratch: per-class transition counts

	running  bool
	thinking int // cohort clients currently in the think bucket
	nextID   uint64
}

// NewCohortPopulation builds a cohort population.  All clients share the
// provided metrics sink; the tracer browsers are constructed immediately so
// the split between cohort and tracers is fixed at build time.
func NewCohortPopulation(cfg CohortConfig, target Dispatcher, metrics *Metrics) *CohortPopulation {
	cfg = cfg.withDefaults()
	if metrics == nil {
		metrics = NewMetrics()
	}
	tracerCount := int(math.Round(float64(cfg.Clients) * cfg.TracerFraction))
	if cfg.TracerFraction > 0 && tracerCount == 0 && cfg.Clients > 0 {
		tracerCount = 1
	}
	if tracerCount > cfg.Clients {
		tracerCount = cfg.Clients
	}
	c := &CohortPopulation{
		cfg:     cfg,
		rng:     simclock.NewStreamRNG(cfg.Seed, 0),
		target:  target,
		metrics: metrics,
		cohort:  cfg.Clients - tracerCount,
	}
	for _, it := range cfg.Mix.Entries {
		if it.Weight > 0 {
			c.classes = append(c.classes, it)
			c.weights = append(c.weights, it.Weight)
		}
	}
	c.counts = make([]int, len(c.classes))
	if tracerCount > 0 {
		c.tracers = NewPopulation(PopulationConfig{
			Region:        cfg.Region,
			Clients:       tracerCount,
			Mix:           cfg.Mix,
			ThinkTimeMean: cfg.ThinkTimeMean,
			Timeout:       cfg.Timeout,
			RampUp:        cfg.RampUp,
			IDPrefix:      cfg.IDPrefix,
			Tracer:        cfg.Tracer,
		}, simclock.NewStreamRNG(cfg.Seed, 1), target, metrics)
	}
	return c
}

// Region returns the region the population connects to.
func (c *CohortPopulation) Region() string { return c.cfg.Region }

// EffectiveClients returns the total number of clients represented, tracers
// included.
func (c *CohortPopulation) EffectiveClients() int { return c.cfg.Clients }

// CohortClients returns the number of clients modelled by counted buckets.
func (c *CohortPopulation) CohortClients() int { return c.cohort }

// TracerCount returns the number of individually simulated tracer browsers.
func (c *CohortPopulation) TracerCount() int {
	if c.tracers == nil {
		return 0
	}
	return c.tracers.Size()
}

// Tracers returns the tracer sub-population (nil when TracerFraction is 0).
func (c *CohortPopulation) Tracers() *Population { return c.tracers }

// Thinking returns how many cohort clients currently sit in the think bucket.
func (c *CohortPopulation) Thinking() int { return c.thinking }

// InFlight returns how many cohort clients are waiting on a batch in flight.
func (c *CohortPopulation) InFlight() int { return c.cohort - c.thinking }

// ExpectedRate returns the steady-state request rate (interactions per
// second) the population generates when response times are small against the
// think time: clients / thinkTime.
func (c *CohortPopulation) ExpectedRate() float64 {
	return float64(c.cfg.Clients) / c.cfg.ThinkTimeMean.Seconds()
}

// Start begins the cohort tick loop and launches the tracer browsers.  The
// first tick fires after a deterministic random fraction of the tick period
// so cohorts sharing an engine do not split in lockstep.
func (c *CohortPopulation) Start(eng *simclock.Engine) {
	if c.running {
		return
	}
	c.running = true
	c.thinking = c.cohort
	if c.tracers != nil {
		c.tracers.Start(eng)
	}
	if c.cohort > 0 {
		first := simclock.Duration(c.rng.Uniform(0, c.cfg.Tick.Seconds()))
		eng.ScheduleFunc(first, c.tick)
	}
}

// Stop halts the tick loop and the tracer browsers.  Batches in flight still
// complete and return their clients to the think bucket.
func (c *CohortPopulation) Stop() {
	c.running = false
	if c.tracers != nil {
		c.tracers.Stop()
	}
}

// Running reports whether the tick loop is active.
func (c *CohortPopulation) Running() bool { return c.running }

// tick performs one state split: draw how many thinking clients transition,
// split them across interaction classes, and submit the batches.
func (c *CohortPopulation) tick(eng *simclock.Engine) {
	if !c.running {
		return
	}
	p := 1 - math.Exp(-c.cfg.Tick.Seconds()/c.cfg.ThinkTimeMean.Seconds())
	if k := c.rng.Binomial(c.thinking, p); k > 0 {
		c.split(k)
		for i := range c.classes {
			c.emit(eng, i, c.counts[i])
		}
	}
	eng.ScheduleFunc(c.cfg.Tick, c.tick)
}

// split draws an exact multinomial partition of k transitioning clients over
// the mix weights using sequential conditional binomials: class i receives
// Binomial(remaining, w_i / wRemaining), and the last class takes whatever is
// left, so the counts always sum to k.
func (c *CohortPopulation) split(k int) {
	remaining := k
	wRem := 0.0
	for _, w := range c.weights {
		wRem += w
	}
	for i, w := range c.weights {
		if i == len(c.weights)-1 {
			c.counts[i] = remaining
			break
		}
		n := 0
		if remaining > 0 {
			n = c.rng.Binomial(remaining, w/wRem)
		}
		c.counts[i] = n
		remaining -= n
		wRem -= w
	}
}

// emit submits count interactions of one class as batches of at most
// MaxBatch.  Each batch moves its clients out of the think bucket until the
// batch completes (served or dropped — the closed loop must not leak clients
// either way).
func (c *CohortPopulation) emit(eng *simclock.Engine, class, count int) {
	it := c.classes[class]
	for count > 0 {
		b := count
		if b > c.cfg.MaxBatch {
			b = c.cfg.MaxBatch
		}
		count -= b
		c.thinking -= b
		c.nextID++
		n := uint64(b)
		req := &cloudsim.Request{
			ID:            c.nextID,
			Class:         it.Name,
			ServiceFactor: it.ServiceFactor,
			EntryRegion:   c.cfg.Region,
			Arrival:       eng.Now(),
			Batch:         b,
			Trace:         c.cfg.Tracer.Start(c.cfg.IDPrefix+"-batch", c.nextID, n, eng.Now()),
		}
		req.OnDone = func(o cloudsim.Outcome) {
			sealTrace(req.Trace, o)
			c.metrics.recordBatch(c.cfg.Region, o, n)
			c.thinking += int(n)
		}
		c.metrics.issuedN(c.cfg.Region, n)
		c.target.Submit(eng, req)
	}
}

// String summarises the population for debugging.
func (c *CohortPopulation) String() string {
	return fmt.Sprintf("cohort[%s clients=%d tracers=%d thinking=%d inflight=%d]",
		c.cfg.Region, c.cfg.Clients, c.TracerCount(), c.thinking, c.InFlight())
}
