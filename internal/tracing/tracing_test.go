package tracing

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/simclock"
)

func TestSamplingIsPureAndProportional(t *testing.T) {
	tr := NewTracer(99, 0.1)
	const n = 200000
	sampled := 0
	for id := uint64(0); id < n; id++ {
		a := tr.Sampled("stream-a", id)
		if b := tr.Sampled("stream-a", id); b != a {
			t.Fatalf("sampling decision for id %d not stable: %v then %v", id, a, b)
		}
		if a {
			sampled++
		}
	}
	got := float64(sampled) / n
	if math.Abs(got-0.1) > 0.01 {
		t.Fatalf("sampled fraction %.4f, want ~0.10", got)
	}
	// A fresh tracer with the same seed makes identical decisions — the
	// sample set is a function of (seed, stream, id), not tracer state.
	tr2 := NewTracer(99, 0.1)
	for id := uint64(0); id < 1000; id++ {
		if tr.Sampled("stream-a", id) != tr2.Sampled("stream-a", id) {
			t.Fatalf("tracer identity leaked into the sampling decision at id %d", id)
		}
	}
	// Different streams sample different sets (with overwhelming probability
	// over 1000 ids at 10%).
	same := true
	for id := uint64(0); id < 1000; id++ {
		if tr.Sampled("stream-a", id) != tr.Sampled("stream-b", id) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("stream name does not reach the sampling decision")
	}
}

func TestSamplingClamps(t *testing.T) {
	off := NewTracer(1, 0)
	all := NewTracer(1, 1)
	for id := uint64(0); id < 100; id++ {
		if off.Sampled("s", id) {
			t.Fatal("fraction 0 sampled a request")
		}
		if !all.Sampled("s", id) {
			t.Fatal("fraction 1 skipped a request")
		}
	}
	var nilTracer *Tracer
	if nilTracer.Sampled("s", 1) {
		t.Fatal("nil tracer sampled a request")
	}
	if nilTracer.Len() != 0 || nilTracer.Traces() != nil {
		t.Fatal("nil tracer reports collected traces")
	}
}

func TestNilTraceMethodsAreSafe(t *testing.T) {
	var rt *RequestTrace
	rt.Event(EventVMEnqueue, 1, "")
	rt.Span(SpanForward, 1, 2, "")
	rt.Seal(OutcomeOK, 1, 2, "vm", "region")
}

func TestSealExactlyOnce(t *testing.T) {
	tr := NewTracer(7, 1)
	rt := tr.Start("s", 42, 3, 10)
	if rt == nil {
		t.Fatal("fraction 1 returned nil trace")
	}
	if rt.Weight != 3 {
		t.Fatalf("weight %d, want 3", rt.Weight)
	}
	rt.Event(EventVMEnqueue, 11, "vm=vm-1")
	rt.Seal(OutcomeOK, 12, 14, "vm-1", "region1")
	// A late completion (e.g. served after a client-side timeout sealed the
	// trace) must not re-seal or re-collect.
	rt.Seal(OutcomeTimeout, 0, 99, "vm-2", "region2")
	rt.Event(EventRehome, 15, "")
	if tr.Len() != 1 {
		t.Fatalf("collected %d traces, want 1", tr.Len())
	}
	got := tr.Traces()[0]
	if got.Outcome != OutcomeOK || got.VM != "vm-1" || len(got.Events) != 1 {
		t.Fatalf("second Seal or post-seal Event mutated the trace: %+v", got)
	}
	if got.QueueWait() != 1 {
		t.Fatalf("QueueWait = %v, want 1s", got.QueueWait())
	}
	if got.ServiceTime() != 2 {
		t.Fatalf("ServiceTime = %v, want 2s", got.ServiceTime())
	}
	if got.ResponseTime() != 4 {
		t.Fatalf("ResponseTime = %v, want 4s", got.ResponseTime())
	}
}

func TestTracesCanonicalOrder(t *testing.T) {
	tr := NewTracer(3, 1)
	// Seal in an arbitrary wall-clock order; Traces must sort by ID.
	for _, id := range []uint64{5, 1, 9, 3, 7} {
		rt := tr.Start("s", id, 1, 0)
		rt.Seal(OutcomeOK, 1, 2, "vm", "r")
	}
	traces := tr.Traces()
	for i := 1; i < len(traces); i++ {
		if traces[i-1].TraceID > traces[i].TraceID {
			t.Fatalf("traces not in canonical ID order at %d", i)
		}
	}
}

func TestChromeExport(t *testing.T) {
	tr := NewTracer(11, 1)
	rt := tr.Start("browser-1", 1, 1, 0)
	rt.Event(EventGSLBRoute, 0, "region=region1 lane=0")
	rt.Span(SpanRTTSend, 0, simclock.Duration(0.04), "rtt=80ms")
	rt.Event(EventVMEnqueue, simclock.Time(0.04), "vm=vm-1")
	rt.Seal(OutcomeOK, simclock.Time(0.05), simclock.Time(0.15), "vm-1", "region1")

	fr := simclock.NewFlightRecorder(2)
	fr.RecordPhase(0.1, "probe", 3)

	out, err := ChromeJSON(tr.Traces(), fr)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	byName := map[string]int{}
	var rootArgs map[string]any
	var rootDur, queueTs, queueDur float64
	for _, ev := range parsed.TraceEvents {
		byName[ev.Name]++
		switch ev.Name {
		case SpanRequest:
			rootArgs, rootDur = ev.Args, ev.Dur
		case SpanQueue:
			queueTs, queueDur = ev.Ts, ev.Dur
		}
	}
	for _, want := range []string{SpanRequest, EventGSLBRoute, SpanRTTSend, SpanQueue, SpanService, "probe", "thread_name", "process_name"} {
		if byName[want] == 0 {
			t.Errorf("export missing %q event", want)
		}
	}
	if rootArgs["trace_id"] != tr.Traces()[0].IDString() {
		t.Fatalf("root span trace_id = %v, want %s", rootArgs["trace_id"], tr.Traces()[0].IDString())
	}
	// 0.15 s response in microseconds.
	if math.Abs(rootDur-150000) > 1e-6 {
		t.Fatalf("root span dur = %v µs, want 150000", rootDur)
	}
	// Queue wait synthesised from vm.enqueue (0.04 s) to service start (0.05 s).
	if math.Abs(queueTs-40000) > 1e-6 || math.Abs(queueDur-10000) > 1e-6 {
		t.Fatalf("queue span (ts=%v, dur=%v) µs, want (40000, 10000)", queueTs, queueDur)
	}
}

func TestChromeExportUnsealedTrace(t *testing.T) {
	tr := NewTracer(11, 1)
	rt := tr.Start("s", 1, 1, 0)
	rt.Span(SpanForward, 0, simclock.Duration(0.01), "")
	// Never sealed — the exporter must still render it (outcome "unsealed")
	// without panicking, spanning to its last event.
	out, err := ChromeJSON([]*RequestTrace{rt}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"outcome":"unsealed"`) {
		t.Fatal("unsealed trace not marked in export")
	}
}

func TestBreakdown(t *testing.T) {
	tr := NewTracer(5, 1)
	for id := uint64(0); id < 10; id++ {
		rt := tr.Start("s", id, 1, 0)
		rt.Span(SpanRTTSend, 0, simclock.Duration(0.05), "")
		rt.Event(EventVMEnqueue, simclock.Time(0.05), "")
		rt.Seal(OutcomeOK, simclock.Time(0.07), simclock.Time(0.17), "vm", "r")
	}
	stats := Breakdown(tr.Traces())
	byName := map[string]PhaseStats{}
	for _, ps := range stats {
		byName[ps.Name] = ps
	}
	req := byName[SpanRequest]
	if req.Count != 10 || math.Abs(req.Mean-0.17) > 1e-9 {
		t.Fatalf("request stats = %+v, want count 10 mean 0.17", req)
	}
	if req.Share != 1 {
		t.Fatalf("root share = %v, want 1", req.Share)
	}
	svc := byName[SpanService]
	if svc.Count != 10 || math.Abs(svc.Mean-0.10) > 1e-9 {
		t.Fatalf("service stats = %+v, want count 10 mean 0.10", svc)
	}
	q := byName[SpanQueue]
	if q.Count != 10 || math.Abs(q.Mean-0.02) > 1e-9 {
		t.Fatalf("queue stats = %+v, want count 10 mean 0.02", q)
	}
	// Catalogue order: request before rtt.send before queue before service.
	idx := map[string]int{}
	for i, ps := range stats {
		idx[ps.Name] = i
	}
	if !(idx[SpanRequest] < idx[SpanRTTSend] && idx[SpanRTTSend] < idx[SpanQueue] && idx[SpanQueue] < idx[SpanService]) {
		t.Fatalf("breakdown rows out of catalogue order: %v", stats)
	}
	table := BreakdownTable(tr.Traces())
	if !strings.Contains(table, "phase") || !strings.Contains(table, SpanService) {
		t.Fatalf("table missing header or rows:\n%s", table)
	}
	if got := BreakdownTable(nil); !strings.Contains(got, "no sealed traces") {
		t.Fatalf("empty table = %q", got)
	}
}

func TestCatalogCoversAllNames(t *testing.T) {
	names := map[string]bool{}
	for _, d := range Catalog() {
		if d.Name == "" || d.Help == "" || d.Source == "" {
			t.Fatalf("incomplete catalogue row: %+v", d)
		}
		if names[d.Name] {
			t.Fatalf("duplicate catalogue row %q", d.Name)
		}
		names[d.Name] = true
	}
	for _, want := range []string{SpanRequest, EventGSLBRoute, SpanRTTSend, SpanRTTReturn,
		SpanForward, EventMailbox, EventShardHop, EventVMEnqueue, EventRehome, SpanQueue, SpanService} {
		if !names[want] {
			t.Fatalf("catalogue missing %q", want)
		}
	}
}
