package simclock

import "testing"

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(42, 0)
	b := DeriveSeed(42, 0)
	if a != b {
		t.Fatalf("DeriveSeed is not a pure function: %d vs %d", a, b)
	}
	if DeriveSeed(42, 1) == a {
		t.Fatalf("distinct indices should yield distinct seeds")
	}
	if DeriveSeed(43, 0) == a {
		t.Fatalf("distinct bases should yield distinct seeds")
	}
	if DeriveSeed(42) == DeriveSeed(42, 0) {
		t.Fatalf("adding an index must change the derived seed")
	}
	if DeriveSeed(1, 2, 3) == DeriveSeed(1, 3, 2) {
		t.Fatalf("index order must matter")
	}
}

func TestDeriveSeedStreamsAreIndependent(t *testing.T) {
	// Sibling streams derived from neighbouring indices must not produce
	// correlated output; a crude check is that their first outputs differ and
	// no short prefix collides.
	const n = 64
	seen := map[uint64]int{}
	for i := uint64(0); i < n; i++ {
		r := NewStreamRNG(7, i)
		v := r.Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("streams %d and %d start with the same output", prev, i)
		}
		seen[v] = int(i)
	}
}

func TestNewStreamRNGMatchesDeriveSeed(t *testing.T) {
	a := NewStreamRNG(99, 3, 1)
	b := NewRNG(DeriveSeed(99, 3, 1))
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("NewStreamRNG must equal NewRNG(DeriveSeed(...)) at step %d", i)
		}
	}
}
