// Package repro is the module root of the ACM Framework reproduction: a
// deterministic discrete-event simulation of the paper's Autonomic Cloud
// Manager.  The root package itself holds only the whole-system benchmark
// suites (sharded regions, the global traffic director, cohort-compressed
// populations); the simulation lives under internal/ — see
// docs/ARCHITECTURE.md for the layer map — and the CLIs under cmd/.
package repro
