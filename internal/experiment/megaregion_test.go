package experiment

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/simclock"
)

func TestMegaregionScenarioShapes(t *testing.T) {
	mega, err := BuildScenario("megaregion", 42)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := BuildScenario("megaregion-sharded", 42)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := BuildScenario("megaregion-parallel", 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []Scenario{mega, sharded, parallel} {
		if len(sc.Regions) != 1 {
			t.Fatalf("%s should deploy one region, got %d", sc.Name, len(sc.Regions))
		}
		pool := sc.Regions[0].Region.InitialActive + sc.Regions[0].Region.InitialStandby
		if pool < 5000 {
			t.Fatalf("%s pool = %d VMs, want >= 5x10^3", sc.Name, pool)
		}
	}
	if mega.Regions[0].Region.Shards > 1 {
		t.Fatalf("megaregion is the single-shard baseline, got Shards=%d", mega.Regions[0].Region.Shards)
	}
	if sharded.Regions[0].Region.Shards != MegaregionShards {
		t.Fatalf("megaregion-sharded Shards = %d, want %d", sharded.Regions[0].Region.Shards, MegaregionShards)
	}
	if parallel.Regions[0].Region.Shards != MegaregionShards {
		t.Fatalf("megaregion-parallel Shards = %d, want %d", parallel.Regions[0].Region.Shards, MegaregionShards)
	}
	if parallel.VMC.TickWorkers <= 1 {
		t.Fatalf("megaregion-parallel TickWorkers = %d, want > 1", parallel.VMC.TickWorkers)
	}
	// Apart from the shard split the two scenarios must describe the same
	// deployment, so their results are comparable.
	m, s := mega.Regions[0], sharded.Regions[0]
	s.Region.Shards = m.Region.Shards
	if !reflect.DeepEqual(m.Region, s.Region) || m.Clients != s.Clients {
		t.Fatalf("megaregion variants diverge beyond the shard count:\n%+v\n%+v", m, s)
	}
	// And megaregion-parallel must be megaregion-sharded plus the tick
	// fan-out, nothing else — that is what makes the byte-equivalence test
	// between the two meaningful.
	p := parallel.Regions[0]
	if !reflect.DeepEqual(sharded.Regions[0], p) {
		t.Fatalf("megaregion-parallel region diverges from megaregion-sharded:\n%+v\n%+v", sharded.Regions[0], p)
	}
	pv := parallel.VMC
	pv.TickWorkers = sharded.VMC.TickWorkers
	if !reflect.DeepEqual(sharded.VMC, pv) {
		t.Fatalf("megaregion-parallel VMC diverges beyond TickWorkers:\n%+v\n%+v", sharded.VMC, pv)
	}
}

// TestMegaregionDeterministicAcrossWorkerCounts is the scaled-up version of
// the runner's core guarantee: a 5x10^3-VM region — in both the single-shard
// and the 16-shard configuration — produces byte-identical results for 1, 4
// and GOMAXPROCS workers.  The horizon is shortened so the test stays
// affordable under -race; determinism does not depend on it.
func TestMegaregionDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 5x10^3-VM scenario three times")
	}
	jobs, err := Matrix{
		Scenarios: []string{"megaregion", "megaregion-sharded", "megaregion-parallel"},
		Policies:  []string{"policy2"},
		BaseSeed:  42,
		Horizon:   4 * simclock.Minute,
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}

	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	var want []byte
	for _, workers := range workerCounts {
		results, err := RunParallel(context.Background(), jobs, Options{Workers: workers})
		if err != nil {
			t.Fatalf("RunParallel(workers=%d): %v", workers, err)
		}
		for _, jr := range results {
			if jr.Err != nil {
				t.Fatalf("workers=%d: %s failed: %v", workers, jr.Job.Scenario.Name, jr.Err)
			}
			if jr.Result.Eras == 0 || jr.Result.SuccessRatio <= 0 {
				t.Fatalf("workers=%d: degenerate %s run: %+v", workers, jr.Job.Scenario.Name, jr.Result)
			}
		}
		got := sweepFingerprint(t, results)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("workers=%d produced different bytes than workers=%d", workers, workerCounts[0])
		}
	}
}
