package simclock

import (
	"math"
	"strings"
	"testing"
)

func TestFlightRecorderAccounting(t *testing.T) {
	fr := NewFlightRecorder(2)

	// Epoch [0, 0.1): shard 0 fires 5 events, last at 0.06; shard 1 idle;
	// control drains 2 posts at the barrier.
	fr.recordEpoch(0, 0, 0.1, 0.06, 5, 0)
	fr.recordEpoch(1, 0, 0.1, 0, 0, 0)
	fr.recordEpoch(2, 0, 0.1, 0, 0, 2)
	fr.epochDone()
	// Epoch [0.1, 0.2): shard 0 idle, shard 1 fires 1 event at 0.2 (epoch
	// end), control idle.
	fr.recordEpoch(0, 0.1, 0.2, 0, 0, 0)
	fr.recordEpoch(1, 0.1, 0.2, 0.2, 1, 0)
	fr.recordEpoch(2, 0.1, 0.2, 0, 0, 0)
	fr.epochDone()

	if fr.EpochCount() != 2 {
		t.Fatalf("EpochCount = %d, want 2", fr.EpochCount())
	}
	// Only work-bearing slices keep detailed records: shard0 e0, control e0,
	// shard1 e1.
	if len(fr.Epochs()) != 3 {
		t.Fatalf("detailed records = %d, want 3", len(fr.Epochs()))
	}

	util := fr.Utilization()
	if len(util) != 3 {
		t.Fatalf("lanes = %d, want 3", len(util))
	}
	s0 := util[0]
	if s0.Fired != 5 || s0.BusyEpochs != 1 || s0.Epochs != 2 {
		t.Fatalf("shard0 aggregate = %+v", s0)
	}
	if math.Abs(s0.Busy.Seconds()-0.06) > 1e-12 || math.Abs(s0.Idle.Seconds()-0.14) > 1e-12 {
		t.Fatalf("shard0 busy/idle = %v/%v, want 0.06/0.14", s0.Busy, s0.Idle)
	}
	if math.Abs(s0.Utilization()-0.3) > 1e-9 {
		t.Fatalf("shard0 utilization = %v, want 0.3", s0.Utilization())
	}
	s1 := util[1]
	if s1.Fired != 1 || math.Abs(s1.Busy.Seconds()-0.1) > 1e-12 {
		t.Fatalf("shard1 aggregate = %+v", s1)
	}
	ctrl := util[2]
	if ctrl.Drained != 2 || ctrl.Fired != 0 {
		t.Fatalf("control aggregate = %+v", ctrl)
	}

	table := fr.Table()
	if !strings.Contains(table, "shard0") || !strings.Contains(table, "control") {
		t.Fatalf("table missing lane rows:\n%s", table)
	}
}

func TestFlightRecorderPhases(t *testing.T) {
	fr := NewFlightRecorder(1)
	fr.RecordPhase(0.5, "vmc.tick", 7)
	fr.RecordPhase(1.0, "probe", 3)
	ph := fr.Phases()
	if len(ph) != 2 || ph[0].Name != "vmc.tick" || ph[1].Items != 3 {
		t.Fatalf("phases = %+v", ph)
	}
	// A nil recorder swallows phase records — instrumentation points write
	// unconditionally.
	var nilFr *FlightRecorder
	nilFr.RecordPhase(0, "x", 1)
}

// TestShardedEngineFlightRecorder drives a real ShardedEngine and checks the
// barrier-side wiring: epochs counted, fired events attributed to the right
// lane, mailbox drains on the control lane.
func TestShardedEngineFlightRecorder(t *testing.T) {
	se := NewShardedEngine(2, 1, DefaultEpoch, 1)
	fr := NewFlightRecorder(2)
	se.SetFlightRecorder(fr)

	fired := make([]int, 3)
	se.Shard(0).ScheduleAt(0.05, EventFunc(func(e *Engine) { fired[0]++ }))
	se.Shard(1).ScheduleAt(0.25, EventFunc(func(e *Engine) {
		fired[1]++
		// Cross-lane post: drained at the next barrier, runs on lane 0.
		se.Post(e, 0, func(e2 *Engine) { fired[0]++ })
	}))
	se.Control().ScheduleAt(0.15, EventFunc(func(e *Engine) { fired[2]++ }))

	if err := se.Run(1); err != nil {
		t.Fatal(err)
	}
	if fired[0] != 2 || fired[1] != 1 || fired[2] != 1 {
		t.Fatalf("fired = %v", fired)
	}
	if fr.EpochCount() == 0 {
		t.Fatal("no epochs recorded")
	}
	util := fr.Utilization()
	if len(util) != 3 {
		t.Fatalf("lanes = %d, want 3", len(util))
	}
	// The cross-lane post is delivered at the barrier drain, so each lane's
	// own queue fired exactly one scheduled event.
	if util[0].Fired != 1 || util[1].Fired != 1 {
		t.Fatalf("per-shard fired = %d/%d, want 1/1", util[0].Fired, util[1].Fired)
	}
	if util[2].Fired != 1 {
		t.Fatalf("control fired = %d, want 1", util[2].Fired)
	}
	if util[2].Drained == 0 {
		t.Fatal("mailbox drain not recorded on the control lane")
	}
}
