// Package cloudsim simulates the heterogeneous multi-cloud testbed used by
// the paper's evaluation: virtual machines of different instance types hosted
// in geographically distinct cloud regions, running a server replica that
// accumulates software anomalies (memory leaks and unterminated threads) as it
// processes client requests, degrades, eventually violates its failure point,
// and is proactively rejuvenated by the PCAM layer.
//
// The paper evaluates on Amazon EC2 m3.medium instances in Ireland, m3.small
// instances in Frankfurt, and privately hosted VMware VMs in Munich.  We do
// not have that testbed, so this package provides the closest synthetic
// equivalent: a discrete-event model of VMs whose service capacity, memory
// budget and anomaly behaviour reproduce the heterogeneity that the
// load-balancing policies have to cope with.
package cloudsim

import (
	"fmt"

	"repro/internal/simclock"
)

// InstanceType describes the hardware envelope of a virtual machine class.
// The capacity fields feed the service-time model; the memory and thread
// budgets bound how many anomalies a VM can absorb before hitting its failure
// point.
type InstanceType struct {
	// Name is the provider-facing type name, e.g. "m3.medium".
	Name string
	// VCPUs is the number of virtual CPU cores.
	VCPUs int
	// ClockGHz is the nominal per-core clock, used as a relative speed factor.
	ClockGHz float64
	// MemoryMB is the physical memory available to the guest.
	MemoryMB float64
	// DiskGB is the virtual disk size.
	DiskGB float64
	// BaseServiceMs is the mean service demand of one TPC-W request on a
	// single core of this instance when the VM is anomaly-free.
	BaseServiceMs float64
	// MaxThreads is the thread budget of the server process; unterminated
	// threads count against it.
	MaxThreads int
	// CostPerHour is the on-demand price in USD (0 for privately hosted VMs).
	// It is not used by the policies but reported by the cost accounting
	// helpers, mirroring the paper's motivation that heterogeneous regions may
	// be chosen for cost reasons.
	CostPerHour float64
}

// The instance types used in the paper's testbed (Section VI-A).  The numbers
// are the published EC2 specifications of the era; BaseServiceMs is calibrated
// so that an m3.medium serves a TPC-W interaction in roughly 40 ms when
// healthy, with the other types scaled by core count and clock.
var (
	// M3Medium is the Amazon EC2 m3.medium instance: 1 vCPU, 3.75 GB RAM.
	// Region 1 (Ireland) hosts six of them.
	M3Medium = InstanceType{
		Name:          "m3.medium",
		VCPUs:         1,
		ClockGHz:      2.5,
		MemoryMB:      3750,
		DiskGB:        4,
		BaseServiceMs: 40,
		MaxThreads:    2048,
		CostPerHour:   0.073,
	}

	// M3Small is the smaller Amazon EC2 instance used in Region 2
	// (Frankfurt): 1 vCPU, 1.7 GB RAM, slower clock.  The paper names it
	// "m3.small"; the published specification matches the small tier of the
	// m1/m3 families of the time.
	M3Small = InstanceType{
		Name:          "m3.small",
		VCPUs:         1,
		ClockGHz:      2.0,
		MemoryMB:      1700,
		DiskGB:        4,
		BaseServiceMs: 55,
		MaxThreads:    1024,
		CostPerHour:   0.047,
	}

	// PrivateVM is the privately hosted VMware VM used in Region 3 (Munich):
	// 2 virtual CPU cores, 1 GB RAM, 4 GB disk, hosted on a 32-core HP
	// ProLiant server running VMware Workstation (a desktop hypervisor, hence
	// the noticeably higher per-request service demand compared to EC2).
	PrivateVM = InstanceType{
		Name:          "private-2c-1g",
		VCPUs:         2,
		ClockGHz:      2.0,
		MemoryMB:      1024,
		DiskGB:        4,
		BaseServiceMs: 70,
		MaxThreads:    768,
		CostPerHour:   0,
	}
)

// RelativeSpeed returns the instance's aggregate compute power relative to a
// single 2.5 GHz core, the unit the service-time model is calibrated against.
func (it InstanceType) RelativeSpeed() float64 {
	return float64(it.VCPUs) * it.ClockGHz / 2.5
}

// String returns a compact description of the instance type.
func (it InstanceType) String() string {
	return fmt.Sprintf("%s(%dvCPU,%.1fGHz,%.0fMB)", it.Name, it.VCPUs, it.ClockGHz, it.MemoryMB)
}

// AnomalyProfile controls how software anomalies are injected while serving
// requests, mirroring the paper's modified TPC-W implementation: "10% of
// requests generate a memory leak, 5% of requests generate an unterminated
// thread".
type AnomalyProfile struct {
	// LeakProbability is the per-request probability of leaking memory.
	LeakProbability float64
	// LeakSizeMB is the mean size of one leak; the actual size is drawn from
	// an exponential distribution with this mean.
	LeakSizeMB float64
	// ThreadProbability is the per-request probability of leaving an
	// unterminated thread behind.
	ThreadProbability float64
	// ThreadStackMB is the memory pinned by each unterminated thread.
	ThreadStackMB float64
}

// IsZero reports whether the profile is entirely unset, in which case
// RegionConfig.withDefaults substitutes the paper's defaults.  It compares
// field by field instead of using == so the struct stays free to grow
// non-comparable fields (e.g. a per-class probability slice) later.
func (a AnomalyProfile) IsZero() bool {
	return a.LeakProbability == 0 && a.LeakSizeMB == 0 &&
		a.ThreadProbability == 0 && a.ThreadStackMB == 0
}

// DefaultAnomalyProfile reproduces the injection probabilities from Section
// VI-A of the paper.
func DefaultAnomalyProfile() AnomalyProfile {
	return AnomalyProfile{
		LeakProbability:   0.10,
		LeakSizeMB:        1.5,
		ThreadProbability: 0.05,
		ThreadStackMB:     0.5,
	}
}

// FailurePoint defines when a VM is considered failed.  Following F2PM, the
// failure point is user-defined and "not necessarily related to an actual
// crash": it can be an SLA violation such as the response time exceeding a
// threshold.
type FailurePoint struct {
	// MemoryFraction is the fraction of the instance memory that, once
	// consumed by leaks and zombie-thread stacks, marks the VM as failed
	// (out-of-memory crash of the server process).
	MemoryFraction float64
	// ThreadFraction is the fraction of the thread budget that, once consumed
	// by unterminated threads, marks the VM as failed.
	ThreadFraction float64
	// ResponseTimeSLAMs is the response-time SLA in milliseconds; sustained
	// violation (tracked by the VM as an EWMA of observed response times)
	// also marks the VM as failed.  Zero disables the SLA clause.
	ResponseTimeSLAMs float64
}

// IsZero reports whether the failure point is entirely unset (see
// AnomalyProfile.IsZero for why this is a method rather than a == check).
func (f FailurePoint) IsZero() bool {
	return f.MemoryFraction == 0 && f.ThreadFraction == 0 && f.ResponseTimeSLAMs == 0
}

// DefaultFailurePoint matches the evaluation setup: the server process can
// absorb leaks up to 70% of the instance memory (the rest is needed by the OS,
// MySQL buffer pool and the servlet container), 80% of the thread budget, and
// the paper's 1-second response-time SLA.
func DefaultFailurePoint() FailurePoint {
	return FailurePoint{
		MemoryFraction:    0.70,
		ThreadFraction:    0.80,
		ResponseTimeSLAMs: 1000,
	}
}

// RejuvenationModel describes how long the rejuvenation of a VM takes and how
// long activating a standby VM takes.  In the paper the VMC sends a
// REJUVENATE command to the about-to-fail VM and an ACTIVATE command to a
// standby VM; both operations have non-negligible latency which is the source
// of the "overhead due to rejuvenation" the policies try to balance.
type RejuvenationModel struct {
	// RejuvenateDuration is the time to restart the server replica and clear
	// the accumulated anomalies.
	RejuvenateDuration simclock.Duration
	// ActivateDuration is the time for a STANDBY VM to become ACTIVE (warm-up
	// of caches, registration with the local load balancer).
	ActivateDuration simclock.Duration
}

// IsZero reports whether the model is entirely unset (see
// AnomalyProfile.IsZero for why this is a method rather than a == check).
func (m RejuvenationModel) IsZero() bool {
	return m.RejuvenateDuration == 0 && m.ActivateDuration == 0
}

// DefaultRejuvenationModel reflects the order of magnitude observed for
// restarting a servlet container plus MySQL connections: about two minutes to
// rejuvenate, a few seconds to activate a warm standby.
func DefaultRejuvenationModel() RejuvenationModel {
	return RejuvenationModel{
		RejuvenateDuration: 120 * simclock.Second,
		ActivateDuration:   5 * simclock.Second,
	}
}
