package pcam

import (
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/features"
	"repro/internal/simclock"
)

// tickFingerprint captures everything observable about one finished VMC run,
// so two runs can be compared for byte-level equivalence.
type tickFingerprint struct {
	VMCStats   Stats
	RMTTF      float64
	LastRaw    float64
	Region     cloudsim.Stats
	Shards     []cloudsim.Stats
	Predicted  map[string]float64
	VMStates   map[string]cloudsim.VMState
	QueueSizes map[string]int
}

// runShardedTicks drives a fixed traffic pattern through an 8-shard region
// for ten control intervals with the given tick fan-out and fingerprints the
// outcome.
func runShardedTicks(t *testing.T, tickWorkers int) tickFingerprint {
	t.Helper()
	eng := simclock.NewEngine(77)
	region := shardedRegion(77, 8, 16, 8)
	// Pre-age a quarter of the active pool so the run includes proactive
	// rejuvenations and standby promotions, not just sampling.  The oracle
	// caps healthy predictions at OracleMaxRTTF (3600 s), so a threshold of
	// 3000 s cleanly separates the aged VMs (~2300 s at this request rate)
	// from the rest.
	for i, vm := range region.ActiveVMs() {
		if i%4 == 0 {
			vm.PreAge(0.9)
		}
	}
	vmc := newTestVMC(t, region, OraclePredictor{}, Config{
		ElasticityEnabled: false,
		ControlInterval:   30 * simclock.Second,
		RTTFThreshold:     3000,
		TickWorkers:       tickWorkers,
	})
	vmc.Start(eng)
	const n = 6000
	for i := 0; i < n; i++ {
		at := simclock.Duration(float64(i) * 300.0 / n)
		id := uint64(i)
		eng.ScheduleFunc(at, func(e *simclock.Engine) {
			vmc.Submit(e, &cloudsim.Request{ID: id, ServiceFactor: 1, Arrival: e.Now()})
		})
	}
	if err := eng.Run(10 * simclock.Minute); err != nil && err != simclock.ErrHorizonReached {
		t.Fatal(err)
	}
	vmc.Stop()

	fp := tickFingerprint{
		VMCStats:   vmc.Stats(),
		RMTTF:      vmc.RMTTF(),
		LastRaw:    vmc.LastRawRMTTF(),
		Region:     region.Stats(),
		Shards:     region.ShardStats(),
		Predicted:  map[string]float64{},
		VMStates:   map[string]cloudsim.VMState{},
		QueueSizes: map[string]int{},
	}
	for _, vm := range region.VMs() {
		fp.Predicted[vm.ID()] = vmc.PredictedRTTF(vm.ID())
		fp.VMStates[vm.ID()] = vm.State()
		fp.QueueSizes[vm.ID()] = vm.QueueLength()
	}
	if fp.VMCStats.ControlTicks == 0 {
		t.Fatal("run executed no control ticks")
	}
	if fp.Region.Served == 0 {
		t.Fatal("run served no requests")
	}
	return fp
}

// TestControlTickParallelEquivalence is the unit-level determinism pin of the
// parallel control tick: an identical 8-shard deployment driven by identical
// traffic ends in exactly the same state — controller counters, smoothed and
// raw RMTTF, per-shard statistics, per-VM predictions, states and queues —
// whether the per-shard phase runs sequentially or on 2, 8 or more
// goroutines.  Run under -race this doubles as the cross-shard mutation
// audit.
func TestControlTickParallelEquivalence(t *testing.T) {
	want := runShardedTicks(t, 1)
	for _, workers := range []int{2, 8, 32} {
		got := runShardedTicks(t, workers)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("TickWorkers=%d diverged from the sequential tick:\nsequential: %+v\nparallel:   %+v", workers, want, got)
		}
	}
	if want.VMCStats.ProactiveRejuvenations == 0 {
		t.Fatal("fixture exercised no proactive rejuvenations; the equivalence would be vacuous")
	}
}

// TestControlTickParallelPhaseEngaged verifies the fan-out actually routes
// through the engine's parallel phase when configured (and not otherwise):
// the predictor observes Engine.InParallelPhase from inside the per-shard
// phase.
func TestControlTickParallelPhaseEngaged(t *testing.T) {
	for _, tc := range []struct {
		workers int
		want    bool
	}{{1, false}, {4, true}} {
		eng := simclock.NewEngine(3)
		region := shardedRegion(3, 4, 8, 4)
		var sawParallel atomic.Bool
		pred := PredictorFunc(func(vm *cloudsim.VM, sample features.Vector) float64 {
			if eng.InParallelPhase() {
				sawParallel.Store(true)
			}
			return OraclePredictor{}.PredictRTTF(vm, sample)
		})
		vmc := newTestVMC(t, region, pred, Config{ElasticityEnabled: false, TickWorkers: tc.workers})
		vmc.ControlTick(eng)
		if sawParallel.Load() != tc.want {
			t.Fatalf("TickWorkers=%d: predictor ran inside a parallel phase = %v, want %v", tc.workers, sawParallel.Load(), tc.want)
		}
	}
}
