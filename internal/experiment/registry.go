package experiment

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/simclock"
)

// The scenario registry maps names to parameterised scenario constructors so
// that sweeps, CLIs and config files can refer to deployments by name instead
// of rebuilding region lists by hand.  The paper's scenarios are registered at
// package initialisation; callers (tests, future workloads, alternative
// backends) can register their own.

// Constructor builds a scenario from a seed.  Constructors must be pure: the
// returned scenario may share no mutable state with any other scenario, since
// the parallel runner builds managers from them concurrently.
type Constructor func(seed uint64) Scenario

// registry is guarded by a mutex so tests and init-time registration from
// multiple packages stay race-free.
var (
	registryMu sync.RWMutex
	registry   = map[string]registered{}
)

type registered struct {
	ctor Constructor
	desc string
	// test marks scenarios registered by test files; they behave like any
	// other registration but are excluded from the generated documentation,
	// so running the docs generator inside a test binary yields the same
	// catalogue as running it from the CLI.
	test bool
}

// RegisterScenario adds a named scenario constructor to the registry.  It
// panics on a duplicate or empty name — registration is a program-structure
// error, not a runtime condition.
func RegisterScenario(name, description string, ctor Constructor) {
	registerScenario(name, description, ctor, false)
}

// registerTestScenario is RegisterScenario for test fixtures: the scenario is
// buildable and sweepable like any other but stays out of the documented
// catalogue (ScenariosMarkdown).
func registerTestScenario(name, description string, ctor Constructor) {
	registerScenario(name, description, ctor, true)
}

func registerScenario(name, description string, ctor Constructor, test bool) {
	if name == "" || ctor == nil {
		panic("experiment: RegisterScenario needs a name and a constructor")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("experiment: scenario %q registered twice", name))
	}
	registry[name] = registered{ctor: ctor, desc: description, test: test}
}

// BuildScenario constructs the named scenario with the given seed.
func BuildScenario(name string, seed uint64) (Scenario, error) {
	registryMu.RLock()
	reg, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return Scenario{}, fmt.Errorf("experiment: unknown scenario %q (known: %v)", name, ScenarioNames())
	}
	return reg.ctor(seed).withDefaults(), nil
}

// ScenarioNames returns the registered scenario names, sorted.
func ScenarioNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// documentedScenarioNames returns the registered non-test scenario names,
// sorted — the set the generated scenario catalogue covers.
func documentedScenarioNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n, reg := range registry {
		if !reg.test {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// ScenarioDescription returns the registered description of a scenario name
// (empty for unknown names).
func ScenarioDescription(name string) string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return registry[name].desc
}

func init() {
	RegisterScenario("figure3", "two heterogeneous regions (Ireland + Munich), Section VI-B first experiment", Figure3Scenario)
	RegisterScenario("figure4", "three heterogeneous regions (Ireland + Frankfurt + Munich), Section VI-B second experiment", Figure4Scenario)
	RegisterScenario("homogeneous", "three identical regions and populations, the environment suited to Policy 1", HomogeneousScenario)
	RegisterScenario("elasticity", "under-provisioned region absorbing a 3x client surge via ADDVMS", ElasticityScenario)
	RegisterScenario("megaregion", "one region with a 5x10^3-VM pool on a single engine shard (baseline)", MegaregionScenario)
	RegisterScenario("megaregion-sharded", "the 5x10^3-VM region split across 16 engine shards", MegaregionShardedScenario)
	RegisterScenario("megaregion-parallel", "the 16-shard megaregion with the control tick fanned out to one goroutine per shard", MegaregionParallelScenario)
	RegisterScenario("megaregion-eventloop", "the 16-shard megaregion with the event loop itself fanned out: one sub-engine per shard, cross-shard mailboxes", MegaregionEventLoopScenario)
	RegisterScenario("figure4-eventloop", "figure4 with 3-shard regions on the parallel event loop (cross-region forwarding through mailboxes)", Figure4EventLoopScenario)
	RegisterScenario("global-failover", "global clients on the director's failover policy; a scripted outage drains region1, traffic fails over and back", GlobalFailoverScenario)
	RegisterScenario("global-leastload", "global clients routed by probed region capacity (least-load policy re-weighted every 15 s)", GlobalLeastLoadScenario)
	RegisterScenario("global-diurnal", "inhomogeneous-Poisson diurnal streams peaking per-region a third of a cycle apart, plus static-weight global clients", GlobalDiurnalScenario)
	RegisterScenario("global-latency", "globally attached streams routed by learned per-(stream, region) RTT (capacity over squared EWMA latency)", GlobalLatencyScenario)
	RegisterScenario("global-cablecut", "global-latency plus a mid-run cable cut doubling the americas-to-region1 RTT; the director learns the shift passively", GlobalCableCutScenario)
	RegisterScenario("global-traced", "global-latency on 2-shard regions with 2% request tracing and the engine flight recorder (Chrome-trace export golden)", GlobalTracedScenario)
	RegisterScenario("global-gossip", "three gossip director replicas converging on region health through 10 s push-pull rounds while staggered outages churn the views", GlobalGossipScenario)
	RegisterScenario("global-partition", "split-brain: a partitioned replica keeps routing its lanes to a blacked-out region until the partition heals", GlobalPartitionScenario)
	RegisterScenario("global-staleview", "slow lossy gossip leaves two replicas overloading a shrunken region on stale healthy views", GlobalStaleViewScenario)
	RegisterScenario("megaclients", "10^6 cohort-compressed clients on the 16-shard megaregion (1% tracers feed the latency series)", MegaclientsScenario)
	RegisterScenario("global-megaclients", "1.2x10^6 cohort-compressed clients routed by the director's least-load policy over three 10^3-VM regions", GlobalMegaclientsScenario)
}

// Matrix describes a sweep grid over registered scenarios, policies, smoothing
// factors and replications.  Expand turns it into independent jobs for the
// parallel runner, with every job's seed derived deterministically from
// (BaseSeed, replication index) — so one replication runs every cell of the
// grid on the same stream (paired comparisons across policies and betas), and
// different replications land on independent streams.
type Matrix struct {
	// Scenarios names registered scenarios ("figure3", "figure4", ...).
	Scenarios []string
	// Policies lists policy keys resolvable by PolicyByKey.  Empty selects
	// the paper's three policies.
	Policies []string
	// Betas optionally overrides the scenarios' smoothing factor; empty keeps
	// each scenario's own beta.
	Betas []float64
	// Replications is the number of independent seed streams per grid cell
	// (1 when zero or negative).
	Replications int
	// BaseSeed is the root of all derived seeds.
	BaseSeed uint64
	// Horizon optionally overrides the scenarios' horizon.
	Horizon simclock.Duration
}

// Size returns the number of jobs Expand will produce.
func (m Matrix) Size() int {
	reps := m.Replications
	if reps <= 0 {
		reps = 1
	}
	betas := len(m.Betas)
	if betas == 0 {
		betas = 1
	}
	policies := len(m.Policies)
	if policies == 0 {
		policies = len(Policies())
	}
	return len(m.Scenarios) * betas * policies * reps
}

// Expand materialises the grid into jobs, ordered scenario-major, then beta,
// then policy, then replication.  The expansion is a pure function of the
// matrix: expanding twice yields identical jobs, which together with the
// deterministic seed derivation makes sweep results independent of scheduling.
func (m Matrix) Expand() ([]Job, error) {
	if len(m.Scenarios) == 0 {
		return nil, fmt.Errorf("experiment: matrix has no scenarios")
	}
	reps := m.Replications
	if reps <= 0 {
		reps = 1
	}

	var policies []NamedPolicy
	if len(m.Policies) == 0 {
		policies = Policies()
	} else {
		for _, key := range m.Policies {
			np, err := PolicyByKey(key)
			if err != nil {
				return nil, err
			}
			policies = append(policies, np)
		}
	}

	betas := m.Betas
	overrideBeta := len(betas) > 0
	for _, beta := range betas {
		if err := ValidateBeta(beta); err != nil {
			return nil, err
		}
	}
	if !overrideBeta {
		betas = []float64{0} // placeholder: keep each scenario's own beta
	}

	jobs := make([]Job, 0, m.Size())
	for _, name := range m.Scenarios {
		for _, beta := range betas {
			for _, np := range policies {
				for rep := 0; rep < reps; rep++ {
					seed := simclock.DeriveSeed(m.BaseSeed, uint64(rep))
					sc, err := BuildScenario(name, seed)
					if err != nil {
						return nil, err
					}
					if m.Horizon > 0 {
						sc.Horizon = m.Horizon
					}
					if overrideBeta {
						sc.Beta = beta
						sc.Name = fmt.Sprintf("%s-beta%.2f", sc.Name, beta)
					}
					if reps > 1 {
						sc.Name = fmt.Sprintf("%s-rep%d", sc.Name, rep)
					}
					jobs = append(jobs, Job{Index: len(jobs), Scenario: sc, Policy: np, Rep: rep})
				}
			}
		}
	}
	return jobs, nil
}

// RunMatrix expands the matrix and executes it on the parallel runner.
func RunMatrix(ctx context.Context, m Matrix, opt Options) ([]JobResult, error) {
	jobs, err := m.Expand()
	if err != nil {
		return nil, err
	}
	return RunParallel(ctx, jobs, opt)
}
