package workload

import (
	"math"
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/simclock"
)

// cohortStub is a dispatcher that completes every request after a fixed
// service delay and keeps weighted per-class tallies.
type cohortStub struct {
	delay    simclock.Duration
	byClass  map[string]uint64
	maxBatch int
	requests uint64
}

func newCohortStub(delay simclock.Duration) *cohortStub {
	return &cohortStub{delay: delay, byClass: map[string]uint64{}}
}

func (s *cohortStub) Submit(eng *simclock.Engine, req *cloudsim.Request) {
	s.requests++
	s.byClass[req.Class] += req.Weight()
	if req.Batch > s.maxBatch {
		s.maxBatch = req.Batch
	}
	arrival := req.Arrival
	eng.ScheduleFunc(s.delay, func(e *simclock.Engine) {
		req.Finish(e, cloudsim.Outcome{Request: req, Start: arrival, End: e.Now()})
	})
}

func runCohort(t *testing.T, cfg CohortConfig, horizon simclock.Duration) (*CohortPopulation, *cohortStub, *Metrics) {
	t.Helper()
	eng := simclock.NewEngine(1)
	stub := newCohortStub(50 * simclock.Millisecond)
	met := NewMetrics()
	c := NewCohortPopulation(cfg, stub, met)
	c.Start(eng)
	if err := eng.Run(horizon); err != nil && err != simclock.ErrHorizonReached {
		t.Fatal(err)
	}
	return c, stub, met
}

func TestCohortPopulationThroughputAndConservation(t *testing.T) {
	const clients = 10000
	cfg := CohortConfig{Region: "r1", Clients: clients, TracerFraction: 0.01, Seed: 7}
	c, stub, met := runCohort(t, cfg, 60*simclock.Second)

	if got := c.TracerCount(); got != 100 {
		t.Fatalf("TracerCount = %d, want 100", got)
	}
	if got := c.CohortClients(); got != clients-100 {
		t.Fatalf("CohortClients = %d, want %d", got, clients-100)
	}
	// Closed-loop conservation: every client is either thinking or waiting on
	// a batch in flight.
	if c.Thinking()+c.InFlight() != c.CohortClients() {
		t.Fatalf("conservation violated: thinking %d + inflight %d != cohort %d",
			c.Thinking(), c.InFlight(), c.CohortClients())
	}
	if c.InFlight() < 0 || c.Thinking() < 0 {
		t.Fatalf("negative bucket: thinking %d, inflight %d", c.Thinking(), c.InFlight())
	}
	// Steady-state throughput of a closed loop with negligible response time:
	// clients/think interactions per second.
	want := c.ExpectedRate() * 60
	got := float64(met.Issued("r1"))
	if math.Abs(got-want) > 0.10*want {
		t.Fatalf("issued %0.f interactions, want %.0f +/- 10%%", got, want)
	}
	// The compression must hold: batching keeps the event count far below
	// the interaction count.
	if stub.requests >= met.Issued("r1")/4 {
		t.Fatalf("compression too weak: %d requests for %d interactions", stub.requests, met.Issued("r1"))
	}
	if stub.maxBatch > 64 {
		t.Fatalf("batch %d exceeds default MaxBatch 64", stub.maxBatch)
	}
	// Tracers feed the latency series; batches must not.
	if met.ResponseSamples("r1") == 0 {
		t.Fatal("tracers recorded no response samples")
	}
	if met.ResponseSamples("r1") >= met.Completed("r1")/10 {
		t.Fatalf("latency series looks batch-fed: %d samples of %d completions",
			met.ResponseSamples("r1"), met.Completed("r1"))
	}
}

// TestCohortPopulationDeterministicReplay pins run-twice byte-identity of the
// whole cohort trajectory: counters, bucket states and the tracer latency
// moments must replay exactly from the same seed.
func TestCohortPopulationDeterministicReplay(t *testing.T) {
	run := func() (uint64, uint64, int, float64, float64) {
		cfg := CohortConfig{Region: "r1", Clients: 50000, TracerFraction: 0.002, MaxBatch: 32, Seed: 99}
		c, stub, met := runCohort(t, cfg, 120*simclock.Second)
		return met.Issued("r1"), stub.requests, c.Thinking(), met.MeanResponseTime("r1"), met.ResponseTimeStdDev("r1")
	}
	i1, r1, t1, m1, s1 := run()
	i2, r2, t2, m2, s2 := run()
	if i1 != i2 || r1 != r2 || t1 != t2 || m1 != m2 || s1 != s2 {
		t.Fatalf("replay diverged: (%d,%d,%d,%g,%g) vs (%d,%d,%d,%g,%g)",
			i1, r1, t1, m1, s1, i2, r2, t2, m2, s2)
	}
}

// TestCohortSplitChiSquared checks that the sequential-conditional-binomial
// class split reproduces the mix weights: the per-class interaction counts
// aggregated over a run form a multinomial sample whose chi-squared statistic
// against the TPC-W browsing weights must pass at the 99.9% level (fixed
// seed, so the statistic is a constant, not a flaky draw).
func TestCohortSplitChiSquared(t *testing.T) {
	cfg := CohortConfig{Region: "r1", Clients: 20000, Seed: 3}
	_, stub, _ := runCohort(t, cfg, 300*simclock.Second)

	mix := BrowsingMix()
	totalW := 0.0
	for _, e := range mix.Entries {
		totalW += e.Weight
	}
	var total uint64
	for _, n := range stub.byClass {
		total += n
	}
	if total < 100000 {
		t.Fatalf("sample too small for a chi-squared check: %d", total)
	}
	chi2, bins := 0.0, 0
	for _, e := range mix.Entries {
		if e.Weight <= 0 {
			continue
		}
		exp := float64(total) * e.Weight / totalW
		if exp < 5 {
			continue
		}
		d := float64(stub.byClass[e.Name]) - exp
		chi2 += d * d / exp
		bins++
	}
	if bins < 10 {
		t.Fatalf("degenerate binning: %d bins", bins)
	}
	// 99.9th percentile of chi-squared with 13 degrees of freedom is 34.5.
	if chi2 > 40 {
		t.Fatalf("class split failed chi-squared: statistic %.2f over %d bins", chi2, bins)
	}
}

// TestCohortPopulationNoTracers: TracerFraction 0 must run pure-cohort with
// no latency samples and full client count in the buckets.
func TestCohortPopulationNoTracers(t *testing.T) {
	cfg := CohortConfig{Region: "r1", Clients: 1000, Seed: 5}
	c, _, met := runCohort(t, cfg, 30*simclock.Second)
	if c.TracerCount() != 0 || c.Tracers() != nil {
		t.Fatalf("expected no tracers, got %d", c.TracerCount())
	}
	if c.CohortClients() != 1000 {
		t.Fatalf("CohortClients = %d, want 1000", c.CohortClients())
	}
	if met.ResponseSamples("r1") != 0 {
		t.Fatalf("pure-cohort run recorded %d latency samples", met.ResponseSamples("r1"))
	}
	if met.Issued("r1") == 0 {
		t.Fatal("cohort issued nothing")
	}
}

// TestCohortPopulationStop: after Stop, in-flight batches drain back into the
// think bucket and no new interactions are issued.
func TestCohortPopulationStop(t *testing.T) {
	eng := simclock.NewEngine(1)
	stub := newCohortStub(50 * simclock.Millisecond)
	met := NewMetrics()
	c := NewCohortPopulation(CohortConfig{Region: "r1", Clients: 5000, Seed: 11}, stub, met)
	c.Start(eng)
	eng.ScheduleFunc(10*simclock.Second, func(*simclock.Engine) { c.Stop() })
	if err := eng.Run(20 * simclock.Second); err != nil && err != simclock.ErrHorizonReached {
		t.Fatal(err)
	}
	if c.Running() {
		t.Fatal("cohort still running after Stop")
	}
	if c.Thinking() != c.CohortClients() {
		t.Fatalf("in-flight batches did not drain: thinking %d of %d", c.Thinking(), c.CohortClients())
	}
	if met.Issued("r1") != met.Completed("r1")+met.Dropped("r1") {
		t.Fatalf("issued %d != completed %d + dropped %d", met.Issued("r1"), met.Completed("r1"), met.Dropped("r1"))
	}
}
