package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (time, value) observation in a Series.
type Point struct {
	T float64 // simulated time, seconds
	V float64
}

// Series is an append-only time series of observations, e.g. the RMTTF of a
// region or the workload fraction f_i over the course of an experiment.
type Series struct {
	Name   string
	Points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends an observation.  Observations are expected in non-decreasing
// time order (the simulation produces them that way); out-of-order points are
// accepted but tail-window computations assume ordering.
func (s *Series) Add(t, v float64) { s.Points = append(s.Points, Point{T: t, V: v}) }

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.Points) }

// Values returns all observation values in order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Times returns all observation times in order.
func (s *Series) Times() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.T
	}
	return out
}

// Last returns the final observation value, or 0 if empty.
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].V
}

// At returns the value of the most recent observation at or before time t
// (step interpolation).  Returns 0 before the first observation.
func (s *Series) At(t float64) float64 {
	idx := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > t })
	if idx == 0 {
		return 0
	}
	return s.Points[idx-1].V
}

// Tail returns the values of observations whose time is within the final
// fraction frac of the observed time span.  frac=0.3 returns the last 30% of
// the experiment, the window used to judge steady-state behaviour.
func (s *Series) Tail(frac float64) []float64 {
	if len(s.Points) == 0 {
		return nil
	}
	if frac <= 0 {
		return nil
	}
	if frac >= 1 {
		return s.Values()
	}
	start := s.Points[0].T
	end := s.Points[len(s.Points)-1].T
	cut := end - (end-start)*frac
	var out []float64
	for _, p := range s.Points {
		if p.T >= cut {
			out = append(out, p.V)
		}
	}
	return out
}

// TailMean returns the mean of the tail window.
func (s *Series) TailMean(frac float64) float64 { return Mean(s.Tail(frac)) }

// TailStdDev returns the standard deviation of the tail window.
func (s *Series) TailStdDev(frac float64) float64 { return StdDev(s.Tail(frac)) }

// Resample returns the series values sampled at n evenly spaced times across
// the observed span using step interpolation.  Used for compact reporting.
func (s *Series) Resample(n int) []float64 {
	if len(s.Points) == 0 || n <= 0 {
		return nil
	}
	start := s.Points[0].T
	end := s.Points[len(s.Points)-1].T
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var t float64
		if n == 1 {
			t = end
		} else {
			t = start + (end-start)*float64(i)/float64(n-1)
		}
		out[i] = s.At(t)
	}
	return out
}

// OscillationIndex quantifies how much the series keeps moving in its tail
// window: the mean absolute difference between consecutive tail observations,
// normalised by the tail mean.  A converged, stable series has an index near
// zero; a series that keeps oscillating (Policy 1 in the paper) has a large
// index.
func (s *Series) OscillationIndex(tailFrac float64) float64 {
	tail := s.Tail(tailFrac)
	if len(tail) < 2 {
		return 0
	}
	m := Mean(tail)
	if m == 0 {
		m = 1
	}
	sum := 0.0
	for i := 1; i < len(tail); i++ {
		sum += math.Abs(tail[i] - tail[i-1])
	}
	return sum / float64(len(tail)-1) / math.Abs(m)
}

// DirectionChanges counts sign changes of the discrete derivative over the
// tail window — another view of oscillation used for the f_i series.
func (s *Series) DirectionChanges(tailFrac float64) int {
	tail := s.Tail(tailFrac)
	changes := 0
	prevSign := 0
	for i := 1; i < len(tail); i++ {
		d := tail[i] - tail[i-1]
		sign := 0
		if d > 1e-12 {
			sign = 1
		} else if d < -1e-12 {
			sign = -1
		}
		if sign != 0 && prevSign != 0 && sign != prevSign {
			changes++
		}
		if sign != 0 {
			prevSign = sign
		}
	}
	return changes
}

// ConvergenceReport captures whether a group of series (one per region)
// converged to a common value, how quickly, and how stable they are — the
// three qualitative axes the paper uses to compare the policies.
type ConvergenceReport struct {
	// Converged is true when the tail means of all series lie within
	// Tolerance (relative) of their common mean.
	Converged bool
	// RelativeSpread is (max tail mean - min tail mean) / mean of tail means.
	RelativeSpread float64
	// ConvergenceTime is the earliest simulated time after which all series
	// stay within Tolerance of their running common mean; math.Inf(1) when
	// they never converge.
	ConvergenceTime float64
	// MeanOscillation is the average oscillation index across the series.
	MeanOscillation float64
	// Tolerance echoes the tolerance used for the judgement.
	Tolerance float64
}

// String renders the report in a compact single line.
func (r ConvergenceReport) String() string {
	conv := "no"
	if r.Converged {
		conv = "yes"
	}
	ct := "never"
	if !math.IsInf(r.ConvergenceTime, 1) {
		ct = fmt.Sprintf("%.0fs", r.ConvergenceTime)
	}
	return fmt.Sprintf("converged=%s spread=%.3f convTime=%s oscillation=%.4f",
		conv, r.RelativeSpread, ct, r.MeanOscillation)
}

// AnalyzeConvergence inspects a group of series, one per region, and reports
// whether they converged to a common value.  tailFrac selects the
// steady-state window and tol the relative tolerance for "same value".
func AnalyzeConvergence(series []*Series, tailFrac, tol float64) ConvergenceReport {
	rep := ConvergenceReport{Tolerance: tol, ConvergenceTime: math.Inf(1)}
	if len(series) == 0 {
		return rep
	}
	tails := make([]float64, len(series))
	osc := 0.0
	for i, s := range series {
		tails[i] = s.TailMean(tailFrac)
		osc += s.OscillationIndex(tailFrac)
	}
	rep.MeanOscillation = osc / float64(len(series))
	m := Mean(tails)
	if m == 0 {
		m = 1
	}
	rep.RelativeSpread = (Max(tails) - Min(tails)) / math.Abs(m)
	rep.Converged = rep.RelativeSpread <= tol

	if rep.Converged {
		rep.ConvergenceTime = convergenceTime(series, tol)
	}
	return rep
}

// convergenceTime returns the earliest time after which the per-series step
// values remain within tol (relative spread) of each other until the end of
// the observation window.
func convergenceTime(series []*Series, tol float64) float64 {
	// Build the union of observation times.
	timesSet := map[float64]struct{}{}
	for _, s := range series {
		for _, p := range s.Points {
			timesSet[p.T] = struct{}{}
		}
	}
	if len(timesSet) == 0 {
		return math.Inf(1)
	}
	times := make([]float64, 0, len(timesSet))
	for t := range timesSet {
		times = append(times, t)
	}
	sort.Float64s(times)

	within := func(t float64) bool {
		vals := make([]float64, len(series))
		for i, s := range series {
			vals[i] = s.At(t)
		}
		m := Mean(vals)
		if m == 0 {
			m = 1
		}
		return (Max(vals)-Min(vals))/math.Abs(m) <= tol
	}

	// Find the earliest time from which every later sampling point is within
	// tolerance.
	best := math.Inf(1)
	ok := true
	for i := len(times) - 1; i >= 0; i-- {
		if within(times[i]) {
			if ok {
				best = times[i]
			}
		} else {
			ok = false
			break
		}
	}
	return best
}

// SeriesSet is a named collection of series, convenient for grouping the
// per-region RMTTF or f_i traces of one experiment run.
type SeriesSet struct {
	Name   string
	Series []*Series
}

// NewSeriesSet returns an empty set.
func NewSeriesSet(name string) *SeriesSet { return &SeriesSet{Name: name} }

// Add creates, registers and returns a new series with the given name.
func (ss *SeriesSet) Add(name string) *Series {
	s := NewSeries(name)
	ss.Series = append(ss.Series, s)
	return s
}

// Get returns the series with the given name, or nil.
func (ss *SeriesSet) Get(name string) *Series {
	for _, s := range ss.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Names returns the series names in registration order.
func (ss *SeriesSet) Names() []string {
	out := make([]string, len(ss.Series))
	for i, s := range ss.Series {
		out[i] = s.Name
	}
	return out
}

// Analyze runs AnalyzeConvergence over all series in the set.
func (ss *SeriesSet) Analyze(tailFrac, tol float64) ConvergenceReport {
	return AnalyzeConvergence(ss.Series, tailFrac, tol)
}

// String summarises the set (names and point counts).
func (ss *SeriesSet) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", ss.Name)
	for _, s := range ss.Series {
		fmt.Fprintf(&b, " %s(%d)", s.Name, s.Len())
	}
	return b.String()
}
