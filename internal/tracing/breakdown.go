package tracing

import (
	"fmt"
	"sort"
	"strings"
)

// The critical-path / queue-wait breakdown: where sampled requests spent
// their time, phase by phase, aggregated over the collected traces.  Printed
// in the acmsim report when tracing is enabled.

// PhaseStats aggregates one span name over all traces.
type PhaseStats struct {
	Name  string
	Count int
	// Total, Mean, P95 and Max are in seconds.
	Total, Mean, P95, Max float64
	// Share is Total over the summed root response time — the phase's
	// contribution to the critical path (phases overlap-free by
	// construction except the RTT legs, which bracket the server side).
	Share float64
}

// Breakdown computes per-phase statistics from traces in canonical order.
// Annotated spans (rtt legs, forwards) are read from the event log; the VM
// queue wait and service spans are synthesised from each trace's outcome.
func Breakdown(traces []*RequestTrace) []PhaseStats {
	samples := map[string][]float64{}
	add := func(name string, seconds float64) {
		if seconds < 0 {
			return
		}
		samples[name] = append(samples[name], seconds)
	}
	var totalResponse float64
	for _, rt := range traces {
		if !rt.Sealed {
			continue
		}
		add(SpanRequest, rt.ResponseTime().Seconds())
		totalResponse += rt.ResponseTime().Seconds()
		for _, ev := range rt.Events {
			if ev.Dur > 0 {
				add(ev.Name, ev.Dur.Seconds())
			}
		}
		if rt.Outcome == OutcomeOK {
			if w := rt.QueueWait(); w >= 0 {
				if _, ok := rt.enqueueAt(); ok {
					add(SpanQueue, w.Seconds())
				}
			}
			add(SpanService, rt.ServiceTime().Seconds())
		}
	}

	// Catalogue order first, then any uncatalogued names sorted — a stable
	// presentation that is a pure function of the trace set.
	var order []string
	seen := map[string]bool{}
	for _, d := range Catalog() {
		if len(samples[d.Name]) > 0 {
			order = append(order, d.Name)
			seen[d.Name] = true
		}
	}
	var rest []string
	for name := range samples {
		if !seen[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	order = append(order, rest...)

	out := make([]PhaseStats, 0, len(order))
	for _, name := range order {
		vals := samples[name]
		sort.Float64s(vals)
		var total float64
		for _, v := range vals {
			total += v
		}
		ps := PhaseStats{
			Name:  name,
			Count: len(vals),
			Total: total,
			Mean:  total / float64(len(vals)),
			P95:   vals[int(0.95*float64(len(vals)-1))],
			Max:   vals[len(vals)-1],
		}
		if totalResponse > 0 {
			ps.Share = total / totalResponse
		}
		out = append(out, ps)
	}
	return out
}

// BreakdownTable renders the breakdown as a report table.
func BreakdownTable(traces []*RequestTrace) string {
	stats := Breakdown(traces)
	if len(stats) == 0 {
		return "no sealed traces collected\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %10s %10s %10s %10s %7s\n",
		"phase", "count", "total(s)", "mean(s)", "p95(s)", "max(s)", "share")
	for _, ps := range stats {
		fmt.Fprintf(&b, "%-12s %8d %10.3f %10.4f %10.4f %10.4f %6.1f%%\n",
			ps.Name, ps.Count, ps.Total, ps.Mean, ps.P95, ps.Max, 100*ps.Share)
	}
	return b.String()
}
