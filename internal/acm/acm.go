// Package acm assembles the full Autonomic Cloud Manager: the cloud regions
// and their VMs (cloudsim), the per-region Virtual Machine Controllers with
// proactive rejuvenation (pcam), the ML-based RTTF prediction models (f2pm),
// the overlay network interconnecting the controllers (overlay), the leader
// election among them (election), the TPC-W client populations (workload) and
// the leader-side closed control loop with the load-balancing policies
// (core).  A Manager owns one simulated deployment and runs it on the
// discrete-event engine, producing the time series (RMTTF, workload fractions
// f_i, client response time) that the paper's figures plot.
package acm

import (
	"fmt"
	"sort"

	"repro/internal/cloudsim"
	"repro/internal/core"
	"repro/internal/election"
	"repro/internal/f2pm"
	"repro/internal/gossip"
	"repro/internal/gslb"
	"repro/internal/overlay"
	"repro/internal/pcam"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/tracing"
	"repro/internal/workload"
)

// PredictorMode selects how the VMCs estimate the RTTF of their VMs.
type PredictorMode string

const (
	// PredictorOracle uses the simulator's ground truth (a perfect ML model).
	// It is the default for the figure experiments: the paper's focus is the
	// load-balancing policies, not prediction accuracy.
	PredictorOracle PredictorMode = "oracle"
	// PredictorML trains an F2PM REP-Tree model per instance type on a
	// synthetic profiling run and uses it at runtime, reproducing the full
	// F2PM -> PCAM -> ACM pipeline.
	PredictorML PredictorMode = "ml"
)

// RegionSetup couples a region configuration with the client population
// connected to it.
type RegionSetup struct {
	// Region is the cloud region configuration.
	Region cloudsim.RegionConfig
	// Clients is the number of emulated browsers connected to this region's
	// load balancer (the paper varies this in [16, 512] per region).
	Clients int
	// CohortClients attaches this many cohort-compressed clients to the
	// region in addition to Clients: counted state buckets split by binomial
	// draws instead of per-client state machines, so populations of 10^6+
	// effective clients cost events proportional to their batch count.  A
	// TracerFraction of them is simulated individually to feed the
	// response-time series (see Config.TracerFraction).
	CohortClients int
	// Mix is the TPC-W mix of those clients (browsing mix when zero-valued).
	Mix workload.Mix
	// SurgeClients optionally adds this many extra browsers once SurgeAt is
	// reached, modelling the global workload increase of Section V that the
	// ADDVMS elasticity action responds to.
	SurgeClients int
	// SurgeAt is the simulated time at which the surge population connects.
	SurgeAt simclock.Duration
}

// Config describes a complete ACM deployment.
type Config struct {
	// Seed drives every random stream of the simulation.
	Seed uint64
	// Regions lists the cloud regions and their client populations.
	Regions []RegionSetup
	// Policy is the load-balancing policy run by the leader VMC.
	Policy core.Policy
	// Beta is the smoothing factor of equation (1).
	Beta float64
	// ControlInterval is the period of the global closed control loop (one
	// era per interval).
	ControlInterval simclock.Duration
	// VMC configures the per-region controllers (zero value = pcam defaults).
	VMC pcam.Config
	// Predictor selects oracle or ML-based RTTF prediction.
	Predictor PredictorMode
	// ThinkTime is the emulated browsers' mean think time (7 s when zero).
	ThinkTime simclock.Duration
	// RequestTimeout aborts client interactions that take longer than this
	// (disabled when zero).
	RequestTimeout simclock.Duration
	// Overlay is the controller interconnection network; when nil a
	// three-region paper overlay is built and regions beyond the first three
	// are attached to the transit node.
	Overlay *overlay.Network
	// Recorder receives the experiment time series; a fresh recorder is
	// created when nil.
	Recorder *trace.Recorder
	// MLProfile overrides the profiling configuration used when Predictor is
	// PredictorML (sensible defaults otherwise).
	MLProfile f2pm.ProfileConfig
	// InitialAgeSpread staggers the initial anomaly state of each region's
	// active VMs across [0, InitialAgeSpread) of their failure budget, so
	// that rejuvenation points do not all align (the paper's testbed VMs had
	// been running before the measurements started).  Negative disables the
	// stagger; zero selects the default of 0.5.
	InitialAgeSpread float64
	// EventWorkers switches the deployment onto the sharded event loop (see
	// eventloop.go): every region shard becomes its own sub-engine and the
	// shard loops run on up to EventWorkers goroutines in lockstep epochs.
	// Zero keeps the serial single-queue engine, byte-identical to the
	// pre-event-loop behaviour; any value >= 1 selects the epochal engine,
	// whose output is byte-identical across all worker counts (1 runs the
	// shard loops inline).
	EventWorkers int
	// EventEpoch is the lockstep epoch width of the sharded event loop
	// (simclock.DefaultEpoch when zero).  Cross-shard mailbox traffic is
	// delivered at epoch barriers; periodic controllers still fire at their
	// exact timestamps.
	EventEpoch simclock.Duration
	// GSLB enables the global traffic director: a gslb.Director sits between
	// globally attached client populations and the regions, routing each
	// request according to the configured policy and a health probe sampled
	// on the control timeline.  The zero value disables it.  A GSLB
	// deployment always runs on the sharded event loop (global routing
	// crosses region sub-engines), so EventWorkers = 0 is promoted to 1 —
	// the inline epochal run with identical bytes.
	GSLB gslb.Config
	// GlobalClients is the number of emulated browsers attached to the
	// director instead of a fixed region; their requests enter whichever
	// region the routing policy picks.  Requires GSLB to be enabled.
	GlobalClients int
	// GlobalMix is the interaction mix of the global clients (browsing when
	// zero-valued).
	GlobalMix workload.Mix
	// CohortClients attaches this many cohort-compressed clients to the
	// director (the global analogue of RegionSetup.CohortClients).  Requires
	// GSLB to be enabled.
	CohortClients int
	// TracerFraction is the fraction of every cohort simulated as individual
	// tracer browsers feeding the per-request latency series.  Must lie in
	// [0, 1]; zero selects the default of 0.01 (~1%).
	TracerFraction float64
	// CohortTick is the cohorts' state-split cadence (1 s when zero).
	CohortTick simclock.Duration
	// CohortMaxBatch caps the interactions one batched request stands for
	// (64 when zero).
	CohortMaxBatch int
	// Arrivals lists open-loop (optionally time-varying, inhomogeneous-
	// Poisson) request streams: pinned to one region's entry load balancer
	// when Region is set, attached to the director otherwise.
	Arrivals []ArrivalSetup
	// Faults is the scripted region-outage schedule (see RegionFault), the
	// stimulus the director's health-driven failover responds to.
	Faults []RegionFault
	// LinkFaults is the scripted network-path degradation schedule (see
	// LinkFault), the stimulus the director's passive latency learning
	// responds to.  Requires a latency-aware GSLB configuration.
	LinkFaults []LinkFault
	// GossipReplicas replaces the central director with this many replicated
	// directors exchanging health over the simulated gossip plane
	// (internal/gossip).  Each request lane routes on its home replica's
	// eventually-consistent view (lane g reads replica g mod N).  Requires
	// GSLB to be enabled; incompatible with the latency policy and RTT
	// matrices (their passive estimators are inherently central).  Zero
	// keeps the central director.
	GossipReplicas int
	// GossipInterval is the gossip round period on the control timeline
	// (10 s when zero).
	GossipInterval simclock.Duration
	// GossipFanout is how many peers each replica pushes to per round
	// (1 when zero).
	GossipFanout int
	// GossipDelay is the per-message link delay of the gossip plane; a push
	// always takes at least one round to arrive.
	GossipDelay simclock.Duration
	// GossipLoss is the per-message Bernoulli loss probability in [0, 1).
	GossipLoss float64
	// PartitionFaults scripts replica-set splits of the gossip plane on the
	// control timeline (see PartitionFault).  Requires GossipReplicas >= 2.
	PartitionFaults []PartitionFault
	// TraceSampleFraction enables the deterministic request-span layer
	// (internal/tracing): this fraction of every client stream's requests is
	// sampled into per-request traces spanning issue, routing, mailbox hops,
	// queueing, service and completion.  The sampling decision and all span
	// IDs are pure functions of (Seed, stream, request ID), so the trace set
	// is byte-identical for every EventWorkers value and tracing never
	// perturbs the simulation (no engine RNG draws, no extra events).  Must
	// lie in [0, 1]; zero disables tracing entirely.
	TraceSampleFraction float64
	// FlightRecorder enables the engine flight recorder: per-epoch per-shard
	// busy/idle/mailbox-drain accounting in sim-time plus control-tick phase
	// timings, recorded at epoch barriers on the control timeline.  Requires
	// the sharded event loop (EventWorkers >= 1, or a GSLB deployment, which
	// is always promoted onto it).
	FlightRecorder bool
}

func (c Config) withDefaults() Config {
	if c.Beta <= 0 || c.Beta > 1 {
		c.Beta = 0.5
	}
	if c.ControlInterval <= 0 {
		c.ControlInterval = 60 * simclock.Second
	}
	if c.Policy == nil {
		c.Policy = core.AvailableResources{}
	}
	if c.Predictor == "" {
		c.Predictor = PredictorOracle
	}
	if c.ThinkTime <= 0 {
		c.ThinkTime = 7 * simclock.Second
	}
	if c.InitialAgeSpread == 0 {
		c.InitialAgeSpread = 0.5
	}
	if c.InitialAgeSpread < 0 {
		c.InitialAgeSpread = 0
	}
	if c.EventWorkers < 0 {
		c.EventWorkers = 0
	}
	if c.TracerFraction == 0 {
		c.TracerFraction = 0.01
	}
	if c.GSLB.Enabled() && c.EventWorkers == 0 {
		// Global routing crosses region sub-engines, so a GSLB deployment
		// always runs on the epochal engine; 0 selects the inline (1-worker)
		// run, whose bytes are identical to every other worker count.
		c.EventWorkers = 1
	}
	if c.EventWorkers > 0 && c.EventEpoch <= 0 {
		c.EventEpoch = simclock.DefaultEpoch
	}
	return c
}

// Manager is one assembled ACM deployment.
type Manager struct {
	cfg Config
	eng *simclock.Engine

	regions     []*cloudsim.Region
	regionNames []string
	regionIndex map[string]int
	vmcs        map[string]*pcam.VMC
	el          *eventLoop // non-nil when EventWorkers >= 1 (sharded event loop)
	populations map[string]*workload.Population
	surges      map[string]*workload.Population
	surgeAt     map[string]simclock.Duration
	cohorts     []*workload.CohortPopulation // serial engine only; the event loop keeps per-shard cohorts
	metrics     *workload.Metrics
	net         *overlay.Network
	cluster     *election.Cluster
	loop        *core.Loop
	plan        *core.ForwardPlan
	recorder    *trace.Recorder
	models      map[string]*f2pm.Model   // per instance type, when PredictorML
	director    *gslb.Director           // non-nil when GSLB is enabled centrally
	plane       *gossip.Plane            // non-nil when GossipReplicas > 0
	tracer      *tracing.Tracer          // non-nil when TraceSampleFraction > 0
	flight      *simclock.FlightRecorder // non-nil when Config.FlightRecorder
	arrivals    []*workload.VaryingOpenLoop
	mm          *managerMetrics
	stopProbe   func()
	stopGossip  func()

	// interval accounting for λ, entry shares and the response-time series
	prevIssued    map[string]uint64
	prevIssuedAll uint64
	prevRespCount uint64
	prevRespTotal float64

	// counters
	eras              uint64
	forwardedRequests uint64
	localRequests     uint64
	controlMessages   uint64
	stopLoop          func()
}

// NewManager builds the deployment.  It trains the ML predictors up front
// when PredictorML is selected (the paper's initial profiling phase).
func NewManager(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Regions) == 0 {
		return nil, fmt.Errorf("acm: no regions configured")
	}
	m := &Manager{
		cfg:         cfg,
		eng:         simclock.NewEngine(cfg.Seed),
		vmcs:        map[string]*pcam.VMC{},
		populations: map[string]*workload.Population{},
		surges:      map[string]*workload.Population{},
		surgeAt:     map[string]simclock.Duration{},
		metrics:     workload.NewMetrics(),
		recorder:    cfg.Recorder,
		models:      map[string]*f2pm.Model{},
		prevIssued:  map[string]uint64{},
	}
	if m.recorder == nil {
		m.recorder = trace.NewRecorder()
	}
	// The span layer's seed stream is forked from the deployment seed, so
	// trace IDs never collide with any engine or workload RNG stream.
	if cfg.TraceSampleFraction > 0 {
		m.tracer = tracing.NewTracer(simclock.DeriveSeed(cfg.Seed^hashString("tracing")), cfg.TraceSampleFraction)
	}

	// Train per-instance-type prediction models first if requested.
	if cfg.Predictor == PredictorML {
		if err := m.trainModels(); err != nil {
			return nil, err
		}
	}

	// Build regions, controllers and client populations.
	names := make([]string, 0, len(cfg.Regions))
	for i, rs := range cfg.Regions {
		rng := simclock.NewRNG(cfg.Seed + uint64(i)*104729 + 13)
		region := cloudsim.NewRegion(rs.Region, rng)
		m.regions = append(m.regions, region)
		names = append(names, region.Name())

		// Stagger the initial ageing of the active VMs so their rejuvenation
		// points spread over time instead of arriving as a synchronised wave.
		if cfg.InitialAgeSpread > 0 {
			actives := region.ActiveVMs()
			for j, vm := range actives {
				vm.PreAge(cfg.InitialAgeSpread * float64(j) / float64(len(actives)))
			}
		}

		predictor, err := m.predictorFor(region)
		if err != nil {
			return nil, err
		}
		vmc, err := pcam.NewVMC(region, predictor, cfg.VMC)
		if err != nil {
			return nil, fmt.Errorf("acm: region %s: %w", region.Name(), err)
		}
		m.vmcs[region.Name()] = vmc

		// With the sharded event loop each shard gets its own population,
		// built in newEventLoop below; the serial engine keeps one population
		// per region.
		if cfg.EventWorkers == 0 {
			pop := workload.NewPopulation(workload.PopulationConfig{
				Region:        region.Name(),
				Clients:       rs.Clients,
				Mix:           rs.Mix,
				ThinkTimeMean: cfg.ThinkTime,
				Timeout:       cfg.RequestTimeout,
				RampUp:        cfg.ControlInterval / 2,
				Tracer:        m.tracer,
			}, simclock.NewRNG(cfg.Seed+uint64(i)*7919+101), m.entryDispatcher(region.Name()), m.metrics)
			m.populations[region.Name()] = pop

			if rs.SurgeClients > 0 && rs.SurgeAt > 0 {
				surge := workload.NewPopulation(workload.PopulationConfig{
					Region:        region.Name(),
					Clients:       rs.SurgeClients,
					Mix:           rs.Mix,
					ThinkTimeMean: cfg.ThinkTime,
					Timeout:       cfg.RequestTimeout,
					RampUp:        cfg.ControlInterval / 2,
					Tracer:        m.tracer,
				}, simclock.NewRNG(cfg.Seed+uint64(i)*7919+271), m.entryDispatcher(region.Name()), m.metrics)
				m.surges[region.Name()] = surge
				m.surgeAt[region.Name()] = rs.SurgeAt
			}
		}
	}
	m.regionNames = names
	m.regionIndex = map[string]int{}
	for i, name := range names {
		m.regionIndex[name] = i
	}

	// Global-traffic wiring: validate the global/fault configuration and
	// build the traffic director.  The per-lane global populations and
	// arrival streams are assembled with the event loop below; a serial
	// deployment (no GSLB) only ever carries region-pinned streams.
	if err := m.validateGlobal(); err != nil {
		return nil, err
	}
	if err := m.buildDirector(); err != nil {
		return nil, err
	}
	// The instrument families depend on the director/plane shape, so the
	// registry is assembled right after the global wiring.
	m.buildMetrics()
	if cfg.EventWorkers == 0 {
		if err := m.buildSerialArrivals(); err != nil {
			return nil, err
		}
		m.buildSerialCohorts()
	}

	// Overlay + leader election among the controllers.
	m.net = cfg.Overlay
	if m.net == nil {
		m.net = defaultOverlay(names)
	}
	members := make([]election.Member, 0, len(names))
	for _, r := range m.regions {
		members = append(members, election.Member{Name: r.Name(), Priority: len(r.VMs())})
	}
	cluster, err := election.NewCluster(m.net, members)
	if err != nil {
		return nil, fmt.Errorf("acm: leader election: %w", err)
	}
	m.cluster = cluster

	// Leader-side closed control loop.
	loop, err := core.NewLoop(names, cfg.Policy, cfg.Beta)
	if err != nil {
		return nil, fmt.Errorf("acm: control loop: %w", err)
	}
	loop.SetKeepHistory(false)
	m.loop = loop

	// Initial forward plan: process where you arrive.
	entry := m.entrySharesFromClients()
	plan, err := core.BuildForwardPlan(names, entry, entry)
	if err != nil {
		return nil, err
	}
	m.plan = plan

	// Assemble the sharded event loop last: it needs the regions, VMCs,
	// overlay and initial plan.  The control timeline becomes the Manager's
	// engine, so fault injection and the control-era ticker land on the
	// timeline that fires at epoch barriers.
	if cfg.EventWorkers > 0 {
		m.el = newEventLoop(m)
		m.eng = m.el.se.Control()
		if cfg.FlightRecorder {
			// The recorder is written only at epoch barriers and control
			// ticks, so attaching it never adds events or synchronisation to
			// the shard loops.
			m.flight = simclock.NewFlightRecorder(m.el.total)
			m.el.se.SetFlightRecorder(m.flight)
			for _, vmc := range m.vmcs {
				vmc.SetFlightRecorder(m.flight)
			}
		}
	}
	return m, nil
}

// defaultOverlay returns the paper overlay when the deployment uses (a subset
// of) the paper's region names, otherwise a fully connected mesh with uniform
// 20 ms links.
func defaultOverlay(names []string) *overlay.Network {
	paper := map[string]bool{"region1": true, "region2": true, "region3": true}
	allPaper := true
	for _, n := range names {
		if !paper[n] {
			allPaper = false
			break
		}
	}
	if allPaper {
		return overlay.PaperOverlay()
	}
	net := overlay.New()
	for i, a := range names {
		for _, b := range names[i+1:] {
			_ = net.AddLink(a, b, 20)
		}
	}
	return net
}

// trainModels runs the F2PM profiling + training pipeline once per distinct
// instance type in the deployment.
func (m *Manager) trainModels() error {
	types := map[string]cloudsim.InstanceType{}
	for _, rs := range m.cfg.Regions {
		types[rs.Region.Type.Name] = rs.Region.Type
	}
	names := make([]string, 0, len(types))
	for n := range types {
		names = append(names, n)
	}
	sort.Strings(names)
	for i, n := range names {
		pcfg := m.cfg.MLProfile
		pcfg.Instance = types[n]
		if pcfg.Seed == 0 {
			pcfg.Seed = m.cfg.Seed + 7000 + uint64(i)
		}
		model, _, err := f2pm.TrainFromProfile(pcfg, f2pm.DefaultConfig())
		if err != nil {
			return fmt.Errorf("acm: training predictor for %s: %w", n, err)
		}
		m.models[n] = model
	}
	return nil
}

// predictorFor returns the RTTF predictor for a region according to the
// configured mode.
func (m *Manager) predictorFor(region *cloudsim.Region) (pcam.RTTFPredictor, error) {
	switch m.cfg.Predictor {
	case PredictorOracle:
		return pcam.OraclePredictor{}, nil
	case PredictorML:
		model, ok := m.models[region.Config().Type.Name]
		if !ok {
			return nil, fmt.Errorf("acm: no trained model for instance type %s", region.Config().Type.Name)
		}
		return pcam.ModelPredictor{Model: model}, nil
	default:
		return nil, fmt.Errorf("acm: unknown predictor mode %q", m.cfg.Predictor)
	}
}

// entryDispatcher returns the workload.Dispatcher of one region's entry load
// balancer: it applies the global forward plan, forwarding the request over
// the overlay when the plan routes it to another region.
func (m *Manager) entryDispatcher(regionName string) workload.Dispatcher {
	rng := simclock.NewRNG(m.cfg.Seed ^ hashString(regionName))
	return workload.DispatcherFunc(func(eng *simclock.Engine, req *cloudsim.Request) {
		dest := m.plan.Destination(regionName, rng.Float64())
		if dest == regionName {
			m.localRequests++
			m.vmcs[dest].Submit(eng, req)
			return
		}
		m.forwardedRequests++
		req.Forwarded = true
		latMs := m.net.Latency(regionName, dest)
		if latMs != latMs || latMs > 1e6 { // NaN or unreachable: process locally
			m.vmcs[regionName].Submit(eng, req)
			return
		}
		oneWay := simclock.Duration(latMs / 1000)
		if req.Trace != nil {
			// Guarded so the detail string is only built for sampled requests.
			req.Trace.Span(tracing.SpanForward, eng.Now(), oneWay,
				fmt.Sprintf("%s->%s", regionName, dest))
		}
		// The response travels back over the overlay as well: shift the
		// client-visible completion by the return latency.
		if prev := req.OnDone; prev != nil {
			req.OnDone = func(o cloudsim.Outcome) {
				o.End = o.End.Add(oneWay)
				prev(o)
			}
		}
		eng.ScheduleFunc(oneWay, func(e *simclock.Engine) {
			m.vmcs[dest].Submit(e, req)
		})
	})
}

// hashString is a small FNV-style hash used to derive per-region RNG streams.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// entrySharesFromClients returns the per-region share of connected clients
// (cohort-compressed ones included), the best estimate of the entry
// distribution before any traffic is observed.
func (m *Manager) entrySharesFromClients() []float64 {
	out := make([]float64, len(m.cfg.Regions))
	for i, rs := range m.cfg.Regions {
		out[i] = float64(rs.Clients + rs.CohortClients)
	}
	return core.Normalize(out)
}

// buildSerialCohorts constructs the per-region cohort-compressed populations
// of a serial-engine deployment (the event loop builds per-shard cohorts in
// newEventLoop instead).  Runs after validateGlobal, so CohortClients and
// TracerFraction have been range-checked.
func (m *Manager) buildSerialCohorts() {
	for i, rs := range m.cfg.Regions {
		if rs.CohortClients <= 0 {
			continue
		}
		name := m.regionNames[i]
		m.cohorts = append(m.cohorts, workload.NewCohortPopulation(workload.CohortConfig{
			Region:         name,
			Clients:        rs.CohortClients,
			Mix:            rs.Mix,
			ThinkTimeMean:  m.cfg.ThinkTime,
			Tick:           m.cfg.CohortTick,
			MaxBatch:       m.cfg.CohortMaxBatch,
			TracerFraction: m.cfg.TracerFraction,
			Timeout:        m.cfg.RequestTimeout,
			RampUp:         m.cfg.ControlInterval / 2,
			IDPrefix:       name + "-tracer",
			Seed:           simclock.DeriveSeed(m.cfg.Seed^hashString("cohort"), uint64(i)),
			Tracer:         m.tracer,
		}, m.entryDispatcher(name), m.metrics))
	}
}

// Engine exposes the simulation engine (tests and examples schedule fault
// injection through it).
func (m *Manager) Engine() *simclock.Engine { return m.eng }

// Tracer returns the deployment's request-span tracer (nil unless
// TraceSampleFraction > 0).
func (m *Manager) Tracer() *tracing.Tracer { return m.tracer }

// FlightRecorder returns the engine flight recorder (nil unless
// Config.FlightRecorder is set on a sharded deployment).
func (m *Manager) FlightRecorder() *simclock.FlightRecorder { return m.flight }

// Recorder returns the experiment time-series recorder.
func (m *Manager) Recorder() *trace.Recorder { return m.recorder }

// Metrics returns the client-side workload metrics.  On the sharded event
// loop this merges the per-shard sinks in shard-index order (the fixed fold
// order of the determinism contract).
func (m *Manager) Metrics() *workload.Metrics { return m.currentMetrics() }

// currentMetrics returns the live metrics view for the active engine mode.
func (m *Manager) currentMetrics() *workload.Metrics {
	if m.el != nil {
		return m.el.mergedMetrics()
	}
	return m.metrics
}

// Overlay returns the controller overlay network.
func (m *Manager) Overlay() *overlay.Network { return m.net }

// Cluster returns the leader-election cluster.
func (m *Manager) Cluster() *election.Cluster { return m.cluster }

// Loop returns the leader-side control loop.
func (m *Manager) Loop() *core.Loop { return m.loop }

// Plan returns the currently installed forward plan.
func (m *Manager) Plan() *core.ForwardPlan { return m.plan }

// VMC returns the controller of the named region (nil when unknown).
func (m *Manager) VMC(region string) *pcam.VMC { return m.vmcs[region] }

// Regions returns the simulated regions.
func (m *Manager) Regions() []*cloudsim.Region { return m.regions }

// RegionNames returns the region names in configuration order.
func (m *Manager) RegionNames() []string { return append([]string(nil), m.regionNames...) }

// Eras returns the number of completed control eras.
func (m *Manager) Eras() uint64 { return m.eras }

// ForwardedRequests returns how many requests were forwarded to a region
// other than their entry region (the redirection overhead of Section VI-B).
func (m *Manager) ForwardedRequests() uint64 {
	if m.el != nil {
		_, forwarded := m.el.counters()
		return forwarded
	}
	return m.forwardedRequests
}

// LocalRequests returns how many requests were processed in their entry
// region.
func (m *Manager) LocalRequests() uint64 {
	if m.el != nil {
		local, _ := m.el.counters()
		return local
	}
	return m.localRequests
}

// ControlMessages returns the number of controller-to-controller messages
// exchanged by the control loop (RMTTF reports and plan installations routed
// over the overlay).
func (m *Manager) ControlMessages() uint64 { return m.controlMessages }

// Start launches the client populations, the per-region controllers and the
// global control loop.
func (m *Manager) Start() {
	if m.el != nil {
		m.el.start()
	} else {
		for _, name := range m.regionNames {
			m.vmcs[name].Start(m.eng)
			m.populations[name].Start(m.eng)
			if surge, ok := m.surges[name]; ok {
				surge := surge
				m.eng.ScheduleFunc(m.surgeAt[name], func(e *simclock.Engine) { surge.Start(e) })
			}
		}
		for _, gen := range m.arrivals {
			gen.Start(m.eng)
		}
		for _, c := range m.cohorts {
			c.Start(m.eng)
		}
	}
	m.startDirector()
	m.scheduleFaults()
	m.scheduleLinkFaults()
	m.schedulePartitionFaults()
	m.stopLoop = m.eng.Ticker(m.cfg.ControlInterval, func(eng *simclock.Engine) { m.controlEra(eng) })
}

// Stop halts the client populations and the controllers (pending events keep
// draining until the engine finishes).
func (m *Manager) Stop() {
	if m.el != nil {
		m.el.stop()
	} else {
		for _, name := range m.regionNames {
			m.populations[name].Stop()
			if surge, ok := m.surges[name]; ok {
				surge.Stop()
			}
			m.vmcs[name].Stop()
		}
		for _, gen := range m.arrivals {
			gen.Stop()
		}
		for _, c := range m.cohorts {
			c.Stop()
		}
	}
	if m.stopProbe != nil {
		m.stopProbe()
		m.stopProbe = nil
	}
	if m.stopGossip != nil {
		m.stopGossip()
		m.stopGossip = nil
	}
	if m.stopLoop != nil {
		m.stopLoop()
		m.stopLoop = nil
	}
}

// Run starts the deployment, executes the simulation for the given horizon
// and stops it.  It can be called once per Manager.
func (m *Manager) Run(horizon simclock.Duration) error {
	m.Start()
	var err error
	if m.el != nil {
		err = m.el.se.Run(horizon)
	} else {
		err = m.eng.Run(horizon)
	}
	m.Stop()
	if err != nil && err != simclock.ErrHorizonReached {
		return err
	}
	return nil
}

// controlEra executes one era of the global closed control loop: Monitor and
// Analyze happen inside the VMCs (they have already refreshed their RMTTF
// estimates on their own control ticks); here the leader collects the
// lastRMTTF of every reachable region, runs the policy, rebuilds the forward
// plan and installs it, and the recorder captures the series the figures
// plot.
func (m *Manager) controlEra(eng *simclock.Engine) {
	now := eng.Now().Seconds()
	leader, _ := m.cluster.GlobalLeader()
	if leader == "" {
		// No leader (fully partitioned): keep the previous plan.
		return
	}

	// Analyze: collect lastRMTTF_i from every VMC.  Unreachable regions keep
	// their previous smoothed value (the leader simply has no fresher data).
	last := make([]float64, len(m.regionNames))
	for i, name := range m.regionNames {
		vmc := m.vmcs[name]
		if name == leader || m.net.Reachable(name, leader) {
			last[i] = vmc.RMTTF()
			if name != leader {
				m.controlMessages++
			}
		} else {
			last[i] = m.loop.Aggregator().Current(name)
		}
		if last[i] <= 0 {
			// Before the first VMC tick: fall back to a capacity-based prior
			// so the very first plan is not degenerate.
			last[i] = m.regions[i].TrueRMTTF(1)
		}
	}

	// λ and entry shares measured over the last interval.
	met := m.currentMetrics()
	lambda, entry := m.intervalArrivals(met)

	res, err := m.loop.Step(last, lambda, entry)
	if err != nil {
		return
	}
	m.eras++

	// Execute: install the plan (one message per reachable slave).  On the
	// sharded event loop the snapshot every shard dispatches from is
	// republished here, at the barrier, while the shard loops are idle.
	m.plan = res.Plan
	if m.el != nil {
		m.el.installPlan(res.Plan)
	}
	for _, name := range m.regionNames {
		if name != leader && m.net.Reachable(leader, name) {
			m.controlMessages++
		}
	}

	// Record the series of Figures 3 and 4.
	respMean := m.intervalResponseTime(met)
	for i, name := range m.regionNames {
		m.recorder.Record("rmttf", name, now, res.SmoothedRMTTF[i])
		m.recorder.Record("fraction", name, now, res.Fractions[i])
		m.recorder.Record("active_vms", name, now, float64(m.vmcs[name].ActiveVMs()))
	}
	m.recorder.Record("response_time", "all_clients", now, respMean)
	m.recorder.Record("lambda", "global", now, lambda)
	m.recorder.Record("cross_region", "fraction", now, m.plan.CrossRegionFraction())

	// GSLB series: per-region health state and cumulative routed requests,
	// sampled on the same control-era grid as the paper series.  The routed
	// counts are what the global-failover golden pins the drain/failback
	// story on: the faulted region's series flattens during the outage while
	// the backup's keeps climbing.
	var states []gslb.HealthState
	var routed map[string]uint64
	if m.director != nil || m.plane != nil {
		if m.plane != nil {
			states = m.plane.OwnerStates()
		} else {
			states = m.director.States()
		}
		routed = m.GSLBRouted()
		for i, name := range m.regionNames {
			m.recorder.Record("gslb_health", name, now, float64(states[i]))
			m.recorder.Record("gslb_routed", name, now, float64(routed[name]))
		}
		// Gossip deployments additionally record the convergence series: the
		// maximum number of probe generations any replica's view lags the
		// region owner's, per era.  Flat at ~0 while connected; during a
		// partition it climbs by one per probe and collapses at heal — the
		// series the global-partition golden pins split-brain on.  Absent for
		// central directors, so pre-existing goldens keep their bytes.
		if m.plane != nil {
			m.recorder.Record("gossip_convergence", "max_divergence", now, float64(m.plane.MaxDivergence()))
		}
		// Latency-aware deployments additionally record the learned
		// per-lane round-trip estimates (milliseconds, "stream:region"
		// labels) — the series the cable-cut golden pins the learning
		// trajectory on.  Absent otherwise, so pre-existing goldens keep
		// their bytes.
		if m.director != nil && m.director.LatencyAware() {
			for s, sname := range m.director.Streams() {
				for r, rname := range m.regionNames {
					m.recorder.Record("gslb_rtt", sname+":"+rname, now, m.director.LatencyEstimateMs(s, r))
				}
			}
		}
	}

	// Mirror the era's state into the instrument registry — still at the
	// barrier, from the same merged views the recorder just captured.
	m.publishMetrics(met, res.SmoothedRMTTF, res.Fractions, lambda, respMean, states, routed)
}

// intervalArrivals returns the global request rate and per-region entry
// shares observed since the previous control era.  λ is measured from the
// all-clients issued counter, so globally attached populations and arrival
// streams count towards the rate the policies see.  The entry shares count
// exactly the traffic that rides the forward plan: each region's own
// browsers plus the arrival streams pinned to that region's entry load
// balancer (their metrics carry the stream's label, so their issued
// counters are folded into the pinned region here); director-routed
// traffic bypasses the plan and stays out of the shares.  For purely
// regional deployments every counter below is the same sum as before, so
// the accounting is byte-invisible there.
func (m *Manager) intervalArrivals(met *workload.Metrics) (lambda float64, entry []float64) {
	interval := m.cfg.ControlInterval.Seconds()
	regionNew := uint64(0)
	entry = make([]float64, len(m.regionNames))
	for i, name := range m.regionNames {
		iss := met.Issued(name)
		diff := iss - m.prevIssued[name]
		m.prevIssued[name] = iss
		entry[i] = float64(diff)
		regionNew += diff
	}
	for _, a := range m.cfg.Arrivals {
		if a.Region == "" {
			continue
		}
		iss := met.Issued(a.Name)
		diff := iss - m.prevIssued[a.Name]
		m.prevIssued[a.Name] = iss
		entry[m.regionIndex[a.Region]] += float64(diff)
		regionNew += diff
	}
	issuedAll := met.Issued("")
	totalNew := issuedAll - m.prevIssuedAll
	m.prevIssuedAll = issuedAll
	if regionNew == 0 {
		entry = m.entrySharesFromClients()
	} else {
		entry = core.Normalize(entry)
	}
	if totalNew == 0 {
		return 0, entry
	}
	return float64(totalNew) / interval, entry
}

// intervalResponseTime returns the mean client response time over the last
// control interval (falling back to the lifetime mean when no sample landed
// in the interval).  The interval mean is reconstructed from the latency
// sample count, not the completion counter: with cohort-compressed
// populations completions are batch-weighted while the latency series is fed
// only by individually simulated clients, and dividing one by the other
// would collapse the series.  Without cohorts the two counters are equal, so
// the arithmetic is unchanged.
func (m *Manager) intervalResponseTime(met *workload.Metrics) float64 {
	count := met.ResponseSamples("")
	mean := met.MeanResponseTime("")
	total := mean * float64(count)
	dCount := count - m.prevRespCount
	dTotal := total - m.prevRespTotal
	m.prevRespCount = count
	m.prevRespTotal = total
	if dCount == 0 {
		return mean
	}
	return dTotal / float64(dCount)
}

// InjectLinkFailure fails the overlay link between two controllers at the
// given simulated time and triggers a re-election (the overlay reroutes
// control traffic automatically).
func (m *Manager) InjectLinkFailure(at simclock.Duration, a, b string) {
	m.eng.ScheduleFunc(at, func(*simclock.Engine) {
		m.cluster.ReportLinkFailure(a, b)
	})
}

// InjectLinkRecovery restores the overlay link at the given time.
func (m *Manager) InjectLinkRecovery(at simclock.Duration, a, b string) {
	m.eng.ScheduleFunc(at, func(*simclock.Engine) {
		m.cluster.ReportLinkRecovery(a, b)
	})
}

// InjectControllerFailure marks a region's controller as failed at the given
// time: it stops participating in the election (a new leader is elected if it
// was leading) and becomes unreachable for RMTTF reports until recovered.
func (m *Manager) InjectControllerFailure(at simclock.Duration, region string) {
	m.eng.ScheduleFunc(at, func(*simclock.Engine) {
		m.cluster.ReportNodeFailure(region)
	})
}

// InjectControllerRecovery revives a failed controller at the given time.
func (m *Manager) InjectControllerRecovery(at simclock.Duration, region string) {
	m.eng.ScheduleFunc(at, func(*simclock.Engine) {
		m.cluster.ReportNodeRecovery(region)
	})
}

// RegionStats returns the per-region simulator statistics.
func (m *Manager) RegionStats() []cloudsim.Stats {
	out := make([]cloudsim.Stats, len(m.regions))
	for i, r := range m.regions {
		out[i] = r.Stats()
	}
	return out
}

// ShardStats returns the per-shard statistics of every sharded region
// (regions running a single shard are omitted), keyed by region name and
// ordered by shard index.  The entries carry "<region>/shard<i>" labels, so
// reports can show how evenly the engine shards share the pool.
func (m *Manager) ShardStats() map[string][]cloudsim.Stats {
	out := map[string][]cloudsim.Stats{}
	for _, r := range m.regions {
		if r.NumShards() > 1 {
			out[r.Name()] = r.ShardStats()
		}
	}
	return out
}

// VMCStats returns the per-region controller statistics keyed by region name.
func (m *Manager) VMCStats() map[string]pcam.Stats {
	out := map[string]pcam.Stats{}
	for name, vmc := range m.vmcs {
		out[name] = vmc.Stats()
	}
	return out
}
