package cloudsim

import (
	"fmt"
	"math"

	"repro/internal/features"
	"repro/internal/simclock"
	"repro/internal/tracing"
)

// VMState is the lifecycle state of a virtual machine, mirroring the states
// managed by the PCAM Virtual Machine Controller.
type VMState int

const (
	// StateStandby marks a healthy VM that is provisioned but not receiving
	// client requests.  PCAM activates standby VMs to take over from
	// about-to-fail active ones.
	StateStandby VMState = iota
	// StateActive marks a VM currently serving client requests.
	StateActive
	// StateRejuvenating marks a VM undergoing software rejuvenation (restart
	// of the server replica); it serves no requests until it returns to
	// standby.
	StateRejuvenating
	// StateFailed marks a VM that reached its failure point before being
	// rejuvenated (a crash or a sustained SLA violation).
	StateFailed
)

// String returns the state name.
func (s VMState) String() string {
	switch s {
	case StateStandby:
		return "STANDBY"
	case StateActive:
		return "ACTIVE"
	case StateRejuvenating:
		return "REJUVENATING"
	case StateFailed:
		return "FAILED"
	default:
		return fmt.Sprintf("VMState(%d)", int(s))
	}
}

// VMConfig bundles the knobs of a single VM.
type VMConfig struct {
	// ID is the unique VM identifier (e.g. "region1-vm03").
	ID string
	// Type is the instance type the VM runs on.
	Type InstanceType
	// Anomalies controls anomaly injection while serving requests.
	Anomalies AnomalyProfile
	// Failure defines the failure point.
	Failure FailurePoint
	// Rejuvenation defines rejuvenation and activation latencies.
	Rejuvenation RejuvenationModel
}

// VM is one simulated virtual machine hosting a server replica.  It is driven
// entirely by simclock events and is not safe for concurrent use (the
// simulation is single-threaded by design).
type VM struct {
	cfg VMConfig
	rng *simclock.RNG

	// shardIndex is the region shard this VM is owned by (0 in an unsharded
	// region); assigned at provisioning time, VMs never migrate.
	shardIndex int

	state       VMState
	activatedAt simclock.Time // time the VM last became ACTIVE
	bootedAt    simclock.Time // time the VM last finished rejuvenation (uptime epoch)

	// Anomaly accumulation.
	leakedMB      float64
	zombieThreads int

	// Service model.
	queue    []*Request
	inFlight int // requests currently in service (<= VCPUs)

	// Lifetime counters.
	served        uint64
	dropped       uint64
	anomalyEvents uint64
	crashes       uint64
	rejuvenations uint64
	busySeconds   float64 // accumulated service time, for CPU-time features

	// Interval counters, reset by Sample.
	intervalServed  uint64
	intervalRespSum float64 // seconds
	intervalAnomaly uint64
	intervalStart   simclock.Time
	respEWMA        float64 // smoothed response time in seconds, for the SLA clause
	respEWMAPrimed  bool

	// OnFailure, if set, is invoked when the VM reaches its failure point.
	OnFailure func(vm *VM, at simclock.Time)
	// OnRejuvenated, if set, is invoked when a rejuvenation completes and the
	// VM returns to STANDBY.
	OnRejuvenated func(vm *VM, at simclock.Time)
}

// NewVM builds a VM in the STANDBY state.
func NewVM(cfg VMConfig, rng *simclock.RNG) *VM {
	if cfg.Type.VCPUs <= 0 {
		cfg.Type.VCPUs = 1
	}
	if rng == nil {
		rng = simclock.NewRNG(1)
	}
	return &VM{cfg: cfg, rng: rng, state: StateStandby}
}

// ID returns the VM identifier.
func (vm *VM) ID() string { return vm.cfg.ID }

// Type returns the instance type.
func (vm *VM) Type() InstanceType { return vm.cfg.Type }

// Config returns the VM configuration.
func (vm *VM) Config() VMConfig { return vm.cfg }

// State returns the current lifecycle state.
func (vm *VM) State() VMState { return vm.state }

// ShardIndex returns the index of the region shard owning this VM (0 in an
// unsharded region).
func (vm *VM) ShardIndex() int { return vm.shardIndex }

// LeakedMB returns the memory currently pinned by leaks and zombie-thread
// stacks.
func (vm *VM) LeakedMB() float64 {
	return vm.leakedMB + float64(vm.zombieThreads)*vm.cfg.Anomalies.ThreadStackMB
}

// ZombieThreads returns the number of unterminated threads accumulated since
// the last rejuvenation.
func (vm *VM) ZombieThreads() int { return vm.zombieThreads }

// Served returns the number of requests completed over the VM's lifetime.
func (vm *VM) Served() uint64 { return vm.served }

// DroppedRequests returns the number of requests dropped (due to crashes or
// dispatch to a non-active VM) over the VM's lifetime.
func (vm *VM) DroppedRequests() uint64 { return vm.dropped }

// Crashes returns how many times the VM reached its failure point.
func (vm *VM) Crashes() uint64 { return vm.crashes }

// Rejuvenations returns how many rejuvenations completed.
func (vm *VM) Rejuvenations() uint64 { return vm.rejuvenations }

// QueueLength returns the number of requests queued or in service.
func (vm *VM) QueueLength() int { return len(vm.queue) + vm.inFlight }

// Uptime returns the time elapsed since the last rejuvenation (or since the
// beginning of the simulation for a never-rejuvenated VM).
func (vm *VM) Uptime(now simclock.Time) simclock.Duration { return now.Sub(vm.bootedAt) }

// memoryBudgetMB returns the leak budget before the failure point trips.
func (vm *VM) memoryBudgetMB() float64 { return vm.cfg.Failure.MemoryFraction * vm.cfg.Type.MemoryMB }

// threadBudget returns the zombie-thread budget before the failure point trips.
func (vm *VM) threadBudget() int {
	return int(vm.cfg.Failure.ThreadFraction * float64(vm.cfg.Type.MaxThreads))
}

// DegradationFactor returns the multiplicative slowdown of the service time
// caused by accumulated anomalies.  A healthy VM has factor 1; a VM close to
// its failure point is several times slower, which is what ultimately pushes
// the response time over the SLA.
func (vm *VM) DegradationFactor() float64 {
	memFrac := 0.0
	if b := vm.memoryBudgetMB(); b > 0 {
		memFrac = vm.LeakedMB() / b
	}
	thrFrac := 0.0
	if b := vm.threadBudget(); b > 0 {
		thrFrac = float64(vm.zombieThreads) / float64(b)
	}
	if memFrac > 1 {
		memFrac = 1
	}
	if thrFrac > 1 {
		thrFrac = 1
	}
	// Quadratic growth: mild at first, steep close to the failure point.
	return 1 + 2.5*memFrac*memFrac + 1.5*thrFrac*thrFrac
}

// HealthFraction returns the remaining fraction of the anomaly budget in
// [0,1]: 1 for a freshly rejuvenated VM, 0 at the failure point.  It is the
// simulator's ground truth of "how much life is left", used by tests and by
// the oracle predictor.
func (vm *VM) HealthFraction() float64 {
	memFrac, thrFrac := 0.0, 0.0
	if b := vm.memoryBudgetMB(); b > 0 {
		memFrac = vm.LeakedMB() / b
	}
	if b := vm.threadBudget(); b > 0 {
		thrFrac = float64(vm.zombieThreads) / float64(b)
	}
	worst := math.Max(memFrac, thrFrac)
	if worst > 1 {
		worst = 1
	}
	return 1 - worst
}

// TrueRTTF returns the simulator's ground-truth estimate of the remaining
// time to failure assuming the VM keeps serving ratePerSec requests per
// second.  It is what a perfect ML model would predict; the f2pm package
// trains models to approximate it from observable features only.
func (vm *VM) TrueRTTF(ratePerSec float64) float64 {
	if vm.state == StateFailed {
		return 0
	}
	if ratePerSec <= 0 {
		return math.Inf(1)
	}
	a := vm.cfg.Anomalies
	// Expected anomaly budget consumption per request.
	leakPerReq := a.LeakProbability * a.LeakSizeMB
	threadMemPerReq := a.ThreadProbability * a.ThreadStackMB
	memPerReq := leakPerReq + threadMemPerReq
	threadsPerReq := a.ThreadProbability

	remMem := vm.memoryBudgetMB() - vm.LeakedMB()
	remThr := float64(vm.threadBudget() - vm.zombieThreads)

	reqToMemFail := math.Inf(1)
	if memPerReq > 0 {
		reqToMemFail = remMem / memPerReq
	}
	reqToThrFail := math.Inf(1)
	if threadsPerReq > 0 {
		reqToThrFail = remThr / threadsPerReq
	}
	reqLeft := math.Min(reqToMemFail, reqToThrFail)
	if reqLeft <= 0 {
		return 0
	}
	return reqLeft / ratePerSec
}

// Activate transitions a STANDBY VM to ACTIVE after the configured activation
// latency.  It reports whether the transition was initiated.
func (vm *VM) Activate(eng *simclock.Engine) bool {
	if vm.state != StateStandby {
		return false
	}
	vm.state = StateActive
	vm.activatedAt = eng.Now().Add(vm.cfg.Rejuvenation.ActivateDuration)
	// Restart the feature-sampling interval so the first sample after
	// activation reports the rate observed since activation, not since the
	// beginning of the simulation.
	vm.intervalStart = eng.Now()
	vm.intervalServed = 0
	vm.intervalRespSum = 0
	vm.intervalAnomaly = 0
	return true
}

// Deactivate moves an ACTIVE VM back to STANDBY without clearing its anomaly
// state (used by the elasticity controller when shrinking a region).  Queued
// requests are allowed to drain: the VM stops accepting new requests
// immediately but completes the ones already dispatched.
func (vm *VM) Deactivate() bool {
	if vm.state != StateActive {
		return false
	}
	vm.state = StateStandby
	return true
}

// Rejuvenate starts a software rejuvenation: the VM stops serving, drops any
// queued requests, and after the configured duration returns to STANDBY with
// its anomaly state cleared.  It reports whether rejuvenation was initiated.
func (vm *VM) Rejuvenate(eng *simclock.Engine) bool {
	if vm.state == StateRejuvenating {
		return false
	}
	vm.failQueued(eng, "")
	vm.state = StateRejuvenating
	eng.ScheduleFunc(vm.cfg.Rejuvenation.RejuvenateDuration, func(e *simclock.Engine) {
		vm.completeRejuvenation(e.Now())
	})
	return true
}

// completeRejuvenation clears the anomaly state and returns the VM to STANDBY.
func (vm *VM) completeRejuvenation(now simclock.Time) {
	vm.leakedMB = 0
	vm.zombieThreads = 0
	vm.respEWMA = 0
	vm.respEWMAPrimed = false
	vm.state = StateStandby
	vm.bootedAt = now
	vm.intervalStart = now
	vm.intervalServed = 0
	vm.intervalRespSum = 0
	vm.intervalAnomaly = 0
	vm.rejuvenations++
	if vm.OnRejuvenated != nil {
		vm.OnRejuvenated(vm, now)
	}
}

// Dispatch hands a request to the VM.  It returns false (and completes the
// request as dropped) when the VM is not ACTIVE.
func (vm *VM) Dispatch(eng *simclock.Engine, req *Request) bool {
	if vm.state != StateActive {
		vm.dropped += req.Weight()
		req.finish(eng, Outcome{Request: req, VM: vm.cfg.ID, Start: eng.Now(), End: eng.Now(), Dropped: true})
		return false
	}
	if req.Trace != nil {
		// Guarded so the detail string is only built for sampled requests.
		req.Trace.Event(tracing.EventVMEnqueue, eng.Now(),
			fmt.Sprintf("vm=%s depth=%d", vm.cfg.ID, vm.QueueLength()))
	}
	vm.queue = append(vm.queue, req)
	vm.tryStartService(eng)
	return true
}

// tryStartService starts service for queued requests while vCPUs are free.
func (vm *VM) tryStartService(eng *simclock.Engine) {
	for vm.inFlight < vm.cfg.Type.VCPUs && len(vm.queue) > 0 {
		req := vm.queue[0]
		vm.queue = vm.queue[1:]
		vm.inFlight++
		start := eng.Now()
		st := vm.sampleServiceTime(req)
		eng.ScheduleFunc(st, func(e *simclock.Engine) {
			vm.completeService(e, req, start)
		})
	}
}

// sampleServiceTime draws the service time of a request given the VM's
// current degradation.
func (vm *VM) sampleServiceTime(req *Request) simclock.Duration {
	base := vm.cfg.Type.BaseServiceMs / 1000.0 // seconds on this instance type
	factor := req.ServiceFactor
	if factor <= 0 {
		factor = 1
	}
	mean := base * factor * vm.DegradationFactor()
	if k := req.Batch; k > 1 {
		// A cohort batch is k interactions served back to back: the batch's
		// service time is the sum of k exponential demands (Erlang), floored
		// at the same 5% of its total mean an individual request gets.
		st := vm.rng.Erlang(k, mean)
		if floor := mean * 0.05 * float64(k); st < floor {
			st = floor
		}
		return simclock.Duration(st)
	}
	// Exponentially distributed service demand around the mean keeps the
	// queueing behaviour realistic (M/M/c-like) without heavy tails that
	// would swamp the anomaly-driven signal.
	st := vm.rng.Exp(mean)
	if st < mean*0.05 {
		st = mean * 0.05
	}
	return simclock.Duration(st)
}

// completeService finishes one request: records metrics, injects anomalies,
// checks the failure point and pulls the next queued request.
func (vm *VM) completeService(eng *simclock.Engine, req *Request, start simclock.Time) {
	vm.inFlight--
	now := eng.Now()
	vm.busySeconds += now.Sub(start).Seconds()

	if vm.state == StateRejuvenating || vm.state == StateFailed {
		// The VM went down while this request was in service.
		vm.dropped += req.Weight()
		req.finish(eng, Outcome{Request: req, VM: vm.cfg.ID, Start: start, End: now, Dropped: true})
		return
	}

	vm.served += req.Weight()
	vm.intervalServed += req.Weight()
	resp := now.Sub(req.Arrival).Seconds()
	if k := req.Batch; k > 1 {
		// Per-interaction view of the batch: each of the k interactions
		// waited the same queue delay but occupied the server for 1/k of the
		// batch's service span.  Feeding the normalised value into the
		// response EWMA (and the interval mean, weighted by k) keeps the
		// SLA-failure clause and the ResponseTimeMs feature on the scale of
		// a single interaction.
		resp = start.Sub(req.Arrival).Seconds() + now.Sub(start).Seconds()/float64(k)
		vm.intervalRespSum += resp * float64(k)
	} else {
		vm.intervalRespSum += resp
	}
	const respBeta = 0.1
	if !vm.respEWMAPrimed {
		vm.respEWMA = resp
		vm.respEWMAPrimed = true
	} else {
		vm.respEWMA = (1-respBeta)*vm.respEWMA + respBeta*resp
	}

	vm.injectAnomalies(req.Batch)
	req.finish(eng, Outcome{Request: req, VM: vm.cfg.ID, Start: start, End: now})

	if vm.failurePointReached() {
		vm.fail(eng)
		return
	}
	vm.tryStartService(eng)
}

// injectAnomalies applies the per-request anomaly injection of the modified
// TPC-W benchmark.  A cohort batch of n interactions injects the aggregate:
// the number of leaking (resp. thread-leaking) interactions is binomial in n,
// and the leaked megabytes are the Erlang sum of that many individual leaks —
// exactly the distribution n individual requests would have produced, in two
// RNG draws instead of 2n.
func (vm *VM) injectAnomalies(batch int) {
	a := vm.cfg.Anomalies
	if batch > 1 {
		if leaks := vm.rng.Binomial(batch, a.LeakProbability); leaks > 0 {
			vm.leakedMB += vm.rng.Erlang(leaks, a.LeakSizeMB)
			vm.anomalyEvents += uint64(leaks)
			vm.intervalAnomaly += uint64(leaks)
		}
		if threads := vm.rng.Binomial(batch, a.ThreadProbability); threads > 0 {
			vm.zombieThreads += threads
			vm.anomalyEvents += uint64(threads)
			vm.intervalAnomaly += uint64(threads)
		}
		return
	}
	if vm.rng.Bool(a.LeakProbability) {
		vm.leakedMB += vm.rng.Exp(a.LeakSizeMB)
		vm.anomalyEvents++
		vm.intervalAnomaly++
	}
	if vm.rng.Bool(a.ThreadProbability) {
		vm.zombieThreads++
		vm.anomalyEvents++
		vm.intervalAnomaly++
	}
}

// failurePointReached checks the user-defined failure point.
func (vm *VM) failurePointReached() bool {
	if vm.LeakedMB() >= vm.memoryBudgetMB() {
		return true
	}
	if vm.zombieThreads >= vm.threadBudget() {
		return true
	}
	if sla := vm.cfg.Failure.ResponseTimeSLAMs; sla > 0 && vm.respEWMAPrimed {
		if vm.respEWMA*1000 >= sla*2 {
			// The smoothed response time is persistently at twice the SLA:
			// treat it as a failure even before the memory budget is gone.
			return true
		}
	}
	return false
}

// fail marks the VM as failed, drops in-flight work and notifies the owner.
func (vm *VM) fail(eng *simclock.Engine) {
	if vm.state == StateFailed {
		return
	}
	vm.state = StateFailed
	vm.crashes++
	vm.failQueued(eng, vm.cfg.ID)
	if vm.OnFailure != nil {
		vm.OnFailure(vm, eng.Now())
	}
}

// failQueued drops every queued (not yet in-service) request.
func (vm *VM) failQueued(eng *simclock.Engine, vmID string) {
	now := eng.Now()
	for _, q := range vm.queue {
		vm.dropped += q.Weight()
		q.finish(eng, Outcome{Request: q, VM: vmID, Start: now, End: now, Dropped: true})
	}
	vm.queue = nil
}

// PreAge loads the VM with an initial amount of accumulated anomalies,
// expressed as a fraction of its failure budget in [0,1).  Deployments use it
// to model server replicas that have already been running for a while when
// the experiment starts, so that their rejuvenation points are naturally
// staggered instead of all VMs ageing in lockstep.
func (vm *VM) PreAge(fraction float64) {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 0.95 {
		fraction = 0.95
	}
	vm.leakedMB = fraction * vm.memoryBudgetMB() * 0.9
	vm.zombieThreads = int(fraction * float64(vm.threadBudget()) * 0.5)
}

// RecoverFromFailure restarts a FAILED VM through the rejuvenation path
// (reactive recovery).  It reports whether recovery was initiated.
func (vm *VM) RecoverFromFailure(eng *simclock.Engine) bool {
	if vm.state != StateFailed {
		return false
	}
	return vm.Rejuvenate(eng)
}

// Sample produces the feature vector observable on this VM at the given time
// and resets the per-interval counters.  The vector contains the full F2PM
// feature set; measurement noise is added so the ML models face realistic
// inputs rather than exact simulator state.
func (vm *VM) Sample(now simclock.Time) features.Vector {
	v := features.NewVector(vm.cfg.ID, now.Seconds())
	intervalS := now.Sub(vm.intervalStart).Seconds()
	if intervalS <= 0 {
		intervalS = 1
	}
	rate := float64(vm.intervalServed) / intervalS
	meanResp := 0.0
	if vm.intervalServed > 0 {
		meanResp = vm.intervalRespSum / float64(vm.intervalServed)
	}
	anomalyRate := float64(vm.intervalAnomaly) / intervalS

	noise := func(x, rel float64) float64 {
		if x == 0 {
			return 0
		}
		return x * (1 + vm.rng.Normal(0, rel))
	}

	baseMem := 0.18 * vm.cfg.Type.MemoryMB // OS + idle server footprint
	used := baseMem + vm.LeakedMB()
	if used > vm.cfg.Type.MemoryMB {
		used = vm.cfg.Type.MemoryMB
	}
	swap := 0.0
	if over := vm.LeakedMB() - 0.55*vm.cfg.Type.MemoryMB; over > 0 {
		swap = over
	}
	util := float64(vm.inFlight) / float64(vm.cfg.Type.VCPUs)
	if util > 1 {
		util = 1
	}

	v.Set(features.MemUsedMB, noise(used, 0.02))
	v.Set(features.MemFreeMB, noise(math.Max(vm.cfg.Type.MemoryMB-used, 0), 0.02))
	v.Set(features.SwapUsedMB, noise(swap, 0.05))
	v.Set(features.HeapMB, noise(0.6*baseMem+vm.leakedMB, 0.03))
	v.Set(features.ThreadCount, noise(32+float64(vm.zombieThreads)+4*float64(vm.inFlight), 0.02))
	v.Set(features.ZombieThreads, float64(vm.zombieThreads))
	v.Set(features.CPUUtilization, math.Min(noise(0.1+0.8*util, 0.05), 1))
	v.Set(features.CPUTimeSec, vm.busySeconds)
	v.Set(features.DiskUsedMB, noise(0.3*vm.cfg.Type.DiskGB*1024+0.05*vm.LeakedMB(), 0.01))
	v.Set(features.NetConnections, noise(8+2*rate, 0.05))
	v.Set(features.RequestRate, noise(rate, 0.03))
	v.Set(features.ResponseTimeMs, noise(meanResp*1000, 0.03))
	v.Set(features.QueueLength, float64(vm.QueueLength()))
	v.Set(features.PageFaultRate, noise(5+30*swap/math.Max(vm.cfg.Type.MemoryMB, 1), 0.10))
	v.Set(features.ContextSwitches, noise(200+80*rate, 0.10))
	v.Set(features.UptimeSec, vm.Uptime(now).Seconds())
	v.Set(features.GCPauseMs, noise(2+40*vm.LeakedMB()/math.Max(vm.memoryBudgetMB(), 1), 0.15))
	v.Set(features.OpenFiles, noise(64+3*rate, 0.05))
	v.Set(features.SocketsTimeWait, noise(4*rate, 0.15))
	v.Set(features.AnomalyEventRate, anomalyRate)

	vm.intervalServed = 0
	vm.intervalRespSum = 0
	vm.intervalAnomaly = 0
	vm.intervalStart = now
	return v
}

// MeanResponseTime returns the smoothed response time in seconds observed by
// requests served on this VM (0 before any request completes).
func (vm *VM) MeanResponseTime() float64 { return vm.respEWMA }

// String summarises the VM for debugging.
func (vm *VM) String() string {
	return fmt.Sprintf("%s[%s %s leaked=%.0fMB zt=%d served=%d crashes=%d]",
		vm.cfg.ID, vm.cfg.Type.Name, vm.state, vm.LeakedMB(), vm.zombieThreads, vm.served, vm.crashes)
}
