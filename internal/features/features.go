// Package features defines the system-feature vectors collected from virtual
// machines, the feature database built by the F2PM monitoring agents, and the
// Remaining-Time-To-Failure (RTTF) labelling used to train the machine
// learning prediction models.
//
// In the paper a thin software client measures "a large set of system
// features, such as memory usage, CPU time, and swap space usage" on each
// monitored VM and ships them to a feature monitor agent, which builds a
// database for later use by the ML toolchain.  This package is that database.
package features

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Name identifies one monitored system feature.
type Name string

// The feature set collected from each VM.  It mirrors the kind of metrics
// F2PM gathers (memory, swap, CPU, threads, response time); the exact list is
// intentionally wider than what the models end up using, because part of the
// F2PM workflow is selecting the relevant subset via Lasso regularisation.
const (
	MemUsedMB        Name = "mem_used_mb"        // resident memory used by the server process
	MemFreeMB        Name = "mem_free_mb"        // free physical memory on the VM
	SwapUsedMB       Name = "swap_used_mb"       // swap space in use
	HeapMB           Name = "heap_mb"            // application heap footprint
	ThreadCount      Name = "thread_count"       // live threads in the server process
	ZombieThreads    Name = "zombie_threads"     // unterminated (leaked) threads
	CPUUtilization   Name = "cpu_utilization"    // [0,1] utilisation of the VM's vCPUs
	CPUTimeSec       Name = "cpu_time_s"         // cumulative CPU seconds consumed
	DiskUsedMB       Name = "disk_used_mb"       // virtual disk occupancy
	NetConnections   Name = "net_connections"    // open TCP connections
	RequestRate      Name = "request_rate"       // requests/second observed in the last interval
	ResponseTimeMs   Name = "response_time_ms"   // mean response time in the last interval
	QueueLength      Name = "queue_length"       // pending requests queued at the VM
	PageFaultRate    Name = "page_fault_rate"    // page faults/second
	ContextSwitches  Name = "context_switches"   // context switches/second
	UptimeSec        Name = "uptime_s"           // seconds since the last rejuvenation
	GCPauseMs        Name = "gc_pause_ms"        // garbage-collector pause time in the last interval
	OpenFiles        Name = "open_files"         // open file descriptors
	SocketsTimeWait  Name = "sockets_time_wait"  // sockets lingering in TIME_WAIT
	AnomalyEventRate Name = "anomaly_event_rate" // injected anomaly events/second (observable only in simulation)
)

// AllNames returns the canonical ordered list of feature names.  The order is
// stable so feature vectors can be flattened into ML design matrices
// deterministically.
func AllNames() []Name {
	return []Name{
		MemUsedMB, MemFreeMB, SwapUsedMB, HeapMB, ThreadCount, ZombieThreads,
		CPUUtilization, CPUTimeSec, DiskUsedMB, NetConnections, RequestRate,
		ResponseTimeMs, QueueLength, PageFaultRate, ContextSwitches, UptimeSec,
		GCPauseMs, OpenFiles, SocketsTimeWait, AnomalyEventRate,
	}
}

// Vector is one sample of all monitored features at a given time on a given
// VM.
type Vector struct {
	// TimeS is the simulated timestamp of the sample in seconds.
	TimeS float64
	// VM identifies the virtual machine the sample was taken from.
	VM string
	// Values maps feature names to measured values.
	Values map[Name]float64
}

// NewVector returns an empty vector for the given VM and time.
func NewVector(vm string, timeS float64) Vector {
	return Vector{TimeS: timeS, VM: vm, Values: map[Name]float64{}}
}

// Get returns the value of the named feature (0 when absent).
func (v Vector) Get(n Name) float64 { return v.Values[n] }

// Set stores the value of the named feature.
func (v Vector) Set(n Name, val float64) { v.Values[n] = val }

// Flatten returns the values of the requested features in order.
func (v Vector) Flatten(names []Name) []float64 {
	out := make([]float64, len(names))
	for i, n := range names {
		out[i] = v.Values[n]
	}
	return out
}

// Sample couples a feature vector with its RTTF label (the time remaining
// until the VM hits its failure point, in seconds).  Labelled samples are
// what the F2PM toolchain trains on.
type Sample struct {
	Vector Vector
	// RTTFSeconds is the labelled Remaining Time To Failure.
	RTTFSeconds float64
}

// Dataset is the feature database: a labelled collection of samples plus the
// ordered list of features used when flattening to a design matrix.
type Dataset struct {
	Features []Name
	Samples  []Sample
}

// NewDataset returns an empty dataset over the given features (AllNames when
// nil).
func NewDataset(feats []Name) *Dataset {
	if feats == nil {
		feats = AllNames()
	}
	return &Dataset{Features: append([]Name(nil), feats...)}
}

// Add appends a labelled sample.
func (d *Dataset) Add(s Sample) { d.Samples = append(d.Samples, s) }

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// Matrix flattens the dataset into a design matrix X (one row per sample, one
// column per feature) and the label vector y.
func (d *Dataset) Matrix() (x [][]float64, y []float64) {
	x = make([][]float64, len(d.Samples))
	y = make([]float64, len(d.Samples))
	for i, s := range d.Samples {
		x[i] = s.Vector.Flatten(d.Features)
		y[i] = s.RTTFSeconds
	}
	return x, y
}

// Project returns a copy of the dataset restricted to the given feature
// subset (used after Lasso feature selection).
func (d *Dataset) Project(feats []Name) *Dataset {
	out := NewDataset(feats)
	out.Samples = d.Samples
	return out
}

// Split partitions the dataset into a training and a test set, putting the
// first trainFrac of samples (per VM, in time order) into the training set.
// Splitting by time rather than randomly mirrors how F2PM operates: models
// are trained on an initial profiling phase and used later at runtime.
func (d *Dataset) Split(trainFrac float64) (train, test *Dataset) {
	if trainFrac <= 0 {
		trainFrac = 0.7
	}
	if trainFrac >= 1 {
		trainFrac = 0.9
	}
	train = NewDataset(d.Features)
	test = NewDataset(d.Features)

	// Group sample indices by VM, preserving time order.
	byVM := map[string][]int{}
	var vms []string
	for i, s := range d.Samples {
		if _, ok := byVM[s.Vector.VM]; !ok {
			vms = append(vms, s.Vector.VM)
		}
		byVM[s.Vector.VM] = append(byVM[s.Vector.VM], i)
	}
	sort.Strings(vms)
	for _, vm := range vms {
		idx := byVM[vm]
		sort.Slice(idx, func(a, b int) bool {
			return d.Samples[idx[a]].Vector.TimeS < d.Samples[idx[b]].Vector.TimeS
		})
		cut := int(float64(len(idx)) * trainFrac)
		for j, i := range idx {
			if j < cut {
				train.Add(d.Samples[i])
			} else {
				test.Add(d.Samples[i])
			}
		}
	}
	return train, test
}

// VMs returns the distinct VM identifiers present in the dataset, sorted.
func (d *Dataset) VMs() []string {
	set := map[string]struct{}{}
	for _, s := range d.Samples {
		set[s.Vector.VM] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for vm := range set {
		out = append(out, vm)
	}
	sort.Strings(out)
	return out
}

// WriteCSV serialises the dataset as CSV: time, vm, features..., rttf.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"time_s", "vm"}
	for _, f := range d.Features {
		header = append(header, string(f))
	}
	header = append(header, "rttf_s")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range d.Samples {
		row := []string{
			strconv.FormatFloat(s.Vector.TimeS, 'g', 10, 64),
			s.Vector.VM,
		}
		for _, f := range d.Features {
			row = append(row, strconv.FormatFloat(s.Vector.Get(f), 'g', 10, 64))
		}
		row = append(row, strconv.FormatFloat(s.RTTFSeconds, 'g', 10, 64))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset previously written with WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) < 1 {
		return nil, fmt.Errorf("features: empty CSV")
	}
	header := rows[0]
	if len(header) < 3 || header[0] != "time_s" || header[1] != "vm" || header[len(header)-1] != "rttf_s" {
		return nil, fmt.Errorf("features: malformed header %v", header)
	}
	feats := make([]Name, 0, len(header)-3)
	for _, h := range header[2 : len(header)-1] {
		feats = append(feats, Name(h))
	}
	d := NewDataset(feats)
	for li, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("features: row %d has %d columns, want %d", li+2, len(row), len(header))
		}
		t, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("features: row %d time: %w", li+2, err)
		}
		v := NewVector(row[1], t)
		for fi, f := range feats {
			val, err := strconv.ParseFloat(row[2+fi], 64)
			if err != nil {
				return nil, fmt.Errorf("features: row %d feature %s: %w", li+2, f, err)
			}
			v.Set(f, val)
		}
		rttf, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			return nil, fmt.Errorf("features: row %d rttf: %w", li+2, err)
		}
		d.Add(Sample{Vector: v, RTTFSeconds: rttf})
	}
	return d, nil
}

// LabelRTTF assigns RTTF labels to an ordered sequence of per-VM feature
// vectors given the failure times of each VM.  Samples taken after the last
// known failure of their VM are dropped (their RTTF is unknown), mirroring how
// F2PM constructs its training database from observed failure/rejuvenation
// episodes.
func LabelRTTF(vectors []Vector, failures map[string][]float64) []Sample {
	// Sort each VM's failure times.
	sortedFailures := map[string][]float64{}
	for vm, ts := range failures {
		cp := append([]float64(nil), ts...)
		sort.Float64s(cp)
		sortedFailures[vm] = cp
	}
	var out []Sample
	for _, v := range vectors {
		fts := sortedFailures[v.VM]
		idx := sort.SearchFloat64s(fts, v.TimeS)
		if idx >= len(fts) {
			continue // no later failure observed: label unknown
		}
		out = append(out, Sample{Vector: v, RTTFSeconds: fts[idx] - v.TimeS})
	}
	return out
}
