// Package repro's root benchmark harness regenerates every evaluation
// artefact of the paper as a testing.B benchmark, so that
//
//	go test -bench=. -benchmem
//
// re-runs the complete evaluation: one benchmark per figure row (Figure 3 and
// Figure 4 under each of the three policies), one per ablation the
// reproduction adds, and one for the F2PM model-training toolchain (the model
// comparison the paper bases its REP-Tree choice on).  The reported
// ns/op is the wall-clock cost of simulating the full experiment; the
// benchmark bodies also assert the qualitative claims so a regression in the
// reproduced behaviour fails the run rather than silently changing shape.
package repro

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/f2pm"
	"repro/internal/simclock"
)

// benchHorizon keeps the per-iteration simulation long enough to reach steady
// state while keeping `go test -bench=.` runs affordable.
const benchHorizon = 75 * simclock.Minute

// runScenarioBench runs one scenario under one policy per benchmark
// iteration.
func runScenarioBench(b *testing.B, sc experiment.Scenario, policyKey string) {
	b.Helper()
	np, err := experiment.PolicyByKey(policyKey)
	if err != nil {
		b.Fatal(err)
	}
	sc.Horizon = benchHorizon
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(sc, np)
		if err != nil {
			b.Fatal(err)
		}
		if res.Eras == 0 || res.MeanResponseTime <= 0 {
			b.Fatalf("degenerate run: %+v", res)
		}
		b.ReportMetric(res.RMTTFConvergence.RelativeSpread, "rmttf-spread")
		b.ReportMetric(res.MeanResponseTime*1000, "mean-rt-ms")
	}
}

// Figure 3: two heterogeneous regions (Ireland + Munich), Section VI-B.

func BenchmarkFigure3_Policy1(b *testing.B) {
	runScenarioBench(b, experiment.Figure3Scenario(42), "policy1")
}

func BenchmarkFigure3_Policy2(b *testing.B) {
	runScenarioBench(b, experiment.Figure3Scenario(42), "policy2")
}

func BenchmarkFigure3_Policy3(b *testing.B) {
	runScenarioBench(b, experiment.Figure3Scenario(42), "policy3")
}

// Figure 4: all three regions (Ireland + Frankfurt + Munich), Section VI-B.

func BenchmarkFigure4_Policy1(b *testing.B) {
	runScenarioBench(b, experiment.Figure4Scenario(42), "policy1")
}

func BenchmarkFigure4_Policy2(b *testing.B) {
	runScenarioBench(b, experiment.Figure4Scenario(42), "policy2")
}

func BenchmarkFigure4_Policy3(b *testing.B) {
	runScenarioBench(b, experiment.Figure4Scenario(42), "policy3")
}

// BenchmarkFigure3_QualitativeClaims runs the whole Figure 3 policy
// comparison once per iteration and fails if the Section VI-B claims no
// longer reproduce.
func BenchmarkFigure3_QualitativeClaims(b *testing.B) {
	sc := experiment.Figure3Scenario(42)
	sc.Horizon = benchHorizon
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, err := experiment.RunAllPolicies(sc)
		if err != nil {
			b.Fatal(err)
		}
		claims := experiment.EvaluateClaims(results)
		if !claims.Policy2Converges || !claims.AllPoliciesMeetSLA || claims.Policy1DoesNotConverge == false {
			b.Fatalf("qualitative claims regressed:\n%s\n%s", experiment.SummaryTable(results), claims)
		}
	}
}

// Parallel orchestration: the full figure suite (Figure 3 + Figure 4 under
// every policy, plus a beta sweep) as one job matrix, run sequentially and on
// the worker pool.  The two produce byte-identical results (the determinism
// tests in internal/experiment assert it); the ratio of their ns/op is the
// wall-clock speedup of the parallel runner on this machine's cores.

// figureMatrixJobs expands the Figure 3 + Figure 4 + beta-sweep matrix.
func figureMatrixJobs(b *testing.B) []experiment.Job {
	b.Helper()
	jobs, err := experiment.Matrix{
		Scenarios: []string{"figure3", "figure4"},
		Policies:  []string{"policy1", "policy2", "policy3"},
		BaseSeed:  42,
		Horizon:   benchHorizon,
	}.Expand()
	if err != nil {
		b.Fatal(err)
	}
	betaJobs, err := experiment.Matrix{
		Scenarios: []string{"figure3"},
		Policies:  []string{"policy2"},
		Betas:     []float64{0.25, 0.5, 0.75},
		BaseSeed:  42,
		Horizon:   benchHorizon,
	}.Expand()
	if err != nil {
		b.Fatal(err)
	}
	for _, j := range betaJobs {
		j.Index = len(jobs)
		jobs = append(jobs, j)
	}
	return jobs
}

func runMatrixBench(b *testing.B, workers int) {
	jobs := figureMatrixJobs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := experiment.RunParallel(context.Background(), jobs, experiment.Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if err := experiment.FirstError(results); err != nil {
			b.Fatal(err)
		}
		for _, jr := range results {
			if jr.Result.Eras == 0 {
				b.Fatalf("degenerate run: %s/%s", jr.Job.Scenario.Name, jr.Job.Policy.Key)
			}
		}
	}
	b.ReportMetric(float64(len(jobs)), "jobs")
	b.ReportMetric(float64(workers), "workers")
}

// BenchmarkMatrix_Sequential pins the sequential baseline: the whole matrix on
// a single worker.
func BenchmarkMatrix_Sequential(b *testing.B) { runMatrixBench(b, 1) }

// BenchmarkMatrix_Parallel runs the same matrix with one worker per CPU.  On a
// multi-core machine ns/op drops roughly linearly with core count (≥ 2× on 4
// cores); on a single-core machine it matches the sequential baseline.
func BenchmarkMatrix_Parallel(b *testing.B) { runMatrixBench(b, runtime.GOMAXPROCS(0)) }

// E4: the F2PM model-training toolchain (profiling + Lasso selection + the
// six model families + ranking), which backs the paper's REP-Tree choice.

func BenchmarkMLTraining_Toolchain(b *testing.B) {
	pcfg := f2pm.ProfileConfig{
		Seed:           7,
		Instance:       cloudsim.PrivateVM,
		VMs:            3,
		RatePerVM:      8,
		SampleInterval: 30 * simclock.Second,
		TargetFailures: 8,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		model, report, err := f2pm.TrainFromProfile(pcfg, f2pm.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if model.Name != "REPTree" || len(report.Scores) != 6 {
			b.Fatalf("unexpected toolchain outcome: model=%s scores=%d", model.Name, len(report.Scores))
		}
		b.ReportMetric(report.ChosenMetrics.RMSE, "reptree-rmse-s")
	}
}

// E5 ablations: design-choice sweeps called out in DESIGN.md.

// BenchmarkAblation_BetaSweep sweeps the smoothing factor β of equation (1)
// under Policy 2.
func BenchmarkAblation_BetaSweep(b *testing.B) {
	sc := experiment.Figure3Scenario(42)
	sc.Horizon = 45 * simclock.Minute
	np, _ := experiment.PolicyByKey("policy2")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := experiment.BetaSweep(sc, np, []float64{0.25, 0.75})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 2 {
			b.Fatalf("expected 2 sweep points, got %d", len(pts))
		}
	}
}

// BenchmarkAblation_ExplorationK sweeps the scaling factor k of Policy 3.
func BenchmarkAblation_ExplorationK(b *testing.B) {
	sc := experiment.Figure3Scenario(42)
	sc.Horizon = 45 * simclock.Minute
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := experiment.ExplorationKSweep(sc, []float64{0.75, 1.25})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 2 {
			b.Fatalf("expected 2 sweep points, got %d", len(pts))
		}
	}
}

// BenchmarkAblation_Baselines compares Policy 2 against the uniform and
// static baselines.
func BenchmarkAblation_Baselines(b *testing.B) {
	sc := experiment.Figure3Scenario(42)
	sc.Horizon = 45 * simclock.Minute
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiment.BaselineComparison(sc)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != 3 {
			b.Fatalf("expected 3 baseline results, got %d", len(res))
		}
	}
}

// BenchmarkAblation_Homogeneous runs Policy 1 on three identical regions (the
// environment the paper says sensible routing is suited to).
func BenchmarkAblation_Homogeneous(b *testing.B) {
	sc := experiment.HomogeneousScenario(42)
	sc.Horizon = 45 * simclock.Minute
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(sc, experiment.NamedPolicy{
			Key: "policy1", Label: "Policy 1 (sensible routing)", Policy: core.SensibleRouting{}})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RMTTFConvergence.RelativeSpread, "rmttf-spread")
	}
}

// BenchmarkAblation_Elasticity runs the ADDVMS elasticity scenario: an
// under-provisioned region absorbs a 3× client surge by activating and
// provisioning VMs (Section V, Algorithm 3).
func BenchmarkAblation_Elasticity(b *testing.B) {
	np, _ := experiment.PolicyByKey("policy2")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(experiment.ElasticityScenario(11), np)
		if err != nil {
			b.Fatal(err)
		}
		if res.TailResponseTime >= 1.0 {
			b.Fatalf("elasticity failed to keep the tail response time under the SLA: %v", res.TailResponseTime)
		}
		b.ReportMetric(res.TailResponseTime*1000, "tail-rt-ms")
	}
}

// BenchmarkAblation_MLPredictor runs the Figure 3 scenario with the trained
// F2PM predictor instead of the oracle, measuring the cost of the full
// profiling + training + ML-driven control pipeline.
func BenchmarkAblation_MLPredictor(b *testing.B) {
	sc := experiment.Figure3Scenario(42)
	sc.Horizon = 45 * simclock.Minute
	np, _ := experiment.PolicyByKey("policy2")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiment.PredictorComparison(sc, np)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != 2 {
			b.Fatalf("expected oracle and ml results, got %d", len(res))
		}
	}
}
