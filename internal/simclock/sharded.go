package simclock

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the parallel event loop: a ShardedEngine promotes each engine
// shard to its own sub-Engine with a private event queue and RNG stream, and
// runs the N shard loops on goroutines in lockstep epochs.
//
// Events that stay shard-local (an arrival dispatched to a VM of the shard,
// its service start, its completion, a rejuvenation timer of a shard-owned
// VM) execute fully in parallel: each shard's loop pops its own queue in
// (time, seq) order exactly like the serial engine, and because shards own
// disjoint state and disjoint RNG streams, the result of an epoch is
// independent of how the shard goroutines interleave.
//
// Effects that cross shards — a standby promotion on another shard, an
// elasticity resize, a controller-ordered rejuvenation, a request forwarded
// to another region's shard, a completion travelling back to the issuing
// client's shard — must not touch the foreign shard directly.  They are
// posted to the destination shard's *mailbox* and drained at the next epoch
// barrier, where exactly one goroutine runs.  Each (source, destination)
// lane is appended by a single goroutine (the source shard's loop) and the
// barrier folds destinations in shard-index order, each destination's lanes
// in (source shard index, post sequence) order — a fixed (epoch, shard
// index, source, sequence) total order, so delivery is byte-identical for
// every worker count and every GOMAXPROCS.
//
// Alongside the shards runs one *control* timeline: an ordinary Engine whose
// events fire only at epoch barriers, serially, with exclusive access to
// every shard.  Periodic controllers (the VMC control tick, the leader's
// control era) live there: the epoch end is clamped to the next control
// event's timestamp, so control events fire at their exact scheduled times —
// only cross-shard mailbox traffic is quantised to epoch boundaries.

const (
	// DefaultEpoch is the lockstep epoch width used when none is configured:
	// long enough to amortise the barrier, short enough that mailbox-deferred
	// cross-shard effects stay small against the think times and control
	// intervals of the simulated system.
	DefaultEpoch = 100 * Millisecond
)

// post is one deferred cross-shard effect.
type post struct {
	fn func(*Engine)
}

// ShardedEngine coordinates N sub-engines plus a control timeline.
type ShardedEngine struct {
	shards  []*Engine
	control *Engine
	epoch   Duration
	workers int
	now     Time

	// outbox[src][dst] is the mailbox lane src appends to for dst.  src and
	// dst range over the shards plus the control lane (index len(shards)).
	// During a shard phase, lane [src][*] is appended only by shard src's
	// goroutine; at the barrier exactly one goroutine drains and appends.
	outbox [][][]post

	// inShardPhase is set while the shard loops run on goroutines; together
	// with each sub-engine's executing flag it powers the cross-shard
	// scheduling guard in Engine.ScheduleAt.
	inShardPhase atomic.Bool

	drainedPosts uint64

	// flight, when set, records per-epoch per-shard accounting at each
	// barrier (flight.go).  Reads and writes happen only in the barrier
	// context, so the recorder needs no synchronisation.
	flight *FlightRecorder
}

// NewShardedEngine builds n sub-engines with RNG streams derived from seed
// (shard i gets DeriveSeed(seed, i); the control engine gets DeriveSeed(seed,
// n)), a lockstep epoch width (DefaultEpoch when epoch <= 0) and a worker
// count for the shard phase (GOMAXPROCS when workers <= 0; 1 runs the shard
// loops inline — the same epochal semantics with zero goroutines).
func NewShardedEngine(n int, seed uint64, epoch Duration, workers int) *ShardedEngine {
	if n <= 0 {
		panic("simclock: ShardedEngine needs at least one shard")
	}
	if epoch <= 0 {
		epoch = DefaultEpoch
	}
	se := &ShardedEngine{epoch: epoch, workers: workers}
	se.shards = make([]*Engine, n)
	for i := range se.shards {
		se.shards[i] = NewEngine(DeriveSeed(seed, uint64(i)))
		se.shards[i].shardIndex = i
		se.shards[i].cluster = se
	}
	se.control = NewEngine(DeriveSeed(seed, uint64(n)))
	se.control.shardIndex = n
	se.control.cluster = se
	lanes := n + 1
	se.outbox = make([][][]post, lanes)
	for i := range se.outbox {
		se.outbox[i] = make([][]post, lanes)
	}
	return se
}

// NumShards returns the number of sub-engines (the control timeline not
// included).
func (se *ShardedEngine) NumShards() int { return len(se.shards) }

// Shard returns the i-th sub-engine.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// Control returns the control timeline: events scheduled here fire at epoch
// barriers — at their exact timestamps — with exclusive access to all shards.
func (se *ShardedEngine) Control() *Engine { return se.control }

// Now returns the lockstep simulated time (the end of the last completed
// epoch).
func (se *ShardedEngine) Now() Time { return se.now }

// Epoch returns the configured epoch width.
func (se *ShardedEngine) Epoch() Duration { return se.epoch }

// DrainedPosts returns the number of mailbox posts delivered so far.
func (se *ShardedEngine) DrainedPosts() uint64 { return se.drainedPosts }

// SetFlightRecorder attaches a flight recorder; Run then records every
// epoch's per-shard fired/busy/idle accounting and every barrier's mailbox
// deliveries into it.  Attach before Run; nil detaches.
func (se *ShardedEngine) SetFlightRecorder(fr *FlightRecorder) { se.flight = fr }

// FlightRecorder returns the attached flight recorder (nil when none).
func (se *ShardedEngine) FlightRecorder() *FlightRecorder { return se.flight }

// Fired returns the total number of events executed across the shards and
// the control timeline.
func (se *ShardedEngine) Fired() uint64 {
	total := se.control.Fired()
	for _, sh := range se.shards {
		total += sh.Fired()
	}
	return total
}

// LaneOf returns the mailbox lane index of an engine owned by this
// ShardedEngine: the shard index for a sub-engine, NumShards() for the
// control timeline.  It panics for a foreign engine — posting on behalf of
// an engine outside the cluster would break the single-writer lane contract.
func (se *ShardedEngine) LaneOf(e *Engine) int {
	if e == nil || e.cluster != se {
		panic("simclock: LaneOf on an engine not owned by this ShardedEngine")
	}
	return e.shardIndex
}

// Post defers fn to the next epoch barrier, where it runs with the dst
// shard's engine (dst == NumShards() addresses the control timeline).  from
// must be the engine whose event handler (or barrier context) is calling —
// it identifies the source lane, which is what makes posting lock-free
// during the shard phase and delivery order deterministic: the barrier
// visits destinations in shard-index order and drains each destination's
// lanes in (source shard index, post sequence) order.
func (se *ShardedEngine) Post(from *Engine, dst int, fn func(*Engine)) {
	if dst < 0 || dst > len(se.shards) {
		panic(fmt.Sprintf("simclock: Post to unknown shard %d (have %d shards + control)", dst, len(se.shards)))
	}
	if fn == nil {
		panic("simclock: Post with nil fn")
	}
	src := se.LaneOf(from)
	se.outbox[src][dst] = append(se.outbox[src][dst], post{fn: fn})
}

// PostControl defers fn to the next epoch barrier on the control timeline,
// where it runs with the control engine and exclusive access to all shards.
func (se *ShardedEngine) PostControl(from *Engine, fn func(*Engine)) {
	se.Post(from, len(se.shards), fn)
}

// engineFor maps a lane index back to its engine.
func (se *ShardedEngine) engineFor(lane int) *Engine {
	if lane == len(se.shards) {
		return se.control
	}
	return se.shards[lane]
}

// pendingPosts reports whether any mailbox lane holds undelivered posts.
func (se *ShardedEngine) pendingPosts() bool {
	for _, row := range se.outbox {
		for _, lane := range row {
			if len(lane) > 0 {
				return true
			}
		}
	}
	return false
}

// drain delivers every mailbox post accumulated up to this barrier.  Lanes
// are folded destination-major, source-minor, preserving per-lane append
// order — the (epoch, destination shard, source shard, sequence) delivery
// order of the determinism contract.  A handler that posts again appends to
// a fresh lane:
// posts to a destination not yet folded at this barrier are delivered in the
// same pass (the fold is serial, so this stays deterministic); posts to an
// already-folded destination wait for the next barrier.
func (se *ShardedEngine) drain() {
	lanes := len(se.shards) + 1
	for dst := 0; dst < lanes; dst++ {
		target := se.engineFor(dst)
		for src := 0; src < lanes; src++ {
			lane := se.outbox[src][dst]
			if len(lane) == 0 {
				continue
			}
			se.outbox[src][dst] = nil
			for _, p := range lane {
				p.fn(target)
				se.drainedPosts++
			}
		}
	}
}

// shardPool is the persistent worker pool of one Run: a lockstep run crosses
// thousands of epoch barriers, so spawning fresh goroutines per epoch (as
// ForEach does) would pay the spawn cost at every barrier.  The pool's
// workers live for the whole run and pull shard indices off a channel —
// work-stealing, like ForEach — with a WaitGroup as the per-epoch barrier.
type shardPool struct {
	se   *ShardedEngine
	work chan int
	wg   sync.WaitGroup
	end  Time // epoch end; written before the sends of an epoch, read by workers after the receive
}

func newShardPool(se *ShardedEngine, workers int) *shardPool {
	p := &shardPool{se: se, work: make(chan int, len(se.shards))}
	for w := 0; w < workers; w++ {
		go func() {
			for i := range p.work {
				p.se.shards[i].runEpoch(p.end)
				p.wg.Done()
			}
		}()
	}
	return p
}

// runEpoch fans one epoch out to the pool and blocks until every shard's
// loop has reached tEnd.
func (p *shardPool) runEpoch(tEnd Time) {
	p.end = tEnd
	p.wg.Add(len(p.se.shards))
	for i := range p.se.shards {
		p.work <- i
	}
	p.wg.Wait()
}

func (p *shardPool) close() { close(p.work) }

// Run executes the lockstep epoch loop until the horizon: each epoch runs
// every shard's local queue up to the epoch end on up to the configured
// number of goroutines (a persistent pool, spawned once per Run), then — at
// the barrier — drains the mailboxes and fires the control events that are
// due.  The epoch end is clamped to the next control event's timestamp, so
// control events never fire late.  Like Engine.Run it returns
// ErrHorizonReached when live events remain beyond the horizon, and nil when
// the system drained.
func (se *ShardedEngine) Run(horizon Duration) error {
	h := Time(horizon)
	if math.IsInf(float64(h), 1) {
		panic("simclock: ShardedEngine.Run needs a finite horizon")
	}
	workers := se.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(se.shards) {
		workers = len(se.shards)
	}
	var pool *shardPool
	if workers > 1 {
		pool = newShardPool(se, workers)
		defer pool.close()
	}
	// Flight-recorder scratch: cumulative counters sampled before each epoch
	// so the barrier can record per-epoch deltas.
	var prevFired []uint64
	var prevDrained uint64
	if se.flight != nil {
		prevFired = make([]uint64, len(se.shards)+1)
		for i, sh := range se.shards {
			prevFired[i] = sh.Fired()
		}
		prevFired[len(se.shards)] = se.control.Fired()
		prevDrained = se.drainedPosts
	}
	for se.now < h {
		tEnd := se.now.Add(se.epoch)
		if next, ok := se.control.NextEventTime(); ok && next < tEnd {
			tEnd = next
		}
		if tEnd > h {
			tEnd = h
		}

		// Shard phase: every sub-engine runs its own queue up to tEnd.  The
		// loops never touch each other's state; cross-shard effects go
		// through Post.
		se.inShardPhase.Store(true)
		if pool != nil {
			pool.runEpoch(tEnd)
		} else {
			for i := range se.shards {
				se.shards[i].runEpoch(tEnd)
			}
		}
		se.inShardPhase.Store(false)

		// Barrier: exactly one goroutine delivers the epoch's cross-shard
		// posts in (source shard, sequence) order, then fires the control
		// events due at tEnd.  The control clock advances to the barrier
		// first, so control-lane handlers observe the same Now() as the
		// shard-lane ones (every engine sits at tEnd during the drain).
		if se.control.now < tEnd {
			se.control.now = tEnd
		}
		epochStart := se.now
		se.drain()
		se.control.runEpoch(tEnd)
		if se.flight != nil {
			for i, sh := range se.shards {
				se.flight.recordEpoch(i, epochStart, tEnd, sh.LastEventAt(), sh.Fired()-prevFired[i], 0)
				prevFired[i] = sh.Fired()
			}
			ctl := len(se.shards)
			se.flight.recordEpoch(ctl, epochStart, tEnd, se.control.LastEventAt(),
				se.control.Fired()-prevFired[ctl], se.drainedPosts-prevDrained)
			prevFired[ctl] = se.control.Fired()
			prevDrained = se.drainedPosts
			se.flight.epochDone()
		}
		se.now = tEnd
	}
	for _, sh := range se.shards {
		if sh.hasLiveEvents() {
			return ErrHorizonReached
		}
	}
	if se.control.hasLiveEvents() || se.pendingPosts() {
		return ErrHorizonReached
	}
	return nil
}
