// Event-loop-per-shard support for the VMC: when the deployment runs on a
// simclock.ShardedEngine, every region shard owns a private sub-engine and
// services its arrivals, completions and rejuvenation timers in parallel with
// the other shards.  The VMC's job splits accordingly:
//
//   - Request dispatch becomes shard-local (SubmitShard): the client
//     population attached to a shard submits to that shard's ACTIVE VMs,
//     scanned with a per-shard shortest-queue balancer.  A shard that is
//     momentarily empty (e.g. mid-rejuvenation) forwards the request to the
//     next shard through its mailbox instead of touching it directly.
//   - Cross-shard reactions move to the epoch barrier: a VM failure posts
//     its reactive recovery to the control timeline, where the controller
//     promotes a standby (possibly on another shard) and restarts the failed
//     VM on its own sub-engine — the direct cross-shard mutation the serial
//     hook performed becomes a mailbox post.
//   - The periodic control tick runs on the control timeline at its exact
//     interval, with exclusive access to all shards, exactly as before; its
//     per-shard monitor/analyze phase still fans out via ParallelPhase.
package pcam

import (
	"fmt"

	"repro/internal/cloudsim"
	"repro/internal/simclock"
	"repro/internal/tracing"
)

// shardLB is the per-shard slice of the load balancer: its own round-robin
// tie-breaker and a reusable ACTIVE-VM scan buffer, touched only by the
// shard's goroutine (and by the barrier, which runs exclusively).
type shardLB struct {
	rr     int
	active []*cloudsim.VM
}

// StartSharded installs the controller on a sharded event loop: engines[i]
// is the sub-engine owning region shard i, and the control tick is scheduled
// on the ShardedEngine's control timeline so it fires at its exact interval
// with exclusive access to every shard.  It replaces Start for deployments
// running the parallel event loop.
func (v *VMC) StartSharded(se *simclock.ShardedEngine, engines []*simclock.Engine) {
	if v.started {
		return
	}
	if len(engines) != v.region.NumShards() {
		panic(fmt.Sprintf("pcam: StartSharded got %d engines for %d shards", len(engines), v.region.NumShards()))
	}
	v.started = true
	v.se = se
	v.shardEngines = engines
	v.lbs = make([]shardLB, len(engines))
	v.region.BindShardEngines(engines)
	for _, vm := range v.region.VMs() {
		v.hookVMSharded(vm)
	}
	v.stop = se.Control().Ticker(v.cfg.ControlInterval, func(e *simclock.Engine) { v.ControlTick(e) })
}

// Sharded reports whether the controller runs on a sharded event loop.
func (v *VMC) Sharded() bool { return v.se != nil }

// engineForVM returns the engine a timed transition of vm must be scheduled
// on: the VM's shard sub-engine when the controller runs sharded, otherwise
// the engine in hand (the serial engine).
func (v *VMC) engineForVM(eng *simclock.Engine, vm *cloudsim.VM) *simclock.Engine {
	if v.shardEngines != nil {
		return v.shardEngines[vm.ShardIndex()]
	}
	return eng
}

// hookVMSharded chains the reactive-recovery handler onto the VM's failure
// hook, sharded-event-loop flavour: the failure fires on the VM's shard
// goroutine, so the reaction — a stats increment, a standby promotion that
// may touch another shard, and the restart of the failed VM — is posted to
// the control timeline and executes at the next epoch barrier.
func (v *VMC) hookVMSharded(vm *cloudsim.VM) {
	prev := vm.OnFailure
	vm.OnFailure = func(failed *cloudsim.VM, at simclock.Time) {
		if prev != nil {
			prev(failed, at)
		}
		src := v.shardEngines[failed.ShardIndex()]
		v.se.PostControl(src, func(ctrl *simclock.Engine) {
			v.stats.ReactiveRecoveries++
			v.activateStandby(ctrl)
			failed.RecoverFromFailure(v.shardEngines[failed.ShardIndex()])
		})
	}
}

// SubmitShard is the shard-local half of the load balancer: the request is
// dispatched to the ACTIVE VM with the shortest queue within the given shard
// (ties broken by a per-shard round-robin cursor).  When the shard has no
// ACTIVE VM the request hops to the next shard through its mailbox — never
// by touching the foreign shard directly — and is dropped once every shard
// has been tried.  With one shard this is exactly the serial Submit's
// whole-pool shortest-queue balancer.
func (v *VMC) SubmitShard(eng *simclock.Engine, shard int, req *cloudsim.Request) {
	v.submitShard(eng, shard, req, 0)
}

func (v *VMC) submitShard(eng *simclock.Engine, shard int, req *cloudsim.Request, hops int) {
	lb := &v.lbs[shard]
	lb.active = v.region.AppendByStateInShard(lb.active[:0], shard, cloudsim.StateActive)
	if len(lb.active) == 0 {
		if hops+1 >= v.region.NumShards() {
			req.Finish(eng, cloudsim.Outcome{Request: req, Region: v.region.Name(), Start: eng.Now(), End: eng.Now(), Dropped: true})
			return
		}
		v.hopToShard(eng, (shard+1)%v.region.NumShards(), req, hops+1)
		return
	}
	lb.rr++
	best := lb.active[lb.rr%len(lb.active)]
	for i, vm := range lb.active {
		if vm.QueueLength() < best.QueueLength() {
			best = lb.active[i]
		}
	}
	best.Dispatch(eng, req)
}

// hopToShard forwards a request to another shard's mailbox.  Before the
// first hop the completion callback is re-homed: the request will now finish
// on a foreign sub-engine, so the original OnDone must travel back to the
// submitting shard as a mailbox post instead of running on the serving
// shard's goroutine.  A request that already carries a posting OnDoneCtx
// (one forwarded across regions by the deployment's dispatcher) keeps it —
// that wrapper already posts to the true home shard.
func (v *VMC) hopToShard(eng *simclock.Engine, next int, req *cloudsim.Request, hops int) {
	if req.OnDoneCtx == nil {
		req.RehomeOnDone(v.se, v.se.LaneOf(eng), nil)
	}
	if req.Trace != nil {
		// Guarded so the detail string is only built for sampled requests.
		req.Trace.Event(tracing.EventShardHop, eng.Now(),
			fmt.Sprintf("region=%s shard=%d hops=%d", v.region.Name(), next, hops))
	}
	// next is a region shard index; the mailbox lane is the global index of
	// that shard's sub-engine within the ShardedEngine.
	v.se.Post(eng, v.se.LaneOf(v.shardEngines[next]), func(dst *simclock.Engine) {
		v.submitShard(dst, next, req, hops)
	})
}
