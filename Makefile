# Build, verify and benchmark the ACM reproduction.
#
#   make check       # everything CI runs: fmt, vet, build, race tests, bench smoke
#   make test        # plain test suite
#   make race        # full suite under the race detector
#   make bench       # the complete evaluation as benchmarks
#   make bench-smoke # one cheap iteration of the Figure 3 benchmarks

GO ?= go

.PHONY: check fmt vet build test race bench bench-smoke

check: fmt vet build race bench-smoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

bench-smoke:
	$(GO) test -bench=Figure3 -benchtime=1x -run='^$$' .
