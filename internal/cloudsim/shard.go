package cloudsim

import (
	"fmt"

	"repro/internal/simclock"
)

// A shard owns a disjoint subset of a region's VM pool together with its own
// derived RNG stream.  Sharding is what lets one region scale past ~10^3 VMs:
// the per-request work of the region's load balancer and the periodic
// controller scans operate on one shard (O(pool/N)) instead of the whole pool
// (O(pool)), and the region facade merges the per-shard aggregates so the
// layers above (pcam, acm, core) keep seeing a single logical region.
//
// VMs are assigned to shards round-robin at provisioning time, so shard
// populations stay balanced as the region grows through ADDVMS.  Each shard's
// RNG stream is derived via simclock.DeriveSeed(regionBase, shardIndex): the
// streams are independent of each other and of the provisioning order of the
// other shards, which keeps multi-shard runs deterministic.
type shard struct {
	index  int
	rng    *simclock.RNG
	vms    []*VM            // this shard's VMs, in provisioning order
	engine *simclock.Engine // sub-engine owning this shard's events (nil = serial engine)
}

// Concurrency: a shard's accessors (byState, appendByState, countState,
// stats, computeCapacity, trueRTTFSum) only read the states and counters of
// the shard's own VMs.  During a control-tick parallel phase
// (simclock.Engine.ParallelPhase) each shard is visited by exactly one
// goroutine, no VM changes state (state transitions schedule events, which
// the engine rejects during the phase), and VMs never migrate between
// shards — so these accessors are safe to run concurrently as long as each
// goroutine touches only its own shard.

// byState returns the shard's VMs currently in the given state, in
// provisioning order.
func (sh *shard) byState(s VMState) []*VM {
	return sh.appendByState(nil, s)
}

// appendByState appends the shard's VMs currently in the given state to dst,
// in provisioning order, and returns the extended slice.  Passing a reused
// dst[:0] keeps repeated scans allocation-free, which is what the
// controller's per-tick hot path relies on.
func (sh *shard) appendByState(dst []*VM, s VMState) []*VM {
	for _, vm := range sh.vms {
		if vm.State() == s {
			dst = append(dst, vm)
		}
	}
	return dst
}

// countState returns how many of the shard's VMs are in the given state.
func (sh *shard) countState(s VMState) int {
	n := 0
	for _, vm := range sh.vms {
		if vm.State() == s {
			n++
		}
	}
	return n
}

// stats aggregates the shard's lifetime counters.
func (sh *shard) stats(region string) Stats {
	s := Stats{Region: fmt.Sprintf("%s/shard%d", region, sh.index), VMs: len(sh.vms)}
	for _, vm := range sh.vms {
		switch vm.State() {
		case StateActive:
			s.Active++
		case StateStandby:
			s.Standby++
		case StateFailed:
			s.Failed++
		case StateRejuvenating:
			s.Rejuvenating++
		}
		s.Served += vm.Served()
		s.Dropped += vm.DroppedRequests()
		s.Crashes += vm.Crashes()
		s.Rejuvenations += vm.Rejuvenations()
		s.LeakedMB += vm.LeakedMB()
	}
	return s
}

// computeCapacity returns the shard's share of the region's healthy-state
// service capacity (requests per second over its ACTIVE VMs).
func (sh *shard) computeCapacity() float64 {
	total := 0.0
	for _, vm := range sh.vms {
		if vm.State() != StateActive {
			continue
		}
		base := vm.Type().BaseServiceMs / 1000
		if base <= 0 {
			continue
		}
		total += float64(vm.Type().VCPUs) / (base * vm.DegradationFactor())
	}
	return total
}

// trueRTTFSum returns the sum of the ground-truth RTTFs of the shard's ACTIVE
// VMs at the given per-VM request rate, plus the number of ACTIVE VMs.  The
// facade divides the merged sum by the merged count to obtain the region
// RMTTF.
func (sh *shard) trueRTTFSum(perVMRate float64) (sum float64, active int) {
	for _, vm := range sh.vms {
		if vm.State() != StateActive {
			continue
		}
		sum += vm.TrueRTTF(perVMRate)
		active++
	}
	return sum, active
}

// NumShards returns the number of engine shards the region's VM pool is split
// across (1 unless RegionConfig.Shards was set higher).
func (r *Region) NumShards() int { return len(r.shards) }

// BindShardEngines attaches one sub-engine per shard, enabling the parallel
// event loop: controllers use the binding to route a VM's timed transitions
// (rejuvenation completion, activation) to the engine that owns the VM's
// shard.  The slice length must match NumShards.  Unbound regions (the
// serial engine) report nil from ShardEngine and callers fall back to the
// engine in hand.
func (r *Region) BindShardEngines(engs []*simclock.Engine) {
	if len(engs) != len(r.shards) {
		panic(fmt.Sprintf("cloudsim: BindShardEngines got %d engines for %d shards", len(engs), len(r.shards)))
	}
	for i, sh := range r.shards {
		sh.engine = engs[i]
	}
}

// ShardEngine returns the sub-engine bound to shard i, or nil when the
// region runs on the serial engine.
func (r *Region) ShardEngine(i int) *simclock.Engine { return r.shards[i].engine }

// ShardVMs returns the VMs owned by the given shard, in provisioning order.
// It panics on an out-of-range shard index, mirroring slice indexing.
func (r *Region) ShardVMs(i int) []*VM { return r.shards[i].vms }

// ShardOf returns the index of the shard owning the given VM (VMs are
// assigned round-robin at provisioning time and never migrate).
func (r *Region) ShardOf(vm *VM) int { return vm.shardIndex }

// ActiveVMsInShard returns the ACTIVE VMs of one shard, in provisioning
// order.  This is the O(pool/N) scan the region's load balancer uses in place
// of the whole-pool ActiveVMs scan.
func (r *Region) ActiveVMsInShard(i int) []*VM { return r.shards[i].byState(StateActive) }

// AppendByStateInShard appends one shard's VMs currently in the given state
// to dst, in provisioning order, and returns the extended slice.  It is the
// allocation-free variant of ActiveVMsInShard / StandbyVMsInShard: callers on
// per-tick or per-request hot paths pass a reused buffer's dst[:0].  Safe to
// call concurrently for distinct shard indices (see the shard concurrency
// note above).
func (r *Region) AppendByStateInShard(dst []*VM, i int, s VMState) []*VM {
	return r.shards[i].appendByState(dst, s)
}

// StandbyVMsInShard returns the healthy spare VMs of one shard.
func (r *Region) StandbyVMsInShard(i int) []*VM { return r.shards[i].byState(StateStandby) }

// ActiveCount returns the number of ACTIVE VMs region-wide without
// materialising a slice — the allocation-free facade equivalent of
// len(ActiveVMs()), which at 10^3+ VM pools matters on the controller's
// per-tick paths.
func (r *Region) ActiveCount() int {
	n := 0
	for _, sh := range r.shards {
		n += sh.countState(StateActive)
	}
	return n
}

// ActiveCountInShard returns the number of ACTIVE VMs in one shard.
func (r *Region) ActiveCountInShard(i int) int { return r.shards[i].countState(StateActive) }

// StandbyPromotionCandidate returns one shard's first STANDBY VM in
// provisioning order (nil if it has none) together with the shard's ACTIVE
// count, in a single allocation-free pass — the two facts standby promotion
// needs per shard.
func (r *Region) StandbyPromotionCandidate(i int) (*VM, int) {
	var first *VM
	active := 0
	for _, vm := range r.shards[i].vms {
		switch vm.State() {
		case StateStandby:
			if first == nil {
				first = vm
			}
		case StateActive:
			active++
		}
	}
	return first, active
}

// ShardStats returns one aggregate snapshot per shard, labelled
// "<region>/shard<i>".  Region.Stats merges these into the region aggregate.
func (r *Region) ShardStats() []Stats {
	out := make([]Stats, len(r.shards))
	for i, sh := range r.shards {
		out[i] = sh.stats(r.cfg.Name)
	}
	return out
}
