// Package trace records experiment time series and renders them as CSV files
// and ASCII plots.  It is the reporting substrate for the figure-regeneration
// harness: the paper's Figures 3 and 4 are time-series plots of RMTTF, the
// workload fraction f_i, and the client response time, and this package
// produces the equivalent rows/series from a simulation run.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// Recorder collects named time series during a simulation run.
type Recorder struct {
	sets  map[string]*stats.SeriesSet
	order []string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{sets: map[string]*stats.SeriesSet{}}
}

// Set returns (creating if needed) the series set with the given name, e.g.
// "rmttf", "fraction", "response_time".
func (r *Recorder) Set(name string) *stats.SeriesSet {
	if s, ok := r.sets[name]; ok {
		return s
	}
	s := stats.NewSeriesSet(name)
	r.sets[name] = s
	r.order = append(r.order, name)
	return s
}

// Series returns (creating if needed) the series called series inside the set
// called set.
func (r *Recorder) Series(set, series string) *stats.Series {
	ss := r.Set(set)
	if s := ss.Get(series); s != nil {
		return s
	}
	return ss.Add(series)
}

// Record appends an observation to the given set/series.
func (r *Recorder) Record(set, series string, t, v float64) {
	r.Series(set, series).Add(t, v)
}

// SetNames returns the registered set names in creation order.
func (r *Recorder) SetNames() []string { return append([]string(nil), r.order...) }

// WriteCSV writes the set as a wide CSV: one row per distinct timestamp, one
// column per series, using step interpolation for series that have no
// observation at a given timestamp.
func (r *Recorder) WriteCSV(w io.Writer, set string) error {
	ss, ok := r.sets[set]
	if !ok {
		return fmt.Errorf("trace: unknown series set %q", set)
	}
	cw := csv.NewWriter(w)
	header := append([]string{"time_s"}, ss.Names()...)
	if err := cw.Write(header); err != nil {
		return err
	}
	times := unionTimes(ss)
	for _, t := range times {
		row := make([]string, 0, len(header))
		row = append(row, formatFloat(t))
		for _, s := range ss.Series {
			row = append(row, formatFloat(s.At(t)))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAllCSV writes every registered set, each preceded by a "# <set>"
// comment line, to the writer.
func (r *Recorder) WriteAllCSV(w io.Writer) error {
	for _, name := range r.order {
		if _, err := fmt.Fprintf(w, "# %s\n", name); err != nil {
			return err
		}
		if err := r.WriteCSV(w, name); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

func unionTimes(ss *stats.SeriesSet) []float64 {
	set := map[float64]struct{}{}
	for _, s := range ss.Series {
		for _, p := range s.Points {
			set[p.T] = struct{}{}
		}
	}
	times := make([]float64, 0, len(set))
	for t := range set {
		times = append(times, t)
	}
	sort.Float64s(times)
	return times
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 8, 64)
}

// PlotOptions controls ASCII plot rendering.
type PlotOptions struct {
	Width  int // number of columns in the plot area (default 72)
	Height int // number of rows in the plot area (default 16)
	Title  string
	YLabel string
}

func (o PlotOptions) withDefaults() PlotOptions {
	if o.Width <= 0 {
		o.Width = 72
	}
	if o.Height <= 0 {
		o.Height = 16
	}
	return o
}

// plotMarks are the glyphs assigned to successive series in a plot.
var plotMarks = []rune{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// ASCIIPlot renders the series set as a fixed-size ASCII chart, one glyph per
// series, matching the shape of the figures in the paper closely enough for a
// terminal-side qualitative comparison.
func ASCIIPlot(ss *stats.SeriesSet, opts PlotOptions) string {
	opts = opts.withDefaults()
	var b strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&b, "%s\n", opts.Title)
	}
	if len(ss.Series) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}

	// Establish global time and value ranges.
	tMin, tMax := math.Inf(1), math.Inf(-1)
	vMin, vMax := math.Inf(1), math.Inf(-1)
	hasData := false
	for _, s := range ss.Series {
		for _, p := range s.Points {
			hasData = true
			if p.T < tMin {
				tMin = p.T
			}
			if p.T > tMax {
				tMax = p.T
			}
			if p.V < vMin {
				vMin = p.V
			}
			if p.V > vMax {
				vMax = p.V
			}
		}
	}
	if !hasData {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if vMax == vMin {
		vMax = vMin + 1
	}
	if tMax == tMin {
		tMax = tMin + 1
	}

	grid := make([][]rune, opts.Height)
	for i := range grid {
		grid[i] = make([]rune, opts.Width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}

	for si, s := range ss.Series {
		mark := plotMarks[si%len(plotMarks)]
		for col := 0; col < opts.Width; col++ {
			t := tMin + (tMax-tMin)*float64(col)/float64(opts.Width-1)
			v := s.At(t)
			row := int((v - vMin) / (vMax - vMin) * float64(opts.Height-1))
			if row < 0 {
				row = 0
			}
			if row >= opts.Height {
				row = opts.Height - 1
			}
			// Row 0 of the grid is the top.
			grid[opts.Height-1-row][col] = mark
		}
	}

	yTop := fmt.Sprintf("%10.3g |", vMax)
	yBot := fmt.Sprintf("%10.3g |", vMin)
	for i, row := range grid {
		switch i {
		case 0:
			b.WriteString(yTop)
		case opts.Height - 1:
			b.WriteString(yBot)
		default:
			b.WriteString(strings.Repeat(" ", 10) + " |")
		}
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 11) + "+" + strings.Repeat("-", opts.Width) + "\n")
	fmt.Fprintf(&b, "%12s%-20.6g%*s%.6g (time, s)\n", "", tMin, opts.Width-20, "", tMax)

	// Legend.
	b.WriteString("  legend:")
	for si, s := range ss.Series {
		fmt.Fprintf(&b, " %c=%s", plotMarks[si%len(plotMarks)], s.Name)
	}
	if opts.YLabel != "" {
		fmt.Fprintf(&b, "   (y: %s)", opts.YLabel)
	}
	b.WriteByte('\n')
	return b.String()
}

// SummaryTable renders a compact per-series summary (tail mean, stddev and
// oscillation) as an aligned text table.  It is used by cmd/figures to print
// the qualitative comparison that backs the bullets in Section VI-B.
func SummaryTable(ss *stats.SeriesSet, tailFrac float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %12s %12s %12s %8s\n", ss.Name, "tail-mean", "tail-sd", "oscillation", "points")
	for _, s := range ss.Series {
		fmt.Fprintf(&b, "%-24s %12.4f %12.4f %12.4f %8d\n",
			s.Name, s.TailMean(tailFrac), s.TailStdDev(tailFrac), s.OscillationIndex(tailFrac), s.Len())
	}
	return b.String()
}
