package experiment

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/simclock"
)

// This file is the parallel experiment runner: a bounded worker pool that
// executes independent simulation jobs concurrently.  Every job owns its
// entire simulated world (engine, regions, clients, controllers), so jobs
// share no mutable state and the pool needs no locking beyond handing out
// work.  Determinism comes from the jobs themselves: each job's seed is fixed
// at expansion time (see Matrix.Expand), so the results are bit-identical
// regardless of worker count or completion order.

// Job is one independent unit of work for the parallel runner: a scenario to
// simulate under one policy.
type Job struct {
	// Index is the job's position in its expanded matrix.  Results are
	// returned in index order, so a sweep's output does not depend on which
	// worker finished first.
	Index int
	// Scenario is the complete experiment configuration, including the seed.
	Scenario Scenario
	// Policy is the policy under test.  The runner clones it before use, so
	// stateful policies (Policy 3's jitter stream) are never shared between
	// concurrent jobs.
	Policy NamedPolicy
	// Rep is the replication index the job was expanded with (0 for jobs
	// built outside a matrix); sweep rows report it alongside the derived
	// seed.
	Rep int
}

// JobResult couples a job with its outcome.  Err is set when the job's own
// simulation failed; other jobs keep running.
type JobResult struct {
	Job    Job
	Result *Result
	Err    error
}

// Options configures the parallel runner.
type Options struct {
	// Workers bounds the number of concurrently running simulations.
	// Non-positive selects runtime.GOMAXPROCS(0).
	Workers int
}

// ForEach runs fn(0..n-1) on a pool of bounded workers and blocks until every
// started call returned.  A cancelled context stops new work from being
// handed out (calls already in flight complete); ForEach then returns the
// context's error.  Errors returned by fn are collected and joined, they do
// not cancel the remaining work.
//
// The fan-out itself is simclock.ForEach — the same bounded worker pool the
// engine's control-tick parallel phase uses — with the context and
// error-collection semantics layered on top: every index is still claimed
// exactly once, but an index claimed after cancellation returns without
// calling fn.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}

	var mu sync.Mutex
	var errs []error
	simclock.ForEach(n, workers, func(i int) {
		if ctx.Err() != nil {
			return
		}
		if err := fn(i); err != nil {
			mu.Lock()
			errs = append(errs, err)
			mu.Unlock()
		}
	})

	// A cancelled context does not swallow failures that happened before the
	// cancellation: both are joined into the returned error.
	if err := ctx.Err(); err != nil {
		return errors.Join(append([]error{err}, errs...)...)
	}
	return errors.Join(errs...)
}

// RunParallel executes the jobs on a bounded worker pool and returns one
// JobResult per job, in job order.  Per-job simulation failures are reported
// in the corresponding JobResult and do not abort the sweep.  The returned
// error is non-nil only when cancellation actually cost results — at least
// one job was never dispatched (those slots carry the cancellation error); a
// context that expires after the last job was handed out still yields the
// complete result set with a nil error.
//
// Results are deterministic: a job's outcome depends only on its Scenario
// (including its seed) and policy, so the same job list produces bit-identical
// results for any worker count.
func RunParallel(ctx context.Context, jobs []Job, opt Options) ([]JobResult, error) {
	results := make([]JobResult, len(jobs))
	for i, job := range jobs {
		results[i] = JobResult{Job: job}
	}
	// The pool callback never returns an error (failures land in the job's
	// slot), so ForEach only reports context cancellation.  Policy cloning is
	// not needed here: Run constructs the deployment via NewBackend, which
	// clones the policy per simulation.
	// Worker normalisation (non-positive selects GOMAXPROCS, the pool never
	// exceeds the job count) happens inside the fan-out.
	err := ForEach(ctx, len(jobs), opt.Workers, func(i int) error {
		job := jobs[i]
		res, runErr := Run(job.Scenario, job.Policy)
		results[i] = JobResult{Job: job, Result: res, Err: runErr}
		return nil
	})
	if err != nil {
		undispatched := 0
		for i := range results {
			if results[i].Result == nil && results[i].Err == nil {
				results[i].Err = fmt.Errorf("experiment: job %d (%s/%s) not dispatched: %w",
					results[i].Job.Index, results[i].Job.Scenario.Name, results[i].Job.Policy.Key, err)
				undispatched++
			}
		}
		if undispatched == 0 {
			// Cancellation landed after the last dispatch: every job ran to
			// completion, so the result set is whole — don't discard it.
			err = nil
		}
	}
	return results, err
}

// FirstError returns the first per-job error in job order, or nil when every
// job succeeded.
func FirstError(results []JobResult) error {
	for _, jr := range results {
		if jr.Err != nil {
			return jr.Err
		}
	}
	return nil
}
