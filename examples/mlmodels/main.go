// F2PM model comparison: the machine-learning toolchain behind ACM.
//
// The example reproduces the F2PM workflow the paper relies on (Section III):
// a pool of VMs is profiled under load until several failure episodes have
// been observed, every sample is labelled with its Remaining Time To Failure,
// Lasso regularisation selects the relevant system features, and the six
// candidate model families are trained and compared.  The paper selects
// REP-Tree as the runtime predictor based on this comparison.
//
// Run with:
//
//	go run ./examples/mlmodels
package main

import (
	"fmt"
	"log"

	"repro/internal/cloudsim"
	"repro/internal/f2pm"
	"repro/internal/features"
	"repro/internal/simclock"
)

func main() {
	// 1. Profiling phase: drive four private VMs with an open-loop workload
	// until a dozen failure episodes have been observed.
	profile := f2pm.ProfileConfig{
		Seed:           7,
		Instance:       cloudsim.PrivateVM,
		VMs:            4,
		RatePerVM:      8,
		SampleInterval: 20 * simclock.Second,
		TargetFailures: 12,
	}
	fmt.Println("profiling 4 private VMs until 12 failure episodes are observed ...")
	dataset, err := f2pm.CollectSyntheticDataset(profile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feature database: %d labelled samples, %d features, %d VMs\n",
		dataset.Len(), len(dataset.Features), len(dataset.VMs()))

	// 2. Training phase: Lasso feature selection + the six model families.
	model, report, err := f2pm.Train(dataset, f2pm.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("model comparison (the paper picks REP-Tree):")
	fmt.Print(report.Table())

	// 3. Use the runtime model the way PCAM does: predict the RTTF of a
	// healthy and of a nearly-exhausted VM.
	healthy := probe(dataset, true)
	worn := probe(dataset, false)
	fmt.Println()
	fmt.Printf("predicted RTTF of a freshly rejuvenated VM: %8.0f s\n", model.PredictRTTF(healthy))
	fmt.Printf("predicted RTTF of an almost-failed VM:      %8.0f s\n", model.PredictRTTF(worn))
}

// probe returns the dataset sample with the largest (healthy) or smallest
// (worn) labelled RTTF, to show predictions on realistic inputs.
func probe(ds *features.Dataset, healthy bool) features.Vector {
	best := ds.Samples[0]
	for _, s := range ds.Samples {
		if healthy && s.RTTFSeconds > best.RTTFSeconds {
			best = s
		}
		if !healthy && s.RTTFSeconds < best.RTTFSeconds {
			best = s
		}
	}
	return best.Vector
}
