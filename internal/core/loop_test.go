package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAggregatorEquation1(t *testing.T) {
	a := NewAggregator(0.25, []string{"r1", "r2"})
	if a.Beta() != 0.25 {
		t.Fatalf("beta = %v", a.Beta())
	}
	// First observation primes the estimate directly.
	if got := a.Observe("r1", 1000); got != 1000 {
		t.Fatalf("first observation = %v, want 1000", got)
	}
	// Second observation applies (1-β)*prev + β*last.
	if got := a.Observe("r1", 2000); math.Abs(got-(0.75*1000+0.25*2000)) > 1e-9 {
		t.Fatalf("second observation = %v, want 1250", got)
	}
	if got := a.Current("r1"); math.Abs(got-1250) > 1e-9 {
		t.Fatalf("Current = %v", got)
	}
	if a.Current("r2") != 0 {
		t.Fatalf("unobserved region should read 0")
	}
	if a.Current("nope") != 0 {
		t.Fatalf("unknown region should read 0")
	}
}

func TestAggregatorAutoRegistersAndSnapshots(t *testing.T) {
	a := NewAggregator(0.5, []string{"r1"})
	a.Observe("r1", 100)
	a.Observe("brand-new", 300)
	if len(a.Regions()) != 2 {
		t.Fatalf("regions = %v", a.Regions())
	}
	snap := a.Snapshot()
	if len(snap) != 2 || snap[0] != 100 || snap[1] != 300 {
		t.Fatalf("snapshot = %v", snap)
	}
	m := a.SnapshotMap()
	if m["r1"] != 100 || m["brand-new"] != 300 {
		t.Fatalf("snapshot map = %v", m)
	}
	if a.Spread() <= 0 {
		t.Fatalf("spread should be positive for unequal regions")
	}
	if !strings.Contains(a.String(), "r1=") {
		t.Fatalf("String() = %q", a.String())
	}
	single := NewAggregator(0.5, []string{"only"})
	if single.Spread() != 0 {
		t.Fatalf("spread with one region should be 0")
	}
}

func TestAggregatorBetaClamped(t *testing.T) {
	a := NewAggregator(7, []string{"r"})
	a.Observe("r", 10)
	a.Observe("r", 20)
	// beta clamps to 1: the estimate tracks the last observation exactly.
	if got := a.Current("r"); got != 20 {
		t.Fatalf("with beta clamped to 1 the estimate should equal the last sample, got %v", got)
	}
}

func TestBuildForwardPlanKeepsTrafficLocalWhenPossible(t *testing.T) {
	regions := []string{"region1", "region2", "region3"}
	entry := []float64{0.3, 0.4, 0.3}
	target := []float64{0.5, 0.4, 0.1}
	p, err := BuildForwardPlan(regions, entry, target)
	if err != nil {
		t.Fatalf("BuildForwardPlan: %v", err)
	}
	// Rows must be distributions.
	for i, row := range p.Forward {
		s := 0.0
		for _, v := range row {
			if v < 0 {
				t.Fatalf("negative forwarding fraction in row %d: %v", i, row)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
	// Region 2's entry share equals its target: everything stays local.
	if p.Forward[1][1] < 0.999 {
		t.Fatalf("region2 should keep all its traffic local, row = %v", p.Forward[1])
	}
	// Region 3 is over-subscribed (entry 0.3 > target 0.1): it forwards the
	// surplus, and only to region 1 (the only region with a deficit).
	if p.Forward[2][0] <= 0 || p.Forward[2][1] != 0 {
		t.Fatalf("region3 should forward surplus to region1 only, row = %v", p.Forward[2])
	}
	// The plan must realise the requested fractions.
	eff := p.EffectiveFractions()
	for i := range target {
		if math.Abs(eff[i]-target[i]) > 1e-6 {
			t.Fatalf("effective fractions %v differ from targets %v", eff, target)
		}
	}
	// Cross-region fraction is exactly region3's surplus.
	if got := p.CrossRegionFraction(); math.Abs(got-0.2) > 1e-6 {
		t.Fatalf("cross-region fraction = %v, want 0.2", got)
	}
	if p.String() == "" {
		t.Fatalf("plan string should not be empty")
	}
}

func TestBuildForwardPlanValidation(t *testing.T) {
	if _, err := BuildForwardPlan(nil, nil, nil); err == nil {
		t.Fatalf("empty plan should be rejected")
	}
	if _, err := BuildForwardPlan([]string{"a"}, []float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Fatalf("mismatched lengths should be rejected")
	}
}

func TestForwardPlanRowAndDestination(t *testing.T) {
	p, err := BuildForwardPlan([]string{"a", "b"}, []float64{1, 0}, []float64{0.25, 0.75})
	if err != nil {
		t.Fatalf("BuildForwardPlan: %v", err)
	}
	row := p.Row("a")
	if row == nil || math.Abs(row[0]-0.25) > 1e-9 || math.Abs(row[1]-0.75) > 1e-9 {
		t.Fatalf("row(a) = %v, want [0.25 0.75]", row)
	}
	if p.Row("zzz") != nil {
		t.Fatalf("unknown region row should be nil")
	}
	if got := p.Destination("a", 0.1); got != "a" {
		t.Fatalf("Destination(0.1) = %q, want a", got)
	}
	if got := p.Destination("a", 0.9); got != "b" {
		t.Fatalf("Destination(0.9) = %q, want b", got)
	}
	if got := p.Destination("zzz", 0.5); got != "zzz" {
		t.Fatalf("unknown entry region should be returned unchanged, got %q", got)
	}
	// Sampling the row many times approximates the distribution.
	countB := 0
	const n = 10000
	for i := 0; i < n; i++ {
		u := (float64(i) + 0.5) / n
		if p.Destination("a", u) == "b" {
			countB++
		}
	}
	if math.Abs(float64(countB)/n-0.75) > 0.01 {
		t.Fatalf("sampled forwarding ratio = %v, want ~0.75", float64(countB)/n)
	}
}

func TestForwardPlanZeroEntryRegion(t *testing.T) {
	// A region that receives no client connections still needs a valid row.
	p, err := BuildForwardPlan([]string{"a", "b"}, []float64{0, 1}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatalf("BuildForwardPlan: %v", err)
	}
	row := p.Row("a")
	s := 0.0
	for _, v := range row {
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("zero-entry region row should still sum to 1, got %v", row)
	}
	eff := p.EffectiveFractions()
	if math.Abs(eff[0]-0.5) > 1e-9 {
		t.Fatalf("effective fractions = %v, want [0.5 0.5]", eff)
	}
}

// Property: for random entry shares and targets, every row of the plan is a
// distribution and the effective fractions match the (normalised) targets.
func TestForwardPlanConsistencyProperty(t *testing.T) {
	f := func(e1, e2, e3, t1, t2, t3 uint8) bool {
		regions := []string{"a", "b", "c"}
		entry := []float64{float64(e1) + 1, float64(e2) + 1, float64(e3) + 1}
		target := []float64{float64(t1) + 1, float64(t2) + 1, float64(t3) + 1}
		p, err := BuildForwardPlan(regions, entry, target)
		if err != nil {
			return false
		}
		for _, row := range p.Forward {
			s := 0.0
			for _, v := range row {
				if v < 0 || math.IsNaN(v) {
					return false
				}
				s += v
			}
			if math.Abs(s-1) > 1e-6 {
				return false
			}
		}
		eff := p.EffectiveFractions()
		wantTarget := Normalize(target)
		for i := range eff {
			if math.Abs(eff[i]-wantTarget[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestLoopStateStrings(t *testing.T) {
	cases := map[LoopState]string{
		StateMonitor: "Monitor", StateAnalyze: "Analyze", StatePlan: "Plan", StateExecute: "Execute",
		LoopState(9): "LoopState(9)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestNewLoopValidation(t *testing.T) {
	if _, err := NewLoop(nil, SensibleRouting{}, 0.3); err == nil {
		t.Errorf("empty region list should be rejected")
	}
	if _, err := NewLoop([]string{"a"}, nil, 0.3); err == nil {
		t.Errorf("nil policy should be rejected")
	}
}

func TestLoopStepRunsAllPhasesAndInstallsFractions(t *testing.T) {
	regions := []string{"region1", "region3"}
	loop, err := NewLoop(regions, AvailableResources{}, 0.5)
	if err != nil {
		t.Fatalf("NewLoop: %v", err)
	}
	if loop.Era() != 0 || loop.State() != StateMonitor {
		t.Fatalf("fresh loop should be in Monitor at era 0")
	}
	// Initial fractions are uniform.
	for _, f := range loop.Fractions() {
		if f != 0.5 {
			t.Fatalf("initial fractions = %v", loop.Fractions())
		}
	}

	res, err := loop.Step([]float64{4000, 1000}, 60, []float64{0.5, 0.5})
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	if res.Era != 1 || loop.Era() != 1 {
		t.Fatalf("era = %d", res.Era)
	}
	if loop.State() != StateMonitor {
		t.Fatalf("loop should return to Monitor after a full era, got %v", loop.State())
	}
	validFractions(t, res.Fractions, 2)
	// Policy 2 with equal previous fractions: region1 (higher RMTTF) gets the
	// larger share.
	if res.Fractions[0] <= res.Fractions[1] {
		t.Fatalf("region1 should receive the larger fraction: %v", res.Fractions)
	}
	// The loop installs the new fractions for the next era.
	got := loop.Fractions()
	for i := range got {
		if got[i] != res.Fractions[i] {
			t.Fatalf("installed fractions %v differ from result %v", got, res.Fractions)
		}
	}
	if res.Plan == nil || len(res.Plan.Forward) != 2 {
		t.Fatalf("step result should carry a forward plan")
	}
	if len(loop.History()) != 1 {
		t.Fatalf("history should retain the step result")
	}
	if loop.Policy().Name() != (AvailableResources{}).Name() {
		t.Fatalf("Policy() accessor broken")
	}
	if len(loop.Regions()) != 2 {
		t.Fatalf("Regions() accessor broken")
	}
	if loop.Aggregator().Current("region1") != 4000 {
		t.Fatalf("aggregator should have been primed with the first observation")
	}
}

func TestLoopStepValidatesLengths(t *testing.T) {
	loop, _ := NewLoop([]string{"a", "b"}, Uniform{}, 0.5)
	if _, err := loop.Step([]float64{1}, 10, []float64{0.5, 0.5}); err == nil {
		t.Fatalf("mismatched RMTTF length should be rejected")
	}
	if _, err := loop.Step([]float64{1, 2}, 10, []float64{1}); err == nil {
		t.Fatalf("mismatched entry share length should be rejected")
	}
}

func TestLoopPolicyErrorPropagates(t *testing.T) {
	loop, _ := NewLoop([]string{"a", "b"}, Static{Weights: []float64{1}}, 0.5)
	if _, err := loop.Step([]float64{1, 2}, 10, []float64{0.5, 0.5}); err == nil {
		t.Fatalf("policy error should propagate")
	}
	if loop.Era() != 0 {
		t.Fatalf("a failed step must not advance the era")
	}
	if loop.State() != StateMonitor {
		t.Fatalf("a failed step must return the loop to Monitor")
	}
}

func TestLoopHistoryToggle(t *testing.T) {
	loop, _ := NewLoop([]string{"a", "b"}, Uniform{}, 0.5)
	loop.SetKeepHistory(false)
	for i := 0; i < 5; i++ {
		if _, err := loop.Step([]float64{100, 200}, 10, []float64{0.5, 0.5}); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	if len(loop.History()) != 0 {
		t.Fatalf("history should be empty when disabled")
	}
	if loop.Era() != 5 {
		t.Fatalf("era = %d, want 5", loop.Era())
	}
}

// Property: driving the loop with arbitrary positive RMTTF observations keeps
// the installed fractions a valid distribution at every era, for every
// policy.
func TestLoopFractionsAlwaysValidProperty(t *testing.T) {
	policies := []Policy{SensibleRouting{}, AvailableResources{}, &Exploration{K: 1}, Uniform{}}
	f := func(obs [][3]uint16) bool {
		if len(obs) == 0 {
			return true
		}
		for _, p := range policies {
			loop, err := NewLoop([]string{"r1", "r2", "r3"}, p, 0.4)
			if err != nil {
				return false
			}
			for _, o := range obs {
				rmttf := []float64{float64(o[0]) + 1, float64(o[1]) + 1, float64(o[2]) + 1}
				if _, err := loop.Step(rmttf, 50, []float64{0.2, 0.5, 0.3}); err != nil {
					return false
				}
				s := 0.0
				for _, v := range loop.Fractions() {
					if v < 0 || math.IsNaN(v) {
						return false
					}
					s += v
				}
				if math.Abs(s-1) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLoopStep(b *testing.B) {
	loop, err := NewLoop([]string{"region1", "region2", "region3"}, AvailableResources{}, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	loop.SetKeepHistory(false)
	rmttf := []float64{4000, 3500, 900}
	entry := []float64{0.3, 0.4, 0.3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loop.Step(rmttf, 70, entry); err != nil {
			b.Fatal(err)
		}
	}
}
