// Package stats provides the statistical primitives used across the ACM
// Framework reproduction: descriptive statistics, exponentially weighted
// moving averages (equation 1 of the paper), time series, and the
// convergence/oscillation metrics used to assess the load-balancing policies
// in the evaluation section.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks.  It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// CoefficientOfVariation returns the standard deviation divided by the mean,
// a scale-free measure of dispersion.  Returns 0 when the mean is 0.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / math.Abs(m)
}

// EWMA implements the weighted average of equation (1) in the paper:
//
//	RMTTF_i^t = (1-beta) * RMTTF_i^{t-1} + beta * lastRMTTF_i
//
// The first observation initialises the average directly so the series does
// not start biased toward zero.
type EWMA struct {
	beta    float64
	value   float64
	primed  bool
	samples int
}

// NewEWMA returns an EWMA with smoothing factor beta in [0,1].  Values
// outside the range are clamped, matching the paper's constraint 0<=beta<=1.
func NewEWMA(beta float64) *EWMA {
	if beta < 0 {
		beta = 0
	}
	if beta > 1 {
		beta = 1
	}
	return &EWMA{beta: beta}
}

// Beta returns the smoothing factor.
func (e *EWMA) Beta() float64 { return e.beta }

// Update folds a new observation into the average and returns the new value.
func (e *EWMA) Update(x float64) float64 {
	if !e.primed {
		e.value = x
		e.primed = true
	} else {
		e.value = (1-e.beta)*e.value + e.beta*x
	}
	e.samples++
	return e.value
}

// Value returns the current smoothed value (0 before any update).
func (e *EWMA) Value() float64 { return e.value }

// Primed reports whether at least one observation has been folded in.
func (e *EWMA) Primed() bool { return e.primed }

// Samples returns the number of observations folded in so far.
func (e *EWMA) Samples() int { return e.samples }

// Reset clears the average.
func (e *EWMA) Reset() {
	e.value = 0
	e.primed = false
	e.samples = 0
}

// Welford maintains running mean/variance without storing samples
// (Welford's online algorithm).  Useful for long simulations where the
// response-time population is large.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds a new sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Merge folds another accumulator into w using the parallel-update form of
// Welford's recurrence (Chan et al.), so per-partition accumulators can be
// combined into the exact aggregate moments.  Merging in a fixed partition
// order yields bit-reproducible results (floating-point addition is
// order-sensitive, so the caller's fold order is part of any determinism
// contract).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.mean += delta * float64(o.n) / float64(n)
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// Count returns the number of samples.
func (w *Welford) Count() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest sample seen (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample seen (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// String summarises the accumulator.
func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.4f sd=%.4f min=%.4f max=%.4f",
		w.n, w.Mean(), w.StdDev(), w.min, w.max)
}
