package backend

import (
	"strings"
	"testing"

	"repro/internal/acm"
	"repro/internal/cloudsim"
	"repro/internal/core"
	"repro/internal/simclock"
)

func testConfig() acm.Config {
	return acm.Config{
		Seed: 7,
		Regions: []acm.RegionSetup{
			{Region: cloudsim.PaperRegionConfig(cloudsim.PaperRegion1), Clients: 16},
		},
		Policy:          core.AvailableResources{},
		ControlInterval: 60 * simclock.Second,
	}
}

func TestFactoryRegistry(t *testing.T) {
	kinds := Kinds()
	if len(kinds) == 0 || kinds[0] != KindSimulated {
		t.Fatalf("kinds %v, want the simulator registered as %q", kinds, KindSimulated)
	}

	// The empty kind defaults to the simulator — Scenario.Backend is "" in
	// every pre-existing scenario JSON.
	for _, kind := range []string{"", KindSimulated} {
		b, err := New(kind, testConfig())
		if err != nil {
			t.Fatalf("New(%q): %v", kind, err)
		}
		if _, ok := b.(*Simulated); !ok {
			t.Fatalf("New(%q) = %T, want *Simulated", kind, b)
		}
	}

	_, err := New("live", testConfig())
	if err == nil || !strings.Contains(err.Error(), `unknown kind "live"`) {
		t.Fatalf("unknown kind error %v", err)
	}
	if !strings.Contains(err.Error(), KindSimulated) {
		t.Fatalf("error %v does not list the registered kinds", err)
	}
}

func TestSimulatedImplementsBackend(t *testing.T) {
	b, err := NewSimulated(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var _ Backend = b
	if err := b.Run(5 * simclock.Minute); err != nil {
		t.Fatal(err)
	}
	final := b.Results()
	if final.Eras == 0 {
		t.Fatal("no control eras in the snapshot")
	}
	if len(final.RegionNames) != 1 || final.RegionNames[0] != "region1" {
		t.Fatalf("region names %v", final.RegionNames)
	}
	if final.GSLB != nil {
		t.Fatal("regional deployment reported a GSLB block")
	}
	if b.Registry() == nil || b.Recorder() == nil || b.Metrics() == nil {
		t.Fatal("nil surface on the backend")
	}
	if text := b.Registry().Text(); !strings.Contains(text, "acm_control_eras_total") {
		t.Fatalf("registry exposition missing era counter:\n%.1000s", text)
	}
}
