// Global-traffic-director wiring of a deployment: the Manager seam that
// attaches client populations and open-loop arrival streams *globally* —
// to a gslb.Director that picks the serving region per request — instead of
// pinning them to one region, plus the scripted region-outage schedule that
// gives the director's health-driven failover something to react to.
//
// Determinism: a GSLB deployment always runs on the sharded event loop
// (Config.withDefaults promotes EventWorkers 0 -> 1), because global routing
// crosses region sub-engines and therefore must ride the mailbox machinery.
// The director's probe runs on the control timeline; each lane's dispatcher
// reads an immutable routing-table snapshot republished at epoch barriers
// and owns its RNG/rotation state, so the output is byte-identical for every
// EventWorkers value — 0 and 1 select the same inline epochal run.
package acm

import (
	"fmt"
	"math"

	"repro/internal/cloudsim"
	"repro/internal/gossip"
	"repro/internal/gslb"
	"repro/internal/simclock"
	"repro/internal/validate"
	"repro/internal/workload"
)

// ArrivalSetup attaches one open-loop request stream to the deployment.
type ArrivalSetup struct {
	// Name labels the stream ("americas"); it becomes the metrics label and
	// the EntryRegion of the stream's requests.
	Name string
	// Rate is the (possibly time-varying) arrival rate.
	Rate workload.RateSpec
	// Mix is the interaction mix (browsing when zero-valued).
	Mix workload.Mix
	// Region optionally pins the stream to one region's entry load balancer
	// (riding the global forward plan like that region's browsers).  Empty
	// attaches the stream to the global traffic director, which requires
	// Config.GSLB to be enabled.
	Region string
}

// RegionFault scripts one region outage for failover experiments: at time At
// the region's controller target is forced down to KeepActive ACTIVE VMs
// (the excess deactivates immediately, in-flight requests drain), and after
// Duration the previous target is restored so the next control tick
// repromotes the pool.  KeepActive = 0 blacks the region out completely.
type RegionFault struct {
	// Region names the region to fault.
	Region string
	// At is when the outage starts.
	At simclock.Duration
	// Duration is how long the outage lasts; zero makes it permanent.
	Duration simclock.Duration
	// KeepActive is the number of ACTIVE VMs left during the outage.
	KeepActive int
}

// LinkFault scripts one network-path degradation for latency-routing
// experiments: at time At the ground-truth round trip between one population
// stream and one region is multiplied by Factor (2 = the classic submarine
// cable cut forcing traffic the long way round), and after Duration the
// previous value is restored; zero Duration makes the cut permanent.  The
// director is never told — it learns the new RTT passively from observed
// completions, which is exactly the traffic shift the cable-cut scenarios
// pin.  Requires a latency-aware GSLB config with an RTT row for Stream.
type LinkFault struct {
	// Stream names the population stream whose path degrades ("global" for
	// the director-attached browsers/cohorts, or a global arrival name).
	Stream string
	// Region names the region at the far end of the path.
	Region string
	// At is when the degradation starts.
	At simclock.Duration
	// Duration is how long it lasts; zero makes it permanent.
	Duration simclock.Duration
	// Factor multiplies the path's RTT; must be positive and finite
	// (2 doubles it, 0.5 would model a better route coming up).
	Factor float64
}

// PartitionFault scripts one network partition of the gossip health plane:
// at time At the listed replicas are cut off from the rest (cross-side
// gossip messages are dropped), and after Duration the plane heals and the
// sides reconcile.  During the cut each side keeps converging internally,
// so lanes homed to the isolated replicas route on views frozen at the
// split — the split-brain behaviour the global-partition scenario pins.
// Zero Duration makes the partition permanent.
type PartitionFault struct {
	// At is when the partition starts.
	At simclock.Duration
	// Duration is how long it lasts; zero makes it permanent.
	Duration simclock.Duration
	// Replicas lists the replica indices forming the isolated side; the
	// remaining replicas form the other.  Both sides must be non-empty.
	Replicas []int
}

// validateGlobal rejects configurations the global-traffic wiring cannot
// realise, with errors that name the offending field.
func (m *Manager) validateGlobal() error {
	cfg := m.cfg
	if cfg.GlobalClients < 0 {
		return validate.Fieldf("acm", "GlobalClients", "must be >= 0, got %d", cfg.GlobalClients)
	}
	if cfg.GlobalClients > 0 && !cfg.GSLB.Enabled() {
		return validate.Fieldf("acm", "GlobalClients", "= %d but no GSLB policy configured", cfg.GlobalClients)
	}
	if cfg.CohortClients < 0 {
		return validate.Fieldf("acm", "CohortClients", "must be >= 0, got %d", cfg.CohortClients)
	}
	if cfg.CohortClients > 0 && !cfg.GSLB.Enabled() {
		return validate.Fieldf("acm", "CohortClients", "= %d global cohort clients but no GSLB policy configured", cfg.CohortClients)
	}
	if cfg.TracerFraction < 0 || cfg.TracerFraction > 1 {
		return validate.Fieldf("acm", "TracerFraction", "must be in [0, 1], got %v", cfg.TracerFraction)
	}
	if f := cfg.TraceSampleFraction; math.IsNaN(f) || f < 0 || f > 1 {
		return validate.Fieldf("acm", "TraceSampleFraction", "must be in [0, 1], got %v", f)
	}
	if cfg.FlightRecorder && cfg.EventWorkers == 0 {
		return validate.Fieldf("acm", "FlightRecorder", "requires the sharded event loop (set EventWorkers >= 1)")
	}
	for i, rs := range cfg.Regions {
		if rs.CohortClients < 0 {
			return validate.Fieldf("acm", fmt.Sprintf("Regions[%d].CohortClients", i), "(%s) must be >= 0, got %d", rs.Region.Name, rs.CohortClients)
		}
	}
	seen := map[string]bool{}
	for i, a := range cfg.Arrivals {
		if a.Name == "" {
			return validate.Fieldf("acm", fmt.Sprintf("Arrivals[%d]", i), "has no name")
		}
		if seen[a.Name] {
			return validate.Fieldf("acm", fmt.Sprintf("Arrivals[%d].Name", i), "%q listed twice", a.Name)
		}
		seen[a.Name] = true
		// The name doubles as the stream's metrics label: colliding with a
		// region name would fold the stream's counters into that region's
		// entry-share accounting, and "global" is the global browsers' label.
		if _, taken := m.regionIndex[a.Name]; taken || a.Name == "global" {
			return validate.Fieldf("acm", fmt.Sprintf("Arrivals[%d].Name", i), "%q collides with a region/global metrics label", a.Name)
		}
		if err := a.Rate.Validate(); err != nil {
			return fmt.Errorf("acm: Arrivals[%d] (%s): %w", i, a.Name, err)
		}
		if a.Region == "" {
			if !cfg.GSLB.Enabled() {
				return validate.Fieldf("acm", fmt.Sprintf("Arrivals[%d]", i), "stream %q attaches globally but no GSLB policy is configured", a.Name)
			}
		} else if _, ok := m.regionIndex[a.Region]; !ok {
			return validate.Fieldf("acm", fmt.Sprintf("Arrivals[%d].Region", i), "pins stream %q to unknown region %q", a.Name, a.Region)
		}
	}
	for i, f := range cfg.Faults {
		if _, ok := m.vmcs[f.Region]; !ok {
			return validate.Fieldf("acm", fmt.Sprintf("Faults[%d].Region", i), "names unknown region %q", f.Region)
		}
		if f.At < 0 || f.Duration < 0 || f.KeepActive < 0 {
			return validate.Fieldf("acm", fmt.Sprintf("Faults[%d]", i), "for %s has negative At/Duration/KeepActive", f.Region)
		}
		// Overlapping outages on one region would interleave their
		// force/restore pairs: the earlier fault's restore would end the
		// later outage early and the later restore would reinstate a stale
		// target.  Back-to-back faults (one starting the instant the other
		// restores) are rejected too — the engine's same-timestamp FIFO
		// order would run the second force before the first restore.
		for j, g := range cfg.Faults[:i] {
			if g.Region != f.Region {
				continue
			}
			first, second := g, f
			if second.At < first.At {
				first, second = second, first
			}
			if first.Duration == 0 || second.At <= first.At+first.Duration {
				return validate.Fieldf("acm", "Faults", "%d and %d overlap on region %s (a permanent fault conflicts with any later one)", j, i, f.Region)
			}
		}
	}
	if len(cfg.LinkFaults) > 0 && !cfg.GSLB.LatencyAware() {
		return validate.Fieldf("acm", "LinkFaults", "require a latency-aware GSLB config (latency policy or an RTT matrix)")
	}
	if err := m.validateGossip(); err != nil {
		return err
	}
	streamKnown := map[string]bool{}
	for _, s := range m.globalStreamNames() {
		streamKnown[s] = true
	}
	for i, f := range cfg.LinkFaults {
		if !streamKnown[f.Stream] {
			return validate.Fieldf("acm", fmt.Sprintf("LinkFaults[%d].Stream", i), "names unknown population stream %q", f.Stream)
		}
		if _, ok := m.regionIndex[f.Region]; !ok {
			return validate.Fieldf("acm", fmt.Sprintf("LinkFaults[%d].Region", i), "names unknown region %q", f.Region)
		}
		if len(cfg.GSLB.RTT[f.Stream]) == 0 {
			return validate.Fieldf("acm", fmt.Sprintf("LinkFaults[%d]", i), "degrades stream %q, which has no GSLB.RTT row (the ground-truth path would stay at 0 ms)", f.Stream)
		}
		if f.At < 0 || f.Duration < 0 {
			return validate.Fieldf("acm", fmt.Sprintf("LinkFaults[%d]", i), "for %s:%s has negative At/Duration", f.Stream, f.Region)
		}
		if !(f.Factor > 0) || math.IsInf(f.Factor, 0) {
			return validate.Fieldf("acm", fmt.Sprintf("LinkFaults[%d].Factor", i), "= %v for %s:%s; must be positive and finite", f.Factor, f.Stream, f.Region)
		}
		// Like region faults, overlapping degradations of one path would
		// interleave their scale/restore pairs and reinstate stale values.
		for j, g := range cfg.LinkFaults[:i] {
			if g.Stream != f.Stream || g.Region != f.Region {
				continue
			}
			first, second := g, f
			if second.At < first.At {
				first, second = second, first
			}
			if first.Duration == 0 || second.At <= first.At+first.Duration {
				return validate.Fieldf("acm", "LinkFaults", "%d and %d overlap on %s:%s (a permanent fault conflicts with any later one)", j, i, f.Stream, f.Region)
			}
		}
	}
	return nil
}

// validateGossip rejects gossip health-plane configurations the wiring
// cannot realise.
func (m *Manager) validateGossip() error {
	cfg := m.cfg
	if cfg.GossipReplicas < 0 {
		return validate.Fieldf("acm", "GossipReplicas", "must be >= 0, got %d", cfg.GossipReplicas)
	}
	if cfg.GossipReplicas == 0 {
		if cfg.GossipInterval != 0 || cfg.GossipFanout != 0 || cfg.GossipDelay != 0 || cfg.GossipLoss != 0 || len(cfg.PartitionFaults) > 0 {
			return validate.Fieldf("acm", "GossipReplicas", "is 0 but gossip tuning/partition fields are set")
		}
		return nil
	}
	if !cfg.GSLB.Enabled() {
		return validate.Fieldf("acm", "GossipReplicas", "= %d but no GSLB policy configured", cfg.GossipReplicas)
	}
	if cfg.GSLB.LatencyAware() {
		return validate.Fieldf("acm", "GossipReplicas", "> 0 cannot run a latency-aware GSLB config (its passive estimators are central); use the central director")
	}
	if cfg.GossipInterval < 0 || cfg.GossipDelay < 0 {
		return validate.Fieldf("acm", "GossipInterval/GossipDelay", "must be >= 0")
	}
	if l := cfg.GossipLoss; math.IsNaN(l) || l < 0 || l >= 1 {
		return validate.Fieldf("acm", "GossipLoss", "= %v; must lie in [0, 1)", l)
	}
	for i, f := range cfg.PartitionFaults {
		if cfg.GossipReplicas < 2 {
			return validate.Fieldf("acm", fmt.Sprintf("PartitionFaults[%d]", i), "needs GossipReplicas >= 2, got %d", cfg.GossipReplicas)
		}
		if f.At < 0 || f.Duration < 0 {
			return validate.Fieldf("acm", fmt.Sprintf("PartitionFaults[%d]", i), "has negative At/Duration")
		}
		if len(f.Replicas) == 0 || len(f.Replicas) >= cfg.GossipReplicas {
			return validate.Fieldf("acm", fmt.Sprintf("PartitionFaults[%d].Replicas", i), "must isolate between 1 and %d replicas, got %d", cfg.GossipReplicas-1, len(f.Replicas))
		}
		seen := map[int]bool{}
		for _, r := range f.Replicas {
			if r < 0 || r >= cfg.GossipReplicas {
				return validate.Fieldf("acm", fmt.Sprintf("PartitionFaults[%d].Replicas", i), "names replica %d outside [0, %d)", r, cfg.GossipReplicas)
			}
			if seen[r] {
				return validate.Fieldf("acm", fmt.Sprintf("PartitionFaults[%d].Replicas", i), "lists replica %d twice", r)
			}
			seen[r] = true
		}
		// The plane holds one partition state, so concurrent splits would
		// interleave their Isolate/Heal pairs like overlapping region faults.
		for j, g := range cfg.PartitionFaults[:i] {
			first, second := g, f
			if second.At < first.At {
				first, second = second, first
			}
			if first.Duration == 0 || second.At <= first.At+first.Duration {
				return validate.Fieldf("acm", "PartitionFaults", "%d and %d overlap (a permanent partition conflicts with any later one)", j, i)
			}
		}
	}
	return nil
}

// globalStreamNames returns the director's population streams in deployment
// order: the global browser/cohort label first, then every globally attached
// arrival stream in configuration order.  The order is the latency
// estimator's stream indexing, so it is part of the determinism contract.
func (m *Manager) globalStreamNames() []string {
	streams := []string{"global"}
	for _, a := range m.cfg.Arrivals {
		if a.Region == "" {
			streams = append(streams, a.Name)
		}
	}
	return streams
}

// buildDirector assembles the global health plane over the deployment's
// regions: the central gslb.Director, or — when GossipReplicas is set — the
// replicated gossip.Plane whose replicas each probe their owned regions'
// live telemetry.
func (m *Manager) buildDirector() error {
	if !m.cfg.GSLB.Enabled() {
		return nil
	}
	sample := func(i int) cloudsim.Telemetry { return m.regions[i].Telemetry() }
	if m.cfg.GossipReplicas > 0 {
		p, err := gossip.New(gossip.Config{
			Replicas: m.cfg.GossipReplicas,
			Interval: m.cfg.GossipInterval,
			Fanout:   m.cfg.GossipFanout,
			Delay:    m.cfg.GossipDelay,
			Loss:     m.cfg.GossipLoss,
		}, m.cfg.GSLB, m.regionNames, m.cfg.Seed^hashString("gossip"), sample)
		if err != nil {
			return fmt.Errorf("acm: %w", err)
		}
		m.plane = p
		return nil
	}
	d, err := gslb.NewDirector(m.cfg.GSLB, m.regionNames, m.globalStreamNames(), sample)
	if err != nil {
		return fmt.Errorf("acm: %w", err)
	}
	m.director = d
	return nil
}

// startDirector installs the health-probe ticker on the control timeline:
// each tick samples every region, advances the failover state machine and
// republishes the routing-table snapshot to every lane while the shard
// loops are idle.
func (m *Manager) startDirector() {
	if m.plane != nil {
		// Gossip plane: two control-timeline cadences.  The probe tick
		// advances each owning replica's health state machine (bumping the
		// region versions); the gossip tick delivers and sends the push-pull
		// rounds.  Both republish every replica's table to its homed lanes —
		// serial, at exact timestamps, so the plane is byte-deterministic
		// for any worker count.
		probe := m.plane.GSLBConfig().ProbeInterval
		m.stopProbe = m.eng.Ticker(probe, func(eng *simclock.Engine) {
			m.plane.ProbeTick(eng.Now())
			if m.el != nil {
				m.el.installGossipTables(m.plane)
			}
		})
		m.stopGossip = m.eng.Ticker(m.plane.Interval(), func(eng *simclock.Engine) {
			m.plane.GossipTick(eng.Now())
			if m.el != nil {
				m.el.installGossipTables(m.plane)
			}
		})
		return
	}
	if m.director == nil {
		return
	}
	m.stopProbe = m.eng.Ticker(m.director.Config().ProbeInterval, func(eng *simclock.Engine) {
		// Flush the buffered completion observations first, so the tick
		// folds the freshest interval into the latency estimates before the
		// routing table is rebuilt.
		if m.el != nil {
			m.el.flushGSLBObs(m.director)
		}
		table := m.director.Tick(eng.Now())
		if m.el != nil {
			m.el.installGSLBTable(table)
		}
	})
}

// scheduleLinkFaults arms the scripted network-path degradations on the
// control timeline.  Validation guaranteed a latency-aware GSLB deployment,
// which always runs on the event loop.
func (m *Manager) scheduleLinkFaults() {
	if len(m.cfg.LinkFaults) == 0 {
		return
	}
	streamIndex := map[string]int{}
	for i, s := range m.globalStreamNames() {
		streamIndex[s] = i
	}
	for _, f := range m.cfg.LinkFaults {
		f := f
		s, r := streamIndex[f.Stream], m.regionIndex[f.Region]
		m.eng.ScheduleFunc(f.At, func(e *simclock.Engine) {
			prev := m.el.scaleLinkRTT(s, r, f.Factor)
			if f.Duration > 0 {
				e.ScheduleFunc(f.Duration, func(*simclock.Engine) {
					m.el.setLinkRTT(s, r, prev)
				})
			}
		})
	}
}

// schedulePartitionFaults arms the scripted gossip-plane splits on the
// control timeline.
func (m *Manager) schedulePartitionFaults() {
	for _, f := range m.cfg.PartitionFaults {
		f := f
		m.eng.ScheduleFunc(f.At, func(e *simclock.Engine) {
			m.plane.Isolate(f.Replicas)
			if f.Duration > 0 {
				e.ScheduleFunc(f.Duration, func(*simclock.Engine) {
					m.plane.Heal()
				})
			}
		})
	}
}

// scheduleFaults arms the scripted region outages on the control timeline.
func (m *Manager) scheduleFaults() {
	for _, f := range m.cfg.Faults {
		f := f
		vmc := m.vmcs[f.Region]
		m.eng.ScheduleFunc(f.At, func(e *simclock.Engine) {
			restore := vmc.ForceTargetActive(f.KeepActive)
			if f.Duration > 0 {
				e.ScheduleFunc(f.Duration, func(*simclock.Engine) {
					vmc.RestoreTargetActive(restore)
				})
			}
		})
	}
}

// buildSerialArrivals constructs the region-pinned arrival streams of a
// serial-engine deployment (global streams require the event loop, which
// GSLB deployments always use).
func (m *Manager) buildSerialArrivals() error {
	for i, a := range m.cfg.Arrivals {
		gen, err := workload.NewVaryingOpenLoop(workload.VaryingOpenLoopConfig{
			Region: a.Name,
			Rate:   a.Rate,
			Mix:    a.Mix,
			Tracer: m.tracer,
		}, simclock.NewStreamRNG(m.cfg.Seed^hashString("arrivals"), uint64(i)), m.entryDispatcher(a.Region), m.metrics)
		if err != nil {
			return fmt.Errorf("acm: arrival stream %q: %w", a.Name, err)
		}
		m.arrivals = append(m.arrivals, gen)
	}
	return nil
}

// Director returns the central global traffic director (nil when GSLB is
// disabled or the deployment runs the gossip plane instead).
func (m *Manager) Director() *gslb.Director { return m.director }

// GossipPlane returns the replicated gossip health plane (nil unless
// GossipReplicas is set).
func (m *Manager) GossipPlane() *gossip.Plane { return m.plane }

// GossipStats returns the gossip plane's protocol and convergence counters
// (nil unless GossipReplicas is set).
func (m *Manager) GossipStats() *gossip.Stats {
	if m.plane == nil {
		return nil
	}
	s := m.plane.Stats()
	return &s
}

// GSLBRouted returns how many requests the global health plane (central
// director or gossip replicas) routed to each region, keyed by region name
// (nil when GSLB is disabled).  On the event loop the per-lane counters are
// folded in lane order.
func (m *Manager) GSLBRouted() map[string]uint64 {
	if m.director == nil && m.plane == nil {
		return nil
	}
	out := map[string]uint64{}
	totals := m.el.mergedGSLBRouted()
	for i, name := range m.regionNames {
		out[name] = totals[i]
	}
	return out
}

// GSLBRoutedPerLane returns the per-lane routed counters ([lane][region]),
// the view that tells split-brain stories apart: with the gossip plane, each
// lane's row reflects its home replica's view of the world.  Nil when GSLB
// is disabled.
func (m *Manager) GSLBRoutedPerLane() [][]uint64 {
	if m.director == nil && m.plane == nil {
		return nil
	}
	out := make([][]uint64, len(m.el.gslbRouted))
	for g := range m.el.gslbRouted {
		out[g] = append([]uint64(nil), m.el.gslbRouted[g]...)
	}
	return out
}

// GSLBTransitions returns the health plane's state transitions rendered one
// per line ("t=630s region1 degraded->drained"), in probe order — the
// drain/failover/failback record the scenario goldens pin.  With the gossip
// plane these are the authoritative transitions as seen by region owners.
func (m *Manager) GSLBTransitions() []string {
	var trans []gslb.Transition
	switch {
	case m.plane != nil:
		trans = m.plane.Transitions()
	case m.director != nil:
		trans = m.director.Transitions()
	default:
		return nil
	}
	out := make([]string, len(trans))
	for i, t := range trans {
		out[i] = t.String()
	}
	return out
}

// GSLBLatencyEstimates returns the director's learned round-trip estimates
// in milliseconds, keyed "stream:region": the EWMA the routing weights use
// and the P² p95 of the raw observations.  Both maps are nil unless the
// deployment is latency-aware.
func (m *Manager) GSLBLatencyEstimates() (ewma, p95 map[string]float64) {
	if m.director == nil || !m.director.LatencyAware() {
		return nil, nil
	}
	ewma = map[string]float64{}
	p95 = map[string]float64{}
	for s, sname := range m.director.Streams() {
		for r, rname := range m.regionNames {
			key := sname + ":" + rname
			ewma[key] = m.director.LatencyEstimateMs(s, r)
			p95[key] = m.director.LatencyP95Ms(s, r)
		}
	}
	return ewma, p95
}
