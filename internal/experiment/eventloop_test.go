package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/simclock"
)

// The parallel-event-loop suite: the sharded event loop (one sub-engine per
// region shard, cross-shard mailboxes, lockstep epochs) must be
// byte-identical across every EventWorkers >= 1 and every GOMAXPROCS, and
// its behaviour is pinned by goldens of its own.  EventWorkers = 0 is the
// serial engine, pinned by the pre-existing golden suite — the two engines
// produce intentionally different bytes (cross-shard effects are
// epoch-quantised on the event loop), which is why the event loop carries
// separate goldens instead of replaying the serial ones.

// eventLoopWorkerCounts mirrors tickWorkerCounts: inline (1), a fixed
// fan-out (4) and whatever the host offers.
func eventLoopWorkerCounts() []int {
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		counts = append(counts, p)
	}
	return counts
}

// eventLoopFingerprint renders a Result into the byte-pinned golden summary.
func eventLoopFingerprint(t *testing.T, res *Result) []byte {
	t.Helper()
	g, err := goldenFromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestEventLoopSmoke runs a short figure4 on the sharded event loop and
// checks the deployment actually behaves like a deployment: requests are
// served, control eras complete and the SLA holds.  It is the cheap
// always-on canary for the parallel event loop (the equivalence and golden
// tests below are skipped in -short mode).
func TestEventLoopSmoke(t *testing.T) {
	sc, err := BuildScenario("figure4-eventloop", 42)
	if err != nil {
		t.Fatal(err)
	}
	sc.Horizon = 5 * simclock.Minute
	sc.EventWorkers = 2
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, np)
	if err != nil {
		t.Fatal(err)
	}
	mgr := res
	if mgr.Eras == 0 {
		t.Fatal("no control eras completed on the event loop")
	}
	if res.SuccessRatio < 0.5 {
		t.Fatalf("success ratio %.3f on the event loop, want >= 0.5", res.SuccessRatio)
	}
	if res.MeanResponseTime <= 0 {
		t.Fatalf("mean response time %v, want > 0", res.MeanResponseTime)
	}
}

// TestEventLoopWorkersEquivalence is the event-loop determinism workhorse:
// the 3-shard figure4 deployment — cross-region forwarding, standby
// promotions and reactive recoveries all crossing shards through mailboxes —
// must produce byte-identical output (full summary plus the SHA-256 of every
// raw series) at EventWorkers 1, 4 and GOMAXPROCS.  The CI
// multicore-determinism job replays it with GOMAXPROCS=4 under -race, where
// EventWorkers > 1 genuinely runs the shard loops on distinct cores.
func TestEventLoopWorkersEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the figure4 event-loop simulation once per worker count")
	}
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []byte {
		sc, err := BuildScenario("figure4-eventloop", 42)
		if err != nil {
			t.Fatal(err)
		}
		sc.Horizon = goldenHorizon
		sc.EventWorkers = workers
		res, err := Run(sc, np)
		if err != nil {
			t.Fatal(err)
		}
		return eventLoopFingerprint(t, res)
	}
	ref := run(1)
	for _, workers := range eventLoopWorkerCounts()[1:] {
		if got := run(workers); !bytes.Equal(got, ref) {
			t.Fatalf("EventWorkers=%d diverged from EventWorkers=1\n--- got ---\n%s\n--- want ---\n%s", workers, got, ref)
		}
	}
}

// TestEventLoopRunTwiceDeterministic reruns the same event-loop
// configuration in one process and demands identical bytes — the guard
// against hidden shared state (package-level caches, map iteration, pointer
// identities) leaking into results.
func TestEventLoopRunTwiceDeterministic(t *testing.T) {
	np, err := PolicyByKey("policy1")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []byte {
		sc, err := BuildScenario("figure4-eventloop", 7)
		if err != nil {
			t.Fatal(err)
		}
		sc.Horizon = 5 * simclock.Minute
		sc.EventWorkers = runtime.GOMAXPROCS(0)
		res, err := Run(sc, np)
		if err != nil {
			t.Fatal(err)
		}
		return eventLoopFingerprint(t, res)
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("two identical event-loop runs diverged\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestMegaregionEventLoopEquivalence pins the 16-shard megaregion — the
// scale configuration the event loop exists for — across worker counts on a
// shortened horizon (the full scenario is benchmark territory).
func TestMegaregionEventLoopEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 5x10^3-VM region once per worker count")
	}
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []byte {
		sc, err := BuildScenario("megaregion-eventloop", 42)
		if err != nil {
			t.Fatal(err)
		}
		sc.Horizon = 5 * simclock.Minute
		sc.EventWorkers = workers
		res, err := Run(sc, np)
		if err != nil {
			t.Fatal(err)
		}
		return eventLoopFingerprint(t, res)
	}
	ref := run(1)
	if got := run(runtime.GOMAXPROCS(0)); !bytes.Equal(got, ref) {
		t.Fatalf("megaregion-eventloop EventWorkers=GOMAXPROCS diverged from EventWorkers=1")
	}
}

// TestGoldenEventLoopScenarios byte-pins the parallel event loop the same
// way the serial engine is pinned: figure4-eventloop under each policy,
// recorded at the scenario's default EventWorkers and compared down to the
// SHA-256 of every raw series.  Regenerate with:
//
//	go test ./internal/experiment -run TestGoldenEventLoop -update
func TestGoldenEventLoopScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three 30-minute event-loop simulations")
	}
	for _, np := range Policies() {
		np := np
		t.Run("figure4-eventloop/"+np.Key, func(t *testing.T) {
			sc, err := BuildScenario("figure4-eventloop", 42)
			if err != nil {
				t.Fatal(err)
			}
			sc.Horizon = goldenHorizon
			res, err := Run(sc, np)
			if err != nil {
				t.Fatal(err)
			}
			got := eventLoopFingerprint(t, res)
			path := filepath.Join("testdata", "golden", fmt.Sprintf("figure4-eventloop-%s.json", np.Key))
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to record): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("event-loop summary drifted from golden %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}
