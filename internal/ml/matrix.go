// Package ml implements the machine-learning toolchain used by the F2PM
// framework: the regression models the paper lists (Linear Regression, M5P,
// REP-Tree, Lasso, SVM, Least-Squares SVM), the evaluation metrics used to
// pick among them, k-fold cross validation, and Lasso-based feature
// selection.  Everything is built on the standard library only.
package ml

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system cannot be solved because its
// matrix is (numerically) singular.
var ErrSingular = errors.New("ml: singular matrix")

// ErrEmptyDataset is returned when a model is asked to train on no samples.
var ErrEmptyDataset = errors.New("ml: empty dataset")

// ErrDimensionMismatch is returned when matrix/vector dimensions disagree.
var ErrDimensionMismatch = errors.New("ml: dimension mismatch")

// Dot returns the inner product of a and b.  It panics on length mismatch,
// which always indicates a programming error.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("ml: dot product length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// MatVec returns A·x.
func MatVec(a [][]float64, x []float64) []float64 {
	out := make([]float64, len(a))
	for i, row := range a {
		out[i] = Dot(row, x)
	}
	return out
}

// Transpose returns the transpose of a (rows become columns).
func Transpose(a [][]float64) [][]float64 {
	if len(a) == 0 {
		return nil
	}
	rows, cols := len(a), len(a[0])
	out := make([][]float64, cols)
	for j := 0; j < cols; j++ {
		out[j] = make([]float64, rows)
		for i := 0; i < rows; i++ {
			out[j][i] = a[i][j]
		}
	}
	return out
}

// MatMul returns A·B.
func MatMul(a, b [][]float64) ([][]float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return nil, ErrDimensionMismatch
	}
	n, k, m := len(a), len(a[0]), len(b[0])
	if len(b) != k {
		return nil, ErrDimensionMismatch
	}
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = make([]float64, m)
		for t := 0; t < k; t++ {
			aval := a[i][t]
			if aval == 0 {
				continue
			}
			brow := b[t]
			for j := 0; j < m; j++ {
				out[i][j] += aval * brow[j]
			}
		}
	}
	return out, nil
}

// SolveLinearSystem solves A·x = b in place using Gaussian elimination with
// partial pivoting.  A and b are copied, not modified.
func SolveLinearSystem(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, ErrDimensionMismatch
	}
	// Augmented copy.
	m := make([][]float64, n)
	for i := range a {
		if len(a[i]) != n {
			return nil, ErrDimensionMismatch
		}
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivoting.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			factor := m[r][col] / m[col][col]
			if factor == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= factor * m[col][c]
			}
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := m[i][n]
		for j := i + 1; j < n; j++ {
			sum -= m[i][j] * x[j]
		}
		x[i] = sum / m[i][i]
	}
	return x, nil
}

// NormalEquations solves the least-squares problem min ||X·w - y||² (with an
// optional ridge penalty lambda>=0 on all weights except the intercept, which
// the caller encodes as the first column of ones) via the normal equations
// (XᵀX + λI)·w = Xᵀy.
func NormalEquations(x [][]float64, y []float64, lambda float64, interceptCol int) ([]float64, error) {
	if len(x) == 0 {
		return nil, ErrEmptyDataset
	}
	if len(x) != len(y) {
		return nil, ErrDimensionMismatch
	}
	xt := Transpose(x)
	xtx, err := MatMul(xt, x)
	if err != nil {
		return nil, err
	}
	if lambda > 0 {
		for i := range xtx {
			if i == interceptCol {
				continue
			}
			xtx[i][i] += lambda
		}
	}
	xty := MatVec(xt, y)
	w, err := SolveLinearSystem(xtx, xty)
	if err != nil && errors.Is(err, ErrSingular) && lambda == 0 {
		// Retry with a tiny ridge to regularise collinear designs.
		return NormalEquations(x, y, 1e-8, interceptCol)
	}
	return w, err
}

// Standardizer rescales features to zero mean and unit variance, remembering
// the statistics so the same transform can be applied at prediction time.
// Constant columns are left untouched (scale 1) to avoid division by zero.
type Standardizer struct {
	Mean  []float64
	Scale []float64
}

// FitStandardizer computes column means and standard deviations of x.
func FitStandardizer(x [][]float64) *Standardizer {
	if len(x) == 0 {
		return &Standardizer{}
	}
	cols := len(x[0])
	s := &Standardizer{Mean: make([]float64, cols), Scale: make([]float64, cols)}
	n := float64(len(x))
	for j := 0; j < cols; j++ {
		sum := 0.0
		for i := range x {
			sum += x[i][j]
		}
		s.Mean[j] = sum / n
	}
	for j := 0; j < cols; j++ {
		sq := 0.0
		for i := range x {
			d := x[i][j] - s.Mean[j]
			sq += d * d
		}
		sd := math.Sqrt(sq / n)
		if sd < 1e-12 {
			sd = 1
		}
		s.Scale[j] = sd
	}
	return s
}

// Transform returns a standardised copy of x.
func (s *Standardizer) Transform(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = s.TransformRow(row)
	}
	return out
}

// TransformRow returns a standardised copy of a single row.
func (s *Standardizer) TransformRow(row []float64) []float64 {
	out := make([]float64, len(row))
	for j, v := range row {
		if j < len(s.Mean) {
			out[j] = (v - s.Mean[j]) / s.Scale[j]
		} else {
			out[j] = v
		}
	}
	return out
}

// addIntercept prefixes each row with a 1 so linear models can learn a bias
// term through the same weight vector.
func addIntercept(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		r := make([]float64, len(row)+1)
		r[0] = 1
		copy(r[1:], row)
		out[i] = r
	}
	return out
}

// copyMatrix returns a deep copy of x.
func copyMatrix(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// meanOf returns the arithmetic mean of xs (0 when empty).
func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// varianceOf returns the population variance of xs.
func varianceOf(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := meanOf(xs)
	s := 0.0
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs))
}
