package core

import (
	"math"
	"testing"
	"testing/quick"
)

func sumOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func validFractions(t *testing.T, f []float64, n int) {
	t.Helper()
	if len(f) != n {
		t.Fatalf("fraction vector length = %d, want %d", len(f), n)
	}
	for i, v := range f {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("fraction %d = %v, want finite non-negative", i, v)
		}
	}
	if s := sumOf(f); math.Abs(s-1) > 1e-9 {
		t.Fatalf("fractions sum to %v, want 1", s)
	}
}

func threeRegionInput(rmttf []float64, prev []float64, lambda float64) PolicyInput {
	return PolicyInput{
		Regions:       []string{"region1", "region2", "region3"},
		RMTTF:         rmttf,
		PrevFractions: prev,
		Lambda:        lambda,
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 6, 2})
	want := []float64{0.2, 0.6, 0.2}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Normalize = %v, want %v", got, want)
		}
	}
	// Negative, NaN and Inf entries are clamped to zero.
	got = Normalize([]float64{-1, math.NaN(), math.Inf(1), 3})
	if got[0] != 0 || got[1] != 0 || got[2] != 0 || got[3] != 1 {
		t.Fatalf("Normalize with invalid entries = %v", got)
	}
	// All-zero falls back to uniform.
	got = Normalize([]float64{0, 0, 0, 0})
	for _, v := range got {
		if v != 0.25 {
			t.Fatalf("Normalize of zeros = %v, want uniform", got)
		}
	}
}

func TestPolicyInputValidation(t *testing.T) {
	var p SensibleRouting
	if _, err := p.Fractions(PolicyInput{}); err == nil {
		t.Errorf("empty input should be rejected")
	}
	if _, err := p.Fractions(PolicyInput{Regions: []string{"a"}, RMTTF: []float64{1, 2}, PrevFractions: []float64{1}}); err == nil {
		t.Errorf("mismatched lengths should be rejected")
	}
}

func TestSensibleRoutingEquation2(t *testing.T) {
	f, err := SensibleRouting{}.Fractions(threeRegionInput(
		[]float64{3000, 6000, 1000}, []float64{0.4, 0.4, 0.2}, 50))
	if err != nil {
		t.Fatalf("Fractions: %v", err)
	}
	validFractions(t, f, 3)
	// f_i = RMTTF_i / ΣRMTTF = 0.3, 0.6, 0.1.
	want := []float64{0.3, 0.6, 0.1}
	for i := range want {
		if math.Abs(f[i]-want[i]) > 1e-9 {
			t.Fatalf("policy1 fractions = %v, want %v", f, want)
		}
	}
	if (SensibleRouting{}).Name() == "" {
		t.Fatalf("policy must have a name")
	}
}

func TestAvailableResourcesEquations3And4(t *testing.T) {
	// Q_i = RMTTF_i * f_i * λ; the fractions are Q_i normalised.
	f, err := AvailableResources{}.Fractions(threeRegionInput(
		[]float64{2000, 1000, 4000}, []float64{0.5, 0.3, 0.2}, 80))
	if err != nil {
		t.Fatalf("Fractions: %v", err)
	}
	validFractions(t, f, 3)
	q := []float64{2000 * 0.5, 1000 * 0.3, 4000 * 0.2} // λ cancels in the normalisation
	want := Normalize(q)
	for i := range want {
		if math.Abs(f[i]-want[i]) > 1e-9 {
			t.Fatalf("policy2 fractions = %v, want %v", f, want)
		}
	}
}

func TestAvailableResourcesZeroLambdaAndMinFraction(t *testing.T) {
	// λ = 0 must not break the estimate (it scales all Q_i identically).
	f, err := AvailableResources{}.Fractions(threeRegionInput(
		[]float64{1000, 1000, 1000}, []float64{0.2, 0.3, 0.5}, 0))
	if err != nil {
		t.Fatalf("Fractions: %v", err)
	}
	validFractions(t, f, 3)
	if math.Abs(f[2]-0.5) > 1e-9 {
		t.Fatalf("with equal RMTTFs the fractions should follow the previous ones, got %v", f)
	}

	// MinFraction floors starved regions.
	floored, err := AvailableResources{MinFraction: 0.1}.Fractions(threeRegionInput(
		[]float64{1000, 1000, 1000}, []float64{0.0, 0.5, 0.5}, 10))
	if err != nil {
		t.Fatalf("Fractions: %v", err)
	}
	validFractions(t, floored, 3)
	if floored[0] < 0.05 {
		t.Fatalf("MinFraction should lift the starved region above zero, got %v", floored)
	}
}

func TestExplorationShiftsLoadTowardHealthyRegions(t *testing.T) {
	p := &Exploration{K: 1}
	prev := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	// Region 3 is failing much sooner (overloaded): it must lose traffic;
	// region 2 has the largest RMTTF: it must gain traffic.
	f, err := p.Fractions(threeRegionInput([]float64{3000, 6000, 500}, prev, 40))
	if err != nil {
		t.Fatalf("Fractions: %v", err)
	}
	validFractions(t, f, 3)
	if f[2] >= prev[2] {
		t.Fatalf("overloaded region should lose traffic: %v", f)
	}
	if f[1] <= prev[1] {
		t.Fatalf("healthiest region should gain traffic: %v", f)
	}
	if p.Name() == "" {
		t.Fatalf("policy must have a name")
	}
}

func TestExplorationZeroRMTTFFallsBack(t *testing.T) {
	p := &Exploration{}
	prev := []float64{0.7, 0.2, 0.1}
	f, err := p.Fractions(threeRegionInput([]float64{0, 0, 0}, prev, 10))
	if err != nil {
		t.Fatalf("Fractions: %v", err)
	}
	validFractions(t, f, 3)
	for i := range prev {
		if math.Abs(f[i]-prev[i]) > 1e-9 {
			t.Fatalf("with zero RMTTFs the previous fractions should be kept, got %v", f)
		}
	}
}

func TestExplorationJitterIsDeterministic(t *testing.T) {
	in := threeRegionInput([]float64{3000, 6000, 500}, []float64{0.4, 0.4, 0.2}, 40)
	a := &Exploration{K: 1, Jitter: 0.05}
	b := &Exploration{K: 1, Jitter: 0.05}
	fa, err := a.Fractions(in)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Fractions(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("jittered exploration should be deterministic across identical instances: %v vs %v", fa, fb)
		}
	}
	validFractions(t, fa, 3)
}

func TestUniformAndStaticBaselines(t *testing.T) {
	in := threeRegionInput([]float64{10, 20, 30}, []float64{0.1, 0.1, 0.8}, 5)
	u, err := Uniform{}.Fractions(in)
	if err != nil {
		t.Fatalf("uniform: %v", err)
	}
	validFractions(t, u, 3)
	for _, v := range u {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("uniform fractions = %v", u)
		}
	}

	s, err := Static{Weights: []float64{6, 12, 4}}.Fractions(in)
	if err != nil {
		t.Fatalf("static: %v", err)
	}
	validFractions(t, s, 3)
	if math.Abs(s[1]-12.0/22) > 1e-9 {
		t.Fatalf("static fractions = %v", s)
	}
	if _, err := (Static{Weights: []float64{1}}).Fractions(in); err == nil {
		t.Fatalf("static with wrong weight count should fail")
	}
	if (Uniform{}).Name() == "" || (Static{}).Name() == "" {
		t.Fatalf("baselines must have names")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"policy1", "sensible", "policy2", "resources", "policy3", "exploration", "uniform"} {
		p, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("ByName(%q) returned unnamed policy", name)
		}
	}
	if _, err := ByName("does-not-exist"); err == nil {
		t.Fatalf("unknown policy name should fail")
	}
}

// Property: every policy returns non-negative fractions summing to 1 for any
// positive RMTTF vector and any valid previous fraction vector.
func TestPoliciesProduceValidDistributionsProperty(t *testing.T) {
	policies := []Policy{
		SensibleRouting{},
		AvailableResources{},
		AvailableResources{MinFraction: 0.05},
		&Exploration{K: 1},
		&Exploration{K: 0.8, Jitter: 0.1},
		Uniform{},
	}
	f := func(r1, r2, r3 uint16, p1, p2, p3 uint8, lambda uint8) bool {
		rmttf := []float64{float64(r1) + 1, float64(r2) + 1, float64(r3) + 1}
		prev := Normalize([]float64{float64(p1) + 1, float64(p2) + 1, float64(p3) + 1})
		in := threeRegionInput(rmttf, prev, float64(lambda))
		for _, p := range policies {
			out, err := p.Fractions(in)
			if err != nil {
				return false
			}
			if len(out) != 3 {
				return false
			}
			s := 0.0
			for _, v := range out {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
				s += v
			}
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// closedLoopModel iterates a policy against an analytic region model in which
// the RMTTF of region i is inversely proportional to the request rate it
// receives: RMTTF_i = C_i / (f_i * λ).  C_i is the region's anomaly budget
// (bigger regions absorb more requests before failing).  This is the
// idealised version of what the cloud simulator produces and lets the test
// verify the qualitative claims of Section VI-B at the policy level.
func closedLoopModel(p Policy, capacities []float64, lambda float64, iters int) (rmttf []float64, fractions []float64, spreads []float64) {
	n := len(capacities)
	fractions = make([]float64, n)
	for i := range fractions {
		fractions[i] = 1 / float64(n)
	}
	rmttf = make([]float64, n)
	for it := 0; it < iters; it++ {
		for i := range rmttf {
			f := fractions[i]
			if f < 1e-6 {
				f = 1e-6
			}
			rmttf[i] = capacities[i] / (f * lambda)
		}
		spreads = append(spreads, spread(rmttf))
		next, err := p.Fractions(PolicyInput{
			Regions:       make([]string, n),
			RMTTF:         append([]float64(nil), rmttf...),
			PrevFractions: fractions,
			Lambda:        lambda,
		})
		if err != nil {
			panic(err)
		}
		fractions = next
	}
	return rmttf, fractions, spreads
}

func spread(xs []float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	m := sumOf(xs) / float64(len(xs))
	if m == 0 {
		return 0
	}
	return (hi - lo) / m
}

// tailMax returns the maximum of the last k values.
func tailMax(xs []float64, k int) float64 {
	if k > len(xs) {
		k = len(xs)
	}
	m := 0.0
	for _, v := range xs[len(xs)-k:] {
		m = math.Max(m, v)
	}
	return m
}

func TestPolicy2EqualisesRMTTFInClosedLoop(t *testing.T) {
	capacities := []float64{90000, 81600, 16400} // ∝ paper regions 1, 2, 3
	rmttf, fractions, spreads := closedLoopModel(AvailableResources{}, capacities, 70, 30)
	// The RMTTF spread must stay near zero over the whole steady-state tail,
	// not just at the final sample.
	if s := tailMax(spreads, 10); s > 0.02 {
		t.Fatalf("policy2 should equalise the region RMTTFs, tail spread = %v (rmttf=%v)", s, rmttf)
	}
	// The fractions must end up proportional to the capacities.
	wantFrac := Normalize(capacities)
	for i := range wantFrac {
		if math.Abs(fractions[i]-wantFrac[i]) > 0.02 {
			t.Fatalf("policy2 fractions = %v, want ≈ %v", fractions, wantFrac)
		}
	}
}

func TestPolicy1DoesNotEqualiseRMTTFInClosedLoop(t *testing.T) {
	capacities := []float64{90000, 81600, 16400}
	rmttf, _, spreads := closedLoopModel(SensibleRouting{}, capacities, 70, 60)
	// Sensible routing keeps over-correcting: the fractions (and with them the
	// RMTTFs) oscillate instead of settling at a common value, which is what
	// Figures 3 and 4 of the paper show.  The spread therefore keeps returning
	// to large values in the steady-state tail.
	if s := tailMax(spreads, 10); s < 0.3 {
		t.Fatalf("policy1 should NOT keep the RMTTFs equalised for heterogeneous regions, tail spread = %v (rmttf=%v)", s, rmttf)
	}
}

func TestPolicy3ReducesRMTTFSpreadInClosedLoop(t *testing.T) {
	capacities := []float64{90000, 81600, 16400}
	_, _, spreads := closedLoopModel(&Exploration{K: 1}, capacities, 70, 80)
	early := spreads[0]
	if late := tailMax(spreads, 10); late >= early*0.5 {
		t.Fatalf("policy3 should substantially reduce the RMTTF spread over time: early=%v late=%v", early, late)
	}
}

func TestPolicy2ConvergesFasterThanPolicy3(t *testing.T) {
	capacities := []float64{90000, 81600, 16400}
	const lambda, horizon = 70.0, 12
	_, _, s2 := closedLoopModel(AvailableResources{}, capacities, lambda, horizon)
	_, _, s3 := closedLoopModel(&Exploration{K: 1}, capacities, lambda, horizon)
	if tailMax(s2, 3) >= tailMax(s3, 3) {
		t.Fatalf("after %d eras policy2 should be closer to convergence than policy3: p2=%v p3=%v",
			horizon, tailMax(s2, 3), tailMax(s3, 3))
	}
}

func BenchmarkPolicy2Fractions(b *testing.B) {
	in := threeRegionInput([]float64{3000, 6000, 500}, []float64{0.4, 0.4, 0.2}, 70)
	p := AvailableResources{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Fractions(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolicy3Fractions(b *testing.B) {
	in := threeRegionInput([]float64{3000, 6000, 500}, []float64{0.4, 0.4, 0.2}, 70)
	p := &Exploration{K: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Fractions(in); err != nil {
			b.Fatal(err)
		}
	}
}
