package experiment

import (
	"embed"
	"fmt"
	"path"
	"sort"
	"strings"

	"repro/internal/simclock"
)

// This file generates docs/SCENARIOS.md from the scenario registry, so the
// scenario catalogue can never drift from the code: the document is a pure
// function of the registered constructors and the golden files, `make docs`
// rewrites it, and TestScenariosDocCurrent fails the build when the committed
// copy is stale.

// goldenFS embeds the golden regression files so the generated catalogue can
// state, per scenario, exactly which byte-pinned goldens guard it.
//
//go:embed testdata/golden/*.json
var goldenFS embed.FS

// goldensByScenario maps each scenario name to its golden file names, derived
// from the testdata/golden layout (<scenario>-<policy>.json; policy keys
// contain no hyphen, so the last hyphen splits the two).
func goldensByScenario() map[string][]string {
	entries, err := goldenFS.ReadDir("testdata/golden")
	if err != nil {
		// The directory is embedded at compile time; failing to read it is a
		// build defect, not a runtime condition.
		panic(fmt.Sprintf("experiment: reading embedded goldens: %v", err))
	}
	out := map[string][]string{}
	for _, e := range entries {
		name := strings.TrimSuffix(e.Name(), path.Ext(e.Name()))
		cut := strings.LastIndex(name, "-")
		if cut <= 0 {
			continue
		}
		scenario := name[:cut]
		out[scenario] = append(out[scenario], e.Name())
	}
	for _, files := range out {
		sort.Strings(files)
	}
	return out
}

// docDuration renders a simclock duration compactly for the catalogue.
func docDuration(d simclock.Duration) string {
	s := d.Seconds()
	switch {
	case s >= 3600 && s == float64(int(s/3600))*3600:
		return fmt.Sprintf("%.0f h", s/3600)
	case s >= 60 && s == float64(int(s/60))*60:
		return fmt.Sprintf("%.0f min", s/60)
	default:
		return fmt.Sprintf("%g s", s)
	}
}

// scenarioHighlights summarises the configuration knobs that make a scenario
// what it is — deployment shape, traffic sources, engine selection, director
// and gossip settings, fault schedules — as short markdown bullet fragments.
func scenarioHighlights(sc Scenario) []string {
	var hl []string

	names := sc.RegionNames()
	shards := 0
	for _, r := range sc.Regions {
		if r.Region.Shards > shards {
			shards = r.Region.Shards
		}
	}
	region := fmt.Sprintf("%d regions (%s)", len(names), strings.Join(names, ", "))
	if len(names) == 1 {
		region = fmt.Sprintf("1 region (%s)", names[0])
	}
	if shards > 1 {
		region += fmt.Sprintf(", up to %d engine shards", shards)
	}
	hl = append(hl, region)

	var traffic []string
	if n := sc.TotalClients(); n > 0 {
		traffic = append(traffic, fmt.Sprintf("%d pinned browsers", n))
	}
	if sc.GlobalClients > 0 {
		traffic = append(traffic, fmt.Sprintf("%d global browsers", sc.GlobalClients))
	}
	cohort := sc.CohortClients
	for _, r := range sc.Regions {
		cohort += r.CohortClients
	}
	if cohort > 0 {
		traffic = append(traffic, fmt.Sprintf("%d cohort-compressed clients", cohort))
	}
	if len(sc.Arrivals) > 0 {
		streams := make([]string, len(sc.Arrivals))
		for i, a := range sc.Arrivals {
			streams[i] = a.Name
		}
		traffic = append(traffic, fmt.Sprintf("arrival streams %s", strings.Join(streams, ", ")))
	}
	if len(traffic) > 0 {
		hl = append(hl, strings.Join(traffic, " + "))
	}

	hl = append(hl, fmt.Sprintf("horizon %s, control interval %s",
		docDuration(sc.Horizon), docDuration(sc.ControlInterval)))

	if sc.EventWorkers > 0 {
		hl = append(hl, fmt.Sprintf("sharded event loop, %d workers", sc.EventWorkers))
	}
	if sc.GSLB.Enabled() {
		g := fmt.Sprintf("GSLB policy `%s`", sc.GSLB.Policy)
		if len(sc.GSLB.Preference) > 0 {
			g += fmt.Sprintf(" (preference %s)", strings.Join(sc.GSLB.Preference, " > "))
		}
		if len(sc.GSLB.RTT) > 0 {
			g += fmt.Sprintf(", %d-stream RTT matrix", len(sc.GSLB.RTT))
		}
		hl = append(hl, g)
	}
	if sc.GossipReplicas > 0 {
		interval := sc.GossipInterval
		if interval <= 0 {
			interval = 10 * simclock.Second // the gossip plane's own default
		}
		g := fmt.Sprintf("%d gossip replicas, %s rounds", sc.GossipReplicas, docDuration(interval))
		if sc.GossipLoss > 0 {
			g += fmt.Sprintf(", %.0f%% message loss", 100*sc.GossipLoss)
		}
		if sc.GossipDelay > 0 {
			g += fmt.Sprintf(", %s link delay", docDuration(sc.GossipDelay))
		}
		hl = append(hl, g)
	}

	var faults []string
	if n := len(sc.Faults); n > 0 {
		faults = append(faults, fmt.Sprintf("%d region outage(s)", n))
	}
	if n := len(sc.LinkFaults); n > 0 {
		faults = append(faults, fmt.Sprintf("%d link fault(s)", n))
	}
	if n := len(sc.PartitionFaults); n > 0 {
		faults = append(faults, fmt.Sprintf("%d gossip partition(s)", n))
	}
	if len(faults) > 0 {
		hl = append(hl, "faults: "+strings.Join(faults, ", "))
	}
	return hl
}

// ScenariosMarkdown renders the scenario catalogue: every registered scenario
// with its description, configuration highlights (built at seed 42, the seed
// the goldens pin) and the golden files that guard it.  `acmsim
// -list-scenarios -markdown` prints this document and `make docs` writes it
// to docs/SCENARIOS.md.
func ScenariosMarkdown() (string, error) {
	goldens := goldensByScenario()
	var b strings.Builder
	b.WriteString("# Scenario catalogue\n\n")
	b.WriteString("<!-- Generated by `make docs` (acmsim -list-scenarios -markdown). DO NOT EDIT.\n")
	b.WriteString("     Edit the constructors in internal/experiment/scenario.go and rerun `make docs`. -->\n\n")
	b.WriteString("Every scenario is a registered constructor in `internal/experiment`\n")
	b.WriteString("(`RegisterScenario`), runnable with `acmsim -scenario <name>` and buildable\n")
	b.WriteString("in code with `experiment.BuildScenario(name, seed)`. Configuration\n")
	b.WriteString("highlights below are taken at seed 42, the seed the golden regression\n")
	b.WriteString("files pin. Scenarios without goldens are guarded by behavioural tests\n")
	b.WriteString("instead.\n")

	for _, name := range documentedScenarioNames() {
		sc, err := BuildScenario(name, 42)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "\n## %s\n\n", name)
		fmt.Fprintf(&b, "%s.\n\n", strings.TrimSuffix(ScenarioDescription(name), "."))
		for _, hl := range scenarioHighlights(sc) {
			fmt.Fprintf(&b, "- %s\n", hl)
		}
		if files := goldens[name]; len(files) > 0 {
			refs := make([]string, len(files))
			for i, f := range files {
				refs[i] = fmt.Sprintf("`%s`", f)
			}
			fmt.Fprintf(&b, "- goldens: %s\n", strings.Join(refs, ", "))
		}
	}
	return b.String(), nil
}
