package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean = %f, want 5", Mean(xs))
	}
	if Variance(xs) != 4 {
		t.Fatalf("variance = %f, want 4", Variance(xs))
	}
	if StdDev(xs) != 2 {
		t.Fatalf("stddev = %f, want 2", StdDev(xs))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate inputs should yield 0")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 11 {
		t.Fatalf("min/max/sum wrong: %f %f %f", Min(xs), Max(xs), Sum(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty min/max should be infinities")
	}
}

func TestPercentileAndMedian(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Median(xs) != 3 {
		t.Fatalf("median = %f, want 3", Median(xs))
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("extreme percentiles wrong")
	}
	if !almostEqual(Percentile(xs, 25), 2, 1e-9) {
		t.Fatalf("p25 = %f, want 2", Percentile(xs, 25))
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	// Interpolated value
	if !almostEqual(Percentile([]float64{1, 2}, 50), 1.5, 1e-9) {
		t.Fatal("interpolation wrong")
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if CoefficientOfVariation([]float64{5, 5, 5}) != 0 {
		t.Fatal("constant series should have CV 0")
	}
	if CoefficientOfVariation([]float64{0, 0}) != 0 {
		t.Fatal("zero-mean series should return 0")
	}
	cv := CoefficientOfVariation([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(cv, 2.0/5.0, 1e-9) {
		t.Fatalf("cv = %f, want 0.4", cv)
	}
}

func TestEWMAFirstSamplePrimes(t *testing.T) {
	e := NewEWMA(0.3)
	if e.Primed() {
		t.Fatal("fresh EWMA must not be primed")
	}
	e.Update(10)
	if e.Value() != 10 {
		t.Fatalf("first sample should prime the value, got %f", e.Value())
	}
	e.Update(20)
	want := 0.7*10 + 0.3*20
	if !almostEqual(e.Value(), want, 1e-12) {
		t.Fatalf("EWMA = %f, want %f", e.Value(), want)
	}
	if e.Samples() != 2 {
		t.Fatalf("samples = %d, want 2", e.Samples())
	}
}

func TestEWMAClampsBeta(t *testing.T) {
	if NewEWMA(-1).Beta() != 0 || NewEWMA(2).Beta() != 1 {
		t.Fatal("beta must be clamped to [0,1]")
	}
	// beta=1 tracks the last sample exactly.
	e := NewEWMA(1)
	e.Update(3)
	e.Update(9)
	if e.Value() != 9 {
		t.Fatal("beta=1 must track the last observation")
	}
	// beta=0 keeps the first sample forever.
	e = NewEWMA(0)
	e.Update(3)
	e.Update(9)
	if e.Value() != 3 {
		t.Fatal("beta=0 must keep the first observation")
	}
}

func TestEWMAReset(t *testing.T) {
	e := NewEWMA(0.5)
	e.Update(4)
	e.Reset()
	if e.Primed() || e.Value() != 0 || e.Samples() != 0 {
		t.Fatal("reset should clear state")
	}
}

// Property: the EWMA value is always within [min, max] of the observations.
func TestEWMABoundedProperty(t *testing.T) {
	f := func(raw []float64, betaRaw float64) bool {
		if len(raw) == 0 {
			return true
		}
		beta := math.Abs(math.Mod(betaRaw, 1))
		e := NewEWMA(beta)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			// Keep magnitudes sane to avoid float blowups irrelevant here.
			v = math.Mod(v, 1e6)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			e.Update(v)
			if e.Value() < lo-1e-9 || e.Value() > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.Count() != len(xs) {
		t.Fatalf("count = %d", w.Count())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %f", w.Mean())
	}
	if !almostEqual(w.Variance(), 4, 1e-9) {
		t.Fatalf("variance = %f", w.Variance())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %f/%f", w.Min(), w.Max())
	}
	if w.String() == "" {
		t.Fatal("String should be non-empty")
	}
	var empty Welford
	if empty.Variance() != 0 || empty.StdDev() != 0 {
		t.Fatal("empty Welford should report 0 variance")
	}
}

// Property: Welford mean/variance matches the batch computation.
func TestWelfordMatchesBatchProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			xs = append(xs, math.Mod(v, 1e4))
		}
		if len(xs) < 2 {
			return true
		}
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		return almostEqual(w.Mean(), Mean(xs), 1e-6) && almostEqual(w.Variance(), Variance(xs), 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
