package f2pm

import (
	"fmt"

	"repro/internal/cloudsim"
	"repro/internal/features"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// Collector is the feature monitor agent of F2PM: it periodically samples the
// system features of the VMs it is attached to and records the failure times
// it is told about, so that a labelled RTTF dataset can be built once enough
// failure episodes have been observed.
type Collector struct {
	interval simclock.Duration
	vms      []*cloudsim.VM
	vectors  []features.Vector
	failures map[string][]float64
	stop     func()
}

// NewCollector returns a collector that samples every interval (30 s when
// non-positive, the granularity used for the profiling phase).
func NewCollector(interval simclock.Duration) *Collector {
	if interval <= 0 {
		interval = 30 * simclock.Second
	}
	return &Collector{interval: interval, failures: map[string][]float64{}}
}

// Attach registers a VM for monitoring and chains its failure hook so that
// failure episodes are recorded for labelling.  Attach must be called before
// Start.
func (c *Collector) Attach(vm *cloudsim.VM) {
	c.vms = append(c.vms, vm)
	prev := vm.OnFailure
	vm.OnFailure = func(v *cloudsim.VM, at simclock.Time) {
		c.RecordFailure(v.ID(), at)
		if prev != nil {
			prev(v, at)
		}
	}
}

// RecordFailure notes that the named VM hit its failure point at the given
// time.  It is normally invoked through the hook installed by Attach, but can
// also be called directly when failure times come from another source.
func (c *Collector) RecordFailure(vmID string, at simclock.Time) {
	c.failures[vmID] = append(c.failures[vmID], at.Seconds())
}

// Start begins periodic sampling on the engine.  Sampling continues until
// Stop is called or the engine drains.
func (c *Collector) Start(eng *simclock.Engine) {
	if c.stop != nil {
		return
	}
	c.stop = eng.Ticker(c.interval, func(e *simclock.Engine) {
		for _, vm := range c.vms {
			if vm.State() == cloudsim.StateActive {
				c.vectors = append(c.vectors, vm.Sample(e.Now()))
			}
		}
	})
}

// Stop halts sampling.
func (c *Collector) Stop() {
	if c.stop != nil {
		c.stop()
		c.stop = nil
	}
}

// Samples returns the number of feature vectors collected so far.
func (c *Collector) Samples() int { return len(c.vectors) }

// Failures returns the number of failure episodes recorded so far.
func (c *Collector) Failures() int {
	n := 0
	for _, ts := range c.failures {
		n += len(ts)
	}
	return n
}

// BuildDataset labels the collected vectors with the observed failure times
// and returns the resulting dataset.  Vectors taken after the last observed
// failure of their VM are dropped because their RTTF is unknown.
func (c *Collector) BuildDataset() *features.Dataset {
	ds := features.NewDataset(nil)
	for _, s := range features.LabelRTTF(c.vectors, c.failures) {
		ds.Add(s)
	}
	return ds
}

// ProfileConfig configures a synthetic profiling run: a small pool of VMs is
// driven with an open-loop workload until enough failure episodes have been
// observed to train the prediction models.  This replaces the paper's initial
// profiling phase on the real testbed.
type ProfileConfig struct {
	// Seed is the deterministic RNG seed of the run.
	Seed uint64
	// Instance is the instance type profiled (the paper trains per-VM models;
	// one model per instance type is sufficient in the simulator because VMs
	// of a type are statistically identical).
	Instance cloudsim.InstanceType
	// VMs is the number of VMs run in parallel (more VMs = more failure
	// episodes per simulated hour).  Defaults to 4.
	VMs int
	// RatePerVM is the open-loop request rate directed at each VM.  Defaults
	// to 6 req/s.
	RatePerVM float64
	// SampleInterval is the feature sampling period.  Defaults to 30 s.
	SampleInterval simclock.Duration
	// TargetFailures stops the run once this many failure episodes have been
	// observed.  Defaults to 12.
	TargetFailures int
	// MaxHorizon bounds the run.  Defaults to 24 simulated hours.
	MaxHorizon simclock.Duration
}

func (c ProfileConfig) withDefaults() ProfileConfig {
	if c.Instance.Name == "" {
		c.Instance = cloudsim.M3Medium
	}
	if c.VMs <= 0 {
		c.VMs = 4
	}
	if c.RatePerVM <= 0 {
		c.RatePerVM = 6
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = 30 * simclock.Second
	}
	if c.TargetFailures <= 0 {
		c.TargetFailures = 12
	}
	if c.MaxHorizon <= 0 {
		c.MaxHorizon = 24 * simclock.Hour
	}
	return c
}

// CollectSyntheticDataset runs the profiling phase in simulation and returns
// the labelled dataset.  VMs that fail are rejuvenated and reactivated so
// several failure episodes per VM are observed, which is what gives the
// dataset coverage of the whole anomaly-accumulation trajectory.
func CollectSyntheticDataset(cfg ProfileConfig) (*features.Dataset, error) {
	cfg = cfg.withDefaults()
	eng := simclock.NewEngine(cfg.Seed)
	collector := NewCollector(cfg.SampleInterval)

	region := cloudsim.NewRegion(cloudsim.RegionConfig{
		Name:          "profiling",
		Provider:      "sim",
		Location:      "lab",
		Type:          cfg.Instance,
		InitialActive: cfg.VMs,
	}, eng.RNG().Fork())

	failures := 0
	for _, vm := range region.ActiveVMs() {
		vm := vm
		collector.Attach(vm)
		prev := vm.OnFailure
		vm.OnFailure = func(v *cloudsim.VM, at simclock.Time) {
			if prev != nil {
				prev(v, at)
			}
			failures++
			if failures >= cfg.TargetFailures {
				eng.Stop()
				return
			}
			// Restart the failed VM so it produces another failure episode.
			v.RecoverFromFailure(eng)
		}
		prevRejuv := vm.OnRejuvenated
		vm.OnRejuvenated = func(v *cloudsim.VM, at simclock.Time) {
			if prevRejuv != nil {
				prevRejuv(v, at)
			}
			v.Activate(eng)
		}
	}

	metrics := workload.NewMetrics()
	for i, vm := range region.ActiveVMs() {
		vm := vm
		gen := workload.NewOpenLoop(workload.OpenLoopConfig{
			Region:     "profiling",
			RatePerSec: cfg.RatePerVM,
		}, simclock.NewRNG(cfg.Seed+uint64(i)*7919+1), workload.DispatcherFunc(
			func(e *simclock.Engine, req *cloudsim.Request) { vm.Dispatch(e, req) }), metrics)
		gen.Start(eng)
	}

	collector.Start(eng)
	if err := eng.Run(cfg.MaxHorizon); err != nil && err != simclock.ErrHorizonReached {
		return nil, fmt.Errorf("f2pm: profiling run: %w", err)
	}
	collector.Stop()

	ds := collector.BuildDataset()
	if ds.Len() == 0 {
		return nil, fmt.Errorf("f2pm: profiling run produced no labelled samples (failures observed: %d)", collector.Failures())
	}
	return ds, nil
}

// TrainFromProfile is a convenience that runs the synthetic profiling phase
// and then the training toolchain in one call.
func TrainFromProfile(pcfg ProfileConfig, tcfg Config) (*Model, *Report, error) {
	ds, err := CollectSyntheticDataset(pcfg)
	if err != nil {
		return nil, nil, err
	}
	return Train(ds, tcfg)
}
