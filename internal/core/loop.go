package core

import (
	"fmt"
)

// LoopState is one of the four states of the ACM closed control loop (Figure
// 2 of the paper).
type LoopState int

const (
	// StateMonitor collects system features in every region (Algorithm 1's
	// prerequisite).
	StateMonitor LoopState = iota
	// StateAnalyze predicts the per-region RMTTF and forwards it to the
	// leader (Algorithm 1).
	StateAnalyze
	// StatePlan runs the selected policy at the leader to compute the new
	// fractions f_i (Algorithm 2).
	StatePlan
	// StateExecute installs the new forward plan in every region's load
	// balancer and applies the elasticity actions (Algorithm 3).
	StateExecute
)

// String returns the state name.
func (s LoopState) String() string {
	switch s {
	case StateMonitor:
		return "Monitor"
	case StateAnalyze:
		return "Analyze"
	case StatePlan:
		return "Plan"
	case StateExecute:
		return "Execute"
	default:
		return fmt.Sprintf("LoopState(%d)", int(s))
	}
}

// StepResult is the outcome of one complete control era.
type StepResult struct {
	// Era is the control era t this result belongs to (1-based).
	Era int
	// Regions names the regions, indexing the slices below.
	Regions []string
	// LastRMTTF echoes the raw lastRMTTF_i reported by each region's VMC.
	LastRMTTF []float64
	// SmoothedRMTTF is RMTTF_i^t after applying equation (1).
	SmoothedRMTTF []float64
	// Fractions are the new workload fractions f_i^t decided by the policy.
	Fractions []float64
	// Plan is the forward plan realising the fractions given the entry
	// shares.
	Plan *ForwardPlan
}

// Loop is the leader-side closed control loop: a deterministic state machine
// that, once per control era, folds the reported RMTTFs into the smoothed
// estimates (Analyze), asks the configured policy for new fractions (Plan),
// and produces the forward plan to be installed in every region (Execute).
// It holds no goroutines and no clock: the acm package drives it from the
// simulation (or a wall-clock ticker in a real deployment).
type Loop struct {
	regions   []string
	policy    Policy
	agg       *Aggregator
	fractions []float64
	era       int
	state     LoopState
	history   []StepResult
	keepHist  bool
}

// NewLoop builds a control loop over the named regions with the given policy
// and RMTTF smoothing factor beta.  The initial fractions are uniform, which
// is how a freshly deployed system behaves before the first control era.
func NewLoop(regions []string, policy Policy, beta float64) (*Loop, error) {
	if len(regions) == 0 {
		return nil, fmt.Errorf("core: control loop needs at least one region")
	}
	if policy == nil {
		return nil, fmt.Errorf("core: control loop needs a policy")
	}
	fr := make([]float64, len(regions))
	for i := range fr {
		fr[i] = 1 / float64(len(regions))
	}
	return &Loop{
		regions:   append([]string(nil), regions...),
		policy:    policy,
		agg:       NewAggregator(beta, regions),
		fractions: fr,
		state:     StateMonitor,
		keepHist:  true,
	}, nil
}

// SetKeepHistory controls whether every StepResult is retained (on by
// default; long simulations that do their own recording can turn it off).
func (l *Loop) SetKeepHistory(keep bool) { l.keepHist = keep }

// Regions returns the region names.
func (l *Loop) Regions() []string { return append([]string(nil), l.regions...) }

// Policy returns the configured policy.
func (l *Loop) Policy() Policy { return l.policy }

// Era returns the number of completed control eras.
func (l *Loop) Era() int { return l.era }

// State returns the loop's current state (Monitor between eras).
func (l *Loop) State() LoopState { return l.state }

// Fractions returns the currently installed workload fractions.
func (l *Loop) Fractions() []float64 { return append([]float64(nil), l.fractions...) }

// Aggregator exposes the smoothed RMTTF estimates.
func (l *Loop) Aggregator() *Aggregator { return l.agg }

// History returns a copy of the retained step results, so callers cannot
// mutate the loop's internal record (matching every other accessor here).
func (l *Loop) History() []StepResult { return append([]StepResult(nil), l.history...) }

// Step executes one complete control era: lastRMTTF holds the raw RMTTF each
// region's VMC just reported (Analyze), lambda is the current global request
// rate, and entryShares is the observed distribution of client arrivals over
// the regions (Execute needs it to build the forward plan).  The loop
// transitions Monitor → Analyze → Plan → Execute → Monitor and returns the
// era's result.
func (l *Loop) Step(lastRMTTF []float64, lambda float64, entryShares []float64) (StepResult, error) {
	if len(lastRMTTF) != len(l.regions) {
		return StepResult{}, fmt.Errorf("core: Step got %d RMTTF values for %d regions", len(lastRMTTF), len(l.regions))
	}
	if len(entryShares) != len(l.regions) {
		return StepResult{}, fmt.Errorf("core: Step got %d entry shares for %d regions", len(entryShares), len(l.regions))
	}

	// Analyze: equation (1) at the leader for every region.
	l.state = StateAnalyze
	smoothed := make([]float64, len(l.regions))
	for i, r := range l.regions {
		smoothed[i] = l.agg.Observe(r, lastRMTTF[i])
	}

	// Plan: Algorithm 2 — ask the policy for the new fractions.
	l.state = StatePlan
	next, err := l.policy.Fractions(PolicyInput{
		Regions:       l.regions,
		RMTTF:         smoothed,
		PrevFractions: l.fractions,
		Lambda:        lambda,
	})
	if err != nil {
		l.state = StateMonitor
		return StepResult{}, fmt.Errorf("core: policy %s: %w", l.policy.Name(), err)
	}
	next = Normalize(next)

	// Execute: Algorithm 3 — build the forward plan that realises the
	// fractions given where clients actually connect.
	l.state = StateExecute
	plan, err := BuildForwardPlan(l.regions, entryShares, next)
	if err != nil {
		l.state = StateMonitor
		return StepResult{}, err
	}

	l.fractions = next
	l.era++
	l.state = StateMonitor

	res := StepResult{
		Era:           l.era,
		Regions:       append([]string(nil), l.regions...),
		LastRMTTF:     append([]float64(nil), lastRMTTF...),
		SmoothedRMTTF: smoothed,
		Fractions:     append([]float64(nil), next...),
		Plan:          plan,
	}
	if l.keepHist {
		l.history = append(l.history, res)
	}
	return res, nil
}
