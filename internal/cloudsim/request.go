package cloudsim

import (
	"repro/internal/simclock"
)

// Request is one client interaction to be served by a VM hosting the server
// replica.  The workload package generates requests according to the TPC-W
// interaction mix; cloudsim only cares about the relative service demand of
// each interaction class.
type Request struct {
	// ID is a unique identifier assigned by the workload generator.
	ID uint64
	// Class names the TPC-W interaction (e.g. "home", "search_request"),
	// carried for tracing purposes.
	Class string
	// ServiceFactor scales the instance's base service demand: a value of 2
	// means the interaction costs twice the base demand (e.g. a best-seller
	// query hitting the database harder than serving the home page).
	ServiceFactor float64
	// EntryRegion is the region whose load balancer first received the
	// request (before any cross-region forwarding decided by the plan).
	EntryRegion string
	// Arrival is the simulated time the request entered the system.
	Arrival simclock.Time
	// Forwarded reports whether the request was forwarded to a region other
	// than its entry region by the global forward plan.
	Forwarded bool
	// OnDone, if non-nil, is invoked exactly once when the request completes
	// (successfully or not).
	OnDone func(Outcome)
}

// Outcome describes how a request terminated.
type Outcome struct {
	// Request echoes the originating request.
	Request *Request
	// VM is the identifier of the VM that served (or dropped) the request;
	// empty if no VM could be found.
	VM string
	// Region is the region that processed the request.
	Region string
	// Start is the time service began (queue exit).
	Start simclock.Time
	// End is the completion (or drop) time.
	End simclock.Time
	// Dropped is true when the request was not served: the VM crashed while
	// the request was queued or in service, or no ACTIVE VM was available.
	Dropped bool
}

// ResponseTime returns the end-to-end latency observed by the client: time
// from arrival at the load balancer to completion.
func (o Outcome) ResponseTime() simclock.Duration {
	if o.Request == nil {
		return 0
	}
	return o.End.Sub(o.Request.Arrival)
}

// ServiceTime returns the time the request actually spent in service.
func (o Outcome) ServiceTime() simclock.Duration { return o.End.Sub(o.Start) }

// finish invokes the completion callback exactly once.
func (r *Request) finish(o Outcome) {
	if r.OnDone != nil {
		cb := r.OnDone
		r.OnDone = nil
		cb(o)
	}
}
