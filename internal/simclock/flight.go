package simclock

import (
	"fmt"
	"strings"
)

// The engine flight recorder: per-epoch, per-shard accounting of what the
// parallel event loop actually did — events fired, the busy prefix and idle
// tail of each epoch in sim-time, mailbox posts delivered at each barrier —
// plus named control-phase records (the VMC's tick phases).  This is the
// epoch-utilization record the cross-region work-stealing roadmap item
// needs: it shows, shard by shard and epoch by epoch, where the event loop
// had slack.
//
// Determinism: the recorder is written only from the barrier context of
// ShardedEngine.Run (and, for phases, from control-timeline handlers), where
// exactly one goroutine runs, and every recorded quantity — fired counts,
// event timestamps, drained posts — is part of the engine's determinism
// contract.  The records are therefore byte-identical for every
// EventWorkers/GOMAXPROCS value.  "Busy" is sim-time, not wall-clock: the
// span from the epoch start to the shard's last fired event.  That is the
// deterministic proxy for how much of the epoch the shard's queue had work,
// which is what a work-stealing policy would balance.

// EpochRecord is one shard's (or the control timeline's) slice of one epoch.
// Records are kept only for slices that did work (Fired > 0 or Drained > 0);
// idle slices still feed the aggregate utilization totals.
type EpochRecord struct {
	// Shard is the engine lane: 0..NumShards()-1, or NumShards() for the
	// control timeline.
	Shard int
	// Start and End bound the epoch.
	Start, End Time
	// LastEventAt is the timestamp of the slice's last fired event.
	LastEventAt Time
	// Fired counts events the slice executed.
	Fired uint64
	// Drained counts mailbox posts delivered at this barrier (control slice
	// only; zero on shard slices).
	Drained uint64
}

// Busy returns the sim-time span from the epoch start to the last fired
// event — the portion of the epoch the shard's queue had work.
func (r EpochRecord) Busy() Duration {
	if r.Fired == 0 || r.LastEventAt < r.Start {
		return 0
	}
	return r.LastEventAt.Sub(r.Start)
}

// PhaseRecord is one named control-phase execution: a controller ran a
// phase of its tick at At and processed Items units of deterministic work.
type PhaseRecord struct {
	At    Time
	Name  string
	Items uint64
}

// ShardUtilization aggregates one lane's records over the whole run.
type ShardUtilization struct {
	// Shard is the engine lane (NumShards() = control timeline).
	Shard int
	// Fired is the total events executed.
	Fired uint64
	// Drained is the total mailbox posts delivered (control lane only).
	Drained uint64
	// Busy and Idle partition the lane's sim-time across all epochs.
	Busy, Idle Duration
	// BusyEpochs counts epochs in which the lane fired at least one event;
	// Epochs is the total epoch count of the run.
	BusyEpochs, Epochs uint64
}

// Utilization returns Busy / (Busy + Idle), zero for an all-idle lane.
func (u ShardUtilization) Utilization() float64 {
	total := u.Busy + u.Idle
	if total <= 0 {
		return 0
	}
	return u.Busy.Seconds() / total.Seconds()
}

// FlightRecorder accumulates epoch and phase records.  It is not safe for
// concurrent use; every write happens at an epoch barrier or on the control
// timeline, where exactly one goroutine runs.
type FlightRecorder struct {
	lanes  int
	agg    []ShardUtilization
	epochs []EpochRecord
	phases []PhaseRecord
	count  uint64 // completed epochs
}

// NewFlightRecorder returns a recorder for an engine with the given number
// of shards (the control timeline gets lane index shards).
func NewFlightRecorder(shards int) *FlightRecorder {
	fr := &FlightRecorder{lanes: shards + 1, agg: make([]ShardUtilization, shards+1)}
	for i := range fr.agg {
		fr.agg[i].Shard = i
	}
	return fr
}

// recordEpoch folds one lane's slice of an epoch into the aggregates and,
// when the slice did work, appends a detailed record.
func (fr *FlightRecorder) recordEpoch(shard int, start, end, lastEventAt Time, fired, drained uint64) {
	rec := EpochRecord{Shard: shard, Start: start, End: end, LastEventAt: lastEventAt, Fired: fired, Drained: drained}
	a := &fr.agg[shard]
	a.Fired += fired
	a.Drained += drained
	busy := rec.Busy()
	a.Busy += busy
	a.Idle += end.Sub(start) - busy
	if fired > 0 {
		a.BusyEpochs++
	}
	if fired > 0 || drained > 0 {
		fr.epochs = append(fr.epochs, rec)
	}
}

// epochDone marks one whole epoch complete.
func (fr *FlightRecorder) epochDone() { fr.count++ }

// RecordPhase appends a named control-phase record.  Callers must be on the
// control timeline (a controller tick, an epoch barrier).
func (fr *FlightRecorder) RecordPhase(at Time, name string, items uint64) {
	if fr == nil {
		return
	}
	fr.phases = append(fr.phases, PhaseRecord{At: at, Name: name, Items: items})
}

// EpochCount returns the number of completed epochs.
func (fr *FlightRecorder) EpochCount() uint64 { return fr.count }

// Epochs returns the detailed per-slice records (work-bearing slices only),
// in (epoch, lane) order.
func (fr *FlightRecorder) Epochs() []EpochRecord { return fr.epochs }

// Phases returns the control-phase records in execution order.
func (fr *FlightRecorder) Phases() []PhaseRecord { return fr.phases }

// Utilization returns the per-lane aggregates in lane order, the epoch count
// filled in.
func (fr *FlightRecorder) Utilization() []ShardUtilization {
	out := make([]ShardUtilization, len(fr.agg))
	copy(out, fr.agg)
	for i := range out {
		out[i].Epochs = fr.count
	}
	return out
}

// Table renders the per-lane utilization aggregates as a report table.  The
// last lane is the control timeline.
func (fr *FlightRecorder) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %6s %12s %8s\n",
		"lane", "fired", "busy(s)", "idle(s)", "util", "busy-epochs", "drained")
	for _, u := range fr.Utilization() {
		lane := fmt.Sprintf("shard%d", u.Shard)
		if u.Shard == fr.lanes-1 {
			lane = "control"
		}
		fmt.Fprintf(&b, "%-8s %10d %10.3f %10.3f %5.1f%% %6d/%-5d %8d\n",
			lane, u.Fired, u.Busy.Seconds(), u.Idle.Seconds(),
			100*u.Utilization(), u.BusyEpochs, u.Epochs, u.Drained)
	}
	return b.String()
}
