// Quickstart: the smallest useful ACM deployment.
//
// Two heterogeneous cloud regions (six m3.medium VMs in Ireland, four small
// private VMs in Munich) serve a TPC-W-like workload from two client
// populations.  The leader VMC runs Policy 2 (available-resources estimation)
// so that both regions converge to the same Region Mean Time To Failure, and
// each region's controller proactively rejuvenates VMs whose predicted
// remaining time to failure drops below ten minutes.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/acm"
	"repro/internal/backend"
	"repro/internal/cloudsim"
	"repro/internal/core"
	"repro/internal/simclock"
)

func main() {
	// 1. Describe the deployment: regions, clients and the policy.
	cfg := acm.Config{
		Seed: 1,
		Regions: []acm.RegionSetup{
			{Region: cloudsim.PaperRegionConfig(cloudsim.PaperRegion1), Clients: 256},
			{Region: cloudsim.PaperRegionConfig(cloudsim.PaperRegion3), Clients: 96},
		},
		Policy:          core.AvailableResources{},
		Beta:            0.5,
		ControlInterval: 60 * simclock.Second,
	}

	// 2. Build and run the simulated deployment for one hour, through the
	// backend seam — the same interface the experiment runners and CLIs use.
	b, err := backend.NewSimulated(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := b.Run(1 * simclock.Hour); err != nil {
		log.Fatal(err)
	}

	// 3. Inspect what the autonomic manager did, from the end-of-run
	// snapshot.  Sim-only internals stay reachable via b.Manager().
	final := b.Results()
	fmt.Println("client metrics:         ", b.Metrics())
	fmt.Println("control eras executed:  ", final.Eras)
	fmt.Println("installed fractions:    ", fmtFractions(final.RegionNames, final.FinalFractions))
	fmt.Println("smoothed RMTTF:         ", b.Manager().Loop().Aggregator().String())
	fmt.Println("leader controller:      ", final.Leader)
	for name, s := range final.VMCStats {
		fmt.Printf("%s: proactive rejuvenations=%d reactive recoveries=%d\n",
			name, s.ProactiveRejuvenations, s.ReactiveRecoveries)
	}
	fmt.Printf("mean response time: %.0f ms (SLA: 1000 ms)\n", 1000*b.Metrics().MeanResponseTime(""))
}

func fmtFractions(names []string, fractions []float64) string {
	s := ""
	for i, n := range names {
		if i > 0 {
			s += "  "
		}
		s += fmt.Sprintf("%s=%.2f", n, fractions[i])
	}
	return s
}
