// Package gslb is the global traffic director of the deployment: the
// component that sits between client populations and cloud regions and
// decides, per request, which region serves it — the simulated counterpart
// of a DNS-level global server load balancer (GSLB).
//
// A Director owns one routing policy (static weights, round-robin,
// telemetry-driven least-load, or health-driven failover) and a per-region
// health state machine fed by a periodic probe of region telemetry (active
// capacity and error signals).  The probe runs on the simulation's control
// timeline, so health transitions — and the routing-table snapshots derived
// from them — happen at deterministic timestamps while every region shard is
// idle.  Request-path routing only ever reads an immutable *Table snapshot
// with caller-owned RNG/rotation state, which is what keeps a deployment's
// output byte-identical for any event-loop worker count.
//
// The health model follows the shape of production GSLBs (OpenGSLB's
// health-checked geo/failover/weighted policies): a region serves while
// Healthy or Degraded, is excluded while Drained or Recovering, and both
// transitions are debounced by consecutive-probe streaks so a single noisy
// sample neither drains a region nor fails traffic back prematurely.
package gslb

import (
	"fmt"
	"strings"

	"repro/internal/cloudsim"
	"repro/internal/simclock"
)

// PolicyKind names a routing policy.
type PolicyKind string

const (
	// PolicyStatic splits traffic across serving regions by fixed weights.
	PolicyStatic PolicyKind = "static"
	// PolicyRoundRobin rotates across serving regions.  Each request stream
	// keeps its own rotation cursor, so the policy is deterministic for any
	// worker count.
	PolicyRoundRobin PolicyKind = "rr"
	// PolicyLeastLoad weights serving regions by the healthy-state service
	// capacity reported by the most recent probe, so traffic follows
	// capacity as regions degrade, rejuvenate and recover.
	PolicyLeastLoad PolicyKind = "leastload"
	// PolicyFailover sends all traffic to the most-preferred serving region
	// and fails over to the next preference when it drains, failing back
	// once the preferred region is healthy again.
	PolicyFailover PolicyKind = "failover"
)

// PolicyKinds returns every routing policy in presentation order.
func PolicyKinds() []PolicyKind {
	return []PolicyKind{PolicyStatic, PolicyRoundRobin, PolicyLeastLoad, PolicyFailover}
}

// ParsePolicy validates a policy name from a CLI flag or config file,
// returning an error that lists the valid choices.
func ParsePolicy(s string) (PolicyKind, error) {
	for _, k := range PolicyKinds() {
		if string(k) == s {
			return k, nil
		}
	}
	names := make([]string, 0, len(PolicyKinds()))
	for _, k := range PolicyKinds() {
		names = append(names, string(k))
	}
	return "", fmt.Errorf("gslb: unknown policy %q (valid: %s)", s, strings.Join(names, ", "))
}

// Config tunes the director.  The zero value means "no director"; setting
// Policy enables it.  All fields are plain data so scenarios embedding a
// Config round-trip through JSON.
type Config struct {
	// Policy selects the routing policy; empty disables the director.
	Policy PolicyKind
	// Weights are the static-weight policy's per-region weights, in
	// deployment order (uniform when empty).  Ignored by other policies.
	Weights []float64
	// Preference orders region names most-preferred first for the failover
	// policy (deployment order when empty).  Ignored by other policies.
	Preference []string
	// ProbeInterval is the health-probe period on the control timeline
	// (15 s when zero).
	ProbeInterval simclock.Duration
	// CapacityThreshold drains a region whose ACTIVE-VM fraction (relative
	// to its initial active pool) falls below this value (0.5 when zero).
	CapacityThreshold float64
	// ErrorThreshold drains a region whose per-probe-interval drop ratio
	// (dropped / (served + dropped)) exceeds this value (0.5 when zero).
	ErrorThreshold float64
	// UnhealthyAfter is the number of consecutive bad probes before a
	// serving region is drained (2 when zero).
	UnhealthyAfter int
	// HealthyAfter is the number of consecutive good probes before a
	// drained region serves again (4 when zero).
	HealthyAfter int
}

// Enabled reports whether the configuration selects a director.
func (c Config) Enabled() bool { return c.Policy != "" }

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 15 * simclock.Second
	}
	if c.CapacityThreshold <= 0 {
		c.CapacityThreshold = 0.5
	}
	if c.ErrorThreshold <= 0 {
		c.ErrorThreshold = 0.5
	}
	if c.UnhealthyAfter <= 0 {
		c.UnhealthyAfter = 2
	}
	if c.HealthyAfter <= 0 {
		c.HealthyAfter = 4
	}
	return c
}

// HealthState is one region's position in the failover state machine.
type HealthState int

const (
	// Healthy: serving, no recent bad probes.
	Healthy HealthState = iota
	// Degraded: serving, but accumulating bad probes towards a drain.
	Degraded
	// Drained: excluded from routing until probes recover.
	Drained
	// Recovering: still excluded, accumulating good probes towards failback.
	Recovering
)

// String renders the state name.
func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Drained:
		return "drained"
	case Recovering:
		return "recovering"
	default:
		return fmt.Sprintf("HealthState(%d)", int(s))
	}
}

// Serving reports whether a region in this state receives traffic.
func (s HealthState) Serving() bool { return s == Healthy || s == Degraded }

// Transition records one health-state change, for reports and byte-pinned
// goldens.
type Transition struct {
	// At is the control-timeline timestamp of the probe that moved the
	// region.
	At simclock.Time
	// Region names the region.
	Region string
	// From and To are the states before and after.
	From, To HealthState
}

// String renders the transition on one line ("t=630s region1 degraded->drained").
func (t Transition) String() string {
	return fmt.Sprintf("t=%.0fs %s %s->%s", t.At.Seconds(), t.Region, t.From, t.To)
}

// regionHealth is the per-region probe state.
type regionHealth struct {
	state       HealthState
	badStreak   int
	goodStreak  int
	prevServed  uint64
	prevDropped uint64
	capacity    float64 // last probed service capacity (least-load weight)
}

// Director is the global traffic director.  Tick (probe + table rebuild) is
// control-timeline-only; the request path reads immutable Table snapshots.
type Director struct {
	cfg     Config
	regions []string
	sample  func(i int) cloudsim.Telemetry
	health  []regionHealth
	pref    []int // preference order as region indices
	table   *Table
	trans   []Transition
	probes  uint64
}

// NewDirector builds a director over the named regions (deployment order).
// sample returns the current telemetry of region i; it is only called from
// Tick.  The initial routing table treats every region as Healthy with its
// probe-time capacity unknown (uniform least-load weights) — the first probe
// replaces it.
func NewDirector(cfg Config, regions []string, sample func(i int) cloudsim.Telemetry) (*Director, error) {
	if !cfg.Enabled() {
		return nil, fmt.Errorf("gslb: config has no policy")
	}
	if _, err := ParsePolicy(string(cfg.Policy)); err != nil {
		return nil, err
	}
	if len(regions) == 0 {
		return nil, fmt.Errorf("gslb: no regions")
	}
	if sample == nil {
		return nil, fmt.Errorf("gslb: nil telemetry sampler")
	}
	cfg = cfg.withDefaults()
	if cfg.Policy == PolicyStatic && len(cfg.Weights) > 0 && len(cfg.Weights) != len(regions) {
		return nil, fmt.Errorf("gslb: %d static weights for %d regions", len(cfg.Weights), len(regions))
	}
	index := make(map[string]int, len(regions))
	for i, r := range regions {
		index[r] = i
	}
	pref := make([]int, 0, len(regions))
	if len(cfg.Preference) > 0 {
		seen := map[int]bool{}
		for _, name := range cfg.Preference {
			i, ok := index[name]
			if !ok {
				return nil, fmt.Errorf("gslb: preference names unknown region %q", name)
			}
			if seen[i] {
				return nil, fmt.Errorf("gslb: region %q listed twice in preference", name)
			}
			seen[i] = true
			pref = append(pref, i)
		}
		// Unlisted regions become last-resort backups in deployment order.
		for i := range regions {
			if !seen[i] {
				pref = append(pref, i)
			}
		}
	} else {
		for i := range regions {
			pref = append(pref, i)
		}
	}
	d := &Director{
		cfg:     cfg,
		regions: append([]string(nil), regions...),
		sample:  sample,
		health:  make([]regionHealth, len(regions)),
		pref:    pref,
	}
	for i := range d.health {
		d.health[i].capacity = 1 // uniform until the first probe
	}
	d.table = d.buildTable()
	return d, nil
}

// Config returns the director configuration with defaults applied.
func (d *Director) Config() Config { return d.cfg }

// Regions returns the region names in deployment order.
func (d *Director) Regions() []string { return append([]string(nil), d.regions...) }

// Table returns the current routing-table snapshot.
func (d *Director) Table() *Table { return d.table }

// States returns the current health state of every region, in deployment
// order.
func (d *Director) States() []HealthState {
	out := make([]HealthState, len(d.health))
	for i := range d.health {
		out[i] = d.health[i].state
	}
	return out
}

// State returns the health state of region i.
func (d *Director) State(i int) HealthState { return d.health[i].state }

// Transitions returns every health-state change so far, in probe order.
func (d *Director) Transitions() []Transition { return append([]Transition(nil), d.trans...) }

// Probes returns the number of completed probe ticks.
func (d *Director) Probes() uint64 { return d.probes }

// Tick runs one health probe: it samples every region's telemetry, advances
// the per-region state machines and rebuilds the routing table.  It must run
// on the control timeline (exclusive access to the regions); the returned
// snapshot is what callers republish to their request-path readers.
func (d *Director) Tick(now simclock.Time) *Table {
	d.probes++
	for i := range d.health {
		h := &d.health[i]
		tel := d.sample(i)
		h.capacity = tel.Capacity

		baseline := tel.BaselineActive
		if baseline <= 0 {
			baseline = 1
		}
		capFrac := float64(tel.ActiveVMs) / float64(baseline)
		dServed := tel.Served - h.prevServed
		dDropped := tel.Dropped - h.prevDropped
		h.prevServed, h.prevDropped = tel.Served, tel.Dropped
		errRate := 0.0
		if total := dServed + dDropped; total > 0 {
			errRate = float64(dDropped) / float64(total)
		}
		bad := capFrac < d.cfg.CapacityThreshold || errRate > d.cfg.ErrorThreshold

		if bad {
			h.goodStreak = 0
			h.badStreak++
		} else {
			h.badStreak = 0
			h.goodStreak++
		}
		next := h.state
		if h.state.Serving() {
			switch {
			case h.badStreak >= d.cfg.UnhealthyAfter:
				next = Drained
			case h.badStreak > 0:
				next = Degraded
			default:
				next = Healthy
			}
		} else {
			switch {
			case h.goodStreak >= d.cfg.HealthyAfter:
				next = Healthy
			case h.goodStreak > 0:
				next = Recovering
			default:
				next = Drained
			}
		}
		if next != h.state {
			d.trans = append(d.trans, Transition{At: now, Region: d.regions[i], From: h.state, To: next})
			h.state = next
		}
	}
	d.table = d.buildTable()
	return d.table
}

// buildTable derives the immutable routing snapshot from the current health
// states and probe capacities.
func (d *Director) buildTable() *Table {
	serving := make([]int, 0, len(d.regions))
	for _, i := range d.pref {
		if d.health[i].state.Serving() {
			serving = append(serving, i)
		}
	}
	if len(serving) == 0 {
		// Every region is drained: routing somewhere beats routing nowhere,
		// so fall back to the full preference order (the requests surface as
		// drops/errors at the regions, which is the honest outcome).
		serving = append(serving, d.pref...)
	}
	t := &Table{mode: d.cfg.Policy, eligible: serving}
	switch d.cfg.Policy {
	case PolicyStatic:
		t.weights = make([]float64, len(serving))
		for j, i := range serving {
			if len(d.cfg.Weights) == len(d.regions) {
				t.weights[j] = d.cfg.Weights[i]
			} else {
				t.weights[j] = 1
			}
		}
	case PolicyLeastLoad:
		t.weights = make([]float64, len(serving))
		for j, i := range serving {
			t.weights[j] = d.health[i].capacity
		}
	}
	return t
}

// Table is an immutable routing snapshot.  It is safe for any number of
// concurrent readers; all mutable routing state (the RNG for weighted picks,
// the rotation cursor for round-robin) is owned by the caller, so two
// request streams never contend and every stream's routing sequence is a
// deterministic function of its own request sequence.
type Table struct {
	mode     PolicyKind
	eligible []int     // serving region indices, preference-ordered
	weights  []float64 // aligned with eligible (static / least-load)
}

// Mode returns the policy kind of the snapshot.
func (t *Table) Mode() PolicyKind { return t.mode }

// Eligible returns the serving region indices, preference-ordered.
func (t *Table) Eligible() []int { return append([]int(nil), t.eligible...) }

// Route picks the destination region index for one request.  rng supplies
// the weighted draw of the static and least-load policies; rr is the
// caller's round-robin cursor (advanced only by the round-robin policy).
func (t *Table) Route(rng *simclock.RNG, rr *uint64) int {
	switch t.mode {
	case PolicyRoundRobin:
		i := t.eligible[int(*rr%uint64(len(t.eligible)))]
		*rr++
		return i
	case PolicyFailover:
		return t.eligible[0]
	default: // static, leastload
		return t.eligible[rng.Choice(t.weights)]
	}
}
