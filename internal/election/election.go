// Package election implements the fault-tolerant leader election used to
// pick the leader Virtual Machine Controller among the controllers of the
// different cloud regions.  The paper relies on the algorithm of Avresky and
// Natchev ("Dynamic reconfiguration in computer clusters with irregular
// topologies in the presence of multiple node and link failures", IEEE ToC
// 2005), whose relevant property for ACM is that a single leader is
// (re-)elected among the controllers that can still reach each other, even
// after multiple node and link failures.
//
// This package reproduces that property with a deterministic coordinator
// election scoped to overlay partitions: every alive controller floods its
// candidacy over the live overlay links, and within each connected partition
// the node with the highest priority (ties broken by smallest name) becomes
// the leader.  The election is rerun whenever a membership or connectivity
// change is observed, and the term number is bumped so stale leaders can be
// recognised.
package election

import (
	"fmt"
	"sort"

	"repro/internal/overlay"
)

// Member is one electable controller.
type Member struct {
	// Name is the controller name; it must match the overlay node name.
	Name string
	// Priority ranks candidates: higher priority wins.  The paper's
	// deployment gives every controller the same role, so by default the
	// priority encodes the size of the region the controller manages (a
	// leader on a bigger, better-connected region is preferable), but any
	// consistent assignment works.
	Priority int
}

// Result is the outcome of one election round as observed by one partition.
type Result struct {
	// Leader is the elected controller.
	Leader string
	// Term is the monotonically increasing election term.
	Term uint64
	// Members are the controllers that participated (the partition of the
	// leader), sorted.
	Members []string
	// Messages is the number of point-to-point messages the flooding election
	// exchanged, an indicator of election cost.
	Messages int
}

// Cluster manages leader election among a fixed membership over an overlay
// network.
type Cluster struct {
	net      *overlay.Network
	members  map[string]Member
	term     uint64
	leaders  map[string]string // partition representative -> leader
	lastSeen map[string]Result // per member: last result it observed
	// counters
	elections uint64
}

// NewCluster builds a cluster over the given overlay.  Every member must
// exist as an overlay node (it is added if missing).
func NewCluster(net *overlay.Network, members []Member) (*Cluster, error) {
	if net == nil {
		return nil, fmt.Errorf("election: nil overlay network")
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("election: empty membership")
	}
	c := &Cluster{net: net, members: map[string]Member{}, leaders: map[string]string{}, lastSeen: map[string]Result{}}
	for _, m := range members {
		if m.Name == "" {
			return nil, fmt.Errorf("election: member with empty name")
		}
		if _, dup := c.members[m.Name]; dup {
			return nil, fmt.Errorf("election: duplicate member %q", m.Name)
		}
		if !net.HasNode(m.Name) {
			net.AddNode(m.Name)
		}
		c.members[m.Name] = m
	}
	c.Elect()
	return c, nil
}

// Members returns the configured membership, sorted by name.
func (c *Cluster) Members() []Member {
	out := make([]Member, 0, len(c.members))
	for _, m := range c.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Term returns the current election term.
func (c *Cluster) Term() uint64 { return c.term }

// Elections returns how many election rounds have been run.
func (c *Cluster) Elections() uint64 { return c.elections }

// alivePartitionMembers returns the cluster members alive and reachable from
// the given member, sorted.
func (c *Cluster) alivePartitionMembers(from string) []string {
	part := c.net.Partition(from)
	var out []string
	for _, n := range part {
		if _, ok := c.members[n]; ok {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Elect runs a full election round: each partition of alive members
// independently elects the reachable member with the highest priority.  The
// method returns the results, one per partition, ordered by leader name.
func (c *Cluster) Elect() []Result {
	c.term++
	c.elections++
	c.leaders = map[string]string{}

	seen := map[string]bool{}
	var results []Result
	for name := range c.members {
		if !c.net.NodeAlive(name) || seen[name] {
			continue
		}
		partition := c.alivePartitionMembers(name)
		if len(partition) == 0 {
			continue
		}
		for _, p := range partition {
			seen[p] = true
		}
		leader := c.pickLeader(partition)
		// Flooding cost: every member of the partition announces its candidacy
		// to every other member it can reach, then the winner broadcasts the
		// result — 2 * m * (m-1) point-to-point messages for a partition of m.
		m := len(partition)
		res := Result{
			Leader:   leader,
			Term:     c.term,
			Members:  partition,
			Messages: 2 * m * (m - 1),
		}
		results = append(results, res)
		for _, p := range partition {
			c.leaders[p] = leader
			c.lastSeen[p] = res
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Leader < results[j].Leader })
	return results
}

// pickLeader returns the highest-priority member of the partition, breaking
// ties by the lexicographically smallest name so the choice is deterministic.
func (c *Cluster) pickLeader(partition []string) string {
	best := ""
	bestPriority := 0
	for _, name := range partition {
		m := c.members[name]
		if best == "" || m.Priority > bestPriority || (m.Priority == bestPriority && name < best) {
			best = name
			bestPriority = m.Priority
		}
	}
	return best
}

// Leader returns the current leader as observed by the given member, or ""
// when the member is down or isolated from every other member (an isolated
// alive member leads its own singleton partition, so it returns itself).
func (c *Cluster) Leader(asSeenBy string) string {
	if !c.net.NodeAlive(asSeenBy) {
		return ""
	}
	return c.leaders[asSeenBy]
}

// GlobalLeader returns the leader of the partition containing the most
// members — the "primary" side of a partition — and whether a unique such
// partition exists.  With a fully connected overlay this is simply the single
// elected leader.
func (c *Cluster) GlobalLeader() (string, bool) {
	counts := map[string]int{}
	for member, leader := range c.leaders {
		if c.net.NodeAlive(member) {
			counts[leader]++
		}
	}
	best, bestCount, unique := "", 0, false
	for leader, cnt := range counts {
		switch {
		case cnt > bestCount:
			best, bestCount, unique = leader, cnt, true
		case cnt == bestCount:
			unique = false
		}
	}
	return best, unique && best != ""
}

// IsLeader reports whether the given member currently leads its partition.
func (c *Cluster) IsLeader(name string) bool {
	return c.net.NodeAlive(name) && c.leaders[name] == name
}

// ReportNodeFailure marks the controller as failed in the overlay and reruns
// the election.  It returns the new results.
func (c *Cluster) ReportNodeFailure(name string) []Result {
	c.net.FailNode(name)
	return c.Elect()
}

// ReportNodeRecovery revives the controller and reruns the election.
func (c *Cluster) ReportNodeRecovery(name string) []Result {
	c.net.RestoreNode(name)
	return c.Elect()
}

// ReportLinkFailure marks an overlay link as failed and reruns the election
// (connectivity may have changed, splitting or merging partitions).
func (c *Cluster) ReportLinkFailure(a, b string) []Result {
	c.net.FailLink(a, b)
	return c.Elect()
}

// ReportLinkRecovery restores an overlay link and reruns the election.
func (c *Cluster) ReportLinkRecovery(a, b string) []Result {
	c.net.RestoreLink(a, b)
	return c.Elect()
}

// LastResult returns the most recent election result observed by the member.
func (c *Cluster) LastResult(member string) (Result, bool) {
	r, ok := c.lastSeen[member]
	return r, ok
}
