package trace

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestRecorderRecordAndLookup(t *testing.T) {
	r := NewRecorder()
	r.Record("rmttf", "region1", 0, 100)
	r.Record("rmttf", "region1", 10, 110)
	r.Record("rmttf", "region2", 0, 90)
	r.Record("fraction", "region1", 0, 0.5)

	if len(r.SetNames()) != 2 {
		t.Fatalf("expected 2 sets, got %v", r.SetNames())
	}
	if r.Series("rmttf", "region1").Len() != 2 {
		t.Fatal("region1 should have 2 points")
	}
	// Series() must not duplicate existing series.
	if got := len(r.Set("rmttf").Series); got != 2 {
		t.Fatalf("rmttf set should have 2 series, got %d", got)
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	r.Record("rmttf", "region1", 0, 100)
	r.Record("rmttf", "region1", 10, 110)
	r.Record("rmttf", "region2", 5, 90)

	var buf bytes.Buffer
	if err := r.WriteCSV(&buf, "rmttf"); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// header + 3 distinct timestamps
	if len(rows) != 4 {
		t.Fatalf("expected 4 rows, got %d: %v", len(rows), rows)
	}
	if rows[0][0] != "time_s" || rows[0][1] != "region1" || rows[0][2] != "region2" {
		t.Fatalf("bad header: %v", rows[0])
	}
	// At t=5 region1 holds its previous value 100 (step interpolation).
	if rows[2][0] != "5" || rows[2][1] != "100" || rows[2][2] != "90" {
		t.Fatalf("bad interpolated row: %v", rows[2])
	}
}

func TestWriteCSVUnknownSet(t *testing.T) {
	r := NewRecorder()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf, "nope"); err == nil {
		t.Fatal("expected error for unknown set")
	}
}

func TestWriteAllCSV(t *testing.T) {
	r := NewRecorder()
	r.Record("a", "s", 0, 1)
	r.Record("b", "s", 0, 2)
	var buf bytes.Buffer
	if err := r.WriteAllCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# a") || !strings.Contains(out, "# b") {
		t.Fatalf("missing set headers in output:\n%s", out)
	}
}

func TestASCIIPlot(t *testing.T) {
	r := NewRecorder()
	for i := 0; i <= 50; i++ {
		r.Record("rmttf", "region1", float64(i), 100+float64(i))
		r.Record("rmttf", "region2", float64(i), 200-float64(i))
	}
	out := ASCIIPlot(r.Set("rmttf"), PlotOptions{Title: "Figure 3 (RMTTF)", YLabel: "seconds"})
	if !strings.Contains(out, "Figure 3 (RMTTF)") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "*=region1") || !strings.Contains(out, "+=region2") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "seconds") {
		t.Fatal("y label missing")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 16 {
		t.Fatalf("plot too small: %d lines", len(lines))
	}
}

func TestASCIIPlotEmpty(t *testing.T) {
	r := NewRecorder()
	out := ASCIIPlot(r.Set("empty"), PlotOptions{})
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty plot should say no data:\n%s", out)
	}
	// A set with a series but no points is also empty.
	r.Set("empty").Add("s")
	out = ASCIIPlot(r.Set("empty"), PlotOptions{})
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("pointless plot should say no data:\n%s", out)
	}
}

func TestASCIIPlotConstantSeries(t *testing.T) {
	r := NewRecorder()
	r.Record("x", "s", 0, 5)
	r.Record("x", "s", 10, 5)
	out := ASCIIPlot(r.Set("x"), PlotOptions{Width: 20, Height: 5})
	if !strings.Contains(out, "*") {
		t.Fatalf("constant series should still be plotted:\n%s", out)
	}
}

func TestSummaryTable(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 100; i++ {
		r.Record("fraction", "region1", float64(i), 0.6)
		r.Record("fraction", "region2", float64(i), 0.4)
	}
	out := SummaryTable(r.Set("fraction"), 0.3)
	if !strings.Contains(out, "region1") || !strings.Contains(out, "region2") {
		t.Fatalf("summary missing series:\n%s", out)
	}
	if !strings.Contains(out, "0.6000") {
		t.Fatalf("summary should contain the tail mean:\n%s", out)
	}
}
